package vrdfcap

import (
	"vrdfcap/internal/alloc"
	"vrdfcap/internal/arbiter"
	"vrdfcap/internal/capacity"
	"vrdfcap/internal/exact"
	"vrdfcap/internal/faults"
	"vrdfcap/internal/ratio"
)

// Extended analyses layered on the core algorithm.
type (
	// ChainSchedule is the chain-wide anchoring of the bound schedule:
	// analytic periodic offset for the sink and an end-to-end latency
	// bound.
	ChainSchedule = capacity.ChainSchedule
	// SweepPoint is one point of a throughput/buffer trade-off curve.
	SweepPoint = capacity.SweepPoint
	// SweepOptions tunes the worker count of SweepPeriodsOpt.
	SweepOptions = capacity.SweepOptions

	// TDM and RoundRobin derive worst-case response times κ from
	// worst-case execution times and arbiter settings (§3.1).
	TDM        = arbiter.TDM
	RoundRobin = arbiter.RoundRobin
	// Arbiter is any rate-independent response-time guarantee.
	Arbiter = arbiter.Arbiter

	// Platform dimensioning: processors, bindings and the Dimension
	// outcome.
	Processor      = alloc.Processor
	Binding        = alloc.Binding
	Platform       = alloc.Platform
	PlatformResult = alloc.Result

	// Fault injection: deterministic seeded timing faults (jitter within
	// (0, ρ], overrun stalls beyond ρ) and the degradation sweep that
	// measures how much overrun a sizing absorbs.
	FaultSpec         = faults.Spec
	FaultInjector     = faults.Injector
	DegradationConfig = faults.DegradationConfig
	DegradationPoint  = faults.DegradationPoint
	DegradationCurve  = faults.DegradationCurve
)

// AnchoredSchedule materialises the absolute-time schedule whose existence
// a sink-constrained analysis proves: per-buffer bound lines, an offset at
// which the strictly periodic sink is guaranteed feasible, and the latency
// bound from the source's first start to the sink's first finish.
func AnchoredSchedule(res *Result) (*ChainSchedule, error) {
	return capacity.Anchored(res)
}

// SweepPeriods analyses the chain at every candidate period, producing the
// throughput/buffer trade-off curve for design-space exploration.
func SweepPeriods(g *Graph, task string, periods []RatNum, p Policy) ([]SweepPoint, error) {
	return capacity.SweepPeriods(g, task, periods, p)
}

// SweepPeriodsOpt is SweepPeriods with explicit options: Workers bounds the
// number of periods analysed concurrently (0 selects GOMAXPROCS, 1 forces
// the serial path); the results are identical for every setting.
func SweepPeriodsOpt(g *Graph, task string, periods []RatNum, p Policy, opts SweepOptions) ([]SweepPoint, error) {
	return capacity.SweepPeriodsOpt(g, task, periods, p, opts)
}

// MinimalFeasiblePeriod returns the first feasible point of an ascending
// period sweep.
func MinimalFeasiblePeriod(g *Graph, task string, periods []RatNum, p Policy) (SweepPoint, error) {
	return capacity.MinimalFeasiblePeriod(g, task, periods, p)
}

// ResponseTime derives κ for a task with the given worst-case execution
// time under an arbiter — the §3.1 assumption made concrete.
func ResponseTime(a Arbiter, wcet RatNum) (RatNum, error) {
	return a.ResponseTime(wcet)
}

// Dimension chooses TDM slices for every task (deadline: the φ the
// throughput constraint demands), reports per-processor loads and runs the
// capacity analysis with the derived response times — WCETs to guaranteed
// system in one call.
func Dimension(g *Graph, c Constraint, platform Platform, p Policy) (*PlatformResult, error) {
	return alloc.Dimension(g, c, platform, p)
}

// ExactPairMinimum returns the true minimum deadlock-free capacity of a
// producer–consumer pair over every admissible quanta sequence, by
// exhaustive adversarial state-space search (small quanta sets only; see
// internal/exact for the guard).
func ExactPairMinimum(prod, cons QuantaSet) (int64, error) {
	return exact.MinCapacity(prod, cons)
}

// CertifyDeadlockFree exhaustively checks a sized chain against every
// sequence of coupled per-firing quanta choices — a certificate stronger
// than any finite simulation, feasible for small quanta sets and
// capacities. Returns the adversarial witness on failure.
func CertifyDeadlockFree(sized *Graph, maxStates int) (bool, *exact.ChainWitness, error) {
	return exact.ChainDeadlockFree(sized, maxStates)
}

// NewFaultInjector validates a fault spec against the graph and compiles
// the per-task execution-time models; Apply the injector to a VerifyOptions
// before calling Verify.
func NewFaultInjector(g *Graph, spec FaultSpec) (*FaultInjector, error) {
	return faults.New(g, spec)
}

// SweepDegradation verifies a sized graph at every overrun factor of the
// config and reports the degradation curve: where the throughput guarantee
// first breaks and how much overrun slack the sizing had.
func SweepDegradation(cfg DegradationConfig) (*DegradationCurve, error) {
	return faults.Sweep(cfg)
}

// OverrunFactors builds n evenly spaced overrun factors from lo to hi for
// SweepDegradation.
func OverrunFactors(lo, hi RatNum, n int) []RatNum {
	return faults.FactorRange(lo, hi, n)
}

// BurstyWorkloads builds the bursty adversarial workload (runs of the
// minimum quantum followed by runs of the maximum) for every buffer with
// variable quanta.
func BurstyWorkloads(g *Graph, lowLen, highLen int64) Workloads {
	return faults.BurstyWorkloads(g, lowLen, highLen)
}

// GeometricPeriods returns n periods start, start·num/den, start·(num/den)²,
// … — a convenient sweep axis (num/den > 1 relaxes the constraint).
func GeometricPeriods(start RatNum, num, den int64, n int) ([]RatNum, error) {
	if n <= 0 {
		return nil, errBadSweep
	}
	step, err := ratio.New(num, den)
	if err != nil {
		return nil, err
	}
	out := make([]RatNum, n)
	cur := start
	for i := range out {
		out[i] = cur
		next, err := cur.MulChecked(step)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return out, nil
}

var errBadSweep = errString("vrdfcap: sweep needs a positive number of periods")

type errString string

func (e errString) Error() string { return string(e) }
