package vrdfcap

import (
	"fmt"
	"io"
	"sync"
	"text/tabwriter"
)

// twPool recycles tabwriter.Writers across reports: a Writer retains its
// internal cell and line buffers, so a pooled one renders a table without
// re-growing them. Init rebinds the output and resets all state.
var twPool = sync.Pool{New: func() any { return new(tabwriter.Writer) }}

func getTabWriter(w io.Writer) *tabwriter.Writer {
	tw := twPool.Get().(*tabwriter.Writer)
	tw.Init(w, 2, 4, 2, ' ', 0)
	return tw
}

// putTabWriter returns a flushed writer to the pool and drops the caller's
// output reference by re-binding to a discard writer.
func putTabWriter(tw *tabwriter.Writer) {
	tw.Init(io.Discard, 2, 4, 2, ' ', 0)
	twPool.Put(tw)
}

// WriteReport renders an analysis result as an aligned text report: the
// constraint, the per-task schedule checks (ρ against φ), the per-buffer
// capacities under every applicable formula, and any diagnostics.
func WriteReport(w io.Writer, res *Result) error {
	if _, err := fmt.Fprintf(w, "throughput constraint: task %s strictly periodic, period %s (%s, policy %s)\n",
		res.Constraint.Task, res.Constraint.Period, res.Direction, res.Policy); err != nil {
		return err
	}

	tw := getTabWriter(w)
	defer putTabWriter(tw)
	fmt.Fprintln(tw, "\ntask\tρ (WCRT)\tφ (min start distance)\tschedule")
	for _, ck := range res.Checks {
		status := "ok"
		if !ck.OK {
			status = "VIOLATED"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", ck.Task, ck.Rho, ck.Phi, status)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	showMemory := res.TotalMemoryBytes() > 0
	tw.Init(w, 2, 4, 2, ' ', 0) // flushed above; reuse for the buffer table
	header := "\nbuffer\tμ (time/container)\teq(3) gap\teq(4) capacity\tbaseline\tselected"
	if showMemory {
		header += "\tmemory"
	}
	fmt.Fprintln(tw, header)
	for i := range res.Buffers {
		b := &res.Buffers[i]
		base := "-"
		if b.ConstantRates {
			base = fmt.Sprintf("%d", b.CapacityBaseline)
		}
		row := fmt.Sprintf("%s\t%s\t%s\t%d\t%s\t%d",
			b.Buffer, b.Mu, b.Distances.SpaceGap, b.CapacityEq4, base, b.Capacity)
		if showMemory {
			if b.ContainerBytes > 0 {
				row += fmt.Sprintf("\t%d B", b.MemoryBytes())
			} else {
				row += "\t-"
			}
		}
		fmt.Fprintln(tw, row)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if _, err := fmt.Fprintf(w, "\ntotal capacity: %d containers\n", res.TotalCapacity()); err != nil {
		return err
	}
	if showMemory {
		if _, err := fmt.Fprintf(w, "total memory: %d bytes\n", res.TotalMemoryBytes()); err != nil {
			return err
		}
	}
	if !res.Valid {
		if _, err := fmt.Fprintln(w, "\nWARNING: the throughput constraint cannot be guaranteed:"); err != nil {
			return err
		}
		for _, d := range res.Diagnostics {
			if _, err := fmt.Fprintf(w, "  - %s\n", d); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteVerification renders a simulation-based verification outcome.
func WriteVerification(w io.Writer, v *Verification) error {
	if v.OK {
		if _, err := fmt.Fprintf(w, "verified: strictly periodic schedule sustained (offset %s, %d periodic attempt(s))\n",
			v.Offset, v.Attempts); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintf(w, "NOT verified: %s\n", v.Reason); err != nil {
			return err
		}
		if v.Underrun != nil {
			if _, err := fmt.Fprintf(w, "  underrun: task %s firing %d at tick %d", v.Underrun.Actor, v.Underrun.Firing, v.Underrun.Tick); err != nil {
				return err
			}
			if v.Underrun.Edge != "" {
				if _, err := fmt.Fprintf(w, ", starved on %s (%d of %d tokens)", v.Underrun.Edge, v.Underrun.Have, v.Underrun.Need); err != nil {
					return err
				}
			} else {
				if _, err := fmt.Fprint(w, ", previous firing still running"); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if v.Deadlock != nil {
			if _, err := fmt.Fprintf(w, "  deadlock at tick %d: %d task(s) blocked\n", v.Deadlock.Tick, len(v.Deadlock.Blocked)); err != nil {
				return err
			}
			for _, b := range v.Deadlock.Blocked {
				if _, err := fmt.Fprintf(w, "    %s firing %d starved on %s (%d of %d tokens)\n",
					b.Actor, b.Firing, b.Edge, b.Have, b.Need); err != nil {
					return err
				}
			}
		}
	}
	if v.SelfTimed != nil {
		if _, err := fmt.Fprintf(w, "  self-timed phase: %s after %d events, firings per task: %v\n",
			v.SelfTimed.Outcome, v.SelfTimed.Events, v.SelfTimed.Fired); err != nil {
			return err
		}
	}
	if v.Periodic != nil {
		if _, err := fmt.Fprintf(w, "  periodic phase: %s after %d events\n",
			v.Periodic.Outcome, v.Periodic.Events); err != nil {
			return err
		}
	}
	return nil
}

// WriteDegradation renders a fault-injection degradation curve: one row per
// overrun factor with the verification verdict, then the slack summary —
// how far beyond the worst-case response times the sizing still sustained
// the throughput constraint.
func WriteDegradation(w io.Writer, curve *DegradationCurve) error {
	tw := getTabWriter(w)
	defer putTabWriter(tw)
	fmt.Fprintln(tw, "overrun factor\tverdict\treason")
	for i := range curve.Points {
		p := &curve.Points[i]
		verdict, reason := "ok", "-"
		if !p.OK {
			verdict = "FAILED"
			reason = p.Reason
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", p.Factor, verdict, reason)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if ff := curve.FirstFailure(); ff == nil {
		if _, err := fmt.Fprintf(w, "\nno degradation observed up to factor %s (slack >= %s)\n",
			curve.Points[len(curve.Points)-1].Factor, curve.Slack()); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintf(w, "\nfirst failure at factor %s; overrun slack %s\n",
			ff.Factor, curve.Slack()); err != nil {
			return err
		}
	}
	return nil
}
