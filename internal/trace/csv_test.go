package trace

import (
	"bytes"
	"strings"
	"testing"

	"vrdfcap/internal/quanta"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
)

func occupancyRun(t *testing.T) (*sim.Result, string) {
	t.Helper()
	g, err := taskgraph.Pair("wa", r(1, 1), "wb", r(1, 1),
		taskgraph.MustQuanta(3), taskgraph.MustQuanta(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	g.Buffers()[0].Capacity = 7
	cfg, m, err := sim.TaskGraphConfig(g, sim.Workloads{"wa->wb": {Cons: quanta.Cycle(2, 3)}})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stop = sim.Stop{Actor: "wb", Firings: 20}
	cfg.RecordTransfers = []string{m.Pairs[0].Data}
	cfg.RecordOccupancy = []string{m.Pairs[0].Data}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != sim.Completed {
		t.Fatalf("outcome %v", res.Outcome)
	}
	return res, m.Pairs[0].Data
}

func TestOccupancyRecording(t *testing.T) {
	res, edge := occupancyRun(t)
	occ := res.Occupancy[edge]
	if len(occ) == 0 {
		t.Fatal("no occupancy samples")
	}
	if occ[0].Tick != 0 || occ[0].Tokens != 0 {
		t.Errorf("first sample %+v, want initial (0, 0)", occ[0])
	}
	// Samples are strictly increasing in time and never negative.
	for i := 1; i < len(occ); i++ {
		if occ[i].Tick <= occ[i-1].Tick {
			t.Fatalf("samples not strictly ordered: %+v after %+v", occ[i], occ[i-1])
		}
		if occ[i].Tokens < 0 {
			t.Fatalf("negative occupancy %+v", occ[i])
		}
	}
	// The timeline records the settled value per instant, while
	// EdgeStats.Peak conservatively counts the momentary value when a
	// same-instant production commits before the consumption; so the
	// timeline peak never exceeds the stats peak and trails it by at
	// most the largest single transfer.
	var peak int64
	for _, s := range occ {
		if s.Tokens > peak {
			peak = s.Tokens
		}
	}
	if peak > res.Edges[edge].Peak {
		t.Errorf("timeline peak %d exceeds stats peak %d", peak, res.Edges[edge].Peak)
	}
	if res.Edges[edge].Peak-peak > 3 {
		t.Errorf("stats peak %d too far above timeline peak %d", res.Edges[edge].Peak, peak)
	}
}

func TestSummariseOccupancy(t *testing.T) {
	samples := []sim.OccupancySample{
		{Tick: 0, Tokens: 0},
		{Tick: 2, Tokens: 3},
		{Tick: 6, Tokens: 1},
	}
	// Over [0, 10]: 0 for 2 ticks, 3 for 4 ticks, 1 for 4 ticks.
	stats, err := SummariseOccupancy(samples, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Peak != 3 || stats.Min != 0 {
		t.Errorf("peak/min = %d/%d", stats.Peak, stats.Min)
	}
	if want := ratio.MustNew(16, 10); !stats.Mean.Equal(want) {
		t.Errorf("mean = %v, want %v", stats.Mean, want)
	}
	if _, err := SummariseOccupancy(nil, 10); err == nil {
		t.Error("empty timeline accepted")
	}
	if _, err := SummariseOccupancy(samples, 3); err == nil {
		t.Error("end before last sample accepted")
	}
	// Degenerate single-instant timeline.
	one := []sim.OccupancySample{{Tick: 5, Tokens: 4}}
	stats, err = SummariseOccupancy(one, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Mean.Equal(ratio.FromInt(4)) {
		t.Errorf("degenerate mean = %v", stats.Mean)
	}
}

func TestWriteCSVs(t *testing.T) {
	res, edge := occupancyRun(t)
	var tbuf bytes.Buffer
	if err := WriteTransfersCSV(&tbuf, res.Transfers[edge], res.Base); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(tbuf.String()), "\n")
	if lines[0] != "kind,from,to,tick,time" {
		t.Errorf("transfer header = %q", lines[0])
	}
	if len(lines) != len(res.Transfers[edge])+1 {
		t.Errorf("transfer rows = %d, want %d", len(lines)-1, len(res.Transfers[edge]))
	}
	if !strings.HasPrefix(lines[1], "prod,1,3,") {
		t.Errorf("first transfer row = %q", lines[1])
	}

	var obuf bytes.Buffer
	if err := WriteOccupancyCSV(&obuf, res.Occupancy[edge], res.Base); err != nil {
		t.Fatal(err)
	}
	olines := strings.Split(strings.TrimSpace(obuf.String()), "\n")
	if olines[0] != "tick,time,tokens" {
		t.Errorf("occupancy header = %q", olines[0])
	}
	if len(olines) != len(res.Occupancy[edge])+1 {
		t.Errorf("occupancy rows = %d, want %d", len(olines)-1, len(res.Occupancy[edge]))
	}
}

func TestOccupancyUnknownEdgeRejected(t *testing.T) {
	g, err := taskgraph.Pair("wa", r(1, 1), "wb", r(1, 1),
		taskgraph.MustQuanta(3), taskgraph.MustQuanta(3))
	if err != nil {
		t.Fatal(err)
	}
	g.Buffers()[0].Capacity = 3
	cfg, _, err := sim.TaskGraphConfig(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stop = sim.Stop{Actor: "wb", Firings: 1}
	cfg.RecordOccupancy = []string{"nope"}
	if _, err := sim.Run(cfg); err == nil {
		t.Error("unknown occupancy edge accepted")
	}
}
