package trace

import (
	"bytes"
	"strings"
	"testing"

	"vrdfcap/internal/bounds"
	"vrdfcap/internal/capacity"
	"vrdfcap/internal/quanta"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
)

func r(n, d int64) ratio.Rat { return ratio.MustNew(n, d) }

// figure3Run simulates the Figure-2 pair (m=3, n={2,3}, τ=3, ρ=1) with the
// consumer forced to the strictly periodic schedule at the analytically
// anchored offset and returns the run plus the pair's bound lines.
func figure3Run(t *testing.T, consSeq quanta.Sequence, firings int64) (*sim.Result, capacity.PairLines, *capacity.BufferResult) {
	t.Helper()
	g, err := taskgraph.Pair("wa", r(1, 1), "wb", r(1, 1),
		taskgraph.MustQuanta(3), taskgraph.MustQuanta(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	con := taskgraph.Constraint{Task: "wb", Period: r(3, 1)}
	res, err := capacity.Compute(g, con, capacity.PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	br := &res.Buffers[0]
	lines := br.AnchoredLines()
	sized, err := capacity.Sized(g, res)
	if err != nil {
		t.Fatal(err)
	}
	cfg, m, err := sim.TaskGraphConfig(sized, sim.Workloads{"wa->wb": {Cons: consSeq}})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stop = sim.Stop{Actor: "wb", Firings: firings}
	cfg.Validate = true
	cfg.RecordTransfers = []string{m.Pairs[0].Data, m.Pairs[0].Space}
	cfg.ExtraTimes = []ratio.Rat{lines.ConsumerOffset, con.Period}
	cfg.Actors = map[string]sim.ActorConfig{
		"wb": {Mode: sim.Periodic, Offset: lines.ConsumerOffset, Period: con.Period},
	}
	run, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run.Outcome != sim.Completed {
		t.Fatalf("outcome %v (underrun: %v)", run.Outcome, run.Underrun)
	}
	return run, lines, br
}

func TestFigure3ConsumptionBoundHoldsForEverySequence(t *testing.T) {
	// §4.2: the consumer's data-consumption times are bounded from below
	// by α̌c for *every* sequence of consumption quanta — this is what
	// makes the initial-token count of Equation (4) sufficient. Checked
	// for the alternating sequence of Figure 3, the two constant
	// extremes and a random stream.
	for name, seq := range map[string]quanta.Sequence{
		"fig3 alternating": quanta.Cycle(2, 3),
		"always min":       quanta.Constant(2),
		"always max":       quanta.Constant(3),
		"random":           quanta.Uniform(taskgraph.MustQuanta(2, 3), 17),
	} {
		run, lines, _ := figure3Run(t, seq, 200)
		data := run.Transfers["data:wa->wb"]
		if len(data) == 0 {
			t.Fatalf("%s: transfers not recorded", name)
		}
		if v := bounds.CheckLower(lines.DataLower, ToEvents(data, run.Base, false)); v != nil {
			t.Errorf("%s: consumption lower bound violated: %v", name, v)
		}
	}
}

func TestFigure3RunTimeScheduleMayLagBounds(t *testing.T) {
	// The second data-dependent aspect the paper calls out in §2: "with
	// data-dependent consumptions and productions the schedule that will
	// occur at run-time can be delayed compared to the schedule shown to
	// exist when computing the buffer capacities ... task wb can reduce
	// the execution rate of task wa." Under the all-min sequence the
	// producer's productions fall behind the hypothetical upper bound —
	// and that is fine, because the consumer's demand shrank with it.
	run, lines, _ := figure3Run(t, quanta.Constant(2), 200)
	data := run.Transfers["data:wa->wb"]
	if v := bounds.CheckUpper(lines.DataUpper, ToEvents(data, run.Base, true)); v == nil {
		t.Error("expected the all-min run-time schedule to lag the hypothetical production bound; it did not")
	}
	// The guarantee that matters still held: the run completed with the
	// consumer strictly periodic (asserted inside figure3Run).
}

func TestFigure3AllBoundsHoldAtMaxRate(t *testing.T) {
	// Under the all-max sequence the run-time schedule coincides with
	// the schedule constructed in the analysis: both production upper
	// bounds hold (Figure 4's geometry realised). Lower bounds need not
	// bind the ASAP producer, which may consume space early.
	run, lines, _ := figure3Run(t, quanta.Constant(3), 200)
	data := run.Transfers["data:wa->wb"]
	space := run.Transfers["space:wa->wb"]
	if v := bounds.CheckUpper(lines.DataUpper, ToEvents(data, run.Base, true)); v != nil {
		t.Errorf("data production upper bound violated at max rate: %v", v)
	}
	if v := bounds.CheckUpper(lines.SpaceUpper, ToEvents(space, run.Base, true)); v != nil {
		t.Errorf("space production upper bound violated at max rate: %v", v)
	}
	if v := bounds.CheckLower(lines.DataLower, ToEvents(data, run.Base, false)); v != nil {
		t.Errorf("data consumption lower bound violated at max rate: %v", v)
	}
}

func TestFigure3BoundsTightAtMax(t *testing.T) {
	// With the all-max sequence the consumer's consumptions sit exactly
	// on the lower bound: the bound construction is tight, not merely
	// safe.
	run, lines, _ := figure3Run(t, quanta.Constant(3), 50)
	events := ToEvents(run.Transfers["data:wa->wb"], run.Base, false)
	if len(events) == 0 {
		t.Fatal("no consumption events")
	}
	for _, e := range events {
		if !e.At.Equal(lines.DataLower.At(e.To)) {
			t.Fatalf("consumption of token %d at %v, bound %v: expected equality under all-max",
				e.To, e.At, lines.DataLower.At(e.To))
		}
	}
}

func TestToEventsSplitsDirections(t *testing.T) {
	base := sim.TimeBase{TicksPerUnit: 2}
	recs := []sim.TransferRec{
		{From: 1, To: 3, Tick: 2, Produce: true},
		{From: 1, To: 2, Tick: 3, Produce: false},
		{From: 4, To: 6, Tick: 4, Produce: true},
	}
	prod := ToEvents(recs, base, true)
	cons := ToEvents(recs, base, false)
	if len(prod) != 2 || len(cons) != 1 {
		t.Fatalf("split %d/%d, want 2/1", len(prod), len(cons))
	}
	if !prod[0].At.Equal(r(1, 1)) {
		t.Errorf("tick conversion wrong: %v", prod[0].At)
	}
	if cons[0].To != 2 {
		t.Errorf("consumption event = %+v", cons[0])
	}
}

func TestTableRows(t *testing.T) {
	upper := bounds.Line{Offset: r(1, 1), Mu: r(1, 1)}
	lower := bounds.Line{Offset: r(1, 1), Mu: r(1, 1)}
	base := sim.TimeBase{TicksPerUnit: 1}
	recs := []sim.TransferRec{
		{From: 1, To: 3, Tick: 1, Produce: true},  // bound at token 1: 1, slack 0
		{From: 1, To: 2, Tick: 3, Produce: false}, // bound at token 2: 2, slack 1
		{From: 4, To: 6, Tick: 10, Produce: true}, // bound at token 4: 4, slack -6
		{From: 3, To: 5, Tick: 5, Produce: false}, // bound at token 5: 5, slack 0
	}
	rows := Table(upper, lower, recs, base)
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	if !rows[0].Slack.IsZero() || !rows[1].Slack.Equal(r(1, 1)) {
		t.Errorf("slacks: %v, %v", rows[0].Slack, rows[1].Slack)
	}
	if rows[2].Slack.Sign() >= 0 {
		t.Errorf("late production has non-negative slack %v", rows[2].Slack)
	}
	if rows[0].Firing != 0 || rows[2].Firing != 1 || rows[3].Firing != 1 {
		t.Errorf("firing numbering wrong: %d %d %d", rows[0].Firing, rows[2].Firing, rows[3].Firing)
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "prod") || !strings.Contains(out, "cons") {
		t.Errorf("table output missing kinds:\n%s", out)
	}
}

func TestPlotCumulative(t *testing.T) {
	run, lines, _ := figure3Run(t, quanta.Cycle(2, 3), 12)
	var buf bytes.Buffer
	err := PlotCumulative(&buf, lines.DataUpper, lines.DataLower,
		run.Transfers["data:wa->wb"], run.Base, 60, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "P") || !strings.Contains(out, "C") {
		t.Errorf("plot lacks event marks:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 10 {
		t.Errorf("plot too short:\n%s", out)
	}
	// Empty input is handled gracefully.
	var empty bytes.Buffer
	if err := PlotCumulative(&empty, lines.DataUpper, lines.DataLower, nil, run.Base, 40, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no transfers") {
		t.Error("empty plot message missing")
	}
}

func TestGantt(t *testing.T) {
	base := sim.TimeBase{TicksPerUnit: 1}
	var buf bytes.Buffer
	err := Gantt(&buf, map[string][]int64{
		"wa": {0, 2, 4},
		"wb": {1, 3},
	}, base, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "wa") || !strings.Contains(out, "wb") {
		t.Errorf("lanes missing:\n%s", out)
	}
	if strings.Count(out, "#") < 5 {
		t.Errorf("start marks missing:\n%s", out)
	}
}
