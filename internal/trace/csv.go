package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
)

// WriteTransfersCSV writes recorded transfers of one edge as CSV with the
// header "kind,from,to,tick,time": kind is "prod" or "cons", time is the
// exact rational form of the tick.
func WriteTransfersCSV(w io.Writer, recs []sim.TransferRec, base sim.TimeBase) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "from", "to", "tick", "time"}); err != nil {
		return err
	}
	for _, rec := range recs {
		kind := "cons"
		if rec.Produce {
			kind = "prod"
		}
		row := []string{
			kind,
			strconv.FormatInt(rec.From, 10),
			strconv.FormatInt(rec.To, 10),
			strconv.FormatInt(rec.Tick, 10),
			base.Rat(rec.Tick).String(),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteOccupancyCSV writes an edge's token-count timeline as CSV with the
// header "tick,time,tokens".
func WriteOccupancyCSV(w io.Writer, samples []sim.OccupancySample, base sim.TimeBase) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"tick", "time", "tokens"}); err != nil {
		return err
	}
	for _, s := range samples {
		row := []string{
			strconv.FormatInt(s.Tick, 10),
			base.Rat(s.Tick).String(),
			strconv.FormatInt(s.Tokens, 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// OccupancyStats summarises an occupancy timeline over [first sample, end].
type OccupancyStats struct {
	Peak, Min int64
	// Mean is the time-weighted mean token count: the average number of
	// containers occupied, the quantity a memory-dimensioning study
	// reports next to the worst case.
	Mean ratio.Rat
}

// SummariseOccupancy computes statistics over the timeline up to endTick
// (the last sample's value is held until endTick).
func SummariseOccupancy(samples []sim.OccupancySample, endTick int64) (OccupancyStats, error) {
	if len(samples) == 0 {
		return OccupancyStats{}, fmt.Errorf("trace: empty occupancy timeline")
	}
	if endTick < samples[len(samples)-1].Tick {
		return OccupancyStats{}, fmt.Errorf("trace: end tick %d precedes last sample %d", endTick, samples[len(samples)-1].Tick)
	}
	stats := OccupancyStats{Peak: samples[0].Tokens, Min: samples[0].Tokens}
	var weighted int64
	for i, s := range samples {
		if s.Tokens > stats.Peak {
			stats.Peak = s.Tokens
		}
		if s.Tokens < stats.Min {
			stats.Min = s.Tokens
		}
		next := endTick
		if i+1 < len(samples) {
			next = samples[i+1].Tick
		}
		weighted += s.Tokens * (next - s.Tick)
	}
	span := endTick - samples[0].Tick
	if span <= 0 {
		stats.Mean = ratio.FromInt(samples[len(samples)-1].Tokens)
		return stats, nil
	}
	stats.Mean = ratio.MustNew(weighted, span)
	return stats, nil
}
