// Package trace post-processes simulation traces: it converts recorded
// token transfers into the cumulative-transfer events used by the bounds
// package, checks bound conservativeness against executed schedules, and
// renders text versions of the paper's Figure 3 (cumulative transfers
// against the linear bounds α̂p and α̌c) and simple Gantt charts of actor
// start times.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"vrdfcap/internal/bounds"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
)

// ToEvents converts recorded transfers of one edge into bound-check events,
// keeping only productions (produce=true) or consumptions (produce=false).
func ToEvents(recs []sim.TransferRec, base sim.TimeBase, produce bool) []bounds.Event {
	var out []bounds.Event
	for _, rec := range recs {
		if rec.Produce != produce {
			continue
		}
		out = append(out, bounds.Event{
			From: rec.From,
			To:   rec.To,
			At:   base.Rat(rec.Tick),
		})
	}
	return out
}

// CheckConservative verifies that an executed schedule respects a pair of
// linear bounds on one edge: every production no later than the upper bound
// and every consumption no earlier than the lower bound. It returns the
// first violation, or nil.
func CheckConservative(upper, lower bounds.Line, recs []sim.TransferRec, base sim.TimeBase) *bounds.Violation {
	if v := bounds.CheckUpper(upper, ToEvents(recs, base, true)); v != nil {
		return v
	}
	return bounds.CheckLower(lower, ToEvents(recs, base, false))
}

// Row is one line of a Figure-3 style table: a firing's transfer and the
// bound value for its binding token.
type Row struct {
	Firing   int64
	From, To int64
	At       ratio.Rat
	Bound    ratio.Rat
	Produce  bool
	// Slack is Bound−At for productions (non-negative when conservative)
	// and At−Bound for consumptions.
	Slack ratio.Rat
}

// Table builds Figure-3 style rows for one edge: productions against the
// upper bound and consumptions against the lower bound, in time order.
func Table(upper, lower bounds.Line, recs []sim.TransferRec, base sim.TimeBase) []Row {
	rows := make([]Row, 0, len(recs))
	var pk, ck int64
	for _, rec := range recs {
		at := base.Rat(rec.Tick)
		var row Row
		if rec.Produce {
			b := upper.At(rec.From)
			row = Row{Firing: pk, From: rec.From, To: rec.To, At: at, Bound: b, Produce: true, Slack: b.Sub(at)}
			pk++
		} else {
			b := lower.At(rec.To)
			row = Row{Firing: ck, From: rec.From, To: rec.To, At: at, Bound: b, Produce: false, Slack: at.Sub(b)}
			ck++
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteTable formats rows as an aligned text table.
func WriteTable(w io.Writer, rows []Row) error {
	if _, err := fmt.Fprintf(w, "%-6s %-5s %-12s %-12s %-12s %-10s\n",
		"kind", "fire", "tokens", "time", "bound", "slack"); err != nil {
		return err
	}
	for _, r := range rows {
		kind := "cons"
		if r.Produce {
			kind = "prod"
		}
		if _, err := fmt.Fprintf(w, "%-6s %-5d [%d,%d]%s %-12s %-12s %-10s\n",
			kind, r.Firing, r.From, r.To,
			strings.Repeat(" ", pad(r.From, r.To)),
			r.At, r.Bound, r.Slack); err != nil {
			return err
		}
	}
	return nil
}

func pad(from, to int64) int {
	n := len(fmt.Sprintf("[%d,%d]", from, to))
	if n >= 12 {
		return 1
	}
	return 12 - n
}

// PlotCumulative renders an ASCII version of the paper's Figure 3: the
// x-axis is the cumulative token index, the y-axis (downwards) is time.
// Productions are marked 'P', consumptions 'C', the upper production bound
// '·' (middle dot) where no event sits, and coincident marks prefer
// events. width and height bound the canvas.
func PlotCumulative(w io.Writer, upper, lower bounds.Line, recs []sim.TransferRec, base sim.TimeBase, width, height int) error {
	if width < 16 {
		width = 16
	}
	if height < 8 {
		height = 8
	}
	if len(recs) == 0 {
		_, err := fmt.Fprintln(w, "(no transfers recorded)")
		return err
	}
	maxTok := int64(0)
	maxTick := int64(0)
	for _, r := range recs {
		if r.To > maxTok {
			maxTok = r.To
		}
		if r.Tick > maxTick {
			maxTick = r.Tick
		}
	}
	// Include the bound values at the extremes so the lines fit.
	maxT := base.Rat(maxTick)
	for _, b := range []ratio.Rat{upper.At(maxTok), lower.At(maxTok)} {
		if maxT.Less(b) {
			maxT = b
		}
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	col := func(tok int64) int {
		if maxTok <= 1 {
			return 0
		}
		return int((tok - 1) * int64(width-1) / (maxTok - 1))
	}
	rowOf := func(t ratio.Rat) int {
		if maxT.Sign() <= 0 {
			return 0
		}
		// row = t/maxT * (height-1), computed exactly then floored.
		return int(t.MulInt(int64(height - 1)).Div(maxT).Floor())
	}
	// Bound lines.
	for tok := int64(1); tok <= maxTok; tok++ {
		for _, l := range []bounds.Line{upper, lower} {
			rr := rowOf(l.At(tok))
			if rr >= 0 && rr < height {
				grid[rr][col(tok)] = '.'
			}
		}
	}
	// Events on top.
	for _, rec := range recs {
		rr := rowOf(base.Rat(rec.Tick))
		if rr < 0 || rr >= height {
			continue
		}
		mark := byte('C')
		if rec.Produce {
			mark = 'P'
		}
		for tok := rec.From; tok <= rec.To; tok++ {
			grid[rr][col(tok)] = mark
		}
	}
	if _, err := fmt.Fprintf(w, "cumulative tokens 1..%d ->, time 0..%v (down); P=produce C=consume .=bounds\n", maxTok, maxT); err != nil {
		return err
	}
	for _, line := range grid {
		if _, err := fmt.Fprintf(w, "|%s|\n", line); err != nil {
			return err
		}
	}
	return nil
}

// Gantt renders actor start times as one text lane per actor. Each column
// is a bucket of ticks; a '#' marks a bucket containing at least one start.
func Gantt(w io.Writer, starts map[string][]int64, base sim.TimeBase, width int) error {
	if width < 10 {
		width = 10
	}
	names := make([]string, 0, len(starts))
	maxTick := int64(1)
	for n, ss := range starts {
		names = append(names, n)
		for _, s := range ss {
			if s > maxTick {
				maxTick = s
			}
		}
	}
	sort.Strings(names)
	nameW := 0
	for _, n := range names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	for _, n := range names {
		lane := []byte(strings.Repeat("-", width))
		for _, s := range starts[n] {
			c := int(s * int64(width-1) / maxTick)
			lane[c] = '#'
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", nameW, n, lane); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-*s  0%*s\n", nameW, "", width, base.Rat(maxTick).String())
	return err
}
