// Package mp3 models the MP3 playback application used in the experimental
// evaluation of Wiggers et al. (DATE 2008), §5 and Figure 5.
//
// The application is a four-task chain:
//
//	vBR --2048/n--> vMP3 --1152/480--> vSRC --441/1--> vDAC
//
// vBR reads blocks of 2048 bytes from a compact disc; vMP3 decodes variable
// bit-rate MPEG-1 Layer III audio, consuming n bytes per frame where n
// depends on the frame's bit rate; vSRC converts the sample rate from
// 48 kHz to 44.1 kHz (480 samples in, 441 samples out); vDAC consumes one
// sample per period. The throughput constraint is that vDAC executes
// strictly periodically at 44.1 kHz.
//
// At 48 kHz an MPEG-1 Layer III frame carries 1152 samples and occupies
// 144·bitrate/48000 bytes (padding is never needed because 48000 divides
// 144·bitrate for all standard bit rates); the maximum bit rate of
// 320 kbit/s gives the paper's maximum of 960 bytes per frame.
package mp3

import (
	"fmt"
	"math/rand"

	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

// Bitrates lists the MPEG-1 Layer III bit rates in kbit/s.
var Bitrates = []int64{32, 40, 48, 56, 64, 80, 96, 112, 128, 160, 192, 224, 256, 320}

// Task names of the Figure-5 graph.
const (
	TaskBR  = "vBR"
	TaskMP3 = "vMP3"
	TaskSRC = "vSRC"
	TaskDAC = "vDAC"
)

// Transfer quanta of the Figure-5 graph.
const (
	// BlockBytes is vBR's production quantum: one compact-disc block.
	BlockBytes = 2048
	// FrameSamples is the number of samples per MPEG-1 Layer III frame.
	FrameSamples = 1152
	// SRCIn and SRCOut are the sample-rate converter's quanta: 480
	// samples at 48 kHz become 441 samples at 44.1 kHz.
	SRCIn  = 480
	SRCOut = 441
	// MaxFrameBytes is the frame size at the maximum bit rate
	// (320 kbit/s at 48 kHz), the paper's n̂ = 960.
	MaxFrameBytes = 960
	// StreamRate is the sample rate of the compressed stream in Hz.
	StreamRate = 48000
	// OutputRate is the DAC sample rate in Hz.
	OutputRate = 44100
)

// FrameBytes returns the byte size of an MPEG-1 Layer III frame at the
// given bit rate (kbit/s) and sample rate (Hz), without padding:
// 144·bitrate/sampleRate.
func FrameBytes(bitrateKbps, sampleRate int64) (int64, error) {
	if bitrateKbps <= 0 || sampleRate <= 0 {
		return 0, fmt.Errorf("mp3: non-positive bitrate %d or sample rate %d", bitrateKbps, sampleRate)
	}
	num := 144 * bitrateKbps * 1000
	if num%sampleRate != 0 {
		// Real decoders add a padding byte on some frames; at 48 kHz this
		// never triggers for the standard bit rates.
		return num/sampleRate + 1, nil
	}
	return num / sampleRate, nil
}

// FrameSizes returns the set of frame byte sizes reachable at 48 kHz across
// all standard bit rates — the quanta set of vMP3's consumption.
func FrameSizes() taskgraph.QuantaSet {
	sizes := make([]int64, 0, len(Bitrates))
	for _, br := range Bitrates {
		n, err := FrameBytes(br, StreamRate)
		if err != nil {
			panic(err) // table entries are valid by construction
		}
		sizes = append(sizes, n)
	}
	return taskgraph.MustQuanta(sizes...)
}

// WCRTs returns the paper's response times, "derived from the throughput
// constraint [so that they] would just allow the throughput constraint to
// be satisfied": 51.2 ms, 24 ms, 10 ms and 1/44.1 ms, in seconds.
func WCRTs() map[string]ratio.Rat {
	return map[string]ratio.Rat{
		TaskBR:  ratio.MustNew(32, 625),       // 51.2 ms
		TaskMP3: ratio.MustNew(3, 125),        // 24 ms
		TaskSRC: ratio.MustNew(1, 100),        // 10 ms
		TaskDAC: ratio.MustNew(1, OutputRate), // ≈ 0.0227 ms
	}
}

// Constraint returns the application's throughput constraint: vDAC executes
// strictly periodically at 44.1 kHz.
func Constraint() taskgraph.Constraint {
	return taskgraph.Constraint{Task: TaskDAC, Period: ratio.MustNew(1, OutputRate)}
}

// Graph builds the Figure-5 task graph with the paper's response times and
// vMP3's consumption quanta covering all standard bit rates (so n̂ = 960).
// Buffer capacities are left at zero for the analysis to fill in.
func Graph() (*taskgraph.Graph, error) {
	return GraphWithFrameQuanta(FrameSizes())
}

// GraphWithFrameQuanta builds the Figure-5 graph with a caller-chosen
// consumption quanta set for vMP3 (e.g. a constant set for the paper's
// lower-bound comparison).
func GraphWithFrameQuanta(frameQuanta taskgraph.QuantaSet) (*taskgraph.Graph, error) {
	w := WCRTs()
	return taskgraph.BuildChain(
		[]taskgraph.Stage{
			{Name: TaskBR, WCRT: w[TaskBR]},
			{Name: TaskMP3, WCRT: w[TaskMP3]},
			{Name: TaskSRC, WCRT: w[TaskSRC]},
			{Name: TaskDAC, WCRT: w[TaskDAC]},
		},
		[]taskgraph.Link{
			// Containers on the first buffer are compressed bytes;
			// the others carry PCM samples (4 bytes each,
			// illustrative — the paper reports containers only).
			{Prod: taskgraph.MustQuanta(BlockBytes), Cons: frameQuanta, ContainerBytes: 1},
			{Prod: taskgraph.MustQuanta(FrameSamples), Cons: taskgraph.MustQuanta(SRCIn), ContainerBytes: SampleBytes},
			{Prod: taskgraph.MustQuanta(SRCOut), Cons: taskgraph.MustQuanta(1), ContainerBytes: SampleBytes},
		},
	)
}

// SampleBytes is the illustrative PCM sample size used for memory
// reporting.
const SampleBytes = 4

// BufferNames returns the buffer names of the Figure-5 graph in chain
// order, corresponding to the paper's d1, d2, d3.
func BufferNames() [3]string {
	return [3]string{
		TaskBR + "->" + TaskMP3,
		TaskMP3 + "->" + TaskSRC,
		TaskSRC + "->" + TaskDAC,
	}
}

// VBRStream generates a reproducible variable bit-rate stream of frame byte
// sizes. It stands in for the paper's compact-disc stream: each value is a
// legal 48 kHz frame size, drawn from the standard bit-rate table with a
// seeded generator.
type VBRStream struct {
	rng   *rand.Rand
	sizes []int64
}

// NewVBRStream returns a stream seeded deterministically.
func NewVBRStream(seed int64) *VBRStream {
	return &VBRStream{
		rng:   rand.New(rand.NewSource(seed)),
		sizes: FrameSizes().Values(),
	}
}

// Next returns the next frame's byte size.
func (s *VBRStream) Next() int64 {
	return s.sizes[s.rng.Intn(len(s.sizes))]
}

// Take returns the next n frame sizes.
func (s *VBRStream) Take(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// CBRStream returns n copies of the frame size at the given bit rate —
// the constant-bit-rate special case the related work can handle.
func CBRStream(bitrateKbps int64, n int) ([]int64, error) {
	size, err := FrameBytes(bitrateKbps, StreamRate)
	if err != nil {
		return nil, err
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = size
	}
	return out, nil
}
