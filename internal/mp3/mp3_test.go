package mp3

import (
	"testing"

	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

func TestFrameBytes(t *testing.T) {
	cases := []struct {
		bitrate, rate int64
		want          int64
	}{
		// 48 kHz divides 144·bitrate for all standard rates.
		{320, 48000, 960},
		{32, 48000, 96},
		{128, 48000, 384},
		{160, 48000, 480},
		// 44.1 kHz does not divide: the conservative (padded) size.
		{128, 44100, 418},
	}
	for _, c := range cases {
		got, err := FrameBytes(c.bitrate, c.rate)
		if err != nil {
			t.Fatalf("FrameBytes(%d, %d): %v", c.bitrate, c.rate, err)
		}
		if got != c.want {
			t.Errorf("FrameBytes(%d, %d) = %d, want %d", c.bitrate, c.rate, got, c.want)
		}
	}
	if _, err := FrameBytes(0, 48000); err == nil {
		t.Error("zero bitrate accepted")
	}
	if _, err := FrameBytes(128, 0); err == nil {
		t.Error("zero sample rate accepted")
	}
}

func TestFrameSizes(t *testing.T) {
	q := FrameSizes()
	if q.Len() != len(Bitrates) {
		t.Errorf("FrameSizes has %d members, want %d", q.Len(), len(Bitrates))
	}
	if q.Min() != 96 || q.Max() != 960 {
		t.Errorf("range [%d, %d], want [96, 960]", q.Min(), q.Max())
	}
	// At 48 kHz every size is 3 bytes per kbit/s.
	for _, br := range Bitrates {
		if !q.Contains(3 * br) {
			t.Errorf("size %d for bitrate %d missing", 3*br, br)
		}
	}
}

func TestGraphMatchesFigure5(t *testing.T) {
	g, err := Graph()
	if err != nil {
		t.Fatal(err)
	}
	tasks, buffers, err := g.Chain()
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{TaskBR, TaskMP3, TaskSRC, TaskDAC}
	for i, w := range wantOrder {
		if tasks[i].Name != w {
			t.Errorf("chain[%d] = %s, want %s", i, tasks[i].Name, w)
		}
	}
	if buffers[0].Prod.Max() != BlockBytes || buffers[0].Cons.Max() != MaxFrameBytes {
		t.Errorf("buffer 1 quanta: %v / %v", buffers[0].Prod, buffers[0].Cons)
	}
	if buffers[1].Prod.Max() != FrameSamples || buffers[1].Cons.Max() != SRCIn {
		t.Errorf("buffer 2 quanta: %v / %v", buffers[1].Prod, buffers[1].Cons)
	}
	if buffers[2].Prod.Max() != SRCOut || buffers[2].Cons.Max() != 1 {
		t.Errorf("buffer 3 quanta: %v / %v", buffers[2].Prod, buffers[2].Cons)
	}
	names := BufferNames()
	for i, b := range buffers {
		if b.DefaultName() != names[i] {
			t.Errorf("buffer %d name %q, want %q", i, b.DefaultName(), names[i])
		}
	}
	// Response times are the paper's.
	want := WCRTs()
	for _, task := range tasks {
		if !task.WCRT.Equal(want[task.Name]) {
			t.Errorf("κ(%s) = %v, want %v", task.Name, task.WCRT, want[task.Name])
		}
	}
}

func TestConstraintIs44100Hz(t *testing.T) {
	c := Constraint()
	if c.Task != TaskDAC {
		t.Errorf("constraint on %s, want %s", c.Task, TaskDAC)
	}
	if !c.Period.Equal(ratio.MustNew(1, 44100)) {
		t.Errorf("period %v, want 1/44100", c.Period)
	}
	g, err := Graph()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(g); err != nil {
		t.Errorf("constraint invalid on its own graph: %v", err)
	}
}

func TestWCRTValues(t *testing.T) {
	w := WCRTs()
	// 51.2 ms = 32/625 s, etc.
	if !w[TaskBR].Equal(ratio.MustNew(32, 625)) {
		t.Errorf("κ(vBR) = %v", w[TaskBR])
	}
	if f := w[TaskMP3].Float64() * 1000; f != 24 {
		t.Errorf("κ(vMP3) = %v ms", f)
	}
	if f := w[TaskSRC].Float64() * 1000; f != 10 {
		t.Errorf("κ(vSRC) = %v ms", f)
	}
}

func TestVBRStreamDeterministicAndValid(t *testing.T) {
	a := NewVBRStream(5)
	b := NewVBRStream(5)
	sizes := FrameSizes()
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		v := a.Next()
		if v != b.Next() {
			t.Fatal("same seed diverged")
		}
		if !sizes.Contains(v) {
			t.Fatalf("frame size %d not a legal 48 kHz size", v)
		}
		seen[v] = true
	}
	if len(seen) < 10 {
		t.Errorf("only %d distinct sizes in 1000 frames; generator suspiciously narrow", len(seen))
	}
	if got := a.Take(5); len(got) != 5 {
		t.Errorf("Take(5) returned %d", len(got))
	}
}

func TestCBRStream(t *testing.T) {
	s, err := CBRStream(320, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s {
		if v != 960 {
			t.Errorf("CBR 320 frame = %d, want 960", v)
		}
	}
	if _, err := CBRStream(-1, 4); err == nil {
		t.Error("negative bitrate accepted")
	}
}

func TestGraphWithFrameQuantaConstant(t *testing.T) {
	g, err := GraphWithFrameQuanta(taskgraph.MustQuanta(960))
	if err != nil {
		t.Fatal(err)
	}
	b := g.BufferByName(TaskBR + "->" + TaskMP3)
	if !b.Cons.IsConstant() || b.Cons.Max() != 960 {
		t.Errorf("constant-quanta graph has %v", b.Cons)
	}
}
