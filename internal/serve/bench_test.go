package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"vrdfcap/internal/probecache"
)

// nopWriter is an http.ResponseWriter that swallows the response. Its
// header map persists across requests, matching a real connection where
// net/http reuses the header allocation — so a steady-state cache hit
// writes into existing storage.
type nopWriter struct{ h http.Header }

func (w *nopWriter) Header() http.Header         { return w.h }
func (w *nopWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nopWriter) WriteHeader(int)             {}

// rewindBody replays the same request bytes every iteration without
// re-allocating a reader.
type rewindBody struct{ r *bytes.Reader }

func (b *rewindBody) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *rewindBody) Close() error               { return nil }
func (b *rewindBody) rewind()                    { _, _ = b.r.Seek(0, io.SeekStart) }

// warmHit returns a server whose response cache already holds the answer
// for the returned request, plus the rewindable body backing it.
func warmHit(tb testing.TB) (*Server, *http.Request, *rewindBody) {
	tb.Helper()
	s := New(Config{Store: probecache.NewStore("")})
	tb.Cleanup(s.Close)
	body := &rewindBody{r: bytes.NewReader([]byte(pairDoc))}
	req := httptest.NewRequest(http.MethodPost, "/v1/size", nil)
	req.Body = body
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		tb.Fatalf("warm-up request failed: %d %s", rec.Code, rec.Body)
	}
	return s, req, body
}

// TestServeCacheHitAllocs pins the tentpole property: a steady-state
// response-cache hit allocates NOTHING — pooled request context, retained
// buffers, stack-only hashing, array-keyed map probe, pre-built header
// value. Guarded against the race runtime, which instruments allocations.
func TestServeCacheHitAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the gate runs without -race")
	}
	s, req, body := warmHit(t)
	w := &nopWriter{h: make(http.Header)}
	allocs := testing.AllocsPerRun(200, func() {
		body.rewind()
		s.ServeHTTP(w, req)
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocated %.1f objects per request, want 0", allocs)
	}
	if got := s.StatsSnapshot().CacheHits; got == 0 {
		t.Fatal("allocation loop never hit the response cache")
	}
}

// BenchmarkServeCacheHit is the CI-gated number: ns/op and 0 allocs/op
// for the exact-repeat fast path.
func BenchmarkServeCacheHit(b *testing.B) {
	s, req, body := warmHit(b)
	w := &nopWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.rewind()
		s.ServeHTTP(w, req)
	}
}

// BenchmarkServeWarmProblem measures the semantic-miss path: every request
// is textually fresh (never response-cached) but names the same problem,
// so the full parse → fingerprint → flight → frontier-replay pipeline runs
// with warm verdicts and no simulation.
func BenchmarkServeWarmProblem(b *testing.B) {
	s := New(Config{Store: probecache.NewStore(""), Firings: 200})
	b.Cleanup(s.Close)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/minimize?firings=200",
		bytes.NewReader([]byte(pairDoc)))
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("warm-up request failed: %d %s", rec.Code, rec.Body)
	}
	w := &nopWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc := fmt.Sprintf("# iteration %d\n%s", i, pairDoc)
		r := httptest.NewRequest(http.MethodPost, "/v1/minimize?firings=200",
			bytes.NewReader([]byte(doc)))
		s.ServeHTTP(w, r)
	}
}

// BenchmarkRingPutPop measures the access-log ring's per-entry cost.
func BenchmarkRingPutPop(b *testing.B) {
	r := newRing(1024)
	var e, out logEntry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.when = int64(i)
		r.put(&e)
		r.pop(&out)
	}
}
