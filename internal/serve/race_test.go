//go:build race

package serve

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions skip under it.
const raceEnabled = true
