package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"vrdfcap/internal/dispatch"
)

// TestProbeEndpoint pins the /v1/probe wire contract the dispatch
// coordinator depends on: verdicts echo the requested periods in request
// order, and the same periods answered by /v1/sweep carry the same
// validity/total values — the server-side half of the byte-identity
// invariant.
func TestProbeEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	status, body := post(t, ts, dispatch.ProbePath+"?periods=2,5/2,3,7/2", pairDoc)
	if status != http.StatusOK {
		t.Fatalf("probe status = %d, body %s", status, body)
	}
	var pr struct {
		Task     string `json:"task"`
		Policy   string `json:"policy"`
		Verdicts []struct {
			Period string `json:"period"`
			Valid  bool   `json:"valid"`
			Total  int64  `json:"total"`
		} `json:"verdicts"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("decode probe response: %v", err)
	}
	if pr.Task != "b" || pr.Policy != "equation4" {
		t.Fatalf("probe answered task=%q policy=%q", pr.Task, pr.Policy)
	}
	wantPeriods := []string{"2", "5/2", "3", "7/2"}
	if len(pr.Verdicts) != len(wantPeriods) {
		t.Fatalf("got %d verdicts, want %d", len(pr.Verdicts), len(wantPeriods))
	}
	for i, v := range pr.Verdicts {
		if v.Period != wantPeriods[i] {
			t.Fatalf("verdict %d echoes period %q, want %q", i, v.Period, wantPeriods[i])
		}
	}

	// Cross-endpoint identity: /v1/sweep over the same periods must agree
	// verdict-for-verdict.
	status, body = post(t, ts, "/v1/sweep?periods=2,5/2,3,7/2", pairDoc)
	if status != http.StatusOK {
		t.Fatalf("sweep status = %d, body %s", status, body)
	}
	var sr struct {
		Points []struct {
			Period string `json:"period"`
			Valid  bool   `json:"valid"`
			Total  int64  `json:"total"`
		} `json:"points"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decode sweep response: %v", err)
	}
	if len(sr.Points) != len(pr.Verdicts) {
		t.Fatalf("sweep answered %d points, probe %d", len(sr.Points), len(pr.Verdicts))
	}
	for i := range sr.Points {
		p, v := sr.Points[i], pr.Verdicts[i]
		if p.Period != v.Period || p.Valid != v.Valid || p.Total != v.Total {
			t.Fatalf("point %d: sweep %+v != probe %+v", i, p, v)
		}
	}

	// Effort shows up on /statsz.
	st := s.StatsSnapshot()
	if st.ProbeBatches < 1 || st.ProbePeriods < 4 {
		t.Fatalf("probe counters = %d batches / %d periods, want ≥ 1 / ≥ 4", st.ProbeBatches, st.ProbePeriods)
	}
}

// TestProbeEndpointParamErrors pins the 400 mapping for bad probe input.
func TestProbeEndpointParamErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	for _, q := range []string{"", "?periods=0", "?periods=nope", "?periods=1&policy=bogus"} {
		if status, body := post(t, ts, dispatch.ProbePath+q, pairDoc); status != http.StatusBadRequest {
			t.Errorf("probe%s: status = %d (body %s), want 400", q, status, body)
		}
	}
}

// TestProbeNeverFansOut pins the no-recursion guarantee: a coordinator
// whose /v1/probe is asked while SweepWorkers points at itself must
// compute locally rather than dispatch (a fleet listing each other would
// otherwise loop).
func TestProbeNeverFansOut(t *testing.T) {
	s := newTestServer(t, Config{SweepWorkers: []string{"http://127.0.0.1:0"}})
	ts := httptest.NewServer(s)
	defer ts.Close()
	status, body := post(t, ts, dispatch.ProbePath+"?periods=3", pairDoc)
	if status != http.StatusOK {
		t.Fatalf("probe on a coordinator: status = %d, body %s", status, body)
	}
	// The sweep path DOES dispatch (to a dead worker here) and must still
	// answer exactly via the local fallback.
	status, body = post(t, ts, "/v1/sweep?periods=3", pairDoc)
	if status != http.StatusOK {
		t.Fatalf("sweep on a coordinator with dead workers: status = %d, body %s", status, body)
	}
	if st := s.StatsSnapshot(); st.Dispatch == nil || st.Dispatch.Sweeps != 1 {
		t.Fatalf("coordinator stats missing dispatch snapshot: %+v", st.Dispatch)
	}
}
