package serve

import (
	"sync"
	"testing"
)

// TestRingSingleThreaded pins the slot protocol: fill, drain, refill
// across the wrap-around boundary.
func TestRingSingleThreaded(t *testing.T) {
	r := newRing(4)
	var e logEntry
	if r.pop(&e) {
		t.Fatal("pop from an empty ring succeeded")
	}
	for lap := 0; lap < 3; lap++ {
		for i := int64(0); i < 4; i++ {
			if !r.put(&logEntry{when: i, dur: i}) {
				t.Fatalf("lap %d: put %d into a non-full ring failed", lap, i)
			}
		}
		if r.put(&logEntry{when: 99}) {
			t.Fatalf("lap %d: put into a full ring succeeded", lap)
		}
		for i := int64(0); i < 4; i++ {
			if !r.pop(&e) {
				t.Fatalf("lap %d: pop %d from a non-empty ring failed", lap, i)
			}
			if e.when != i || e.dur != i {
				t.Fatalf("lap %d: popped %+v, want when=dur=%d", lap, e, i)
			}
		}
	}
	if got := r.dropped.Load(); got != 3 {
		t.Fatalf("dropped = %d, want 3 (one per lap)", got)
	}
}

// TestRingConcurrent hammers the ring from many producers under one
// consumer and checks conservation (puts == pops + drops) and integrity
// (no torn entries: every popped entry satisfies the producer's
// invariant).
func TestRingConcurrent(t *testing.T) {
	const producers = 8
	const perProducer = 5000
	r := newRing(64)

	var wg sync.WaitGroup
	var produced [producers]int64 // successful puts per producer
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := int64(p*perProducer + i)
				e := logEntry{when: v, dur: v ^ 0x5a5a, status: int32(v % 1000)}
				if r.put(&e) {
					produced[p]++
				}
			}
		}(p)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var popped int64
	var e logEntry
	for {
		if r.pop(&e) {
			popped++
			if e.dur != e.when^0x5a5a || e.status != int32(e.when%1000) {
				t.Errorf("torn entry: %+v", e)
				break
			}
			continue
		}
		select {
		case <-done:
			// Producers are finished; drain what is left and stop.
			for r.pop(&e) {
				popped++
				if e.dur != e.when^0x5a5a {
					t.Errorf("torn entry after drain: %+v", e)
				}
			}
			var ok int64
			for _, n := range produced {
				ok += n
			}
			if popped != ok {
				t.Fatalf("popped %d entries, producers recorded %d successful puts", popped, ok)
			}
			if total := popped + int64(r.dropped.Load()); total != producers*perProducer {
				t.Fatalf("pops(%d) + drops(%d) = %d, want %d attempts", popped, r.dropped.Load(), total, producers*perProducer)
			}
			return
		default:
		}
	}
}
