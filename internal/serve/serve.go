// Package serve is the capacity-analysis service: an http.Handler that
// accepts task-graph documents (JSON or text, see internal/graphio) and
// returns analytic sizings, empirical minimizations, period sweeps and
// degradation curves.
//
// The package is engineered around three load-bearing properties:
//
//   - Zero-allocation steady state. A request whose exact bytes were
//     answered before is served from a bounded response cache keyed by a
//     [32]byte sha256 of (method, path, query, body); the lookup path uses
//     pooled request contexts with retained-capacity scratch buffers and
//     performs no heap allocation (pinned by BenchmarkServeCacheHit and
//     the //vrdf:noalloc annotations).
//
//   - Request coalescing. Cache misses are keyed a second time by the
//     canonical problem fingerprint (probecache.GraphKey over the parsed
//     graph plus every parameter that co-determines the answer): N
//     concurrent requests for the same problem — even with textually
//     different documents — run ONE computation, and every waiter receives
//     byte-identical response bodies. Verdicts land in the probecache
//     store, so even after the response cache evicts, repeat sizings
//     replay from the feasibility frontier instead of simulating.
//
//   - Bounded everything. Documents are parsed under graphio.Limits,
//     computations run on a fixed worker pool with a bounded queue (a full
//     queue sheds load with 503 instead of buffering), each computation
//     gets a wall-clock budget enforced through internal/budget, and the
//     access log is a lock-free ring that drops entries under pressure
//     rather than blocking the request path.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/cachestore"
	"vrdfcap/internal/capacity"
	"vrdfcap/internal/dispatch"
	"vrdfcap/internal/faults"
	"vrdfcap/internal/graphio"
	"vrdfcap/internal/minimize"
	"vrdfcap/internal/parallel"
	"vrdfcap/internal/probecache"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
)

// Config tunes a Server. The zero value selects production defaults; see
// the field comments for each.
type Config struct {
	// Limits bounds every request document (zero value: graphio.DefaultLimits).
	// Limits.MaxBytes also caps the request body before parsing.
	Limits graphio.Limits
	// Workers is the number of analysis worker goroutines (≤0: GOMAXPROCS).
	Workers int
	// Queue bounds jobs waiting for a worker; a full queue answers 503 (≤0: 64).
	Queue int
	// RequestTimeout is the wall-clock budget per computation, enforced
	// through internal/budget (0: 30s; negative: unlimited).
	RequestTimeout time.Duration
	// SearchWorkers is the parallelism inside one search or sweep (≤0: 1;
	// cross-request parallelism comes from Workers).
	SearchWorkers int
	// SweepWorkers, when non-empty, lists remote vrdfserve base URLs that
	// /v1/sweep requests are sharded across through the internal/dispatch
	// coordinator (vrdfserve -workers). The /v1/probe batches the
	// coordinator issues always compute locally, so a fleet whose members
	// list each other can never recurse. Per-worker effort appears under
	// "dispatch" on /statsz.
	SweepWorkers []string
	// Firings is the default simulation horizon for minimize and
	// degradation requests (≤0: 1000); MaxFirings caps the per-request
	// override (≤0: 200000).
	Firings    int64
	MaxFirings int64
	// MaxEvents caps simulated events per probe run (0: engine default).
	MaxEvents int64
	// MaxSweepPeriods caps the periods of one sweep request (≤0: 64).
	MaxSweepPeriods int
	// Checkpoints is the warm-start checkpoint count per probe machine
	// (0: 8; negative: disabled).
	Checkpoints int
	// ResponseCacheSize bounds the rendered-response cache (≤0: 1024).
	ResponseCacheSize int
	// ProblemCacheSize bounds the compiled-problem LRU (≤0: 64).
	ProblemCacheSize int
	// LogBuffer is the access-log ring size in entries, rounded up to a
	// power of two (≤0: 1024); LogInterval is the drain cadence (≤0: 50ms).
	LogBuffer   int
	LogInterval time.Duration
	// AccessLog receives drained access-log lines (nil: entries are
	// drained and discarded; drops are still counted either way).
	AccessLog io.Writer
	// Store holds feasibility verdicts across requests and processes
	// (nil: probecache.Shared()).
	Store *probecache.Store
	// CacheBackend, when non-nil, is served under /v1/cache/ so a fleet
	// of replicas can pool verdict payloads through this process
	// (vrdfserve -cache-store). The endpoints are auth-free but
	// limit-guarded: payloads are capped at Limits.MaxBytes and distinct
	// fingerprints at MaxCacheEntries (≤0: 4096), with typed statuses
	// (413 oversized payload, 507 full store) so clients can tell a
	// durable refusal from a transient failure. nil disables the
	// endpoints (404).
	CacheBackend    cachestore.Backend
	MaxCacheEntries int

	// computeHook, when set, runs on the worker goroutine right before a
	// flight leader computes. Test seam for pinning coalescing behaviour.
	computeHook func()
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Limits == (graphio.Limits{}) {
		c.Limits = graphio.DefaultLimits
	}
	c.Workers = parallel.Workers(c.Workers)
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.SearchWorkers <= 0 {
		c.SearchWorkers = 1
	}
	if c.Firings <= 0 {
		c.Firings = 1000
	}
	if c.MaxFirings <= 0 {
		c.MaxFirings = 200_000
	}
	if c.MaxSweepPeriods <= 0 {
		c.MaxSweepPeriods = 64
	}
	switch {
	case c.Checkpoints == 0:
		c.Checkpoints = 8
	case c.Checkpoints < 0:
		c.Checkpoints = 0
	}
	if c.ResponseCacheSize <= 0 {
		c.ResponseCacheSize = 1024
	}
	if c.ProblemCacheSize <= 0 {
		c.ProblemCacheSize = 64
	}
	if c.LogBuffer <= 0 {
		c.LogBuffer = 1024
	}
	if c.LogInterval <= 0 {
		c.LogInterval = 50 * time.Millisecond
	}
	if c.Store == nil {
		c.Store = probecache.Shared()
	}
	return c
}

// Endpoint ids for the fixed-size access-log entries.
const (
	pathSize = int32(iota)
	pathMinimize
	pathSweep
	pathDegradation
	pathProbe
	pathHealthz
	pathStatsz
)

// statusClientClosed is the non-standard (nginx-convention) status
// recorded when the client hung up before its flight finished.
const statusClientClosed = 499

// ctJSON is the pre-built Content-Type value; assigning it into a header
// map avoids the slice allocation of Header.Set on the hot path.
var ctJSON = []string{"application/json"}

// Server is the capacity-analysis service. Create with New, serve with
// net/http (it implements http.Handler), stop with Close.
type Server struct {
	cfg      Config
	resp     *respCache
	flights  *flightGroup
	pool     *workerPool
	problems *problemCache
	ring     *ring
	cache    http.Handler // /v1/cache endpoints; nil when no CacheBackend
	stats    serverStats
	dispatch dispatch.Stats // coordinator effort when SweepWorkers fan out
	baseCtx  context.Context
	cancel   context.CancelFunc
	logDone  chan struct{}
}

// serverStats holds the monotone counters behind /statsz.
type serverStats struct {
	requests     atomic.Int64
	hits         atomic.Int64
	coalesced    atomic.Int64
	computes     atomic.Int64
	rejected     atomic.Int64
	errors       atomic.Int64
	cacheOps     atomic.Int64
	probeBatches atomic.Int64
	probePeriods atomic.Int64
	probes       minimize.ProbeStats
}

// New returns a started server: the worker pool and the access-log drain
// goroutine are running. Callers must Close it to release them.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	baseCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		resp:     newRespCache(cfg.ResponseCacheSize),
		flights:  newFlightGroup(),
		problems: newProblemCache(cfg.ProblemCacheSize),
		ring:     newRing(cfg.LogBuffer),
		baseCtx:  baseCtx,
		cancel:   cancel,
		logDone:  make(chan struct{}),
	}
	if cfg.CacheBackend != nil {
		s.cache = http.StripPrefix(strings.TrimSuffix(cachestore.CachePath, "/"),
			cachestore.Handler(cfg.CacheBackend, cachestore.HandlerLimits{
				MaxPayloadBytes: cfg.Limits.MaxBytes,
				MaxEntries:      cfg.MaxCacheEntries,
			}))
	}
	s.pool = newWorkerPool(baseCtx, cfg.Workers, cfg.Queue)
	go s.drainLog()
	return s
}

// Close stops the workers and the log drain, flushing buffered access-log
// entries. In-flight requests waiting on a computation fail with 503.
func (s *Server) Close() {
	s.cancel()
	s.pool.wait()
	<-s.logDone
}

// reqCtx is the pooled per-request state: the body buffer, the key
// material scratch and the access-log entry, all with retained capacity so
// a steady-state request allocates nothing.
type reqCtx struct {
	body    []byte
	scratch []byte
	key     [32]byte
	entry   logEntry
}

var reqPool = sync.Pool{New: func() any {
	return &reqCtx{body: make([]byte, 0, 4096), scratch: make([]byte, 0, 4096)}
}}

// readBody reads the request body into the pooled buffer, rejecting
// bodies over max bytes with a graphio.LimitError before buffering more.
//
//vrdf:noalloc
func (c *reqCtx) readBody(r io.Reader, max int) error {
	c.body = c.body[:0]
	//vrdf:unbudgeted(bounded by the request-body byte limit checked every iteration)
	for {
		if len(c.body) == cap(c.body) {
			//vrdf:allocok(grows to the body size once; the capacity is retained across requests by the pool)
			c.body = append(c.body, 0)[:len(c.body)]
		}
		n, err := r.Read(c.body[len(c.body):cap(c.body)])
		c.body = c.body[:len(c.body)+n]
		if len(c.body) > max {
			//vrdf:allocok(error path: the request is already rejected)
			return &graphio.LimitError{What: "input bytes", Limit: max, Got: len(c.body)}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// hashKey fingerprints the raw request (method, path, query, body) into
// c.key. NUL separators keep distinct field splits from colliding.
//
//vrdf:noalloc
func (c *reqCtx) hashKey(method, path, query string) {
	b := c.scratch[:0]
	//vrdf:allocok(appends into pooled scratch whose capacity is retained across requests)
	b = append(append(append(b, method...), 0), path...)
	//vrdf:allocok(appends into pooled scratch whose capacity is retained across requests)
	b = append(append(append(b, 0), query...), 0)
	//vrdf:allocok(appends into pooled scratch whose capacity is retained across requests)
	b = append(b, c.body...)
	c.scratch = b
	c.key = sha256.Sum256(b)
}

// writeEntry writes a rendered response. Hot path: the pre-built
// Content-Type slice is assigned directly into the header map (Header.Set
// would allocate a fresh []string per call).
//
//vrdf:noalloc
func (s *Server) writeEntry(w http.ResponseWriter, e *respEntry) {
	h := w.Header()
	h["Content-Type"] = ctJSON
	w.WriteHeader(e.status)
	// A short write means the client went away; there is nobody to tell.
	_, _ = w.Write(e.body)
}

// log records the request in the access-log ring; a full ring counts a
// drop instead of blocking.
//
//vrdf:noalloc
func (s *Server) log(c *reqCtx, path, status int32, kind uint8, start time.Time) {
	e := &c.entry
	e.when = start.UnixNano()
	e.dur = int64(time.Since(start))
	e.status = status
	e.path = path
	e.kind = kind
	copy(e.key[:], c.key[:8])
	s.ring.put(e)
}

// ServeHTTP routes the request. The cache-hit path — pooled context, body
// read, hash, cache probe, write, log — is annotated allocation-free end
// to end; everything after a miss may allocate freely.
//
//vrdf:noalloc
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.stats.requests.Add(1)
	var pathID int32
	switch r.URL.Path {
	case "/v1/size":
		pathID = pathSize
	case "/v1/minimize":
		pathID = pathMinimize
	case "/v1/sweep":
		pathID = pathSweep
	case "/v1/degradation":
		pathID = pathDegradation
	case dispatch.ProbePath:
		pathID = pathProbe
	case "/healthz":
		s.serveHealthz(w)
		return
	case "/statsz":
		s.serveStatsz(w)
		return
	default:
		if strings.HasPrefix(r.URL.Path, cachestore.CachePath) {
			if s.cache == nil {
				s.plainError(w, http.StatusNotFound, "no cache store configured")
				return
			}
			s.stats.cacheOps.Add(1)
			s.cache.ServeHTTP(w, r)
			return
		}
		s.plainError(w, http.StatusNotFound, "not found")
		return
	}
	if r.Method != http.MethodPost {
		s.plainError(w, http.StatusMethodNotAllowed, "POST a graph document")
		return
	}
	c := reqPool.Get().(*reqCtx)
	//vrdf:allocok(pointer into any: interface conversion of a pointer does not allocate)
	defer reqPool.Put(c)
	if err := c.readBody(r.Body, s.cfg.Limits.MaxBytes); err != nil {
		s.failRequest(w, c, pathID, start, err)
		return
	}
	c.hashKey(r.Method, r.URL.Path, r.URL.RawQuery)
	if e, ok := s.resp.get(&c.key); ok {
		s.stats.hits.Add(1)
		s.writeEntry(w, e)
		s.log(c, pathID, int32(e.status), kindHit, start)
		return
	}
	s.serveMiss(w, r, c, pathID, start)
}

// serveMiss handles a response-cache miss: parse, fingerprint, coalesce,
// compute on the pool, cache and answer. Allocation is unconstrained here.
func (s *Server) serveMiss(w http.ResponseWriter, r *http.Request, c *reqCtx, pathID int32, start time.Time) {
	g, con, err := graphio.DecodeAnyLimited(c.body, s.cfg.Limits)
	if err != nil {
		if !graphio.IsLimit(err) {
			err = badReq(err)
		}
		s.failRequest(w, c, pathID, start, err)
		return
	}
	if con == nil {
		s.failRequest(w, c, pathID, start, badReqf("document has no throughput constraint"))
		return
	}
	spec, err := s.buildSpec(pathID, g, con, r.URL.Query())
	if err != nil {
		s.failRequest(w, c, pathID, start, err)
		return
	}
	call, leader := s.flights.join(spec.key)
	kind := kindCoalesced
	if leader {
		kind = kindCompute
		job := func() {
			if s.cfg.computeHook != nil {
				s.cfg.computeHook()
			}
			e, err := s.render(spec)
			s.flights.finish(spec.key, call, e, err)
		}
		if err := s.pool.submit(job); err != nil {
			s.stats.rejected.Add(1)
			s.flights.finish(spec.key, call, nil, err)
		} else {
			s.stats.computes.Add(1)
		}
	} else {
		s.stats.coalesced.Add(1)
	}
	select {
	case <-call.done:
	case <-r.Context().Done():
		s.failRequest(w, c, pathID, start, budget.Classify(r.Context().Err()))
		return
	case <-s.baseCtx.Done():
		s.failRequest(w, c, pathID, start, errBusy)
		return
	}
	if call.err != nil {
		s.failRequest(w, c, pathID, start, call.err)
		return
	}
	s.resp.put(&c.key, call.entry)
	s.writeEntry(w, call.entry)
	s.log(c, pathID, int32(call.entry.status), kind, start)
}

// render runs a computation under the per-request wall-clock budget and
// encodes the response it will share with every coalesced waiter. The
// budget hangs off the server's base context, NOT the leader's request
// context: a leader client hanging up must not starve the waiters that
// coalesced onto its flight.
func (s *Server) render(spec *jobSpec) (*respEntry, error) {
	ctx := s.baseCtx
	var deadline time.Time
	cancel := func() {}
	if s.cfg.RequestTimeout > 0 {
		deadline = time.Now().Add(s.cfg.RequestTimeout)
		ctx, cancel = context.WithDeadline(ctx, deadline)
	}
	defer cancel()
	v, err := spec.run(ctx, deadline)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return &respEntry{status: http.StatusOK, body: append(body, '\n')}, nil
}

// jobSpec is one prepared computation: the coalescing key and the closure
// that produces the (JSON-encodable) response value.
type jobSpec struct {
	key string
	run func(ctx context.Context, deadline time.Time) (any, error)
}

// buildSpec validates the per-endpoint parameters and prepares the
// computation. Cheap, pure analytic work (capacity.Compute) runs inline
// here — it both validates the document shape before a worker slot is
// taken and pins the coalescing fingerprint; simulation-backed work goes
// into the returned closure.
func (s *Server) buildSpec(pathID int32, g *taskgraph.Graph, con *taskgraph.Constraint, q url.Values) (*jobSpec, error) {
	policy, err := parsePolicy(q)
	if err != nil {
		return nil, err
	}
	switch pathID {
	case pathSize:
		res, err := capacity.Compute(g, *con, policy)
		if err != nil {
			return nil, badReq(err)
		}
		key := probecache.GraphKey(g, "serve-size",
			"policy="+policy.String(), "task="+con.Task, "period="+con.Period.String())
		return &jobSpec{key: key, run: func(context.Context, time.Time) (any, error) {
			return sizeResponseOf(res, policy), nil
		}}, nil

	case pathMinimize:
		firings, seed, err := s.horizonParams(q)
		if err != nil {
			return nil, err
		}
		res, err := capacity.Compute(g, *con, policy)
		if err != nil {
			return nil, badReq(err)
		}
		if !res.Valid {
			key := probecache.GraphKey(g, "serve-minimize-invalid",
				"policy="+policy.String(), "task="+con.Task, "period="+con.Period.String())
			return &jobSpec{key: key, run: func(context.Context, time.Time) (any, error) {
				return minimizeResponse{Valid: false, Policy: policy.String(), Task: con.Task,
					Period: con.Period.String(), Firings: firings, Seed: seed,
					Diagnostics: res.Diagnostics}, nil
			}}, nil
		}
		sized, err := capacity.Sized(g, res)
		if err != nil {
			return nil, badReq(err)
		}
		// Identical to cmd/vrdfcap's -minimize fingerprint, so the service
		// and the CLI share one feasibility frontier per problem.
		fp := probecache.GraphKey(sized,
			"minimize-throughput",
			"task="+con.Task, "period="+con.Period.String(),
			fmt.Sprintf("firings=%d", firings),
			fmt.Sprintf("workload=uniform:seed=%d", seed),
			fmt.Sprintf("max-events=%d", s.cfg.MaxEvents),
		)
		return &jobSpec{key: fp, run: func(ctx context.Context, deadline time.Time) (any, error) {
			return s.runMinimize(ctx, deadline, fp, g, sized, res, con, policy, firings, seed)
		}}, nil

	case pathSweep:
		periods, joined, err := s.sweepParams(q)
		if err != nil {
			return nil, err
		}
		// Validate the chain shape before taking a worker slot.
		if _, err := capacity.Compute(g, *con, policy); err != nil {
			return nil, badReq(err)
		}
		key := probecache.GraphKey(g, "serve-sweep",
			"task="+con.Task, "policy="+policy.String(), "periods="+joined)
		return &jobSpec{key: key, run: func(ctx context.Context, deadline time.Time) (any, error) {
			pts, err := capacity.SweepPeriodsOpt(g, con.Task, periods, policy, capacity.SweepOptions{
				Parallel: s.cfg.SearchWorkers,
				// Coordinator mode: with -workers configured this server
				// shards the sweep across the fleet instead of computing it.
				Workers:       s.cfg.SweepWorkers,
				DispatchStats: &s.dispatch,
				Context:       ctx,
				Deadline:      deadline,
				Cache:         s.cfg.Store.EntryContext(ctx, capacity.SweepKey(g, con.Task, policy)).Periods(),
			})
			if err != nil {
				return nil, err
			}
			return sweepResponseOf(con.Task, policy, pts), nil
		}}, nil

	case pathProbe:
		periods, joined, err := s.sweepParams(q)
		if err != nil {
			return nil, err
		}
		// Validate the chain shape before taking a worker slot.
		if _, err := capacity.Compute(g, *con, policy); err != nil {
			return nil, badReq(err)
		}
		key := probecache.GraphKey(g, "serve-probe",
			"task="+con.Task, "policy="+policy.String(), "periods="+joined)
		return &jobSpec{key: key, run: func(ctx context.Context, deadline time.Time) (any, error) {
			// A probe batch ALWAYS computes locally — never through
			// SweepWorkers — so a fleet whose members list each other as
			// workers can never recurse. The verdicts land under the same
			// SweepKey entry /v1/sweep uses, so coordinator-driven probes
			// and direct sweeps share one frontier per problem.
			pts, err := capacity.SweepPeriodsOpt(g, con.Task, periods, policy, capacity.SweepOptions{
				Parallel: s.cfg.SearchWorkers,
				Context:  ctx,
				Deadline: deadline,
				Cache:    s.cfg.Store.EntryContext(ctx, capacity.SweepKey(g, con.Task, policy)).Periods(),
			})
			if err != nil {
				return nil, err
			}
			s.stats.probeBatches.Add(1)
			s.stats.probePeriods.Add(int64(len(pts)))
			return probeResponseOf(con.Task, policy, pts), nil
		}}, nil

	case pathDegradation:
		firings, seed, err := s.horizonParams(q)
		if err != nil {
			return nil, err
		}
		maxFactor, err := parseFactor(q)
		if err != nil {
			return nil, err
		}
		res, err := capacity.Compute(g, *con, policy)
		if err != nil {
			return nil, badReq(err)
		}
		if !res.Valid {
			key := probecache.GraphKey(g, "serve-degradation-invalid",
				"policy="+policy.String(), "task="+con.Task, "period="+con.Period.String())
			return &jobSpec{key: key, run: func(context.Context, time.Time) (any, error) {
				return degradationResponse{Valid: false, Diagnostics: res.Diagnostics}, nil
			}}, nil
		}
		sized, err := capacity.Sized(g, res)
		if err != nil {
			return nil, badReq(err)
		}
		key := probecache.GraphKey(sized, "serve-degradation",
			"max="+maxFactor.String(),
			fmt.Sprintf("firings=%d", firings),
			fmt.Sprintf("seed=%d", seed),
		)
		return &jobSpec{key: key, run: func(ctx context.Context, deadline time.Time) (any, error) {
			curve, err := faults.Sweep(faults.DegradationConfig{
				Graph:      sized,
				Constraint: *con,
				Factors:    faults.FactorRange(ratio.FromInt(1), maxFactor, degradationPoints),
				Seed:       uint64(seed),
				Firings:    firings,
				Workers:    s.cfg.SearchWorkers,
				Context:    ctx,
				Deadline:   deadline,
			})
			if err != nil {
				return nil, err
			}
			return degradationResponseOf(curve), nil
		}}, nil
	}
	return nil, badReqf("unknown endpoint id %d", pathID)
}

// degradationPoints is the number of overrun factors swept per request,
// matching cmd/vrdfcap's -degradation.
const degradationPoints = 9

// runMinimize executes (or replays from the warm caches) one minimization.
func (s *Server) runMinimize(ctx context.Context, deadline time.Time, fp string, g, sized *taskgraph.Graph, res *capacity.Result, con *taskgraph.Constraint, policy capacity.Policy, firings, seed int64) (any, error) {
	prob, ok := s.problems.get(fp)
	if !ok {
		buffers := make([]string, 0, len(sized.Buffers()))
		upper := make(map[string]int64, len(sized.Buffers()))
		for _, b := range sized.Buffers() {
			buffers = append(buffers, b.DefaultName())
			upper[b.DefaultName()] = b.Capacity
		}
		frontier, err := s.cfg.Store.EntryContext(ctx, fp).Frontier(buffers)
		if err != nil {
			return nil, err
		}
		sufficient, necessary, err := capacity.SearchBounds(res, g)
		if err != nil {
			return nil, err
		}
		check := minimize.ThroughputCheck(g, *con, firings,
			[]sim.Workloads{sim.UniformWorkloads(sized, seed)}, minimize.Options{
				Workers:     s.cfg.SearchWorkers,
				MaxEvents:   s.cfg.MaxEvents,
				Checkpoints: s.cfg.Checkpoints,
				Stats:       &s.stats.probes,
			})
		prob = &problem{
			buffers:  buffers,
			upper:    upper,
			check:    check,
			bounds:   &minimize.Bounds{Sufficient: sufficient, Necessary: necessary},
			frontier: frontier,
		}
		s.problems.put(fp, prob)
	}
	mres, err := minimize.Search(prob.buffers, prob.upper, prob.check, minimize.Options{
		Workers:  s.cfg.SearchWorkers,
		Context:  ctx,
		Deadline: deadline,
		Cache:    prob.frontier,
		Bounds:   prob.bounds,
		Stats:    &s.stats.probes,
	})
	if err != nil {
		return nil, err
	}
	resp := minimizeResponse{
		Valid:   true,
		Policy:  policy.String(),
		Task:    con.Task,
		Period:  con.Period.String(),
		Firings: firings,
		Seed:    seed,
	}
	// Probe-effort counters (cache hits, events simulated) deliberately
	// stay out of the body: cold, warm and coalesced answers to the same
	// problem must be byte-identical. Effort is visible on /statsz.
	for _, name := range prob.buffers {
		resp.Buffers = append(resp.Buffers, minimizeBuffer{
			Name: name, Analytic: prob.upper[name], Minimal: mres.Caps[name],
		})
		resp.AnalyticTotal += prob.upper[name]
		resp.MinimalTotal += mres.Caps[name]
	}
	return resp, nil
}

// Parameter parsing.

func parsePolicy(q url.Values) (capacity.Policy, error) {
	name := q.Get("policy")
	if name == "" {
		name = "equation4"
	}
	p, err := capacity.ParsePolicy(name)
	if err != nil {
		return p, badReq(err)
	}
	return p, nil
}

// horizonParams parses the firings/seed pair shared by minimize and
// degradation, enforcing the per-request firing cap.
func (s *Server) horizonParams(q url.Values) (firings, seed int64, err error) {
	firings, err = queryInt64(q, "firings", s.cfg.Firings)
	if err != nil {
		return 0, 0, err
	}
	if firings <= 0 || firings > s.cfg.MaxFirings {
		return 0, 0, badReqf("firings must be in 1..%d, got %d", s.cfg.MaxFirings, firings)
	}
	seed, err = queryInt64(q, "seed", 1)
	if err != nil {
		return 0, 0, err
	}
	return firings, seed, nil
}

// sweepParams parses the comma-separated period list, returning both the
// parsed periods and their canonical join (the fingerprint part).
func (s *Server) sweepParams(q url.Values) ([]ratio.Rat, string, error) {
	raw := q.Get("periods")
	if raw == "" {
		return nil, "", badReqf("sweep needs a periods=p1,p2,... query parameter")
	}
	parts := strings.Split(raw, ",")
	if len(parts) > s.cfg.MaxSweepPeriods {
		return nil, "", badReqf("sweep is capped at %d periods, got %d", s.cfg.MaxSweepPeriods, len(parts))
	}
	periods := make([]ratio.Rat, 0, len(parts))
	canon := make([]string, 0, len(parts))
	for _, part := range parts {
		r, err := ratio.Parse(part)
		if err != nil {
			return nil, "", badReqf("bad period %q: %v", part, err)
		}
		if r.Sign() <= 0 {
			return nil, "", badReqf("period %q must be positive", part)
		}
		periods = append(periods, r)
		canon = append(canon, r.String())
	}
	return periods, strings.Join(canon, ","), nil
}

func parseFactor(q url.Values) (ratio.Rat, error) {
	raw := q.Get("max")
	if raw == "" {
		return ratio.Rat{}, badReqf("degradation needs a max=<factor> query parameter (> 1)")
	}
	f, err := ratio.Parse(raw)
	if err != nil {
		return ratio.Rat{}, badReqf("bad max %q: %v", raw, err)
	}
	if !ratio.FromInt(1).Less(f) {
		return ratio.Rat{}, badReqf("max %s must exceed 1", f)
	}
	return f, nil
}

func queryInt64(q url.Values, name string, def int64) (int64, error) {
	v := q.Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, badReqf("bad %s %q", name, v)
	}
	return n, nil
}

// Response shapes. Encoding uses struct field order, so bodies are
// deterministic — a requirement for byte-identical coalesced responses.

type bufferCapacity struct {
	Name     string `json:"name"`
	Producer string `json:"producer"`
	Consumer string `json:"consumer"`
	Capacity int64  `json:"capacity"`
}

type sizeResponse struct {
	Valid       bool             `json:"valid"`
	Policy      string           `json:"policy"`
	Task        string           `json:"task"`
	Period      string           `json:"period"`
	Buffers     []bufferCapacity `json:"buffers"`
	Total       int64            `json:"total"`
	Diagnostics []string         `json:"diagnostics,omitempty"`
}

func sizeResponseOf(res *capacity.Result, policy capacity.Policy) sizeResponse {
	out := sizeResponse{
		Valid:       res.Valid,
		Policy:      policy.String(),
		Task:        res.Constraint.Task,
		Period:      res.Constraint.Period.String(),
		Total:       res.TotalCapacity(),
		Diagnostics: res.Diagnostics,
	}
	for _, b := range res.Buffers {
		out.Buffers = append(out.Buffers, bufferCapacity{
			Name: b.Buffer, Producer: b.Producer, Consumer: b.Consumer, Capacity: b.Capacity,
		})
	}
	return out
}

type minimizeBuffer struct {
	Name     string `json:"name"`
	Analytic int64  `json:"analytic"`
	Minimal  int64  `json:"minimal"`
}

type minimizeResponse struct {
	Valid         bool             `json:"valid"`
	Policy        string           `json:"policy"`
	Task          string           `json:"task"`
	Period        string           `json:"period"`
	Firings       int64            `json:"firings"`
	Seed          int64            `json:"seed"`
	Buffers       []minimizeBuffer `json:"buffers,omitempty"`
	AnalyticTotal int64            `json:"analyticTotal"`
	MinimalTotal  int64            `json:"minimalTotal"`
	Diagnostics   []string         `json:"diagnostics,omitempty"`
}

type sweepPoint struct {
	Period string `json:"period"`
	Valid  bool   `json:"valid"`
	Total  int64  `json:"total"`
}

type sweepResponse struct {
	Task   string       `json:"task"`
	Policy string       `json:"policy"`
	Points []sweepPoint `json:"points"`
}

func sweepResponseOf(task string, policy capacity.Policy, pts []capacity.SweepPoint) sweepResponse {
	out := sweepResponse{Task: task, Policy: policy.String()}
	for _, pt := range pts {
		out.Points = append(out.Points, sweepPoint{
			Period: pt.Period.String(), Valid: pt.Valid, Total: pt.Total,
		})
	}
	return out
}

// probeVerdict and probeResponse are the /v1/probe wire shapes, decoded by
// dispatch.HTTPProber; verdicts echo the requested periods in order so the
// coordinator can reject a confused answer.
type probeVerdict struct {
	Period string `json:"period"`
	Valid  bool   `json:"valid"`
	Total  int64  `json:"total"`
}

type probeResponse struct {
	Task     string         `json:"task"`
	Policy   string         `json:"policy"`
	Verdicts []probeVerdict `json:"verdicts"`
}

func probeResponseOf(task string, policy capacity.Policy, pts []capacity.SweepPoint) probeResponse {
	out := probeResponse{Task: task, Policy: policy.String()}
	for _, pt := range pts {
		out.Verdicts = append(out.Verdicts, probeVerdict{
			Period: pt.Period.String(), Valid: pt.Valid, Total: pt.Total,
		})
	}
	return out
}

type degradationPoint struct {
	Factor string `json:"factor"`
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
}

type degradationResponse struct {
	Valid       bool               `json:"valid"`
	Points      []degradationPoint `json:"points,omitempty"`
	Slack       string             `json:"slack,omitempty"`
	Diagnostics []string           `json:"diagnostics,omitempty"`
}

func degradationResponseOf(curve *faults.DegradationCurve) degradationResponse {
	out := degradationResponse{Valid: true, Slack: curve.Slack().String()}
	for _, p := range curve.Points {
		out.Points = append(out.Points, degradationPoint{
			Factor: p.Factor.String(), OK: p.OK, Reason: p.Reason,
		})
	}
	return out
}

// Error handling.

// badRequestError marks document and parameter problems for the 400
// mapping; everything else keeps its own typed mapping (limits, budgets,
// shed load).
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

func badReq(err error) error { return &badRequestError{err: err} }

func badReqf(format string, args ...any) error {
	return &badRequestError{err: fmt.Errorf(format, args...)}
}

// statusFor maps error kinds to HTTP statuses: oversized input 413, other
// document limits and bad documents/parameters 400, shed load 503,
// exhausted budget 504, a hung-up client 499, anything else 500.
func statusFor(err error) int {
	var le *graphio.LimitError
	var br *badRequestError
	switch {
	case errors.As(err, &le):
		if le.What == "input bytes" {
			return http.StatusRequestEntityTooLarge
		}
		return http.StatusBadRequest
	case errors.As(err, &br):
		return http.StatusBadRequest
	case errors.Is(err, errBusy):
		return http.StatusServiceUnavailable
	case errors.Is(err, budget.ErrBudgetExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, budget.ErrCanceled):
		return statusClientClosed
	default:
		return http.StatusInternalServerError
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

// failRequest answers an error and logs it. Allocation-unconstrained: every
// error path has already left the steady state.
func (s *Server) failRequest(w http.ResponseWriter, c *reqCtx, pathID int32, start time.Time, err error) {
	status := statusFor(err)
	s.stats.errors.Add(1)
	h := w.Header()
	h["Content-Type"] = ctJSON
	if status == http.StatusServiceUnavailable {
		h.Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
	s.log(c, pathID, int32(status), kindError, start)
}

// plainError answers routing-level errors (no pooled context in hand yet).
func (s *Server) plainError(w http.ResponseWriter, status int, msg string) {
	s.stats.errors.Add(1)
	h := w.Header()
	h["Content-Type"] = ctJSON
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

var healthOK = []byte("ok\n")

func (s *Server) serveHealthz(w http.ResponseWriter) {
	_, _ = w.Write(healthOK)
}

// Stats is the /statsz payload: request-path counters, cache and pool
// occupancy, and the simulation effort spent by minimize probes.
type Stats struct {
	Requests         int64  `json:"requests"`
	CacheHits        int64  `json:"cacheHits"`
	Coalesced        int64  `json:"coalesced"`
	Computes         int64  `json:"computes"`
	Rejected         int64  `json:"rejected"`
	Errors           int64  `json:"errors"`
	LogDropped       uint64 `json:"logDropped"`
	CachedResponses  int    `json:"cachedResponses"`
	CompiledProblems int    `json:"compiledProblems"`
	SimEvents        int64  `json:"simEvents"`
	ResumedEvents    int64  `json:"resumedEvents"`
	WarmResets       int64  `json:"warmResets"`
	ColdResets       int64  `json:"coldResets"`
	VerdictHits      int64  `json:"verdictHits"`
	VerdictMisses    int64  `json:"verdictMisses"`
	// CacheOps counts /v1/cache requests (0 unless a CacheBackend is
	// configured).
	CacheOps int64 `json:"cacheOps"`
	// StoreBackend names the verdict store's persistence tier ("" for a
	// memory-only store); the resilience fields surface the
	// fault-tolerance layer when the tier is a cachestore.Resilient
	// wrapper — StoreDemotions counts operations served by the fallback
	// tier, StoreBreakerOpen reports a currently-tripped circuit.
	StoreBackend     string `json:"storeBackend,omitempty"`
	StoreDemotions   int64  `json:"storeDemotions,omitempty"`
	StoreBreakerOpen bool   `json:"storeBreakerOpen,omitempty"`
	StoreRetries     int64  `json:"storeRetries,omitempty"`
	// ProbeBatches/ProbePeriods count /v1/probe work answered FOR a remote
	// coordinator; Dispatch reports the work this server farmed OUT as a
	// coordinator (per-worker shard/retry/steal counts; present once a
	// distributed sweep ran).
	ProbeBatches int64              `json:"probeBatches,omitempty"`
	ProbePeriods int64              `json:"probePeriods,omitempty"`
	Dispatch     *dispatch.Snapshot `json:"dispatch,omitempty"`
}

// StatsSnapshot returns the current counters.
func (s *Server) StatsSnapshot() Stats {
	cs := s.cfg.Store.Stats()
	st := Stats{
		Requests:         s.stats.requests.Load(),
		CacheHits:        s.stats.hits.Load(),
		Coalesced:        s.stats.coalesced.Load(),
		Computes:         s.stats.computes.Load(),
		Rejected:         s.stats.rejected.Load(),
		Errors:           s.stats.errors.Load(),
		LogDropped:       s.ring.dropped.Load(),
		CachedResponses:  s.resp.len(),
		CompiledProblems: s.problems.len(),
		SimEvents:        s.stats.probes.SimEvents.Load(),
		ResumedEvents:    s.stats.probes.ResumedEvents.Load(),
		WarmResets:       s.stats.probes.WarmResets.Load(),
		ColdResets:       s.stats.probes.ColdResets.Load(),
		VerdictHits:      cs.Hits,
		VerdictMisses:    cs.Misses,
		CacheOps:         s.stats.cacheOps.Load(),
		StoreBackend:     cs.Backend,
	}
	if cs.Resilience != nil {
		st.StoreDemotions = cs.Resilience.Demotions
		st.StoreBreakerOpen = cs.Resilience.BreakerOpen
		st.StoreRetries = cs.Resilience.Retries
	}
	st.ProbeBatches = s.stats.probeBatches.Load()
	st.ProbePeriods = s.stats.probePeriods.Load()
	if dn := s.dispatch.Snapshot(); dn.Sweeps > 0 {
		st.Dispatch = &dn
	}
	return st
}

func (s *Server) serveStatsz(w http.ResponseWriter) {
	h := w.Header()
	h["Content-Type"] = ctJSON
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(s.StatsSnapshot())
}

// drainLog moves ring entries to the configured writer on a fixed cadence
// until the server closes, then performs a final drain.
func (s *Server) drainLog() {
	defer close(s.logDone)
	tick := time.NewTicker(s.cfg.LogInterval)
	defer tick.Stop()
	buf := make([]byte, 0, 256)
	var e logEntry
	for {
		select {
		case <-s.baseCtx.Done():
			//vrdf:unbudgeted(final drain of a bounded ring after shutdown)
			for s.ring.pop(&e) {
				buf = s.writeLogLine(buf, &e)
			}
			return
		case <-tick.C:
			//vrdf:unbudgeted(drains a bounded ring; producers that outpace the drain drop entries instead of growing it)
			for s.ring.pop(&e) {
				buf = s.writeLogLine(buf, &e)
			}
		}
	}
}

// pathNames maps path ids back to endpoint names for the access log.
var pathNames = [...]string{"size", "minimize", "sweep", "degradation", "probe", "healthz", "statsz"}

var kindNames = [...]string{"hit", "compute", "coalesced", "error"}

// writeLogLine formats one entry and writes it; the scratch buffer is
// reused across lines.
func (s *Server) writeLogLine(buf []byte, e *logEntry) []byte {
	if s.cfg.AccessLog == nil {
		return buf
	}
	buf = buf[:0]
	buf = append(buf, "t="...)
	buf = strconv.AppendInt(buf, e.when, 10)
	buf = append(buf, " path="...)
	if int(e.path) < len(pathNames) {
		buf = append(buf, pathNames[e.path]...)
	} else {
		buf = strconv.AppendInt(buf, int64(e.path), 10)
	}
	buf = append(buf, " status="...)
	buf = strconv.AppendInt(buf, int64(e.status), 10)
	buf = append(buf, " kind="...)
	if int(e.kind) < len(kindNames) {
		buf = append(buf, kindNames[e.kind]...)
	} else {
		buf = strconv.AppendUint(buf, uint64(e.kind), 10)
	}
	buf = append(buf, " dur_ns="...)
	buf = strconv.AppendInt(buf, e.dur, 10)
	buf = append(buf, " key="...)
	const hexdigits = "0123456789abcdef"
	for _, b := range e.key {
		buf = append(buf, hexdigits[b>>4], hexdigits[b&0xf])
	}
	buf = append(buf, '\n')
	_, _ = s.cfg.AccessLog.Write(buf)
	return buf
}
