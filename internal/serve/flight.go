package serve

import "sync"

// flightCall is one in-flight computation. The leader fills entry/err and
// closes done; every waiter blocks on done (or its own request context).
type flightCall struct {
	done  chan struct{}
	entry *respEntry
	err   error
}

// flightGroup coalesces concurrent requests for the same problem into one
// computation. Keys are canonical problem fingerprints
// (probecache.GraphKey over the parsed graph plus every parameter that
// co-determines the answer), NOT raw request bytes — two documents that
// differ only in comments or field order coalesce onto the same flight.
//
// Unlike the response cache, a flight exists only while its computation
// runs: finish removes the key before publishing the result, so a later
// request re-computes (or, normally, hits the response cache).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// join returns the flight for key, creating it when none is running.
// leader is true for the caller that must run the computation and finish
// the flight.
func (g *flightGroup) join(key string) (c *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// finish publishes the leader's result and releases the key. Removal
// happens before the result is visible so no waiter can join a completed
// flight.
func (g *flightGroup) finish(key string, c *flightCall, e *respEntry, err error) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.entry, c.err = e, err
	close(c.done)
}
