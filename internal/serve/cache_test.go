package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vrdfcap/internal/cachestore"
)

// TestServeCacheEndpoints pins the /v1/cache surface mounted by Config.
// CacheBackend: protocol round-trip, typed limit statuses, 404 when no
// backend is configured, and the CacheOps /statsz counter.
func TestServeCacheEndpoints(t *testing.T) {
	mem := cachestore.NewMem()
	s := newTestServer(t, Config{CacheBackend: mem, MaxCacheEntries: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	fp := strings.Repeat("5a", 32)
	fp2 := strings.Repeat("6b", 32)

	do := func(method, path, body string) *http.Response {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := do(http.MethodGet, "/v1/cache/"+fp, ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET miss = %d, want 404", resp.StatusCode)
	}
	if resp := do(http.MethodPut, "/v1/cache/"+fp, `{"v":1}`); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %d, want 204", resp.StatusCode)
	}
	resp := do(http.MethodGet, "/v1/cache/"+fp, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET = %d, want 200", resp.StatusCode)
	}
	if data, _ := io.ReadAll(resp.Body); string(data) != `{"v":1}` {
		t.Fatalf("GET body = %q", data)
	}
	// MaxCacheEntries guards the tier with a typed 507.
	if resp := do(http.MethodPut, "/v1/cache/"+fp2, `{"v":2}`); resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("PUT into full store = %d, want 507", resp.StatusCode)
	}
	if resp := do(http.MethodGet, "/v1/cache/not-a-fingerprint", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET bad fingerprint = %d, want 400", resp.StatusCode)
	}

	resp = do(http.MethodGet, "/statsz", "")
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.CacheOps < 5 {
		t.Errorf("CacheOps = %d, want >= 5", st.CacheOps)
	}
}

func TestServeCacheDisabledIs404(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/cache/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET with no backend = %d, want 404", resp.StatusCode)
	}
}
