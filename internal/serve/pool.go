package serve

import (
	"context"
	"errors"
	"sync"
)

// errBusy reports a full worker queue; the request is rejected with 503
// rather than queued unboundedly — the service's overload behaviour is
// "shed early", never "buffer until the deadline kills everything".
var errBusy = errors.New("serve: all workers busy and the queue is full")

// workerPool runs analysis jobs on a bounded number of goroutines with a
// bounded queue. Submission is non-blocking: a full queue returns errBusy
// immediately so the caller can shed load.
type workerPool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

// newWorkerPool starts workers goroutines that drain the queue until ctx
// is cancelled.
func newWorkerPool(ctx context.Context, workers, queue int) *workerPool {
	p := &workerPool{jobs: make(chan func(), queue)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker(ctx)
	}
	return p
}

func (p *workerPool) worker(ctx context.Context) {
	defer p.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case job := <-p.jobs:
			job()
		}
	}
}

// submit enqueues a job or reports errBusy; it never blocks.
func (p *workerPool) submit(job func()) error {
	select {
	case p.jobs <- job:
		return nil
	default:
		return errBusy
	}
}

// wait blocks until every worker has exited (after the pool's context is
// cancelled). Jobs still queued at cancellation are abandoned; their
// flights fail over the server's base context instead.
func (p *workerPool) wait() { p.wg.Wait() }
