package serve

import "sync"

// respEntry is one fully rendered response: status code plus the exact
// bytes written. Entries are immutable after insertion, so a single entry
// may be shared by the cache, several raw-key aliases and any number of
// concurrent writers.
type respEntry struct {
	status int
	body   []byte
}

// respCache maps the raw-request fingerprint (sha256 of method, path,
// query and body) to a rendered response. The [32]byte array key keeps the
// lookup allocation-free — hashing the request and indexing the map both
// work on stack values — which is what makes the steady-state cache-hit
// path zero-alloc.
//
// Bounded by FIFO eviction: the cache holds at most max entries and evicts
// the oldest insertion. FIFO (rather than LRU) keeps the hit path
// read-only, so concurrent hits share an RLock and never contend on
// recency bookkeeping.
type respCache struct {
	mu      sync.RWMutex
	max     int
	entries map[[32]byte]*respEntry
	fifo    [][32]byte // insertion order, a circular buffer once full
	next    int        // fifo slot the next insertion overwrites
}

func newRespCache(max int) *respCache {
	return &respCache{
		max:     max,
		entries: make(map[[32]byte]*respEntry, max),
		fifo:    make([][32]byte, 0, max),
	}
}

// get returns the cached response for a raw-request key. It is the
// zero-alloc hot path: an RLock, one map probe on an array key, an
// RUnlock.
//
//vrdf:noalloc
func (c *respCache) get(key *[32]byte) (*respEntry, bool) {
	c.mu.RLock()
	e, ok := c.entries[*key]
	c.mu.RUnlock()
	return e, ok
}

// put inserts a rendered response, evicting the oldest entry when full.
// Re-inserting an existing key refreshes the value without growing the
// cache (the stale FIFO slot evicts a key that is simply absent).
func (c *respCache) put(key *[32]byte, e *respEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[*key]; ok {
		c.entries[*key] = e
		return
	}
	if len(c.fifo) < c.max {
		c.fifo = append(c.fifo, *key)
	} else {
		delete(c.entries, c.fifo[c.next])
		c.fifo[c.next] = *key
		c.next = (c.next + 1) % c.max
	}
	c.entries[*key] = e
}

// len returns the number of cached responses.
func (c *respCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
