package serve

import "sync/atomic"

// logEntry is one fixed-size access-log record. Entries are plain values —
// no pointers, no variable-length fields — so producing one never
// allocates and draining one is a single struct copy.
type logEntry struct {
	when   int64 // start of the request, unix nanoseconds
	dur    int64 // wall-clock duration in nanoseconds
	status int32 // HTTP status written
	path   int32 // endpoint id (see pathID)
	kind   uint8 // how the response was produced (see kindHit ...)
	key    [8]byte
}

// How a response was produced, for the access log and the stats.
const (
	kindHit       = uint8(iota) // served from the response cache
	kindCompute                 // led a flight: the analysis actually ran
	kindCoalesced               // joined another request's in-flight computation
	kindError                   // failed before or during computation
)

// ring is a bounded lock-free MPSC queue of access-log entries. Producers
// (request goroutines) claim a slot with one atomic cursor and publish it
// via the slot's sequence number; a full ring drops the entry and counts
// the drop instead of blocking the request path. The single consumer (the
// background drain goroutine) owns head without atomics.
//
// The slot protocol is the classic bounded-queue design: slot i starts
// with seq == i ("free for ticket i"); a producer that claimed ticket t
// writes the entry and stores seq = t+1 ("published"); the consumer reads
// an entry once seq == head+1 and releases the slot with
// seq = head+len(slots) ("free for the ticket one lap later"). A producer
// observing seq < t is a full lap behind the consumer: the ring is full.
type ring struct {
	mask    uint64
	tail    atomic.Uint64 // next ticket to claim — the single producer cursor
	dropped atomic.Uint64
	slots   []ringSlot
	head    uint64 // consumer-private: next ticket to drain
}

type ringSlot struct {
	seq atomic.Uint64
	e   logEntry
}

// newRing returns a ring holding at least size entries (rounded up to a
// power of two, minimum 2).
func newRing(size int) *ring {
	n := 2
	//vrdf:unbudgeted(doubles to the next power of two; at most 62 iterations)
	for n < size {
		n <<= 1
	}
	r := &ring{mask: uint64(n - 1), slots: make([]ringSlot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// put publishes one entry, or counts a drop when the ring is full. Safe
// for concurrent producers; never blocks, never allocates.
//
//vrdf:noalloc
func (r *ring) put(e *logEntry) bool {
	t := r.tail.Load()
	//vrdf:unbudgeted(CAS retry loop; each iteration either claims a slot, detects a full ring, or re-reads a cursor another producer just advanced)
	for {
		s := &r.slots[t&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == t:
			if r.tail.CompareAndSwap(t, t+1) {
				s.e = *e
				s.seq.Store(t + 1)
				return true
			}
			t = r.tail.Load()
		case seq < t:
			// The consumer has not freed this slot from the previous lap.
			r.dropped.Add(1)
			return false
		default:
			t = r.tail.Load()
		}
	}
}

// pop drains one entry into e. Single consumer only.
//
//vrdf:noalloc
func (r *ring) pop(e *logEntry) bool {
	s := &r.slots[r.head&r.mask]
	if s.seq.Load() != r.head+1 {
		return false
	}
	*e = s.e
	s.seq.Store(r.head + uint64(len(r.slots)))
	r.head++
	return true
}
