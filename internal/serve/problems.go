package serve

import (
	"sync"

	"vrdfcap/internal/minimize"
	"vrdfcap/internal/probecache"
)

// problem is one compiled minimization problem: the buffer order, the
// analytic upper bounds, the pruning bounds, the shared feasibility
// frontier and — the expensive part — the compiled CheckFunc, whose
// internal machine pool reuses pre-compiled simulators across probes and
// across requests. Reusing a problem turns a repeat sizing request into
// pure frontier lookups with zero machine compilation.
type problem struct {
	buffers  []string
	upper    map[string]int64
	check    minimize.CheckFunc
	bounds   *minimize.Bounds
	frontier *probecache.Frontier
}

// problemCache is a bounded LRU of compiled problems keyed by the same
// canonical fingerprint that keys the feasibility frontier. Eviction only
// drops compiled machines — verdicts live in the probecache store and
// survive.
type problemCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*problem
	order   []string // least recently used first
}

func newProblemCache(max int) *problemCache {
	return &problemCache{max: max, entries: make(map[string]*problem, max)}
}

// get returns the compiled problem for a fingerprint, refreshing its
// recency.
func (c *problemCache) get(fp string) (*problem, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.entries[fp]
	if ok {
		c.touch(fp)
	}
	return p, ok
}

// put inserts a compiled problem, evicting the least recently used entry
// when full.
func (c *problemCache) put(fp string, p *problem) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[fp]; ok {
		c.entries[fp] = p
		c.touch(fp)
		return
	}
	if len(c.order) >= c.max {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	c.entries[fp] = p
	c.order = append(c.order, fp)
}

// touch moves fp to the most-recently-used end. Called with c.mu held.
func (c *problemCache) touch(fp string) {
	for i, k := range c.order {
		if k == fp {
			copy(c.order[i:], c.order[i+1:])
			c.order[len(c.order)-1] = fp
			return
		}
	}
}

// len returns the number of compiled problems held.
func (c *problemCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
