package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vrdfcap/internal/probecache"
)

// pairDoc is the paper's Figure 1 pair: producer always writes 3, consumer
// takes 2 or 3 data-dependently. Small enough that a minimize request is
// a handful of short simulations; analytic Equation 4 capacity is 7.
const pairDoc = `task a wcrt 1
task b wcrt 1
buffer a -> b prod 3 cons {2,3}
constraint b period 3
`

// variant returns pairDoc with a comment line prepended: a textually
// different document that parses to the identical canonical graph, so its
// raw-request key differs but its problem fingerprint does not.
func variant(i int) string {
	return fmt.Sprintf("# request variant %d\n%s", i, pairDoc)
}

// newTestServer returns a started server on a private store (tests must
// not pollute the process-wide shared store) and closes it with the test.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = probecache.NewStore("")
	}
	if cfg.Firings == 0 {
		cfg.Firings = 200
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

// blockCompute installs a computeHook that blocks flight leaders until the
// returned release func runs; release is idempotent and registered as a
// cleanup so a failing test cannot wedge Server.Close behind a blocked
// worker.
func blockCompute(t *testing.T, cfg *Config) (release func()) {
	t.Helper()
	ch := make(chan struct{})
	var once sync.Once
	release = func() { once.Do(func() { close(ch) }) }
	t.Cleanup(release)
	cfg.computeHook = func() { <-ch }
	return release
}

func doPost(ts *httptest.Server, path, body string) (int, []byte, error) {
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	status, data, err := doPost(ts, path, body)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	return status, data
}

// TestCoalescing is the contract at the heart of the service: N concurrent
// requests for the same problem — with textually different documents, so
// the response cache cannot answer — run exactly one computation, and
// every response is byte-identical, whether cold (the flight leader),
// coalesced (a waiter), or warm (a later response-cache hit).
func TestCoalescing(t *testing.T) {
	const n = 8
	var cfg Config
	release := blockCompute(t, &cfg)
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s)
	defer ts.Close()

	type reply struct {
		status int
		body   []byte
		err    error
	}
	replies := make([]reply, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body, err := doPost(ts, "/v1/minimize?firings=200", variant(i))
			replies[i] = reply{status, body, err}
		}(i)
	}

	// Hold the leader until every other request has coalesced onto its
	// flight, so "exactly one computation" is deterministic, not a race.
	deadline := time.Now().Add(10 * time.Second)
	for s.stats.coalesced.Load() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests coalesced", s.stats.coalesced.Load(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	release()
	wg.Wait()

	for i, r := range replies {
		if r.err != nil {
			t.Fatalf("request %d: %v", i, r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, r.status, r.body)
		}
		if !bytes.Equal(r.body, replies[0].body) {
			t.Fatalf("request %d body differs from request 0:\n%s\nvs\n%s", i, r.body, replies[0].body)
		}
	}
	st := s.StatsSnapshot()
	if st.Computes != 1 {
		t.Fatalf("computes = %d, want exactly 1 for %d concurrent identical problems", st.Computes, n)
	}
	if st.Coalesced != n-1 {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, n-1)
	}
	if st.CacheHits != 0 {
		t.Fatalf("cacheHits = %d, want 0 (every document was textually unique)", st.CacheHits)
	}

	// Warm: repeating an exact document hits the response cache and the
	// bytes still match.
	status, body := post(t, ts, "/v1/minimize?firings=200", variant(0))
	if status != http.StatusOK || !bytes.Equal(body, replies[0].body) {
		t.Fatalf("warm repeat: status %d, body drifted:\n%s", status, body)
	}
	if got := s.StatsSnapshot().CacheHits; got != 1 {
		t.Fatalf("cacheHits after warm repeat = %d, want 1", got)
	}

	// Cold again: a never-seen textual variant recomputes (the flight is
	// gone), but the warm feasibility frontier answers every probe and the
	// body must still be byte-identical.
	status, body = post(t, ts, "/v1/minimize?firings=200", variant(n+1))
	if status != http.StatusOK || !bytes.Equal(body, replies[0].body) {
		t.Fatalf("cold recompute: status %d, body drifted:\n%s", status, body)
	}
	if got := s.StatsSnapshot().Computes; got != 2 {
		t.Fatalf("computes after cold recompute = %d, want 2", got)
	}
}

// TestMinimizeAgainstAnalytic sanity-checks the answer itself: for the
// Figure 1 pair the analytic capacity is 7 and the empirical minimum under
// any workload lies between the producer quantum and the analytic bound.
func TestMinimizeAgainstAnalytic(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	status, body := post(t, ts, "/v1/minimize?firings=200&seed=7", pairDoc)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp minimizeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	if !resp.Valid || len(resp.Buffers) != 1 {
		t.Fatalf("unexpected response %+v", resp)
	}
	b := resp.Buffers[0]
	if b.Analytic != 7 {
		t.Fatalf("analytic capacity = %d, want 7 (paper Figure 1)", b.Analytic)
	}
	if b.Minimal < 3 || b.Minimal > b.Analytic {
		t.Fatalf("minimal capacity = %d, want within [3, %d]", b.Minimal, b.Analytic)
	}
	if resp.MinimalTotal != b.Minimal || resp.AnalyticTotal != b.Analytic {
		t.Fatalf("totals %d/%d disagree with the single buffer %+v", resp.MinimalTotal, resp.AnalyticTotal, b)
	}
}

func TestSizeSweepDegradation(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	status, body := post(t, ts, "/v1/size", pairDoc)
	if status != http.StatusOK {
		t.Fatalf("size: status %d: %s", status, body)
	}
	var size sizeResponse
	if err := json.Unmarshal(body, &size); err != nil {
		t.Fatal(err)
	}
	if !size.Valid || size.Total != 7 || len(size.Buffers) != 1 || size.Buffers[0].Capacity != 7 {
		t.Fatalf("size response %+v, want valid total 7", size)
	}

	status, body = post(t, ts, "/v1/sweep?periods=3,4,6", pairDoc)
	if status != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", status, body)
	}
	var sweep sweepResponse
	if err := json.Unmarshal(body, &sweep); err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) != 3 {
		t.Fatalf("sweep returned %d points, want 3: %s", len(sweep.Points), body)
	}
	for _, pt := range sweep.Points {
		if !pt.Valid {
			t.Fatalf("period %s unexpectedly infeasible", pt.Period)
		}
	}
	// Relaxing the period must never need more capacity (monotone trade-off).
	for i := 1; i < len(sweep.Points); i++ {
		if sweep.Points[i].Total > sweep.Points[i-1].Total {
			t.Fatalf("sweep not monotone: %v", sweep.Points)
		}
	}

	status, body = post(t, ts, "/v1/degradation?max=2&firings=100", pairDoc)
	if status != http.StatusOK {
		t.Fatalf("degradation: status %d: %s", status, body)
	}
	var deg degradationResponse
	if err := json.Unmarshal(body, &deg); err != nil {
		t.Fatal(err)
	}
	if !deg.Valid || len(deg.Points) != degradationPoints {
		t.Fatalf("degradation response %+v, want %d points", deg, degradationPoints)
	}
	if !deg.Points[0].OK {
		t.Fatalf("nominal point (factor 1) failed: %+v", deg.Points[0])
	}
}

// TestErrorMapping pins the HTTP status for every error class.
func TestErrorMapping(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := []struct {
		name, path, body string
		want             int
	}{
		{"unknown path", "/v2/size", pairDoc, http.StatusNotFound},
		{"bad document", "/v1/size", "task ???", http.StatusBadRequest},
		{"no constraint", "/v1/size", "task a wcrt 1\ntask b wcrt 1\nbuffer a -> b prod 1 cons 1", http.StatusBadRequest},
		{"bad policy", "/v1/size?policy=nope", pairDoc, http.StatusBadRequest},
		{"sweep without periods", "/v1/sweep", pairDoc, http.StatusBadRequest},
		{"degradation without max", "/v1/degradation", pairDoc, http.StatusBadRequest},
		{"degradation max below 1", "/v1/degradation?max=1/2", pairDoc, http.StatusBadRequest},
		{"firings over cap", "/v1/minimize?firings=999999999", pairDoc, http.StatusBadRequest},
		{"quanta set over limit", "/v1/size", "task a wcrt 1\ntask b wcrt 1\nbuffer a -> b prod 0..9999999 cons 1\nconstraint b period 1", http.StatusBadRequest},
	}
	for _, tc := range cases {
		status, body := post(t, ts, tc.path, tc.body)
		if status != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.want, body)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q is not {\"error\":...}", tc.name, body)
		}
	}

	// Oversized body → 413, rejected while reading, before parsing.
	big := pairDoc + "# " + strings.Repeat("x", 1<<20) + "\n"
	status, _ := post(t, ts, "/v1/size", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", status)
	}

	// GET on an analysis endpoint → 405.
	resp, err := http.Get(ts.URL + "/v1/size")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/size: status %d, want 405", resp.StatusCode)
	}
}

// TestPoolShedsLoad pins the overload behaviour: with one worker and a
// queue of one, a third distinct in-flight problem is rejected with 503
// and a Retry-After header instead of queueing unboundedly. Distinct seeds
// make distinct problems — comment variants would coalesce instead.
func TestPoolShedsLoad(t *testing.T) {
	cfg := Config{Workers: 1, Queue: 1}
	release := blockCompute(t, &cfg)
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s)
	defer ts.Close()

	errc := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			status, body, err := doPost(ts, fmt.Sprintf("/v1/minimize?firings=200&seed=%d", i+1), pairDoc)
			if err == nil && status != http.StatusOK {
				err = fmt.Errorf("request %d: status %d (%s)", i, status, body)
			}
			errc <- err
		}(i)
	}
	// Wait until the worker holds flight 1 and flight 2 sits in the queue.
	deadline := time.Now().Add(10 * time.Second)
	for s.stats.computes.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d computes submitted", s.stats.computes.Load())
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/v1/minimize?firings=200&seed=3", "application/json", strings.NewReader(pairDoc))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third problem: status %d, want 503 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 response has no Retry-After header")
	}
	if got := s.stats.rejected.Load(); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}

	release()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

func TestHealthzStatsz(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(ok) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, ok)
	}

	post(t, ts, "/v1/size", pairDoc)
	post(t, ts, "/v1/size", pairDoc) // response-cache hit

	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests < 3 || st.CacheHits != 1 || st.Computes != 1 {
		t.Fatalf("stats %+v, want ≥3 requests, 1 hit, 1 compute", st)
	}
	if st.CachedResponses != 1 {
		t.Fatalf("cachedResponses = %d, want 1", st.CachedResponses)
	}
}

// TestAccessLog checks that drained entries reach the writer with the
// fixed key=value shape.
func TestAccessLog(t *testing.T) {
	var mu sync.Mutex
	var logged bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return logged.Write(p)
	})
	s := newTestServer(t, Config{AccessLog: w, LogInterval: time.Millisecond})
	ts := httptest.NewServer(s)
	defer ts.Close()

	post(t, ts, "/v1/size", pairDoc)
	post(t, ts, "/v1/size", pairDoc)

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		text := logged.String()
		mu.Unlock()
		if strings.Contains(text, "kind=compute") && strings.Contains(text, "kind=hit") {
			for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
				if !strings.Contains(line, "path=size") || !strings.Contains(line, "status=200") ||
					!strings.Contains(line, "dur_ns=") || !strings.Contains(line, "key=") {
					t.Fatalf("malformed access-log line %q", line)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("access log never drained both kinds; got %q", text)
		}
		time.Sleep(time.Millisecond)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
