package vrdf

import (
	"strings"
	"testing"

	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

func r(n, d int64) ratio.Rat { return ratio.MustNew(n, d) }

func figure1Graph(t *testing.T) *taskgraph.Graph {
	t.Helper()
	g, err := taskgraph.Pair("wa", r(1, 1), "wb", r(1, 1),
		taskgraph.MustQuanta(3), taskgraph.MustQuanta(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	g.Buffers()[0].Capacity = 4
	return g
}

func TestFromTaskGraphFigure2(t *testing.T) {
	// Constructing the VRDF graph of Figure 1 must yield Figure 2: two
	// actors, a data edge with (π=3, γ={2,3}, δ=0) and a space edge with
	// (π={2,3}, γ=3, δ=capacity).
	tg := figure1Graph(t)
	g, m, err := FromTaskGraph(tg)
	if err != nil {
		t.Fatalf("FromTaskGraph: %v", err)
	}
	if len(g.Actors()) != 2 || len(g.Edges()) != 2 {
		t.Fatalf("got %d actors, %d edges; want 2, 2", len(g.Actors()), len(g.Edges()))
	}
	p, ok := m.Pair("wa->wb")
	if !ok {
		t.Fatal("mapping lost buffer wa->wb")
	}
	data := g.EdgeByName(p.Data)
	space := g.EdgeByName(p.Space)
	if data.Src != "wa" || data.Dst != "wb" {
		t.Errorf("data edge runs %s->%s, want wa->wb", data.Src, data.Dst)
	}
	if space.Src != "wb" || space.Dst != "wa" {
		t.Errorf("space edge runs %s->%s, want wb->wa", space.Src, space.Dst)
	}
	if data.Prod.String() != "3" || data.Cons.String() != "{2,3}" {
		t.Errorf("data quanta π=%v γ=%v", data.Prod, data.Cons)
	}
	if space.Prod.String() != "{2,3}" || space.Cons.String() != "3" {
		t.Errorf("space quanta π=%v γ=%v", space.Prod, space.Cons)
	}
	if data.Initial != 0 {
		t.Errorf("data edge δ=%d, want 0 (buffers start empty)", data.Initial)
	}
	if space.Initial != 4 {
		t.Errorf("space edge δ=%d, want 4 (capacity)", space.Initial)
	}
	if g.Actor("wa").Rho.Cmp(r(1, 1)) != 0 {
		t.Errorf("ρ(va) = %v, want κ(wa) = 1", g.Actor("wa").Rho)
	}
	if err := CheckBufferSymmetry(g, m); err != nil {
		t.Errorf("CheckBufferSymmetry: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestFromTaskGraphChainEdges(t *testing.T) {
	tg, err := taskgraph.BuildChain(
		[]taskgraph.Stage{{Name: "a", WCRT: r(1, 1)}, {Name: "b", WCRT: r(1, 1)}, {Name: "c", WCRT: r(1, 1)}},
		[]taskgraph.Link{
			{Prod: taskgraph.MustQuanta(2), Cons: taskgraph.MustQuanta(1)},
			{Prod: taskgraph.MustQuanta(3), Cons: taskgraph.MustQuanta(4, 5)},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	g, m, err := FromTaskGraph(tg)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges()) != 4 {
		t.Fatalf("3-task chain should map to 4 edges, got %d", len(g.Edges()))
	}
	if len(m.Pairs) != 2 {
		t.Fatalf("want 2 buffer pairs, got %d", len(m.Pairs))
	}
	// Middle actor has one input and one output data edge plus the two
	// space edges: 2 in, 2 out in total.
	if n := len(g.In("b")); n != 2 {
		t.Errorf("In(b) = %d edges, want 2", n)
	}
	if n := len(g.Out("b")); n != 2 {
		t.Errorf("Out(b) = %d edges, want 2", n)
	}
	if err := CheckBufferSymmetry(g, m); err != nil {
		t.Error(err)
	}
}

func TestAddActorErrors(t *testing.T) {
	g := New()
	if _, err := g.AddActor("", r(1, 1)); err == nil {
		t.Error("empty actor name accepted")
	}
	if _, err := g.AddActor("v", ratio.Zero); err == nil {
		t.Error("zero response time accepted")
	}
	if _, err := g.AddActor("v", r(1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddActor("v", r(1, 2)); err == nil {
		t.Error("duplicate actor accepted")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New()
	if _, err := g.AddActor("a", r(1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddActor("b", r(1, 1)); err != nil {
		t.Fatal(err)
	}
	q := taskgraph.MustQuanta(1)
	cases := []struct {
		name string
		e    Edge
	}{
		{"unknown src", Edge{Src: "x", Dst: "b", Prod: q, Cons: q}},
		{"unknown dst", Edge{Src: "a", Dst: "x", Prod: q, Cons: q}},
		{"bad prod", Edge{Src: "a", Dst: "b", Cons: q}},
		{"bad cons", Edge{Src: "a", Dst: "b", Prod: q}},
		{"negative initial", Edge{Src: "a", Dst: "b", Prod: q, Cons: q, Initial: -1}},
	}
	for _, c := range cases {
		if _, err := g.AddEdge(c.e); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := g.AddEdge(Edge{Name: "e", Src: "a", Dst: "b", Prod: q, Cons: q}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(Edge{Name: "e", Src: "a", Dst: "b", Prod: q, Cons: q}); err == nil {
		t.Error("duplicate edge name accepted")
	}
}

func TestEdgeDefaultName(t *testing.T) {
	g := New()
	for _, n := range []string{"a", "b"} {
		if _, err := g.AddActor(n, r(1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	q := taskgraph.MustQuanta(1)
	e, err := g.AddEdge(Edge{Src: "a", Dst: "b", Prod: q, Cons: q})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Name, "a->b") {
		t.Errorf("default edge name %q does not mention endpoints", e.Name)
	}
}

func TestValidateConnectivity(t *testing.T) {
	g := New()
	if err := g.Validate(); err == nil {
		t.Error("empty graph accepted")
	}
	for _, n := range []string{"a", "b"} {
		if _, err := g.AddActor(n, r(1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Validate(); err == nil {
		t.Error("disconnected graph accepted")
	}
	q := taskgraph.MustQuanta(1)
	if _, err := g.AddEdge(Edge{Src: "a", Dst: "b", Prod: q, Cons: q}); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("connected graph rejected: %v", err)
	}
}

func TestCheckBufferSymmetryDetectsCorruption(t *testing.T) {
	tg := figure1Graph(t)
	g, m, err := FromTaskGraph(tg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the space edge's consumption quanta.
	g.EdgeByName(m.Pairs[0].Space).Cons = taskgraph.MustQuanta(99)
	if err := CheckBufferSymmetry(g, m); err == nil {
		t.Error("corrupted pair passed symmetry check")
	}
	// Corrupt initial tokens on the data edge.
	g2, m2, _ := FromTaskGraph(tg)
	g2.EdgeByName(m2.Pairs[0].Data).Initial = 1
	if err := CheckBufferSymmetry(g2, m2); err == nil {
		t.Error("non-empty data edge passed symmetry check")
	}
}

func TestMappingPairMissing(t *testing.T) {
	tg := figure1Graph(t)
	_, m, err := FromTaskGraph(tg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Pair("nope"); ok {
		t.Error("Pair returned ok for unknown buffer")
	}
}
