// Package vrdf implements the Variable-Rate Dataflow analysis model of
// Wiggers et al. (DATE 2008), §3.2, and its construction from a task graph,
// §3.3.
//
// A VRDF graph G = (V, E, π, γ, δ, ρ) is a directed graph of actors and
// edges. A firing of an actor is enabled when all input edges hold
// sufficient tokens; the per-firing consumption quantum on edge e is a value
// from the finite set γ(e) and the production quantum a value from π(e).
// Tokens are consumed atomically at the start of a firing and produced
// atomically ρ(v) later at its finish, and an actor does not start a firing
// before every previous firing has finished.
//
// Two semantic properties carry the paper's proofs and are property-tested
// against this library's simulator:
//
//   - Monotonic execution in the start times (Definition 1): starting any
//     firing earlier can never start any other firing later.
//   - Linear temporal behaviour (Definition 2): delaying a start time by Δ
//     delays no start time by more than Δ.
//
// Both hold because firing rules and token quanta are independent of token
// arrival times.
package vrdf

import (
	"fmt"

	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

// QuantaSet is re-exported from the task model; π and γ share its codomain
// Pf(N).
type QuantaSet = taskgraph.QuantaSet

// Actor is a vertex of the VRDF graph.
type Actor struct {
	// Name identifies the actor; unique within a graph.
	Name string
	// Rho is the response time ρ(v): tokens are produced ρ(v) after the
	// firing's start. Must be positive.
	Rho ratio.Rat
}

// Edge is a directed edge of the VRDF graph.
type Edge struct {
	// Name identifies the edge; unique within a graph.
	Name string
	// Src produces tokens on the edge; Dst consumes them.
	Src, Dst string
	// Prod is π(e), the set of possible token production quanta.
	Prod QuantaSet
	// Cons is γ(e), the set of possible token consumption quanta.
	Cons QuantaSet
	// Initial is δ(e), the number of initial tokens.
	Initial int64
}

// Graph is a VRDF graph.
type Graph struct {
	actors  []*Actor
	byName  map[string]*Actor
	edges   []*Edge
	edgeByN map[string]*Edge
}

// New returns an empty VRDF graph.
func New() *Graph {
	return &Graph{
		byName:  make(map[string]*Actor),
		edgeByN: make(map[string]*Edge),
	}
}

// AddActor adds an actor with the given response time.
func (g *Graph) AddActor(name string, rho ratio.Rat) (*Actor, error) {
	if name == "" {
		return nil, fmt.Errorf("vrdf: empty actor name")
	}
	if _, dup := g.byName[name]; dup {
		return nil, fmt.Errorf("vrdf: duplicate actor %q", name)
	}
	if rho.Sign() <= 0 {
		return nil, fmt.Errorf("vrdf: actor %q: response time must be positive, got %v", name, rho)
	}
	a := &Actor{Name: name, Rho: rho}
	g.actors = append(g.actors, a)
	g.byName[name] = a
	return a, nil
}

// AddEdge adds an edge. Src and Dst must already exist.
func (g *Graph) AddEdge(e Edge) (*Edge, error) {
	if e.Name == "" {
		e.Name = "e:" + e.Src + "->" + e.Dst
	}
	if _, dup := g.edgeByN[e.Name]; dup {
		return nil, fmt.Errorf("vrdf: duplicate edge %q", e.Name)
	}
	if _, ok := g.byName[e.Src]; !ok {
		return nil, fmt.Errorf("vrdf: edge %q: unknown source actor %q", e.Name, e.Src)
	}
	if _, ok := g.byName[e.Dst]; !ok {
		return nil, fmt.Errorf("vrdf: edge %q: unknown destination actor %q", e.Name, e.Dst)
	}
	if !e.Prod.IsValid() {
		return nil, fmt.Errorf("vrdf: edge %q: invalid production quanta", e.Name)
	}
	if !e.Cons.IsValid() {
		return nil, fmt.Errorf("vrdf: edge %q: invalid consumption quanta", e.Name)
	}
	if e.Initial < 0 {
		return nil, fmt.Errorf("vrdf: edge %q: negative initial tokens %d", e.Name, e.Initial)
	}
	ne := e
	g.edges = append(g.edges, &ne)
	g.edgeByN[ne.Name] = &ne
	return &ne, nil
}

// Actor returns the actor with the given name, or nil.
func (g *Graph) Actor(name string) *Actor { return g.byName[name] }

// EdgeByName returns the edge with the given name, or nil.
func (g *Graph) EdgeByName(name string) *Edge { return g.edgeByN[name] }

// Actors returns the actors in insertion order; callers must not modify the
// returned slice.
func (g *Graph) Actors() []*Actor { return g.actors }

// Edges returns the edges in insertion order; callers must not modify the
// returned slice.
func (g *Graph) Edges() []*Edge { return g.edges }

// In returns the edges consumed by the named actor.
func (g *Graph) In(actor string) []*Edge {
	var out []*Edge
	for _, e := range g.edges {
		if e.Dst == actor {
			out = append(out, e)
		}
	}
	return out
}

// Out returns the edges produced by the named actor.
func (g *Graph) Out(actor string) []*Edge {
	var out []*Edge
	for _, e := range g.edges {
		if e.Src == actor {
			out = append(out, e)
		}
	}
	return out
}

// Validate checks structural sanity: at least one actor and weak
// connectivity.
func (g *Graph) Validate() error {
	if len(g.actors) == 0 {
		return fmt.Errorf("vrdf: graph has no actors")
	}
	if len(g.actors) > 1 {
		adj := make(map[string][]string)
		for _, e := range g.edges {
			adj[e.Src] = append(adj[e.Src], e.Dst)
			adj[e.Dst] = append(adj[e.Dst], e.Src)
		}
		seen := map[string]bool{g.actors[0].Name: true}
		stack := []string{g.actors[0].Name}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, m := range adj[n] {
				if !seen[m] {
					seen[m] = true
					stack = append(stack, m)
				}
			}
		}
		if len(seen) != len(g.actors) {
			return fmt.Errorf("vrdf: graph is not weakly connected")
		}
	}
	return nil
}

// BufferPair names the two opposite edges that together model one circular
// buffer: Data carries full containers from producer to consumer and Space
// carries empty containers back.
type BufferPair struct {
	Buffer string // task-graph buffer name
	Data   string // edge name, producer -> consumer
	Space  string // edge name, consumer -> producer
}

// Mapping relates a task graph to the VRDF graph constructed from it.
type Mapping struct {
	// TaskToActor maps task names to actor names (identity in this
	// construction, recorded for explicitness).
	TaskToActor map[string]string
	// Pairs lists the edge pair for every buffer, in buffer insertion
	// order.
	Pairs []BufferPair
}

// Pair returns the edge pair for the named buffer, or false.
func (m *Mapping) Pair(buffer string) (BufferPair, bool) {
	for _, p := range m.Pairs {
		if p.Buffer == buffer {
			return p, true
		}
	}
	return BufferPair{}, false
}

// FromTaskGraph constructs the VRDF analysis graph of a task graph following
// §3.3 of the paper:
//
//   - every task w becomes an actor v with ρ(v) = κ(w);
//   - every buffer b_ab becomes a data edge e_ab with π(e_ab) = ξ(b_ab) and
//     γ(e_ab) = λ(b_ab), and a space edge e_ba with π(e_ba) = λ(b_ab),
//     γ(e_ba) = ξ(b_ab) and δ(e_ba) = ζ(b_ab).
//
// Buffers with zero capacity are mapped with zero initial tokens; the
// capacity computation fills them in later.
func FromTaskGraph(t *taskgraph.Graph) (*Graph, *Mapping, error) {
	if err := t.Validate(); err != nil {
		return nil, nil, err
	}
	g := New()
	m := &Mapping{TaskToActor: make(map[string]string)}
	for _, w := range t.Tasks() {
		if _, err := g.AddActor(w.Name, w.WCRT); err != nil {
			return nil, nil, err
		}
		m.TaskToActor[w.Name] = w.Name
	}
	for _, b := range t.Buffers() {
		data := Edge{
			Name: "data:" + b.DefaultName(),
			Src:  b.Producer, Dst: b.Consumer,
			Prod: b.Prod, Cons: b.Cons,
			Initial: 0, // every buffer is initially empty (§3.1)
		}
		space := Edge{
			Name: "space:" + b.DefaultName(),
			Src:  b.Consumer, Dst: b.Producer,
			Prod: b.Cons, Cons: b.Prod,
			Initial: b.Capacity,
		}
		if _, err := g.AddEdge(data); err != nil {
			return nil, nil, err
		}
		if _, err := g.AddEdge(space); err != nil {
			return nil, nil, err
		}
		m.Pairs = append(m.Pairs, BufferPair{
			Buffer: b.DefaultName(),
			Data:   data.Name,
			Space:  space.Name,
		})
	}
	return g, m, nil
}

// CheckBufferSymmetry verifies the §3.3 invariants on a constructed graph:
// for every buffer pair, π(data) == γ(space) and γ(data) == π(space), and
// the data edge starts empty. Together with the chain restriction this makes
// the VRDF graph inherently strongly consistent (§3.3; Lee 1991).
func CheckBufferSymmetry(g *Graph, m *Mapping) error {
	for _, p := range m.Pairs {
		data := g.EdgeByName(p.Data)
		space := g.EdgeByName(p.Space)
		if data == nil || space == nil {
			return fmt.Errorf("vrdf: buffer %q: missing edge pair", p.Buffer)
		}
		if data.Src != space.Dst || data.Dst != space.Src {
			return fmt.Errorf("vrdf: buffer %q: edges are not opposite", p.Buffer)
		}
		if !data.Prod.Equal(space.Cons) {
			return fmt.Errorf("vrdf: buffer %q: π(data)=%v != γ(space)=%v", p.Buffer, data.Prod, space.Cons)
		}
		if !data.Cons.Equal(space.Prod) {
			return fmt.Errorf("vrdf: buffer %q: γ(data)=%v != π(space)=%v", p.Buffer, data.Cons, space.Prod)
		}
		if data.Initial != 0 {
			return fmt.Errorf("vrdf: buffer %q: data edge has %d initial tokens; buffers start empty", p.Buffer, data.Initial)
		}
	}
	return nil
}
