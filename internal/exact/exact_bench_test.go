package exact

import (
	"testing"

	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

// BenchmarkExactPairMinCapacity measures the pair search with the reused
// searcher: all capacity probes of one MinCapacity call share a single
// visited-state map and BFS queue.
func BenchmarkExactPairMinCapacity(b *testing.B) {
	prod := taskgraph.MustQuanta(2, 3, 5)
	cons := taskgraph.MustQuanta(2, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		min, err := MinCapacity(prod, cons)
		if err != nil {
			b.Fatal(err)
		}
		if min <= 0 {
			b.Fatal("non-positive minimum")
		}
	}
}

// BenchmarkChainCertify measures the compiled chain certifier probing a
// grid of capacity assignments on one compiled chain — the exact-search
// analogue of the simulator's compile-once Reset/Run reuse.
func BenchmarkChainCertify(b *testing.B) {
	p1 := taskgraph.MustQuanta(3)
	c1 := taskgraph.MustQuanta(2, 3)
	p2 := taskgraph.MustQuanta(2, 3)
	c2 := taskgraph.MustQuanta(2)
	g, err := taskgraph.BuildChain(
		[]taskgraph.Stage{
			{Name: "a", WCRT: ratio.One}, {Name: "b", WCRT: ratio.One},
			{Name: "c", WCRT: ratio.One},
		},
		[]taskgraph.Link{
			{Prod: p1, Cons: c1, Capacity: 1},
			{Prod: p2, Cons: c2, Capacity: 1},
		})
	if err != nil {
		b.Fatal(err)
	}
	cert, err := CompileChain(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	caps := map[string]int64{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		unsafe := 0
		for cap1 := int64(4); cap1 <= 5; cap1++ {
			for cap2 := int64(3); cap2 <= 4; cap2++ {
				caps["a->b"], caps["b->c"] = cap1, cap2
				ok, _, err := cert.Certify(caps)
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					unsafe++
				}
			}
		}
		if unsafe == 0 || unsafe == 4 {
			b.Fatalf("grid should mix verdicts, got %d unsafe", unsafe)
		}
	}
}
