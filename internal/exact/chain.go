package exact

import (
	"fmt"
	"strings"

	"vrdfcap/internal/taskgraph"
)

// ChainWitness is a deadlock counterexample for a chain: per task, the
// committed quanta of its firings in order. For a middle task the k-th
// entries of In and Out belong to the same firing (the coupled choice a
// data-dependent task makes).
type ChainWitness struct {
	// In[task] are the consumption quanta per firing ("" for the source).
	In map[string][]int64
	// Out[task] are the production quanta per firing ("" for the sink).
	Out map[string][]int64
}

// chainTask mirrors taskState for a task with up to one input and one
// output buffer: the committed quanta of the next firing and whether the
// task is mid-firing.
type chainTask struct {
	qin, qout int64 // 0 when the side does not exist
	inFlight  bool
}

// chainState is the buffer occupancies plus every task's position. Encoded
// as a string key for map storage (chains are short).
type chainState struct {
	d     []int64 // data tokens per buffer
	s     []int64 // space tokens per buffer
	tasks []chainTask
}

func (cs *chainState) key() string {
	var b strings.Builder
	for i := range cs.d {
		fmt.Fprintf(&b, "%d,%d;", cs.d[i], cs.s[i])
	}
	for _, t := range cs.tasks {
		fmt.Fprintf(&b, "%d,%d,%v;", t.qin, t.qout, t.inFlight)
	}
	return b.String()
}

func (cs *chainState) clone() chainState {
	n := chainState{
		d:     append([]int64(nil), cs.d...),
		s:     append([]int64(nil), cs.s...),
		tasks: append([]chainTask(nil), cs.tasks...),
	}
	return n
}

// ChainDeadlockFree exhaustively checks a sized chain against every
// sequence of coupled per-firing quanta choices. Every buffer must have a
// positive capacity. The adversary commits a task's next (consumption,
// production) quantum pair when its previous firing finishes — the coupled
// information structure of real data-dependent tasks, where one frame
// decides both what is read and what is written.
//
// The state space is the product of the buffer occupancies and task
// commitments; a guard refuses graphs beyond ~2 million states.
func ChainDeadlockFree(g *taskgraph.Graph, maxStates int) (bool, *ChainWitness, error) {
	if maxStates <= 0 {
		maxStates = 2_000_000
	}
	tasks, buffers, err := g.Chain()
	if err != nil {
		return false, nil, err
	}
	for _, b := range buffers {
		if b.Capacity <= 0 {
			return false, nil, fmt.Errorf("exact: buffer %s has no capacity", b.DefaultName())
		}
	}
	type pick struct{ qin, qout int64 }
	// Per task: the admissible coupled choices (positive quanta only;
	// zero-quantum firings cannot affect stuck-state reachability).
	choices := make([][]pick, len(tasks))
	for i := range tasks {
		var ins, outs []int64
		if i > 0 {
			ins = positive(buffers[i-1].Cons)
		} else {
			ins = []int64{0}
		}
		if i < len(buffers) {
			outs = positive(buffers[i].Prod)
		} else {
			outs = []int64{0}
		}
		for _, qi := range ins {
			for _, qo := range outs {
				choices[i] = append(choices[i], pick{qi, qo})
			}
		}
	}

	// Refuse obviously hopeless searches up front: the state count is
	// bounded by the product of per-buffer occupancy counts and
	// per-task commitment/phase counts.
	est := 1.0
	for _, b := range buffers {
		est *= float64(b.Capacity+1) * float64(b.Capacity+2) / 2
	}
	for i := range tasks {
		est *= float64(2 * len(choices[i]))
	}
	if est > float64(maxStates) {
		return false, nil, fmt.Errorf("exact: chain state space (~%.3g states) exceeds the %d-state guard; use the analytical bound for graphs this large", est, maxStates)
	}

	type edge struct {
		prevKey string
		task    int
		p       pick
		hasPick bool
		valid   bool
	}
	parent := make(map[string]edge)
	var queue []chainState
	push := func(next chainState, fromKey string, e edge) {
		k := next.key()
		if _, seen := parent[k]; seen {
			return
		}
		e.prevKey = fromKey
		e.valid = true
		parent[k] = e
		queue = append(queue, next)
	}
	// Seed: every combination of initial commitments. To avoid an
	// exponential seed set, commit tasks one at a time through synthetic
	// intermediate states (qin = qout = -1 marks "uncommitted").
	seed := chainState{
		d:     make([]int64, len(buffers)),
		s:     make([]int64, len(buffers)),
		tasks: make([]chainTask, len(tasks)),
	}
	for i, b := range buffers {
		seed.s[i] = b.Capacity
	}
	for i := range seed.tasks {
		seed.tasks[i] = chainTask{qin: -1, qout: -1}
	}
	rootKey := "root"
	parent[rootKey] = edge{}
	push(seed, rootKey, edge{})

	guard := 0
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		k := st.key()
		guard++
		if guard > maxStates {
			return false, nil, fmt.Errorf("exact: chain state space exceeds %d states", maxStates)
		}

		// If some task is uncommitted, branch its first commitment and
		// defer everything else.
		uncommitted := -1
		for i, t := range st.tasks {
			if t.qin < 0 {
				uncommitted = i
				break
			}
		}
		if uncommitted >= 0 {
			for _, p := range choices[uncommitted] {
				next := st.clone()
				next.tasks[uncommitted] = chainTask{qin: p.qin, qout: p.qout}
				push(next, k, edge{task: uncommitted, p: p, hasPick: true})
			}
			continue
		}

		progress := false
		for i, t := range st.tasks {
			if !t.inFlight {
				// Start: needs input data and output space.
				okIn := i == 0 || st.d[i-1] >= t.qin
				okOut := i == len(buffers) || st.s[i] >= t.qout
				if okIn && okOut {
					progress = true
					next := st.clone()
					if i > 0 {
						next.d[i-1] -= t.qin
					}
					if i < len(buffers) {
						next.s[i] -= t.qout
					}
					next.tasks[i].inFlight = true
					push(next, k, edge{})
				}
				continue
			}
			// Finish: produce data, release space, recommit.
			progress = true
			for _, p := range choices[i] {
				next := st.clone()
				if i > 0 {
					next.s[i-1] += t.qin
				}
				if i < len(buffers) {
					next.d[i] += t.qout
				}
				next.tasks[i] = chainTask{qin: p.qin, qout: p.qout}
				push(next, k, edge{task: i, p: p, hasPick: true})
			}
		}

		if !progress {
			w := &ChainWitness{In: map[string][]int64{}, Out: map[string][]int64{}}
			curKey := k
			for {
				e := parent[curKey]
				if !e.valid {
					break
				}
				if e.hasPick {
					name := tasks[e.task].Name
					if e.p.qin > 0 {
						w.In[name] = append(w.In[name], e.p.qin)
					}
					if e.p.qout > 0 {
						w.Out[name] = append(w.Out[name], e.p.qout)
					}
				}
				curKey = e.prevKey
			}
			for _, seq := range w.In {
				reverse(seq)
			}
			for _, seq := range w.Out {
				reverse(seq)
			}
			return false, w, nil
		}
	}
	return true, nil, nil
}
