package exact

import (
	"fmt"
	"strconv"

	"vrdfcap/internal/taskgraph"
)

// ChainWitness is a deadlock counterexample for a chain: per task, the
// committed quanta of its firings in order. For a middle task the k-th
// entries of In and Out belong to the same firing (the coupled choice a
// data-dependent task makes).
type ChainWitness struct {
	// In[task] are the consumption quanta per firing ("" for the source).
	In map[string][]int64
	// Out[task] are the production quanta per firing ("" for the sink).
	Out map[string][]int64
}

// chainTask mirrors taskState for a task with up to one input and one
// output buffer: the committed quanta of the next firing and whether the
// task is mid-firing.
type chainTask struct {
	qin, qout int64 // 0 when the side does not exist
	inFlight  bool
}

// chainState is the buffer occupancies plus every task's position. Encoded
// as a string key for map storage (chains are short).
type chainState struct {
	d     []int64 // data tokens per buffer
	s     []int64 // space tokens per buffer
	tasks []chainTask
}

func (cs *chainState) clone() chainState {
	n := chainState{
		d:     append([]int64(nil), cs.d...),
		s:     append([]int64(nil), cs.s...),
		tasks: append([]chainTask(nil), cs.tasks...),
	}
	return n
}

// pick is one coupled (consumption, production) quantum choice of a task's
// firing.
type pick struct{ qin, qout int64 }

// chainEdge records how the search reached a state, for witness
// reconstruction.
type chainEdge struct {
	prevKey string
	task    int
	p       pick
	hasPick bool
	valid   bool
}

// ChainCertifier is a chain compiled for repeated deadlock-freedom checks
// at different capacity assignments. CompileChain hoists everything that
// does not depend on capacities — the chain decomposition, the coupled
// per-task quanta choices and the state-count factors — and Certify reuses
// the visited-state map, BFS queue and key-encoding buffer across calls, so
// probing a capacity sweep rebuilds nothing. Not safe for concurrent use;
// compile one certifier per goroutine.
type ChainCertifier struct {
	tasks     []*taskgraph.Task
	buffers   []*taskgraph.Buffer
	byName    map[string]int // buffer name (default and custom) → index
	choices   [][]pick       // per task: admissible coupled choices
	choiceEst float64        // product over tasks of 2·|choices|
	maxStates int

	// Reusable per-Certify search state.
	caps   []int64
	parent map[string]chainEdge
	queue  []chainState
	keyBuf []byte
}

// CompileChain validates that g is a chain and compiles it for repeated
// certification. maxStates bounds each Certify's search (<= 0 selects the
// default of 2 million states). Capacities are not inspected here — they
// are resolved per Certify call, so an unsized graph can be compiled once
// and certified under many assignments.
func CompileChain(g *taskgraph.Graph, maxStates int) (*ChainCertifier, error) {
	if maxStates <= 0 {
		maxStates = 2_000_000
	}
	tasks, buffers, err := g.Chain()
	if err != nil {
		return nil, err
	}
	c := &ChainCertifier{
		tasks:     tasks,
		buffers:   buffers,
		byName:    make(map[string]int, 2*len(buffers)),
		choices:   make([][]pick, len(tasks)),
		choiceEst: 1,
		maxStates: maxStates,
		caps:      make([]int64, len(buffers)),
		parent:    make(map[string]chainEdge),
	}
	for i, b := range buffers {
		c.byName[b.DefaultName()] = i
		if b.Name != "" {
			c.byName[b.Name] = i
		}
	}
	// Per task: the admissible coupled choices (positive quanta only;
	// zero-quantum firings cannot affect stuck-state reachability).
	for i := range tasks {
		var ins, outs []int64
		if i > 0 {
			ins = positive(buffers[i-1].Cons)
		} else {
			ins = []int64{0}
		}
		if i < len(buffers) {
			outs = positive(buffers[i].Prod)
		} else {
			outs = []int64{0}
		}
		for _, qi := range ins {
			for _, qo := range outs {
				c.choices[i] = append(c.choices[i], pick{qi, qo})
			}
		}
		c.choiceEst *= float64(2 * len(c.choices[i]))
	}
	return c, nil
}

// stateKey encodes a state into the certifier's reusable buffer and
// returns it as a map key.
func (c *ChainCertifier) stateKey(cs *chainState) string {
	b := c.keyBuf[:0]
	for i := range cs.d {
		b = strconv.AppendInt(b, cs.d[i], 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, cs.s[i], 10)
		b = append(b, ';')
	}
	for _, t := range cs.tasks {
		b = strconv.AppendInt(b, t.qin, 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, t.qout, 10)
		if t.inFlight {
			b = append(b, ",1;"...)
		} else {
			b = append(b, ",0;"...)
		}
	}
	c.keyBuf = b
	return string(b)
}

// Certify exhaustively checks the compiled chain, sized by caps, against
// every sequence of coupled per-firing quanta choices. caps overrides
// buffer capacities by name (default or custom); buffers without an entry
// use the capacity on the compiled graph. Every resolved capacity must be
// positive.
func (c *ChainCertifier) Certify(caps map[string]int64) (bool, *ChainWitness, error) {
	for name := range caps {
		if _, ok := c.byName[name]; !ok {
			return false, nil, fmt.Errorf("exact: capacity override for unknown buffer %q", name)
		}
	}
	for i, b := range c.buffers {
		c.caps[i] = b.Capacity
		if v, ok := caps[b.DefaultName()]; ok {
			c.caps[i] = v
		} else if b.Name != "" {
			if v, ok := caps[b.Name]; ok {
				c.caps[i] = v
			}
		}
		if c.caps[i] <= 0 {
			return false, nil, fmt.Errorf("exact: buffer %s has no capacity", b.DefaultName())
		}
	}

	// Refuse obviously hopeless searches up front: the state count is
	// bounded by the product of per-buffer occupancy counts and
	// per-task commitment/phase counts.
	est := c.choiceEst
	for i := range c.buffers {
		est *= float64(c.caps[i]+1) * float64(c.caps[i]+2) / 2
	}
	if est > float64(c.maxStates) {
		return false, nil, fmt.Errorf("exact: chain state space (~%.3g states) exceeds the %d-state guard; use the analytical bound for graphs this large", est, c.maxStates)
	}

	clear(c.parent)
	c.queue = c.queue[:0]
	parent := c.parent
	push := func(next chainState, fromKey string, e chainEdge) {
		k := c.stateKey(&next)
		if _, seen := parent[k]; seen {
			return
		}
		e.prevKey = fromKey
		e.valid = true
		parent[k] = e
		c.queue = append(c.queue, next)
	}
	// Seed: every combination of initial commitments. To avoid an
	// exponential seed set, commit tasks one at a time through synthetic
	// intermediate states (qin = qout = -1 marks "uncommitted").
	seed := chainState{
		d:     make([]int64, len(c.buffers)),
		s:     make([]int64, len(c.buffers)),
		tasks: make([]chainTask, len(c.tasks)),
	}
	for i := range c.buffers {
		seed.s[i] = c.caps[i]
	}
	for i := range seed.tasks {
		seed.tasks[i] = chainTask{qin: -1, qout: -1}
	}
	rootKey := "root"
	parent[rootKey] = chainEdge{}
	push(seed, rootKey, chainEdge{})

	guard := 0
	for head := 0; head < len(c.queue); head++ {
		st := c.queue[head]
		k := c.stateKey(&st)
		guard++
		if guard > c.maxStates {
			return false, nil, fmt.Errorf("exact: chain state space exceeds %d states", c.maxStates)
		}

		// If some task is uncommitted, branch its first commitment and
		// defer everything else.
		uncommitted := -1
		for i, t := range st.tasks {
			if t.qin < 0 {
				uncommitted = i
				break
			}
		}
		if uncommitted >= 0 {
			for _, p := range c.choices[uncommitted] {
				next := st.clone()
				next.tasks[uncommitted] = chainTask{qin: p.qin, qout: p.qout}
				push(next, k, chainEdge{task: uncommitted, p: p, hasPick: true})
			}
			continue
		}

		progress := false
		for i, t := range st.tasks {
			if !t.inFlight {
				// Start: needs input data and output space.
				okIn := i == 0 || st.d[i-1] >= t.qin
				okOut := i == len(c.buffers) || st.s[i] >= t.qout
				if okIn && okOut {
					progress = true
					next := st.clone()
					if i > 0 {
						next.d[i-1] -= t.qin
					}
					if i < len(c.buffers) {
						next.s[i] -= t.qout
					}
					next.tasks[i].inFlight = true
					push(next, k, chainEdge{})
				}
				continue
			}
			// Finish: produce data, release space, recommit.
			progress = true
			for _, p := range c.choices[i] {
				next := st.clone()
				if i > 0 {
					next.s[i-1] += t.qin
				}
				if i < len(c.buffers) {
					next.d[i] += t.qout
				}
				next.tasks[i] = chainTask{qin: p.qin, qout: p.qout}
				push(next, k, chainEdge{task: i, p: p, hasPick: true})
			}
		}

		if !progress {
			w := &ChainWitness{In: map[string][]int64{}, Out: map[string][]int64{}}
			curKey := k
			//vrdf:unbudgeted(walks the acyclic parent chain of an already-explored state, bounded by the budgeted search above)
			for {
				e := parent[curKey]
				if !e.valid {
					break
				}
				if e.hasPick {
					name := c.tasks[e.task].Name
					if e.p.qin > 0 {
						w.In[name] = append(w.In[name], e.p.qin)
					}
					if e.p.qout > 0 {
						w.Out[name] = append(w.Out[name], e.p.qout)
					}
				}
				curKey = e.prevKey
			}
			for _, seq := range w.In {
				reverse(seq)
			}
			for _, seq := range w.Out {
				reverse(seq)
			}
			return false, w, nil
		}
	}
	return true, nil, nil
}

// ChainDeadlockFree exhaustively checks a sized chain against every
// sequence of coupled per-firing quanta choices. Every buffer must have a
// positive capacity. The adversary commits a task's next (consumption,
// production) quantum pair when its previous firing finishes — the coupled
// information structure of real data-dependent tasks, where one frame
// decides both what is read and what is written.
//
// The state space is the product of the buffer occupancies and task
// commitments; a guard refuses graphs beyond ~2 million states. Callers
// probing many capacity assignments of one chain should CompileChain once
// and Certify repeatedly instead.
func ChainDeadlockFree(g *taskgraph.Graph, maxStates int) (bool, *ChainWitness, error) {
	c, err := CompileChain(g, maxStates)
	if err != nil {
		return false, nil, err
	}
	return c.Certify(nil)
}
