package exact

import (
	"fmt"

	"vrdfcap/internal/quanta"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
)

// Replayer validates adversarial pair witnesses in the timed simulator on a
// single compiled machine. The untimed search proves a deadlock exists;
// replaying its witness cross-checks the two engines against each other.
// One machine is compiled per quanta-set pair, and each Replay call swaps
// in the witness sequences, repoints the stop condition and resets the
// space tokens to the probed capacity — no per-replay rebuild. Not safe for
// concurrent use.
type Replayer struct {
	m     *sim.Machine
	space string // space-edge name carrying the capacity override

	// prodFill/consFill extend a witness arbitrarily past the deadlock
	// point: the deadlock must strike regardless of the continuation.
	prodFill, consFill int64
	prodVals, consVals []int64 // current witness, swapped per Replay
}

// seq reads the replayer's current witness slice, falling back to fill
// beyond its end. Bound once at compile time; the slices swap per Replay.
func replaySeq(vals *[]int64, fill *int64) quanta.Sequence {
	return quanta.Func(func(k int64) int64 {
		if v := *vals; k < int64(len(v)) {
			return v[k]
		}
		return *fill
	})
}

// NewReplayer compiles a timed producer–consumer pair ("wa" feeding "wb",
// both with unit response time) for repeated witness replays.
func NewReplayer(prod, cons taskgraph.QuantaSet) (*Replayer, error) {
	if !prod.IsValid() || !cons.IsValid() {
		return nil, fmt.Errorf("exact: invalid quanta sets")
	}
	g, err := taskgraph.Pair("wa", ratio.One, "wb", ratio.One, prod, cons)
	if err != nil {
		return nil, err
	}
	// Placeholder capacity; every Replay overrides the space tokens.
	buffer := g.Buffers()[0]
	buffer.Capacity = prod.Max() + cons.Max()
	r := &Replayer{prodFill: prod.Max(), consFill: cons.Max()}
	cfg, mapping, err := sim.TaskGraphConfig(g, sim.Workloads{
		buffer.DefaultName(): {
			Prod: replaySeq(&r.prodVals, &r.prodFill),
			Cons: replaySeq(&r.consVals, &r.consFill),
		},
	})
	if err != nil {
		return nil, err
	}
	pair, ok := mapping.Pair(buffer.DefaultName())
	if !ok {
		return nil, fmt.Errorf("exact: buffer %s has no edge pair", buffer.DefaultName())
	}
	r.space = pair.Space
	cfg.Stop = sim.Stop{Actor: "wb", Firings: 1} // repointed per Replay
	m, err := sim.Compile(cfg)
	if err != nil {
		return nil, err
	}
	r.m = m
	return r, nil
}

// Replay executes the witness against the given capacity and returns the
// simulator's result; a true counterexample ends with Outcome Deadlocked.
// The run continues a few firings past the witness (repeating each set's
// maximum) so a deadlock cannot be masked by the stop condition.
func (r *Replayer) Replay(w *Witness, capacity int64) (*sim.Result, error) {
	if w == nil {
		return nil, fmt.Errorf("exact: nil witness")
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("exact: capacity must be positive, got %d", capacity)
	}
	r.prodVals = w.Prod
	r.consVals = w.Cons
	// Reset reverts knob overrides, so it must run before SetStopFirings.
	if err := r.m.Reset(map[string]int64{r.space: capacity}); err != nil {
		return nil, err
	}
	//vrdf:reuseok(the Replayer owns r.m and every Replay entry Resets before overriding, so the leaked stop count is re-pointed before it can be observed)
	if err := r.m.SetStopFirings(int64(len(w.Cons)) + 10); err != nil {
		return nil, err
	}
	return r.m.Run()
}

// Deadlocks reports whether replaying the witness at the given capacity
// drives the timed simulator into a deadlock.
func (r *Replayer) Deadlocks(w *Witness, capacity int64) (bool, error) {
	res, err := r.Replay(w, capacity)
	if err != nil {
		return false, err
	}
	return res.Outcome == sim.Deadlocked, nil
}
