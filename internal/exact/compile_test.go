package exact

import (
	"reflect"
	"strings"
	"testing"

	"vrdfcap/internal/taskgraph"
)

// TestChainCertifierMatchesOneShot pins the compile-once contract: one
// certifier probed across a capacity grid — twice, to catch state leaking
// between calls — returns exactly the verdicts of the rebuild-per-call
// ChainDeadlockFree.
func TestChainCertifierMatchesOneShot(t *testing.T) {
	p1 := taskgraph.MustQuanta(3)
	c1 := taskgraph.MustQuanta(2, 3)
	p2 := taskgraph.MustQuanta(2, 3)
	c2 := taskgraph.MustQuanta(2)
	g := threeChain(t, p1, c1, p2, c2, 1, 1) // placeholder; every probe overrides

	cert, err := CompileChain(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		for cap1 := int64(3); cap1 <= 6; cap1++ {
			for cap2 := int64(3); cap2 <= 5; cap2++ {
				caps := map[string]int64{"a->b": cap1, "b->c": cap2}
				got, _, err := cert.Certify(caps)
				if err != nil {
					t.Fatal(err)
				}
				fresh := threeChain(t, p1, c1, p2, c2, cap1, cap2)
				want, _, err := ChainDeadlockFree(fresh, 0)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("round %d caps (%d, %d): certifier says %v, one-shot says %v",
						round, cap1, cap2, got, want)
				}
			}
		}
	}
}

// TestChainCertifierWitnessStableAcrossReuse pins that the reused
// visited-state map and queue cannot corrupt witness reconstruction: after
// an unrelated Certify call, a deadlocking probe returns the identical
// witness a fresh one-shot search finds.
func TestChainCertifierWitnessStableAcrossReuse(t *testing.T) {
	p1 := taskgraph.MustQuanta(3)
	c1 := taskgraph.MustQuanta(2, 3)
	p2 := taskgraph.MustQuanta(2, 3)
	c2 := taskgraph.MustQuanta(2)
	m1, err := MinCapacity(p1, c1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := MinCapacity(p2, c2)
	if err != nil {
		t.Fatal(err)
	}

	cert, err := CompileChain(threeChain(t, p1, c1, p2, c2, 1, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pollute the reusable state with a safe probe first.
	if ok, _, err := cert.Certify(map[string]int64{"a->b": m1 + 2, "b->c": m2 + 2}); err != nil || !ok {
		t.Fatalf("generous capacities unsafe: ok=%v err=%v", ok, err)
	}
	ok, got, err := cert.Certify(map[string]int64{"a->b": m1 - 1, "b->c": m2 + 10})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("chain below the pair minimum reported safe")
	}
	_, want, err := ChainDeadlockFree(threeChain(t, p1, c1, p2, c2, m1-1, m2+10), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reused certifier witness diverged:\ngot:  %+v\nwant: %+v", got, want)
	}
}

func TestChainCertifierValidation(t *testing.T) {
	p := taskgraph.MustQuanta(2)
	cert, err := CompileChain(threeChain(t, p, p, p, p, 0, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cert.Certify(nil); err == nil || !strings.Contains(err.Error(), "no capacity") {
		t.Errorf("unsized buffer accepted: %v", err)
	}
	if _, _, err := cert.Certify(map[string]int64{"a->b": 4, "b->c": 4, "nope": 1}); err == nil ||
		!strings.Contains(err.Error(), "unknown buffer") {
		t.Errorf("unknown override accepted: %v", err)
	}
	if _, _, err := cert.Certify(map[string]int64{"a->b": 4, "b->c": -2}); err == nil ||
		!strings.Contains(err.Error(), "no capacity") {
		t.Errorf("negative override accepted: %v", err)
	}
	// An override fixing the unsized buffer makes the same certifier
	// usable — capacities are per-probe, not per-compile.
	if ok, _, err := cert.Certify(map[string]int64{"a->b": 4, "b->c": 4}); err != nil || !ok {
		t.Errorf("constant-rate chain at capacity 4 should be safe: ok=%v err=%v", ok, err)
	}
	// The state guard still trips per probe.
	small, err := CompileChain(threeChain(t, p, p, p, p, 4, 4), 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := small.Certify(nil); err == nil || !strings.Contains(err.Error(), "guard") {
		t.Errorf("state guard did not trip: %v", err)
	}
}
