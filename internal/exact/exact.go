// Package exact computes, by exhaustive state-space search, the *exact*
// minimum buffer capacity that keeps a producer–consumer pair deadlock-free
// for every admissible sequence of transfer quanta — the quantity the
// paper's Figure-1 discussion reasons about by example ("if the consumption
// quantum equals two in every task execution, then the minimum buffer
// capacity for deadlock-free execution is four").
//
// The search plays an adaptive adversary: at every state it may pick any
// quantum from the declared sets for the next producer or consumer firing.
// For the safety property checked here (reachability of a stuck state) the
// adaptive adversary is exactly as strong as the worst fixed sequence — the
// choices made along a deadlocking path *are* a fixed sequence — so the
// result is the true minimum over all data-dependent behaviours, unlike
// sampling-based search (internal/minimize), which can only refute.
//
// States are untimed: timing cannot avert a deadlock that token counting
// allows, because starting later never adds tokens (and the eager schedule
// reaches every token-reachable state). A found deadlock comes with a
// witness — the per-firing quanta sequences that reproduce it in the timed
// simulator.
package exact

import (
	"fmt"

	"vrdfcap/internal/taskgraph"
)

// Witness is an adversarial counterexample: feeding these sequences to the
// pair (producer quanta and consumer quanta per firing, in order) drives it
// into the deadlock.
type Witness struct {
	Prod []int64
	Cons []int64
}

// taskState is one task's position: the quantum of the firing it is
// committed to next (Pending — chosen by the adversary when the previous
// firing finished, exactly as a fixed sequence fixes it), or the quantum it
// is currently executing (InFlight).
type taskState struct {
	q        int64
	inFlight bool
}

// state is (data tokens, space tokens, producer state, consumer state).
// Space tokens are implied by the invariant d + s + inflight == capacity
// but kept explicit for clarity.
type state struct {
	d, s int64
	p, c taskState
}

// pairEdge records how the search reached a state, for witness
// reconstruction.
type pairEdge struct {
	prev     state
	prodPick int64 // quantum committed for the producer (0 = none)
	consPick int64 // quantum committed for the consumer (0 = none)
	valid    bool
}

// pairSearcher holds the compiled inputs and reusable search state for
// exploring one producer–consumer pair at several capacities. MinCapacity
// walks capacities upward on a single searcher, so the visited-state map
// and BFS queue are allocated once and recycled per capacity instead of
// rebuilt per probe. Not safe for concurrent use.
type pairSearcher struct {
	prodVals []int64
	consVals []int64
	parent   map[state]pairEdge
	queue    []state
}

// newPairSearcher validates the quanta sets and compiles them into a
// reusable searcher.
func newPairSearcher(prod, cons taskgraph.QuantaSet) (*pairSearcher, error) {
	if !prod.IsValid() || !cons.IsValid() {
		return nil, fmt.Errorf("exact: invalid quanta sets")
	}
	return &pairSearcher{
		prodVals: positive(prod),
		consVals: positive(cons),
		parent:   make(map[state]pairEdge),
	}, nil
}

// deadlockFree runs one untimed reachability search at the given capacity,
// reusing the searcher's map and queue.
func (ps *pairSearcher) deadlockFree(capacity int64) (bool, *Witness, error) {
	if capacity <= 0 {
		return false, nil, fmt.Errorf("exact: capacity must be positive, got %d", capacity)
	}
	// The state space is O(capacity² · |P| · |C|); refuse blow-ups (the
	// MP3 chain's first buffer would need ~10⁸ states — use the
	// analytical bound there, that is what it is for).
	est := (capacity + 1) * (capacity + 2) * 2 * int64(len(ps.prodVals)) * int64(len(ps.consVals))
	if est > 20_000_000 {
		return false, nil, fmt.Errorf("exact: ~%d states exceed the search guard; use the Equation-4 bound for pairs this large", est)
	}

	clear(ps.parent)
	ps.queue = ps.queue[:0]
	parent := ps.parent
	push := func(next state, from state, e pairEdge) {
		if _, seen := parent[next]; seen {
			return
		}
		e.prev = from
		e.valid = true
		parent[next] = e
		ps.queue = append(ps.queue, next)
	}

	// Initial states: the adversary commits the first quantum of each
	// task. The synthetic root lets witness reconstruction terminate.
	root := state{d: -1, s: -1}
	parent[root] = pairEdge{}
	for _, qp := range ps.prodVals {
		for _, qc := range ps.consVals {
			push(state{
				d: 0, s: capacity,
				p: taskState{q: qp}, c: taskState{q: qc},
			}, root, pairEdge{prodPick: qp, consPick: qc})
		}
	}

	for head := 0; head < len(ps.queue); head++ {
		st := ps.queue[head]

		progress := false
		// Producer start: its committed quantum fits in the space.
		if !st.p.inFlight && st.s >= st.p.q {
			progress = true
			next := st
			next.s -= st.p.q
			next.p.inFlight = true
			push(next, st, pairEdge{})
		}
		// Producer finish: data appears; adversary commits the next
		// production quantum.
		if st.p.inFlight {
			progress = true
			for _, qp := range ps.prodVals {
				next := st
				next.d += st.p.q
				next.p = taskState{q: qp}
				push(next, st, pairEdge{prodPick: qp})
			}
		}
		// Consumer start.
		if !st.c.inFlight && st.d >= st.c.q {
			progress = true
			next := st
			next.d -= st.c.q
			next.c.inFlight = true
			push(next, st, pairEdge{})
		}
		// Consumer finish: space returns; adversary commits the next
		// consumption quantum.
		if st.c.inFlight {
			progress = true
			for _, qc := range ps.consVals {
				next := st
				next.s += st.c.q
				next.c = taskState{q: qc}
				push(next, st, pairEdge{consPick: qc})
			}
		}

		if !progress {
			// Both idle with unstartable commitments: deadlock.
			w := &Witness{}
			cur := st
			//vrdf:unbudgeted(walks the acyclic parent chain of an already-explored state, bounded by the budgeted search above)
			for {
				e := parent[cur]
				if !e.valid {
					break
				}
				if e.prodPick > 0 {
					w.Prod = append(w.Prod, e.prodPick)
				}
				if e.consPick > 0 {
					w.Cons = append(w.Cons, e.consPick)
				}
				cur = e.prev
			}
			reverse(w.Prod)
			reverse(w.Cons)
			return false, w, nil
		}
	}
	return true, nil, nil
}

// DeadlockFree reports whether the pair with the given capacity is
// deadlock-free under every quanta sequence, returning a witness otherwise.
//
// The adversary commits each firing's quantum when the previous firing of
// that task finishes — before knowing whether it will ever become startable
// — which is exactly the information structure of a fixed data-dependent
// sequence. (An adversary that could re-choose at start time would be
// weaker: it could escape deadlocks a fixed sequence runs into.) A state is
// stuck when both tasks are idle and their committed quanta exceed the
// available tokens. Zero-quantum firings transfer nothing and cannot
// unstick the peer, so the adversary never needs them and they are omitted.
func DeadlockFree(prod, cons taskgraph.QuantaSet, capacity int64) (bool, *Witness, error) {
	ps, err := newPairSearcher(prod, cons)
	if err != nil {
		return false, nil, err
	}
	return ps.deadlockFree(capacity)
}

// MinCapacity returns the exact minimum deadlock-free capacity of the pair,
// searching upwards from the largest single transfer. The untimed limit of
// Equation (4), π̂ + γ̂ − 1, is a guaranteed-sufficient upper bound, so the
// search always terminates. All capacities are probed on one compiled
// searcher, reusing the visited-state map and queue across probes.
func MinCapacity(prod, cons taskgraph.QuantaSet) (int64, error) {
	ps, err := newPairSearcher(prod, cons)
	if err != nil {
		return 0, err
	}
	lo := prod.Max()
	if c := cons.Max(); c > lo {
		lo = c
	}
	hi := prod.Max() + cons.Max() - 1
	for z := lo; z <= hi; z++ {
		ok, _, err := ps.deadlockFree(z)
		if err != nil {
			return 0, err
		}
		if ok {
			return z, nil
		}
	}
	// Unreachable if the upper bound argument holds; keep a defensive
	// return for malformed inputs.
	return 0, fmt.Errorf("exact: no deadlock-free capacity up to %d; this contradicts the Equation-4 bound", hi)
}

// positive returns the set's positive members (zero-quantum firings cannot
// affect reachability of a stuck state).
func positive(q taskgraph.QuantaSet) []int64 {
	vals := q.Values()
	out := vals[:0:0]
	for _, v := range vals {
		if v > 0 {
			out = append(out, v)
		}
	}
	return out
}

//vrdf:noalloc
func reverse(s []int64) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
