package exact

import (
	"testing"

	"vrdfcap/internal/quanta"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
)

func threeChain(t *testing.T, p1, c1, p2, c2 taskgraph.QuantaSet, cap1, cap2 int64) *taskgraph.Graph {
	t.Helper()
	g, err := taskgraph.BuildChain(
		[]taskgraph.Stage{
			{Name: "a", WCRT: ratio.One},
			{Name: "b", WCRT: ratio.One},
			{Name: "c", WCRT: ratio.One},
		},
		[]taskgraph.Link{
			{Prod: p1, Cons: c1, Capacity: cap1},
			{Prod: p2, Cons: c2, Capacity: cap2},
		})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestChainMatchesPairModel(t *testing.T) {
	// On a two-task chain the chain checker must agree with the pair
	// checker for every capacity.
	prod := taskgraph.MustQuanta(3)
	cons := taskgraph.MustQuanta(2, 3)
	for capn := int64(3); capn <= 6; capn++ {
		pairOK, _, err := DeadlockFree(prod, cons, capn)
		if err != nil {
			t.Fatal(err)
		}
		g, err := taskgraph.Pair("a", ratio.One, "b", ratio.One, prod, cons)
		if err != nil {
			t.Fatal(err)
		}
		g.Buffers()[0].Capacity = capn
		chainOK, _, err := ChainDeadlockFree(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if pairOK != chainOK {
			t.Errorf("capacity %d: pair says %v, chain says %v", capn, pairOK, chainOK)
		}
	}
}

func TestChainCompositionOfPairMinima(t *testing.T) {
	// Empirical finding worth recording: sizing every buffer at its
	// per-pair exact minimum kept every tested chain deadlock-free —
	// the per-pair decomposition (the paper's §4.3 strategy) loses no
	// safety on these chains.
	cases := [][4][]int64{
		{{3}, {2, 3}, {2, 3}, {2}},
		{{2, 4}, {3}, {1, 3}, {2}},
		{{5}, {2, 5}, {4}, {3, 4}},
		{{2, 3}, {2, 3}, {2, 3}, {2, 3}},
	}
	for _, q := range cases {
		p1 := taskgraph.MustQuanta(q[0]...)
		c1 := taskgraph.MustQuanta(q[1]...)
		p2 := taskgraph.MustQuanta(q[2]...)
		c2 := taskgraph.MustQuanta(q[3]...)
		m1, err := MinCapacity(p1, c1)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := MinCapacity(p2, c2)
		if err != nil {
			t.Fatal(err)
		}
		g := threeChain(t, p1, c1, p2, c2, m1, m2)
		ok, w, err := ChainDeadlockFree(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("%v: pair minima (%d, %d) do not compose; witness %+v", q, m1, m2, w)
		}
	}
}

func TestChainBelowPairMinimumDeadlocks(t *testing.T) {
	// The per-pair minimum is a hard floor: one container less on the
	// first buffer deadlocks the chain even with generous downstream
	// capacity, and the witness replays in the timed simulator.
	p1 := taskgraph.MustQuanta(3)
	c1 := taskgraph.MustQuanta(2, 3)
	p2 := taskgraph.MustQuanta(2, 3)
	c2 := taskgraph.MustQuanta(2)
	m1, err := MinCapacity(p1, c1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := MinCapacity(p2, c2)
	if err != nil {
		t.Fatal(err)
	}
	g := threeChain(t, p1, c1, p2, c2, m1-1, m2+10)
	ok, w, err := ChainDeadlockFree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("chain below the pair minimum reported safe")
	}
	if w == nil || len(w.In["b"]) == 0 || len(w.Out["b"]) == 0 {
		t.Fatalf("witness incomplete: %+v", w)
	}
	// Replay: the middle task's In/Out sequences are coupled by firing
	// index; extend past the deadlock with the sets' maxima.
	ext := func(seq []int64, last int64) quanta.Sequence {
		return quanta.Sticky(append(append([]int64{}, seq...), last)...)
	}
	cfg, _, err := sim.TaskGraphConfig(g, sim.Workloads{
		"a->b": {Prod: ext(w.Out["a"], 3), Cons: ext(w.In["b"], 3)},
		"b->c": {Prod: ext(w.Out["b"], 3), Cons: ext(w.In["c"], 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stop = sim.Stop{Actor: "c", Firings: int64(len(w.In["c"])) + 20}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != sim.Deadlocked {
		t.Fatalf("chain witness did not deadlock the simulator: %v", res.Outcome)
	}
}

func TestChainValidation(t *testing.T) {
	p := taskgraph.MustQuanta(2)
	g := threeChain(t, p, p, p, p, 0, 4)
	if _, _, err := ChainDeadlockFree(g, 0); err == nil {
		t.Error("unsized buffer accepted")
	}
	// Tiny state guard trips on a legal graph.
	g2 := threeChain(t, p, p, p, p, 4, 4)
	if _, _, err := ChainDeadlockFree(g2, 10); err == nil {
		t.Error("state guard did not trip")
	}
}
