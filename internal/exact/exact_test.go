package exact

import (
	"testing"
	"testing/quick"

	"vrdfcap/internal/quanta"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
)

func TestFigure1ExactMinimum(t *testing.T) {
	// The paper's motivating numbers, now exact over ALL sequences:
	// with n = {3}: 3; with n = {2}: 4; with n = {2,3}: 5 (the
	// alternating sequence is a worst case, as the sampled search
	// suggested).
	cases := []struct {
		prod, cons taskgraph.QuantaSet
		want       int64
	}{
		{taskgraph.MustQuanta(3), taskgraph.MustQuanta(3), 3},
		{taskgraph.MustQuanta(3), taskgraph.MustQuanta(2), 4},
		{taskgraph.MustQuanta(3), taskgraph.MustQuanta(2, 3), 5},
	}
	for _, c := range cases {
		got, err := MinCapacity(c.prod, c.cons)
		if err != nil {
			t.Fatalf("%v/%v: %v", c.prod, c.cons, err)
		}
		if got != c.want {
			t.Errorf("MinCapacity(%v, %v) = %d, want %d", c.prod, c.cons, got, c.want)
		}
	}
}

func TestWitnessReplaysToDeadlockInSimulator(t *testing.T) {
	// The adversarial witness found by the untimed search must reproduce
	// the deadlock in the timed simulator — cross-validating both. All
	// replays run on one compiled machine (the Replayer); only the
	// witness sequences, stop condition and space tokens change per call.
	prod := taskgraph.MustQuanta(3)
	cons := taskgraph.MustQuanta(2, 3)
	min, err := MinCapacity(prod, cons)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplayer(prod, cons)
	if err != nil {
		t.Fatal(err)
	}
	// Every undersized capacity yields a witness, and each witness must
	// deadlock the timed engine at its capacity — exercising the reused
	// machine across several capacities and witness lengths.
	for capn := min - 1; capn >= cons.Max(); capn-- {
		ok, w, err := DeadlockFree(prod, cons, capn)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("capacity %d reported safe but %d is the minimum", capn, min)
		}
		if w == nil || len(w.Cons) == 0 {
			t.Fatalf("capacity %d: no witness returned: %+v", capn, w)
		}
		res, err := r.Replay(w, capn)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != sim.Deadlocked {
			t.Fatalf("capacity %d: witness did not deadlock the simulator: outcome %v after %d consumer firings",
				capn, res.Outcome, res.Finished["wb"])
		}
		// The same adversarial sequence with one more container must
		// not deadlock at the exact minimum: the witness is tight.
		if capn == min-1 {
			stuck, err := r.Deadlocks(w, min)
			if err != nil {
				t.Fatal(err)
			}
			if stuck {
				t.Fatalf("the capacity-%d witness still deadlocks at the proven minimum %d", capn, min)
			}
		}
	}
}

func TestExactAtMostUntimedEquationFourLimit(t *testing.T) {
	// π̂ + γ̂ − 1 (Equation 4's untimed floor) is always sufficient; the
	// exact minimum never exceeds it. Property-checked on random sets.
	f := func(p1, p2, c1, c2 uint8) bool {
		prod, err := taskgraph.NewQuantaSet(int64(p1%6)+1, int64(p2%6)+1)
		if err != nil {
			return false
		}
		cons, err := taskgraph.NewQuantaSet(int64(c1%6)+1, int64(c2%6)+1)
		if err != nil {
			return false
		}
		min, err := MinCapacity(prod, cons)
		if err != nil {
			return false
		}
		limit := prod.Max() + cons.Max() - 1
		floor := prod.Max()
		if cons.Max() > floor {
			floor = cons.Max()
		}
		return min >= floor && min <= limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExactMonotoneInCapacity(t *testing.T) {
	// Safety is monotone: once deadlock-free, adding capacity never
	// breaks it. Checked exhaustively on a handful of hard sets.
	sets := []struct{ prod, cons taskgraph.QuantaSet }{
		{taskgraph.MustQuanta(3), taskgraph.MustQuanta(2, 3)},
		{taskgraph.MustQuanta(2, 5), taskgraph.MustQuanta(3)},
		{taskgraph.MustQuanta(2, 3, 5), taskgraph.MustQuanta(2, 4)},
	}
	for _, s := range sets {
		min, err := MinCapacity(s.prod, s.cons)
		if err != nil {
			t.Fatal(err)
		}
		for z := min; z <= s.prod.Max()+s.cons.Max()+2; z++ {
			ok, w, err := DeadlockFree(s.prod, s.cons, z)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("%v/%v: capacity %d unsafe above the minimum %d (witness %+v)",
					s.prod, s.cons, z, min, w)
			}
		}
	}
}

func TestZeroQuantaIgnoredForSafety(t *testing.T) {
	// {0, 3} behaves like {3} for deadlock reachability: zero-quantum
	// firings transfer nothing.
	withZero, err := MinCapacity(taskgraph.MustQuanta(3), taskgraph.MustQuanta(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	without, err := MinCapacity(taskgraph.MustQuanta(3), taskgraph.MustQuanta(3))
	if err != nil {
		t.Fatal(err)
	}
	if withZero != without {
		t.Errorf("zero member changed the minimum: %d vs %d", withZero, without)
	}
}

func TestGuardsAndValidation(t *testing.T) {
	if _, _, err := DeadlockFree(taskgraph.QuantaSet{}, taskgraph.MustQuanta(1), 1); err == nil {
		t.Error("invalid set accepted")
	}
	if _, _, err := DeadlockFree(taskgraph.MustQuanta(1), taskgraph.MustQuanta(1), 0); err == nil {
		t.Error("zero capacity accepted")
	}
	// The MP3-scale pair trips the state-space guard.
	big := taskgraph.MustQuanta(2048)
	frames, err := taskgraph.Range(96, 960)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DeadlockFree(big, frames, 3000); err == nil {
		t.Error("state-space blow-up not guarded")
	}
	if _, err := MinCapacity(taskgraph.QuantaSet{}, taskgraph.MustQuanta(1)); err == nil {
		t.Error("MinCapacity accepted invalid set")
	}
}

func TestExactAgreesWithSampledSearch(t *testing.T) {
	// The exact minimum can never exceed what any sampled adversary
	// refutes, and is itself refuted one below by construction: compare
	// against the deadlock observed with the constant-min sequence.
	prod := taskgraph.MustQuanta(4)
	cons := taskgraph.MustQuanta(2, 4)
	min, err := MinCapacity(prod, cons)
	if err != nil {
		t.Fatal(err)
	}
	// Constant n=2 needs p + c_min adjusted occupancy: simulate at
	// min−1 with the exact witness path guaranteed; at min, all three
	// canonical adversaries must complete.
	g, err := taskgraph.Pair("wa", ratio.One, "wb", ratio.One, prod, cons)
	if err != nil {
		t.Fatal(err)
	}
	g.Buffers()[0].Capacity = min
	for _, seq := range []quanta.Sequence{
		quanta.Constant(2), quanta.Constant(4), quanta.Cycle(2, 4), quanta.Cycle(4, 2, 2),
	} {
		cfg, _, err := sim.TaskGraphConfig(g, sim.Workloads{"wa->wb": {Cons: seq}})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Stop = sim.Stop{Actor: "wb", Firings: 200}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != sim.Completed {
			t.Errorf("exact minimum %d deadlocked under a sampled adversary: %v", min, res.Outcome)
		}
	}
}
