// Package budget supplies the typed cancellation and wall-clock-budget
// errors shared by every long-running path of this library — the simulator
// event loop, the capacity searches of internal/minimize and the period
// sweeps of internal/capacity — together with a tiny cooperative checker.
//
// The paper's analyses are closed-form and fast, but the empirical side
// (50M-event simulations, coordinate-descent capacity searches) can run for
// a long time. A production sizing service must be able to walk away: every
// such path accepts a context.Context and an optional wall-clock deadline,
// checks them cooperatively (the simulator every few thousand events, the
// searches per probe) and returns ErrCanceled or ErrBudgetExceeded so
// callers can tell "the caller hung up" from "the time budget ran out" from
// a genuine analysis error.
package budget

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrCanceled reports that the caller's context was cancelled before the
// computation finished. Errors returned by this library that stem from a
// cancelled context satisfy errors.Is(err, ErrCanceled) as well as
// errors.Is(err, context.Canceled).
var ErrCanceled = errors.New("canceled")

// ErrBudgetExceeded reports that a wall-clock budget (an explicit deadline
// or a context deadline) ran out before the computation finished.
var ErrBudgetExceeded = errors.New("wall-clock budget exceeded")

// Budget combines a context and an optional absolute wall-clock deadline
// into one cheap cooperative checker. The zero-cost unconstrained form is a
// nil *Budget: all methods are nil-safe and never trip.
type Budget struct {
	ctx      context.Context
	deadline time.Time
}

// At returns a budget enforcing ctx (nil means none) and, when deadline is
// non-zero, the wall-clock deadline. It returns nil — the valid, never
// tripping budget — when both are absent, so hot loops pay only a nil
// check.
func At(ctx context.Context, deadline time.Time) *Budget {
	if ctx == nil && deadline.IsZero() {
		return nil
	}
	return &Budget{ctx: ctx, deadline: deadline}
}

// New is At with a relative timeout: a non-positive timeout means no
// wall-clock bound.
func New(ctx context.Context, timeout time.Duration) *Budget {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	return At(ctx, deadline)
}

// Err reports whether the budget still holds: nil while it does,
// ErrCanceled once the context is cancelled, ErrBudgetExceeded once the
// deadline (or the context's own deadline) has passed. Safe on a nil
// receiver.
func (b *Budget) Err() error {
	if b == nil {
		return nil
	}
	if b.ctx != nil {
		if err := b.ctx.Err(); err != nil {
			return Classify(err)
		}
	}
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		return ErrBudgetExceeded
	}
	return nil
}

// Deadline returns the absolute wall-clock deadline and whether one is set
// (directly or through the context). Safe on a nil receiver.
func (b *Budget) Deadline() (time.Time, bool) {
	if b == nil {
		return time.Time{}, false
	}
	d, ok := b.deadline, !b.deadline.IsZero()
	if b.ctx != nil {
		if cd, cok := b.ctx.Deadline(); cok && (!ok || cd.Before(d)) {
			d, ok = cd, true
		}
	}
	return d, ok
}

// Context returns the budget's context, never nil. Safe on a nil receiver.
func (b *Budget) Context() context.Context {
	if b == nil || b.ctx == nil {
		return context.Background()
	}
	return b.ctx
}

// Classify maps the raw context errors onto the typed sentinels, wrapping so
// both identities remain visible to errors.Is: context.Canceled becomes
// ErrCanceled, context.DeadlineExceeded becomes ErrBudgetExceeded. Errors
// already classified, and errors of any other kind, pass through unchanged.
func Classify(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrCanceled) || errors.Is(err, ErrBudgetExceeded):
		return err
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrBudgetExceeded, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	default:
		return err
	}
}
