package budget

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestNilBudgetNeverTrips(t *testing.T) {
	var b *Budget
	if err := b.Err(); err != nil {
		t.Errorf("nil budget Err() = %v", err)
	}
	if _, ok := b.Deadline(); ok {
		t.Error("nil budget reports a deadline")
	}
	if b.Context() == nil {
		t.Error("nil budget Context() is nil")
	}
	if At(nil, time.Time{}) != nil {
		t.Error("At with no constraints should return the nil budget")
	}
	if New(nil, 0) != nil {
		t.Error("New with no constraints should return the nil budget")
	}
}

func TestErrCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := At(ctx, time.Time{})
	if err := b.Err(); err != nil {
		t.Fatalf("Err() before cancel = %v", err)
	}
	cancel()
	err := b.Err()
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("Err() = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Err() = %v, want to also satisfy context.Canceled", err)
	}
}

func TestErrBudgetExceeded(t *testing.T) {
	b := At(nil, time.Now().Add(-time.Second))
	if err := b.Err(); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("expired deadline Err() = %v, want ErrBudgetExceeded", err)
	}
	if err := At(nil, time.Now().Add(time.Hour)).Err(); err != nil {
		t.Errorf("future deadline Err() = %v, want nil", err)
	}
}

func TestContextDeadlineClassifiesAsBudget(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := At(ctx, time.Time{}).Err()
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("context past its deadline Err() = %v, want ErrBudgetExceeded", err)
	}
}

func TestDeadlineMergesContextDeadline(t *testing.T) {
	far := time.Now().Add(time.Hour)
	near := time.Now().Add(time.Minute)
	ctx, cancel := context.WithDeadline(context.Background(), near)
	defer cancel()
	d, ok := At(ctx, far).Deadline()
	if !ok || !d.Equal(near) {
		t.Errorf("Deadline() = %v, %v; want the earlier context deadline %v", d, ok, near)
	}
	d, ok = At(nil, far).Deadline()
	if !ok || !d.Equal(far) {
		t.Errorf("Deadline() = %v, %v; want explicit deadline %v", d, ok, far)
	}
}

func TestClassify(t *testing.T) {
	if got := Classify(nil); got != nil {
		t.Errorf("Classify(nil) = %v", got)
	}
	if got := Classify(context.Canceled); !errors.Is(got, ErrCanceled) {
		t.Errorf("Classify(Canceled) = %v", got)
	}
	if got := Classify(context.DeadlineExceeded); !errors.Is(got, ErrBudgetExceeded) {
		t.Errorf("Classify(DeadlineExceeded) = %v", got)
	}
	// Already classified errors pass through unchanged (no double wrap).
	wrapped := fmt.Errorf("sim: %w", ErrCanceled)
	if got := Classify(wrapped); got != wrapped {
		t.Errorf("Classify(already classified) = %v, want identical", got)
	}
	other := errors.New("boom")
	if got := Classify(other); got != other {
		t.Errorf("Classify(other) = %v, want passthrough", got)
	}
}
