package analysis_test

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot resolves the main module's directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out))
}

// TestSelfApplication builds cmd/vrdfvet and runs it over the whole repo via
// `go vet -vettool`. The suite must pass clean: every real finding it ever
// raises is either fixed or carries a reasoned waiver, and this test is what
// keeps that loop closed.
func TestSelfApplication(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping whole-repo vet")
	}
	root := repoRoot(t)
	tool := filepath.Join(t.TempDir(), "vrdfvet")

	build := exec.Command("go", "build", "-o", tool, "./cmd/vrdfvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vrdfvet: %v\n%s", err, out)
	}

	var stderr bytes.Buffer
	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	vet.Stderr = &stderr
	if err := vet.Run(); err != nil {
		t.Fatalf("go vet -vettool=vrdfvet ./... failed: %v\n%s", err, stderr.String())
	}
}
