package machinereuse_test

import (
	"testing"

	"vrdfcap/internal/analysis/analysistest"
	"vrdfcap/internal/analysis/machinereuse"
)

func TestMachineReuse(t *testing.T) {
	analysistest.Run(t, machinereuse.Analyzer, "testdata", "./...")
}
