// Package a exercises the machinereuse analyzer: flagged and allowed uses
// of the sim.Machine reuse protocol.
package a

import "fixtures/internal/sim"

// --- double Run ---

func doubleRun(m *sim.Machine) {
	m.Run()
	m.Run() // want `second Run on m without an intervening Reset or ResetWarm`
}

func runResetRun(m *sim.Machine) {
	m.Run()
	m.Reset(nil)
	m.Run() // ok: reset in between
}

func runResetWarmRun(m *sim.Machine) {
	m.Run()
	m.ResetWarm(nil)
	m.Run() // ok: warm reset counts
}

func loopRunNoReset(m *sim.Machine) {
	for i := 0; i < 3; i++ {
		m.Run() // want `second Run on m without an intervening Reset or ResetWarm`
	}
}

func loopRunReset(m *sim.Machine) {
	for i := 0; i < 3; i++ {
		m.Run() // ok: every iteration resets before looping back
		m.Reset(nil)
	}
}

func branchRuns(m *sim.Machine, b bool) {
	if b {
		m.Run() // ok: the arms are alternatives
	} else {
		m.Run()
	}
}

func branchThenRun(m *sim.Machine, b bool) {
	if b {
		m.Run()
	}
	m.Run() // want `second Run on m without an intervening Reset or ResetWarm`
}

func fieldReceiver(w struct{ M *sim.Machine }) {
	w.M.Run()
	w.M.Run() // want `second Run on w.M without an intervening Reset or ResetWarm`
}

// --- escaping knob overrides ---

func overrideLeaks(m *sim.Machine) {
	m.SetStopFirings(5) // want `SetStopFirings on m is not reverted by a Reset or ResetWarm`
	m.Run()
}

func overrideReset(m *sim.Machine) {
	m.SetStopFirings(5)
	m.Run()
	m.Reset(nil) // ok: reverted before returning
}

func overrideDeferredReset(m *sim.Machine) {
	defer m.Reset(nil) // ok: discharged at every return
	m.SetStopFirings(5)
	m.Run()
}

func offsetLeaks(m *sim.Machine) {
	m.SetPeriodicOffsetTicks("src", 3) // want `SetPeriodicOffsetTicks on m is not reverted by a Reset or ResetWarm`
}

func overrideWaived(m *sim.Machine) {
	//vrdf:reuseok(the caller resets before every run by protocol)
	m.SetStopFirings(5) // ok: waived with a reason
}

func overrideWaivedNoReason(m *sim.Machine) {
	//vrdf:reuseok() // want `vrdf:reuseok waiver needs a reason`
	m.SetStopFirings(5)
}

func localOverride() {
	m, _ := sim.Compile()
	m.SetStopFirings(5) // ok: the machine does not outlive this function
	m.Run()
}

// --- snapshots across reset epochs ---

func staleSnapshot(m *sim.Machine) {
	s := m.Snapshot(nil)
	m.Reset(nil)
	m.Restore(s) // want `Restore of snapshot s taken before the last Reset of m`
}

func freshSnapshot(m *sim.Machine) {
	m.Reset(nil)
	s := m.Snapshot(nil)
	m.Restore(s) // ok: same epoch
}

// --- escapes stay silent ---

func escapes(m *sim.Machine, f func(*sim.Machine)) {
	m.Run()
	f(m) // m escapes: the callee may reset it
	m.Run() // ok: unknown state never reports
}
