// Package sim is a stub of vrdfcap/internal/sim for analyzer fixtures: it
// declares the Machine surface machinereuse keys on (the analyzer matches
// the package by final import-path element, so fixtures/internal/sim
// qualifies) with no behavior behind it.
package sim

// Result mirrors sim.Result.
type Result struct {
	Events int64
}

// Snapshot mirrors sim.Snapshot.
type Snapshot struct {
	events int64
}

// Machine mirrors the reuse-protocol surface of sim.Machine.
type Machine struct {
	ran bool
}

func Compile() (*Machine, error) { return &Machine{}, nil }

func (m *Machine) Run() (*Result, error)                 { m.ran = true; return &Result{}, nil }
func (m *Machine) Reset(tok map[string]int64) error      { m.ran = false; return nil }
func (m *Machine) ResetWarm(tok map[string]int64) (int64, error) { m.ran = false; return 0, nil }
func (m *Machine) Snapshot(into *Snapshot) *Snapshot     { return &Snapshot{} }
func (m *Machine) Restore(s *Snapshot) error             { return nil }
func (m *Machine) SetStopFirings(n int64) error          { return nil }
func (m *Machine) SetPeriodicOffsetTicks(actor string, t int64) error { return nil }
