// Package machinereuse statically enforces the sim.Machine reuse protocol
// that PR 6 had to pin with runtime guards after four reuse bugs:
//
//  1. Machine.Run must not be reachable twice on the same receiver without
//     an intervening Reset or ResetWarm — including the second iteration of
//     a loop whose body Runs but never resets.
//  2. The knob overrides SetStopFirings and SetPeriodicOffsetTicks mutate
//     state that only a Reset/ResetWarm reverts; letting one escape a
//     function on a machine the caller handed in leaks the override into
//     the caller's next run.
//  3. A Snapshot belongs to the reset epoch it was taken in; Restore of a
//     snapshot captured before the most recent Reset is a guaranteed
//     runtime error ("snapshot predates the machine's last reset").
//
// The engine enforces all three dynamically; this analyzer moves the
// failure to vet time. The analysis is a conservative intra-procedural
// abstract interpretation over the AST: branch arms are analyzed separately
// and joined (so `if a { m.Run() } else { m.Run() }` is clean), loop bodies
// are analyzed twice so state flowing around the back edge is seen, and a
// machine that escapes into a call or closure falls back to "unknown",
// which never reports. Receivers are tracked while they are plain
// identifiers or unassigned selector chains (m, w.machine, pool.m).
//
// A site that violates the letter of the protocol deliberately — a wrapper
// that owns its machine and Resets on every entry before overriding knobs,
// so the "leaked" override is re-pointed before it can be observed — carries
// a //vrdf:reuseok(reason) waiver on its line or the line above. A waiver
// with an empty reason is itself a finding.
package machinereuse

import (
	"go/ast"
	"go/token"
	"go/types"

	"vrdfcap/internal/analysis"
)

// Analyzer is the machinereuse analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "machinereuse",
	Doc:  "check that sim.Machine runs are separated by resets, knob overrides do not escape, and snapshots are not restored across a reset epoch",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		waivers := analysis.Waivers(pass.Fset, file, "reuseok")
		ast.Inspect(file, func(n ast.Node) bool {
			if fn, ok := n.(*ast.FuncDecl); ok {
				if fn.Body != nil {
					analyzeFunc(pass, fn.Body, waivers)
				}
				return false // analyzeFunc descends into nested FuncLits itself
			}
			return true
		})
	}
	return nil, nil
}

// mstate is the abstract state of one tracked machine.
type mstate struct {
	ran      bool      // Run since the last reset
	override token.Pos // pending SetStopFirings/SetPeriodicOffsetTicks, NoPos if none
	overName string
	epoch    int  // bumped by Reset/ResetWarm
	unknown  bool // escaped; never report
}

// snapInfo records the machine key and epoch a snapshot variable was filled
// in.
type snapInfo struct {
	machine string
	epoch   int
}

// interp is the per-function abstract interpreter.
type interp struct {
	pass     *analysis.Pass
	body     *ast.BlockStmt
	reported map[token.Pos]bool
	snaps    map[types.Object]snapInfo
	rootObjs map[string]types.Object      // root identifier name -> object
	deferred map[string]bool              // machines with a deferred reset
	waivers  map[int]analysis.Waiver      // //vrdf:reuseok waivers of the file
}

// report emits a diagnostic unless the site carries a reuseok waiver; a
// waiver without a reason is reported instead.
func (in *interp) report(pos token.Pos, format string, args ...any) {
	if w, ok := analysis.Waived(in.pass.Fset, in.waivers, pos); ok {
		if w.Reason == "" {
			in.pass.Reportf(w.Pos, "vrdf:reuseok waiver needs a reason")
		}
		return
	}
	in.pass.Reportf(pos, format, args...)
}

type env map[string]*mstate

func (e env) clone() env {
	out := make(env, len(e))
	for k, v := range e {
		c := *v
		out[k] = &c
	}
	return out
}

// join merges two post-states of alternative branches.
func join(a, b env) env {
	out := make(env)
	for k, av := range a {
		m := *av
		if bv, ok := b[k]; ok {
			m.unknown = av.unknown || bv.unknown
			if bv.ran {
				m.ran = true
			}
			if bv.override != token.NoPos && m.override == token.NoPos {
				m.override, m.overName = bv.override, bv.overName
			}
			if bv.epoch > m.epoch {
				m.epoch = bv.epoch
			}
		}
		out[k] = &m
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			c := *bv
			out[k] = &c
		}
	}
	return out
}

func analyzeFunc(pass *analysis.Pass, body *ast.BlockStmt, waivers map[int]analysis.Waiver) {
	in := &interp{
		pass:     pass,
		body:     body,
		reported: make(map[token.Pos]bool),
		snaps:    make(map[types.Object]snapInfo),
		rootObjs: make(map[string]types.Object),
		deferred: make(map[string]bool),
		waivers:  waivers,
	}
	out := in.block(body, make(env))
	in.atReturn(out)
}

// atReturn reports overrides still pending on caller-visible machines.
func (in *interp) atReturn(e env) {
	for key, st := range e {
		if st.unknown || st.override == token.NoPos || in.deferred[key] {
			continue
		}
		if !in.callerVisible(key) {
			continue
		}
		if in.reported[st.override] {
			continue
		}
		in.reported[st.override] = true
		in.report(st.override,
			"%s on %s is not reverted by a Reset or ResetWarm before the function returns; the override leaks into the caller's next run",
			st.overName, key)
	}
}

// callerVisible reports whether the machine outlives this call frame: its
// root identifier is declared outside the analyzed body (parameter,
// receiver, captured or package variable), or it is reached through a
// selector chain (a field of some longer-lived value).
func (in *interp) callerVisible(key string) bool {
	root := key
	for i := 0; i < len(root); i++ {
		if root[i] == '.' {
			root = root[:i]
			break
		}
	}
	if root != key {
		return true
	}
	obj := in.rootObjs[root]
	if obj == nil {
		return false
	}
	return obj.Pos() < in.body.Pos() || obj.Pos() > in.body.End()
}

// block runs the statements of b in sequence.
func (in *interp) block(b *ast.BlockStmt, e env) env {
	for _, s := range b.List {
		e = in.stmt(s, e)
	}
	return e
}

func (in *interp) stmt(s ast.Stmt, e env) env {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return in.block(s, e)
	case *ast.ExprStmt:
		return in.expr(s.X, e)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			e = in.expr(r, e)
		}
		in.recordSnapshots(s, e)
		for _, l := range s.Lhs {
			if key, ok := flatten(l); ok {
				// Assigning over a tracked machine retires its state.
				delete(e, key)
			}
		}
		return e
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						e = in.expr(v, e)
					}
				}
			}
		}
		return e
	case *ast.IfStmt:
		if s.Init != nil {
			e = in.stmt(s.Init, e)
		}
		e = in.expr(s.Cond, e)
		then := in.block(s.Body, e.clone())
		if s.Else != nil {
			els := in.stmt(s.Else, e.clone())
			return join(then, els)
		}
		return join(then, e)
	case *ast.ForStmt:
		if s.Init != nil {
			e = in.stmt(s.Init, e)
		}
		if s.Cond != nil {
			e = in.expr(s.Cond, e)
		}
		// Two passes so back-edge state is observed: a Run in the body with
		// no reset anywhere in the loop reports on the second pass.
		one := in.block(s.Body, e.clone())
		if s.Post != nil {
			one = in.stmt(s.Post, one)
		}
		merged := join(e, one)
		return join(merged, in.block(s.Body, merged.clone()))
	case *ast.RangeStmt:
		e = in.expr(s.X, e)
		one := in.block(s.Body, e.clone())
		merged := join(e, one)
		return join(merged, in.block(s.Body, merged.clone()))
	case *ast.SwitchStmt:
		if s.Init != nil {
			e = in.stmt(s.Init, e)
		}
		if s.Tag != nil {
			e = in.expr(s.Tag, e)
		}
		return in.cases(s.Body, e)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			e = in.stmt(s.Init, e)
		}
		return in.cases(s.Body, e)
	case *ast.SelectStmt:
		return in.cases(s.Body, e)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			e = in.expr(r, e)
		}
		in.atReturn(e)
		return e
	case *ast.DeferStmt:
		// defer m.Reset(...) / m.ResetWarm(...) discharges pending
		// overrides at every return.
		if key, name, ok := machineCall(in.pass, s.Call); ok && (name == "Reset" || name == "ResetWarm") {
			in.noteRoot(key, s.Call)
			in.deferred[key] = true
			return e
		}
		return in.expr(s.Call, e)
	case *ast.GoStmt:
		return in.expr(s.Call, e)
	case *ast.LabeledStmt:
		return in.stmt(s.Stmt, e)
	case *ast.IncDecStmt:
		return in.expr(s.X, e)
	case *ast.SendStmt:
		e = in.expr(s.Chan, e)
		return in.expr(s.Value, e)
	}
	return e
}

// cases analyzes each clause of a switch/select body independently from the
// entry state and joins the results with the entry (no clause may match).
func (in *interp) cases(body *ast.BlockStmt, e env) env {
	out := e
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			stmts = c.Body
		case *ast.CommClause:
			stmts = c.Body
		}
		branch := e.clone()
		for _, s := range stmts {
			branch = in.stmt(s, branch)
		}
		out = join(out, branch)
	}
	return out
}

// expr walks an expression, interpreting tracked machine calls in
// evaluation order and treating any other use of a machine as an escape.
func (in *interp) expr(x ast.Expr, e env) env {
	ast.Inspect(x, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// The closure body is checked as its own function; machines it
			// captures become unknown in this frame (the closure may run at
			// any time, any number of times).
			analyzeFunc(in.pass, n.Body, in.waivers)
			for _, st := range e {
				st.unknown = true
			}
			return false
		case *ast.CallExpr:
			if key, name, ok := machineCall(in.pass, n); ok {
				for _, a := range n.Args {
					e = in.expr(a, e)
				}
				in.noteRoot(key, n)
				in.machineOp(n, key, name, e)
				return false
			}
			// A machine passed as an argument to a call we do not model
			// escapes.
			for _, a := range n.Args {
				if key, ok := flatten(a); ok {
					if st := e[key]; st != nil {
						st.unknown = true
					}
				}
			}
			return true
		}
		return true
	})
	return e
}

// noteRoot resolves and remembers the root identifier's object for
// callerVisible.
func (in *interp) noteRoot(key string, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	x := sel.X
	for {
		switch v := x.(type) {
		case *ast.SelectorExpr:
			x = v.X
			continue
		case *ast.ParenExpr:
			x = v.X
			continue
		case *ast.StarExpr:
			x = v.X
			continue
		}
		break
	}
	if id, ok := x.(*ast.Ident); ok {
		if obj := in.pass.TypesInfo.Uses[id]; obj != nil {
			in.rootObjs[id.Name] = obj
		}
	}
}

// machineOp applies one tracked method call to the state.
func (in *interp) machineOp(call *ast.CallExpr, key, name string, e env) {
	st := e[key]
	if st == nil {
		st = &mstate{}
		e[key] = st
	}
	switch name {
	case "Run":
		if st.ran && !st.unknown && !in.reported[call.Pos()] {
			in.reported[call.Pos()] = true
			in.report(call.Pos(),
				"second Run on %s without an intervening Reset or ResetWarm", key)
		}
		st.ran = true
	case "Reset", "ResetWarm":
		st.ran = false
		st.override = token.NoPos
		st.epoch++
		st.unknown = false
	case "SetStopFirings", "SetPeriodicOffsetTicks":
		st.override = call.Pos()
		st.overName = name
	case "Restore":
		if len(call.Args) == 1 {
			if id, ok := call.Args[0].(*ast.Ident); ok {
				if obj := in.pass.TypesInfo.Uses[id]; obj != nil {
					if si, ok := in.snaps[obj]; ok && si.machine == key && si.epoch < st.epoch && !st.unknown && !in.reported[call.Pos()] {
						in.reported[call.Pos()] = true
						in.report(call.Pos(),
							"Restore of snapshot %s taken before the last Reset of %s; the engine rejects cross-epoch restores at run time", id.Name, key)
					}
				}
			}
		}
		// Restore reinstates the snapshot's run flag; be permissive.
		st.ran = false
	case "Snapshot":
		// Handled at the assignment that captures the result.
	}
}

// recordSnapshots notes `s := m.Snapshot(...)` bindings with the machine's
// current epoch.
func (in *interp) recordSnapshots(s *ast.AssignStmt, e env) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, r := range s.Rhs {
		call, ok := r.(*ast.CallExpr)
		if !ok {
			continue
		}
		key, name, ok := machineCall(in.pass, call)
		if !ok || name != "Snapshot" {
			continue
		}
		id, ok := s.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := in.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = in.pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		epoch := 0
		if st := e[key]; st != nil {
			epoch = st.epoch
		}
		in.snaps[obj] = snapInfo{machine: key, epoch: epoch}
	}
}

// machineCall reports whether call is a tracked method on a sim.Machine
// receiver expressible as an identifier chain, returning the chain key and
// method name.
func machineCall(pass *analysis.Pass, call *ast.CallExpr) (key, name string, ok bool) {
	sel, selOK := call.Fun.(*ast.SelectorExpr)
	if !selOK {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Run", "Reset", "ResetWarm", "Snapshot", "Restore", "SetStopFirings", "SetPeriodicOffsetTicks":
	default:
		return "", "", false
	}
	if !isMachine(pass, sel.X) {
		return "", "", false
	}
	key, ok = flatten(sel.X)
	if !ok {
		return "", "", false
	}
	return key, sel.Sel.Name, true
}

// isMachine reports whether the expression's type is sim.Machine or
// *sim.Machine, matching the defining package by final path element so the
// fixture stub qualifies.
func isMachine(pass *analysis.Pass, x ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(x)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Machine" && obj.Pkg() != nil && analysis.PkgIs(obj.Pkg().Path(), "sim")
}

// flatten renders an identifier or selector chain (m, w.machine) as a
// stable key. Calls, index expressions and everything else are not
// flattenable: such receivers are not tracked.
func flatten(x ast.Expr) (string, bool) {
	switch x := x.(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		base, ok := flatten(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	case *ast.ParenExpr:
		return flatten(x.X)
	case *ast.StarExpr:
		return flatten(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return flatten(x.X)
		}
	}
	return "", false
}
