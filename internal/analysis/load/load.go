// Package load type-checks Go packages for the vrdfvet analyzers without
// golang.org/x/tools: it shells out to `go list -export -deps -json` to
// enumerate packages and their compiled export data, parses the target
// packages from source, and resolves their imports through the gc importer
// reading the export files the go command reports. Everything is offline —
// the module has no external dependencies, so `go list` never touches the
// network.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	Sizes      types.Sizes
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Dir loads and type-checks the packages matching patterns, resolving
// relative patterns against dir. Only the packages the patterns name are
// parsed from source; their dependencies are consumed as export data.
func Dir(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %v in %s: %v\n%s", patterns, dir, err, stderr.Bytes())
	}
	var targets []*listPackage
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(t, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one target package against the export data
// of its dependencies.
func check(t *listPackage, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range t.GoFiles {
		path := name
		if !isAbs(path) {
			path = t.Dir + string(os.PathSeparator) + name
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		files = append(files, f)
	}
	pkg, info, err := Check(t.ImportPath, fset, files, func(path string) (io.ReadCloser, error) {
		if mapped, ok := t.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		Sizes:      Sizes(),
	}, nil
}

func isAbs(p string) bool { return len(p) > 0 && (p[0] == '/' || p[0] == os.PathSeparator) }

// Sizes returns the gc size model for the host architecture — the layout
// the compiler will actually use, which the fieldalignment guard depends
// on.
func Sizes() types.Sizes {
	if s := types.SizesFor("gc", runtime.GOARCH); s != nil {
		return s
	}
	return types.SizesFor("gc", "amd64")
}

// Check type-checks already-parsed files whose imports resolve through
// lookup (import path -> gc export data). It is shared between this loader
// and the unitchecker driver, which gets its lookup table from the go
// command's vet.cfg instead of go list.
func Check(path string, fset *token.FileSet, files []*ast.File, lookup func(string) (io.ReadCloser, error)) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    Sizes(),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("load: type-checking %s: %v", path, err)
	}
	return pkg, info, nil
}
