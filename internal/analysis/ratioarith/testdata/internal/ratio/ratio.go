// Package ratio is a stub of vrdfcap/internal/ratio for analyzer fixtures:
// it declares the Rat surface ratioarith keys on, and is itself exempt from
// the check (matched by final import-path element).
package ratio

// Rat mirrors ratio.Rat.
type Rat struct {
	num, den int64
}

func New(num, den int64) (Rat, error) { return Rat{num, den}, nil }

func (r Rat) Num() int64 { return r.num }
func (r Rat) Den() int64 { return r.den }

// Cross is overflow-unchecked only because this is a fixture stub; raw
// component arithmetic is allowed inside the ratio package.
func Cross(a, b Rat) int64 {
	return a.Num()*b.Den() - b.Num()*a.Den() // ok: inside package ratio
}
