// Package a exercises the ratioarith analyzer: raw component arithmetic
// outside internal/ratio is flagged; comparisons and method use are not.
package a

import "fixtures/internal/ratio"

func mulComponents(a, b ratio.Rat) int64 {
	return a.Num() * b.Den() // want `raw \* on ratio component a.Num\(\) outside internal/ratio`
}

func addComponents(a ratio.Rat) int64 {
	return a.Num() + 1 // want `raw \+ on ratio component a.Num\(\) outside internal/ratio`
}

func divideByDen(total int64, r ratio.Rat) int64 {
	return total / r.Den() // want `raw / on ratio component r.Den\(\) outside internal/ratio`
}

func accumulate(rs []ratio.Rat) int64 {
	var sum int64
	for _, r := range rs {
		sum += r.Num() // want `raw \+= with ratio component r.Num\(\) outside internal/ratio`
	}
	return sum
}

func compare(a, b ratio.Rat) bool {
	return a.Num() == b.Num() && a.Den() < b.Den() // ok: comparisons cannot overflow
}

func wholeCheck(r ratio.Rat) bool {
	return r.Den() == 1 // ok
}

func unrelated(x, y int64) int64 {
	return x*y + 1 // ok: not ratio components
}
