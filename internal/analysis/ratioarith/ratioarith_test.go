package ratioarith_test

import (
	"testing"

	"vrdfcap/internal/analysis/analysistest"
	"vrdfcap/internal/analysis/ratioarith"
)

func TestRatioArith(t *testing.T) {
	analysistest.Run(t, ratioarith.Analyzer, "testdata", "./...")
}
