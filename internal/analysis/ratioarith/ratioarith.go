// Package ratioarith forbids raw integer arithmetic on ratio components
// outside internal/ratio. The paper's throughput constraints are rational
// firing rates; internal/ratio centralizes the overflow-checked (and
// cross-multiplication-based) arithmetic on them after an early PR chased a
// silent int64 overflow in an inlined a.num*b.den comparison. Any `+ - * /`
// (or their assignment forms) whose operand is the result of a Num() or
// Den() call on a ratio.Rat, outside package ratio itself, is a finding:
// the fix is to use ratio.Rat's own methods (Mul, Cmp, MulInt, ...), which
// check for overflow, instead of re-deriving the arithmetic at a call site.
//
// Comparisons (== < >) are deliberately allowed: they do not overflow, and
// exact-value checks like r.Den() == 1 are idiomatic. Shifts and bit ops
// are likewise out of scope.
package ratioarith

import (
	"go/ast"
	"go/token"
	"go/types"

	"vrdfcap/internal/analysis"
)

// Analyzer is the ratioarith analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ratioarith",
	Doc:  "forbid raw + - * / on ratio.Rat Num()/Den() components outside internal/ratio (use the overflow-checked ratio methods)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if analysis.PkgIs(pass.Pkg.Path(), "ratio") {
		return nil, nil // ratio itself implements the checked arithmetic
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if !arithOp(n.Op) {
					return true
				}
				if name, ok := componentExpr(pass, n.X); ok {
					pass.Reportf(n.Pos(), "raw %s on ratio component %s outside internal/ratio: use the overflow-checked ratio.Rat methods", n.Op, name)
				} else if name, ok := componentExpr(pass, n.Y); ok {
					pass.Reportf(n.Pos(), "raw %s on ratio component %s outside internal/ratio: use the overflow-checked ratio.Rat methods", n.Op, name)
				}
			case *ast.AssignStmt:
				if !arithAssign(n.Tok) {
					return true
				}
				for _, rhs := range n.Rhs {
					if name, ok := componentExpr(pass, rhs); ok {
						pass.Reportf(n.Pos(), "raw %s with ratio component %s outside internal/ratio: use the overflow-checked ratio.Rat methods", n.Tok, name)
					}
				}
			case *ast.IncDecStmt:
				if name, ok := componentExpr(pass, n.X); ok {
					pass.Reportf(n.Pos(), "raw %s on ratio component %s outside internal/ratio: use the overflow-checked ratio.Rat methods", n.Tok, name)
				}
			}
			return true
		})
	}
	return nil, nil
}

func arithOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM:
		return true
	}
	return false
}

func arithAssign(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN, token.REM_ASSIGN:
		return true
	}
	return false
}

// componentExpr reports whether x is (possibly parenthesized) a call to the
// Num or Den accessor of ratio.Rat, returning a printable name like
// "r.Num()".
func componentExpr(pass *analysis.Pass, x ast.Expr) (string, bool) {
	x = ast.Unparen(x)
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name != "Num" && sel.Sel.Name != "Den" {
		return "", false
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	if recv == nil || !isRat(recv) {
		return "", false
	}
	name := sel.Sel.Name + "()"
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		name = id.Name + "." + name
	}
	return name, true
}

// isRat reports whether t is ratio.Rat (or a pointer to it), matching the
// package by final import-path element so fixtures work.
func isRat(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Rat" && obj.Pkg() != nil && analysis.PkgIs(obj.Pkg().Path(), "ratio")
}
