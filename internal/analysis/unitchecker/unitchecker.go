// Package unitchecker implements the `go vet -vettool` driver protocol for
// the vrdfvet suite, mirroring golang.org/x/tools/go/analysis/unitchecker
// on the standard library alone.
//
// The go command drives a vet tool in three steps:
//
//  1. `tool -flags` — the tool prints a JSON description of the flags it
//     accepts, so `go vet` can split its own command line into tool flags
//     and package patterns.
//  2. `tool -V=full` — the tool prints a line identifying its exact build
//     ("<path> version devel comments-go-here buildID=<hash>"); the output
//     is folded into the build cache key so analysis results are reused
//     across runs and invalidated when the tool changes.
//  3. `tool [flags] <dir>/vet.cfg` — once per package unit. The JSON config
//     names the unit's source files and maps every import to the compiled
//     export data the gc importer needs. The tool type-checks the unit, runs
//     its analyzers, prints findings to stderr as "file:line:col: message",
//     writes the (for vrdfvet, empty) facts file named by VetxOutput, and
//     exits non-zero iff it found anything.
//
// Dependency units arrive with VetxOnly set: only their facts are wanted.
// The vrdfvet analyzers are all strictly intra-package, so those units are
// answered immediately with an empty facts file and no analysis at all —
// which is also why `go vet -vettool` over the whole repo stays fast: the
// standard library is never re-analyzed.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"

	"vrdfcap/internal/analysis"
	"vrdfcap/internal/analysis/load"
)

// Config is the JSON schema of the go command's vet.cfg, as written by
// cmd/go/internal/work (vetConfig). Unknown fields are ignored.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetxContent is the placeholder facts payload. vrdfvet exports no facts
// (every analyzer is intra-package), but the protocol requires the file;
// its content only needs to be stable.
const vetxContent = "vrdfvet: no facts\n"

// PrintVersion implements the -V=full handshake.
func PrintVersion() {
	prog, err := os.Executable()
	if err != nil {
		prog = os.Args[0]
	}
	h := sha256.New()
	if f, err := os.Open(prog); err == nil {
		io.Copy(h, f) //nolint:errcheck // a short hash only weakens caching
		_ = f.Close() // read-only
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", prog, h.Sum(nil)[:12])
}

// PrintFlags implements the -flags handshake for the given analyzers: each
// is a boolean enable flag, matching the x/tools convention.
func PrintFlags(analyzers []*analysis.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{{Name: "V", Bool: false, Usage: "print version and exit"}}
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: strings.SplitN(a.Doc, "\n", 2)[0]})
	}
	data, err := json.Marshal(flags)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// Run processes one vet.cfg unit and exits: 0 on a clean unit, 1 on
// findings, 2 on an internal failure.
func Run(cfgFile string, analyzers []*analysis.Analyzer) {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if cfg.VetxOnly {
		writeVetx(cfg)
		os.Exit(0)
	}
	diags, err := analyze(cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg)
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	writeVetx(cfg)
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(1)
	}
	os.Exit(0)
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("vrdfvet: reading vet config: %v", err)
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("vrdfvet: parsing %s: %v", path, err)
	}
	return cfg, nil
}

func writeVetx(cfg *Config) {
	if cfg.VetxOutput == "" {
		return
	}
	if err := os.WriteFile(cfg.VetxOutput, []byte(vetxContent), 0o666); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

// analyze type-checks the unit and runs every analyzer over it, returning
// rendered diagnostics sorted by position.
func analyze(cfg *Config, analyzers []*analysis.Analyzer) ([]string, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, info, err := load.Check(cfg.ImportPath, fset, files, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	if err != nil {
		return nil, err
	}

	type posDiag struct {
		pos  token.Position
		text string
	}
	var out []posDiag
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: load.Sizes(),
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			p := fset.Position(d.Pos)
			out = append(out, posDiag{p, fmt.Sprintf("%s: %s [%s]", p, d.Message, name)})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("vrdfvet: analyzer %s on %s: %v", a.Name, cfg.ImportPath, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].pos, out[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	texts := make([]string, len(out))
	for i, d := range out {
		texts[i] = d.text
	}
	return texts, nil
}
