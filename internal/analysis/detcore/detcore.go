// Package detcore enforces determinism in the analysis core. The repo's
// probe cache keys feasibility verdicts by a fingerprint of the problem, CI
// gates compare reports byte-for-byte, and the paper's algorithm itself is
// deterministic — so the core packages (sim, minimize, capacity, exact,
// probecache, ratio) must not let wall-clock time, unseeded randomness, or
// map iteration order leak into results.
//
// Findings, in non-test files of the core packages:
//
//   - time.Now / time.Since / time.Until calls. Deadline handling belongs in
//     internal/budget, which owns the single clock; core code receives
//     budgets, not clocks.
//   - calls to math/rand or math/rand/v2 package-level functions (the shared,
//     unseeded generator). Using an explicitly seeded *rand.Rand is allowed —
//     determinism comes from the caller-owned seed.
//   - range-over-map loops that build up a slice (append to it or write to
//     it by index) when the slice is not subsequently passed to a
//     sort.*/slices.* call in the same function: the slice order would be
//     randomized per process. Sorting afterwards launders the order, so
//     collect-then-sort stays idiomatic.
//
// Genuinely order-insensitive map walks (draining, summing, counting) need
// no waiver: they do not append, so they are not flagged.
package detcore

import (
	"go/ast"
	"go/types"

	"vrdfcap/internal/analysis"
)

// Analyzer is the detcore analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detcore",
	Doc:  "forbid time.Now, unseeded math/rand, and map-iteration-order-dependent results in the deterministic core packages",
	Run:  run,
}

// detPackages are the packages whose outputs must be reproducible.
var detPackages = []string{"sim", "minimize", "capacity", "exact", "probecache", "ratio"}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PkgIs(pass.Pkg.Path(), detPackages...) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkg.Imported().Path() {
			case "time":
				switch sel.Sel.Name {
				case "Now", "Since", "Until":
					pass.Reportf(call.Pos(), "time.%s in deterministic core package %s: clocks belong in internal/budget, pass a budget instead", sel.Sel.Name, pass.Pkg.Name())
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(call.Pos(), "package-level rand.%s in deterministic core package %s: use an explicitly seeded *rand.Rand owned by the caller", sel.Sel.Name, pass.Pkg.Name())
			}
			return true
		})
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMapOrder(pass, fn)
		}
	}
	return nil, nil
}

// checkMapOrder flags range-over-map loops that accumulate into a slice
// which is never sorted afterwards in the same function.
func checkMapOrder(pass *analysis.Pass, fn *ast.FuncDecl) {
	type accum struct {
		obj  types.Object // the slice being built
		pos  ast.Node     // the range statement
		name string
	}
	var accums []accum

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		// Look for `dst = append(dst, ...)` or `dst[i] = ...` in the body
		// where dst has slice type.
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				if obj, name, ok := sliceTarget(pass, lhs); ok {
					accums = append(accums, accum{obj, rng, name})
				}
			}
			return true
		})
		return true
	})

	for _, a := range accums {
		if sortedLater(pass, fn, a.obj) {
			continue
		}
		pass.Reportf(a.pos.Pos(), "range over map builds slice %s whose order depends on map iteration: sort it afterwards or iterate over sorted keys", a.name)
	}
}

// sliceTarget reports whether lhs writes into a slice-typed variable,
// either by plain assignment target `dst` (for dst = append(dst, ...)) or
// by index `dst[i]`.
func sliceTarget(pass *analysis.Pass, lhs ast.Expr) (types.Object, string, bool) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[lhs]
		if obj == nil {
			obj = pass.TypesInfo.Defs[lhs]
		}
		if obj == nil {
			return nil, "", false
		}
		if _, ok := obj.Type().Underlying().(*types.Slice); ok {
			return obj, lhs.Name, true
		}
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return nil, "", false
			}
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				return obj, id.Name, true
			}
		}
	}
	return nil, "", false
}

// sortedLater reports whether obj is passed to a sort.* or slices.* call
// anywhere in the function after (or before — order within a function is
// not tracked, the presence of a sort is the signal) the accumulation.
func sortedLater(pass *analysis.Pass, fn *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pid, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkg, ok := pass.TypesInfo.Uses[pid].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkg.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
