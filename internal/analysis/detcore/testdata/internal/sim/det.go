// Package sim exercises the detcore analyzer inside a deterministic core
// package (matched by final import-path element).
package sim

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `time.Now in deterministic core package sim`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in deterministic core package sim`
}

func sharedRand() int64 {
	return rand.Int63() // want `package-level rand.Int63 in deterministic core package sim`
}

func seededRand(r *rand.Rand) int64 {
	return r.Int63() // ok: caller-owned, explicitly seeded generator
}

func durations(d time.Duration) int64 {
	return d.Nanoseconds() // ok: durations are values, not clock reads
}

func unsortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want `range over map builds slice out whose order depends on map iteration`
		out = append(out, k)
	}
	return out
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m { // ok: sorted before use
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sumValues(m map[string]int64) int64 {
	var sum int64
	for _, v := range m { // ok: order-insensitive fold
		sum += v
	}
	return sum
}
