// Package other shows the analyzer's scope: non-core packages may read the
// clock freely.
package other

import "time"

func now() time.Time {
	return time.Now() // ok: not a core package
}
