package detcore_test

import (
	"testing"

	"vrdfcap/internal/analysis/analysistest"
	"vrdfcap/internal/analysis/detcore"
)

func TestDetCore(t *testing.T) {
	analysistest.Run(t, detcore.Analyzer, "testdata", "./...")
}
