package analysis_test

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"testing"

	"vrdfcap/internal/analysis/load"
)

// TestFieldAlignmentHotStructs asserts that every struct declared in the
// allocation-sensitive packages (internal/sim holds tens of thousands of
// events and per-edge records per run; internal/probecache persists entry
// slices) is at its minimal size under field reordering, the same check as
// go vet's fieldalignment, which the CI lint gate also enables for these
// two packages. Structs where padding is accepted deliberately would carry
// a reorder here instead — as of this test, none do.
func TestFieldAlignmentHotStructs(t *testing.T) {
	root := repoRoot(t)
	pkgs, err := load.Dir(root, "./internal/sim", "./internal/probecache")
	if err != nil {
		t.Fatalf("loading packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			if isTestGoFile(pkg.Fset, file.Pos()) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := pkg.Info.TypeOf(ts.Type).(*types.Struct)
				if !ok {
					return true
				}
				cur := pkg.Sizes.Sizeof(st)
				min := minimalStructSize(pkg.Sizes, st)
				if min < cur {
					pos := pkg.Fset.Position(ts.Pos())
					t.Errorf("%s: struct %s is %d bytes, reorderable to %d (%d bytes of avoidable padding)",
						pos, ts.Name.Name, cur, min, cur-min)
				}
				return true
			})
		}
	}
}

func isTestGoFile(fset *token.FileSet, pos token.Pos) bool {
	name := fset.Position(pos).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

// minimalStructSize computes the struct's size with fields greedily
// reordered by descending alignment then descending size — the layout go
// vet's fieldalignment suggests.
func minimalStructSize(sizes types.Sizes, st *types.Struct) int64 {
	n := st.NumFields()
	fields := make([]types.Type, 0, n)
	for i := 0; i < n; i++ {
		fields = append(fields, st.Field(i).Type())
	}
	sort.SliceStable(fields, func(i, j int) bool {
		ai, aj := sizes.Alignof(fields[i]), sizes.Alignof(fields[j])
		if ai != aj {
			return ai > aj
		}
		return sizes.Sizeof(fields[i]) > sizes.Sizeof(fields[j])
	})
	var off, maxAlign int64 = 0, 1
	for _, f := range fields {
		a := sizes.Alignof(f)
		if a > maxAlign {
			maxAlign = a
		}
		if r := off % a; r != 0 {
			off += a - r
		}
		off += sizes.Sizeof(f)
	}
	if r := off % maxAlign; r != 0 {
		off += maxAlign - r
	}
	return off
}
