// Package budgetloop checks that the search loops of the analysis core
// consult a cancellation budget. PR 3 threaded context/deadline budgets
// through every search path precisely because a sizing service must be able
// to walk away from a 50M-event simulation; this analyzer keeps new loops
// from quietly opting out.
//
// Scope: non-test files of the packages minimize, capacity, exact, sim,
// serve, cachestore and dispatch (matched by final import-path element) —
// serve joined when the service grew accept/drain loops that must stop
// with the server's base context; dispatch joined with the distributed
// sweep coordinator, whose take/retry/steal loops must abort with the
// sweep's budget rather than spin against a dead fleet. Two loop shapes are budget-relevant:
//
//   - condition-only and infinite `for` statements (`for {`, `for lo < hi {`)
//     — the shape of every event loop, binary search and coordinate descent
//     in the core, whose trip counts are data-dependent;
//   - `range` loops whose body directly calls something named like a
//     simulation probe (Run, Verify, Certify, Probe, Simulate) — the shape
//     of "for each period, simulate".
//
// A relevant loop passes if its body (or a local closure it calls — the
// core's probe/eval closures hide the budget check one level down)
// contains a budget touch: a method call on a *budget.Budget or a
// context.Context, a call into package budget, passing a Budget or Context
// to a callee, or a select with a Done channel. Loops that are genuinely
// bounded and cheap carry a //vrdf:unbudgeted(reason) waiver on the line
// above; a waiver with an empty reason is itself a finding.
package budgetloop

import (
	"go/ast"
	"go/types"
	"regexp"

	"vrdfcap/internal/analysis"
)

// Analyzer is the budgetloop analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "budgetloop",
	Doc:  "check that unbounded search loops in minimize/capacity/exact/sim/serve consult a budget or context (or carry a //vrdf:unbudgeted(reason) waiver)",
	Run:  run,
}

// packages whose loops are checked.
var corePackages = []string{"minimize", "capacity", "exact", "sim", "serve", "cachestore", "dispatch"}

// probeCall matches direct callee names that imply per-iteration
// simulation work inside a range loop.
var probeCall = regexp.MustCompile(`(?i)^(run|verify|certify|probe|simulate)$`)

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PkgIs(pass.Pkg.Path(), corePackages...) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		waivers := analysis.Waivers(pass.Fset, file, "unbudgeted")
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			closures := localClosures(pass, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				var body *ast.BlockStmt
				var relevant bool
				switch n := n.(type) {
				case *ast.ForStmt:
					body = n.Body
					// Three-clause loops are bounded by construction;
					// condition-only and infinite loops are the search shapes.
					relevant = n.Init == nil && n.Post == nil
				case *ast.RangeStmt:
					body = n.Body
					relevant = callsProbe(n.Body)
				default:
					return true
				}
				if !relevant {
					return true
				}
				if hasBudgetCheck(pass, body, closures, 1) {
					return true
				}
				if w, ok := analysis.Waived(pass.Fset, waivers, n.Pos()); ok {
					if w.Reason == "" {
						pass.Reportf(w.Pos, "vrdf:unbudgeted waiver needs a reason")
					}
					return true
				}
				pass.Reportf(n.Pos(), "unbudgeted loop: the body never consults a budget or context (add a budget/ctx check or a //vrdf:unbudgeted(reason) waiver)")
				return true
			})
		}
	}
	return nil, nil
}

// localClosures maps local variables bound to function literals
// (`probe := func(...) ... {`) so hasBudgetCheck can look one level into
// the core's probe/eval helpers.
func localClosures(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]*ast.FuncLit {
	out := make(map[types.Object]*ast.FuncLit)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			fl, ok := as.Rhs[i].(*ast.FuncLit)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				out[obj] = fl
			}
		}
		return true
	})
	return out
}

// callsProbe reports whether the loop body directly calls a probe-shaped
// function or method.
func callsProbe(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if probeCall.MatchString(fun.Name) {
				found = true
			}
		case *ast.SelectorExpr:
			if probeCall.MatchString(fun.Sel.Name) {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasBudgetCheck reports whether the block contains a budget touch,
// following calls to local closures up to depth levels deep.
func hasBudgetCheck(pass *analysis.Pass, body *ast.BlockStmt, closures map[types.Object]*ast.FuncLit, depth int) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// A method on a Budget/Context receiver, or any call into package
		// budget.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if isBudgetish(pass, sel.X) {
				found = true
				return false
			}
			if id, ok := sel.X.(*ast.Ident); ok {
				if pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && analysis.PkgIs(pkg.Imported().Path(), "budget") {
					found = true
					return false
				}
			}
		}
		// Delegation: a Budget or Context handed to the callee.
		for _, a := range call.Args {
			if isBudgetish(pass, a) {
				found = true
				return false
			}
		}
		// One level into local probe/eval closures.
		if depth > 0 {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					if fl, ok := closures[obj]; ok && hasBudgetCheck(pass, fl.Body, closures, depth-1) {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

// isBudgetish reports whether the expression is a *budget.Budget or a
// context.Context.
func isBudgetish(pass *analysis.Pass, x ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(x)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if obj.Name() == "Budget" && analysis.PkgIs(path, "budget") {
		return true
	}
	if obj.Name() == "Context" && path == "context" {
		return true
	}
	return false
}
