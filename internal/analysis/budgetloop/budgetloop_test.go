package budgetloop_test

import (
	"testing"

	"vrdfcap/internal/analysis/analysistest"
	"vrdfcap/internal/analysis/budgetloop"
)

func TestBudgetLoop(t *testing.T) {
	analysistest.Run(t, budgetloop.Analyzer, "testdata", "./...")
}
