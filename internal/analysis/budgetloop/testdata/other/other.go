// Package other shows the analyzer's scope: identical loops outside the
// core packages are not budget-relevant.
package other

func anything() {
	for { // ok: not a core package
		if len("x") > 0 {
			return
		}
	}
}
