// Package serve exercises the analyzer over the service package's loop
// shapes: worker accept loops must select on a context's Done channel, and
// bounded ring drains carry waivers.
package serve

import "context"

type job func()

// --- allowed: the accept loop selects on ctx.Done ---

func worker(ctx context.Context, jobs chan job) {
	for { // ok: selects on the context's Done channel
		select {
		case <-ctx.Done():
			return
		case j := <-jobs:
			j()
		}
	}
}

// --- flagged: an accept loop that can never be stopped ---

func deafWorker(jobs chan job) {
	for { // want `unbudgeted loop: the body never consults a budget or context`
		j := <-jobs
		j()
	}
}

// --- waived: draining a bounded ring ---

type ring struct{ n int }

func (r *ring) pop() bool { r.n--; return r.n > 0 }

func drain(r *ring) {
	//vrdf:unbudgeted(drains a bounded ring; producers drop instead of refilling it)
	for r.pop() { // ok: waived with a reason
	}
}
