// Package dispatch exercises the analyzer over the sweep coordinator's
// loop shapes: a worker loop draining shard queues and a probe loop over a
// period batch must consult the sweep's budget, so a coordinator facing a
// dead fleet can never outlive its caller.
package dispatch

import "context"

type shard struct{ idxs []int }

type prober interface {
	Probe(ctx context.Context, idx int) (bool, error)
}

func take() *shard { return nil }

// --- allowed: the drain loop checks the context every round ---

func runWorker(ctx context.Context, p prober) error {
	for { // ok: consults ctx.Err before every shard
		if err := ctx.Err(); err != nil {
			return err
		}
		sh := take()
		if sh == nil {
			return nil
		}
		for _, i := range sh.idxs {
			if err := ctx.Err(); err != nil { // ok: budget touch per probe
				return err
			}
			if _, err := p.Probe(ctx, i); err != nil {
				return err
			}
		}
	}
}

// --- flagged: a drain loop that spins until the queue empties ---

func drainForever(ctx context.Context, p prober) {
	for { // want `unbudgeted loop: the body never consults a budget or context`
		sh := take()
		if sh == nil {
			return
		}
		_ = sh
	}
}

// --- flagged: probing a whole batch with no budget touch per period ---

type rawProber interface {
	Probe(idx int) (bool, error)
}

func probeBatch(p rawProber, sh *shard) error {
	for _, i := range sh.idxs { // want `unbudgeted loop: the body never consults a budget or context`
		if _, err := p.Probe(i); err != nil {
			return err
		}
	}
	return nil
}
