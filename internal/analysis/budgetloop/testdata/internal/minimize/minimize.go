// Package minimize exercises the budgetloop analyzer inside a core package
// (matched by final import-path element): unbounded loops with and without
// budget checks, probe-shaped range loops, waivers.
package minimize

import (
	"context"

	"fixtures/internal/budget"
)

func simulate(x int) int { return x }
func plain(x int) int    { return x }

// --- flagged ---

func unbudgetedBinarySearch(lo, hi int) int {
	for lo < hi { // want `unbudgeted loop: the body never consults a budget or context`
		mid := (lo + hi) / 2
		if plain(mid) > 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func unbudgetedInfinite() {
	for { // want `unbudgeted loop: the body never consults a budget or context`
		if plain(1) > 0 {
			return
		}
	}
}

func unbudgetedProbeRange(periods []int) int {
	total := 0
	for _, p := range periods { // want `unbudgeted loop: the body never consults a budget or context`
		total += simulate(p)
	}
	return total
}

// --- allowed: budget or context consulted ---

func budgetedSearch(bud *budget.Budget, lo, hi int) int {
	for lo < hi { // ok: checks the budget
		if bud.Err() != nil {
			return lo
		}
		lo++
	}
	return lo
}

func budgetedByDelegation(bud *budget.Budget, lo, hi int) int {
	for lo < hi { // ok: hands the budget to the callee
		if budget.Exceeded(bud) {
			return lo
		}
		lo++
	}
	return lo
}

func contextLoop(ctx context.Context) {
	for { // ok: checks the context
		if ctx.Err() != nil {
			return
		}
	}
}

func closureProbe(bud *budget.Budget, lo, hi int) int {
	probe := func(x int) bool {
		if bud.Err() != nil {
			return false
		}
		return plain(x) > 0
	}
	for lo < hi { // ok: the local probe closure checks the budget
		if probe(lo) {
			return lo
		}
		lo++
	}
	return lo
}

func boundedThreeClause(periods []int) int {
	total := 0
	for i := 0; i < len(periods); i++ { // ok: three-clause loops are bounded
		total += periods[i]
	}
	return total
}

func plainRange(periods []int) int {
	total := 0
	for _, p := range periods { // ok: no probe-shaped call in the body
		total += p
	}
	return total
}

// --- waivers ---

func waived(lo, hi int) int {
	//vrdf:unbudgeted(bisection over a 64-bit range terminates in 64 steps)
	for lo < hi { // ok: waived with a reason
		lo = (lo + hi + 1) / 2
	}
	return lo
}

func waiverNeedsReason(lo, hi int) int {
	//vrdf:unbudgeted() // want `vrdf:unbudgeted waiver needs a reason`
	for lo < hi {
		lo++
	}
	return lo
}
