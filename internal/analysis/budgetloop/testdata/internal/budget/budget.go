// Package budget is a stub of vrdfcap/internal/budget for analyzer
// fixtures: the budgetloop analyzer matches the Budget type and the package
// by final import-path element.
package budget

// Budget mirrors the cancellation surface of budget.Budget.
type Budget struct{}

func (b *Budget) Err() error { return nil }

// Exceeded is a package-level helper, standing in for budget.* calls.
func Exceeded(b *Budget) bool { return false }
