// Package cachestore exercises the analyzer over the backend resilience
// package's loop shapes: a retry loop that spins until a backend answers
// must consult the op's context, so a dead remote can never outlive the
// caller's budget.
package cachestore

import "context"

type backend interface {
	read() ([]byte, error)
}

// --- allowed: the retry loop checks the context every attempt ---

func readRetrying(ctx context.Context, b backend) ([]byte, error) {
	for { // ok: consults ctx.Err each attempt
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if data, err := b.read(); err == nil {
			return data, nil
		}
	}
}

// --- flagged: a retry loop that spins until the backend heals ---

func readForever(b backend) []byte {
	for { // want `unbudgeted loop: the body never consults a budget or context`
		if data, err := b.read(); err == nil {
			return data
		}
	}
}
