package noalloc_test

import (
	"testing"

	"vrdfcap/internal/analysis/analysistest"
	"vrdfcap/internal/analysis/noalloc"
)

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, noalloc.Analyzer, "testdata", "./...")
}
