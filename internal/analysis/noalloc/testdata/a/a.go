// Package a exercises the noalloc analyzer: annotated functions with
// allocating constructs (flagged), waived sites, and clean hot paths.
package a

import "fmt"

type rec struct {
	tick int64
	tok  int64
}

type ring struct {
	buf []rec
}

// --- flagged constructs ---

//vrdf:noalloc
func usesAppend(r *ring, v rec) {
	r.buf = append(r.buf, v) // want `append in //vrdf:noalloc function usesAppend may grow its backing array`
}

//vrdf:noalloc
func usesMake() []rec {
	return make([]rec, 4) // want `make in //vrdf:noalloc function usesMake allocates`
}

//vrdf:noalloc
func usesNew() *rec {
	return new(rec) // want `new in //vrdf:noalloc function usesNew allocates`
}

//vrdf:noalloc
func usesFmt(n int64) {
	fmt.Println(n) // want `call to fmt.Println in //vrdf:noalloc function usesFmt allocates` `argument boxes a concrete value into an interface parameter`
}

//vrdf:noalloc
func sliceLit() []rec {
	return []rec{{1, 2}} // want `slice literal in //vrdf:noalloc function sliceLit allocates`
}

//vrdf:noalloc
func mapLit() map[string]int {
	return map[string]int{} // want `map literal in //vrdf:noalloc function mapLit allocates`
}

//vrdf:noalloc
func addrOfComposite() *rec {
	return &rec{1, 2} // want `&composite literal in //vrdf:noalloc function addrOfComposite allocates`
}

//vrdf:noalloc
func closure() func() {
	return func() {} // want `closure literal in //vrdf:noalloc function closure allocates`
}

//vrdf:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation in //vrdf:noalloc function concat allocates`
}

//vrdf:noalloc
func boxes(v int64) any {
	var x any = v // want `assignment boxes a concrete value into an interface`
	return x
}

// --- waivers ---

//vrdf:noalloc
func waivedAppend(r *ring, v rec) {
	r.buf = append(r.buf, v) //vrdf:allocok(buf keeps steady-state capacity across resets)
}

//vrdf:noalloc
func waiverNeedsReason(r *ring, v rec) {
	//vrdf:allocok() // want `vrdf:allocok waiver needs a reason`
	r.buf = append(r.buf, v)
}

// --- allowed: genuinely alloc-free bodies ---

//vrdf:noalloc
func hotPath(r *ring, tick int64) int64 {
	var sum int64
	for i := range r.buf {
		if r.buf[i].tick == tick {
			sum += r.buf[i].tok
		}
	}
	return sum
}

//vrdf:noalloc
func reuseTail(r *ring) {
	r.buf = r.buf[:0] // reslicing is free
}

// unannotated functions may allocate freely.
func coldPath() []rec {
	return append([]rec(nil), rec{1, 2})
}

// --- misplaced annotation ---

//vrdf:noalloc // want `misplaced //vrdf:noalloc: the annotation must be in the doc comment of a function declaration`
var sink []rec
