// Package noalloc checks that functions annotated //vrdf:noalloc contain no
// syntactically allocating constructs. The annotation marks the simulator's
// steady-state paths (the event loop helpers in internal/sim, the probe
// machinery in internal/exact and internal/probecache) whose zero-alloc
// property PR 2 and PR 4 bought with benchmarks; this analyzer keeps later
// edits from silently paying it back.
//
// Flagged constructs:
//
//   - append (may grow the backing array)
//   - make / new
//   - slice, map and function (closure) literals, and &composite literals
//   - string concatenation (+ / += on strings)
//   - conversions and assignments that box a concrete value into an
//     interface
//   - any call into package fmt
//
// A construct that is provably fine at run time — an append into a slice
// with retained steady-state capacity, a cold-path allocation behind a
// once-guard — carries a //vrdf:allocok(reason) waiver on its line. The
// waivers are honored by the escape-analysis cross-check test as well
// (internal/analysis/escape_test.go), which verifies the compiler's -m
// output agrees that unwaived lines of annotated functions do not allocate,
// so the annotation, the waivers and the compiler never drift apart.
//
// The check is intra-procedural: calls to non-fmt functions are trusted
// (their own annotations are their own problem). The analyzer also reports
// a //vrdf:noalloc comment that is not attached to a function declaration,
// so a drifted annotation fails vet instead of silently checking nothing.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"vrdfcap/internal/analysis"
)

// Annotation is the comment that opts a function into the check.
const Annotation = "//vrdf:noalloc"

// Analyzer is the noalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "check that //vrdf:noalloc functions contain no allocating constructs (append, make, literals, closures, interface boxing, fmt, string concat)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		waivers := analysis.Waivers(pass.Fset, file, "allocok")
		annotated := make(map[int]bool) // lines of annotations attached to functions
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				if isAnnotation(c.Text) {
					annotated[pass.Fset.Position(c.Pos()).Line] = true
					if fn.Body != nil {
						checkFunc(pass, fn, waivers)
					}
				}
			}
		}
		// Misplaced annotations: every //vrdf:noalloc comment must be part
		// of a function's doc group.
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if isAnnotation(c.Text) && !annotated[pass.Fset.Position(c.Pos()).Line] {
					pass.Reportf(c.Pos(), "misplaced %s: the annotation must be in the doc comment of a function declaration", Annotation)
				}
			}
		}
	}
	return nil, nil
}

func isAnnotation(text string) bool {
	t := strings.TrimSpace(text)
	if t == Annotation {
		return true
	}
	// Tolerate trailing commentary after the marker.
	return strings.HasPrefix(t, Annotation) && (t[len(Annotation)] == ' ' || t[len(Annotation)] == '\t')
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, waivers map[int]analysis.Waiver) {
	report := func(pos token.Pos, format string, args ...any) {
		if w, ok := analysis.Waived(pass.Fset, waivers, pos); ok {
			if w.Reason == "" {
				pass.Reportf(w.Pos, "vrdf:allocok waiver needs a reason")
			}
			return
		}
		pass.Reportf(pos, format, args...)
	}
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				switch {
				case isBuiltin(info, fun, "append"):
					report(n.Pos(), "append in //vrdf:noalloc function %s may grow its backing array", fn.Name.Name)
				case isBuiltin(info, fun, "make"):
					report(n.Pos(), "make in //vrdf:noalloc function %s allocates", fn.Name.Name)
				case isBuiltin(info, fun, "new"):
					report(n.Pos(), "new in //vrdf:noalloc function %s allocates", fn.Name.Name)
				}
			case *ast.SelectorExpr:
				if id, ok := fun.X.(*ast.Ident); ok {
					if pkg, ok := info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
						report(n.Pos(), "call to fmt.%s in //vrdf:noalloc function %s allocates (formatting boxes its operands)", fun.Sel.Name, fn.Name.Name)
					}
				}
			}
			// Explicit conversion to an interface type: T(x) with T interface.
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				if isIface(tv.Type) && len(n.Args) == 1 && !isIfaceExpr(info, n.Args[0]) && !isNil(info, n.Args[0]) {
					report(n.Pos(), "conversion to interface in //vrdf:noalloc function %s boxes its operand", fn.Name.Name)
				}
			}
			// Concrete arguments passed to interface parameters.
			if sig := callSignature(info, n); sig != nil {
				checkArgs(report, info, fn, n, sig)
			}
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal in //vrdf:noalloc function %s allocates", fn.Name.Name)
			case *types.Map:
				report(n.Pos(), "map literal in //vrdf:noalloc function %s allocates", fn.Name.Name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal in //vrdf:noalloc function %s allocates", fn.Name.Name)
				}
			}
		case *ast.FuncLit:
			report(n.Pos(), "closure literal in //vrdf:noalloc function %s allocates", fn.Name.Name)
			return false // the closure body is the closure's problem
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n.X)) {
				report(n.Pos(), "string concatenation in //vrdf:noalloc function %s allocates", fn.Name.Name)
			}
		case *ast.ValueSpec:
			// var x I = v boxes v when I is an interface type.
			for i, name := range n.Names {
				if i >= len(n.Values) {
					break
				}
				lt := info.TypeOf(name)
				if lt != nil && isIface(lt) && !isIfaceExpr(info, n.Values[i]) && !isNil(info, n.Values[i]) {
					report(n.Values[i].Pos(), "assignment boxes a concrete value into an interface in //vrdf:noalloc function %s", fn.Name.Name)
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(info.TypeOf(n.Lhs[0])) {
				report(n.Pos(), "string concatenation in //vrdf:noalloc function %s allocates", fn.Name.Name)
			}
			// Assigning a concrete value to an interface destination boxes.
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						lt := info.TypeOf(n.Lhs[i])
						if lt != nil && isIface(lt) && !isIfaceExpr(info, n.Rhs[i]) && !isNil(info, n.Rhs[i]) {
							report(n.Rhs[i].Pos(), "assignment boxes a concrete value into an interface in //vrdf:noalloc function %s", fn.Name.Name)
						}
					}
				}
			}
		}
		return true
	})
}

// checkArgs flags concrete values passed to interface parameters (the
// classic hidden allocation: an int passed to fmt-style ...any, an error
// built per event).
func checkArgs(report func(token.Pos, string, ...any), info *types.Info, fn *ast.FuncDecl, call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if s, ok := last.(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !isIface(pt) {
			continue
		}
		if isIfaceExpr(info, arg) || isNil(info, arg) {
			continue
		}
		report(arg.Pos(), "argument boxes a concrete value into an interface parameter in //vrdf:noalloc function %s", fn.Name.Name)
	}
}

func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func isBuiltin(info *types.Info, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

func isIface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isIfaceExpr(info *types.Info, x ast.Expr) bool {
	t := info.TypeOf(x)
	return t == nil || isIface(t)
}

func isNil(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	return ok && tv.IsNil()
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
