// Package analysis is a self-contained, stdlib-only reimplementation of the
// slice of golang.org/x/tools/go/analysis that the vrdfvet suite needs:
// Analyzer/Pass/Diagnostic types, plus the shared helpers (test-file
// detection, //vrdf: waiver-comment parsing, package-scope matching) used by
// the five domain analyzers under internal/analysis/*.
//
// The repo deliberately has no external dependencies (go.mod carries no
// requires), so the x/tools module is not available; the API here mirrors it
// closely enough that the analyzers would port to the real framework by
// changing imports. The drivers live in internal/analysis/unitchecker (the
// `go vet -vettool` JSON protocol), internal/analysis/load (a
// `go list -export`-based package loader for standalone and test use) and
// internal/analysis/analysistest (the `// want` fixture runner).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// An Analyzer is one static check. Run inspects a single type-checked
// package through the Pass and reports findings via Pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and as its command-line
	// enable flag (e.g. `vrdfvet -machinereuse`).
	Name string
	// Doc is the analyzer's help text; the first line is the summary.
	Doc string
	// Run performs the analysis. The result value is unused by the vrdfvet
	// drivers (the x/tools API keeps it for inter-analyzer plumbing).
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass is one (analyzer, package) unit of work, carrying the syntax and
// type information of exactly one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	TypesSizes types.Sizes
	Report    func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional
	Category string    // optional
	Message  string
}

// IsTestFile reports whether pos lies in a _test.go file. Every vrdfvet
// analyzer skips test files: tests deliberately violate the runtime
// protocols they pin (reuse_test.go calls Run twice to prove the dynamic
// guard fires) and legitimately consult wall-clock deadlines.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// PathBase returns the last slash-separated element of an import path.
func PathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// PkgIs reports whether the package path is, or ends in, one of the given
// base names. Matching by final path element keeps the analyzers testable:
// the real package vrdfcap/internal/sim and a fixture module's
// fixtures/internal/sim both satisfy PkgIs(path, "sim").
func PkgIs(path string, bases ...string) bool {
	b := PathBase(path)
	for _, want := range bases {
		if b == want {
			return true
		}
	}
	return false
}

// waiverRE matches the //vrdf:<name>(<reason>) waiver grammar. The reason is
// mandatory: a waiver without one is itself reported by the analyzers.
var waiverRE = regexp.MustCompile(`//\s*vrdf:([a-z]+)\(([^)]*)\)`)

// Waiver is one //vrdf:<name>(reason) comment.
type Waiver struct {
	Name   string
	Reason string
	Pos    token.Pos
}

// Waivers collects every //vrdf:name(reason) comment in the file, keyed by
// the line it is written on. A waiver suppresses findings on its own line
// and, when written as a standalone comment line, on the line immediately
// below — the same placement contract as //nolint.
func Waivers(fset *token.FileSet, file *ast.File, name string) map[int]Waiver {
	out := make(map[int]Waiver)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			m := waiverRE.FindStringSubmatch(c.Text)
			if m == nil || m[1] != name {
				continue
			}
			out[fset.Position(c.Pos()).Line] = Waiver{Name: m[1], Reason: strings.TrimSpace(m[2]), Pos: c.Pos()}
		}
	}
	return out
}

// Waived looks up a waiver covering the node that starts at pos: one on the
// same line or on the line directly above.
func Waived(fset *token.FileSet, waivers map[int]Waiver, pos token.Pos) (Waiver, bool) {
	line := fset.Position(pos).Line
	if w, ok := waivers[line]; ok {
		return w, true
	}
	if w, ok := waivers[line-1]; ok {
		return w, true
	}
	return Waiver{}, false
}
