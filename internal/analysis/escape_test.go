package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"vrdfcap/internal/analysis"
)

// funcRange is the line span of one //vrdf:noalloc function.
type funcRange struct {
	name       string
	start, end int
}

// escapeRE matches the compiler's escape diagnostics:
//
//	internal/sim/engine.go:414:12: q escapes to heap
//	internal/sim/snapshot.go:100:6: moved to heap: sb
var escapeRE = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (?:moved to heap|.*escapes to heap)`)

// TestNoAllocMatchesEscapeAnalysis cross-checks the //vrdf:noalloc
// annotations against the compiler: every "escapes to heap" / "moved to
// heap" line the gc escape analysis reports inside an annotated function
// must carry a //vrdf:allocok waiver (on the line or the line above). The
// noalloc analyzer checks the same contract syntactically; this test makes
// the annotations, the waivers and the compiler agree, so none of the three
// can drift alone.
func TestNoAllocMatchesEscapeAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping compiler escape analysis")
	}
	root := repoRoot(t)

	fset := token.NewFileSet()
	ranges := make(map[string][]funcRange)  // repo-relative file -> annotated spans
	waivers := make(map[string]map[int]analysis.Waiver) // repo-relative file -> allocok waivers
	pkgDirs := make(map[string]bool)        // repo-relative package dirs to compile
	annotated := 0

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if !strings.Contains(string(src), "//vrdf:noalloc") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil || fn.Body == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				if strings.HasPrefix(strings.TrimSpace(c.Text), "//vrdf:noalloc") {
					ranges[rel] = append(ranges[rel], funcRange{
						name:  fn.Name.Name,
						start: fset.Position(fn.Body.Pos()).Line,
						end:   fset.Position(fn.Body.End()).Line,
					})
					annotated++
					break
				}
			}
		}
		if len(ranges[rel]) > 0 {
			waivers[rel] = analysis.Waivers(fset, file, "allocok")
			pkgDirs[filepath.Dir(rel)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if annotated == 0 {
		t.Fatal("no //vrdf:noalloc functions found; the annotations have been removed without removing this test")
	}

	// One compile with escape diagnostics over every annotated package.
	// -count=1-style freshness is irrelevant: go build always re-runs the
	// compiler when -gcflags disables the build cache's silent reuse path
	// for diagnostics.
	dirs := make([]string, 0, len(pkgDirs))
	for d := range pkgDirs {
		dirs = append(dirs, "./"+filepath.ToSlash(d))
	}
	sort.Strings(dirs)
	args := append([]string{"build", "-gcflags=-m"}, dirs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, _ := cmd.CombinedOutput() // -m writes to stderr; a failed build surfaces below

	checked := 0
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		file := filepath.ToSlash(m[1])
		ln, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		spans, ok := ranges[file]
		if !ok {
			continue
		}
		for _, span := range spans {
			if ln < span.start || ln > span.end {
				continue
			}
			checked++
			if w := waivers[file]; w != nil {
				if _, onLine := w[ln]; onLine {
					continue
				}
				if _, lineAbove := w[ln-1]; lineAbove {
					continue
				}
			}
			t.Errorf("%s:%d: compiler reports a heap allocation inside //vrdf:noalloc function %s with no //vrdf:allocok waiver: %s",
				file, ln, span.name, strings.TrimSpace(line))
		}
	}
	if checked == 0 && t.Failed() == false {
		t.Logf("escape analysis reported no heap allocations inside the %d annotated functions", annotated)
	}
}
