// Package suite enumerates the vrdfvet analyzers in their canonical order,
// shared by the cmd/vrdfvet driver and the self-application test so the two
// can never disagree about what "the suite" is.
package suite

import (
	"vrdfcap/internal/analysis"
	"vrdfcap/internal/analysis/budgetloop"
	"vrdfcap/internal/analysis/detcore"
	"vrdfcap/internal/analysis/machinereuse"
	"vrdfcap/internal/analysis/noalloc"
	"vrdfcap/internal/analysis/ratioarith"
)

// All returns the full vrdfvet suite.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		budgetloop.Analyzer,
		detcore.Analyzer,
		machinereuse.Analyzer,
		noalloc.Analyzer,
		ratioarith.Analyzer,
	}
}
