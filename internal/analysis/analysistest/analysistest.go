// Package analysistest runs a vrdfvet analyzer over fixture packages and
// checks its diagnostics against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture tree is a self-contained module (its own go.mod, conventionally
// `module fixtures`) living under the analyzer's testdata directory, which
// the surrounding build ignores. Fixture packages reuse the real package
// base names the analyzers key on — a stub fixtures/internal/sim stands in
// for vrdfcap/internal/sim — because the analyzers deliberately match
// packages by final import-path element.
//
// Expectations are comments of the form
//
//	m.Run() // want `second Run`
//	x() // want `first finding` `second finding`
//
// Each backquoted or double-quoted string is a regexp that must match a
// diagnostic reported on that line, and every diagnostic must be matched by
// an expectation, so fixtures pin allowed cases (no comment) as hard as
// flagged ones.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
	"testing"

	"vrdfcap/internal/analysis"
	"vrdfcap/internal/analysis/load"
)

var wantRE = regexp.MustCompile("//\\s*want\\s+((?:[`\"][^`\"]*[`\"]\\s*)+)")
var expectRE = regexp.MustCompile("[`\"]([^`\"]*)[`\"]")

// Run loads the fixture module rooted at dir, analyzes the packages
// matching patterns (default ./...) with a, and reports mismatches between
// diagnostics and // want expectations through t.
func Run(t *testing.T, a *analysis.Analyzer, dir string, patterns ...string) {
	t.Helper()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Dir(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages under %s match %v", dir, patterns)
	}
	for _, pkg := range pkgs {
		runPackage(t, a, pkg)
	}
}

type key struct {
	file string
	line int
}

func runPackage(t *testing.T, a *analysis.Analyzer, pkg *load.Package) {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Pkg,
		TypesInfo:  pkg.Info,
		TypesSizes: pkg.Sizes,
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer %s failed: %v", pkg.ImportPath, a.Name, err)
	}

	// Collect expectations per (file, line).
	want := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, em := range expectRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(em[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, em[1], err)
					}
					want[k] = append(want[k], re)
				}
			}
		}
	}

	// Match diagnostics against expectations.
	unmatched := make(map[key][]*regexp.Regexp)
	for k, v := range want {
		unmatched[k] = append([]*regexp.Regexp(nil), v...)
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		res := unmatched[k]
		hit := -1
		for i, re := range res {
			if re.MatchString(d.Message) {
				hit = i
				break
			}
		}
		if hit < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			continue
		}
		unmatched[k] = append(res[:hit], res[hit+1:]...)
	}
	var missing []string
	for k, res := range unmatched {
		for _, re := range res {
			missing = append(missing, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, re))
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Error(m)
	}
}

// Position is a convenience for tests that assert on raw positions.
func Position(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	short := p.Filename
	if i := strings.LastIndexByte(short, '/'); i >= 0 {
		short = short[i+1:]
	}
	return fmt.Sprintf("%s:%d", short, p.Line)
}
