package graphio

import (
	"errors"
	"fmt"

	"vrdfcap/internal/taskgraph"
)

// Limits bounds the size and structure of decoded documents so a service
// can accept graphs from untrusted callers. The zero value of any field
// means "unlimited" in that dimension; the zero Limits therefore behaves
// exactly like the unlimited Decode functions.
//
// The guards run before the expensive work they bound: MaxBytes is checked
// against the raw input before any parsing, MaxTasks/MaxBuffers during (or
// immediately after) parsing, and MaxQuanta before a lo..hi range is
// expanded — a 20-byte document must not be able to demand a
// 900-million-entry quanta set.
type Limits struct {
	// MaxBytes caps the raw input size in bytes.
	MaxBytes int
	// MaxTasks caps the number of task declarations.
	MaxTasks int
	// MaxBuffers caps the number of buffer declarations.
	MaxBuffers int
	// MaxQuanta caps the number of values in one quanta set (set members,
	// or the width of a lo..hi range before it is expanded).
	MaxQuanta int
}

// DefaultLimits are the limits a service should start from: roomy enough
// for every graph in this repository (the §5 MP3 chain, the video case
// study, the generated soak graphs) with two orders of magnitude to spare,
// small enough that a hostile document cannot make the parser allocate
// unbounded memory.
var DefaultLimits = Limits{
	MaxBytes:   1 << 20, // 1 MiB of input
	MaxTasks:   4096,
	MaxBuffers: 4096,
	MaxQuanta:  4096,
}

// LimitError reports which limit a document exceeded. Callers distinguish
// it from syntax errors with errors.As (a service maps it to 413 while a
// malformed document is a 400).
type LimitError struct {
	// What names the limited dimension: "input bytes", "tasks", "buffers"
	// or "quanta set values".
	What string
	// Limit is the configured maximum; Got is the observed value (for
	// incremental checks, the count at which the limit was first crossed).
	Limit, Got int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("graphio: %s limit exceeded: %d > %d", e.What, e.Got, e.Limit)
}

// IsLimit reports whether err stems from a LimitError.
func IsLimit(err error) bool {
	var le *LimitError
	return errors.As(err, &le)
}

// checkBytes guards the raw input size.
func (l Limits) checkBytes(n int) error {
	if l.MaxBytes > 0 && n > l.MaxBytes {
		return &LimitError{What: "input bytes", Limit: l.MaxBytes, Got: n}
	}
	return nil
}

// checkTasks guards the task count.
func (l Limits) checkTasks(n int) error {
	if l.MaxTasks > 0 && n > l.MaxTasks {
		return &LimitError{What: "tasks", Limit: l.MaxTasks, Got: n}
	}
	return nil
}

// checkBuffers guards the buffer count.
func (l Limits) checkBuffers(n int) error {
	if l.MaxBuffers > 0 && n > l.MaxBuffers {
		return &LimitError{What: "buffers", Limit: l.MaxBuffers, Got: n}
	}
	return nil
}

// checkQuanta guards the size of one quanta set. It must run before a
// range is expanded, so callers pass the would-be length.
func (l Limits) checkQuanta(n int) error {
	if l.MaxQuanta > 0 && n > l.MaxQuanta {
		return &LimitError{What: "quanta set values", Limit: l.MaxQuanta, Got: n}
	}
	return nil
}

// DecodeLimited parses JSON into a graph and optional constraint,
// enforcing the limits. The zero Limits is equivalent to Decode.
func DecodeLimited(data []byte, l Limits) (*taskgraph.Graph, *taskgraph.Constraint, error) {
	return decodeJSON(data, l)
}

// DecodeTextLimited parses the text format, enforcing the limits. The zero
// Limits is equivalent to DecodeText.
func DecodeTextLimited(data []byte, l Limits) (*taskgraph.Graph, *taskgraph.Constraint, error) {
	return decodeText(data, l)
}

// DecodeAnyLimited sniffs the format like DecodeAny, enforcing the limits.
func DecodeAnyLimited(data []byte, l Limits) (*taskgraph.Graph, *taskgraph.Constraint, error) {
	if err := l.checkBytes(len(data)); err != nil {
		return nil, nil, err
	}
	for _, ch := range data {
		switch ch {
		case ' ', '\t', '\r', '\n':
			continue
		case '{':
			return decodeJSON(data, l)
		default:
			return decodeText(data, l)
		}
	}
	return nil, nil, fmt.Errorf("graphio: empty document")
}
