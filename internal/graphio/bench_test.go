package graphio

import (
	"testing"

	"vrdfcap/internal/taskgraph"
)

// benchGraph parses the MP3 chain once for the encode benchmarks.
func benchGraph(b *testing.B) (*taskgraph.Graph, *taskgraph.Constraint) {
	b.Helper()
	g, c, err := DecodeText([]byte(mp3Text))
	if err != nil {
		b.Fatal(err)
	}
	return g, c
}

// BenchmarkEncodeJSON pins the pooled JSON encode path: the scratch
// document, buffer and encoder come from a pool, so steady state pays only
// the returned copy and the per-buffer quanta snapshots.
func BenchmarkEncodeJSON(b *testing.B) {
	g, c := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(g, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeText pins the pooled text encode path.
func BenchmarkEncodeText(b *testing.B) {
	g, c := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EncodeText(g, c)
	}
}

// BenchmarkDecodeText pins the text parser on the MP3 document.
func BenchmarkDecodeText(b *testing.B) {
	data := []byte(mp3Text)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeText(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeAnyLimited pins the limited decode the service uses per
// request; the limit checks must stay O(1) overhead over DecodeText.
func BenchmarkDecodeAnyLimited(b *testing.B) {
	data := []byte(mp3Text)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeAnyLimited(data, DefaultLimits); err != nil {
			b.Fatal(err)
		}
	}
}
