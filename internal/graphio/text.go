package graphio

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

// The text format is a line-oriented alternative to JSON, convenient to
// write by hand:
//
//	# MP3 playback, DATE 2008 §5
//	task vBR  wcrt 32/625
//	task vMP3 wcrt 3/125
//	buffer vBR -> vMP3 prod 2048 cons {96,120,960} cap 6015 bytes 1
//	constraint vMP3 period 1/44100
//
// Lines are independent; '#' starts a comment; quanta are a single value, a
// {a,b,c} set, or an inclusive lo..hi range; times are exact rationals.

// DecodeText parses the text format into a graph and optional constraint.
func DecodeText(data []byte) (*taskgraph.Graph, *taskgraph.Constraint, error) {
	return decodeText(data, Limits{})
}

// decodeText parses the text format under the limits. Counts are checked
// incrementally as declarations parse (the document is rejected at the
// first excess line) and quanta ranges are width-checked before expansion.
func decodeText(data []byte, l Limits) (*taskgraph.Graph, *taskgraph.Constraint, error) {
	if err := l.checkBytes(len(data)); err != nil {
		return nil, nil, err
	}
	g := taskgraph.New()
	var con *taskgraph.Constraint
	sc := bufio.NewScanner(bytes.NewReader(data))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(format string, args ...interface{}) error {
			return fmt.Errorf("graphio: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "task":
			// task <name> wcrt <rat>
			if len(fields) != 4 || fields[2] != "wcrt" {
				return nil, nil, fail("expected 'task <name> wcrt <time>', got %q", line)
			}
			if err := l.checkTasks(len(g.Tasks()) + 1); err != nil {
				return nil, nil, err
			}
			wcrt, err := ratio.Parse(fields[3])
			if err != nil {
				return nil, nil, fail("bad wcrt: %v", err)
			}
			if _, err := g.AddTask(fields[1], wcrt); err != nil {
				return nil, nil, fail("%v", err)
			}
		case "buffer":
			// buffer <prod> -> <cons> prod <q> cons <q> [cap n] [bytes n]
			if len(fields) < 8 || fields[2] != "->" || fields[4] != "prod" || fields[6] != "cons" {
				return nil, nil, fail("expected 'buffer <producer> -> <consumer> prod <quanta> cons <quanta> [cap n] [bytes n]', got %q", line)
			}
			if err := l.checkBuffers(len(g.Buffers()) + 1); err != nil {
				return nil, nil, err
			}
			prod, err := parseQuantaLimited(fields[5], l)
			if err != nil {
				if IsLimit(err) {
					return nil, nil, err
				}
				return nil, nil, fail("bad production quanta: %v", err)
			}
			cons, err := parseQuantaLimited(fields[7], l)
			if err != nil {
				if IsLimit(err) {
					return nil, nil, err
				}
				return nil, nil, fail("bad consumption quanta: %v", err)
			}
			buf := taskgraph.Buffer{
				Producer: fields[1],
				Consumer: fields[3],
				Prod:     prod,
				Cons:     cons,
			}
			rest := fields[8:]
			for len(rest) > 0 {
				if len(rest) < 2 {
					return nil, nil, fail("dangling option %q", rest[0])
				}
				n, err := strconv.ParseInt(rest[1], 10, 64)
				if err != nil {
					return nil, nil, fail("bad %s value %q", rest[0], rest[1])
				}
				switch rest[0] {
				case "cap":
					buf.Capacity = n
				case "bytes":
					buf.ContainerBytes = n
				default:
					return nil, nil, fail("unknown buffer option %q", rest[0])
				}
				rest = rest[2:]
			}
			if _, err := g.AddBuffer(buf); err != nil {
				return nil, nil, fail("%v", err)
			}
		case "constraint":
			// constraint <task> period <rat>
			if len(fields) != 4 || fields[2] != "period" {
				return nil, nil, fail("expected 'constraint <task> period <time>', got %q", line)
			}
			if con != nil {
				return nil, nil, fail("duplicate constraint")
			}
			period, err := ratio.Parse(fields[3])
			if err != nil {
				return nil, nil, fail("bad period: %v", err)
			}
			con = &taskgraph.Constraint{Task: fields[1], Period: period}
		default:
			return nil, nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graphio: %w", err)
	}
	if con != nil {
		if err := con.Validate(g); err != nil {
			return nil, nil, err
		}
	}
	return g, con, nil
}

var textBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// EncodeText renders a graph (and optional constraint) in the text format.
// The scratch buffer is pooled; the returned slice is the only retained
// allocation.
func EncodeText(g *taskgraph.Graph, c *taskgraph.Constraint) []byte {
	b := textBufPool.Get().(*bytes.Buffer)
	defer textBufPool.Put(b)
	b.Reset()
	for _, t := range g.Tasks() {
		fmt.Fprintf(b, "task %s wcrt %s\n", t.Name, t.WCRT)
	}
	for _, buf := range g.Buffers() {
		fmt.Fprintf(b, "buffer %s -> %s prod %s cons %s",
			buf.Producer, buf.Consumer, formatQuanta(buf.Prod), formatQuanta(buf.Cons))
		if buf.Capacity > 0 {
			fmt.Fprintf(b, " cap %d", buf.Capacity)
		}
		if buf.ContainerBytes > 0 {
			fmt.Fprintf(b, " bytes %d", buf.ContainerBytes)
		}
		b.WriteByte('\n')
	}
	if c != nil {
		fmt.Fprintf(b, "constraint %s period %s\n", c.Task, c.Period)
	}
	return append([]byte(nil), b.Bytes()...)
}

// parseQuanta accepts "7", "{2,3}" or "96..99".
func parseQuanta(s string) (taskgraph.QuantaSet, error) {
	return parseQuantaLimited(s, Limits{})
}

// parseQuantaLimited parses one quanta token, checking the set size limit
// before the values are materialised — in particular before a lo..hi range
// is expanded, so a tiny document cannot demand a huge allocation.
func parseQuantaLimited(s string, l Limits) (taskgraph.QuantaSet, error) {
	if strings.HasPrefix(s, "{") && strings.HasSuffix(s, "}") {
		parts := strings.Split(s[1:len(s)-1], ",")
		if err := l.checkQuanta(len(parts)); err != nil {
			return taskgraph.QuantaSet{}, err
		}
		vals := make([]int64, 0, len(parts))
		for _, p := range parts {
			v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil {
				return taskgraph.QuantaSet{}, fmt.Errorf("bad set member %q", p)
			}
			vals = append(vals, v)
		}
		return taskgraph.NewQuantaSet(vals...)
	}
	if i := strings.Index(s, ".."); i >= 0 {
		lo, err := strconv.ParseInt(s[:i], 10, 64)
		if err != nil {
			return taskgraph.QuantaSet{}, fmt.Errorf("bad range start %q", s[:i])
		}
		hi, err := strconv.ParseInt(s[i+2:], 10, 64)
		if err != nil {
			return taskgraph.QuantaSet{}, fmt.Errorf("bad range end %q", s[i+2:])
		}
		if l.MaxQuanta > 0 && hi >= lo {
			// Width-minus-one in uint64: hi-lo never overflows there, while
			// the full width of MinInt64..MaxInt64 (2^64) would wrap to 0.
			if wm1 := uint64(hi) - uint64(lo); wm1 >= uint64(l.MaxQuanta) {
				return taskgraph.QuantaSet{}, &LimitError{What: "quanta set values", Limit: l.MaxQuanta, Got: clampWidth(wm1)}
			}
		}
		return taskgraph.Range(lo, hi)
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return taskgraph.QuantaSet{}, fmt.Errorf("bad quantum %q", s)
	}
	return taskgraph.NewQuantaSet(v)
}

// clampWidth narrows a range's width-minus-one to the full width as an int
// for reporting, saturating at MaxInt (the width of MinInt64..MaxInt64 is
// 2^64 and fits nowhere).
func clampWidth(wm1 uint64) int {
	const maxInt = int(^uint(0) >> 1)
	if wm1 >= uint64(maxInt) {
		return maxInt
	}
	return int(wm1) + 1
}

// formatQuanta renders a set in the text syntax (single value or {...};
// ranges are not reconstructed).
func formatQuanta(q taskgraph.QuantaSet) string {
	if q.IsConstant() {
		return fmt.Sprintf("%d", q.Max())
	}
	return q.String() // already "{a,b,c}"
}

// DecodeAny sniffs the format: documents starting with '{' parse as JSON,
// anything else as the text format.
func DecodeAny(data []byte) (*taskgraph.Graph, *taskgraph.Constraint, error) {
	for _, ch := range data {
		switch ch {
		case ' ', '\t', '\r', '\n':
			continue
		case '{':
			return Decode(data)
		default:
			return DecodeText(data)
		}
	}
	return nil, nil, fmt.Errorf("graphio: empty document")
}
