package graphio

import (
	"testing"
)

// FuzzDecodeText checks that arbitrary input never panics the text parser
// and that every accepted document re-encodes and re-parses to the same
// shape. Run with `go test -fuzz FuzzDecodeText ./internal/graphio` for a
// real campaign; the seeds below run as part of the normal test suite.
func FuzzDecodeText(f *testing.F) {
	f.Add("task a wcrt 1\ntask b wcrt 1\nbuffer a -> b prod 1 cons 1")
	f.Add(mp3Text)
	f.Add("task a wcrt 1/0")
	f.Add("buffer x -> y prod {1,2} cons 2..4 cap 9 bytes 4")
	f.Add("constraint z period 3.25")
	f.Add("# only a comment\n\n")
	f.Add("task \x00 wcrt 1")
	f.Fuzz(func(t *testing.T, doc string) {
		g, c, err := DecodeText([]byte(doc))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		out := EncodeText(g, c)
		g2, c2, err := DecodeText(out)
		if err != nil {
			t.Fatalf("re-parse of encoded form failed: %v\noriginal: %q\nencoded: %q", err, doc, out)
		}
		if len(g2.Tasks()) != len(g.Tasks()) || len(g2.Buffers()) != len(g.Buffers()) {
			t.Fatalf("round trip changed shape for %q", doc)
		}
		if (c == nil) != (c2 == nil) {
			t.Fatalf("round trip changed constraint presence for %q", doc)
		}
	})
}

// FuzzDecodeAny checks the format sniffer against arbitrary bytes.
func FuzzDecodeAny(f *testing.F) {
	f.Add([]byte(`{"tasks":[{"name":"a","wcrt":"1"}],"buffers":[]}`))
	f.Add([]byte("task a wcrt 1"))
	f.Add([]byte("{"))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = DecodeAny(data) // must not panic
	})
}

// FuzzDecodeAnyLimited checks the DoS guards: under tight limits no
// accepted document may exceed them, rejection must be typed, and the
// parser must never panic. The seeds sit on both sides of every limit —
// the service's request-body defence depends on these paths.
func FuzzDecodeAnyLimited(f *testing.F) {
	// At the task limit (ok) and one over (limit error).
	f.Add([]byte("task a wcrt 1\ntask b wcrt 1\nbuffer a -> b prod 1 cons 1"))
	f.Add([]byte("task a wcrt 1\ntask b wcrt 1\ntask c wcrt 1\ntask d wcrt 1\ntask e wcrt 1"))
	// Quanta set at the limit and one over.
	f.Add([]byte("task a wcrt 1\ntask b wcrt 1\nbuffer a -> b prod {1,2,3,4} cons 1"))
	f.Add([]byte("task a wcrt 1\ntask b wcrt 1\nbuffer a -> b prod {1,2,3,4,5} cons 1"))
	// Ranges: at the limit, one over, and the astronomically wide attack.
	f.Add([]byte("task a wcrt 1\ntask b wcrt 1\nbuffer a -> b prod 1..4 cons 1"))
	f.Add([]byte("task a wcrt 1\ntask b wcrt 1\nbuffer a -> b prod 0..9223372036854775806 cons 1"))
	f.Add([]byte("task a wcrt 1\ntask b wcrt 1\nbuffer a -> b prod -9223372036854775808..9223372036854775807 cons 1"))
	// JSON side of the same guards.
	f.Add([]byte(`{"tasks":[{"name":"a","wcrt":"1"},{"name":"b","wcrt":"1"}],"buffers":[{"producer":"a","consumer":"b","prod":[1,2,3,4,5],"cons":[1]}]}`))
	f.Add([]byte(`{"tasks":[{"name":"a","wcrt":"1"},{"name":"b","wcrt":"1"},{"name":"c","wcrt":"1"},{"name":"d","wcrt":"1"},{"name":"e","wcrt":"1"}],"buffers":[]}`))
	limits := Limits{MaxBytes: 512, MaxTasks: 4, MaxBuffers: 4, MaxQuanta: 4}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, _, err := DecodeAnyLimited(data, limits)
		if err != nil {
			return // rejected is fine (typed or syntactic); panics are not
		}
		if len(data) > limits.MaxBytes {
			t.Fatalf("accepted %d input bytes over the %d limit", len(data), limits.MaxBytes)
		}
		if n := len(g.Tasks()); n > limits.MaxTasks {
			t.Fatalf("accepted %d tasks over the %d limit", n, limits.MaxTasks)
		}
		if n := len(g.Buffers()); n > limits.MaxBuffers {
			t.Fatalf("accepted %d buffers over the %d limit", n, limits.MaxBuffers)
		}
		for _, b := range g.Buffers() {
			if n := len(b.Prod.Values()); n > limits.MaxQuanta {
				t.Fatalf("accepted a %d-value prod quanta set over the %d limit", n, limits.MaxQuanta)
			}
			if n := len(b.Cons.Values()); n > limits.MaxQuanta {
				t.Fatalf("accepted a %d-value cons quanta set over the %d limit", n, limits.MaxQuanta)
			}
		}
	})
}
