package graphio

import (
	"testing"
)

// FuzzDecodeText checks that arbitrary input never panics the text parser
// and that every accepted document re-encodes and re-parses to the same
// shape. Run with `go test -fuzz FuzzDecodeText ./internal/graphio` for a
// real campaign; the seeds below run as part of the normal test suite.
func FuzzDecodeText(f *testing.F) {
	f.Add("task a wcrt 1\ntask b wcrt 1\nbuffer a -> b prod 1 cons 1")
	f.Add(mp3Text)
	f.Add("task a wcrt 1/0")
	f.Add("buffer x -> y prod {1,2} cons 2..4 cap 9 bytes 4")
	f.Add("constraint z period 3.25")
	f.Add("# only a comment\n\n")
	f.Add("task \x00 wcrt 1")
	f.Fuzz(func(t *testing.T, doc string) {
		g, c, err := DecodeText([]byte(doc))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		out := EncodeText(g, c)
		g2, c2, err := DecodeText(out)
		if err != nil {
			t.Fatalf("re-parse of encoded form failed: %v\noriginal: %q\nencoded: %q", err, doc, out)
		}
		if len(g2.Tasks()) != len(g.Tasks()) || len(g2.Buffers()) != len(g.Buffers()) {
			t.Fatalf("round trip changed shape for %q", doc)
		}
		if (c == nil) != (c2 == nil) {
			t.Fatalf("round trip changed constraint presence for %q", doc)
		}
	})
}

// FuzzDecodeAny checks the format sniffer against arbitrary bytes.
func FuzzDecodeAny(f *testing.F) {
	f.Add([]byte(`{"tasks":[{"name":"a","wcrt":"1"}],"buffers":[]}`))
	f.Add([]byte("task a wcrt 1"))
	f.Add([]byte("{"))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = DecodeAny(data) // must not panic
	})
}
