package graphio

import (
	"strings"
	"testing"

	"vrdfcap/internal/mp3"
	"vrdfcap/internal/ratio"
)

const mp3Text = `
# MP3 playback, DATE 2008 Section 5
task vBR  wcrt 32/625
task vMP3 wcrt 3/125
task vSRC wcrt 1/100
task vDAC wcrt 1/44100

buffer vBR  -> vMP3 prod 2048 cons {96,120,144,168,192,240,288,336,384,480,576,672,768,960} bytes 1
buffer vMP3 -> vSRC prod 1152 cons 480 bytes 4
buffer vSRC -> vDAC prod 441  cons 1 cap 882 bytes 4

constraint vDAC period 1/44100
`

func TestDecodeTextMP3(t *testing.T) {
	g, c, err := DecodeText([]byte(mp3Text))
	if err != nil {
		t.Fatal(err)
	}
	if c == nil || c.Task != "vDAC" || !c.Period.Equal(ratio.MustNew(1, 44100)) {
		t.Fatalf("constraint = %+v", c)
	}
	want, err := mp3.Graph()
	if err != nil {
		t.Fatal(err)
	}
	for _, wt := range want.Tasks() {
		got := g.Task(wt.Name)
		if got == nil || !got.WCRT.Equal(wt.WCRT) {
			t.Errorf("task %s wrong or missing", wt.Name)
		}
	}
	b := g.BufferByName("vBR->vMP3")
	if b == nil || !b.Cons.Equal(mp3.FrameSizes()) {
		t.Errorf("frame quanta wrong: %v", b)
	}
	if b.ContainerBytes != 1 {
		t.Errorf("container bytes = %d", b.ContainerBytes)
	}
	if g.BufferByName("vSRC->vDAC").Capacity != 882 {
		t.Error("capacity option lost")
	}
}

func TestTextRoundTrip(t *testing.T) {
	g, c, err := DecodeText([]byte(mp3Text))
	if err != nil {
		t.Fatal(err)
	}
	out := EncodeText(g, c)
	g2, c2, err := DecodeText(out)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, out)
	}
	if len(g2.Tasks()) != len(g.Tasks()) || len(g2.Buffers()) != len(g.Buffers()) {
		t.Fatal("round trip lost elements")
	}
	for i, b := range g.Buffers() {
		b2 := g2.Buffers()[i]
		if !b2.Prod.Equal(b.Prod) || !b2.Cons.Equal(b.Cons) ||
			b2.Capacity != b.Capacity || b2.ContainerBytes != b.ContainerBytes {
			t.Errorf("buffer %d altered", i)
		}
	}
	if c2 == nil || !c2.Period.Equal(c.Period) {
		t.Error("constraint altered")
	}
}

func TestDecodeTextRanges(t *testing.T) {
	doc := `
task a wcrt 1
task b wcrt 1
buffer a -> b prod 4 cons 2..5
`
	g, _, err := DecodeText([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	cons := g.Buffers()[0].Cons
	if cons.Len() != 4 || cons.Min() != 2 || cons.Max() != 5 {
		t.Errorf("range parsed as %v", cons)
	}
}

func TestDecodeTextErrors(t *testing.T) {
	cases := map[string]string{
		"bad directive":    "flurb x",
		"short task":       "task a",
		"bad wcrt":         "task a wcrt x",
		"dup task":         "task a wcrt 1\ntask a wcrt 1",
		"short buffer":     "task a wcrt 1\ntask b wcrt 1\nbuffer a -> b prod 1",
		"bad arrow":        "task a wcrt 1\ntask b wcrt 1\nbuffer a to b prod 1 cons 1",
		"bad quanta":       "task a wcrt 1\ntask b wcrt 1\nbuffer a -> b prod x cons 1",
		"bad set":          "task a wcrt 1\ntask b wcrt 1\nbuffer a -> b prod {1,x} cons 1",
		"bad range":        "task a wcrt 1\ntask b wcrt 1\nbuffer a -> b prod 5..x cons 1",
		"dangling option":  "task a wcrt 1\ntask b wcrt 1\nbuffer a -> b prod 1 cons 1 cap",
		"unknown option":   "task a wcrt 1\ntask b wcrt 1\nbuffer a -> b prod 1 cons 1 zap 3",
		"bad option value": "task a wcrt 1\ntask b wcrt 1\nbuffer a -> b prod 1 cons 1 cap x",
		"short constraint": "task a wcrt 1\nconstraint a",
		"bad period":       "task a wcrt 1\nconstraint a period x",
		"dup constraint":   "task a wcrt 1\nconstraint a period 1\nconstraint a period 1",
		"unknown con task": "task a wcrt 1\nconstraint zz period 1",
		"unknown producer": "task a wcrt 1\nbuffer zz -> a prod 1 cons 1",
	}
	for name, doc := range cases {
		if _, _, err := DecodeText([]byte(doc)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, doc)
		} else if !strings.Contains(err.Error(), "graphio") && !strings.Contains(err.Error(), "taskgraph") {
			t.Errorf("%s: error lacks context: %v", name, err)
		}
	}
}

func TestDecodeAnySniffsFormat(t *testing.T) {
	g, err := mp3.Graph()
	if err != nil {
		t.Fatal(err)
	}
	jsonData, err := Encode(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeAny(jsonData); err != nil {
		t.Errorf("JSON not sniffed: %v", err)
	}
	if _, _, err := DecodeAny([]byte(mp3Text)); err != nil {
		t.Errorf("text not sniffed: %v", err)
	}
	if _, _, err := DecodeAny([]byte("  \n\t")); err == nil {
		t.Error("empty document accepted")
	}
}
