package graphio

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// chainText builds a text document with n tasks in a chain.
func chainText(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "task t%d wcrt 1\n", i)
	}
	for i := 0; i+1 < n; i++ {
		fmt.Fprintf(&b, "buffer t%d -> t%d prod 1 cons 1\n", i, i+1)
	}
	return b.String()
}

// chainJSON builds the JSON form of the same chain.
func chainJSON(n int) string {
	var b strings.Builder
	b.WriteString(`{"tasks":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"name":"t%d","wcrt":"1"}`, i)
	}
	b.WriteString(`],"buffers":[`)
	for i := 0; i+1 < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"producer":"t%d","consumer":"t%d","prod":[1],"cons":[1]}`, i, i+1)
	}
	b.WriteString(`]}`)
	return b.String()
}

func wantLimit(t *testing.T, err error, what string) {
	t.Helper()
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want LimitError(%s), got %v", what, err)
	}
	if le.What != what {
		t.Fatalf("want limit on %q, got %q (%v)", what, le.What, err)
	}
	if !IsLimit(err) {
		t.Fatalf("IsLimit false for %v", err)
	}
}

func TestLimitsZeroValueIsUnlimited(t *testing.T) {
	doc := chainText(64)
	if _, _, err := DecodeAnyLimited([]byte(doc), Limits{}); err != nil {
		t.Fatalf("zero limits rejected a valid document: %v", err)
	}
}

func TestLimitsMaxBytes(t *testing.T) {
	doc := []byte(chainText(4))
	l := Limits{MaxBytes: len(doc) - 1}
	for name, decode := range map[string]func([]byte, Limits) error{
		"any":  func(d []byte, l Limits) error { _, _, err := DecodeAnyLimited(d, l); return err },
		"text": func(d []byte, l Limits) error { _, _, err := DecodeTextLimited(d, l); return err },
	} {
		if err := decode(doc, l); err == nil {
			t.Fatalf("%s: oversized input accepted", name)
		} else {
			wantLimit(t, err, "input bytes")
		}
	}
	j := []byte(chainJSON(4))
	if _, _, err := DecodeLimited(j, Limits{MaxBytes: len(j) - 1}); err == nil {
		t.Fatal("json: oversized input accepted")
	} else {
		wantLimit(t, err, "input bytes")
	}
}

func TestLimitsMaxTasks(t *testing.T) {
	l := Limits{MaxTasks: 3}
	if _, _, err := DecodeTextLimited([]byte(chainText(4)), l); err == nil {
		t.Fatal("text: 4 tasks accepted under MaxTasks=3")
	} else {
		wantLimit(t, err, "tasks")
	}
	if _, _, err := DecodeLimited([]byte(chainJSON(4)), l); err == nil {
		t.Fatal("json: 4 tasks accepted under MaxTasks=3")
	} else {
		wantLimit(t, err, "tasks")
	}
	if _, _, err := DecodeTextLimited([]byte(chainText(3)), l); err != nil {
		t.Fatalf("text: 3 tasks rejected under MaxTasks=3: %v", err)
	}
}

func TestLimitsMaxBuffers(t *testing.T) {
	l := Limits{MaxBuffers: 2}
	if _, _, err := DecodeTextLimited([]byte(chainText(4)), l); err == nil {
		t.Fatal("text: 3 buffers accepted under MaxBuffers=2")
	} else {
		wantLimit(t, err, "buffers")
	}
	if _, _, err := DecodeLimited([]byte(chainJSON(4)), l); err == nil {
		t.Fatal("json: 3 buffers accepted under MaxBuffers=2")
	} else {
		wantLimit(t, err, "buffers")
	}
}

func TestLimitsMaxQuantaSet(t *testing.T) {
	doc := "task a wcrt 1\ntask b wcrt 1\nbuffer a -> b prod {1,2,3,4} cons 1"
	if _, _, err := DecodeTextLimited([]byte(doc), Limits{MaxQuanta: 3}); err == nil {
		t.Fatal("text: 4-member set accepted under MaxQuanta=3")
	} else {
		wantLimit(t, err, "quanta set values")
	}
	j := `{"tasks":[{"name":"a","wcrt":"1"},{"name":"b","wcrt":"1"}],` +
		`"buffers":[{"producer":"a","consumer":"b","prod":[1,2,3,4],"cons":[1]}]}`
	if _, _, err := DecodeLimited([]byte(j), Limits{MaxQuanta: 3}); err == nil {
		t.Fatal("json: 4-member set accepted under MaxQuanta=3")
	} else {
		wantLimit(t, err, "quanta set values")
	}
}

// TestLimitsRangeNotExpanded is the DoS case the limit exists for: a tiny
// document demanding a near-2^63-wide range must be rejected by width,
// before the slice would be allocated.
func TestLimitsRangeNotExpanded(t *testing.T) {
	doc := "task a wcrt 1\ntask b wcrt 1\nbuffer a -> b prod 0..9223372036854775806 cons 1"
	_, _, err := DecodeTextLimited([]byte(doc), Limits{MaxQuanta: 1024})
	if err == nil {
		t.Fatal("astronomically wide range accepted")
	}
	wantLimit(t, err, "quanta set values")

	// Within the limit the same syntax still works.
	ok := "task a wcrt 1\ntask b wcrt 1\nbuffer a -> b prod 1..8 cons 1"
	if _, _, err := DecodeTextLimited([]byte(ok), Limits{MaxQuanta: 8}); err != nil {
		t.Fatalf("8-wide range rejected under MaxQuanta=8: %v", err)
	}
}

func TestDefaultLimitsAcceptRepoDocuments(t *testing.T) {
	if _, _, err := DecodeAnyLimited([]byte(mp3Text), DefaultLimits); err != nil {
		t.Fatalf("DefaultLimits rejected the MP3 chain: %v", err)
	}
}

func TestLimitErrorMessage(t *testing.T) {
	err := &LimitError{What: "tasks", Limit: 3, Got: 7}
	want := "graphio: tasks limit exceeded: 7 > 3"
	if err.Error() != want {
		t.Fatalf("got %q, want %q", err.Error(), want)
	}
}
