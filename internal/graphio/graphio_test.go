package graphio

import (
	"bytes"
	"strings"
	"testing"

	"vrdfcap/internal/mp3"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
	"vrdfcap/internal/vrdf"
)

func mp3Doc(t *testing.T) (*taskgraph.Graph, taskgraph.Constraint) {
	t.Helper()
	g, err := mp3.Graph()
	if err != nil {
		t.Fatal(err)
	}
	return g, mp3.Constraint()
}

func TestJSONRoundTrip(t *testing.T) {
	g, c := mp3Doc(t)
	g.Buffers()[0].Capacity = 6015
	data, err := Encode(g, &c)
	if err != nil {
		t.Fatal(err)
	}
	g2, c2, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v\n%s", err, data)
	}
	if c2 == nil || c2.Task != c.Task || !c2.Period.Equal(c.Period) {
		t.Errorf("constraint round trip: %+v", c2)
	}
	if len(g2.Tasks()) != len(g.Tasks()) || len(g2.Buffers()) != len(g.Buffers()) {
		t.Fatalf("shape lost: %d tasks, %d buffers", len(g2.Tasks()), len(g2.Buffers()))
	}
	for _, orig := range g.Tasks() {
		got := g2.Task(orig.Name)
		if got == nil || !got.WCRT.Equal(orig.WCRT) {
			t.Errorf("task %s lost or altered", orig.Name)
		}
	}
	for i, orig := range g.Buffers() {
		got := g2.Buffers()[i]
		if !got.Prod.Equal(orig.Prod) || !got.Cons.Equal(orig.Cons) || got.Capacity != orig.Capacity {
			t.Errorf("buffer %s altered", orig.DefaultName())
		}
	}
}

func TestEncodeWithoutConstraint(t *testing.T) {
	g, _ := mp3Doc(t)
	data, err := Encode(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "constraint") {
		t.Error("nil constraint serialised")
	}
	_, c, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if c != nil {
		t.Error("constraint materialised from nothing")
	}
}

func TestDecodeRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"bad json":       `{`,
		"empty quanta":   `{"tasks":[{"name":"a","wcrt":"1"},{"name":"b","wcrt":"1"}],"buffers":[{"producer":"a","consumer":"b","prod":[],"cons":[1]}]}`,
		"zero wcrt":      `{"tasks":[{"name":"a","wcrt":"0"}],"buffers":[]}`,
		"unknown prod":   `{"tasks":[{"name":"a","wcrt":"1"}],"buffers":[{"producer":"x","consumer":"a","prod":[1],"cons":[1]}]}`,
		"bad rat":        `{"tasks":[{"name":"a","wcrt":"x"}],"buffers":[]}`,
		"bad constraint": `{"tasks":[{"name":"a","wcrt":"1"}],"buffers":[],"constraint":{"task":"zz","period":"1"}}`,
	}
	for name, doc := range cases {
		if _, _, err := Decode([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g, _ := mp3Doc(t)
	g.Buffers()[2].Capacity = 882
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph taskgraph", "vBR", "vDAC", "ξ=", "λ=", "ζ=882", "κ="} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteVRDFDOT(t *testing.T) {
	g, _ := mp3Doc(t)
	g.Buffers()[0].Capacity = 6015
	vg, _, err := vrdf.FromTaskGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVRDFDOT(&buf, vg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph vrdf", "π=", "γ=", "δ=6015", "ρ="} {
		if !strings.Contains(out, want) {
			t.Errorf("VRDF DOT missing %q:\n%s", want, out)
		}
	}
}

func TestRatJSONForm(t *testing.T) {
	// Rationals serialise as quoted strings, not floats.
	g := taskgraph.New()
	if _, err := g.AddTask("a", ratio.MustNew(1, 3)); err != nil {
		t.Fatal(err)
	}
	data, err := Encode(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"1/3"`) {
		t.Errorf("wcrt not serialised exactly:\n%s", data)
	}
}
