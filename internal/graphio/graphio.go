// Package graphio reads and writes task graphs: a JSON document format for
// tools and tests, and Graphviz DOT export for task graphs and VRDF graphs.
//
// The JSON format is deliberately small:
//
//	{
//	  "tasks":   [{"name": "vBR", "wcrt": "32/625"}, ...],
//	  "buffers": [{"producer": "vBR", "consumer": "vMP3",
//	               "prod": [2048], "cons": [96, 960], "capacity": 0}, ...],
//	  "constraint": {"task": "vDAC", "period": "1/44100"}
//	}
//
// Times are exact rationals in string form ("1/44100", "0.0227", "3");
// quanta are arrays of non-negative integers.
package graphio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
	"vrdfcap/internal/vrdf"
)

// TaskJSON is the JSON shape of a task.
type TaskJSON struct {
	Name string    `json:"name"`
	WCRT ratio.Rat `json:"wcrt"`
}

// BufferJSON is the JSON shape of a buffer.
type BufferJSON struct {
	Name     string  `json:"name,omitempty"`
	Producer string  `json:"producer"`
	Consumer string  `json:"consumer"`
	Prod     []int64 `json:"prod"`
	Cons     []int64 `json:"cons"`
	Capacity int64   `json:"capacity,omitempty"`
	// ContainerBytes optionally sizes one container for memory
	// reporting.
	ContainerBytes int64 `json:"container_bytes,omitempty"`
}

// ConstraintJSON is the JSON shape of a throughput constraint.
type ConstraintJSON struct {
	Task   string    `json:"task"`
	Period ratio.Rat `json:"period"`
}

// Document is a serialisable task graph plus optional constraint.
type Document struct {
	Tasks      []TaskJSON      `json:"tasks"`
	Buffers    []BufferJSON    `json:"buffers"`
	Constraint *ConstraintJSON `json:"constraint,omitempty"`

	// constraint is the backing value Constraint points at when fill sets
	// one, so a pooled Document reuses it instead of allocating per call.
	constraint ConstraintJSON
}

// FromGraph builds a Document from a graph and optional constraint.
func FromGraph(g *taskgraph.Graph, c *taskgraph.Constraint) *Document {
	doc := &Document{}
	doc.fill(g, c)
	return doc
}

// fill populates the document in place, reusing the capacity of its task
// and buffer slices so a pooled Document pays no slice growth in steady
// state.
func (doc *Document) fill(g *taskgraph.Graph, c *taskgraph.Constraint) {
	doc.Tasks = doc.Tasks[:0]
	doc.Buffers = doc.Buffers[:0]
	doc.Constraint = nil
	for _, t := range g.Tasks() {
		doc.Tasks = append(doc.Tasks, TaskJSON{Name: t.Name, WCRT: t.WCRT})
	}
	for _, b := range g.Buffers() {
		doc.Buffers = append(doc.Buffers, BufferJSON{
			Name:           b.Name,
			Producer:       b.Producer,
			Consumer:       b.Consumer,
			Prod:           b.Prod.Values(),
			Cons:           b.Cons.Values(),
			Capacity:       b.Capacity,
			ContainerBytes: b.ContainerBytes,
		})
	}
	if c != nil {
		doc.constraint = ConstraintJSON{Task: c.Task, Period: c.Period}
		doc.Constraint = &doc.constraint
	}
}

// ToGraph reconstructs the graph (and constraint, if present) from a
// Document.
func (doc *Document) ToGraph() (*taskgraph.Graph, *taskgraph.Constraint, error) {
	return doc.toGraph(Limits{})
}

// toGraph reconstructs the graph, enforcing the structural limits before
// any quanta set is materialised.
func (doc *Document) toGraph(l Limits) (*taskgraph.Graph, *taskgraph.Constraint, error) {
	if err := l.checkTasks(len(doc.Tasks)); err != nil {
		return nil, nil, err
	}
	if err := l.checkBuffers(len(doc.Buffers)); err != nil {
		return nil, nil, err
	}
	for _, b := range doc.Buffers {
		if err := l.checkQuanta(len(b.Prod)); err != nil {
			return nil, nil, fmt.Errorf("graphio: buffer %s->%s prod: %w", b.Producer, b.Consumer, err)
		}
		if err := l.checkQuanta(len(b.Cons)); err != nil {
			return nil, nil, fmt.Errorf("graphio: buffer %s->%s cons: %w", b.Producer, b.Consumer, err)
		}
	}
	g := taskgraph.New()
	for _, t := range doc.Tasks {
		if _, err := g.AddTask(t.Name, t.WCRT); err != nil {
			return nil, nil, err
		}
	}
	for _, b := range doc.Buffers {
		prod, err := taskgraph.NewQuantaSet(b.Prod...)
		if err != nil {
			return nil, nil, fmt.Errorf("graphio: buffer %s->%s prod: %w", b.Producer, b.Consumer, err)
		}
		cons, err := taskgraph.NewQuantaSet(b.Cons...)
		if err != nil {
			return nil, nil, fmt.Errorf("graphio: buffer %s->%s cons: %w", b.Producer, b.Consumer, err)
		}
		_, err = g.AddBuffer(taskgraph.Buffer{
			Name:           b.Name,
			Producer:       b.Producer,
			Consumer:       b.Consumer,
			Prod:           prod,
			Cons:           cons,
			Capacity:       b.Capacity,
			ContainerBytes: b.ContainerBytes,
		})
		if err != nil {
			return nil, nil, err
		}
	}
	var c *taskgraph.Constraint
	if doc.Constraint != nil {
		c = &taskgraph.Constraint{Task: doc.Constraint.Task, Period: doc.Constraint.Period}
		if err := c.Validate(g); err != nil {
			return nil, nil, err
		}
	}
	return g, c, nil
}

// encState bundles the per-encode scratch — the document, the output
// buffer and the indenting JSON encoder wired to it — so one pool hit
// covers all three.
type encState struct {
	doc Document
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	s := &encState{}
	s.enc = json.NewEncoder(&s.buf)
	s.enc.SetIndent("", "  ")
	return s
}}

// Encode serialises a graph (and optional constraint) to indented JSON.
// The result is byte-identical to json.MarshalIndent of FromGraph; the
// scratch document, buffer and encoder are pooled, so the only allocation
// retained per call is the returned slice.
func Encode(g *taskgraph.Graph, c *taskgraph.Constraint) ([]byte, error) {
	s := encPool.Get().(*encState)
	defer encPool.Put(s)
	s.buf.Reset()
	s.doc.fill(g, c)
	if err := s.enc.Encode(&s.doc); err != nil {
		return nil, err
	}
	// The stream encoder appends a newline MarshalIndent does not.
	out := s.buf.Bytes()
	out = bytes.TrimSuffix(out, []byte{'\n'})
	return append([]byte(nil), out...), nil
}

// Decode parses JSON into a graph and optional constraint.
func Decode(data []byte) (*taskgraph.Graph, *taskgraph.Constraint, error) {
	return decodeJSON(data, Limits{})
}

// decodeJSON parses JSON under the limits. The raw size check runs before
// json.Unmarshal so an oversized document is rejected without parsing.
func decodeJSON(data []byte, l Limits) (*taskgraph.Graph, *taskgraph.Constraint, error) {
	if err := l.checkBytes(len(data)); err != nil {
		return nil, nil, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, nil, fmt.Errorf("graphio: %w", err)
	}
	return doc.toGraph(l)
}

// WriteDOT renders a task graph in Graphviz DOT: tasks as boxes annotated
// with κ, buffers as edges annotated with ξ/λ and capacity.
func WriteDOT(w io.Writer, g *taskgraph.Graph) error {
	if _, err := fmt.Fprintln(w, "digraph taskgraph {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  rankdir=LR; node [shape=box];"); err != nil {
		return err
	}
	names := make([]string, 0, len(g.Tasks()))
	for _, t := range g.Tasks() {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	for _, n := range names {
		t := g.Task(n)
		if _, err := fmt.Fprintf(w, "  %q [label=\"%s\\nκ=%s\"];\n", t.Name, t.Name, t.WCRT); err != nil {
			return err
		}
	}
	for _, b := range g.Buffers() {
		label := fmt.Sprintf("ξ=%s λ=%s", b.Prod, b.Cons)
		if b.Capacity > 0 {
			label += fmt.Sprintf(" ζ=%d", b.Capacity)
		}
		if _, err := fmt.Fprintf(w, "  %q -> %q [label=%q];\n", b.Producer, b.Consumer, label); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// WriteVRDFDOT renders a VRDF graph in DOT: actors as circles annotated
// with ρ, edges annotated with π/γ and initial tokens δ.
func WriteVRDFDOT(w io.Writer, g *vrdf.Graph) error {
	if _, err := fmt.Fprintln(w, "digraph vrdf {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  rankdir=LR; node [shape=ellipse];"); err != nil {
		return err
	}
	for _, a := range g.Actors() {
		if _, err := fmt.Fprintf(w, "  %q [label=\"%s\\nρ=%s\"];\n", a.Name, a.Name, a.Rho); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		label := fmt.Sprintf("%s\\nπ=%s γ=%s", e.Name, e.Prod, e.Cons)
		if e.Initial > 0 {
			label += fmt.Sprintf(" δ=%d", e.Initial)
		}
		if _, err := fmt.Fprintf(w, "  %q -> %q [label=%q];\n", e.Src, e.Dst, label); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
