// Package graphio reads and writes task graphs: a JSON document format for
// tools and tests, and Graphviz DOT export for task graphs and VRDF graphs.
//
// The JSON format is deliberately small:
//
//	{
//	  "tasks":   [{"name": "vBR", "wcrt": "32/625"}, ...],
//	  "buffers": [{"producer": "vBR", "consumer": "vMP3",
//	               "prod": [2048], "cons": [96, 960], "capacity": 0}, ...],
//	  "constraint": {"task": "vDAC", "period": "1/44100"}
//	}
//
// Times are exact rationals in string form ("1/44100", "0.0227", "3");
// quanta are arrays of non-negative integers.
package graphio

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
	"vrdfcap/internal/vrdf"
)

// TaskJSON is the JSON shape of a task.
type TaskJSON struct {
	Name string    `json:"name"`
	WCRT ratio.Rat `json:"wcrt"`
}

// BufferJSON is the JSON shape of a buffer.
type BufferJSON struct {
	Name     string  `json:"name,omitempty"`
	Producer string  `json:"producer"`
	Consumer string  `json:"consumer"`
	Prod     []int64 `json:"prod"`
	Cons     []int64 `json:"cons"`
	Capacity int64   `json:"capacity,omitempty"`
	// ContainerBytes optionally sizes one container for memory
	// reporting.
	ContainerBytes int64 `json:"container_bytes,omitempty"`
}

// ConstraintJSON is the JSON shape of a throughput constraint.
type ConstraintJSON struct {
	Task   string    `json:"task"`
	Period ratio.Rat `json:"period"`
}

// Document is a serialisable task graph plus optional constraint.
type Document struct {
	Tasks      []TaskJSON      `json:"tasks"`
	Buffers    []BufferJSON    `json:"buffers"`
	Constraint *ConstraintJSON `json:"constraint,omitempty"`
}

// FromGraph builds a Document from a graph and optional constraint.
func FromGraph(g *taskgraph.Graph, c *taskgraph.Constraint) *Document {
	doc := &Document{}
	for _, t := range g.Tasks() {
		doc.Tasks = append(doc.Tasks, TaskJSON{Name: t.Name, WCRT: t.WCRT})
	}
	for _, b := range g.Buffers() {
		doc.Buffers = append(doc.Buffers, BufferJSON{
			Name:           b.Name,
			Producer:       b.Producer,
			Consumer:       b.Consumer,
			Prod:           b.Prod.Values(),
			Cons:           b.Cons.Values(),
			Capacity:       b.Capacity,
			ContainerBytes: b.ContainerBytes,
		})
	}
	if c != nil {
		doc.Constraint = &ConstraintJSON{Task: c.Task, Period: c.Period}
	}
	return doc
}

// ToGraph reconstructs the graph (and constraint, if present) from a
// Document.
func (doc *Document) ToGraph() (*taskgraph.Graph, *taskgraph.Constraint, error) {
	g := taskgraph.New()
	for _, t := range doc.Tasks {
		if _, err := g.AddTask(t.Name, t.WCRT); err != nil {
			return nil, nil, err
		}
	}
	for _, b := range doc.Buffers {
		prod, err := taskgraph.NewQuantaSet(b.Prod...)
		if err != nil {
			return nil, nil, fmt.Errorf("graphio: buffer %s->%s prod: %w", b.Producer, b.Consumer, err)
		}
		cons, err := taskgraph.NewQuantaSet(b.Cons...)
		if err != nil {
			return nil, nil, fmt.Errorf("graphio: buffer %s->%s cons: %w", b.Producer, b.Consumer, err)
		}
		_, err = g.AddBuffer(taskgraph.Buffer{
			Name:           b.Name,
			Producer:       b.Producer,
			Consumer:       b.Consumer,
			Prod:           prod,
			Cons:           cons,
			Capacity:       b.Capacity,
			ContainerBytes: b.ContainerBytes,
		})
		if err != nil {
			return nil, nil, err
		}
	}
	var c *taskgraph.Constraint
	if doc.Constraint != nil {
		c = &taskgraph.Constraint{Task: doc.Constraint.Task, Period: doc.Constraint.Period}
		if err := c.Validate(g); err != nil {
			return nil, nil, err
		}
	}
	return g, c, nil
}

// Encode serialises a graph (and optional constraint) to indented JSON.
func Encode(g *taskgraph.Graph, c *taskgraph.Constraint) ([]byte, error) {
	return json.MarshalIndent(FromGraph(g, c), "", "  ")
}

// Decode parses JSON into a graph and optional constraint.
func Decode(data []byte) (*taskgraph.Graph, *taskgraph.Constraint, error) {
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, nil, fmt.Errorf("graphio: %w", err)
	}
	return doc.ToGraph()
}

// WriteDOT renders a task graph in Graphviz DOT: tasks as boxes annotated
// with κ, buffers as edges annotated with ξ/λ and capacity.
func WriteDOT(w io.Writer, g *taskgraph.Graph) error {
	if _, err := fmt.Fprintln(w, "digraph taskgraph {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  rankdir=LR; node [shape=box];"); err != nil {
		return err
	}
	names := make([]string, 0, len(g.Tasks()))
	for _, t := range g.Tasks() {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	for _, n := range names {
		t := g.Task(n)
		if _, err := fmt.Fprintf(w, "  %q [label=\"%s\\nκ=%s\"];\n", t.Name, t.Name, t.WCRT); err != nil {
			return err
		}
	}
	for _, b := range g.Buffers() {
		label := fmt.Sprintf("ξ=%s λ=%s", b.Prod, b.Cons)
		if b.Capacity > 0 {
			label += fmt.Sprintf(" ζ=%d", b.Capacity)
		}
		if _, err := fmt.Fprintf(w, "  %q -> %q [label=%q];\n", b.Producer, b.Consumer, label); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// WriteVRDFDOT renders a VRDF graph in DOT: actors as circles annotated
// with ρ, edges annotated with π/γ and initial tokens δ.
func WriteVRDFDOT(w io.Writer, g *vrdf.Graph) error {
	if _, err := fmt.Fprintln(w, "digraph vrdf {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  rankdir=LR; node [shape=ellipse];"); err != nil {
		return err
	}
	for _, a := range g.Actors() {
		if _, err := fmt.Fprintf(w, "  %q [label=\"%s\\nρ=%s\"];\n", a.Name, a.Name, a.Rho); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		label := fmt.Sprintf("%s\\nπ=%s γ=%s", e.Name, e.Prod, e.Cons)
		if e.Initial > 0 {
			label += fmt.Sprintf(" δ=%d", e.Initial)
		}
		if _, err := fmt.Fprintf(w, "  %q -> %q [label=%q];\n", e.Src, e.Dst, label); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
