package capacity

import (
	"context"
	"fmt"
	"sort"
	"time"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/dispatch"
	"vrdfcap/internal/parallel"
	"vrdfcap/internal/probecache"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

// SweepPoint is one point of a throughput/buffer trade-off curve: the
// period analysed, whether the chain is feasible at that period, and the
// resulting total capacity.
type SweepPoint struct {
	// Period is the analysed strict period of the constrained task.
	Period ratio.Rat
	// Valid reports whether every schedule check passed at this period.
	Valid bool
	// Total is the summed buffer capacity (meaningful when Valid).
	Total int64
	// Result is the full analysis at this period.
	Result *Result
}

// SweepOptions tunes SweepPeriodsOpt and MinimalFeasiblePeriodOpt.
type SweepOptions struct {
	// Parallel bounds the number of periods analysed concurrently on this
	// machine: 0 selects GOMAXPROCS, 1 forces the serial path. Every
	// period is an independent pure computation, so the results —
	// ordering, values and the error reported on a bad period — are
	// identical for every setting (see internal/parallel for the
	// first-error contract).
	Parallel int
	// Workers, when non-empty, lists remote vrdfserve base URLs
	// ("http://host:8080") and switches SweepPeriodsOpt to the
	// internal/dispatch coordinator: the grid is cut into interleaved
	// shards driven over each worker's /v1/probe endpoint, with retries,
	// per-worker circuit breaking, work stealing and a local fallback for
	// anything no worker answers. Every probe is the same pure function
	// wherever it runs, so the points' Period/Valid/Total are identical
	// to a local sweep under every fault schedule; remote points carry a
	// nil Result. Parallel and Workers are independent: Parallel governs
	// the local path (and the coordinator's fallback probes run
	// serially). MinimalFeasiblePeriodOpt ignores Workers — a binary
	// search probes one period at a time, which batching cannot help.
	Workers []string
	// DispatchStats, if non-nil, accumulates the coordinator's per-worker
	// shard/retry/steal counters across distributed sweeps.
	DispatchStats *dispatch.Stats
	// Context, if non-nil, cancels the sweep cooperatively between
	// periods; the typed error satisfies budget.ErrCanceled.
	Context context.Context
	// Deadline, if non-zero, bounds the sweep in wall-clock time; the
	// typed error satisfies budget.ErrBudgetExceeded.
	Deadline time.Time
	// Cache overrides the period-verdict cache the sweep records into and
	// MinimalFeasiblePeriod probes from. When nil, the process-wide
	// probecache.Shared() entry under SweepKey(g, task, p) is used, so a
	// sweep and a later minimal-period search over the same graph share
	// verdicts automatically. Cached verdicts never change a sweep's
	// points — every point is fully recomputed and overwrites the cache —
	// they only let MinimalFeasiblePeriod skip re-analysing periods whose
	// validity is already decided.
	Cache *probecache.Periods
	// NoCache disables verdict recording and lookup entirely; it wins
	// over Cache.
	NoCache bool
}

// cache resolves the period-verdict cache the options select for graph g.
func (o SweepOptions) cache(g *taskgraph.Graph, task string, p Policy) *probecache.Periods {
	switch {
	case o.NoCache:
		return nil
	case o.Cache != nil:
		return o.Cache
	default:
		return probecache.Shared().Entry(SweepKey(g, task, p)).Periods()
	}
}

// SweepKey returns the probecache fingerprint under which period sweeps of
// this (graph, constrained task, policy) triple share verdicts.
func SweepKey(g *taskgraph.Graph, task string, p Policy) string {
	return probecache.GraphKey(g, "capacity-sweep", task, p.String())
}

// SweepPeriods analyses the chain at every given period and returns the
// throughput/buffer trade-off curve — the design-space exploration that
// Stuijk et al. ([11] in the paper) perform for constant-rate SDF graphs,
// here available for data-dependent chains. Tighter periods need larger
// buffers; periods below a task's response-time limit are reported
// infeasible rather than skipped. Periods are evaluated concurrently
// (bounded by GOMAXPROCS); use SweepPeriodsOpt to control the worker
// count.
func SweepPeriods(g *taskgraph.Graph, task string, periods []ratio.Rat, p Policy) ([]SweepPoint, error) {
	return SweepPeriodsOpt(g, task, periods, p, SweepOptions{})
}

// SweepPeriodsOpt is SweepPeriods with explicit options. The chain is
// validated and compiled once (CompileAnalysis); every worker probes the
// shared compiled analysis instead of re-deriving the chain per period.
func SweepPeriodsOpt(g *taskgraph.Graph, task string, periods []ratio.Rat, p Policy, opts SweepOptions) ([]SweepPoint, error) {
	if len(periods) == 0 {
		return nil, fmt.Errorf("capacity: empty period sweep")
	}
	a, err := CompileAnalysis(g, task, p)
	if err != nil {
		return nil, err
	}
	cache := opts.cache(g, task, p)
	if len(opts.Workers) > 0 {
		return sweepDistributed(g, task, periods, p, a, cache, opts)
	}
	bud := budget.At(opts.Context, opts.Deadline)
	eval := func(i int) (SweepPoint, error) {
		if err := bud.Err(); err != nil {
			return SweepPoint{}, err
		}
		tau := periods[i]
		res, err := a.At(tau)
		if err != nil {
			return SweepPoint{}, fmt.Errorf("capacity: period %v: %w", tau, err)
		}
		pt := SweepPoint{
			Period: tau,
			Valid:  res.Valid,
			Total:  res.TotalCapacity(),
			Result: res,
		}
		if cache != nil {
			// Freshly computed verdicts overwrite whatever was stored, so
			// a stale or corrupted cache entry heals on the next sweep.
			cache.Insert(tau, probecache.Verdict{Valid: pt.Valid, Total: pt.Total})
		}
		return pt, nil
	}
	if parallel.Workers(opts.Parallel) == 1 {
		out := make([]SweepPoint, 0, len(periods))
		for i := range periods {
			pt, err := eval(i)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
		return out, nil
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	pts, err := parallel.Map(ctx, opts.Parallel, len(periods), eval)
	if err != nil {
		return nil, budget.Classify(err)
	}
	return pts, nil
}

// MinimalFeasiblePeriod returns the smallest candidate period at which the
// chain is feasible, or an error if none is. The candidate list is expected
// in ascending order; a list that is not ascending is sorted into a copy
// first, so the returned point is the true minimum regardless of input
// order (an unsorted list used to silently return the first feasible — not
// the minimal — period).
func MinimalFeasiblePeriod(g *taskgraph.Graph, task string, periods []ratio.Rat, p Policy) (SweepPoint, error) {
	return MinimalFeasiblePeriodOpt(g, task, periods, p, SweepOptions{})
}

// MinimalFeasiblePeriodOpt is MinimalFeasiblePeriod with explicit options.
//
// Validity is monotone in the period — every schedule check compares a
// fixed response time ρ(w) against φ(w) = τ·const with const > 0, so
// relaxing τ can only help — which makes binary search over the sorted
// candidates exact. Instead of analysing every candidate (the historical
// behaviour, which re-verified periods a SweepPeriods in the same process
// had already answered), the search probes O(log n) candidates and answers
// each probe from the shared period-verdict cache when a recorded verdict
// — exact or by dominance — already decides it.
func MinimalFeasiblePeriodOpt(g *taskgraph.Graph, task string, periods []ratio.Rat, p Policy, opts SweepOptions) (SweepPoint, error) {
	if len(periods) == 0 {
		return SweepPoint{}, fmt.Errorf("capacity: empty period sweep")
	}
	// Sort and dedupe into a copy: duplicate candidates would skew the
	// binary-search midpoints (wasting probes re-deciding the same period)
	// without changing the answer, and the caller's slice is never mutated.
	less := func(i, j int) bool { return periods[i].Less(periods[j]) }
	sorted := make([]ratio.Rat, len(periods))
	copy(sorted, periods)
	periods = sorted
	if !sort.SliceIsSorted(periods, less) {
		sort.Slice(periods, less)
	}
	uniq := periods[:1]
	for _, tau := range periods[1:] {
		if !tau.Equal(uniq[len(uniq)-1]) {
			uniq = append(uniq, tau)
		}
	}
	periods = uniq
	a, err := CompileAnalysis(g, task, p)
	if err != nil {
		return SweepPoint{}, err
	}
	cache := opts.cache(g, task, p)
	bud := budget.At(opts.Context, opts.Deadline)
	computed := make([]*SweepPoint, len(periods))
	probe := func(i int) (bool, error) {
		if err := bud.Err(); err != nil {
			return false, err
		}
		tau := periods[i]
		if cache != nil {
			// Probe combines the exact and dominance lookups under one
			// counter update, so hits + misses equals the probe count.
			if v, _, hit := cache.Probe(tau); hit {
				return v.Valid, nil
			}
		}
		res, err := a.At(tau)
		if err != nil {
			return false, fmt.Errorf("capacity: period %v: %w", tau, err)
		}
		pt := SweepPoint{Period: tau, Valid: res.Valid, Total: res.TotalCapacity(), Result: res}
		computed[i] = &pt
		if cache != nil {
			cache.Insert(tau, probecache.Verdict{Valid: pt.Valid, Total: pt.Total})
		}
		return pt.Valid, nil
	}
	// Invariant: every candidate below lo is infeasible, every candidate
	// at or beyond hi is feasible (by monotonicity once probed).
	lo, hi := 0, len(periods)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		valid, err := probe(mid)
		if err != nil {
			return SweepPoint{}, err
		}
		if valid {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(periods) {
		return SweepPoint{}, fmt.Errorf("capacity: no feasible period among %d candidates (fastest %v, slowest %v)",
			len(periods), periods[0], periods[len(periods)-1])
	}
	if pt := computed[lo]; pt != nil {
		return *pt, nil
	}
	// The winning probe was answered by the cache; materialise the full
	// analysis for it once.
	res, err := a.At(periods[lo])
	if err != nil {
		return SweepPoint{}, fmt.Errorf("capacity: period %v: %w", periods[lo], err)
	}
	return SweepPoint{Period: periods[lo], Valid: res.Valid, Total: res.TotalCapacity(), Result: res}, nil
}
