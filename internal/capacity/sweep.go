package capacity

import (
	"context"
	"fmt"
	"sort"
	"time"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/parallel"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

// SweepPoint is one point of a throughput/buffer trade-off curve: the
// period analysed, whether the chain is feasible at that period, and the
// resulting total capacity.
type SweepPoint struct {
	// Period is the analysed strict period of the constrained task.
	Period ratio.Rat
	// Valid reports whether every schedule check passed at this period.
	Valid bool
	// Total is the summed buffer capacity (meaningful when Valid).
	Total int64
	// Result is the full analysis at this period.
	Result *Result
}

// SweepOptions tunes SweepPeriodsOpt.
type SweepOptions struct {
	// Workers bounds the number of periods analysed concurrently: 0
	// selects GOMAXPROCS, 1 forces the serial path. Every period is an
	// independent pure computation, so the results — ordering, values and
	// the error reported on a bad period — are identical for every
	// setting (see internal/parallel for the first-error contract).
	Workers int
	// Context, if non-nil, cancels the sweep cooperatively between
	// periods; the typed error satisfies budget.ErrCanceled.
	Context context.Context
	// Deadline, if non-zero, bounds the sweep in wall-clock time; the
	// typed error satisfies budget.ErrBudgetExceeded.
	Deadline time.Time
}

// SweepPeriods analyses the chain at every given period and returns the
// throughput/buffer trade-off curve — the design-space exploration that
// Stuijk et al. ([11] in the paper) perform for constant-rate SDF graphs,
// here available for data-dependent chains. Tighter periods need larger
// buffers; periods below a task's response-time limit are reported
// infeasible rather than skipped. Periods are evaluated concurrently
// (bounded by GOMAXPROCS); use SweepPeriodsOpt to control the worker
// count.
func SweepPeriods(g *taskgraph.Graph, task string, periods []ratio.Rat, p Policy) ([]SweepPoint, error) {
	return SweepPeriodsOpt(g, task, periods, p, SweepOptions{})
}

// SweepPeriodsOpt is SweepPeriods with explicit options.
func SweepPeriodsOpt(g *taskgraph.Graph, task string, periods []ratio.Rat, p Policy, opts SweepOptions) ([]SweepPoint, error) {
	if len(periods) == 0 {
		return nil, fmt.Errorf("capacity: empty period sweep")
	}
	bud := budget.At(opts.Context, opts.Deadline)
	eval := func(i int) (SweepPoint, error) {
		if err := bud.Err(); err != nil {
			return SweepPoint{}, err
		}
		tau := periods[i]
		res, err := Compute(g, taskgraph.Constraint{Task: task, Period: tau}, p)
		if err != nil {
			return SweepPoint{}, fmt.Errorf("capacity: period %v: %w", tau, err)
		}
		return SweepPoint{
			Period: tau,
			Valid:  res.Valid,
			Total:  res.TotalCapacity(),
			Result: res,
		}, nil
	}
	if parallel.Workers(opts.Workers) == 1 {
		out := make([]SweepPoint, 0, len(periods))
		for i := range periods {
			pt, err := eval(i)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
		return out, nil
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	pts, err := parallel.Map(ctx, opts.Workers, len(periods), eval)
	if err != nil {
		return nil, budget.Classify(err)
	}
	return pts, nil
}

// MinimalFeasiblePeriod returns the smallest candidate period at which the
// chain is feasible, or an error if none is. The candidate list is expected
// in ascending order; a list that is not ascending is sorted into a copy
// first, so the returned point is the true minimum regardless of input
// order (an unsorted list used to silently return the first feasible — not
// the minimal — period).
func MinimalFeasiblePeriod(g *taskgraph.Graph, task string, periods []ratio.Rat, p Policy) (SweepPoint, error) {
	if len(periods) == 0 {
		return SweepPoint{}, fmt.Errorf("capacity: empty period sweep")
	}
	less := func(i, j int) bool { return periods[i].Less(periods[j]) }
	if !sort.SliceIsSorted(periods, less) {
		sorted := make([]ratio.Rat, len(periods))
		copy(sorted, periods)
		periods = sorted
		sort.Slice(periods, less)
	}
	pts, err := SweepPeriods(g, task, periods, p)
	if err != nil {
		return SweepPoint{}, err
	}
	for _, pt := range pts {
		if pt.Valid {
			return pt, nil
		}
	}
	return SweepPoint{}, fmt.Errorf("capacity: no feasible period among %d candidates (fastest %v, slowest %v)",
		len(periods), periods[0], periods[len(periods)-1])
}
