package capacity

import (
	"fmt"

	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

// SweepPoint is one point of a throughput/buffer trade-off curve: the
// period analysed, whether the chain is feasible at that period, and the
// resulting total capacity.
type SweepPoint struct {
	// Period is the analysed strict period of the constrained task.
	Period ratio.Rat
	// Valid reports whether every schedule check passed at this period.
	Valid bool
	// Total is the summed buffer capacity (meaningful when Valid).
	Total int64
	// Result is the full analysis at this period.
	Result *Result
}

// SweepPeriods analyses the chain at every given period and returns the
// throughput/buffer trade-off curve — the design-space exploration that
// Stuijk et al. ([11] in the paper) perform for constant-rate SDF graphs,
// here available for data-dependent chains. Tighter periods need larger
// buffers; periods below a task's response-time limit are reported
// infeasible rather than skipped.
func SweepPeriods(g *taskgraph.Graph, task string, periods []ratio.Rat, p Policy) ([]SweepPoint, error) {
	if len(periods) == 0 {
		return nil, fmt.Errorf("capacity: empty period sweep")
	}
	out := make([]SweepPoint, 0, len(periods))
	for _, tau := range periods {
		res, err := Compute(g, taskgraph.Constraint{Task: task, Period: tau}, p)
		if err != nil {
			return nil, fmt.Errorf("capacity: period %v: %w", tau, err)
		}
		out = append(out, SweepPoint{
			Period: tau,
			Valid:  res.Valid,
			Total:  res.TotalCapacity(),
			Result: res,
		})
	}
	return out, nil
}

// MinimalFeasiblePeriod returns the smallest period in the (ascending)
// candidate list at which the chain is feasible, or an error if none is.
func MinimalFeasiblePeriod(g *taskgraph.Graph, task string, periods []ratio.Rat, p Policy) (SweepPoint, error) {
	pts, err := SweepPeriods(g, task, periods, p)
	if err != nil {
		return SweepPoint{}, err
	}
	for _, pt := range pts {
		if pt.Valid {
			return pt, nil
		}
	}
	return SweepPoint{}, fmt.Errorf("capacity: no feasible period among %d candidates (fastest %v, slowest %v)",
		len(periods), periods[0], periods[len(periods)-1])
}
