// Package capacity implements the buffer-capacity computation of Wiggers et
// al. (DATE 2008), §4: sufficient buffer capacities for throughput
// constrained chains of tasks with data-dependent transfer quanta.
//
// The computation decomposes a chain into producer–consumer pairs (§4.3).
// For each pair it derives the rate μ of the linear token-transfer bounds
// from the minimal start distance φ of the consuming (sink-constrained,
// §4.2) or producing (source-constrained, §4.4) task, evaluates the bound
// distances of Equations (1)–(3) and converts them into a sufficient number
// of initial tokens on the space edge with Equation (4). That number is the
// buffer capacity in containers.
//
// Three policies are offered:
//
//   - PolicyEquation4 applies the paper's Equation (4) to every buffer.
//     On the MP3 application it yields (6015, 3263, 883); the paper reports
//     (6015, 3263, 882), an off-by-one on the constant-rate third buffer
//     only (see EXPERIMENTS.md for the exact-tie reading that explains it).
//   - PolicyBaseline applies the constant-rate technique the paper compares
//     against ([10, 14]); it requires every buffer to have constant quanta
//     and reproduces the published comparison row (5888, 3072, 882) exactly.
//   - PolicyHybrid is a refinement this library adds: per buffer, the
//     tighter of Equation (4) and — when both quanta sets are singletons,
//     where the gcd-granularity argument of [14] applies — the baseline.
package capacity

import (
	"fmt"

	"vrdfcap/internal/bounds"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

// Policy selects the capacity formula applied per buffer.
type Policy int

const (
	// PolicyEquation4 is the paper's contribution: Equation (4) on every
	// buffer, valid for data-dependent quanta.
	//
	// Known off-by-one versus the published table (DESIGN.md §2,
	// EXPERIMENTS.md): on the MP3 chain's fully constant SRC→DAC buffer a
	// faithful evaluation of Equation (4) yields d3 = 883 where the paper
	// reports 882 — the formula's +1 counts the exact-tie token that a
	// simultaneous produce/consume at the same instant would cover, which
	// exact-tie counting shows is not needed on that edge. d1 and d2
	// reproduce exactly; PolicyHybrid recovers 882.
	PolicyEquation4 Policy = iota
	// PolicyBaseline is the constant-rate comparator of [10, 14]:
	// capacity = (ρx+ρy)/μ + p + c − 2·gcd(p, c). It is only applicable
	// when both quanta sets of the buffer are singletons.
	PolicyBaseline
	// PolicyHybrid uses the tighter of Equation (4) and the baseline on
	// constant-rate buffers, and Equation (4) elsewhere.
	PolicyHybrid
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyEquation4:
		return "equation4"
	case PolicyBaseline:
		return "baseline"
	case PolicyHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts a policy name to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "equation4", "eq4", "vrdf":
		return PolicyEquation4, nil
	case "baseline", "sdf":
		return PolicyBaseline, nil
	case "hybrid", "paper":
		return PolicyHybrid, nil
	}
	return 0, fmt.Errorf("capacity: unknown policy %q", s)
}

// Direction tells which end of the chain carries the throughput constraint.
type Direction int

const (
	// SinkConstrained means the task without output buffers must execute
	// strictly periodically (§4.2, §4.3): rates propagate upstream, the
	// producer of every buffer needs a minimum production rate matching
	// the consumer's maximum consumption rate.
	SinkConstrained Direction = iota
	// SourceConstrained means the task without input buffers must
	// execute strictly periodically (§4.4): rates propagate downstream,
	// production is maximised and consumption minimised.
	SourceConstrained
)

// String returns the direction name.
func (d Direction) String() string {
	if d == SourceConstrained {
		return "source-constrained"
	}
	return "sink-constrained"
}

// TaskCheck records the schedule-validity condition for one task: its
// worst-case response time must not exceed its minimal start distance φ.
// For the producer of a sink-constrained buffer this is the paper's
// ρ(va) ≤ π̌(e_ab)·τ/γ̂(e_ab); for the throughput-determining task it is
// ρ(vτ) ≤ τ.
type TaskCheck struct {
	Task string
	// Rho is the task's worst-case response time.
	Rho ratio.Rat
	// Phi is the minimal required difference between subsequent starts.
	Phi ratio.Rat
	// OK reports Rho ≤ Phi.
	OK bool
}

// BufferResult is the per-buffer outcome of the computation.
type BufferResult struct {
	// Buffer, Producer and Consumer identify the buffer.
	Buffer   string
	Producer string
	Consumer string
	// Mu is the rate of the transfer bounds on this buffer, in time per
	// container.
	Mu ratio.Rat
	// RhoProd and RhoCons are the response times of the producing and
	// consuming tasks.
	RhoProd, RhoCons ratio.Rat
	// ProdMax and ConsMax are the maximum transfer quanta π̂ and γ̂ of
	// the buffer.
	ProdMax, ConsMax int64
	// Distances holds Equations (1)–(3) for the pair.
	Distances bounds.PairDistances
	// CapacityEq4 is Equation (4)'s sufficient capacity.
	CapacityEq4 int64
	// ConstantRates reports whether both quanta sets are singletons, in
	// which case the baseline formula applies.
	ConstantRates bool
	// CapacityBaseline is the constant-rate capacity; valid only when
	// ConstantRates (otherwise zero).
	CapacityBaseline int64
	// Capacity is the capacity selected by the policy in force.
	Capacity int64
	// ContainerBytes echoes the buffer's container size (0 when
	// unspecified); MemoryBytes() = Capacity · ContainerBytes.
	ContainerBytes int64
}

// MemoryBytes returns the memory footprint of the selected capacity, or 0
// when the container size is unspecified.
func (br *BufferResult) MemoryBytes() int64 { return br.Capacity * br.ContainerBytes }

// Result is the outcome of Compute.
type Result struct {
	// Constraint echoes the throughput constraint analysed.
	Constraint taskgraph.Constraint
	// Direction tells whether the constraint sat on the sink or source.
	Direction Direction
	// Policy echoes the policy in force.
	Policy Policy
	// Phi maps every task to its minimal start distance. For the
	// constrained task φ = τ; it decreases (or stays) along the
	// propagation direction only if quanta demand it.
	Phi map[string]ratio.Rat
	// Checks holds the per-task schedule-validity conditions in chain
	// order (source to sink).
	Checks []TaskCheck
	// Buffers holds per-buffer results in chain order.
	Buffers []BufferResult
	// Valid reports whether every schedule check passed, i.e. whether
	// the computed capacities come with the paper's guarantee.
	Valid bool
	// Diagnostics collects human-readable explanations of failed checks.
	Diagnostics []string
}

// TotalCapacity returns the sum of the selected capacities, a common
// minimisation objective when comparing policies.
func (r *Result) TotalCapacity() int64 {
	var sum int64
	for _, b := range r.Buffers {
		sum += b.Capacity
	}
	return sum
}

// TotalMemoryBytes returns the summed memory footprint over the buffers
// whose container size is specified.
func (r *Result) TotalMemoryBytes() int64 {
	var sum int64
	for i := range r.Buffers {
		sum += r.Buffers[i].MemoryBytes()
	}
	return sum
}

// BufferByName returns the result for the named buffer, or nil.
func (r *Result) BufferByName(name string) *BufferResult {
	for i := range r.Buffers {
		if r.Buffers[i].Buffer == name {
			return &r.Buffers[i]
		}
	}
	return nil
}

// Compute derives sufficient buffer capacities for the chain graph g under
// throughput constraint c using policy p.
//
// The graph must be a valid chain and the constrained task must be its sink
// or its source. Compute never mutates g; use Sized to obtain a copy with
// the capacities filled in. Compute is the one-shot form of
// CompileAnalysis followed by At; callers probing many periods of the same
// graph should compile once instead.
func Compute(g *taskgraph.Graph, c taskgraph.Constraint, p Policy) (*Result, error) {
	if err := c.Validate(g); err != nil {
		return nil, err
	}
	a, err := CompileAnalysis(g, c.Task, p)
	if err != nil {
		return nil, err
	}
	return a.At(c.Period)
}

// propagatePhi fills res.Phi for every task per §4.3 (sink-constrained) or
// §4.4 (source-constrained).
func propagatePhi(res *Result, tasks []*taskgraph.Task, buffers []*taskgraph.Buffer) error {
	tau := res.Constraint.Period
	switch res.Direction {
	case SinkConstrained:
		res.Phi[tasks[len(tasks)-1].Name] = tau
		// Walk upstream: φ(vx) = (φ(vy)/γ̂(e_xy)) · π̌(e_xy).
		for i := len(buffers) - 1; i >= 0; i-- {
			b := buffers[i]
			phiCons := res.Phi[b.Consumer]
			mu := phiCons.DivInt(b.Cons.Max())
			prodMin := b.Prod.Min()
			if prodMin == 0 {
				res.Valid = false
				res.Diagnostics = append(res.Diagnostics, fmt.Sprintf(
					"buffer %s: production quantum 0 is not allowed under a sink constraint (the producer's required rate would be unbounded); only consumption quanta may contain 0",
					b.DefaultName()))
				// φ would be 0; keep a positive placeholder equal to μ so
				// downstream arithmetic stays well-defined while the
				// result is already marked invalid.
				res.Phi[b.Producer] = mu
				continue
			}
			res.Phi[b.Producer] = mu.MulInt(prodMin)
		}
	case SourceConstrained:
		res.Phi[tasks[0].Name] = tau
		// Walk downstream: φ(vy) = (φ(vx)/π̂(e_xy)) · γ̌(e_xy).
		for _, b := range buffers {
			phiProd := res.Phi[b.Producer]
			mu := phiProd.DivInt(b.Prod.Max())
			consMin := b.Cons.Min()
			if consMin == 0 {
				res.Valid = false
				res.Diagnostics = append(res.Diagnostics, fmt.Sprintf(
					"buffer %s: consumption quantum 0 is not allowed under a source constraint (the consumer's required rate would be unbounded); only production quanta may contain 0",
					b.DefaultName()))
				res.Phi[b.Consumer] = mu
				continue
			}
			res.Phi[b.Consumer] = mu.MulInt(consMin)
		}
	}
	return nil
}

// runTaskChecks evaluates ρ(w) ≤ φ(w) for every task.
func runTaskChecks(res *Result, tasks []*taskgraph.Task) {
	for _, w := range tasks {
		phi := res.Phi[w.Name]
		ok := w.WCRT.LessEq(phi)
		res.Checks = append(res.Checks, TaskCheck{Task: w.Name, Rho: w.WCRT, Phi: phi, OK: ok})
		if !ok {
			res.Valid = false
			res.Diagnostics = append(res.Diagnostics, fmt.Sprintf(
				"task %s: worst-case response time %v exceeds the minimal start distance %v required by the throughput constraint; no valid schedule exists",
				w.Name, w.WCRT, phi))
		}
	}
}

// computeBuffer evaluates Equations (1)–(4) and the baseline for one
// buffer; prodTask and consTask are the resolved producing and consuming
// tasks (hoisted to compile time by CompileAnalysis).
func computeBuffer(res *Result, b *taskgraph.Buffer, prodTask, consTask *taskgraph.Task, p Policy) (BufferResult, error) {
	var mu ratio.Rat
	if res.Direction == SinkConstrained {
		mu = res.Phi[b.Consumer].DivInt(b.Cons.Max())
	} else {
		mu = res.Phi[b.Producer].DivInt(b.Prod.Max())
	}
	dist, err := bounds.Distances(mu, prodTask.WCRT, consTask.WCRT, b.Prod.Max(), b.Cons.Max())
	if err != nil {
		return BufferResult{}, fmt.Errorf("capacity: buffer %s: %w", b.DefaultName(), err)
	}
	br := BufferResult{
		Buffer:         b.DefaultName(),
		Producer:       b.Producer,
		Consumer:       b.Consumer,
		Mu:             mu,
		RhoProd:        prodTask.WCRT,
		RhoCons:        consTask.WCRT,
		ProdMax:        b.Prod.Max(),
		ConsMax:        b.Cons.Max(),
		Distances:      dist,
		CapacityEq4:    dist.SufficientTokens(),
		ConstantRates:  b.Prod.IsConstant() && b.Cons.IsConstant(),
		ContainerBytes: b.ContainerBytes,
	}
	if br.ConstantRates {
		br.CapacityBaseline = baselineCapacity(mu, prodTask.WCRT, consTask.WCRT, b.Prod.Max(), b.Cons.Max())
	}
	switch p {
	case PolicyEquation4:
		br.Capacity = br.CapacityEq4
	case PolicyBaseline:
		if !br.ConstantRates {
			return BufferResult{}, fmt.Errorf(
				"capacity: buffer %s has variable quanta (ξ=%v, λ=%v); the baseline technique requires constant rates — this is precisely the limitation the paper lifts",
				b.DefaultName(), b.Prod, b.Cons)
		}
		br.Capacity = br.CapacityBaseline
	case PolicyHybrid:
		br.Capacity = br.CapacityEq4
		if br.ConstantRates && br.CapacityBaseline < br.Capacity {
			br.Capacity = br.CapacityBaseline
		}
	default:
		return BufferResult{}, fmt.Errorf("capacity: unknown policy %v", p)
	}
	return br, nil
}

// baselineCapacity is the constant-rate comparator of [10, 14]:
//
//	capacity = (ρx + ρy)/μ + p + c − 2·gcd(p, c)
//
// with the response-time term rounded up to a multiple of gcd(p, c) for
// sufficiency when it is not already one. With constant quanta, tokens
// effectively move in multiples of g = gcd(p, c), which tightens the
// variable-rate correction (p−1) + (c−1) + 1 of Equation (4) to
// (p−g) + (c−g). This reproduces the paper's published baseline numbers
// (5888, 3072, 882) exactly.
func baselineCapacity(mu, rhoProd, rhoCons ratio.Rat, p, c int64) int64 {
	g := ratio.GCD(p, c)
	resp := rhoProd.Add(rhoCons).Div(mu) // containers "in flight" due to response times
	units := resp.DivInt(g).Ceil()       // round up to whole gcd units
	return units*g + p + c - 2*g
}

// Sized returns a deep copy of g whose buffer capacities are set to the
// capacities selected in res.
func Sized(g *taskgraph.Graph, res *Result) (*taskgraph.Graph, error) {
	out := g.Clone()
	for _, br := range res.Buffers {
		b := out.BufferByName(br.Buffer)
		if b == nil {
			return nil, fmt.Errorf("capacity: result buffer %q not in graph", br.Buffer)
		}
		b.Capacity = br.Capacity
	}
	return out, nil
}

// WithConstantMaxRates returns a copy of g in which every quanta set is
// collapsed to the singleton holding its maximum. The paper uses this graph
// to obtain a lower bound on the required capacities with the traditional
// technique ("by assuming that n is constant and equals 960").
func WithConstantMaxRates(g *taskgraph.Graph) *taskgraph.Graph {
	out := g.Clone()
	for _, b := range out.Buffers() {
		b.Prod = taskgraph.MustQuanta(b.Prod.Max())
		b.Cons = taskgraph.MustQuanta(b.Cons.Max())
	}
	return out
}

// WithConstantMinRates returns a copy of g in which every quanta set is
// collapsed to the singleton holding its minimum (zeros are preserved only
// when the set is not reduced to {0}, in which case the minimum positive
// member is used). Useful for adversarial what-if analyses like the
// motivating example's "n equals two in every execution".
func WithConstantMinRates(g *taskgraph.Graph) *taskgraph.Graph {
	out := g.Clone()
	for _, b := range out.Buffers() {
		b.Prod = collapseMin(b.Prod)
		b.Cons = collapseMin(b.Cons)
	}
	return out
}

func collapseMin(q taskgraph.QuantaSet) taskgraph.QuantaSet {
	m := q.Min()
	if m == 0 {
		vs := q.Values()
		// The set is not {0}, so a positive member exists.
		for _, v := range vs {
			if v > 0 {
				m = v
				break
			}
		}
	}
	return taskgraph.MustQuanta(m)
}
