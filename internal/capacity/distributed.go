package capacity

import (
	"context"
	"fmt"

	"vrdfcap/internal/dispatch"
	"vrdfcap/internal/graphio"
	"vrdfcap/internal/probecache"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

// sweepDistributed runs SweepPeriodsOpt through the internal/dispatch
// coordinator: the graph is encoded once into the document every
// /v1/probe request carries, each worker URL becomes an HTTP prober, and
// the compiled analysis doubles as the coordinator's local fallback — so
// a period answered remotely and a period answered locally go through the
// same pure At(τ) function and the folded points match a local sweep
// exactly (with Result left nil; a remote worker cannot ship the full
// per-buffer analysis, and the curve needs only Period/Valid/Total).
func sweepDistributed(g *taskgraph.Graph, task string, periods []ratio.Rat, p Policy, a *Analysis, cache *probecache.Periods, opts SweepOptions) ([]SweepPoint, error) {
	// The document's constraint names the constrained task; its period is
	// a placeholder — every probe overrides it with the batch's periods.
	doc, err := graphio.Encode(g, &taskgraph.Constraint{Task: task, Period: periods[0]})
	if err != nil {
		return nil, fmt.Errorf("capacity: encode graph for workers: %w", err)
	}
	probers := make([]dispatch.Prober, 0, len(opts.Workers))
	for _, u := range opts.Workers {
		hp, err := dispatch.NewHTTPProber(u, p.String(), doc)
		if err != nil {
			return nil, err
		}
		probers = append(probers, hp)
	}
	local := func(ctx context.Context, tau ratio.Rat) (probecache.Verdict, error) {
		res, err := a.At(tau)
		if err != nil {
			return probecache.Verdict{}, fmt.Errorf("capacity: period %v: %w", tau, err)
		}
		return probecache.Verdict{Valid: res.Valid, Total: res.TotalCapacity()}, nil
	}
	vs, err := dispatch.Sweep(probers, local, periods, dispatch.Options{
		Context:  opts.Context,
		Deadline: opts.Deadline,
		Cache:    cache,
		Stats:    opts.DispatchStats,
	})
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, len(periods))
	for i, v := range vs {
		out[i] = SweepPoint{Period: periods[i], Valid: v.Valid, Total: v.Total}
	}
	return out, nil
}
