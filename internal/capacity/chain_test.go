package capacity

import (
	"testing"

	"vrdfcap/internal/mp3"
	"vrdfcap/internal/quanta"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
)

func TestAnchoredMP3Chain(t *testing.T) {
	g, c := mp3Graph(t)
	res, err := Compute(g, c, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := Anchored(res)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-computed accumulation (seconds):
	//   A1 = 0
	//   A2 = ρ(vBR) + μ1·(960−1)  = 32/625 + 959/40000 = 3007/40000
	//   A3 = A2 + ρ(vMP3) + μ2·(480−1) = 26197/240000
	//   O  = A3 + ρ(vSRC) + μ3·(1−1)   = 28597/240000
	want := []ratio.Rat{
		ratio.Zero,
		ratio.MustNew(3007, 40000),
		ratio.MustNew(26197, 240000),
	}
	if len(cs.Anchors) != 3 {
		t.Fatalf("anchors = %v", cs.Anchors)
	}
	for i, w := range want {
		if !cs.Anchors[i].Equal(w) {
			t.Errorf("anchor %d = %v, want %v", i, cs.Anchors[i], w)
		}
	}
	if w := ratio.MustNew(28597, 240000); !cs.SinkOffset.Equal(w) {
		t.Errorf("sink offset = %v, want %v", cs.SinkOffset, w)
	}
	if w := ratio.MustNew(28597, 240000).Add(ratio.MustNew(1, 44100)); !cs.LatencyBound.Equal(w) {
		t.Errorf("latency bound = %v, want %v", cs.LatencyBound, w)
	}
	// Anchors are increasing and the lines were shifted consistently.
	for i := range cs.Lines {
		if !cs.Lines[i].DataUpper.Offset.Equal(cs.Anchors[i].Add(res.Buffers[i].RhoProd)) {
			t.Errorf("pair %d DataUpper offset = %v", i, cs.Lines[i].DataUpper.Offset)
		}
	}
}

func TestAnchoredOffsetVerifiesDirectly(t *testing.T) {
	// The analytic sink offset is a working offset for the strictly
	// periodic schedule: the simulator confirms on the first attempt.
	if testing.Short() {
		t.Skip("simulation horizon too long for -short")
	}
	g, c := mp3Graph(t)
	res, err := Compute(g, c, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := Anchored(res)
	if err != nil {
		t.Fatal(err)
	}
	sized, err := Sized(g, res)
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range []quanta.Sequence{
		quanta.Uniform(mp3.FrameSizes(), 77),
		quanta.MinOf(mp3.FrameSizes()),
		quanta.AlternateMinMax(mp3.FrameSizes()),
	} {
		v, err := sim.VerifyThroughput(sized, c, sim.VerifyOptions{
			Firings:   2205,
			Workloads: sim.Workloads{mp3.BufferNames()[0]: {Cons: seq}},
			Offsets:   []ratio.Rat{cs.SinkOffset},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !v.OK {
			t.Fatalf("analytic offset failed: %s", v.Reason)
		}
		if v.Attempts != 1 {
			t.Errorf("analytic offset needed %d attempts, want 1", v.Attempts)
		}
		if !v.Offset.Equal(cs.SinkOffset) {
			t.Errorf("verified offset %v, want analytic %v", v.Offset, cs.SinkOffset)
		}
	}
}

func TestAnchoredPairMatchesFigure3Anchoring(t *testing.T) {
	// For a pair the chain anchoring reduces to the pair anchoring.
	g, err := taskgraph.Pair("wa", r(1, 1), "wb", r(1, 1),
		taskgraph.MustQuanta(3), taskgraph.MustQuanta(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compute(g, taskgraph.Constraint{Task: "wb", Period: r(3, 1)}, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := Anchored(res)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.SinkOffset.Equal(r(3, 1)) {
		t.Errorf("sink offset = %v, want 3", cs.SinkOffset)
	}
	if !cs.LatencyBound.Equal(r(4, 1)) {
		t.Errorf("latency bound = %v, want 4", cs.LatencyBound)
	}
	if !cs.Anchors[0].IsZero() {
		t.Errorf("pair anchor = %v, want 0", cs.Anchors[0])
	}
}

func TestAnchoredRejectsUnsupported(t *testing.T) {
	// Source-constrained analyses have nothing to anchor.
	g, err := taskgraph.Pair("wa", r(1, 100), "wb", r(1, 100),
		taskgraph.MustQuanta(2, 3), taskgraph.MustQuanta(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compute(g, taskgraph.Constraint{Task: "wa", Period: r(1, 1)}, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Anchored(res); err == nil {
		t.Error("source-constrained anchoring accepted")
	}
	// Invalid analyses cannot be anchored either.
	slow, err := taskgraph.Pair("wa", r(10, 1), "wb", r(1, 1),
		taskgraph.MustQuanta(3), taskgraph.MustQuanta(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Compute(slow, taskgraph.Constraint{Task: "wb", Period: r(3, 1)}, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Anchored(bad); err == nil {
		t.Error("infeasible anchoring accepted")
	}
}

func TestLatencyBoundObservedInSimulation(t *testing.T) {
	// The first sink start in any admissible execution happens no later
	// than the anchored sink offset.
	g, c := mp3Graph(t)
	res, err := Compute(g, c, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := Anchored(res)
	if err != nil {
		t.Fatal(err)
	}
	sized, err := Sized(g, res)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _, err := sim.TaskGraphConfig(sized, sim.Workloads{
		mp3.BufferNames()[0]: {Cons: quanta.MinOf(mp3.FrameSizes())},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stop = sim.Stop{Actor: mp3.TaskDAC, Firings: 10}
	cfg.RecordStarts = []string{mp3.TaskDAC}
	cfg.ExtraTimes = []ratio.Rat{cs.SinkOffset}
	run, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run.Outcome != sim.Completed {
		t.Fatalf("outcome %v", run.Outcome)
	}
	first := run.Base.Rat(run.Starts[mp3.TaskDAC][0])
	if cs.SinkOffset.Less(first) {
		t.Errorf("first sink start %v later than anchored offset %v", first, cs.SinkOffset)
	}
}
