package capacity

import (
	"vrdfcap/internal/bounds"
	"vrdfcap/internal/ratio"
)

// PairLines holds the concrete, time-anchored linear bounds of one
// producer–consumer pair, in the anchoring where the producer's first
// firing is enabled at time 0 — Figures 3 and 4 of the paper drawn as
// equations. All four lines share the rate μ.
type PairLines struct {
	// DataUpper is α̂p(e_ab): the upper bound on the producer's token
	// production times on the data edge. Anchored so the producer's
	// first production (token 1) happens by ρ(producer).
	DataUpper bounds.Line
	// DataLower is α̌c(e_ab): the lower bound on the consumer's token
	// consumption times on the data edge. With the minimal sufficient
	// capacity the bounds touch: DataLower == DataUpper.
	DataLower bounds.Line
	// SpaceLower is α̌c(e_ba): the lower bound on the producer's space
	// consumption times; its first firing consumes up to π̂ containers
	// at time 0, so the binding token π̂ sits at 0.
	SpaceLower bounds.Line
	// SpaceUpper is α̂p(e_ba): SpaceLower shifted up by Equation (3);
	// the consumer's space productions stay below it.
	SpaceUpper bounds.Line
	// ConsumerOffset is the start time of the consumer's strictly
	// periodic schedule in this anchoring: the consumption lower bound
	// evaluated at its first firing's binding token γ̂.
	ConsumerOffset ratio.Rat
}

// AnchoredLines materialises the pair's bound lines in the anchoring where
// the producing task's first firing starts at time 0. For the first buffer
// of a chain this is the natural absolute anchoring; for downstream buffers
// shift every offset by the upstream accumulation as needed.
func (br *BufferResult) AnchoredLines() PairLines {
	mu := br.Mu
	dataUpper := bounds.Line{Offset: br.RhoProd, Mu: mu}
	spaceLower := bounds.Line{Offset: mu.MulInt(br.ProdMax - 1).Neg(), Mu: mu}
	spaceUpper := spaceLower.Shift(br.Distances.SpaceGap)
	return PairLines{
		DataUpper:      dataUpper,
		DataLower:      dataUpper,
		SpaceLower:     spaceLower,
		SpaceUpper:     spaceUpper,
		ConsumerOffset: dataUpper.At(br.ConsMax),
	}
}
