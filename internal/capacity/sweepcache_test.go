package capacity

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/graphgen"
	"vrdfcap/internal/probecache"
	"vrdfcap/internal/ratio"
)

// countdownCtx is a context whose Err trips after a fixed number of budget
// checks, so a sweep can be canceled deterministically mid-flight — after
// some periods have been analysed and recorded, but before all of them.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(n)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func (c *countdownCtx) Done() <-chan struct{} {
	// The sweep's budget checks use Err, not Done; an always-open channel
	// keeps parallel.Map's select from racing ahead of the countdown.
	return nil
}

// TestSweepCanceledWarmCacheReusable is the satellite contract: verdicts
// recorded by a sweep that was canceled mid-flight stay reusable and
// correct — a later sweep and minimal-period search against the same cache
// return exactly what a cold run returns.
func TestSweepCanceledWarmCacheReusable(t *testing.T) {
	g := sweepPair(t)
	periods := sweepPeriodList()
	cache := probecache.NewPeriods()

	_, err := SweepPeriodsOpt(g, "wb", periods, PolicyEquation4,
		SweepOptions{Parallel: 1, Context: newCountdownCtx(17), Cache: cache})
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	warmed := cache.Len()
	if warmed == 0 || warmed >= len(periods) {
		t.Fatalf("canceled sweep recorded %d verdicts, want a strict mid-flight subset of %d", warmed, len(periods))
	}

	// The partially warmed cache must not perturb a full re-sweep.
	cold, err := SweepPeriodsOpt(g, "wb", periods, PolicyEquation4, SweepOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := SweepPeriodsOpt(g, "wb", periods, PolicyEquation4, SweepOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold {
		if cold[i].Valid != warm[i].Valid || cold[i].Total != warm[i].Total {
			t.Errorf("point %d diverged after cancel+resume: %+v vs %+v", i, cold[i], warm[i])
		}
	}

	// And the minimal-period search over the warm cache agrees with the
	// cold ground truth.
	wantPt, err := MinimalFeasiblePeriodOpt(g, "wb", periods, PolicyEquation4, SweepOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	gotPt, err := MinimalFeasiblePeriodOpt(g, "wb", periods, PolicyEquation4, SweepOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !gotPt.Period.Equal(wantPt.Period) || gotPt.Total != wantPt.Total {
		t.Errorf("warm minimal period = (%v, %d), want (%v, %d)",
			gotPt.Period, gotPt.Total, wantPt.Period, wantPt.Total)
	}
}

// TestMinimalFeasiblePeriodReusesSweepVerdicts is the bugfix contract:
// after a SweepPeriods over the candidates, MinimalFeasiblePeriod on the
// same shared cache answers every probe from recorded verdicts instead of
// re-analysing them.
func TestMinimalFeasiblePeriodReusesSweepVerdicts(t *testing.T) {
	g := sweepPair(t)
	periods := sweepPeriodList()
	cache := probecache.NewPeriods()
	if _, err := SweepPeriodsOpt(g, "wb", periods, PolicyEquation4, SweepOptions{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	_, missesBefore := cache.Counters()
	pt, err := MinimalFeasiblePeriodOpt(g, "wb", periods, PolicyEquation4, SweepOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := cache.Counters()
	if misses != missesBefore {
		t.Errorf("minimal-period search re-analysed %d already-swept periods", misses-missesBefore)
	}
	if hits == 0 {
		t.Error("minimal-period search hit the cache zero times")
	}
	want, err := MinimalFeasiblePeriodOpt(g, "wb", periods, PolicyEquation4, SweepOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Period.Equal(want.Period) || pt.Total != want.Total || pt.Valid != want.Valid {
		t.Errorf("cached search returned (%v, %d), want (%v, %d)", pt.Period, pt.Total, want.Period, want.Total)
	}
	if pt.Result == nil || pt.Result.TotalCapacity() != pt.Total {
		t.Error("cached search returned no materialised Result")
	}
}

// TestMinimalFeasiblePeriodSharedDefault pins the zero-plumbing path: with
// default options, SweepPeriods and MinimalFeasiblePeriod share the
// process-wide store keyed by SweepKey, so the search after a sweep is
// pure cache hits.
func TestMinimalFeasiblePeriodSharedDefault(t *testing.T) {
	g := sweepPair(t)
	// A fresh period axis avoids interference from other tests' sweeps of
	// the same fingerprint within this process.
	var periods []ratio.Rat
	for i := int64(1); i <= 32; i++ {
		periods = append(periods, r(i*7, 13))
	}
	if _, err := SweepPeriods(g, "wb", periods, PolicyEquation4); err != nil {
		t.Fatal(err)
	}
	entry := probecache.Shared().Entry(SweepKey(g, "wb", PolicyEquation4))
	_, missesBefore := entry.Periods().Counters()
	pt, err := MinimalFeasiblePeriod(g, "wb", periods, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := entry.Periods().Counters(); misses != missesBefore {
		t.Errorf("default-path search re-analysed %d periods after a sweep", misses-missesBefore)
	}
	want, err := MinimalFeasiblePeriodOpt(g, "wb", periods, PolicyEquation4, SweepOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Period.Equal(want.Period) || pt.Total != want.Total {
		t.Errorf("shared-cache search = (%v, %d), want (%v, %d)", pt.Period, pt.Total, want.Period, want.Total)
	}
}

// TestMinimalFeasiblePeriodMatchesLinearScan cross-checks the binary
// search against the exhaustive scan on seeded random chains, cached and
// uncached.
func TestMinimalFeasiblePeriodMatchesLinearScan(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		cfg := graphgen.Defaults(seed + 40)
		g, c, err := graphgen.Random(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var periods []ratio.Rat
		for k := int64(2); k < 18; k++ {
			periods = append(periods, c.Period.MulInt(k).DivInt(8))
		}
		pts, err := SweepPeriodsOpt(g, c.Task, periods, PolicyEquation4, SweepOptions{NoCache: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var want *SweepPoint
		for i := range pts {
			if pts[i].Valid {
				want = &pts[i]
				break
			}
		}
		for _, opts := range []SweepOptions{{NoCache: true}, {Cache: probecache.NewPeriods()}} {
			got, err := MinimalFeasiblePeriodOpt(g, c.Task, periods, PolicyEquation4, opts)
			if want == nil {
				if err == nil {
					t.Fatalf("seed %d: no candidate is feasible but search returned %v", seed, got.Period)
				}
				continue
			}
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !got.Period.Equal(want.Period) || got.Total != want.Total {
				t.Fatalf("seed %d: binary search = (%v, %d), linear scan = (%v, %d)",
					seed, got.Period, got.Total, want.Period, want.Total)
			}
		}
	}
}

// TestSweepHealsPoisonedCache pins the advisory-cache contract: a wrong
// verdict planted in the cache cannot change a sweep's points (each point
// is recomputed) and is overwritten by the fresh verdict.
func TestSweepHealsPoisonedCache(t *testing.T) {
	g := sweepPair(t)
	periods := sweepPeriodList()
	cache := probecache.NewPeriods()
	poisoned := periods[10]
	cache.Insert(poisoned, probecache.Verdict{Valid: false, Total: -1})

	pts, err := SweepPeriodsOpt(g, "wb", periods, PolicyEquation4, SweepOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := SweepPeriodsOpt(g, "wb", periods, PolicyEquation4, SweepOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold {
		if cold[i].Valid != pts[i].Valid || cold[i].Total != pts[i].Total {
			t.Errorf("point %d poisoned: %+v vs %+v", i, pts[i], cold[i])
		}
	}
	if v, ok := cache.Lookup(poisoned); !ok || v.Total == -1 {
		t.Errorf("poisoned verdict not healed: %+v, %v", v, ok)
	}
}
