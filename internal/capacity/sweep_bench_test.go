package capacity

import (
	"testing"

	"vrdfcap/internal/graphgen"
	"vrdfcap/internal/ratio"
)

// benchmarkSweep sweeps 64 periods over a 40-stage chain; per-period
// analysis cost dominates the pool overhead, so the parallel variant
// approaches a GOMAXPROCS-fold speedup on multi-core runners.
func benchmarkSweep(b *testing.B, workers int) {
	cfg := graphgen.Defaults(7)
	cfg.MinTasks, cfg.MaxTasks = 40, 40
	g, c, err := graphgen.Random(cfg)
	if err != nil {
		b.Fatal(err)
	}
	periods := make([]ratio.Rat, 64)
	for k := range periods {
		// τ·(k+20)/20: starts at the constraint period (feasible by
		// construction) and relaxes additively from there.
		periods[k] = c.Period.MulInt(int64(k + 20)).DivInt(20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := SweepPeriodsOpt(g, c.Task, periods, PolicyEquation4, SweepOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if !pts[0].Valid {
			b.Fatalf("constraint period %v reported infeasible", pts[0].Period)
		}
	}
}

func BenchmarkSweepSerial(b *testing.B)   { benchmarkSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchmarkSweep(b, 0) }
