package capacity

import (
	"testing"

	"vrdfcap/internal/graphgen"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

type sweepFixture struct {
	g    *taskgraph.Graph
	task string
}

func benchmarkSweepFixture(b *testing.B) (sweepFixture, []ratio.Rat) {
	cfg := graphgen.Defaults(7)
	cfg.MinTasks, cfg.MaxTasks = 40, 40
	g, c, err := graphgen.Random(cfg)
	if err != nil {
		b.Fatal(err)
	}
	periods := make([]ratio.Rat, 64)
	for k := range periods {
		// τ·(k+20)/20: starts at the constraint period (feasible by
		// construction) and relaxes additively from there.
		periods[k] = c.Period.MulInt(int64(k + 20)).DivInt(20)
	}
	return sweepFixture{g: g, task: c.Task}, periods
}

// benchmarkSweep sweeps 64 periods over a 40-stage chain; per-period
// analysis cost dominates the pool overhead, so the parallel variant
// approaches a GOMAXPROCS-fold speedup on multi-core runners. The sweep
// compiles the chain once (CompileAnalysis) and probes the compiled
// analysis per period; NoCache keeps the measurement free of cross-run
// verdict caching so allocs/op is deterministic for the CI bench gate.
func benchmarkSweep(b *testing.B, workers int) {
	fx, periods := benchmarkSweepFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := SweepPeriodsOpt(fx.g, fx.task, periods, PolicyEquation4,
			SweepOptions{Parallel: workers, NoCache: true})
		if err != nil {
			b.Fatal(err)
		}
		if !pts[0].Valid {
			b.Fatalf("constraint period %v reported infeasible", pts[0].Period)
		}
	}
}

// BenchmarkSweepPeriods is the serial design-space sweep the CI bench
// gate tracks for allocs/op regressions.
func BenchmarkSweepPeriods(b *testing.B)  { benchmarkSweep(b, 1) }
func BenchmarkSweepSerial(b *testing.B)   { benchmarkSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchmarkSweep(b, 0) }
