package capacity

import (
	"vrdfcap/internal/taskgraph"
)

// SearchBounds derives the conservative α̂/α̌ bounds a capacity search can
// use to decide probes without simulating (minimize.Bounds).
//
// The sufficient direction is the analysis itself: when the result is Valid,
// its per-buffer capacities come with the paper's throughput guarantee, so
// any assignment dominating them pointwise is feasible (monotonicity,
// Definition 1). An invalid result yields no sufficient map.
//
// The necessary direction comes from liveness at horizon one — reasoning
// that holds for any stop condition of at least one constrained-task firing:
//
//   - A producer's first firing needs space for its smallest production
//     quantum, and all of a buffer's capacity starts as space (data edges
//     start empty, §3.1). With capacity below π̌(b) the producer can never
//     fire.
//   - A consumer's firing needs tokens for its smallest consumption
//     quantum, and the data edge can never hold more than the capacity.
//     With capacity below γ̌(b) the consumer can never fire.
//
// Each rule applies only when the blocked task provably must fire for the
// constrained task to make progress. Sink-constrained, the sink's demand
// propagates upstream through buffer i exactly when every buffer k ≥ i
// downstream consumes a strictly positive minimum quantum — a γ̌ = 0 link
// lets the downstream side fire forever on empty buffers, so nothing
// upstream of it is forced. Source-constrained, only the source is forced,
// so only its output buffer's π̌ applies. Thresholds of 1 are omitted
// (capacities are positive already).
func SearchBounds(res *Result, g *taskgraph.Graph) (sufficient, necessary map[string]int64, err error) {
	_, buffers, err := g.Chain()
	if err != nil {
		return nil, nil, err
	}
	if res != nil && res.Valid {
		sufficient = make(map[string]int64, len(res.Buffers))
		for i := range res.Buffers {
			sufficient[res.Buffers[i].Buffer] = res.Buffers[i].Capacity
		}
	}
	if len(buffers) == 0 {
		return sufficient, nil, nil
	}
	sourceConstrained := res != nil && res.Direction == SourceConstrained
	necessary = make(map[string]int64)
	if sourceConstrained {
		if min := buffers[0].Prod.Min(); min > 1 {
			necessary[buffers[0].DefaultName()] = min
		}
		if len(necessary) == 0 {
			necessary = nil
		}
		return sufficient, necessary, nil
	}
	// allPos[i]: every buffer from i to the sink has γ̌ > 0, i.e. the
	// sink's demand forces the producer of buffer i to fire.
	allPos := make([]bool, len(buffers))
	pos := true
	for i := len(buffers) - 1; i >= 0; i-- {
		pos = pos && buffers[i].Cons.Min() > 0
		allPos[i] = pos
	}
	for i, b := range buffers {
		var min int64
		if allPos[i] {
			min = b.Prod.Min()
		}
		if i == len(buffers)-1 || allPos[i+1] {
			if c := b.Cons.Min(); c > min {
				min = c
			}
		}
		if min > 1 {
			necessary[b.DefaultName()] = min
		}
	}
	if len(necessary) == 0 {
		necessary = nil
	}
	return sufficient, necessary, nil
}
