package capacity

import (
	"fmt"

	"vrdfcap/internal/ratio"
)

// ChainSchedule is the chain-wide anchoring of the per-pair bound lines of
// a sink-constrained analysis: absolute time offsets for the schedule whose
// existence the analysis proves, with the source's first firing at time 0.
//
// The paper derives buffer capacities per producer–consumer pair (§4.3) and
// never needs absolute times. Materialising them is nevertheless useful: it
// yields a concrete start offset for the strictly periodic sink — an offset
// at which the throughput guarantee holds, without searching — and an
// end-to-end latency bound, both consequences the paper leaves implicit.
type ChainSchedule struct {
	// Anchors holds, per buffer in chain order, the start time of the
	// producing task's first firing in the anchored bound schedule
	// (Anchors[0] is 0: the source starts immediately).
	Anchors []ratio.Rat
	// Lines holds the pair bound lines shifted to the chain anchoring.
	Lines []PairLines
	// SinkOffset is the start time of the constrained sink's first
	// firing: starting the sink strictly periodically at SinkOffset is
	// guaranteed feasible with the computed capacities.
	SinkOffset ratio.Rat
	// LatencyBound bounds the time from the source's first start to the
	// finish of the sink's first firing: SinkOffset + ρ(sink).
	LatencyBound ratio.Rat
}

// Anchored computes the chain-wide schedule anchoring of a sink-constrained
// result. It fails for source-constrained analyses (where the source is
// pinned at time 0 by definition and no accumulation is needed) and for
// invalid results (no feasible schedule exists to anchor).
func Anchored(res *Result) (*ChainSchedule, error) {
	if res.Direction != SinkConstrained {
		return nil, fmt.Errorf("capacity: chain anchoring applies to sink-constrained analyses; the source of a %v chain starts at time 0 by definition", res.Direction)
	}
	if !res.Valid {
		return nil, fmt.Errorf("capacity: cannot anchor an infeasible analysis: %v", res.Diagnostics)
	}
	cs := &ChainSchedule{}
	anchor := ratio.Zero
	sinkRho := res.Checks[len(res.Checks)-1].Rho
	for i := range res.Buffers {
		br := &res.Buffers[i]
		lines := br.AnchoredLines()
		// Shift the pair's zero-anchored lines to the chain anchor.
		lines.DataUpper = lines.DataUpper.Shift(anchor)
		lines.DataLower = lines.DataLower.Shift(anchor)
		lines.SpaceLower = lines.SpaceLower.Shift(anchor)
		lines.SpaceUpper = lines.SpaceUpper.Shift(anchor)
		lines.ConsumerOffset = lines.ConsumerOffset.Add(anchor)
		cs.Anchors = append(cs.Anchors, anchor)
		cs.Lines = append(cs.Lines, lines)
		// The consumer of buffer i is the producer of buffer i+1: its
		// first start in the bound schedule anchors the next pair.
		anchor = lines.ConsumerOffset
	}
	cs.SinkOffset = anchor
	cs.LatencyBound = anchor.Add(sinkRho)
	return cs, nil
}

// Note on lines.DataLower.Shift: PairLines.DataUpper and DataLower are the
// same line in the minimal anchoring, so shifting both keeps them touching.
