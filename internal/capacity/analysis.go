package capacity

import (
	"fmt"

	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

// Analysis is a chain analysis compiled once and evaluated at many
// periods. Compiling validates the chain structure, fixes the propagation
// direction and resolves every per-buffer task reference, so that At pays
// only for the period-dependent arithmetic of §4.3/§4.4 and Equations
// (1)–(4) — the same compile-once/probe-many split sim.Compile gives the
// simulator. An Analysis never mutates the graph it was compiled from;
// mutating that graph after compiling invalidates the Analysis.
//
// At is a pure function of the period, so one Analysis may be shared by
// any number of goroutines — the parallel period sweep compiles once and
// probes from every worker.
type Analysis struct {
	task      string
	policy    Policy
	direction Direction
	tasks     []*taskgraph.Task   // chain order, source to sink
	buffers   []*taskgraph.Buffer // chain order
	prod      []*taskgraph.Task   // per buffer: producing task
	cons      []*taskgraph.Task   // per buffer: consuming task
}

// CompileAnalysis validates g as a chain with the constrained task at an
// endpoint and returns the reusable Analysis for probing periods under
// policy p.
func CompileAnalysis(g *taskgraph.Graph, task string, p Policy) (*Analysis, error) {
	if g.Task(task) == nil {
		return nil, fmt.Errorf("taskgraph: constraint on unknown task %q", task)
	}
	tasks, buffers, err := g.Chain()
	if err != nil {
		return nil, err
	}
	if task != tasks[0].Name && task != tasks[len(tasks)-1].Name {
		return nil, fmt.Errorf("taskgraph: constrained task %q must be the chain's source %q or sink %q",
			task, tasks[0].Name, tasks[len(tasks)-1].Name)
	}
	a := &Analysis{
		task:    task,
		policy:  p,
		tasks:   tasks,
		buffers: buffers,
		prod:    make([]*taskgraph.Task, len(buffers)),
		cons:    make([]*taskgraph.Task, len(buffers)),
	}
	if task == tasks[len(tasks)-1].Name {
		a.direction = SinkConstrained
	} else {
		a.direction = SourceConstrained
	}
	for i, b := range buffers {
		a.prod[i] = g.Task(b.Producer)
		a.cons[i] = g.Task(b.Consumer)
	}
	return a, nil
}

// Task returns the constrained task the analysis was compiled for.
func (a *Analysis) Task() string { return a.task }

// Policy returns the capacity policy in force.
func (a *Analysis) Policy() Policy { return a.policy }

// Direction returns the propagation direction fixed at compile time.
func (a *Analysis) Direction() Direction { return a.direction }

// At evaluates the compiled analysis at period tau. The Result is
// identical to Compute on the same graph, constraint and policy.
func (a *Analysis) At(tau ratio.Rat) (*Result, error) {
	if tau.Sign() <= 0 {
		return nil, fmt.Errorf("taskgraph: constraint period must be positive, got %v", tau)
	}
	res := &Result{
		Constraint: taskgraph.Constraint{Task: a.task, Period: tau},
		Direction:  a.direction,
		Policy:     a.policy,
		Phi:        make(map[string]ratio.Rat, len(a.tasks)),
		Valid:      true,
	}
	if err := propagatePhi(res, a.tasks, a.buffers); err != nil {
		return nil, err
	}
	runTaskChecks(res, a.tasks)
	res.Buffers = make([]BufferResult, 0, len(a.buffers))
	for i, b := range a.buffers {
		br, err := computeBuffer(res, b, a.prod[i], a.cons[i], a.policy)
		if err != nil {
			return nil, err
		}
		res.Buffers = append(res.Buffers, br)
	}
	return res, nil
}
