package capacity

import (
	"reflect"
	"testing"

	"vrdfcap/internal/mp3"
	"vrdfcap/internal/probecache"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

// TestSearchBoundsMP3 pins the α̂/α̌ bounds on the paper's §5 example: the
// sufficient side is the Equation-4 capacity vector, the necessary side is
// each buffer's largest forced first-firing quantum — the CD block on d1,
// the MP3 frame on d2 and the converter's output block on d3.
func TestSearchBoundsMP3(t *testing.T) {
	g, err := mp3.Graph()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compute(g, mp3.Constraint(), PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatal("MP3 analysis reported invalid")
	}
	sufficient, necessary, err := SearchBounds(res, g)
	if err != nil {
		t.Fatal(err)
	}
	names := mp3.BufferNames()
	wantNec := map[string]int64{
		names[0]: mp3.BlockBytes,
		names[1]: mp3.FrameSamples,
		names[2]: mp3.SRCOut,
	}
	if !reflect.DeepEqual(necessary, wantNec) {
		t.Errorf("necessary = %v, want %v", necessary, wantNec)
	}
	wantSuf := make(map[string]int64, len(res.Buffers))
	for i := range res.Buffers {
		wantSuf[res.Buffers[i].Buffer] = res.Buffers[i].Capacity
	}
	if !reflect.DeepEqual(sufficient, wantSuf) {
		t.Errorf("sufficient = %v, want the analysis capacities %v", sufficient, wantSuf)
	}
	for n, nec := range necessary {
		if suf := sufficient[n]; nec > suf {
			t.Errorf("buffer %s: necessary bound %d exceeds sufficient bound %d", n, nec, suf)
		}
	}
}

// TestSearchBoundsSourceConstrained pins the direction switch: with the
// constraint on the source, only the source is provably forced to fire, so
// only its output buffer's minimal production quantum is a necessary bound.
func TestSearchBoundsSourceConstrained(t *testing.T) {
	g, err := taskgraph.BuildChain(
		[]taskgraph.Stage{{Name: "src", WCRT: r(1, 1)}, {Name: "mid", WCRT: r(1, 1)}, {Name: "snk", WCRT: r(1, 1)}},
		[]taskgraph.Link{
			{Prod: taskgraph.MustQuanta(4), Cons: taskgraph.MustQuanta(2)},
			{Prod: taskgraph.MustQuanta(6), Cons: taskgraph.MustQuanta(3)},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compute(g, taskgraph.Constraint{Task: "src", Period: r(8, 1)}, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Direction != SourceConstrained {
		t.Fatalf("direction = %v, want source-constrained", res.Direction)
	}
	_, necessary, err := SearchBounds(res, g)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"src->mid": 4}
	if !reflect.DeepEqual(necessary, want) {
		t.Errorf("necessary = %v, want %v", necessary, want)
	}
}

// TestSearchBoundsZeroConsumption pins the propagation guard: a downstream
// link whose minimal consumption quantum is zero lets its consumer fire
// forever on an empty buffer, so the sink's demand forces nothing upstream
// of it and no necessary bound may be claimed there. A nil analysis result
// additionally yields no sufficient map.
func TestSearchBoundsZeroConsumption(t *testing.T) {
	g, err := taskgraph.BuildChain(
		[]taskgraph.Stage{{Name: "ta", WCRT: r(1, 1)}, {Name: "tb", WCRT: r(1, 1)}, {Name: "tc", WCRT: r(1, 1)}},
		[]taskgraph.Link{
			{Prod: taskgraph.MustQuanta(5), Cons: taskgraph.MustQuanta(3)},
			{Prod: taskgraph.MustQuanta(4), Cons: taskgraph.MustQuanta(0, 2)},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	sufficient, necessary, err := SearchBounds(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	if sufficient != nil {
		t.Errorf("sufficient = %v without a valid analysis, want nil", sufficient)
	}
	if necessary != nil {
		t.Errorf("necessary = %v, want nil: the zero-consumption link breaks upstream propagation", necessary)
	}
}

// TestMinimalFeasiblePeriodDedupesCandidates is the regression test for
// duplicate candidate periods: the binary search must probe as if the list
// were deduplicated, so a duplicate-heavy list issues exactly the probes of
// its unique form — counted via a private verdict cache — and never mutates
// the caller's slice.
func TestMinimalFeasiblePeriodDedupesCandidates(t *testing.T) {
	g := sweepPair(t)
	unique := []ratio.Rat{r(1, 4), r(1, 2), r(1, 1), r(3, 2), r(2, 1), r(4, 1)}
	heavy := make([]ratio.Rat, 0, 8*len(unique))
	for _, tau := range unique {
		for rep := 0; rep < 8; rep++ {
			heavy = append(heavy, tau)
		}
	}
	input := make([]ratio.Rat, len(heavy))
	copy(input, heavy)

	probes := func(periods []ratio.Rat) (SweepPoint, int64) {
		cache := probecache.NewPeriods()
		pt, err := MinimalFeasiblePeriodOpt(g, "wb", periods, PolicyEquation4, SweepOptions{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		hits, misses := cache.Counters()
		return pt, hits + misses
	}
	wantPt, wantProbes := probes(unique)
	gotPt, gotProbes := probes(heavy)
	if !gotPt.Period.Equal(wantPt.Period) || gotPt.Total != wantPt.Total {
		t.Errorf("duplicate-heavy list returned %v (total %d), want %v (total %d)",
			gotPt.Period, gotPt.Total, wantPt.Period, wantPt.Total)
	}
	if !gotPt.Period.Equal(r(1, 1)) {
		t.Errorf("minimal feasible period = %v, want 1", gotPt.Period)
	}
	if gotProbes != wantProbes {
		t.Errorf("duplicate-heavy list issued %d probes, the unique list %d; duplicates must not add probes",
			gotProbes, wantProbes)
	}
	if !reflect.DeepEqual(input, heavy) {
		t.Error("MinimalFeasiblePeriodOpt mutated the caller's candidate slice")
	}
}
