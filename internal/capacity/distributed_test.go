// End-to-end distributed-sweep tests: real serve.Server workers behind
// httptest listeners, driven through capacity.SweepOptions.Workers — the
// exact stack `vrdfcap -workers` uses. The external test package breaks
// the capacity ← serve import cycle.
package capacity_test

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"vrdfcap/internal/capacity"
	"vrdfcap/internal/dispatch"
	"vrdfcap/internal/graphio"
	"vrdfcap/internal/probecache"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/serve"
	"vrdfcap/internal/taskgraph"
)

// pairDoc is the paper's Figure 1 producer-consumer pair.
const pairDoc = `task a wcrt 1
task b wcrt 1
buffer a -> b prod 3 cons {2,3}
constraint b period 3
`

func decodePair(t *testing.T) (*taskgraph.Graph, *taskgraph.Constraint) {
	t.Helper()
	g, c, err := graphio.DecodeAnyLimited([]byte(pairDoc), graphio.DefaultLimits)
	if err != nil {
		t.Fatalf("decode pair: %v", err)
	}
	if c == nil {
		t.Fatal("pair document has no constraint")
	}
	return g, c
}

// pairGrid straddles the pair's feasibility frontier so a sweep mixes
// infeasible and feasible verdicts.
func pairGrid(n int) []ratio.Rat {
	out := make([]ratio.Rat, n)
	for i := range out {
		out[i] = ratio.MustNew(int64(i+4), 4) // 1, 5/4, ..., upward through 3
	}
	return out
}

// newWorker boots a real capacity-analysis service on a loopback listener
// and returns its base URL.
func newWorker(t *testing.T) string {
	t.Helper()
	s := serve.New(serve.Config{Store: probecache.NewStore("")})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts.URL
}

// mustMatchPoints compares two sweeps on the (period, valid, total)
// triples — the identity surface; distributed points carry a nil Result.
func mustMatchPoints(t *testing.T, got, want []capacity.SweepPoint) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d points, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if !w.Period.Equal(g.Period) || w.Valid != g.Valid || w.Total != g.Total {
			t.Fatalf("point %d: got (%s valid=%v total=%d), want (%s valid=%v total=%d)",
				i, g.Period, g.Valid, g.Total, w.Period, w.Valid, w.Total)
		}
	}
}

// TestDistributedSweepMatchesLocal pins the happy path over the real HTTP
// stack: three workers, every period answered remotely, result identical
// to the single-machine sweep.
func TestDistributedSweepMatchesLocal(t *testing.T) {
	g, c := decodePair(t)
	periods := pairGrid(24)
	baseline, err := capacity.SweepPeriodsOpt(g, c.Task, periods, capacity.PolicyEquation4,
		capacity.SweepOptions{Parallel: 1, NoCache: true})
	if err != nil {
		t.Fatalf("baseline sweep: %v", err)
	}
	workers := []string{newWorker(t), newWorker(t), newWorker(t)}
	stats := &dispatch.Stats{}
	got, err := capacity.SweepPeriodsOpt(g, c.Task, periods, capacity.PolicyEquation4,
		capacity.SweepOptions{Workers: workers, DispatchStats: stats, NoCache: true})
	if err != nil {
		t.Fatalf("distributed sweep: %v", err)
	}
	mustMatchPoints(t, got, baseline)
	for _, pt := range got {
		if pt.Result != nil {
			t.Fatal("distributed points must carry a nil Result")
		}
	}
	sn := stats.Snapshot()
	var remote int64
	for _, w := range sn.Workers {
		remote += w.Periods
	}
	if remote+sn.LocalPeriods != int64(len(periods)) {
		t.Fatalf("remote %d + local %d periods != grid %d\n%s", remote, sn.LocalPeriods, len(periods), sn)
	}
	if sn.LocalPeriods != 0 {
		t.Fatalf("healthy fleet fell back locally:\n%s", sn)
	}
}

// TestDistributedSweepWorkerKilledMidSweep pins the tentpole fault case
// over real HTTP: one of three workers answers exactly one probe batch and
// then drops every connection; the folded sweep must still equal the
// single-machine run.
func TestDistributedSweepWorkerKilledMidSweep(t *testing.T) {
	g, c := decodePair(t)
	periods := pairGrid(32)
	baseline, err := capacity.SweepPeriodsOpt(g, c.Task, periods, capacity.PolicyEquation4,
		capacity.SweepOptions{Parallel: 1, NoCache: true})
	if err != nil {
		t.Fatalf("baseline sweep: %v", err)
	}

	s := serve.New(serve.Config{Store: probecache.NewStore("")})
	t.Cleanup(s.Close)
	var killed atomic.Bool
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == dispatch.ProbePath {
			if killed.Load() {
				// The process is gone: every later probe fails hard.
				http.Error(w, "worker killed", http.StatusBadGateway)
				return
			}
			defer killed.Store(true)
		}
		s.ServeHTTP(w, r)
	}))
	t.Cleanup(dying.Close)

	workers := []string{newWorker(t), newWorker(t), dying.URL}
	stats := &dispatch.Stats{}
	got, err := capacity.SweepPeriodsOpt(g, c.Task, periods, capacity.PolicyEquation4,
		capacity.SweepOptions{Workers: workers, DispatchStats: stats, NoCache: true})
	if err != nil {
		t.Fatalf("distributed sweep with dying worker: %v", err)
	}
	mustMatchPoints(t, got, baseline)
}

// TestDistributedSweepAllWorkersDead pins graceful degradation over real
// sockets: every worker URL points at a closed listener (connection
// refused), and the sweep still returns the exact local result.
func TestDistributedSweepAllWorkersDead(t *testing.T) {
	g, c := decodePair(t)
	periods := pairGrid(12)
	baseline, err := capacity.SweepPeriodsOpt(g, c.Task, periods, capacity.PolicyEquation4,
		capacity.SweepOptions{Parallel: 1, NoCache: true})
	if err != nil {
		t.Fatalf("baseline sweep: %v", err)
	}
	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close() // nothing listens here any more
	stats := &dispatch.Stats{}
	got, err := capacity.SweepPeriodsOpt(g, c.Task, periods, capacity.PolicyEquation4,
		capacity.SweepOptions{Workers: []string{url}, DispatchStats: stats, NoCache: true})
	if err != nil {
		t.Fatalf("distributed sweep with dead fleet: %v", err)
	}
	mustMatchPoints(t, got, baseline)
	if sn := stats.Snapshot(); sn.LocalPeriods != int64(len(periods)) {
		t.Fatalf("dead fleet: local fallback computed %d periods, want all %d\n%s",
			sn.LocalPeriods, len(periods), sn)
	}
}

// TestDistributedSweepBadWorkerURL pins the fail-fast contract: a
// malformed worker URL is a configuration error, not a degraded sweep.
func TestDistributedSweepBadWorkerURL(t *testing.T) {
	g, c := decodePair(t)
	_, err := capacity.SweepPeriodsOpt(g, c.Task, pairGrid(4), capacity.PolicyEquation4,
		capacity.SweepOptions{Workers: []string{"ftp://nope"}, NoCache: true})
	if err == nil {
		t.Fatal("want an error for a non-http worker URL")
	}
}
