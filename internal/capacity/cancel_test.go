package capacity

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/ratio"
)

func noLeakedGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}

func sweepPeriodList() []ratio.Rat {
	out := make([]ratio.Rat, 0, 64)
	for i := int64(1); i <= 64; i++ {
		out = append(out, r(i, 4))
	}
	return out
}

func TestSweepCanceled(t *testing.T) {
	g := sweepPair(t)
	for _, workers := range []int{1, 0} {
		before := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := SweepPeriodsOpt(g, "wb", sweepPeriodList(), PolicyEquation4,
			SweepOptions{Parallel: workers, Context: ctx})
		if !errors.Is(err, budget.ErrCanceled) {
			t.Fatalf("workers=%d: err = %v, want ErrCanceled", workers, err)
		}
		noLeakedGoroutines(t, before)
	}
}

func TestSweepDeadlineExceeded(t *testing.T) {
	g := sweepPair(t)
	for _, workers := range []int{1, 0} {
		before := runtime.NumGoroutine()
		_, err := SweepPeriodsOpt(g, "wb", sweepPeriodList(), PolicyEquation4,
			SweepOptions{Parallel: workers, Deadline: time.Now().Add(-time.Second)})
		if !errors.Is(err, budget.ErrBudgetExceeded) {
			t.Fatalf("workers=%d: err = %v, want ErrBudgetExceeded", workers, err)
		}
		noLeakedGoroutines(t, before)
	}
}

// TestSweepBudgetedMatchesUnbudgeted pins that an unexpired budget does not
// perturb the curve.
func TestSweepBudgetedMatchesUnbudgeted(t *testing.T) {
	g := sweepPair(t)
	periods := sweepPeriodList()
	plain, err := SweepPeriods(g, "wb", periods, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := SweepPeriodsOpt(g, "wb", periods, PolicyEquation4,
		SweepOptions{Context: context.Background(), Deadline: time.Now().Add(time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i].Valid != budgeted[i].Valid || plain[i].Total != budgeted[i].Total {
			t.Errorf("point %d diverged: %+v vs %+v", i, plain[i], budgeted[i])
		}
	}
}
