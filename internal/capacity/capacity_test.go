package capacity

import (
	"strings"
	"testing"
	"testing/quick"

	"vrdfcap/internal/mp3"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

func r(n, d int64) ratio.Rat { return ratio.MustNew(n, d) }

// mp3Graph returns the Figure-5 application and its constraint.
func mp3Graph(t *testing.T) (*taskgraph.Graph, taskgraph.Constraint) {
	t.Helper()
	g, err := mp3.Graph()
	if err != nil {
		t.Fatal(err)
	}
	return g, mp3.Constraint()
}

func TestMP3PhiMatchesPaperResponseTimes(t *testing.T) {
	// §5: "From the throughput constraint, we can derive response times
	// that would just allow the throughput constraint to be satisfied":
	// 51.2 ms, 24 ms, 10 ms, 0.0227 ms. These are exactly the minimal
	// start distances φ.
	g, c := mp3Graph(t)
	res, err := Compute(g, c, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]ratio.Rat{
		mp3.TaskBR:  r(32, 625),  // 51.2 ms
		mp3.TaskMP3: r(3, 125),   // 24 ms
		mp3.TaskSRC: r(1, 100),   // 10 ms
		mp3.TaskDAC: r(1, 44100), // τ
	}
	for task, w := range want {
		if got := res.Phi[task]; !got.Equal(w) {
			t.Errorf("φ(%s) = %v s, want %v s", task, got, w)
		}
	}
	if !res.Valid {
		t.Errorf("result invalid: %v", res.Diagnostics)
	}
	for _, ck := range res.Checks {
		if !ck.OK {
			t.Errorf("check failed for %s: ρ=%v > φ=%v", ck.Task, ck.Rho, ck.Phi)
		}
		// The paper picks ρ = φ exactly ("just allow").
		if !ck.Rho.Equal(ck.Phi) {
			t.Errorf("%s: ρ=%v != φ=%v; WCRTs should be exactly critical", ck.Task, ck.Rho, ck.Phi)
		}
	}
}

func TestMP3CapacitiesEquation4(t *testing.T) {
	g, c := mp3Graph(t)
	res, err := Compute(g, c, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	names := mp3.BufferNames()
	want := []int64{6015, 3263, 883}
	for i, n := range names {
		br := res.BufferByName(n)
		if br == nil {
			t.Fatalf("missing buffer %s", n)
		}
		if br.Capacity != want[i] {
			t.Errorf("d%d (%s) = %d, want %d", i+1, n, br.Capacity, want[i])
		}
	}
}

func TestMP3CapacitiesHybridRefinement(t *testing.T) {
	// The hybrid refinement keeps Equation (4) on the variable first
	// buffer and takes the tighter gcd-granularity bound on the two
	// constant buffers: (6015, 3072, 882). The middle value is below the
	// paper's 3263 because [14]'s refinement applies to that pair; the
	// third matches the paper's published 882.
	g, c := mp3Graph(t)
	res, err := Compute(g, c, PolicyHybrid)
	if err != nil {
		t.Fatal(err)
	}
	names := mp3.BufferNames()
	want := []int64{6015, 3072, 882}
	for i, n := range names {
		br := res.BufferByName(n)
		if br.Capacity != want[i] {
			t.Errorf("d%d (%s) = %d, want %d", i+1, n, br.Capacity, want[i])
		}
	}
	// Buffers 2 and 3 have constant rates; buffer 1 is variable.
	if res.Buffers[0].ConstantRates || !res.Buffers[1].ConstantRates || !res.Buffers[2].ConstantRates {
		t.Errorf("ConstantRates flags = %v %v %v, want false true true",
			res.Buffers[0].ConstantRates, res.Buffers[1].ConstantRates, res.Buffers[2].ConstantRates)
	}
	// Hybrid is never looser than Equation (4).
	eq4, err := Compute(g, c, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Buffers {
		if res.Buffers[i].Capacity > eq4.Buffers[i].Capacity {
			t.Errorf("hybrid %s = %d looser than eq4 %d",
				res.Buffers[i].Buffer, res.Buffers[i].Capacity, eq4.Buffers[i].Capacity)
		}
	}
}

func TestMP3BaselineLowerBound(t *testing.T) {
	// §5: assuming n constant at 960, traditional analysis [10] yields
	// d1 = 5888, d2 = 3072, d3 = 882.
	g, c := mp3Graph(t)
	constGraph := WithConstantMaxRates(g)
	res, err := Compute(constGraph, c, PolicyBaseline)
	if err != nil {
		t.Fatal(err)
	}
	names := mp3.BufferNames()
	want := []int64{5888, 3072, 882}
	for i, n := range names {
		br := res.BufferByName(n)
		if br.Capacity != want[i] {
			t.Errorf("baseline d%d (%s) = %d, want %d", i+1, n, br.Capacity, want[i])
		}
	}
}

func TestBaselineRejectsVariableRates(t *testing.T) {
	g, c := mp3Graph(t)
	if _, err := Compute(g, c, PolicyBaseline); err == nil {
		t.Fatal("baseline accepted a variable-rate graph")
	} else if !strings.Contains(err.Error(), "variable quanta") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestFigure1PairCapacity(t *testing.T) {
	// The motivating example: m = {3}, n = {2,3}. With τ = 3 time units
	// and ρ(va) = ρ(vb) = 1: μ = 1, Eq(3) = 1+1+2+2 = 6, Eq(4) = 7.
	g, err := taskgraph.Pair("wa", r(1, 1), "wb", r(1, 1),
		taskgraph.MustQuanta(3), taskgraph.MustQuanta(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compute(g, taskgraph.Constraint{Task: "wb", Period: r(3, 1)}, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Buffers[0].Capacity; got != 7 {
		t.Errorf("capacity = %d, want 7", got)
	}
	if res.Direction != SinkConstrained {
		t.Errorf("direction = %v, want sink-constrained", res.Direction)
	}
	// φ(wa) = (3/3)·3 = 3.
	if got := res.Phi["wa"]; !got.Equal(r(3, 1)) {
		t.Errorf("φ(wa) = %v, want 3", got)
	}
	if !res.Valid {
		t.Errorf("unexpectedly invalid: %v", res.Diagnostics)
	}
}

func TestSlowProducerDetected(t *testing.T) {
	// Same pair but the producer's WCRT exceeds φ(wa) = 3: the paper's
	// producer-schedule condition ρ(va) ≤ π̌·τ/γ̂ fails.
	g, err := taskgraph.Pair("wa", r(7, 2), "wb", r(1, 1),
		taskgraph.MustQuanta(3), taskgraph.MustQuanta(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compute(g, taskgraph.Constraint{Task: "wb", Period: r(3, 1)}, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid {
		t.Fatal("slow producer accepted")
	}
	found := false
	for _, ck := range res.Checks {
		if ck.Task == "wa" && !ck.OK {
			found = true
		}
	}
	if !found {
		t.Error("no failing check recorded for wa")
	}
	if len(res.Diagnostics) == 0 {
		t.Error("no diagnostics recorded")
	}
}

func TestSourceConstrainedSymmetry(t *testing.T) {
	// §4.4: constraint on the source. Producer wa produces {2,3} per
	// firing, consumer wb consumes 3. Rates derive from the source:
	// μ = τ/π̂ = 1, φ(wb) = μ·γ̌ = 3.
	g, err := taskgraph.Pair("wa", r(1, 1), "wb", r(1, 1),
		taskgraph.MustQuanta(2, 3), taskgraph.MustQuanta(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compute(g, taskgraph.Constraint{Task: "wa", Period: r(3, 1)}, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Direction != SourceConstrained {
		t.Fatalf("direction = %v, want source-constrained", res.Direction)
	}
	if got := res.Phi["wb"]; !got.Equal(r(3, 1)) {
		t.Errorf("φ(wb) = %v, want 3", got)
	}
	// Same distances as the mirrored sink case: Eq(3) = 6, Eq(4) = 7.
	if got := res.Buffers[0].Capacity; got != 7 {
		t.Errorf("capacity = %d, want 7", got)
	}
	if !res.Valid {
		t.Errorf("unexpectedly invalid: %v", res.Diagnostics)
	}
}

func TestZeroQuantaAsymmetry(t *testing.T) {
	// Sink-constrained chains allow consumption quanta to contain 0 but
	// not production quanta; source-constrained chains are the mirror
	// image (§4.2 end, §4.4).
	consZero, err := taskgraph.Pair("wa", r(1, 100), "wb", r(1, 100),
		taskgraph.MustQuanta(3), taskgraph.MustQuanta(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compute(consZero, taskgraph.Constraint{Task: "wb", Period: r(1, 1)}, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Errorf("consumption-zero sink-constrained chain rejected: %v", res.Diagnostics)
	}

	prodZero, err := taskgraph.Pair("wa", r(1, 100), "wb", r(1, 100),
		taskgraph.MustQuanta(0, 3), taskgraph.MustQuanta(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err = Compute(prodZero, taskgraph.Constraint{Task: "wb", Period: r(1, 1)}, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid {
		t.Error("production-zero sink-constrained chain accepted")
	}

	res, err = Compute(prodZero, taskgraph.Constraint{Task: "wa", Period: r(1, 1)}, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Errorf("production-zero source-constrained chain rejected: %v", res.Diagnostics)
	}

	res, err = Compute(consZero, taskgraph.Constraint{Task: "wa", Period: r(1, 1)}, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid {
		t.Error("consumption-zero source-constrained chain accepted")
	}
}

func TestSizedSetsCapacities(t *testing.T) {
	g, c := mp3Graph(t)
	res, err := Compute(g, c, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	sized, err := Sized(g, res)
	if err != nil {
		t.Fatal(err)
	}
	names := mp3.BufferNames()
	want := []int64{6015, 3263, 883}
	for i, n := range names {
		if got := sized.BufferByName(n).Capacity; got != want[i] {
			t.Errorf("sized %s capacity = %d, want %d", n, got, want[i])
		}
		// Original untouched.
		if got := g.BufferByName(n).Capacity; got != 0 {
			t.Errorf("original %s capacity mutated to %d", n, got)
		}
	}
}

func TestTotalCapacity(t *testing.T) {
	g, c := mp3Graph(t)
	res, err := Compute(g, c, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.TotalCapacity(); got != 6015+3263+883 {
		t.Errorf("TotalCapacity = %d, want %d", got, 6015+3263+883)
	}
}

func TestPolicyParsingAndString(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Policy
	}{
		{"equation4", PolicyEquation4}, {"eq4", PolicyEquation4}, {"vrdf", PolicyEquation4},
		{"baseline", PolicyBaseline}, {"sdf", PolicyBaseline},
		{"hybrid", PolicyHybrid}, {"paper", PolicyHybrid},
	} {
		got, err := ParsePolicy(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
	if PolicyEquation4.String() != "equation4" || PolicyBaseline.String() != "baseline" || PolicyHybrid.String() != "hybrid" {
		t.Error("policy String() mismatch")
	}
	if SinkConstrained.String() == SourceConstrained.String() {
		t.Error("direction String() not distinct")
	}
}

func TestConstraintOnNonEndpointRejected(t *testing.T) {
	g, err := taskgraph.BuildChain(
		[]taskgraph.Stage{{Name: "a", WCRT: r(1, 1)}, {Name: "b", WCRT: r(1, 1)}, {Name: "c", WCRT: r(1, 1)}},
		[]taskgraph.Link{
			{Prod: taskgraph.MustQuanta(1), Cons: taskgraph.MustQuanta(1)},
			{Prod: taskgraph.MustQuanta(1), Cons: taskgraph.MustQuanta(1)},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(g, taskgraph.Constraint{Task: "b", Period: r(1, 1)}, PolicyEquation4); err == nil {
		t.Error("middle-task constraint accepted")
	}
}

func TestWithConstantRateHelpers(t *testing.T) {
	g, _ := mp3Graph(t)
	maxG := WithConstantMaxRates(g)
	b := maxG.BufferByName(mp3.TaskBR + "->" + mp3.TaskMP3)
	if !b.Cons.IsConstant() || b.Cons.Max() != 960 {
		t.Errorf("max-rate collapse gave %v, want 960", b.Cons)
	}
	minG := WithConstantMinRates(g)
	b = minG.BufferByName(mp3.TaskBR + "->" + mp3.TaskMP3)
	if !b.Cons.IsConstant() || b.Cons.Max() != 96 {
		t.Errorf("min-rate collapse gave %v, want 96", b.Cons)
	}
	// Zero-containing sets collapse to the smallest positive member.
	zg, err := taskgraph.Pair("a", r(1, 1), "b", r(1, 1),
		taskgraph.MustQuanta(5), taskgraph.MustQuanta(0, 4, 9))
	if err != nil {
		t.Fatal(err)
	}
	zmin := WithConstantMinRates(zg)
	if got := zmin.Buffers()[0].Cons; !got.IsConstant() || got.Max() != 4 {
		t.Errorf("zero-set collapse gave %v, want 4", got)
	}
}

func TestPropEq4AtLeastBaselineOnConstantGraphs(t *testing.T) {
	// On constant-rate buffers Equation (4) is never tighter than the
	// baseline: the paper's method trades tightness for generality.
	f := func(p8, c8, rp, rc uint8) bool {
		p, c := int64(p8%30)+1, int64(c8%30)+1
		g, err := taskgraph.Pair("a", r(int64(rp)+1, 10), "b", r(int64(rc)+1, 10),
			taskgraph.MustQuanta(p), taskgraph.MustQuanta(c))
		if err != nil {
			return false
		}
		// Period large enough that the consumer's check passes.
		con := taskgraph.Constraint{Task: "b", Period: r(int64(c8)+100, 1)}
		res, err := Compute(g, con, PolicyEquation4)
		if err != nil {
			return false
		}
		return res.Buffers[0].CapacityEq4 >= res.Buffers[0].CapacityBaseline
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCapacityMonotoneInPeriod(t *testing.T) {
	// Shrinking the period (tightening throughput) never shrinks the
	// required capacity.
	f := func(tau8 uint8) bool {
		tau := r(int64(tau8%50)+10, 1)
		g, err := taskgraph.Pair("a", r(1, 1), "b", r(1, 1),
			taskgraph.MustQuanta(3), taskgraph.MustQuanta(2, 3))
		if err != nil {
			return false
		}
		res1, err := Compute(g, taskgraph.Constraint{Task: "b", Period: tau}, PolicyEquation4)
		if err != nil {
			return false
		}
		res2, err := Compute(g, taskgraph.Constraint{Task: "b", Period: tau.MulInt(2)}, PolicyEquation4)
		if err != nil {
			return false
		}
		return res1.Buffers[0].Capacity >= res2.Buffers[0].Capacity
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryReporting(t *testing.T) {
	g, c := mp3Graph(t)
	res, err := Compute(g, c, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	// d1 counts bytes (1 B containers); d2 and d3 carry 4-byte samples.
	names := mp3.BufferNames()
	wantBytes := []int64{6015 * 1, 3263 * 4, 883 * 4}
	var total int64
	for i, n := range names {
		br := res.BufferByName(n)
		if got := br.MemoryBytes(); got != wantBytes[i] {
			t.Errorf("%s memory = %d B, want %d", n, got, wantBytes[i])
		}
		total += wantBytes[i]
	}
	if got := res.TotalMemoryBytes(); got != total {
		t.Errorf("TotalMemoryBytes = %d, want %d", got, total)
	}
	// Unspecified container sizes report zero memory.
	pair, err := taskgraph.Pair("a", r(1, 1), "b", r(1, 1),
		taskgraph.MustQuanta(1), taskgraph.MustQuanta(1))
	if err != nil {
		t.Fatal(err)
	}
	pres, err := Compute(pair, taskgraph.Constraint{Task: "b", Period: r(2, 1)}, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if pres.TotalMemoryBytes() != 0 {
		t.Errorf("unspecified container sizes yielded %d bytes", pres.TotalMemoryBytes())
	}
}
