package capacity

import (
	"math/rand"
	"reflect"
	"testing"

	"vrdfcap/internal/graphgen"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

func sweepPair(t *testing.T) *taskgraph.Graph {
	t.Helper()
	g, err := taskgraph.Pair("wa", r(1, 1), "wb", r(1, 1),
		taskgraph.MustQuanta(3), taskgraph.MustQuanta(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSweepPeriodsTradeoff(t *testing.T) {
	g := sweepPair(t)
	periods := []ratio.Rat{r(1, 2), r(1, 1), r(3, 2), r(3, 1), r(6, 1), r(12, 1)}
	pts, err := SweepPeriods(g, "wb", periods, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(periods) {
		t.Fatalf("got %d points", len(pts))
	}
	// Feasibility: wb needs τ >= ρ(wb) = 1 and wa needs φ(wa) = τ·π̌/γ̂ =
	// τ >= 1. So τ = 1/2 is infeasible, the rest feasible.
	if pts[0].Valid {
		t.Error("τ = 1/2 reported feasible")
	}
	for i := 1; i < len(pts); i++ {
		if !pts[i].Valid {
			t.Errorf("τ = %v reported infeasible", pts[i].Period)
		}
	}
	// Capacity is non-increasing as the period relaxes.
	for i := 2; i < len(pts); i++ {
		if pts[i].Total > pts[i-1].Total {
			t.Errorf("capacity grew when relaxing period: %v -> %v gives %d -> %d",
				pts[i-1].Period, pts[i].Period, pts[i-1].Total, pts[i].Total)
		}
	}
	// Known anchor: τ = 3 gives capacity 7.
	if pts[3].Total != 7 {
		t.Errorf("τ = 3 total = %d, want 7", pts[3].Total)
	}
	// A very relaxed period approaches the structural floor
	// ⌊ρ-terms⌋ + p̂ + ĉ − 1 with the ρ term vanishing: 3 + 3 − 1 + small.
	if last := pts[len(pts)-1].Total; last > 7 || last < 5 {
		t.Errorf("relaxed-period capacity = %d, want within [5, 7]", last)
	}
}

func TestMinimalFeasiblePeriod(t *testing.T) {
	g := sweepPair(t)
	periods := []ratio.Rat{r(1, 4), r(1, 2), r(1, 1), r(2, 1)}
	pt, err := MinimalFeasiblePeriod(g, "wb", periods, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Period.Equal(r(1, 1)) {
		t.Errorf("minimal feasible period = %v, want 1", pt.Period)
	}
	if _, err := MinimalFeasiblePeriod(g, "wb", []ratio.Rat{r(1, 8)}, PolicyEquation4); err == nil {
		t.Error("infeasible-only sweep returned a period")
	}
}

func TestSweepEmptyRejected(t *testing.T) {
	g := sweepPair(t)
	if _, err := SweepPeriods(g, "wb", nil, PolicyEquation4); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := MinimalFeasiblePeriod(g, "wb", nil, PolicyEquation4); err == nil {
		t.Error("empty minimal-period sweep accepted")
	}
}

// TestMinimalFeasiblePeriodShuffled is the regression test for the
// ascending-order contract: an unsorted candidate list used to silently
// return the first feasible period encountered, not the minimal one.
func TestMinimalFeasiblePeriodShuffled(t *testing.T) {
	g := sweepPair(t)
	ascending := []ratio.Rat{r(1, 4), r(1, 2), r(1, 1), r(3, 2), r(2, 1), r(4, 1)}
	want, err := MinimalFeasiblePeriod(g, "wb", ascending, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Period.Equal(r(1, 1)) {
		t.Fatalf("ascending list: minimal period %v, want 1", want.Period)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		shuffled := make([]ratio.Rat, len(ascending))
		copy(shuffled, ascending)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got, err := MinimalFeasiblePeriod(g, "wb", shuffled, PolicyEquation4)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !got.Period.Equal(want.Period) || got.Total != want.Total {
			t.Fatalf("trial %d: shuffled list %v returned period %v (total %d), want %v (total %d)",
				trial, shuffled, got.Period, got.Total, want.Period, want.Total)
		}
		// The input list must not be mutated by the internal sort.
		for i := range shuffled {
			if i > 0 && shuffled[i].Less(shuffled[i-1]) {
				break // still shuffled: good
			}
			if i == len(shuffled)-1 {
				t.Logf("trial %d: shuffle happened to be sorted", trial)
			}
		}
	}
}

// TestSweepSerialParallelEquivalence pins the tentpole contract: the
// parallel sweep returns bit-identical results to the serial loop on
// seeded random chains — same ordering, same analyses, same totals.
func TestSweepSerialParallelEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		cfg := graphgen.Defaults(seed)
		cfg.ZeroConsumption = seed%3 == 0
		g, c, err := graphgen.Random(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Period axis straddling the feasibility frontier: τ·k/8 for
		// k = 2..17 — tighter than τ below k = 8, relaxed above.
		var periods []ratio.Rat
		for k := int64(2); k < 18; k++ {
			periods = append(periods, c.Period.MulInt(k).DivInt(8))
		}
		serial, err := SweepPeriodsOpt(g, c.Task, periods, PolicyEquation4, SweepOptions{Parallel: 1})
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		par, err := SweepPeriodsOpt(g, c.Task, periods, PolicyEquation4, SweepOptions{Parallel: 8})
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("seed %d: serial and parallel sweeps differ\nserial:   %+v\nparallel: %+v", seed, serial, par)
		}
	}
}

// TestSweepErrorDeterminism checks that a failing period reports the same
// error under both paths: the first failure in list order, regardless of
// which worker hits an error first.
func TestSweepErrorDeterminism(t *testing.T) {
	g := sweepPair(t)
	// An unknown task makes Compute fail for every period; the reported
	// period must be the first one in list order either way.
	periods := []ratio.Rat{r(5, 1), r(7, 1), r(9, 1)}
	_, serialErr := SweepPeriodsOpt(g, "nope", periods, PolicyEquation4, SweepOptions{Parallel: 1})
	_, parErr := SweepPeriodsOpt(g, "nope", periods, PolicyEquation4, SweepOptions{Parallel: 8})
	if serialErr == nil || parErr == nil {
		t.Fatalf("expected errors, got %v and %v", serialErr, parErr)
	}
	if serialErr.Error() != parErr.Error() {
		t.Fatalf("error mismatch:\nserial:   %v\nparallel: %v", serialErr, parErr)
	}
}
