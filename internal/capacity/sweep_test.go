package capacity

import (
	"testing"

	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

func sweepPair(t *testing.T) *taskgraph.Graph {
	t.Helper()
	g, err := taskgraph.Pair("wa", r(1, 1), "wb", r(1, 1),
		taskgraph.MustQuanta(3), taskgraph.MustQuanta(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSweepPeriodsTradeoff(t *testing.T) {
	g := sweepPair(t)
	periods := []ratio.Rat{r(1, 2), r(1, 1), r(3, 2), r(3, 1), r(6, 1), r(12, 1)}
	pts, err := SweepPeriods(g, "wb", periods, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(periods) {
		t.Fatalf("got %d points", len(pts))
	}
	// Feasibility: wb needs τ >= ρ(wb) = 1 and wa needs φ(wa) = τ·π̌/γ̂ =
	// τ >= 1. So τ = 1/2 is infeasible, the rest feasible.
	if pts[0].Valid {
		t.Error("τ = 1/2 reported feasible")
	}
	for i := 1; i < len(pts); i++ {
		if !pts[i].Valid {
			t.Errorf("τ = %v reported infeasible", pts[i].Period)
		}
	}
	// Capacity is non-increasing as the period relaxes.
	for i := 2; i < len(pts); i++ {
		if pts[i].Total > pts[i-1].Total {
			t.Errorf("capacity grew when relaxing period: %v -> %v gives %d -> %d",
				pts[i-1].Period, pts[i].Period, pts[i-1].Total, pts[i].Total)
		}
	}
	// Known anchor: τ = 3 gives capacity 7.
	if pts[3].Total != 7 {
		t.Errorf("τ = 3 total = %d, want 7", pts[3].Total)
	}
	// A very relaxed period approaches the structural floor
	// ⌊ρ-terms⌋ + p̂ + ĉ − 1 with the ρ term vanishing: 3 + 3 − 1 + small.
	if last := pts[len(pts)-1].Total; last > 7 || last < 5 {
		t.Errorf("relaxed-period capacity = %d, want within [5, 7]", last)
	}
}

func TestMinimalFeasiblePeriod(t *testing.T) {
	g := sweepPair(t)
	periods := []ratio.Rat{r(1, 4), r(1, 2), r(1, 1), r(2, 1)}
	pt, err := MinimalFeasiblePeriod(g, "wb", periods, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Period.Equal(r(1, 1)) {
		t.Errorf("minimal feasible period = %v, want 1", pt.Period)
	}
	if _, err := MinimalFeasiblePeriod(g, "wb", []ratio.Rat{r(1, 8)}, PolicyEquation4); err == nil {
		t.Error("infeasible-only sweep returned a period")
	}
}

func TestSweepEmptyRejected(t *testing.T) {
	g := sweepPair(t)
	if _, err := SweepPeriods(g, "wb", nil, PolicyEquation4); err == nil {
		t.Error("empty sweep accepted")
	}
}
