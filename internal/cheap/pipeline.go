package cheap

import (
	"fmt"
	"sync"
	"sync/atomic"

	"vrdfcap/internal/quanta"
)

// Stage is one task of a concurrent pipeline. The first stage has no Cons
// sequence (it is the source) and the last no Prod sequence (the sink).
type Stage[T any] struct {
	// Name identifies the stage in errors.
	Name string
	// Cons yields the consumption quantum of firing k on the input
	// buffer; nil for the source.
	Cons quanta.Sequence
	// Prod yields the production quantum of firing k on the output
	// buffer; nil for the sink.
	Prod quanta.Sequence
	// Work transforms the consumed values into produced values for
	// firing k. It must return exactly the production quantum of the
	// firing (checked); the sink's Work may return nil. A nil Work
	// forwards min(len(in), prod quantum) values and pads with zero
	// values, which suits rate-converting identity stages in tests.
	Work func(firing int64, in []T) []T
}

// Pipeline executes task-graph chains as goroutines connected by C-HEAP
// buffers.
type Pipeline[T any] struct {
	stages    []Stage[T]
	buffers   []*Buffer[T]
	sinkFired atomic.Int64
}

// SinkFired returns how many firings the sink has completed so far; safe to
// call concurrently with Run (used to observe progress or its absence).
func (p *Pipeline[T]) SinkFired() int64 { return p.sinkFired.Load() }

// NewPipeline builds a pipeline from stages and the capacities of the
// len(stages)-1 connecting buffers (typically the output of the capacity
// analysis).
func NewPipeline[T any](stages []Stage[T], capacities []int64) (*Pipeline[T], error) {
	if len(stages) < 2 {
		return nil, fmt.Errorf("cheap: pipeline needs at least two stages, got %d", len(stages))
	}
	if len(capacities) != len(stages)-1 {
		return nil, fmt.Errorf("cheap: %d stages need %d capacities, got %d", len(stages), len(stages)-1, len(capacities))
	}
	if stages[0].Cons != nil {
		return nil, fmt.Errorf("cheap: source stage %s must not consume", stages[0].Name)
	}
	if stages[len(stages)-1].Prod != nil {
		return nil, fmt.Errorf("cheap: sink stage %s must not produce", stages[len(stages)-1].Name)
	}
	for i := 1; i < len(stages)-1; i++ {
		if stages[i].Cons == nil || stages[i].Prod == nil {
			return nil, fmt.Errorf("cheap: middle stage %s needs both quanta sequences", stages[i].Name)
		}
	}
	p := &Pipeline[T]{stages: stages}
	for i, c := range capacities {
		b, err := NewBuffer[T](int(c))
		if err != nil {
			return nil, fmt.Errorf("cheap: buffer %d: %w", i, err)
		}
		p.buffers = append(p.buffers, b)
	}
	return p, nil
}

// Run executes the pipeline until the sink completes the given number of
// firings, then shuts every stage down and returns the first error
// encountered (nil on clean completion).
//
// Each stage follows the C-HEAP/VRDF protocol: acquire the input data and
// the output space for the firing's quanta, run Work, commit the produced
// data and release the consumed space. Acquisition order is inputs before
// outputs, which is deadlock-equivalent to the simultaneous execution
// condition on single-producer single-consumer chains.
func (p *Pipeline[T]) Run(sinkFirings int64) error {
	if sinkFirings <= 0 {
		return fmt.Errorf("cheap: sink firings must be positive, got %d", sinkFirings)
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		// Unblock everyone.
		for _, b := range p.buffers {
			b.Close()
		}
	}
	for i := range p.stages {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := p.runStage(i, sinkFirings); err != nil && err != ErrClosed {
				fail(fmt.Errorf("cheap: stage %s: %w", p.stages[i].Name, err))
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}

func (p *Pipeline[T]) runStage(i int, sinkFirings int64) error {
	s := p.stages[i]
	var in, out *Buffer[T]
	if i > 0 {
		in = p.buffers[i-1]
	}
	if i < len(p.stages)-1 {
		out = p.buffers[i]
	}
	isSink := out == nil
	for k := int64(0); ; k++ {
		if isSink && k >= sinkFirings {
			// The sink is done: tear the pipeline down so upstream
			// stages stop waiting for space.
			for _, b := range p.buffers {
				b.Close()
			}
			return nil
		}
		var consumed []T
		if in != nil {
			n := s.Cons.At(k)
			vals, err := in.AcquireData(int(n))
			if err != nil {
				return err
			}
			consumed = vals
		}
		var prodN int
		if out != nil {
			prodN = int(s.Prod.At(k))
			if err := out.AcquireSpace(prodN); err != nil {
				return err
			}
		}
		var produced []T
		if s.Work != nil {
			produced = s.Work(k, consumed)
		} else if out != nil {
			produced = forward(consumed, prodN)
		}
		if out != nil {
			if len(produced) != prodN {
				return fmt.Errorf("firing %d produced %d values, declared quantum %d", k, len(produced), prodN)
			}
			if err := out.CommitData(produced); err != nil {
				return err
			}
		} else if len(produced) != 0 {
			return fmt.Errorf("sink firing %d produced %d values", k, len(produced))
		}
		if in != nil {
			if err := in.ReleaseSpace(len(consumed)); err != nil {
				return err
			}
		}
		if isSink {
			p.sinkFired.Add(1)
		}
	}
}

// forward copies up to n consumed values and pads with zero values.
func forward[T any](in []T, n int) []T {
	out := make([]T, n)
	copy(out, in)
	return out
}
