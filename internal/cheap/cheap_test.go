package cheap

import (
	"sync"
	"testing"
	"time"

	"vrdfcap/internal/quanta"
)

func TestBufferFIFOWrapAround(t *testing.T) {
	b, err := NewBuffer[int](3)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	push := func(n int) {
		t.Helper()
		if err := b.AcquireSpace(n); err != nil {
			t.Fatal(err)
		}
		vals := make([]int, n)
		for i := range vals {
			vals[i] = next
			next++
		}
		if err := b.CommitData(vals); err != nil {
			t.Fatal(err)
		}
	}
	want := 0
	pop := func(n int) {
		t.Helper()
		vals, err := b.AcquireData(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vals {
			if v != want {
				t.Fatalf("got %d, want %d", v, want)
			}
			want++
		}
		if err := b.ReleaseSpace(n); err != nil {
			t.Fatal(err)
		}
	}
	// Drive the ring through several wrap-arounds with mixed quanta.
	push(2)
	pop(1)
	push(2)
	pop(3)
	push(3)
	pop(2)
	pop(1)
	if want != 7 {
		t.Fatalf("consumed %d values", want)
	}
	full, free, claimed, held := b.Stats()
	if full != 0 || free != 3 || claimed != 0 || held != 0 {
		t.Errorf("stats after drain: full=%d free=%d claimed=%d held=%d", full, free, claimed, held)
	}
}

func TestBufferAccountingInvariant(t *testing.T) {
	b, err := NewBuffer[byte](5)
	if err != nil {
		t.Fatal(err)
	}
	check := func() {
		t.Helper()
		full, free, claimed, held := b.Stats()
		if full+free+claimed+held != 5 {
			t.Fatalf("invariant broken: %d+%d+%d+%d != 5", full, free, claimed, held)
		}
	}
	check()
	if err := b.AcquireSpace(3); err != nil {
		t.Fatal(err)
	}
	check()
	if err := b.CommitData([]byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	check() // one container still claimed
	if _, err := b.AcquireData(2); err != nil {
		t.Fatal(err)
	}
	check()
	if err := b.ReleaseSpace(1); err != nil {
		t.Fatal(err)
	}
	check()
}

func TestBufferRejectsProtocolViolations(t *testing.T) {
	b, err := NewBuffer[int](4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBuffer[int](0); err == nil {
		t.Error("zero capacity accepted")
	}
	if err := b.AcquireSpace(5); err == nil {
		t.Error("quantum above capacity accepted")
	}
	if err := b.AcquireSpace(-1); err == nil {
		t.Error("negative quantum accepted")
	}
	if err := b.CommitData([]int{1}); err == nil {
		t.Error("commit without claim accepted")
	}
	if err := b.ReleaseSpace(1); err == nil {
		t.Error("release without hold accepted")
	}
}

func TestBufferBlocksAndUnblocks(t *testing.T) {
	b, err := NewBuffer[int](2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AcquireSpace(2); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// Blocks until the consumer releases.
		done <- b.AcquireSpace(1)
	}()
	select {
	case err := <-done:
		t.Fatalf("AcquireSpace returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := b.CommitData([]int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AcquireData(1); err != nil {
		t.Fatal(err)
	}
	if err := b.ReleaseSpace(1); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("unblocked AcquireSpace failed: %v", err)
	}
}

func TestBufferCloseWakesWaiters(t *testing.T) {
	b, err := NewBuffer[int](1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err := b.AcquireData(1)
		errs <- err
	}()
	go func() {
		defer wg.Done()
		if err := b.AcquireSpace(1); err != nil {
			errs <- err
			return
		}
		errs <- b.AcquireSpace(1) // second acquire blocks, then closes
	}()
	time.Sleep(20 * time.Millisecond)
	b.Close()
	b.Close() // idempotent
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != ErrClosed {
			t.Errorf("waiter got %v, want ErrClosed", err)
		}
	}
}

func TestPipelineIdentityPreservesOrder(t *testing.T) {
	// Three-stage identity pipeline: the sink must observe 0, 1, 2, …
	// exactly once each, whatever the interleaving.
	const n = 5000
	var mu sync.Mutex
	var seen []int64
	stages := []Stage[int64]{
		{
			Name: "src",
			Prod: quanta.Constant(1),
			Work: func(k int64, _ []int64) []int64 { return []int64{k} },
		},
		{
			Name: "mid",
			Cons: quanta.Constant(1),
			Prod: quanta.Constant(1),
			Work: func(_ int64, in []int64) []int64 { return in },
		},
		{
			Name: "snk",
			Cons: quanta.Constant(1),
			Work: func(_ int64, in []int64) []int64 {
				mu.Lock()
				seen = append(seen, in...)
				mu.Unlock()
				return nil
			},
		},
	}
	p, err := NewPipeline(stages, []int64{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(n); err != nil {
		t.Fatal(err)
	}
	if p.SinkFired() != n {
		t.Fatalf("sink fired %d, want %d", p.SinkFired(), n)
	}
	if len(seen) != n {
		t.Fatalf("sink saw %d values, want %d", len(seen), n)
	}
	for i, v := range seen {
		if v != int64(i) {
			t.Fatalf("order violated at %d: got %d", i, v)
		}
	}
}

func TestPipelineVariableRates(t *testing.T) {
	// Figure-1 shape on a real concurrent runtime: producer emits 3 per
	// firing, consumer takes 2 or 3 per firing. Capacity 7 (Equation 4)
	// completes; the values arrive in order.
	var mu sync.Mutex
	var got []int64
	next := int64(0)
	stages := []Stage[int64]{
		{
			Name: "wa",
			Prod: quanta.Constant(3),
			Work: func(k int64, _ []int64) []int64 {
				out := []int64{next, next + 1, next + 2}
				next += 3
				return out
			},
		},
		{
			Name: "wb",
			Cons: quanta.Cycle(2, 3),
			Work: func(_ int64, in []int64) []int64 {
				mu.Lock()
				got = append(got, in...)
				mu.Unlock()
				return nil
			},
		},
	}
	p, err := NewPipeline(stages, []int64{7})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(400); err != nil {
		t.Fatal(err)
	}
	// 400 firings of the 2,3 cycle consume 200·5 = 1000 values.
	if len(got) != 1000 {
		t.Fatalf("consumed %d values, want 1000", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("order violated at %d: got %d", i, v)
		}
	}
}

func TestPipelineDeadlockDetectedByStall(t *testing.T) {
	// Capacity 3 with the all-2 consumption pattern deadlocks (the
	// paper's motivating example) — the pipeline makes no progress.
	stages := []Stage[int64]{
		{Name: "wa", Prod: quanta.Constant(3)},
		{Name: "wb", Cons: quanta.Constant(2), Work: func(_ int64, _ []int64) []int64 { return nil }},
	}
	p, err := NewPipeline(stages, []int64{3})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Run(100) }()
	select {
	case err := <-done:
		t.Fatalf("deadlocked pipeline completed: %v (sink fired %d)", err, p.SinkFired())
	case <-time.After(200 * time.Millisecond):
	}
	// Exactly one consumer firing is possible (3 produced, 2 consumed,
	// then wa lacks space and wb lacks data).
	if f := p.SinkFired(); f > 1 {
		t.Errorf("sink fired %d times before stalling, want at most 1", f)
	}
	// Unblock and drain the goroutines.
	for _, b := range p.buffers {
		b.Close()
	}
	<-done
}

func TestPipelineValidation(t *testing.T) {
	mk := func() []Stage[int] {
		return []Stage[int]{
			{Name: "a", Prod: quanta.Constant(1)},
			{Name: "b", Cons: quanta.Constant(1)},
		}
	}
	if _, err := NewPipeline(mk()[:1], nil); err == nil {
		t.Error("single stage accepted")
	}
	if _, err := NewPipeline(mk(), []int64{}); err == nil {
		t.Error("capacity count mismatch accepted")
	}
	bad := mk()
	bad[0].Cons = quanta.Constant(1)
	if _, err := NewPipeline(bad, []int64{2}); err == nil {
		t.Error("consuming source accepted")
	}
	bad = mk()
	bad[1].Prod = quanta.Constant(1)
	if _, err := NewPipeline(bad, []int64{2}); err == nil {
		t.Error("producing sink accepted")
	}
	p, err := NewPipeline(mk(), []int64{2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(0); err == nil {
		t.Error("zero firings accepted")
	}
}

func TestPipelineWorkQuantumMismatch(t *testing.T) {
	stages := []Stage[int]{
		{
			Name: "src",
			Prod: quanta.Constant(2),
			Work: func(int64, []int) []int { return []int{1} }, // wrong: 1 != 2
		},
		{Name: "snk", Cons: quanta.Constant(2), Work: func(int64, []int) []int { return nil }},
	}
	p, err := NewPipeline(stages, []int64{4})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(10); err == nil {
		t.Error("quantum mismatch not reported")
	}
}
