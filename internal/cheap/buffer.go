// Package cheap implements a C-HEAP-style runtime: real circular FIFO
// buffers and tasks running as goroutines, following the communication
// protocol the paper's task model abstracts (Nieuwland et al., "C-HEAP",
// reference [8] of the paper).
//
// A buffer holds a fixed number of containers. The producer acquires empty
// containers before it starts an execution and commits them (now full) when
// it finishes; the consumer acquires full containers at the start of an
// execution and releases them (empty again) at the finish. This is exactly
// the timing of the VRDF model: space is consumed at the producer's start,
// data appears at its finish; data is consumed at the consumer's start,
// space reappears at its finish. The capacity computed by the analysis is
// the number of containers that makes this protocol deadlock-free and fast
// enough — which this package lets you validate in a genuinely concurrent
// execution (run the tests with -race).
//
// Buffers are single-producer single-consumer, as in a task-graph chain.
package cheap

import (
	"errors"
	"fmt"
	"sync"
)

// ErrClosed is returned by blocking operations after Close.
var ErrClosed = errors.New("cheap: buffer closed")

// Buffer is a bounded circular FIFO of containers carrying values of type
// T. The zero value is unusable; call NewBuffer.
type Buffer[T any] struct {
	mu    sync.Mutex
	data  *sync.Cond // signalled when full containers appear
	space *sync.Cond // signalled when empty containers appear

	ring []T
	head int // index of the oldest full container
	full int // committed, unread containers
	free int // containers available to claim
	// claimed: acquired by the producer, not yet committed.
	// held: read by the consumer, space not yet released.
	claimed int
	held    int
	closed  bool
}

// NewBuffer returns a buffer with the given capacity in containers.
func NewBuffer[T any](capacity int) (*Buffer[T], error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cheap: capacity must be positive, got %d", capacity)
	}
	b := &Buffer[T]{
		ring: make([]T, capacity),
		free: capacity,
	}
	b.data = sync.NewCond(&b.mu)
	b.space = sync.NewCond(&b.mu)
	return b, nil
}

// Capacity returns the buffer's capacity in containers.
func (b *Buffer[T]) Capacity() int { return len(b.ring) }

// AcquireSpace blocks until n empty containers are claimable, then claims
// them. Call at the start of a producer execution.
func (b *Buffer[T]) AcquireSpace(n int) error {
	if err := b.checkQuantum(n); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.free < n && !b.closed {
		b.space.Wait()
	}
	if b.closed {
		return ErrClosed
	}
	b.free -= n
	b.claimed += n
	return nil
}

// CommitData publishes values into previously claimed containers. Call at
// the finish of a producer execution; len(vals) must not exceed the
// outstanding claim.
func (b *Buffer[T]) CommitData(vals []T) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if len(vals) > b.claimed {
		return fmt.Errorf("cheap: committing %d containers with only %d claimed", len(vals), b.claimed)
	}
	cap := len(b.ring)
	tail := (b.head + b.full) % cap
	for _, v := range vals {
		b.ring[tail] = v
		tail = (tail + 1) % cap
	}
	b.claimed -= len(vals)
	b.full += len(vals)
	b.data.Broadcast()
	return nil
}

// AcquireData blocks until n full containers are present, then removes and
// returns their values in FIFO order. Call at the start of a consumer
// execution. The containers stay occupied until ReleaseSpace.
func (b *Buffer[T]) AcquireData(n int) ([]T, error) {
	if err := b.checkQuantum(n); err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.full < n && !b.closed {
		b.data.Wait()
	}
	if b.closed {
		return nil, ErrClosed
	}
	out := make([]T, n)
	cap := len(b.ring)
	for i := 0; i < n; i++ {
		out[i] = b.ring[(b.head+i)%cap]
	}
	b.head = (b.head + n) % cap
	b.full -= n
	b.held += n
	return out, nil
}

// ReleaseSpace returns n previously read containers to the free pool. Call
// at the finish of a consumer execution.
func (b *Buffer[T]) ReleaseSpace(n int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if n > b.held {
		return fmt.Errorf("cheap: releasing %d containers with only %d held", n, b.held)
	}
	b.held -= n
	b.free += n
	b.space.Broadcast()
	return nil
}

// Close wakes every blocked operation with ErrClosed. Idempotent.
func (b *Buffer[T]) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	b.data.Broadcast()
	b.space.Broadcast()
}

// Stats returns a consistent snapshot of the container accounting.
func (b *Buffer[T]) Stats() (full, free, claimed, held int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.full, b.free, b.claimed, b.held
}

func (b *Buffer[T]) checkQuantum(n int) error {
	if n < 0 {
		return fmt.Errorf("cheap: negative quantum %d", n)
	}
	if n > len(b.ring) {
		return fmt.Errorf("cheap: quantum %d exceeds capacity %d; the transfer can never complete", n, len(b.ring))
	}
	return nil
}
