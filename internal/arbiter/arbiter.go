// Package arbiter derives worst-case response times for tasks scheduled by
// run-time arbiters.
//
// The task model of Wiggers et al. (DATE 2008), §3.1, assumes that "all
// shared resources have run-time arbiters" that "can guarantee a worst-case
// response time given the worst-case execution times and the scheduler
// settings", independently of the rate with which tasks start — the class
// that includes time-division multiplex (TDM) and round-robin. This package
// supplies those guarantees: it turns a task's worst-case execution time
// (WCET) plus arbiter settings into the κ(w) that the task graph and the
// buffer-capacity analysis consume.
//
// The TDM bound is the classical latency-rate bound for a slice S out of a
// frame P: an execution needing ⌈C/S⌉ slices waits at most P−S before each,
// so ρ = ⌈C/S⌉·(P−S) + C. The round-robin bound charges one full round of
// the other tasks' slices per own slice: ρ = C + ⌈C/S⌉·ΣS_other. Both are
// independent of arrival rate, as required.
package arbiter

import (
	"fmt"

	"vrdfcap/internal/ratio"
)

// TDM is a time-division-multiplex arbiter allocation: the task owns Slice
// time units out of every Frame.
type TDM struct {
	// Slice is the contiguous budget per frame; 0 < Slice <= Frame.
	Slice ratio.Rat
	// Frame is the TDM wheel period.
	Frame ratio.Rat
}

// Validate checks the allocation.
func (t TDM) Validate() error {
	if t.Slice.Sign() <= 0 {
		return fmt.Errorf("arbiter: TDM slice must be positive, got %v", t.Slice)
	}
	if t.Frame.Sign() <= 0 {
		return fmt.Errorf("arbiter: TDM frame must be positive, got %v", t.Frame)
	}
	if t.Frame.Less(t.Slice) {
		return fmt.Errorf("arbiter: TDM slice %v exceeds frame %v", t.Slice, t.Frame)
	}
	return nil
}

// ResponseTime returns the worst-case response time of a task with the
// given worst-case execution time under this allocation:
//
//	ρ = ⌈C/S⌉ · (P − S) + C
//
// The bound holds for any enabling pattern: in the worst case the task is
// enabled immediately after its slice ends and every needed slice is
// preceded by the full P−S of foreign time.
func (t TDM) ResponseTime(wcet ratio.Rat) (ratio.Rat, error) {
	if err := t.Validate(); err != nil {
		return ratio.Rat{}, err
	}
	if wcet.Sign() <= 0 {
		return ratio.Rat{}, fmt.Errorf("arbiter: WCET must be positive, got %v", wcet)
	}
	slices := wcet.Div(t.Slice).Ceil()
	gap := t.Frame.Sub(t.Slice)
	return gap.MulInt(slices).Add(wcet), nil
}

// Utilisation returns Slice/Frame, the long-run fraction of the resource
// the allocation guarantees.
func (t TDM) Utilisation() ratio.Rat { return t.Slice.Div(t.Frame) }

// MinSliceForDeadline returns the smallest TDM slice (with the receiver's
// frame) whose worst-case response time for the given WCET does not exceed
// the deadline, or an error if no slice up to a full frame works. Useful for
// dimensioning arbiters against the minimal start distances φ computed by
// the capacity analysis.
func (t TDM) MinSliceForDeadline(wcet, deadline ratio.Rat) (ratio.Rat, error) {
	if t.Frame.Sign() <= 0 {
		return ratio.Rat{}, fmt.Errorf("arbiter: TDM frame must be positive, got %v", t.Frame)
	}
	if wcet.Sign() <= 0 {
		return ratio.Rat{}, fmt.Errorf("arbiter: WCET must be positive, got %v", wcet)
	}
	if deadline.Less(wcet) {
		return ratio.Rat{}, fmt.Errorf("arbiter: deadline %v below WCET %v; infeasible on any arbiter", deadline, wcet)
	}
	// With k slices the response time is k·(P−S) + C ≤ D, i.e.
	// S ≥ P − (D−C)/k, and k slices suffice iff S ≥ C/k. Try increasing
	// k; the feasible slice for k is max(C/k, P−(D−C)/k), and the best
	// (smallest) choice appears for some k ≤ ⌈C·P/(D−C+ε)⌉ — we simply
	// stop when C/k alone stops improving the bound.
	slack := deadline.Sub(wcet)
	var best ratio.Rat
	found := false
	for k := int64(1); k <= 1024; k++ {
		sMin := wcet.DivInt(k)
		sLat := t.Frame.Sub(slack.DivInt(k))
		s := ratio.Max(sMin, sLat)
		if t.Frame.Less(s) {
			continue
		}
		// Verify (guards rounding pessimism in the derivation).
		cand := TDM{Slice: s, Frame: t.Frame}
		rt, err := cand.ResponseTime(wcet)
		if err != nil {
			return ratio.Rat{}, err
		}
		if rt.LessEq(deadline) {
			if !found || s.Less(best) {
				best = s
				found = true
			}
		}
		// Once latency no longer dominates, larger k cannot help.
		if sLat.LessEq(sMin) && found {
			break
		}
	}
	if !found {
		return ratio.Rat{}, fmt.Errorf("arbiter: no TDM slice within frame %v meets deadline %v for WCET %v", t.Frame, deadline, wcet)
	}
	return best, nil
}

// RoundRobin is a round-robin arbiter: the task owns OwnSlice and shares
// the resource with tasks owning OtherSlices.
type RoundRobin struct {
	OwnSlice    ratio.Rat
	OtherSlices []ratio.Rat
}

// Validate checks the configuration.
func (rr RoundRobin) Validate() error {
	if rr.OwnSlice.Sign() <= 0 {
		return fmt.Errorf("arbiter: round-robin own slice must be positive, got %v", rr.OwnSlice)
	}
	for i, s := range rr.OtherSlices {
		if s.Sign() <= 0 {
			return fmt.Errorf("arbiter: round-robin other slice %d must be positive, got %v", i, s)
		}
	}
	return nil
}

// ResponseTime returns the worst-case response time of a task with the
// given WCET:
//
//	ρ = C + ⌈C/S⌉ · Σ S_other
//
// In the worst case every own slice is preceded by a full round of every
// other task exhausting its slice.
func (rr RoundRobin) ResponseTime(wcet ratio.Rat) (ratio.Rat, error) {
	if err := rr.Validate(); err != nil {
		return ratio.Rat{}, err
	}
	if wcet.Sign() <= 0 {
		return ratio.Rat{}, fmt.Errorf("arbiter: WCET must be positive, got %v", wcet)
	}
	round := ratio.Zero
	for _, s := range rr.OtherSlices {
		round = round.Add(s)
	}
	slices := wcet.Div(rr.OwnSlice).Ceil()
	return wcet.Add(round.MulInt(slices)), nil
}

// Dedicated models a task with a resource to itself: the response time is
// just the WCET. Useful as the degenerate arbiter in examples.
type Dedicated struct{}

// ResponseTime returns the WCET unchanged.
func (Dedicated) ResponseTime(wcet ratio.Rat) (ratio.Rat, error) {
	if wcet.Sign() <= 0 {
		return ratio.Rat{}, fmt.Errorf("arbiter: WCET must be positive, got %v", wcet)
	}
	return wcet, nil
}

// Arbiter is any scheduler that can bound a task's response time from its
// WCET independently of enabling rate — the scheduler class the paper
// admits.
type Arbiter interface {
	ResponseTime(wcet ratio.Rat) (ratio.Rat, error)
}

var (
	_ Arbiter = TDM{}
	_ Arbiter = RoundRobin{}
	_ Arbiter = Dedicated{}
)
