package arbiter

import (
	"testing"
	"testing/quick"

	"vrdfcap/internal/ratio"
)

func r(n, d int64) ratio.Rat { return ratio.MustNew(n, d) }

func TestTDMResponseTime(t *testing.T) {
	cases := []struct {
		name         string
		slice, frame ratio.Rat
		wcet         ratio.Rat
		want         ratio.Rat
	}{
		// C <= S: one slice; wait P-S then run C.
		{"single slice", r(2, 1), r(10, 1), r(1, 1), r(9, 1)},
		// C == S exactly: rho = P.
		{"full slice", r(2, 1), r(10, 1), r(2, 1), r(10, 1)},
		// C == 2S: two slices -> 2(P-S) + C = 2P.
		{"two slices", r(2, 1), r(10, 1), r(4, 1), r(20, 1)},
		// Fractional: C = 3, S = 2 -> 2 slices: 2*8 + 3 = 19.
		{"ceil", r(2, 1), r(10, 1), r(3, 1), r(19, 1)},
		// Slice == frame: dedicated resource, rho = C.
		{"dedicated", r(10, 1), r(10, 1), r(7, 2), r(7, 2)},
	}
	for _, c := range cases {
		got, err := TDM{Slice: c.slice, Frame: c.frame}.ResponseTime(c.wcet)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !got.Equal(c.want) {
			t.Errorf("%s: ρ = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestTDMValidation(t *testing.T) {
	if _, err := (TDM{Slice: ratio.Zero, Frame: r(10, 1)}).ResponseTime(r(1, 1)); err == nil {
		t.Error("zero slice accepted")
	}
	if _, err := (TDM{Slice: r(11, 1), Frame: r(10, 1)}).ResponseTime(r(1, 1)); err == nil {
		t.Error("slice > frame accepted")
	}
	if _, err := (TDM{Slice: r(1, 1), Frame: r(10, 1)}).ResponseTime(ratio.Zero); err == nil {
		t.Error("zero WCET accepted")
	}
}

func TestTDMUtilisation(t *testing.T) {
	u := TDM{Slice: r(2, 1), Frame: r(10, 1)}.Utilisation()
	if !u.Equal(r(1, 5)) {
		t.Errorf("utilisation = %v, want 1/5", u)
	}
}

func TestMinSliceForDeadline(t *testing.T) {
	tdm := TDM{Frame: r(10, 1)}
	// WCET 2, deadline 10: a slice of 2 gives rho = 10 exactly.
	s, err := tdm.MinSliceForDeadline(r(2, 1), r(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := TDM{Slice: s, Frame: tdm.Frame}.ResponseTime(r(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(r(10, 1)) > 0 {
		t.Errorf("slice %v gives ρ = %v > deadline", s, got)
	}
	// A tight deadline forces a bigger slice than a loose one.
	loose, err := tdm.MinSliceForDeadline(r(2, 1), r(40, 1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Less(loose) {
		t.Errorf("loose deadline needs bigger slice (%v) than tight (%v)", loose, s)
	}
	// Infeasible: deadline below WCET.
	if _, err := tdm.MinSliceForDeadline(r(2, 1), r(1, 1)); err == nil {
		t.Error("deadline < WCET accepted")
	}
}

func TestMinSliceForDeadlineAlwaysMeets(t *testing.T) {
	f := func(c8, d8 uint8) bool {
		frame := r(100, 1)
		wcet := r(int64(c8%50)+1, 1)
		deadline := wcet.Add(r(int64(d8)+1, 1))
		tdm := TDM{Frame: frame}
		s, err := tdm.MinSliceForDeadline(wcet, deadline)
		if err != nil {
			// Infeasible configurations are allowed; the property
			// only covers returned slices.
			return true
		}
		rt, err := TDM{Slice: s, Frame: frame}.ResponseTime(wcet)
		if err != nil {
			return false
		}
		return rt.LessEq(deadline) && s.LessEq(frame) && s.Sign() > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundRobinResponseTime(t *testing.T) {
	rr := RoundRobin{
		OwnSlice:    r(2, 1),
		OtherSlices: []ratio.Rat{r(3, 1), r(1, 1)},
	}
	// C = 2 -> 1 own slice, 1 round of others (4): rho = 6.
	got, err := rr.ResponseTime(r(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r(6, 1)) {
		t.Errorf("ρ = %v, want 6", got)
	}
	// C = 5 -> 3 own slices: rho = 5 + 3*4 = 17.
	got, err = rr.ResponseTime(r(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r(17, 1)) {
		t.Errorf("ρ = %v, want 17", got)
	}
	// Alone on the resource: rho = C.
	alone := RoundRobin{OwnSlice: r(2, 1)}
	got, err = alone.ResponseTime(r(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r(5, 1)) {
		t.Errorf("alone ρ = %v, want 5", got)
	}
}

func TestRoundRobinValidation(t *testing.T) {
	if _, err := (RoundRobin{OwnSlice: ratio.Zero}).ResponseTime(r(1, 1)); err == nil {
		t.Error("zero own slice accepted")
	}
	bad := RoundRobin{OwnSlice: r(1, 1), OtherSlices: []ratio.Rat{ratio.Zero}}
	if _, err := bad.ResponseTime(r(1, 1)); err == nil {
		t.Error("zero other slice accepted")
	}
	ok := RoundRobin{OwnSlice: r(1, 1)}
	if _, err := ok.ResponseTime(r(-1, 1)); err == nil {
		t.Error("negative WCET accepted")
	}
}

func TestDedicated(t *testing.T) {
	got, err := Dedicated{}.ResponseTime(r(3, 2))
	if err != nil || !got.Equal(r(3, 2)) {
		t.Errorf("Dedicated ρ = %v, %v; want 3/2", got, err)
	}
	if _, err := (Dedicated{}).ResponseTime(ratio.Zero); err == nil {
		t.Error("zero WCET accepted")
	}
}

func TestPropTDMMonotoneInWCET(t *testing.T) {
	f := func(c8 uint8) bool {
		tdm := TDM{Slice: r(2, 1), Frame: r(10, 1)}
		c := r(int64(c8%40)+1, 2)
		r1, err1 := tdm.ResponseTime(c)
		r2, err2 := tdm.ResponseTime(c.Add(r(1, 2)))
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.LessEq(r2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropTDMDominatesWCET(t *testing.T) {
	// The arbiter can only add delay: rho >= C always.
	f := func(c8, s8 uint8) bool {
		s := r(int64(s8%9)+1, 1)
		tdm := TDM{Slice: s, Frame: r(10, 1)}
		c := r(int64(c8%40)+1, 2)
		rt, err := tdm.ResponseTime(c)
		if err != nil {
			return false
		}
		return c.LessEq(rt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
