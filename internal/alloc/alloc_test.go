package alloc

import (
	"strings"
	"testing"

	"vrdfcap/internal/capacity"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

func r(n, d int64) ratio.Rat { return ratio.MustNew(n, d) }

func pair(t *testing.T) *taskgraph.Graph {
	t.Helper()
	g, err := taskgraph.Pair("a", r(1, 1), "b", r(1, 1),
		taskgraph.MustQuanta(1), taskgraph.MustQuanta(1))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDimensionFeasiblePair(t *testing.T) {
	g := pair(t)
	platform := Platform{
		Processors: []Processor{{Name: "cpu", Frame: r(10, 1)}},
		Bindings: []Binding{
			{Task: "a", Processor: "cpu", WCET: r(1, 1)},
			{Task: "b", Processor: "cpu", WCET: r(1, 1)},
		},
	}
	res, err := Dimension(g, taskgraph.Constraint{Task: "b", Period: r(12, 1)}, platform, capacity.PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("infeasible: %v", res.Diagnostics)
	}
	for _, ta := range res.Tasks {
		if ta.Rho.Cmp(ta.Phi) > 0 {
			t.Errorf("task %s: κ=%v exceeds φ=%v", ta.Task, ta.Rho, ta.Phi)
		}
		if ta.Slice.Sign() <= 0 {
			t.Errorf("task %s: no slice", ta.Task)
		}
	}
	load := res.Processors[0]
	if !load.Fits || load.Utilisation.Cmp(ratio.One) > 0 {
		t.Errorf("load = %+v", load)
	}
	if res.Analysis == nil || !res.Analysis.Valid {
		t.Fatal("final analysis missing or invalid")
	}
	if res.Analysis.Buffers[0].Capacity <= 0 {
		t.Error("no capacity computed")
	}
	// The derived response times must be what the analysis used.
	for _, ta := range res.Tasks {
		for _, ck := range res.Analysis.Checks {
			if ck.Task == ta.Task && !ck.Rho.Equal(ta.Rho) {
				t.Errorf("analysis used ρ=%v for %s, allocation derived %v", ck.Rho, ta.Task, ta.Rho)
			}
		}
	}
}

func TestDimensionWheelOverflow(t *testing.T) {
	g, err := taskgraph.BuildChain(
		[]taskgraph.Stage{
			{Name: "a", WCRT: r(1, 1)}, {Name: "b", WCRT: r(1, 1)}, {Name: "c", WCRT: r(1, 1)},
		},
		[]taskgraph.Link{
			{Prod: taskgraph.MustQuanta(1), Cons: taskgraph.MustQuanta(1)},
			{Prod: taskgraph.MustQuanta(1), Cons: taskgraph.MustQuanta(1)},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	platform := Platform{
		Processors: []Processor{{Name: "cpu", Frame: r(4, 1)}},
		Bindings: []Binding{
			{Task: "a", Processor: "cpu", WCET: r(2, 1)},
			{Task: "b", Processor: "cpu", WCET: r(2, 1)},
			{Task: "c", Processor: "cpu", WCET: r(2, 1)},
		},
	}
	res, err := Dimension(g, taskgraph.Constraint{Task: "c", Period: r(5, 1)}, platform, capacity.PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("overloaded wheel accepted")
	}
	found := false
	for _, d := range res.Diagnostics {
		if strings.Contains(d, "exceed the frame") {
			found = true
		}
	}
	if !found {
		t.Errorf("no wheel diagnostic: %v", res.Diagnostics)
	}
}

func TestDimensionImpossibleDeadline(t *testing.T) {
	g := pair(t)
	platform := Platform{
		Processors: []Processor{{Name: "cpu", Frame: r(10, 1)}},
		Bindings: []Binding{
			{Task: "a", Processor: "cpu", WCET: r(9, 1)},
			{Task: "b", Processor: "cpu", WCET: r(1, 1)},
		},
	}
	// φ(a) = 3 < WCET 9: no arbiter can help.
	res, err := Dimension(g, taskgraph.Constraint{Task: "b", Period: r(3, 1)}, platform, capacity.PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("impossible deadline accepted")
	}
	found := false
	for _, d := range res.Diagnostics {
		if strings.Contains(d, "no TDM slice") {
			found = true
		}
	}
	if !found {
		t.Errorf("no slice diagnostic: %v", res.Diagnostics)
	}
}

func TestDimensionValidation(t *testing.T) {
	g := pair(t)
	con := taskgraph.Constraint{Task: "b", Period: r(12, 1)}
	base := Platform{
		Processors: []Processor{{Name: "cpu", Frame: r(10, 1)}},
		Bindings: []Binding{
			{Task: "a", Processor: "cpu", WCET: r(1, 1)},
			{Task: "b", Processor: "cpu", WCET: r(1, 1)},
		},
	}
	cases := []struct {
		name   string
		mutate func(Platform) Platform
	}{
		{"zero frame", func(p Platform) Platform {
			p.Processors = []Processor{{Name: "cpu", Frame: ratio.Zero}}
			return p
		}},
		{"duplicate processor", func(p Platform) Platform {
			p.Processors = append(p.Processors, Processor{Name: "cpu", Frame: r(1, 1)})
			return p
		}},
		{"duplicate binding", func(p Platform) Platform {
			p.Bindings = append(p.Bindings, p.Bindings[0])
			return p
		}},
		{"unknown task", func(p Platform) Platform {
			p.Bindings = append(p.Bindings, Binding{Task: "zz", Processor: "cpu", WCET: r(1, 1)})
			return p
		}},
		{"unknown processor", func(p Platform) Platform {
			p.Bindings[0].Processor = "zz"
			return p
		}},
		{"zero wcet", func(p Platform) Platform {
			p.Bindings[0].WCET = ratio.Zero
			return p
		}},
		{"missing binding", func(p Platform) Platform {
			p.Bindings = p.Bindings[:1]
			return p
		}},
	}
	for _, c := range cases {
		// Deep-copy the base platform before mutating.
		cp := Platform{
			Processors: append([]Processor(nil), base.Processors...),
			Bindings:   append([]Binding(nil), base.Bindings...),
		}
		if _, err := Dimension(g, con, c.mutate(cp), capacity.PolicyEquation4); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestDimensionMP3StyleTwoProcessors(t *testing.T) {
	// A realistic split: front end (reader + decoder) on one processor,
	// back end (SRC) on another, sink dedicated. WCETs well under the φ
	// values so slices exist comfortably.
	g, err := taskgraph.BuildChain(
		[]taskgraph.Stage{
			{Name: "rd", WCRT: r(1, 1)}, {Name: "dec", WCRT: r(1, 1)},
			{Name: "src", WCRT: r(1, 1)}, {Name: "out", WCRT: r(1, 1)},
		},
		[]taskgraph.Link{
			{Prod: taskgraph.MustQuanta(16), Cons: taskgraph.MustQuanta(2, 8)},
			{Prod: taskgraph.MustQuanta(9), Cons: taskgraph.MustQuanta(4)},
			{Prod: taskgraph.MustQuanta(3), Cons: taskgraph.MustQuanta(1)},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	platform := Platform{
		Processors: []Processor{
			{Name: "cpu0", Frame: r(2, 1)},
			{Name: "cpu1", Frame: r(1, 2)},
		},
		Bindings: []Binding{
			{Task: "rd", Processor: "cpu0", WCET: r(1, 2)},
			{Task: "dec", Processor: "cpu0", WCET: r(1, 2)},
			{Task: "src", Processor: "cpu1", WCET: r(1, 8)},
			{Task: "out", Processor: "cpu1", WCET: r(1, 8)},
		},
	}
	res, err := Dimension(g, taskgraph.Constraint{Task: "out", Period: r(2, 1)}, platform, capacity.PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("infeasible: %v", res.Diagnostics)
	}
	if len(res.Processors) != 2 {
		t.Fatalf("processors = %d", len(res.Processors))
	}
	for _, p := range res.Processors {
		if !p.Fits {
			t.Errorf("processor %s overloaded: %v/%v", p.Processor, p.SliceSum, p.Frame)
		}
	}
}
