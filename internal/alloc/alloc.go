// Package alloc dimensions the platform side of the paper's system model:
// given a chain of tasks with worst-case execution times, a set of
// TDM-arbitrated processors and a binding of tasks to processors, it
// computes per-task TDM slices such that every task's worst-case response
// time κ (slice-dependent, per the arbiter model) stays within the minimal
// start distance φ that the throughput constraint demands — and then runs
// the buffer-capacity analysis on the resulting response times.
//
// This closes the loop the paper sketches in §3.1: the analysis consumes
// response times that "run-time arbiters can guarantee given the worst-case
// execution times and the scheduler settings"; this package finds scheduler
// settings that make the whole chain feasible, or explains why none exist
// (a task's WCET above its φ, or a processor's TDM wheel overflowing).
//
// A key structural fact makes this a one-pass computation: the minimal
// start distances φ depend only on the transfer quanta and the period, not
// on the response times, so the deadlines for the slice computation are
// known before any slice is chosen.
package alloc

import (
	"fmt"

	"vrdfcap/internal/arbiter"
	"vrdfcap/internal/capacity"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

// Processor is one TDM-arbitrated resource.
type Processor struct {
	// Name identifies the processor.
	Name string
	// Frame is the TDM wheel period.
	Frame ratio.Rat
}

// Binding places one task on a processor with its worst-case execution
// time.
type Binding struct {
	Task      string
	Processor string
	WCET      ratio.Rat
}

// Platform is the processor set and the task binding.
type Platform struct {
	Processors []Processor
	Bindings   []Binding
}

// TaskAllocation is the per-task outcome.
type TaskAllocation struct {
	Task      string
	Processor string
	WCET      ratio.Rat
	// Slice is the chosen TDM slice.
	Slice ratio.Rat
	// Rho is the resulting worst-case response time κ.
	Rho ratio.Rat
	// Phi is the deadline the slice was chosen against.
	Phi ratio.Rat
}

// ProcessorLoad is the per-processor outcome.
type ProcessorLoad struct {
	Processor string
	Frame     ratio.Rat
	// SliceSum is the total allocated slice time per frame.
	SliceSum ratio.Rat
	// Utilisation is SliceSum/Frame.
	Utilisation ratio.Rat
	// Fits reports SliceSum <= Frame.
	Fits bool
}

// Result is the outcome of Dimension.
type Result struct {
	Tasks      []TaskAllocation
	Processors []ProcessorLoad
	// Analysis is the buffer-capacity analysis with the derived
	// response times; nil when slice allocation already failed.
	Analysis *capacity.Result
	// Feasible reports that every slice was found, every TDM wheel
	// fits, and the final analysis is valid.
	Feasible bool
	// Diagnostics explains failures.
	Diagnostics []string
}

// Dimension chooses TDM slices and sizes the buffers. The graph's WCRT
// values are ignored (they are an *output* here); the WCETs come from the
// platform binding, which must cover every task exactly once.
func Dimension(g *taskgraph.Graph, c taskgraph.Constraint, platform Platform, policy capacity.Policy) (*Result, error) {
	procByName := make(map[string]*Processor, len(platform.Processors))
	for i := range platform.Processors {
		p := &platform.Processors[i]
		if p.Frame.Sign() <= 0 {
			return nil, fmt.Errorf("alloc: processor %s needs a positive frame, got %v", p.Name, p.Frame)
		}
		if _, dup := procByName[p.Name]; dup {
			return nil, fmt.Errorf("alloc: duplicate processor %s", p.Name)
		}
		procByName[p.Name] = p
	}
	bindByTask := make(map[string]*Binding, len(platform.Bindings))
	for i := range platform.Bindings {
		b := &platform.Bindings[i]
		if _, dup := bindByTask[b.Task]; dup {
			return nil, fmt.Errorf("alloc: task %s bound twice", b.Task)
		}
		if g.Task(b.Task) == nil {
			return nil, fmt.Errorf("alloc: binding for unknown task %s", b.Task)
		}
		if _, ok := procByName[b.Processor]; !ok {
			return nil, fmt.Errorf("alloc: task %s bound to unknown processor %s", b.Task, b.Processor)
		}
		if b.WCET.Sign() <= 0 {
			return nil, fmt.Errorf("alloc: task %s needs a positive WCET, got %v", b.Task, b.WCET)
		}
		bindByTask[b.Task] = b
	}
	for _, t := range g.Tasks() {
		if _, ok := bindByTask[t.Name]; !ok {
			return nil, fmt.Errorf("alloc: task %s has no binding", t.Name)
		}
	}

	// φ depends only on quanta and the period: compute it with the
	// WCETs standing in for κ (the values do not influence φ).
	withWCET := g.Clone()
	for _, t := range withWCET.Tasks() {
		t.WCRT = bindByTask[t.Name].WCET
	}
	pre, err := capacity.Compute(withWCET, c, policy)
	if err != nil {
		return nil, err
	}

	res := &Result{Feasible: true}
	sliceSums := make(map[string]ratio.Rat, len(platform.Processors))
	rhoByTask := make(map[string]ratio.Rat, len(platform.Bindings))
	tasks, _, err := g.Chain()
	if err != nil {
		return nil, err
	}
	for _, t := range tasks {
		b := bindByTask[t.Name]
		proc := procByName[b.Processor]
		phi := pre.Phi[t.Name]
		ta := TaskAllocation{
			Task: t.Name, Processor: b.Processor, WCET: b.WCET, Phi: phi,
		}
		tdm := arbiter.TDM{Frame: proc.Frame}
		slice, err := tdm.MinSliceForDeadline(b.WCET, phi)
		if err != nil {
			res.Feasible = false
			res.Diagnostics = append(res.Diagnostics, fmt.Sprintf(
				"task %s on %s: no TDM slice meets φ=%v: %v", t.Name, b.Processor, phi, err))
			// Account a full frame so the utilisation report shows
			// the pressure, and carry the WCET as a floor for κ.
			ta.Slice = proc.Frame
			ta.Rho = b.WCET
		} else {
			ta.Slice = slice
			rho, err := arbiter.TDM{Slice: slice, Frame: proc.Frame}.ResponseTime(b.WCET)
			if err != nil {
				return nil, err
			}
			ta.Rho = rho
		}
		rhoByTask[t.Name] = ta.Rho
		sliceSums[b.Processor] = sliceSums[b.Processor].Add(ta.Slice)
		res.Tasks = append(res.Tasks, ta)
	}
	for _, p := range platform.Processors {
		sum := sliceSums[p.Name]
		load := ProcessorLoad{
			Processor:   p.Name,
			Frame:       p.Frame,
			SliceSum:    sum,
			Utilisation: sum.Div(p.Frame),
			Fits:        sum.LessEq(p.Frame),
		}
		if !load.Fits {
			res.Feasible = false
			res.Diagnostics = append(res.Diagnostics, fmt.Sprintf(
				"processor %s: allocated slices %v exceed the frame %v", p.Name, sum, p.Frame))
		}
		res.Processors = append(res.Processors, load)
	}

	// Final analysis with the derived response times.
	final := g.Clone()
	for _, t := range final.Tasks() {
		t.WCRT = rhoByTask[t.Name]
	}
	analysis, err := capacity.Compute(final, c, policy)
	if err != nil {
		return nil, err
	}
	res.Analysis = analysis
	if !analysis.Valid {
		res.Feasible = false
		res.Diagnostics = append(res.Diagnostics, analysis.Diagnostics...)
	}
	return res, nil
}
