// Package csdf models Cyclo-Static Dataflow chains: transfer quanta that
// vary per execution but follow a fixed, statically known cyclic pattern of
// phases (Wiggers et al.'s RTAS 2007 setting, reference [15] of the DATE
// 2008 paper).
//
// CSDF sits between constant-rate SDF and the paper's data-dependent VRDF:
// the quanta change every firing, but the sequence is known at design time.
// VRDF subsumes it — a pattern is just one admissible quanta sequence — so
// this package derives the task graph (quanta sets = pattern values) and
// the exact cyclic workload from the patterns, letting the VRDF capacity
// analysis size the buffers and the simulator validate or empirically
// minimise them against the *actual* pattern rather than the worst case.
// The gap between Equation (4) (which only sees the sets) and the
// pattern-aware empirical minimum quantifies what phase knowledge is worth.
package csdf

import (
	"fmt"

	"vrdfcap/internal/quanta"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
)

// Pattern is the per-phase transfer quanta of one actor on one buffer; the
// actor cycles through the phases, transferring Pattern[k mod len] in
// firing k.
type Pattern []int64

// Validate checks the pattern: non-empty, no negative quanta, at least one
// positive quantum.
func (p Pattern) Validate() error {
	if len(p) == 0 {
		return fmt.Errorf("csdf: empty pattern")
	}
	sum := int64(0)
	for i, v := range p {
		if v < 0 {
			return fmt.Errorf("csdf: negative quantum %d in phase %d", v, i)
		}
		sum += v
	}
	if sum == 0 {
		return fmt.Errorf("csdf: pattern transfers nothing over a full cycle")
	}
	return nil
}

// Sum returns the tokens transferred over one full cycle.
func (p Pattern) Sum() int64 {
	var s int64
	for _, v := range p {
		s += v
	}
	return s
}

// Set returns the quanta set of the pattern's values — what the VRDF
// analysis sees.
func (p Pattern) Set() (taskgraph.QuantaSet, error) {
	return taskgraph.NewQuantaSet([]int64(p)...)
}

// Sequence returns the exact cyclic firing sequence — what actually
// executes.
func (p Pattern) Sequence() quanta.Sequence {
	return quanta.Cycle([]int64(p)...)
}

// Stage is one task of a CSDF chain.
type Stage struct {
	Name string
	WCRT ratio.Rat
}

// Link is the buffer between consecutive stages with cyclo-static patterns
// on both sides.
type Link struct {
	Prod Pattern
	Cons Pattern
}

// Chain is a CSDF chain lowered onto the task-graph machinery.
type Chain struct {
	// Graph is the derived task graph (quanta sets from the patterns).
	Graph *taskgraph.Graph
	// Workloads is the exact cyclic workload the patterns prescribe.
	Workloads sim.Workloads
	// Phases maps each task to its phase count.
	Phases map[string]int

	links []Link
}

// BuildChain validates the patterns and lowers the chain. A task's phase
// count is the length of its patterns; a middle task's consumption and
// production patterns must agree on it (the actor steps through its phases
// once per firing, on all its buffers together).
func BuildChain(stages []Stage, links []Link) (*Chain, error) {
	if len(stages) < 2 || len(links) != len(stages)-1 {
		return nil, fmt.Errorf("csdf: %d stages need %d links, got %d", len(stages), len(stages)-1, len(links))
	}
	phases := make(map[string]int, len(stages))
	record := func(task string, n int) error {
		if prev, ok := phases[task]; ok && prev != n {
			return fmt.Errorf("csdf: task %s has patterns of length %d and %d; an actor has one phase count", task, prev, n)
		}
		phases[task] = n
		return nil
	}
	tgLinks := make([]taskgraph.Link, len(links))
	for i, l := range links {
		if err := l.Prod.Validate(); err != nil {
			return nil, fmt.Errorf("csdf: link %d production: %w", i, err)
		}
		if err := l.Cons.Validate(); err != nil {
			return nil, fmt.Errorf("csdf: link %d consumption: %w", i, err)
		}
		if err := record(stages[i].Name, len(l.Prod)); err != nil {
			return nil, err
		}
		if err := record(stages[i+1].Name, len(l.Cons)); err != nil {
			return nil, err
		}
		prodSet, err := l.Prod.Set()
		if err != nil {
			return nil, fmt.Errorf("csdf: link %d: %w", i, err)
		}
		consSet, err := l.Cons.Set()
		if err != nil {
			return nil, fmt.Errorf("csdf: link %d: %w", i, err)
		}
		tgLinks[i] = taskgraph.Link{Prod: prodSet, Cons: consSet}
	}
	tgStages := make([]taskgraph.Stage, len(stages))
	for i, s := range stages {
		tgStages[i] = taskgraph.Stage{Name: s.Name, WCRT: s.WCRT}
		if _, ok := phases[s.Name]; !ok {
			phases[s.Name] = 1
		}
	}
	g, err := taskgraph.BuildChain(tgStages, tgLinks)
	if err != nil {
		return nil, err
	}
	w := make(sim.Workloads, len(links))
	for i, l := range links {
		w[g.Buffers()[i].DefaultName()] = sim.Workload{
			Prod: l.Prod.Sequence(),
			Cons: l.Cons.Sequence(),
		}
	}
	return &Chain{Graph: g, Workloads: w, Phases: phases, links: links}, nil
}

// RepetitionVector returns the smallest positive firing counts per task
// that return the chain to its initial token distribution: firings are
// balanced over full pattern cycles (q(u)·Σprod/L(u) per firing on
// average), and each count is a whole number of the task's phase cycles.
func (c *Chain) RepetitionVector() (map[string]int64, error) {
	tasks, buffers, err := c.Graph.Chain()
	if err != nil {
		return nil, err
	}
	// Cycle counts Q: Q(u)·Σprod = Q(v)·Σcons per buffer; propagate as
	// exact rationals from the source, then scale to the smallest
	// integer vector.
	qr := make(map[string]ratio.Rat, len(tasks))
	qr[tasks[0].Name] = ratio.One
	for i := range buffers {
		qr[tasks[i+1].Name] = qr[tasks[i].Name].
			MulInt(c.links[i].Prod.Sum()).
			DivInt(c.links[i].Cons.Sum())
	}
	lcm := int64(1)
	for _, v := range qr {
		lcm = ratio.LCM(lcm, v.Den())
	}
	q := make(map[string]int64, len(qr))
	gcd := int64(0)
	for name, v := range qr {
		n := v.MulInt(lcm).Num()
		q[name] = n
		gcd = ratio.GCD(gcd, n)
	}
	if gcd > 1 {
		for name := range q {
			q[name] /= gcd
		}
	}
	// Convert cycle counts to firing counts.
	for name := range q {
		q[name] *= int64(c.Phases[name])
	}
	return q, nil
}
