package csdf

import (
	"fmt"

	"vrdfcap/internal/capacity"
	"vrdfcap/internal/minimize"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
)

// Analyze sizes the chain's buffers with the VRDF analysis. The analysis
// sees only the quanta sets, not the phase order — the generality the DATE
// 2008 paper trades for pattern knowledge.
func (c *Chain) Analyze(con taskgraph.Constraint, p capacity.Policy) (*capacity.Result, error) {
	return capacity.Compute(c.Graph, con, p)
}

// Verify checks a sizing against the exact cyclic workload the patterns
// prescribe.
func (c *Chain) Verify(sized *taskgraph.Graph, con taskgraph.Constraint, firings int64) (*sim.Verification, error) {
	return sim.VerifyThroughput(sized, con, sim.VerifyOptions{
		Firings:   firings,
		Workloads: c.Workloads,
		Validate:  true,
	})
}

// PatternMinimalCapacities searches for the smallest capacities that
// sustain the throughput constraint under the exact cyclic pattern — the
// quantity a dedicated cyclo-static analysis ([15]) bounds statically. The
// VRDF sizing is used as the (feasible) starting point, so the result also
// certifies that Equation (4) is an upper bound for the pattern.
func (c *Chain) PatternMinimalCapacities(con taskgraph.Constraint, firings int64) (map[string]int64, *capacity.Result, error) {
	res, err := c.Analyze(con, capacity.PolicyEquation4)
	if err != nil {
		return nil, nil, err
	}
	if !res.Valid {
		return nil, res, fmt.Errorf("csdf: chain infeasible: %v", res.Diagnostics)
	}
	upper := make(map[string]int64, len(res.Buffers))
	names := make([]string, 0, len(res.Buffers))
	for _, b := range res.Buffers {
		upper[b.Buffer] = b.Capacity
		names = append(names, b.Buffer)
	}
	check := minimize.ThroughputCheck(c.Graph, con, firings, []sim.Workloads{c.Workloads})
	min, err := minimize.Search(names, upper, check)
	if err != nil {
		return nil, res, err
	}
	return min.Caps, res, nil
}
