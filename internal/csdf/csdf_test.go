package csdf

import (
	"strings"
	"testing"

	"vrdfcap/internal/capacity"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

func r(n, d int64) ratio.Rat { return ratio.MustNew(n, d) }

// downsampler builds a classic CSDF chain: a source emitting 2 per firing,
// a two-phase downsampler consuming (2,2) and producing (1,0) — it emits
// only every other firing — and a sink consuming 1.
func downsampler(t *testing.T) *Chain {
	t.Helper()
	c, err := BuildChain(
		[]Stage{
			{Name: "src", WCRT: r(1, 4)},
			{Name: "down", WCRT: r(1, 4)},
			{Name: "snk", WCRT: r(1, 4)},
		},
		[]Link{
			{Prod: Pattern{2}, Cons: Pattern{2, 2}},
			{Prod: Pattern{1, 0}, Cons: Pattern{1}},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPatternValidate(t *testing.T) {
	if err := (Pattern{1, 0, 2}).Validate(); err != nil {
		t.Errorf("valid pattern rejected: %v", err)
	}
	if err := (Pattern{}).Validate(); err == nil {
		t.Error("empty pattern accepted")
	}
	if err := (Pattern{0, 0}).Validate(); err == nil {
		t.Error("all-zero pattern accepted")
	}
	if err := (Pattern{1, -1}).Validate(); err == nil {
		t.Error("negative quantum accepted")
	}
	if got := (Pattern{1, 0, 2}).Sum(); got != 3 {
		t.Errorf("Sum = %d, want 3", got)
	}
}

func TestPatternSetAndSequence(t *testing.T) {
	p := Pattern{2, 3, 2}
	set, err := p.Set()
	if err != nil {
		t.Fatal(err)
	}
	if set.String() != "{2,3}" {
		t.Errorf("Set = %v", set)
	}
	seq := p.Sequence()
	want := []int64{2, 3, 2, 2, 3, 2}
	for k, w := range want {
		if got := seq.At(int64(k)); got != w {
			t.Errorf("At(%d) = %d, want %d", k, got, w)
		}
	}
}

func TestBuildChainDerivesTaskGraph(t *testing.T) {
	c := downsampler(t)
	if c.Phases["src"] != 1 || c.Phases["down"] != 2 || c.Phases["snk"] != 1 {
		t.Errorf("phases = %v", c.Phases)
	}
	b := c.Graph.Buffers()[1]
	// The (1,0) production pattern becomes the quanta set {0,1}.
	if b.Prod.String() != "{0,1}" {
		t.Errorf("derived production set = %v", b.Prod)
	}
	if len(c.Workloads) != 2 {
		t.Errorf("workloads = %d entries", len(c.Workloads))
	}
}

func TestBuildChainRejectsPhaseMismatch(t *testing.T) {
	_, err := BuildChain(
		[]Stage{{Name: "a", WCRT: r(1, 1)}, {Name: "b", WCRT: r(1, 1)}, {Name: "c", WCRT: r(1, 1)}},
		[]Link{
			{Prod: Pattern{1}, Cons: Pattern{1, 1}},    // b has 2 phases here
			{Prod: Pattern{1, 1, 1}, Cons: Pattern{1}}, // and 3 phases here
		},
	)
	if err == nil {
		t.Fatal("phase mismatch accepted")
	}
	if !strings.Contains(err.Error(), "phase count") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestBuildChainRejectsBadShapes(t *testing.T) {
	if _, err := BuildChain(nil, nil); err == nil {
		t.Error("empty chain accepted")
	}
	if _, err := BuildChain(
		[]Stage{{Name: "a", WCRT: r(1, 1)}, {Name: "b", WCRT: r(1, 1)}},
		[]Link{{Prod: Pattern{}, Cons: Pattern{1}}},
	); err == nil {
		t.Error("invalid pattern accepted")
	}
}

func TestRepetitionVectorDownsampler(t *testing.T) {
	c := downsampler(t)
	q, err := c.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	// Per cycle: src emits 2, down consumes 4 per cycle (2 firings) and
	// emits 1, snk consumes 1. Cycle counts: Q(src)=2, Q(down)=1,
	// Q(snk)=1 -> firings: src 2, down 2, snk 1.
	want := map[string]int64{"src": 2, "down": 2, "snk": 1}
	for task, w := range want {
		if q[task] != w {
			t.Errorf("q(%s) = %d, want %d", task, q[task], w)
		}
	}
}

func TestAnalyzeAndVerifyDownsamplerSourceConstrained(t *testing.T) {
	// The downsampler's (1,0) production pattern contains a zero phase,
	// which §4.2 forbids under a sink constraint but §4.4 permits under
	// a source constraint — so the CSDF downsampler is analysed with
	// the source pinned (the typical capture pipeline anyway).
	c := downsampler(t)
	con := taskgraph.Constraint{Task: "src", Period: r(1, 1)}
	res, err := c.Analyze(con, capacity.PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatalf("downsampler chain infeasible: %v", res.Diagnostics)
	}
	sized, err := capacity.Sized(c.Graph, res)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Verify(sized, con, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		t.Errorf("cyclic workload not sustained: %s", v.Reason)
	}
}

// filterChain is a fully positive two-phase chain suitable for sink
// constraints: src emits 2, a filter consumes (3,1) and produces (1,3), the
// sink consumes 2.
func filterChain(t *testing.T) *Chain {
	t.Helper()
	c, err := BuildChain(
		[]Stage{
			{Name: "src", WCRT: r(1, 8)},
			{Name: "fir", WCRT: r(1, 8)},
			{Name: "snk", WCRT: r(1, 8)},
		},
		[]Link{
			{Prod: Pattern{2}, Cons: Pattern{3, 1}},
			{Prod: Pattern{1, 3}, Cons: Pattern{2}},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAnalyzeAndVerifyFilterSinkConstrained(t *testing.T) {
	c := filterChain(t)
	con := taskgraph.Constraint{Task: "snk", Period: r(1, 1)}
	res, err := c.Analyze(con, capacity.PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatalf("filter chain infeasible: %v", res.Diagnostics)
	}
	sized, err := capacity.Sized(c.Graph, res)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Verify(sized, con, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		t.Errorf("cyclic workload not sustained: %s", v.Reason)
	}
}

func TestPatternMinimalCapacities(t *testing.T) {
	// Pattern knowledge can only shrink the requirement: the minimum
	// under the exact cycle is bounded by Equation (4)'s sizing, and the
	// gap quantifies what phase knowledge is worth.
	c := filterChain(t)
	con := taskgraph.Constraint{Task: "snk", Period: r(1, 1)}
	min, res, err := c.PatternMinimalCapacities(con, 300)
	if err != nil {
		t.Fatal(err)
	}
	var minTotal int64
	for _, v := range min {
		minTotal += v
	}
	if minTotal > res.TotalCapacity() {
		t.Errorf("pattern minimum %d exceeds Equation (4) total %d", minTotal, res.TotalCapacity())
	}
	if minTotal <= 0 {
		t.Errorf("degenerate pattern minimum %d", minTotal)
	}
}

func TestZeroProductionPhaseSinkConstrained(t *testing.T) {
	// A production pattern containing a zero phase makes the chain
	// infeasible under a sink constraint (§4.2: only consumption may be
	// zero), and the analysis must say so rather than size it.
	c, err := BuildChain(
		[]Stage{{Name: "a", WCRT: r(1, 8)}, {Name: "b", WCRT: r(1, 8)}},
		[]Link{{Prod: Pattern{1, 0}, Cons: Pattern{1}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Analyze(taskgraph.Constraint{Task: "b", Period: r(1, 1)}, capacity.PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid {
		t.Error("zero-production-phase chain accepted under sink constraint")
	}
}
