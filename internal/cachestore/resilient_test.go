package cachestore_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/cachestore"
)

// flaky wraps a Mem backend and fails the next `failures` operations
// with err before delegating, counting every call.
type flaky struct {
	inner    *cachestore.Mem
	mu       sync.Mutex
	failures int
	err      error
	calls    int
}

func newFlaky(failures int) *flaky {
	return &flaky{inner: cachestore.NewMem(), failures: failures, err: errors.New("flaky: injected failure")}
}

func (f *flaky) step() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.failures != 0 {
		if f.failures > 0 {
			f.failures--
		}
		return f.err
	}
	return nil
}

func (f *flaky) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func (f *flaky) Read(ctx context.Context, fp string) ([]byte, error) {
	if err := f.step(); err != nil {
		return nil, err
	}
	return f.inner.Read(ctx, fp)
}

func (f *flaky) Write(ctx context.Context, fp string, data []byte) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.Write(ctx, fp, data)
}

func (f *flaky) Delete(ctx context.Context, fp string) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.Delete(ctx, fp)
}

func (f *flaky) List(ctx context.Context) ([]string, error) {
	if err := f.step(); err != nil {
		return nil, err
	}
	return f.inner.List(ctx)
}

func (f *flaky) String() string { return "flaky:" }

// seams returns instant test seams: a settable clock and a sleep that
// records requested delays without waiting.
type seams struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

func (s *seams) clock() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

func (s *seams) advance(d time.Duration) {
	s.mu.Lock()
	s.now = s.now.Add(d)
	s.mu.Unlock()
}

func (s *seams) sleep(ctx context.Context, d time.Duration) error {
	s.mu.Lock()
	s.sleeps = append(s.sleeps, d)
	s.mu.Unlock()
	return ctx.Err()
}

func (s *seams) sleepCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sleeps)
}

func testOptions(s *seams) cachestore.Options {
	return cachestore.Options{
		Retries:          2,
		Backoff:          10 * time.Millisecond,
		MaxBackoff:       40 * time.Millisecond,
		FailureThreshold: 3,
		Cooldown:         time.Second,
		Seed:             2008,
		Clock:            s.clock,
		Sleep:            s.sleep,
	}
}

func TestResilientRetriesThenSucceeds(t *testing.T) {
	s := &seams{}
	fk := newFlaky(2)
	r := cachestore.NewResilient(fk, nil, testOptions(s))
	ctx := context.Background()

	if err := r.Write(ctx, fp("a"), []byte("v")); err != nil {
		t.Fatalf("Write = %v, want success on third attempt", err)
	}
	if got := fk.callCount(); got != 3 {
		t.Fatalf("primary saw %d calls, want 3 (1 + 2 retries)", got)
	}
	st := r.Stats()
	if st.PrimaryOps != 1 || st.PrimaryErrors != 2 || st.Retries != 2 || st.Demotions != 0 {
		t.Fatalf("stats = %+v, want 1 op, 2 errors, 2 retries, 0 demotions", st)
	}
	if s.sleepCount() != 2 {
		t.Fatalf("slept %d times, want 2", s.sleepCount())
	}
	// Jittered exponential backoff: delay i sits in [0.5, 1.5)·base·2^i,
	// and the same seed reproduces the same stream.
	for i, d := range s.sleeps {
		base := 10 * time.Millisecond << i
		if d < base/2 || d >= base+base/2 {
			t.Errorf("backoff %d = %v, want in [%v, %v)", i, d, base/2, base+base/2)
		}
	}
	s2 := &seams{}
	r2 := cachestore.NewResilient(newFlaky(2), nil, testOptions(s2))
	if err := r2.Write(ctx, fp("a"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := range s.sleeps {
		if s.sleeps[i] != s2.sleeps[i] {
			t.Fatalf("same seed, different backoff stream: %v vs %v", s.sleeps, s2.sleeps)
		}
	}
}

func TestResilientMissIsNotRetried(t *testing.T) {
	s := &seams{}
	fk := newFlaky(0)
	r := cachestore.NewResilient(fk, nil, testOptions(s))
	if _, err := r.Read(context.Background(), fp("missing")); !errors.Is(err, cachestore.ErrNotFound) {
		t.Fatalf("Read = %v, want ErrNotFound", err)
	}
	if got := fk.callCount(); got != 1 {
		t.Fatalf("primary saw %d calls for a miss, want 1 (no retries)", got)
	}
	if st := r.Stats(); st.PrimaryErrors != 0 {
		t.Fatalf("a miss was counted as an error: %+v", st)
	}
}

func TestResilientCanceledContextAbortsPromptly(t *testing.T) {
	s := &seams{}
	fk := newFlaky(-1) // fail forever
	r := cachestore.NewResilient(fk, cachestore.NewMem(), testOptions(s))

	// Cancelled before the call: no attempt at all.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Read(canceled, fp("a")); !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("Read(pre-canceled) = %v, want budget.ErrCanceled", err)
	}
	if fk.callCount() != 0 {
		t.Fatalf("primary touched despite pre-canceled context")
	}

	// Cancelled mid-backoff: the retry loop must stop spinning at once,
	// keep the typed identity, and neither demote nor penalise the
	// breaker — a hung-up caller says nothing about backend health.
	ctx, cancel2 := context.WithCancel(context.Background())
	calls := 0
	opts := testOptions(s)
	opts.Sleep = func(c context.Context, d time.Duration) error {
		calls++
		cancel2()
		return c.Err()
	}
	r2 := cachestore.NewResilient(newFlaky(-1), cachestore.NewMem(), opts)
	if _, err := r2.Read(ctx, fp("a")); !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("Read(canceled mid-backoff) = %v, want budget.ErrCanceled", err)
	}
	if calls != 1 {
		t.Fatalf("retry loop slept %d times after cancellation, want 1", calls)
	}
	if st := r2.Stats(); st.Demotions != 0 || st.BreakerOpens != 0 {
		t.Fatalf("cancellation was held against the backend: %+v", st)
	}
}

func TestResilientWriteThroughAndDemotion(t *testing.T) {
	s := &seams{}
	fk := newFlaky(-1) // primary is dead
	fallback := cachestore.NewMem()
	r := cachestore.NewResilient(fk, fallback, testOptions(s))
	ctx := context.Background()

	// A dead primary must not fail the write: the payload lands in the
	// fallback tier and the operation reports success.
	if err := r.Write(ctx, fp("a"), []byte("v")); err != nil {
		t.Fatalf("Write with dead primary = %v, want demoted success", err)
	}
	if got, err := fallback.Read(ctx, fp("a")); err != nil || string(got) != "v" {
		t.Fatalf("fallback holds %q, %v, want write-through copy", got, err)
	}
	if got, err := r.Read(ctx, fp("a")); err != nil || string(got) != "v" {
		t.Fatalf("Read through demoted store = %q, %v, want fallback copy", got, err)
	}
	st := r.Stats()
	if st.Demotions < 2 {
		t.Fatalf("demotions = %d, want >= 2 (write + read)", st.Demotions)
	}
}

func TestResilientReadMissFallsThroughToFallback(t *testing.T) {
	s := &seams{}
	fk := newFlaky(0) // healthy but empty primary
	fallback := cachestore.NewMem()
	ctx := context.Background()
	if err := fallback.Write(ctx, fp("local"), []byte("only-here")); err != nil {
		t.Fatal(err)
	}
	r := cachestore.NewResilient(fk, fallback, testOptions(s))
	got, err := r.Read(ctx, fp("local"))
	if err != nil || string(got) != "only-here" {
		t.Fatalf("Read = %q, %v, want the fallback-only payload", got, err)
	}
	if fk.callCount() != 1 {
		t.Fatalf("primary saw %d calls, want 1 (a miss is not retried)", fk.callCount())
	}
}

func TestResilientCircuitBreaker(t *testing.T) {
	s := &seams{now: time.Unix(1000, 0)}
	fk := newFlaky(-1)
	fallback := cachestore.NewMem()
	opts := testOptions(s)
	opts.Retries = -1 // no retries: one attempt per op, crisper accounting
	opts.FailureThreshold = 2
	opts.Cooldown = time.Second
	r := cachestore.NewResilient(fk, fallback, opts)
	ctx := context.Background()

	// Two consecutive failed operations open the breaker.
	_, _ = r.Read(ctx, fp("a"))
	_, _ = r.Read(ctx, fp("a"))
	st := r.Stats()
	if st.BreakerOpens != 1 || !st.BreakerOpen {
		t.Fatalf("stats after threshold = %+v, want breaker open", st)
	}
	atAttempts := fk.callCount()

	// While open, operations fast-fail to the fallback without touching
	// the primary — a dead store costs nothing per lookup.
	if _, err := r.Read(ctx, fp("a")); !errors.Is(err, cachestore.ErrNotFound) {
		t.Fatalf("Read while open = %v, want fallback miss", err)
	}
	if err := r.Write(ctx, fp("a"), []byte("v")); err != nil {
		t.Fatalf("Write while open = %v, want demoted success", err)
	}
	if fk.callCount() != atAttempts {
		t.Fatalf("primary touched while breaker open: %d calls, had %d", fk.callCount(), atAttempts)
	}

	// After the cooldown, exactly one half-open trial probes the
	// primary; its failure snaps the breaker open again.
	s.advance(2 * time.Second)
	_, _ = r.Read(ctx, fp("a"))
	if fk.callCount() != atAttempts+1 {
		t.Fatalf("half-open trial made %d calls, want exactly 1", fk.callCount()-atAttempts)
	}
	if st := r.Stats(); st.BreakerOpens != 2 || !st.BreakerOpen {
		t.Fatalf("stats after failed trial = %+v, want re-opened breaker", st)
	}

	// The store recovers: the next trial succeeds, the breaker closes,
	// and the read sees the write-through copy from the open period.
	fk.mu.Lock()
	fk.failures = 0
	fk.mu.Unlock()
	s.advance(2 * time.Second)
	if _, err := r.Read(ctx, fp("a")); err != nil {
		// The recovered primary never saw fp("a") (the write was
		// demoted), so the fallback still answers.
		if !errors.Is(err, cachestore.ErrNotFound) {
			t.Fatalf("Read after recovery = %v", err)
		}
	}
	if st := r.Stats(); st.BreakerOpen {
		t.Fatalf("breaker still open after successful trial: %+v", st)
	}
	// With the breaker closed the primary serves again.
	if err := r.Write(ctx, fp("b"), []byte("w")); err != nil {
		t.Fatalf("Write after recovery = %v", err)
	}
	if got, err := fk.inner.Read(ctx, fp("b")); err != nil || string(got) != "w" {
		t.Fatalf("primary holds %q, %v after recovery", got, err)
	}
}

func TestResilientListUnionsTiers(t *testing.T) {
	s := &seams{}
	fk := newFlaky(0)
	fallback := cachestore.NewMem()
	ctx := context.Background()
	if err := fk.inner.Write(ctx, fp("remote"), []byte("r")); err != nil {
		t.Fatal(err)
	}
	if err := fallback.Write(ctx, fp("local"), []byte("l")); err != nil {
		t.Fatal(err)
	}
	r := cachestore.NewResilient(fk, fallback, testOptions(s))
	fps, err := r.List(ctx)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(fps) != 2 {
		t.Fatalf("List = %v, want union of both tiers", fps)
	}
	for i := 1; i < len(fps); i++ {
		if fps[i-1] >= fps[i] {
			t.Fatalf("List not sorted: %v", fps)
		}
	}
}

func TestResilientConcurrentOps(t *testing.T) {
	s := &seams{}
	r := cachestore.NewResilient(newFlaky(5), cachestore.NewMem(), testOptions(s))
	ctx := context.Background()
	var wg sync.WaitGroup
	var failures atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fp("k")
			if err := r.Write(ctx, key, []byte("v")); err != nil {
				failures.Add(1)
			}
			if _, err := r.Read(ctx, key); err != nil && !errors.Is(err, cachestore.ErrNotFound) {
				failures.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d concurrent ops failed despite fallback tier", failures.Load())
	}
}
