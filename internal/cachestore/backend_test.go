package cachestore_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/cachestore"
)

// fp returns a canonical fingerprint (64 lowercase hex digits) derived
// from name, so the same conformance suite exercises the dir, mem and
// HTTP backends (the HTTP protocol only admits canonical fingerprints).
func fp(name string) string {
	sum := sha256.Sum256([]byte(name))
	return hex.EncodeToString(sum[:])
}

// newHTTPBackend stands up Handler over a fresh Mem store and returns an
// HTTP backend pointed at it.
func newHTTPBackend(t *testing.T) cachestore.Backend {
	t.Helper()
	srv := httptest.NewServer(withCachePrefix(cachestore.Handler(cachestore.NewMem(), cachestore.HandlerLimits{})))
	t.Cleanup(srv.Close)
	b, err := cachestore.NewHTTP(srv.URL)
	if err != nil {
		t.Fatalf("NewHTTP: %v", err)
	}
	return b
}

func TestBackendConformance(t *testing.T) {
	backends := []struct {
		name string
		make func(t *testing.T) cachestore.Backend
	}{
		{"mem", func(t *testing.T) cachestore.Backend { return cachestore.NewMem() }},
		{"dir", func(t *testing.T) cachestore.Backend { return cachestore.NewDir(t.TempDir()) }},
		{"http", newHTTPBackend},
		{"resilient", func(t *testing.T) cachestore.Backend {
			return cachestore.NewResilient(cachestore.NewMem(), cachestore.NewMem(), cachestore.Options{})
		}},
	}
	for _, tc := range backends {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.make(t)
			ctx := context.Background()

			if _, err := b.Read(ctx, fp("missing")); !errors.Is(err, cachestore.ErrNotFound) {
				t.Fatalf("Read(missing) = %v, want ErrNotFound", err)
			}
			if fps, err := b.List(ctx); err != nil || len(fps) != 0 {
				t.Fatalf("List(empty) = %v, %v, want none", fps, err)
			}

			payload := []byte(`{"k":"v"}`)
			if err := b.Write(ctx, fp("a"), payload); err != nil {
				t.Fatalf("Write: %v", err)
			}
			payload[2] = 'X' // the backend must have copied
			got, err := b.Read(ctx, fp("a"))
			if err != nil || string(got) != `{"k":"v"}` {
				t.Fatalf("Read = %q, %v, want stored payload", got, err)
			}
			got[0] = 'Y' // mutating the returned slice must not poison the store
			if again, _ := b.Read(ctx, fp("a")); string(again) != `{"k":"v"}` {
				t.Fatalf("Read after mutation = %q, store was poisoned", again)
			}

			if err := b.Write(ctx, fp("a"), []byte("v2")); err != nil {
				t.Fatalf("overwrite: %v", err)
			}
			if got, _ := b.Read(ctx, fp("a")); string(got) != "v2" {
				t.Fatalf("Read after overwrite = %q, want v2", got)
			}

			if err := b.Write(ctx, fp("b"), []byte("bb")); err != nil {
				t.Fatalf("Write b: %v", err)
			}
			fps, err := b.List(ctx)
			if err != nil {
				t.Fatalf("List: %v", err)
			}
			want := map[string]bool{fp("a"): true, fp("b"): true}
			if len(fps) != 2 || !want[fps[0]] || !want[fps[1]] || fps[0] >= fps[1] {
				t.Fatalf("List = %v, want both fingerprints sorted", fps)
			}

			if err := b.Delete(ctx, fp("a")); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if err := b.Delete(ctx, fp("a")); err != nil {
				t.Fatalf("Delete(absent) = %v, want idempotent nil", err)
			}
			if _, err := b.Read(ctx, fp("a")); !errors.Is(err, cachestore.ErrNotFound) {
				t.Fatalf("Read after delete = %v, want ErrNotFound", err)
			}

			canceled, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := b.Read(canceled, fp("b")); !errors.Is(err, budget.ErrCanceled) {
				t.Errorf("Read(canceled ctx) = %v, want budget.ErrCanceled", err)
			}
			if err := b.Write(canceled, fp("c"), []byte("x")); !errors.Is(err, budget.ErrCanceled) {
				t.Errorf("Write(canceled ctx) = %v, want budget.ErrCanceled", err)
			}
			if err := b.Delete(canceled, fp("b")); !errors.Is(err, budget.ErrCanceled) {
				t.Errorf("Delete(canceled ctx) = %v, want budget.ErrCanceled", err)
			}
			if _, err := b.List(canceled); !errors.Is(err, budget.ErrCanceled) {
				t.Errorf("List(canceled ctx) = %v, want budget.ErrCanceled", err)
			}
		})
	}
}

func TestDirBackendLayout(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "not-yet")
	b := cachestore.NewDir(dir)
	ctx := context.Background()

	// Reads and lists against a missing directory are misses, not errors.
	if _, err := b.Read(ctx, fp("a")); !errors.Is(err, cachestore.ErrNotFound) {
		t.Fatalf("Read(no dir) = %v, want ErrNotFound", err)
	}
	if fps, err := b.List(ctx); err != nil || len(fps) != 0 {
		t.Fatalf("List(no dir) = %v, %v, want empty", fps, err)
	}

	// The first write creates the directory and lands <fp>.json — the
	// same layout probecache has always used, so existing -cache-dir
	// trees keep working.
	if err := b.Write(ctx, fp("a"), []byte("x")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, fp("a")+".json")); err != nil {
		t.Fatalf("expected %s.json on disk: %v", fp("a"), err)
	}

	// In-flight temp files are invisible to List.
	if err := os.WriteFile(filepath.Join(dir, fp("b")+".tmp123.json"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	fps, err := b.List(ctx)
	if err != nil || len(fps) != 1 || fps[0] != fp("a") {
		t.Fatalf("List = %v, %v, want only %s", fps, err, fp("a"))
	}

	// Unsafe fingerprints can never touch the filesystem.
	for _, bad := range []string{"", "../escape", "a/b", ".hidden"} {
		if err := b.Write(ctx, bad, []byte("x")); err == nil {
			t.Errorf("Write(%q) accepted an unsafe fingerprint", bad)
		}
	}
}

func TestParse(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		spec string
		want string
		ok   bool
	}{
		{"dir:" + dir, "dir:" + dir, true},
		{"mem:", "mem:", true},
		{"mem", "mem:", true},
		{"http://cache.example:8080", "http://cache.example:8080", true},
		{"https://cache.example", "https://cache.example", true},
		{"http://cache.example:8080/some/path", "http://cache.example:8080", true},
		{"", "", false},
		{"dir:", "", false},
		{"ftp://x", "", false},
		{"bogus", "", false},
	}
	for _, tc := range cases {
		b, err := cachestore.Parse(tc.spec)
		if tc.ok != (err == nil) {
			t.Errorf("Parse(%q) error = %v, want ok=%v", tc.spec, err, tc.ok)
			continue
		}
		if tc.ok && b.String() != tc.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.spec, b.String(), tc.want)
		}
	}
}
