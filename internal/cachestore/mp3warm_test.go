package cachestore_test

// Two-replica shared-remote smoke over the paper's §5 MP3 playback
// application: replica 1 minimises cold and flushes its frontier to a
// vrdfserve-style /v1/cache store; replica 2 — a fresh process sharing
// nothing but the remote — answers the identical minimisation with zero
// simulated probes. This is the fleet payoff the ROADMAP names: verdicts
// pooled across replicas, answers unchanged.

import (
	"testing"

	vrdfcap "vrdfcap"
	"vrdfcap/internal/cachestore"
	"vrdfcap/internal/minimize"
	"vrdfcap/internal/mp3"
	"vrdfcap/internal/probecache"
	"vrdfcap/internal/quanta"
	"vrdfcap/internal/sim"
)

func TestChaosWarmMP3MinimizeViaRemoteStore(t *testing.T) {
	if testing.Short() {
		t.Skip("cold §5 MP3 minimize simulates for seconds")
	}
	g, err := mp3.Graph()
	if err != nil {
		t.Fatal(err)
	}
	c := mp3.Constraint()
	res, err := vrdfcap.Analyze(g, c, vrdfcap.PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	names := mp3.BufferNames()
	upper := make(map[string]int64, len(names))
	for _, n := range names {
		upper[n] = res.BufferByName(n).Capacity
	}
	w := []sim.Workloads{{names[0]: {Cons: quanta.Uniform(mp3.FrameSizes(), 2008)}}}
	fp := probecache.GraphKey(g, "chaos-mp3-minimize", "2205")
	url := newSharedRemote(t)

	// Replica 1: cold search through the healthy remote, then flush.
	store1 := probecache.NewStoreBackend(
		cachestore.NewResilient(remoteBackend(t, url), cachestore.NewMem(), chaosOptions(1)))
	front1, err := store1.Entry(fp).Frontier(names[:])
	if err != nil {
		t.Fatal(err)
	}
	opts1 := minimize.Options{Cache: front1, Checkpoints: 8}
	cold, err := minimize.Search(names[:], upper, minimize.ThroughputCheck(g, c, 2205, w, opts1), opts1)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Checks == 0 {
		t.Fatal("cold replica simulated nothing; the warm assertion would be vacuous")
	}
	if _, err := store1.Flush(); err != nil {
		t.Fatal(err)
	}

	// Replica 2: fresh store, same remote — every probe answered by the
	// pooled frontier.
	store2 := probecache.NewStoreBackend(
		cachestore.NewResilient(remoteBackend(t, url), cachestore.NewMem(), chaosOptions(2)))
	front2, err := store2.Entry(fp).Frontier(names[:])
	if err != nil {
		t.Fatal(err)
	}
	opts2 := minimize.Options{Cache: front2}
	warm, err := minimize.Search(names[:], upper, minimize.ThroughputCheck(g, c, 2205, w, opts2), opts2)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Checks != 0 {
		t.Fatalf("warm replica simulated %d probes via the remote store, want 0", warm.Checks)
	}
	if warm.Total() != cold.Total() {
		t.Fatalf("warm minimum %d diverged from cold minimum %d", warm.Total(), cold.Total())
	}
	st := store2.Stats()
	if st.Loaded != 1 {
		t.Fatalf("replica 2 did not trust the flushed payload: %+v", st)
	}
	if st.Resilience == nil || st.Resilience.Demotions != 0 || st.Resilience.Retries != 0 {
		t.Errorf("healthy remote tripped the resilience layer: %+v", st.Resilience)
	}
}
