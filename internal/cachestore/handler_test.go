package cachestore_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vrdfcap/internal/cachestore"
)

// withCachePrefix mounts h the way internal/serve does: under the
// protocol's /v1/cache/ prefix.
func withCachePrefix(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle(cachestore.CachePath, http.StripPrefix(strings.TrimSuffix(cachestore.CachePath, "/"), h))
	return mux
}

func doReq(t *testing.T, srv *httptest.Server, method, path string, body []byte) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestHandlerProtocol(t *testing.T) {
	mem := cachestore.NewMem()
	srv := httptest.NewServer(withCachePrefix(cachestore.Handler(mem, cachestore.HandlerLimits{
		MaxPayloadBytes: 64,
		MaxEntries:      2,
	})))
	defer srv.Close()
	a, b, c := fp("a"), fp("b"), fp("c")

	if resp := doReq(t, srv, http.MethodGet, cachestore.CachePath+a, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET miss = %d, want 404", resp.StatusCode)
	}
	if resp := doReq(t, srv, http.MethodGet, cachestore.CachePath+"not-canonical", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET bad fingerprint = %d, want 400", resp.StatusCode)
	}
	if resp := doReq(t, srv, http.MethodPost, cachestore.CachePath+a, []byte("x")); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST = %d, want 405", resp.StatusCode)
	}

	if resp := doReq(t, srv, http.MethodPut, cachestore.CachePath+a, []byte(`{"v":1}`)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %d, want 204", resp.StatusCode)
	}
	resp := doReq(t, srv, http.MethodGet, cachestore.CachePath+a, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET = %d, want 200", resp.StatusCode)
	}
	if data, _ := io.ReadAll(resp.Body); string(data) != `{"v":1}` {
		t.Fatalf("GET body = %q", data)
	}

	// An oversized payload answers 413 and stores nothing.
	big := bytes.Repeat([]byte("x"), 65)
	if resp := doReq(t, srv, http.MethodPut, cachestore.CachePath+b, big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("PUT oversize = %d, want 413", resp.StatusCode)
	}
	if mem.Len() != 1 {
		t.Fatalf("store holds %d entries after rejected PUT, want 1", mem.Len())
	}

	// Filling the store answers 507 for NEW fingerprints while
	// overwrites of existing ones stay admitted (they never grow the
	// tier).
	if resp := doReq(t, srv, http.MethodPut, cachestore.CachePath+b, []byte("2")); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT second = %d, want 204", resp.StatusCode)
	}
	if resp := doReq(t, srv, http.MethodPut, cachestore.CachePath+c, []byte("3")); resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("PUT into full store = %d, want 507", resp.StatusCode)
	}
	if resp := doReq(t, srv, http.MethodPut, cachestore.CachePath+a, []byte(`{"v":2}`)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("overwrite into full store = %d, want 204", resp.StatusCode)
	}

	// List reports both entries, sorted.
	resp = doReq(t, srv, http.MethodGet, cachestore.CachePath, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET list = %d, want 200", resp.StatusCode)
	}
	var lr struct {
		Fingerprints []string `json:"fingerprints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	if len(lr.Fingerprints) != 2 || lr.Fingerprints[0] >= lr.Fingerprints[1] {
		t.Fatalf("list = %v, want 2 sorted fingerprints", lr.Fingerprints)
	}

	// DELETE is idempotent and frees a slot.
	if resp := doReq(t, srv, http.MethodDelete, cachestore.CachePath+a, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE = %d, want 204", resp.StatusCode)
	}
	if resp := doReq(t, srv, http.MethodDelete, cachestore.CachePath+a, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE again = %d, want 204", resp.StatusCode)
	}
	if resp := doReq(t, srv, http.MethodPut, cachestore.CachePath+c, []byte("3")); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT after delete = %d, want 204", resp.StatusCode)
	}
}

// errorBackend always fails, standing in for a broken tier behind the
// handler.
type errorBackend struct{ err error }

func (e errorBackend) Read(context.Context, string) ([]byte, error) { return nil, e.err }
func (e errorBackend) Write(context.Context, string, []byte) error  { return e.err }
func (e errorBackend) Delete(context.Context, string) error         { return e.err }
func (e errorBackend) List(context.Context) ([]string, error)       { return nil, e.err }
func (e errorBackend) String() string                               { return "error:" }

func TestHandlerBackendFailureIs502(t *testing.T) {
	srv := httptest.NewServer(withCachePrefix(cachestore.Handler(errorBackend{err: io.ErrUnexpectedEOF}, cachestore.HandlerLimits{})))
	defer srv.Close()
	if resp := doReq(t, srv, http.MethodGet, cachestore.CachePath+fp("a"), nil); resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("GET over broken backend = %d, want 502", resp.StatusCode)
	}
}
