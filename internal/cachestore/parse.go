package cachestore

import (
	"fmt"
	"strings"
)

// Parse turns a backend spec — the -cache-backend flag grammar — into a
// raw Backend:
//
//	dir:PATH      local directory of <fingerprint>.json files
//	mem:          process-local in-memory store
//	http://HOST   remote store speaking the /v1/cache protocol
//	https://HOST  same, over TLS
//
// Parse returns the bare backend; callers who need fault tolerance (any
// networked spec) wrap it in Resilient themselves, choosing the fallback
// tier.
func Parse(spec string) (Backend, error) {
	switch {
	case strings.HasPrefix(spec, "dir:"):
		dir := spec[len("dir:"):]
		if dir == "" {
			return nil, fmt.Errorf("cachestore: spec %q has an empty directory", spec)
		}
		return NewDir(dir), nil
	case spec == "mem:" || spec == "mem":
		return NewMem(), nil
	case strings.HasPrefix(spec, "http://"), strings.HasPrefix(spec, "https://"):
		return NewHTTP(spec)
	case spec == "":
		return nil, fmt.Errorf("cachestore: empty backend spec")
	default:
		return nil, fmt.Errorf("cachestore: bad backend spec %q (want dir:PATH, mem:, or http[s]://HOST)", spec)
	}
}
