// Package cachestore abstracts where probe-verdict files live.
//
// internal/probecache keeps monotone feasibility verdicts (capacity
// frontiers, period verdicts) keyed by canonical graph fingerprints. The
// verdicts are pure, advisory facts: losing the store can never change an
// answer, only cost extra simulation. That makes the store a natural
// pluggable tier — a local directory for one machine, process memory for
// one run, or an HTTP service (vrdfserve's /v1/cache endpoints) shared by
// a fleet of replicas and CI shards pooling one feasibility frontier.
//
// The Backend interface is deliberately tiny — read, write, delete and
// list opaque payloads by fingerprint — so implementations stay dumb and
// every hard property lives in exactly one place:
//
//   - integrity is the payload's problem (probecache seals files with a
//     content checksum and validates monotonicity on absorb, so a torn or
//     corrupted payload from ANY backend is skipped, never trusted);
//   - fault tolerance is Resilient's problem (per-op deadlines, bounded
//     jittered retries, a half-open circuit breaker, and graceful
//     demotion to a local fallback tier), so a slow or dead remote store
//     can never stall an analysis;
//   - serving is Handler's problem (the /v1/cache HTTP protocol over any
//     Backend, limit-guarded with typed errors in the style of
//     graphio.Limits).
//
// Every operation takes a Context and returns promptly once it is
// cancelled; cancellation errors satisfy budget.ErrCanceled so callers
// can tell "the caller hung up" from "the backend misbehaved".
package cachestore

import (
	"context"
	"errors"
	"fmt"
)

// ErrNotFound reports that no payload is stored under the fingerprint.
// It is a miss, not a failure: resilience layers never retry it and never
// count it against a backend's health.
var ErrNotFound = errors.New("cachestore: fingerprint not found")

// Backend stores opaque verdict payloads by fingerprint. Implementations
// must be safe for concurrent use and must honour the Context: once it is
// cancelled, the operation returns promptly with an error satisfying
// budget.ErrCanceled.
//
// Payloads are advisory bytes. A Backend makes no integrity promise
// beyond returning what was stored; callers (internal/probecache)
// validate content before trusting it.
type Backend interface {
	// Read returns the payload stored under fingerprint, or ErrNotFound.
	Read(ctx context.Context, fingerprint string) ([]byte, error)
	// Write stores the payload under fingerprint, replacing any previous
	// payload atomically (a concurrent Read sees the old or the new
	// payload, never a mixture).
	Write(ctx context.Context, fingerprint string, data []byte) error
	// Delete removes the fingerprint's payload; deleting an absent
	// fingerprint is not an error.
	Delete(ctx context.Context, fingerprint string) error
	// List returns every stored fingerprint in lexicographic order.
	List(ctx context.Context) ([]string, error)
	// String describes the backend for stats lines and flag round-trips,
	// e.g. "dir:/var/cache/vrdf", "mem:", "http://host:8080".
	String() string
}

// LimitError reports which guard a cache-store operation exceeded, in the
// style of graphio.LimitError: a typed error so servers can map it to a
// precise status (413 for an oversized payload, 507 for a full store)
// while genuine failures keep their own mapping.
type LimitError struct {
	// What names the limited dimension: "payload bytes" or "entries".
	What string
	// Limit is the configured maximum; Got the observed value.
	Limit, Got int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("cachestore: %s limit exceeded: %d > %d", e.What, e.Got, e.Limit)
}

// IsLimit reports whether err stems from a LimitError.
func IsLimit(err error) bool {
	var le *LimitError
	return errors.As(err, &le)
}

// validFingerprint rejects keys that could escape a directory or confuse
// the HTTP protocol. Canonical fingerprints (probecache.GraphKey) are
// 64 lowercase hex digits; the dir and mem backends accept any
// path-safe name so tests and future keys stay flexible, while the HTTP
// protocol pins the canonical form (see Handler).
func validFingerprint(fp string) error {
	if fp == "" {
		return errors.New("cachestore: empty fingerprint")
	}
	if len(fp) > 256 {
		return fmt.Errorf("cachestore: fingerprint longer than 256 bytes (%d)", len(fp))
	}
	for i := 0; i < len(fp); i++ {
		c := fp[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return fmt.Errorf("cachestore: fingerprint %q holds unsafe byte %q", fp, c)
		}
	}
	if fp[0] == '.' {
		return fmt.Errorf("cachestore: fingerprint %q must not start with a dot", fp)
	}
	return nil
}

// canonicalFingerprint reports whether fp has the canonical GraphKey
// shape: exactly 64 lowercase hex digits. The HTTP protocol only accepts
// canonical fingerprints — a shared store is keyed by graph fingerprints
// and nothing else.
func canonicalFingerprint(fp string) bool {
	if len(fp) != 64 {
		return false
	}
	for i := 0; i < len(fp); i++ {
		c := fp[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
