package cachestore

import (
	"context"
	"sort"
	"sync"

	"vrdfcap/internal/budget"
)

// Mem is an in-memory backend: a mutex-guarded map of copied payloads.
// It is the zero-dependency tier — the default fallback a Resilient
// wrapper demotes to, and the store behind a single-process run that
// wants isolation from the process-wide shared probecache.
type Mem struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem {
	return &Mem{m: make(map[string][]byte)}
}

func (b *Mem) String() string { return "mem:" }

// Len returns the number of stored fingerprints.
func (b *Mem) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.m)
}

// Read implements Backend.
func (b *Mem) Read(ctx context.Context, fingerprint string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, budget.Classify(err)
	}
	b.mu.Lock()
	data, ok := b.m[fingerprint]
	b.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), data...), nil
}

// Write implements Backend.
func (b *Mem) Write(ctx context.Context, fingerprint string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return budget.Classify(err)
	}
	if err := validFingerprint(fingerprint); err != nil {
		return err
	}
	cp := append([]byte(nil), data...)
	b.mu.Lock()
	b.m[fingerprint] = cp
	b.mu.Unlock()
	return nil
}

// Delete implements Backend.
func (b *Mem) Delete(ctx context.Context, fingerprint string) error {
	if err := ctx.Err(); err != nil {
		return budget.Classify(err)
	}
	b.mu.Lock()
	delete(b.m, fingerprint)
	b.mu.Unlock()
	return nil
}

// List implements Backend.
func (b *Mem) List(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, budget.Classify(err)
	}
	b.mu.Lock()
	out := make([]string, 0, len(b.m))
	for fp := range b.m {
		out = append(out, fp)
	}
	b.mu.Unlock()
	sort.Strings(out)
	return out, nil
}
