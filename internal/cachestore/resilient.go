package cachestore

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vrdfcap/internal/budget"
)

// errBreakerOpen short-circuits primary attempts while the circuit is
// open; callers inside this file treat it like any other primary failure
// (demote to the fallback tier), it just costs nothing to produce.
var errBreakerOpen = errors.New("cachestore: circuit breaker open")

// Options tunes a Resilient wrapper. The zero value selects production
// defaults; negative values disable where noted.
type Options struct {
	// OpTimeout bounds each primary attempt in wall-clock time
	// (0: 2s; negative: unbounded). The caller's Context still applies
	// on top — the effective deadline is the earlier of the two.
	OpTimeout time.Duration
	// Retries is the number of additional attempts after the first
	// (0: 2; negative: no retries). Misses (ErrNotFound) and caller
	// cancellation are never retried.
	Retries int
	// Backoff is the base delay before the first retry (0: 25ms); each
	// further retry doubles it, capped at MaxBackoff (0: 500ms). Every
	// delay is jittered by a deterministic factor in [0.5, 1.5) drawn
	// from Seed, so a fleet of replicas retrying the same dead store
	// does not stampede in lockstep.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Seed selects the jitter stream; replicas should differ.
	Seed uint64
	// FailureThreshold is the number of consecutive failed operations
	// (retries exhausted) that opens the circuit breaker (0: 3;
	// negative: breaker disabled).
	FailureThreshold int
	// Cooldown is how long the breaker stays open before a half-open
	// trial operation probes the primary again (0: 5s).
	Cooldown time.Duration
	// Clock and Sleep are test seams (nil: time.Now and a timer-backed
	// sleep that aborts on Context cancellation).
	Clock func() time.Time
	Sleep func(ctx context.Context, d time.Duration) error
}

func (o Options) withDefaults() Options {
	if o.OpTimeout == 0 {
		o.OpTimeout = 2 * time.Second
	}
	switch {
	case o.Retries == 0:
		o.Retries = 2
	case o.Retries < 0:
		o.Retries = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = 25 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 500 * time.Millisecond
	}
	switch {
	case o.FailureThreshold == 0:
		o.FailureThreshold = 3
	case o.FailureThreshold < 0:
		o.FailureThreshold = 0 // disabled
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 5 * time.Second
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	if o.Sleep == nil {
		o.Sleep = sleepCtx
	}
	return o
}

// sleepCtx waits for d or until the context is cancelled, whichever
// comes first — a retry loop must never outlive its caller.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Stats is a snapshot of a Resilient wrapper's health counters, surfaced
// through probecache.StoreStats and vrdfserve's /statsz.
type Stats struct {
	// PrimaryOps counts operations that attempted the primary backend.
	PrimaryOps int64 `json:"primaryOps"`
	// PrimaryErrors counts failed attempts (each retry that fails adds
	// one), excluding misses and caller cancellation.
	PrimaryErrors int64 `json:"primaryErrors"`
	// Retries counts backoff-delayed re-attempts.
	Retries int64 `json:"retries"`
	// Demotions counts operations served by the fallback tier because
	// the primary failed (including breaker fast-fails).
	Demotions int64 `json:"demotions"`
	// BreakerOpens counts closed/half-open -> open transitions.
	BreakerOpens int64 `json:"breakerOpens"`
	// BreakerOpen reports whether the circuit is currently open.
	BreakerOpen bool `json:"breakerOpen"`
}

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// Resilient wraps a primary Backend in the fault-tolerance layer every
// networked verdict store needs: per-attempt deadlines, bounded retries
// with jittered exponential backoff, a half-open circuit breaker, and
// graceful demotion to a local fallback tier. The contract the analysis
// relies on: a slow or dead primary may cost verdicts (extra simulation)
// but may never stall or fail an operation beyond its bounded budget —
// and a cancelled Context aborts immediately, without retry spin, with
// an error satisfying budget.ErrCanceled.
//
// Writes go through to the fallback first, so by the time a primary
// misbehaves the fallback already holds everything this process
// produced; reads fall back on primary failure AND on primary miss (the
// local tier may hold verdicts the remote never saw).
//
// Safe for concurrent use.
type Resilient struct {
	primary  Backend
	fallback Backend // may be nil: retry/breaker layer only
	opt      Options

	mu       sync.Mutex
	state    int
	failures int       // consecutive failed operations
	openedAt time.Time // when the breaker opened
	trial    bool      // a half-open trial is in flight

	jitterSeq     atomic.Uint64
	primaryOps    atomic.Int64
	primaryErrors atomic.Int64
	retries       atomic.Int64
	demotions     atomic.Int64
	breakerOpens  atomic.Int64
}

// NewResilient wraps primary with the fault-tolerance layer, demoting to
// fallback (may be nil) when the primary misbehaves.
func NewResilient(primary, fallback Backend, opt Options) *Resilient {
	return &Resilient{primary: primary, fallback: fallback, opt: opt.withDefaults()}
}

func (r *Resilient) String() string {
	if r.fallback == nil {
		return "resilient(" + r.primary.String() + ")"
	}
	return "resilient(" + r.primary.String() + " -> " + r.fallback.String() + ")"
}

// Stats returns a snapshot of the health counters.
func (r *Resilient) Stats() Stats {
	r.mu.Lock()
	open := r.state == breakerOpen && r.opt.Clock().Sub(r.openedAt) < r.opt.Cooldown
	r.mu.Unlock()
	return Stats{
		PrimaryOps:    r.primaryOps.Load(),
		PrimaryErrors: r.primaryErrors.Load(),
		Retries:       r.retries.Load(),
		Demotions:     r.demotions.Load(),
		BreakerOpens:  r.breakerOpens.Load(),
		BreakerOpen:   open,
	}
}

// admit decides whether an operation may try the primary. While the
// breaker is open (and inside the cooldown) nothing is admitted; after
// the cooldown one trial operation probes the primary and everyone else
// keeps falling back until it reports.
func (r *Resilient) admit() bool {
	if r.opt.FailureThreshold == 0 {
		return true // breaker disabled
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if r.opt.Clock().Sub(r.openedAt) < r.opt.Cooldown {
			return false
		}
		r.state = breakerHalfOpen
		r.trial = true
		return true
	default: // half-open
		if r.trial {
			return false
		}
		r.trial = true
		return true
	}
}

// onSuccess closes the breaker and clears the failure streak.
func (r *Resilient) onSuccess() {
	r.mu.Lock()
	r.state = breakerClosed
	r.failures = 0
	r.trial = false
	r.mu.Unlock()
}

// onFailure records a failed operation (retries exhausted) and opens the
// breaker when the streak reaches the threshold — or immediately when a
// half-open trial fails.
func (r *Resilient) onFailure() {
	if r.opt.FailureThreshold == 0 {
		return
	}
	r.mu.Lock()
	r.failures++
	wasTrial := r.state == breakerHalfOpen
	if wasTrial || r.failures >= r.opt.FailureThreshold {
		if r.state != breakerOpen {
			r.breakerOpens.Add(1)
		}
		r.state = breakerOpen
		r.openedAt = r.opt.Clock()
		r.trial = false
	}
	r.mu.Unlock()
}

// onAbort releases a half-open trial slot without a verdict on the
// primary's health (the caller cancelled mid-trial).
func (r *Resilient) onAbort() {
	r.mu.Lock()
	if r.state == breakerHalfOpen {
		r.trial = false
	}
	r.mu.Unlock()
}

// attemptCtx derives the per-attempt context from the caller's plus the
// configured operation timeout.
func (r *Resilient) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if r.opt.OpTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, r.opt.OpTimeout)
}

// backoffFor returns the jittered delay before retry number attempt
// (0-based): Backoff·2^attempt capped at MaxBackoff, scaled by a
// deterministic factor in [0.5, 1.5) drawn from the seeded stream.
func (r *Resilient) backoffFor(attempt int) time.Duration {
	d := r.opt.Backoff
	for i := 0; i < attempt && d < r.opt.MaxBackoff; i++ {
		d *= 2
	}
	if d > r.opt.MaxBackoff {
		d = r.opt.MaxBackoff
	}
	x := splitmix64(r.opt.Seed ^ r.jitterSeq.Add(1))
	return d/2 + time.Duration(x%uint64(d)) // d/2 + [0, d) = [0.5d, 1.5d)
}

// isBudget reports a caller-attributable abort: cancellation or an
// exhausted caller budget. These are never the backend's fault — no
// retry, no breaker penalty, no demotion.
func isBudget(err error) bool {
	return errors.Is(err, budget.ErrCanceled) || errors.Is(err, budget.ErrBudgetExceeded)
}

// do runs one primary operation under the resilience policy and returns
// nil, ErrNotFound (a clean miss), a budget-classified caller abort, or
// the last failure after retries are exhausted.
func (r *Resilient) do(ctx context.Context, f func(ctx context.Context) error) error {
	if err := ctx.Err(); err != nil {
		return budget.Classify(err)
	}
	if !r.admit() {
		r.primaryOps.Add(1)
		return errBreakerOpen
	}
	r.primaryOps.Add(1)
	var lastErr error
	for attempt := 0; attempt <= r.opt.Retries; attempt++ {
		actx, cancel := r.attemptCtx(ctx)
		err := f(actx)
		cancel()
		if err == nil || errors.Is(err, ErrNotFound) {
			r.onSuccess()
			return err
		}
		if cerr := ctx.Err(); cerr != nil {
			// The CALLER's context ended (the attempt deadline is a
			// child, so check the parent): abort immediately — a hung-up
			// caller must never be held for another backoff cycle.
			r.onAbort()
			return budget.Classify(cerr)
		}
		r.primaryErrors.Add(1)
		lastErr = err
		if attempt < r.opt.Retries {
			r.retries.Add(1)
			if serr := r.opt.Sleep(ctx, r.backoffFor(attempt)); serr != nil || ctx.Err() != nil {
				r.onAbort()
				return budget.Classify(ctx.Err())
			}
		}
	}
	r.onFailure()
	return lastErr
}

// demote counts an operation served by the fallback tier because the
// primary failed.
func (r *Resilient) demote() { r.demotions.Add(1) }

// Read implements Backend: primary first, fallback on failure AND on
// miss (the local tier may hold verdicts the remote never saw).
func (r *Resilient) Read(ctx context.Context, fingerprint string) ([]byte, error) {
	var data []byte
	err := r.do(ctx, func(c context.Context) error {
		d, e := r.primary.Read(c, fingerprint)
		data = d
		return e
	})
	switch {
	case err == nil:
		return data, nil
	case errors.Is(err, ErrNotFound):
		if r.fallback == nil {
			return nil, ErrNotFound
		}
		return r.fallback.Read(ctx, fingerprint)
	case isBudget(err):
		return nil, err
	default:
		r.demote()
		if r.fallback == nil {
			return nil, err
		}
		return r.fallback.Read(ctx, fingerprint)
	}
}

// Write implements Backend: write-through to the fallback first (so a
// later demotion loses nothing this process produced), then the primary
// under the resilience policy. A primary failure with the payload safe
// in the fallback is a demotion, not an error.
func (r *Resilient) Write(ctx context.Context, fingerprint string, data []byte) error {
	var fbErr error
	if r.fallback != nil {
		fbErr = r.fallback.Write(ctx, fingerprint, data)
		if isBudget(fbErr) {
			return fbErr
		}
	}
	err := r.do(ctx, func(c context.Context) error {
		return r.primary.Write(c, fingerprint, data)
	})
	switch {
	case err == nil:
		return nil
	case isBudget(err):
		return err
	default:
		r.demote()
		if r.fallback != nil && fbErr == nil {
			return nil
		}
		return err
	}
}

// Delete implements Backend: both tiers; a primary failure with the
// fallback cleaned is a demotion, not an error.
func (r *Resilient) Delete(ctx context.Context, fingerprint string) error {
	var fbErr error
	if r.fallback != nil {
		fbErr = r.fallback.Delete(ctx, fingerprint)
		if isBudget(fbErr) {
			return fbErr
		}
	}
	err := r.do(ctx, func(c context.Context) error {
		return r.primary.Delete(c, fingerprint)
	})
	switch {
	case err == nil:
		return nil
	case isBudget(err):
		return err
	default:
		r.demote()
		if r.fallback != nil && fbErr == nil {
			return nil
		}
		return err
	}
}

// List implements Backend: the union of both tiers, sorted — the
// fallback may hold demoted writes the primary never saw, and the
// primary holds the fleet's.
func (r *Resilient) List(ctx context.Context) ([]string, error) {
	var prim []string
	err := r.do(ctx, func(c context.Context) error {
		l, e := r.primary.List(c)
		prim = l
		return e
	})
	if err != nil {
		if isBudget(err) {
			return nil, err
		}
		r.demote()
		if r.fallback == nil {
			return nil, err
		}
		prim = nil
	}
	if r.fallback == nil {
		return prim, nil
	}
	fb, ferr := r.fallback.List(ctx)
	if ferr != nil {
		if err != nil {
			return nil, ferr // both tiers failed
		}
		fb = nil
	}
	seen := make(map[string]struct{}, len(prim)+len(fb))
	out := make([]string, 0, len(prim)+len(fb))
	for _, fps := range [2][]string{prim, fb} {
		for _, fp := range fps {
			if _, ok := seen[fp]; ok {
				continue
			}
			seen[fp] = struct{}{}
			out = append(out, fp)
		}
	}
	sort.Strings(out)
	return out, nil
}

// splitmix64 is the finaliser of the splitmix64 generator: a bijective
// avalanche mix, so hashing the (seed, sequence) pairs through it yields
// an independent-looking jitter stream (same idiom as internal/faults).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
