package cachestore

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"vrdfcap/internal/budget"
)

// suffix is the on-disk filename suffix for payloads. It predates this
// package (probecache always wrote <fingerprint>.json), so a Dir backend
// pointed at an existing -cache-dir keeps reading the same files.
const suffix = ".json"

// Dir is the local-directory backend: one file per fingerprint,
// written atomically (temp file + fsync + rename) so a crash mid-write
// can never leave a torn payload where a complete one used to be, and a
// reader racing a writer sees the old or the new payload, never a
// mixture.
type Dir struct {
	dir string
}

// NewDir returns a backend over dir. The directory is created lazily on
// the first Write, so pointing at a not-yet-existing cache directory is
// fine (and reads from it are simply misses).
func NewDir(dir string) *Dir {
	return &Dir{dir: dir}
}

func (b *Dir) String() string { return "dir:" + b.dir }

// Path returns the directory the backend stores files under.
func (b *Dir) Path() string { return b.dir }

func (b *Dir) file(fingerprint string) string {
	return filepath.Join(b.dir, fingerprint+suffix)
}

// Read implements Backend.
func (b *Dir) Read(ctx context.Context, fingerprint string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, budget.Classify(err)
	}
	if err := validFingerprint(fingerprint); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(b.file(fingerprint))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	return data, nil
}

// Write implements Backend. The payload lands durably before the rename
// publishes it: the temp file is fsynced first (otherwise a crash after
// the rename could leave a name pointing at zero-length or partial
// content), and the directory is fsynced best-effort afterwards so the
// rename itself survives a crash on filesystems that need it.
func (b *Dir) Write(ctx context.Context, fingerprint string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return budget.Classify(err)
	}
	if err := validFingerprint(fingerprint); err != nil {
		return err
	}
	if err := os.MkdirAll(b.dir, 0o755); err != nil {
		return fmt.Errorf("cachestore: create cache dir: %w", err)
	}
	tmp, err := os.CreateTemp(b.dir, fingerprint+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), b.file(fingerprint))
	}
	if werr != nil {
		_ = os.Remove(tmp.Name()) // best-effort cleanup; the write error wins
		return werr
	}
	b.syncDir()
	return nil
}

// syncDir fsyncs the directory so a just-renamed entry survives a crash.
// Best-effort: not every platform or filesystem supports fsync on a
// directory handle, and the payload itself is already durable.
func (b *Dir) syncDir() {
	d, err := os.Open(b.dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// Delete implements Backend.
func (b *Dir) Delete(ctx context.Context, fingerprint string) error {
	if err := ctx.Err(); err != nil {
		return budget.Classify(err)
	}
	if err := validFingerprint(fingerprint); err != nil {
		return err
	}
	err := os.Remove(b.file(fingerprint))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

// List implements Backend. Temp files from in-flight writes are not
// listed.
func (b *Dir) List(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, budget.Classify(err)
	}
	des, err := os.ReadDir(b.dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(des))
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, suffix) {
			continue
		}
		fp := strings.TrimSuffix(name, suffix)
		if strings.Contains(fp, ".tmp") {
			continue
		}
		out = append(out, fp)
	}
	return out, nil // ReadDir returns entries sorted by name
}
