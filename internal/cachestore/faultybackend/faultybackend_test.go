package faultybackend_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/cachestore"
	"vrdfcap/internal/cachestore/faultybackend"
)

const testFP = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"

func seeded(t *testing.T, data []byte) *cachestore.Mem {
	t.Helper()
	m := cachestore.NewMem()
	if err := m.Write(context.Background(), testFP, data); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestScheduleIsDeterministic pins the replay contract: equal (Seed, Spec)
// wrappers misbehave on exactly the same op indices.
func TestScheduleIsDeterministic(t *testing.T) {
	pattern := func(seed uint64) []bool {
		b := faultybackend.Wrap(seeded(t, []byte("x")), faultybackend.Spec{Seed: seed, ErrorOneIn: 2})
		var p []bool
		for i := 0; i < 64; i++ {
			_, err := b.Read(context.Background(), testFP)
			p = append(p, errors.Is(err, faultybackend.ErrInjected))
		}
		return p
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: same seed diverged (%v vs %v)", i, a[i], b[i])
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical 64-op schedules")
	}
}

func TestPartitionFailsEveryOp(t *testing.T) {
	b := faultybackend.Wrap(seeded(t, []byte("x")), faultybackend.Spec{Partitioned: true})
	ctx := context.Background()
	if _, err := b.Read(ctx, testFP); !errors.Is(err, faultybackend.ErrInjected) {
		t.Errorf("Read = %v, want ErrInjected", err)
	}
	if err := b.Write(ctx, testFP, []byte("y")); !errors.Is(err, faultybackend.ErrInjected) {
		t.Errorf("Write = %v, want ErrInjected", err)
	}
	if _, err := b.List(ctx); !errors.Is(err, faultybackend.ErrInjected) {
		t.Errorf("List = %v, want ErrInjected", err)
	}
	if b.Faults() != b.Ops() {
		t.Errorf("Faults = %d, Ops = %d; a partition faults every op", b.Faults(), b.Ops())
	}
}

// TestPayloadFaultsLeaveInnerIntact: truncation and corruption damage the
// served copy, never the stored bytes — the next healthy read sees the
// original payload.
func TestPayloadFaultsLeaveInnerIntact(t *testing.T) {
	orig := []byte(`{"version":2,"payload":"0123456789"}`)
	ctx := context.Background()

	inner := seeded(t, orig)
	trunc := faultybackend.Wrap(inner, faultybackend.Spec{Seed: 9, TruncateOneIn: 1})
	got, err := trunc.Read(ctx, testFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= len(orig) || !bytes.HasPrefix(orig, got) {
		t.Errorf("truncated read %q is not a proper prefix of %q", got, orig)
	}

	inner2 := seeded(t, orig)
	corr := faultybackend.Wrap(inner2, faultybackend.Spec{Seed: 9, CorruptOneIn: 1})
	got, err = corr.Read(ctx, testFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) || bytes.Equal(got, orig) {
		t.Errorf("corrupted read %q should differ from %q in exactly one byte", got, orig)
	}
	for _, m := range []*cachestore.Mem{inner, inner2} {
		back, err := m.Read(ctx, testFP)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, orig) {
			t.Errorf("stored payload was mutated: %q", back)
		}
	}
}

// TestLatencyHonoursContext: a latency spike is a slow store, not a
// deadlock — the op Context cuts it short with the typed budget error.
func TestLatencyHonoursContext(t *testing.T) {
	b := faultybackend.Wrap(seeded(t, []byte("x")), faultybackend.Spec{
		Seed: 5, LatencyOneIn: 1, Latency: time.Hour,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := b.Read(ctx, testFP)
	if !errors.Is(err, budget.ErrBudgetExceeded) && !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("Read under expiring ctx = %v, want a budget error", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("latency spike ignored the context for %v", elapsed)
	}
}
