// Package faultybackend wraps a cachestore.Backend in deterministic,
// seeded faults: injected errors, latency spikes, truncated and corrupted
// payloads, and full partitions.
//
// The verdict store is advisory — a cache may change how many probes a
// search simulates, never what it answers — so the repo's chaos suite
// drives analyses through backends wrapped by this package and asserts
// the final sizings are byte-identical to a cache-less run under every
// schedule. Like internal/faults, every injected fault is a pure function
// of (Seed, op index): op k misbehaves iff
// splitmix64(seed ⊕ splitmix64(k) ⊕ salt) mod N == 0 for that fault's
// one-in-N rate, so a failing run replays bit-identically from its seed.
//
// Payload faults (truncation, corruption) model a store that serves bytes
// it should not; they exercise probecache's all-or-nothing trust
// validation. Op faults (errors, latency, partition) model an unreachable
// or slow store; they exercise the resilience layer's retries, breaker,
// and demotion. Latency honours the op Context so a per-attempt deadline
// converts a spike into an attempt error rather than a stall.
package faultybackend

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/cachestore"
)

// ErrInjected is the transport-style failure every injected op fault and
// partition returns. It is deliberately neither cachestore.ErrNotFound nor
// budget-classified: the resilience layer must treat it as backend
// unhealthiness (retry, then demote), never as a miss or a caller abort.
var ErrInjected = errors.New("faultybackend: injected fault")

// Spec is a seeded fault schedule. Each OneIn rate makes one in N ops (or
// Read payloads) misbehave; zero disables that fault. The zero Spec
// injects nothing.
type Spec struct {
	// Seed selects the schedule; equal (Seed, Spec) pairs replay
	// identically.
	Seed uint64
	// ErrorOneIn fails one in N ops with ErrInjected.
	ErrorOneIn uint64
	// LatencyOneIn delays one in N ops by Latency (default 1ms) before
	// they proceed, aborting early with the op Context's budget error if
	// it expires first — a slow store, not a dead one.
	LatencyOneIn uint64
	Latency      time.Duration
	// TruncateOneIn cuts one in N Read payloads to a schedule-chosen
	// proper prefix — a torn write or a short body.
	TruncateOneIn uint64
	// CorruptOneIn flips one byte (XOR 0xff) of one in N Read payloads at
	// a schedule-chosen offset — bit rot the content checksum must catch.
	CorruptOneIn uint64
	// Partitioned fails every op with ErrInjected: the store is
	// unreachable. Overrides all rates.
	Partitioned bool
}

// Salts decorrelate the per-fault draw streams for one op index.
const (
	saltError    = 0x6572726f72 // "error"
	saltLatency  = 0x6c6174
	saltTruncate = 0x7472756e63
	saltCorrupt  = 0x636f7272
)

// Backend injects Spec's faults around an inner backend.
type Backend struct {
	inner  cachestore.Backend
	spec   Spec
	ops    atomic.Uint64
	faults atomic.Uint64
}

// Wrap builds the injector. The inner backend is used verbatim for every
// op the schedule leaves healthy.
func Wrap(inner cachestore.Backend, spec Spec) *Backend {
	if spec.Latency <= 0 {
		spec.Latency = time.Millisecond
	}
	return &Backend{inner: inner, spec: spec}
}

// Ops reports the total ops seen; Faults the ops (or payloads) the
// schedule made misbehave. Both are safe for concurrent use.
func (b *Backend) Ops() uint64    { return b.ops.Load() }
func (b *Backend) Faults() uint64 { return b.faults.Load() }

func (b *Backend) String() string { return "faulty(" + b.inner.String() + ")" }

// draw is the deterministic per-(op, fault) uniform draw.
func (b *Backend) draw(k, salt uint64) uint64 {
	return splitmix64(b.spec.Seed ^ splitmix64(k) ^ salt)
}

// hits reports whether op k triggers a one-in-n fault.
func (b *Backend) hits(k, salt, n uint64) bool {
	return n > 0 && b.draw(k, salt)%n == 0
}

// gate runs the op-level schedule for op k: partition, latency spike,
// injected error. A non-nil return is the op's result.
func (b *Backend) gate(ctx context.Context, k uint64) error {
	if err := ctx.Err(); err != nil {
		return budget.Classify(err)
	}
	if b.spec.Partitioned {
		b.faults.Add(1)
		return ErrInjected
	}
	if b.hits(k, saltLatency, b.spec.LatencyOneIn) {
		b.faults.Add(1)
		t := time.NewTimer(b.spec.Latency)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return budget.Classify(ctx.Err())
		case <-t.C:
		}
	}
	if b.hits(k, saltError, b.spec.ErrorOneIn) {
		b.faults.Add(1)
		return ErrInjected
	}
	return nil
}

// Read delegates and then applies the payload schedule: a truncated or
// corrupted body is returned as if it were the stored content.
func (b *Backend) Read(ctx context.Context, fp string) ([]byte, error) {
	k := b.ops.Add(1) - 1
	if err := b.gate(ctx, k); err != nil {
		return nil, err
	}
	data, err := b.inner.Read(ctx, fp)
	if err != nil {
		return nil, err
	}
	if len(data) > 0 && b.hits(k, saltTruncate, b.spec.TruncateOneIn) {
		b.faults.Add(1)
		data = data[:b.draw(k, saltTruncate^1)%uint64(len(data))]
	}
	if len(data) > 0 && b.hits(k, saltCorrupt, b.spec.CorruptOneIn) {
		b.faults.Add(1)
		data = append([]byte(nil), data...)
		data[b.draw(k, saltCorrupt^1)%uint64(len(data))] ^= 0xff
	}
	return data, nil
}

func (b *Backend) Write(ctx context.Context, fp string, data []byte) error {
	if err := b.gate(ctx, b.ops.Add(1)-1); err != nil {
		return err
	}
	return b.inner.Write(ctx, fp, data)
}

func (b *Backend) Delete(ctx context.Context, fp string) error {
	if err := b.gate(ctx, b.ops.Add(1)-1); err != nil {
		return err
	}
	return b.inner.Delete(ctx, fp)
}

func (b *Backend) List(ctx context.Context) ([]string, error) {
	if err := b.gate(ctx, b.ops.Add(1)-1); err != nil {
		return nil, err
	}
	return b.inner.List(ctx)
}

// splitmix64 is the finaliser of the splitmix64 generator — the same
// bijective avalanche mix internal/faults uses, so (seed, k) pairs hash to
// independent uniform draws without shared state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
