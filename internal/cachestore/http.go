package cachestore

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"vrdfcap/internal/budget"
)

// CachePath is the URL prefix the HTTP protocol lives under, on the
// client (HTTP backend) and the server (Handler mounted by
// internal/serve) alike.
const CachePath = "/v1/cache/"

// maxHTTPPayload caps what the client will read back for one payload —
// a runaway guard against a misbehaving server, far above any real
// verdict file.
const maxHTTPPayload = 8 << 20

// HTTP is the remote backend: a client for the /v1/cache protocol served
// by vrdfserve (see Handler). It makes no resilience promise of its own —
// wrap it in Resilient for deadlines, retries, circuit breaking and
// demotion; the raw backend simply maps the protocol:
//
//	GET    /v1/cache/<fp>  -> payload bytes (404: ErrNotFound)
//	PUT    /v1/cache/<fp>  -> store payload
//	DELETE /v1/cache/<fp>  -> remove payload (absent is fine)
//	GET    /v1/cache/      -> {"fingerprints": [...]}
type HTTP struct {
	base   string
	client *http.Client
}

// NewHTTP returns a backend for the service at baseURL (scheme + host,
// e.g. "http://cache:8080"; any path or trailing slash is stripped —
// the protocol's own /v1/cache/ prefix is appended per request).
func NewHTTP(baseURL string) (*HTTP, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("cachestore: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("cachestore: base URL %q must be http or https", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("cachestore: base URL %q has no host", baseURL)
	}
	return &HTTP{
		base: u.Scheme + "://" + u.Host,
		// Deliberately no client-level timeout: per-op deadlines come
		// from the Context (Resilient applies its OpTimeout there), so
		// one knob governs every backend kind.
		client: &http.Client{},
	}, nil
}

func (b *HTTP) String() string { return b.base }

func (b *HTTP) urlFor(fingerprint string) string {
	return b.base + CachePath + fingerprint
}

// do runs one request and returns the response; non-2xx statuses other
// than okNotFound→404 become errors carrying the status and a truncated
// body.
func (b *HTTP) do(req *http.Request) (*http.Response, error) {
	resp, err := b.client.Do(req)
	if err != nil {
		// The transport wraps context errors; classify so cancellation
		// keeps its typed identity through the backend.
		return nil, budget.Classify(err)
	}
	return resp, nil
}

// errBody drains up to a line of the response body into the error.
func errBody(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	msg := strings.TrimSpace(string(data))
	if msg == "" {
		msg = resp.Status
	}
	return fmt.Errorf("cachestore: remote store answered %d: %s", resp.StatusCode, msg)
}

// Read implements Backend.
func (b *HTTP) Read(ctx context.Context, fingerprint string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.urlFor(fingerprint), nil)
	if err != nil {
		return nil, err
	}
	resp, err := b.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxHTTPPayload+1))
		if err != nil {
			return nil, budget.Classify(err)
		}
		if len(data) > maxHTTPPayload {
			return nil, &LimitError{What: "payload bytes", Limit: maxHTTPPayload, Got: len(data)}
		}
		return data, nil
	case http.StatusNotFound:
		return nil, ErrNotFound
	default:
		return nil, errBody(resp)
	}
}

// Write implements Backend.
func (b *HTTP) Write(ctx context.Context, fingerprint string, data []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, b.urlFor(fingerprint), bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return errBody(resp)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// Delete implements Backend.
func (b *HTTP) Delete(ctx context.Context, fingerprint string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, b.urlFor(fingerprint), nil)
	if err != nil {
		return err
	}
	resp, err := b.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 && resp.StatusCode != http.StatusNotFound {
		return errBody(resp)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// listResponse is the JSON shape of a List exchange.
type listResponse struct {
	Fingerprints []string `json:"fingerprints"`
}

// List implements Backend.
func (b *HTTP) List(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+CachePath, nil)
	if err != nil {
		return nil, err
	}
	resp, err := b.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errBody(resp)
	}
	var lr listResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxHTTPPayload)).Decode(&lr); err != nil {
		return nil, fmt.Errorf("cachestore: bad list response: %w", err)
	}
	return lr.Fingerprints, nil
}
