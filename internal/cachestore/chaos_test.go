package cachestore_test

// Chaos suite for the fault-tolerant verdict store. The probecache is
// advisory — a backend may change how many probes a search simulates,
// never what it answers — so every test here drives a real minimization
// through backends misbehaving under a seeded faultybackend schedule and
// holds the results against the cache-less ground truth: identical
// sizings, a monotone merged frontier, zero failed analyses.

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/cachestore"
	"vrdfcap/internal/cachestore/faultybackend"
	"vrdfcap/internal/minimize"
	"vrdfcap/internal/probecache"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
)

// chaosChain is the three-stage chain the shared-cache tests minimise:
// small enough that one search takes milliseconds, rich enough that the
// frontier holds both feasible and infeasible vectors.
func chaosChain(t testing.TB) (*taskgraph.Graph, []string, map[string]int64) {
	t.Helper()
	g, err := taskgraph.BuildChain(
		[]taskgraph.Stage{
			{Name: "a", WCRT: ratio.FromInt(1)},
			{Name: "b", WCRT: ratio.FromInt(1)},
			{Name: "c", WCRT: ratio.FromInt(1)},
		},
		[]taskgraph.Link{
			{Prod: taskgraph.MustQuanta(2), Cons: taskgraph.MustQuanta(3)},
			{Prod: taskgraph.MustQuanta(4), Cons: taskgraph.MustQuanta(3)},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g, []string{"a->b", "b->c"}, map[string]int64{"a->b": 40, "b->c": 40}
}

// groundTruth is the cache-less minimum every chaotic run must reproduce.
func groundTruth(t testing.TB, g *taskgraph.Graph, buffers []string, upper map[string]int64) map[string]int64 {
	t.Helper()
	opts := minimize.Options{Workers: 1, NoCache: true}
	res, err := minimize.Search(buffers, upper,
		minimize.DeadlockFreeCheck(g, "c", 80, []sim.Workloads{{}}, opts), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res.Caps
}

// newSharedRemote serves one in-memory tier over the /v1/cache protocol —
// the store a fleet of replicas shares.
func newSharedRemote(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(withCachePrefix(cachestore.Handler(cachestore.NewMem(), cachestore.HandlerLimits{})))
	t.Cleanup(ts.Close)
	return ts.URL
}

func remoteBackend(t *testing.T, url string) cachestore.Backend {
	t.Helper()
	b, err := cachestore.NewHTTP(url)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// chaosOptions keeps the resilience layer's real-time knobs small enough
// for a test while preserving its semantics: retries, breaker, demotion.
func chaosOptions(seed uint64) cachestore.Options {
	return cachestore.Options{
		OpTimeout:        2 * time.Second,
		Retries:          2,
		Backoff:          time.Millisecond,
		MaxBackoff:       4 * time.Millisecond,
		FailureThreshold: 3,
		Cooldown:         10 * time.Millisecond,
		Seed:             seed,
	}
}

// TestChaosSearchMatchesNoCacheUnderFaultSchedules is the tentpole
// guarantee: under every seeded fault schedule — injected errors, latency
// spikes, truncated and corrupted payloads, a full partition — a search
// through the faulty store finds capacities byte-identical to the
// cache-less run, the flush never fails (a demoted store is a healthy
// store), and a fresh replica loading whatever the faulty store persisted
// gets a frontier that still satisfies the monotone antichain invariants.
func TestChaosSearchMatchesNoCacheUnderFaultSchedules(t *testing.T) {
	g, buffers, upper := chaosChain(t)
	want := groundTruth(t, g, buffers, upper)
	fp := probecache.GraphKey(g, "chaos-minimize", "deadlock", "80")

	schedules := []struct {
		name string
		spec faultybackend.Spec
	}{
		{"errors", faultybackend.Spec{Seed: 11, ErrorOneIn: 2}},
		{"latency", faultybackend.Spec{Seed: 12, LatencyOneIn: 2, Latency: 200 * time.Microsecond}},
		{"truncate", faultybackend.Spec{Seed: 13, TruncateOneIn: 2}},
		{"corrupt", faultybackend.Spec{Seed: 14, CorruptOneIn: 2}},
		{"partition", faultybackend.Spec{Partitioned: true}},
		{"everything", faultybackend.Spec{
			Seed: 15, ErrorOneIn: 3, LatencyOneIn: 3, Latency: 100 * time.Microsecond,
			TruncateOneIn: 3, CorruptOneIn: 3,
		}},
	}
	for _, sched := range schedules {
		t.Run(sched.name, func(t *testing.T) {
			url := newSharedRemote(t)

			// Replica A searches and flushes through the faulty remote.
			faultyA := faultybackend.Wrap(remoteBackend(t, url), sched.spec)
			storeA := probecache.NewStoreBackend(
				cachestore.NewResilient(faultyA, cachestore.NewMem(), chaosOptions(sched.spec.Seed)))
			frontA, err := storeA.Entry(fp).Frontier(buffers)
			if err != nil {
				t.Fatal(err)
			}
			opts := minimize.Options{Workers: 1, Cache: frontA}
			got, err := minimize.Search(buffers, upper,
				minimize.DeadlockFreeCheck(g, "c", 80, []sim.Workloads{{}}, opts), opts)
			if err != nil {
				t.Fatalf("search through faulty store failed: %v", err)
			}
			if !reflect.DeepEqual(got.Caps, want) {
				t.Fatalf("faulty store changed the sizing: got %v, want %v", got.Caps, want)
			}
			if _, err := storeA.Flush(); err != nil {
				t.Fatalf("flush through faulty store failed (demotion must absorb it): %v", err)
			}

			// Replica B loads whatever A managed to persist — possibly
			// truncated, corrupted, or nothing at all — and must come up
			// either warm with a monotone frontier or cold, never wrong.
			specB := sched.spec
			specB.Seed ^= 0x5eed
			faultyB := faultybackend.Wrap(remoteBackend(t, url), specB)
			storeB := probecache.NewStoreBackend(
				cachestore.NewResilient(faultyB, cachestore.NewMem(), chaosOptions(specB.Seed)))
			frontB, err := storeB.Entry(fp).Frontier(buffers)
			if err != nil {
				t.Fatal(err)
			}
			if err := frontB.SelfCheck(); err != nil {
				t.Fatalf("frontier loaded from faulty store is not monotone: %v", err)
			}
			optsB := minimize.Options{Workers: 1, Cache: frontB}
			again, err := minimize.Search(buffers, upper,
				minimize.DeadlockFreeCheck(g, "c", 80, []sim.Workloads{{}}, optsB), optsB)
			if err != nil {
				t.Fatalf("replica B search failed: %v", err)
			}
			if !reflect.DeepEqual(again.Caps, want) {
				t.Fatalf("replica B sizing diverged: got %v, want %v", again.Caps, want)
			}

			if sched.spec.Partitioned {
				st := storeA.Stats()
				if st.Resilience == nil || st.Resilience.Demotions == 0 {
					t.Errorf("partitioned store reported no demotions: %+v", st.Resilience)
				}
			}
		})
	}
}

// TestChaosTwoReplicasConcurrentSharedRemote runs two replicas searching
// and flushing through one remote store at the same time (the -race
// target): merge-on-flush must keep the persisted payload decodable and
// the merged frontier monotone, and a third replica reading the merged
// store must still find the ground-truth sizing.
func TestChaosTwoReplicasConcurrentSharedRemote(t *testing.T) {
	g, buffers, upper := chaosChain(t)
	want := groundTruth(t, g, buffers, upper)
	fp := probecache.GraphKey(g, "chaos-minimize", "deadlock", "80")
	url := newSharedRemote(t)

	errc := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(seed uint64) {
			store := probecache.NewStoreBackend(
				cachestore.NewResilient(remoteBackend(t, url), cachestore.NewMem(), chaosOptions(seed)))
			front, err := store.Entry(fp).Frontier(buffers)
			if err != nil {
				errc <- err
				return
			}
			opts := minimize.Options{Cache: front}
			res, err := minimize.Search(buffers, upper,
				minimize.DeadlockFreeCheck(g, "c", 80, []sim.Workloads{{}}, opts), opts)
			if err != nil {
				errc <- err
				return
			}
			if !reflect.DeepEqual(res.Caps, want) {
				errc <- errors.New("replica sizing diverged from ground truth")
				return
			}
			_, err = store.Flush()
			errc <- err
		}(uint64(100 + i))
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}

	// A third replica reads the merged store: the racing flushes must have
	// left a fully trusted payload whose frontier is a monotone antichain
	// pair answering the whole search.
	storeC := probecache.NewStoreBackend(
		cachestore.NewResilient(remoteBackend(t, url), cachestore.NewMem(), chaosOptions(3)))
	frontC, err := storeC.Entry(fp).Frontier(buffers)
	if err != nil {
		t.Fatal(err)
	}
	if err := frontC.SelfCheck(); err != nil {
		t.Fatalf("merged frontier is not monotone: %v", err)
	}
	st := storeC.Stats()
	if st.Loaded != 1 || st.Skipped != 0 {
		t.Fatalf("merged payload was not fully trusted: %+v", st)
	}
	opts := minimize.Options{Workers: 1, Cache: frontC}
	res, err := minimize.Search(buffers, upper,
		minimize.DeadlockFreeCheck(g, "c", 80, []sim.Workloads{{}}, opts), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Caps, want) {
		t.Fatalf("merged store changed the sizing: got %v, want %v", res.Caps, want)
	}
	if res.Checks != 0 {
		t.Errorf("merged store still simulated %d probes, want 0", res.Checks)
	}
}

// TestChaosCanceledContextFallsThroughToLocalSim pins the budget contract
// through the backend layer (satellite: cancellation): a canceled Context
// during a remote load aborts promptly with the typed budget error — no
// retry spin, no demotion penalty — and the probe falls through to local
// simulation, still finding the ground-truth sizing.
func TestChaosCanceledContextFallsThroughToLocalSim(t *testing.T) {
	g, buffers, upper := chaosChain(t)
	want := groundTruth(t, g, buffers, upper)
	fp := probecache.GraphKey(g, "chaos-minimize", "deadlock", "80")

	// Every op on the remote stalls for an hour unless the Context says
	// otherwise.
	stall := faultybackend.Wrap(cachestore.NewMem(), faultybackend.Spec{
		Seed: 7, LatencyOneIn: 1, Latency: time.Hour,
	})
	opt := chaosOptions(7)
	opt.OpTimeout = time.Hour // only the caller's Context may cut the op short
	res := cachestore.NewResilient(stall, cachestore.NewMem(), opt)
	store := probecache.NewStoreBackend(res)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	entry := store.EntryContext(ctx, fp)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("canceled load took %v, want prompt abort", elapsed)
	}
	stats := res.Stats()
	if stats.Retries != 0 {
		t.Errorf("canceled load was retried %d times, want 0", stats.Retries)
	}
	if stats.Demotions != 0 {
		t.Errorf("caller cancellation counted as %d demotions, want 0", stats.Demotions)
	}

	// The entry came up cold; the search falls through to local
	// simulation and still answers correctly.
	front, err := entry.Frontier(buffers)
	if err != nil {
		t.Fatal(err)
	}
	opts := minimize.Options{Workers: 1, Cache: front}
	got, err := minimize.Search(buffers, upper,
		minimize.DeadlockFreeCheck(g, "c", 80, []sim.Workloads{{}}, opts), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Caps, want) {
		t.Fatalf("fall-through sizing diverged: got %v, want %v", got.Caps, want)
	}
	if got.Checks == 0 {
		t.Error("fall-through search simulated nothing; expected local probes")
	}

	// A flush under a pre-canceled Context reports the typed budget error
	// promptly instead of spinning against the stalled remote.
	canceled, stop := context.WithCancel(context.Background())
	stop()
	start = time.Now()
	if _, err := store.FlushContext(canceled); !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("FlushContext under canceled ctx = %v, want budget.ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("canceled flush took %v, want prompt abort", elapsed)
	}
}
