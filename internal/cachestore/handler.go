package cachestore

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sort"
	"strings"
)

// HandlerLimits bound what the served store accepts. The endpoints are
// auth-free by design — verdict payloads are advisory and validated
// before being trusted by any reader — so the limits are the only guard
// against a misbehaving or hostile writer filling the tier.
type HandlerLimits struct {
	// MaxPayloadBytes caps one payload (≤0: 1 MiB).
	MaxPayloadBytes int
	// MaxEntries caps distinct stored fingerprints (≤0: 4096).
	MaxEntries int
}

func (l HandlerLimits) withDefaults() HandlerLimits {
	if l.MaxPayloadBytes <= 0 {
		l.MaxPayloadBytes = 1 << 20
	}
	if l.MaxEntries <= 0 {
		l.MaxEntries = 4096
	}
	return l
}

// handler serves the /v1/cache protocol over a Backend.
type handler struct {
	backend Backend
	limits  HandlerLimits
}

// Handler returns an http.Handler speaking the /v1/cache protocol over
// backend, expecting paths RELATIVE to the /v1/cache/ prefix (mount it
// with http.StripPrefix, as internal/serve does):
//
//	GET    <fp>  -> 200 payload | 404
//	PUT    <fp>  -> 204 | 413 payload too large | 507 store full
//	DELETE <fp>  -> 204 (idempotent)
//	GET    ""    -> 200 {"fingerprints": [...]}
//
// Fingerprints must be canonical (64 lowercase hex digits, the
// probecache.GraphKey shape); anything else is a 400. Limit violations
// answer with typed statuses so a resilient client can tell "the store
// is full" (a durable condition, don't retry) from a transient failure.
func Handler(backend Backend, limits HandlerLimits) http.Handler {
	return &handler{backend: backend, limits: limits.withDefaults()}
}

func (h *handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fp := strings.Trim(r.URL.Path, "/")
	if fp == "" {
		h.serveList(w, r)
		return
	}
	if !canonicalFingerprint(fp) {
		http.Error(w, "cachestore: fingerprint must be 64 lowercase hex digits", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		h.serveRead(w, r, fp)
	case http.MethodPut:
		h.serveWrite(w, r, fp)
	case http.MethodDelete:
		h.serveDelete(w, r, fp)
	default:
		w.Header().Set("Allow", "GET, HEAD, PUT, DELETE")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// fail maps backend errors onto statuses: limits keep their typed codes,
// everything else is a 502 — the serving tier itself is fine, the
// backend behind it failed.
func fail(w http.ResponseWriter, err error) {
	var le *LimitError
	switch {
	case errors.As(err, &le):
		if le.What == "entries" {
			http.Error(w, err.Error(), http.StatusInsufficientStorage)
		} else {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		}
	case errors.Is(err, ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusBadGateway)
	}
}

func (h *handler) serveRead(w http.ResponseWriter, r *http.Request, fp string) {
	data, err := h.backend.Read(r.Context(), fp)
	if err != nil {
		fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		_, _ = w.Write(data)
	}
}

func (h *handler) serveWrite(w http.ResponseWriter, r *http.Request, fp string) {
	max := h.limits.MaxPayloadBytes
	data, err := io.ReadAll(io.LimitReader(r.Body, int64(max)+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(data) > max {
		fail(w, &LimitError{What: "payload bytes", Limit: max, Got: len(data)})
		return
	}
	// The entry guard admits overwrites of existing fingerprints even
	// when the store is full: replacing a payload never grows the tier.
	if _, rerr := h.backend.Read(r.Context(), fp); errors.Is(rerr, ErrNotFound) {
		fps, lerr := h.backend.List(r.Context())
		if lerr != nil {
			fail(w, lerr)
			return
		}
		if len(fps) >= h.limits.MaxEntries {
			fail(w, &LimitError{What: "entries", Limit: h.limits.MaxEntries, Got: len(fps) + 1})
			return
		}
	}
	if err := h.backend.Write(r.Context(), fp, data); err != nil {
		fail(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (h *handler) serveDelete(w http.ResponseWriter, r *http.Request, fp string) {
	if err := h.backend.Delete(r.Context(), fp); err != nil {
		fail(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (h *handler) serveList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	fps, err := h.backend.List(r.Context())
	if err != nil {
		fail(w, err)
		return
	}
	sort.Strings(fps)
	if fps == nil {
		fps = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		_ = json.NewEncoder(w).Encode(listResponse{Fingerprints: fps})
	}
}
