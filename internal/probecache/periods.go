package probecache

import (
	"sort"
	"sync"
	"sync/atomic"

	"vrdfcap/internal/ratio"
)

// Verdict is the cached outcome of one analytic period probe: whether the
// chain is schedulable at that period and, when it is relevant, the summed
// buffer capacity the policy selected.
type Verdict struct {
	Valid bool
	Total int64
}

// Periods caches period-feasibility verdicts for one (graph, constrained
// task, policy) triple — the axis capacity.SweepPeriods and
// MinimalFeasiblePeriod probe. Validity is monotone in the period: every
// per-task check compares a fixed response time against φ(w) = τ·const
// with a positive constant, so relaxing τ can only turn checks from
// failing to passing. LookupValid exploits that monotonicity; Lookup
// answers exact repeats only (the Total is period-specific and not
// monotone-derivable).
//
// Safe for concurrent use.
type Periods struct {
	mu       sync.Mutex
	verdicts map[ratio.Rat]Verdict
	hits     atomic.Int64
	misses   atomic.Int64
}

// NewPeriods returns an empty period-verdict cache.
func NewPeriods() *Periods {
	return &Periods{verdicts: make(map[ratio.Rat]Verdict)}
}

// Lookup returns the verdict recorded for exactly this period.
func (p *Periods) Lookup(period ratio.Rat) (Verdict, bool) {
	p.mu.Lock()
	v, ok := p.verdicts[period]
	p.mu.Unlock()
	if ok {
		p.hits.Add(1)
	} else {
		p.misses.Add(1)
	}
	return v, ok
}

// LookupValid answers a validity probe, using monotone dominance when the
// exact period is absent: a recorded valid verdict at a period ≤ this one
// proves validity, a recorded invalid verdict at a period ≥ this one
// proves invalidity. The second return is false when the cache cannot
// decide.
func (p *Periods) LookupValid(period ratio.Rat) (valid, hit bool) {
	p.mu.Lock()
	if v, ok := p.verdicts[period]; ok {
		p.mu.Unlock()
		p.hits.Add(1)
		return v.Valid, true
	}
	for rec, v := range p.verdicts {
		if v.Valid && rec.LessEq(period) {
			p.mu.Unlock()
			p.hits.Add(1)
			return true, true
		}
		if !v.Valid && period.LessEq(rec) {
			p.mu.Unlock()
			p.hits.Add(1)
			return false, true
		}
	}
	p.mu.Unlock()
	p.misses.Add(1)
	return false, false
}

// Probe answers one period probe with a single counter update: an exact
// verdict (with its Total) when recorded, otherwise a monotone-dominance
// validity answer (exact false, Total zero), otherwise a miss. Callers that
// issue one Probe per candidate period keep hits + misses equal to the
// number of probes — the invariant the separate Lookup-then-LookupValid
// sequence broke by double-counting a miss followed by a dominance hit.
func (p *Periods) Probe(period ratio.Rat) (v Verdict, exact, hit bool) {
	p.mu.Lock()
	if v, ok := p.verdicts[period]; ok {
		p.mu.Unlock()
		p.hits.Add(1)
		return v, true, true
	}
	for rec, rv := range p.verdicts {
		if rv.Valid && rec.LessEq(period) {
			p.mu.Unlock()
			p.hits.Add(1)
			return Verdict{Valid: true}, false, true
		}
		if !rv.Valid && period.LessEq(rec) {
			p.mu.Unlock()
			p.hits.Add(1)
			return Verdict{Valid: false}, false, true
		}
	}
	p.mu.Unlock()
	p.misses.Add(1)
	return Verdict{}, false, false
}

// Insert records a verdict. A repeat insert overwrites: the sweep always
// trusts the verdict it just computed over anything previously stored, so
// a stale or corrupted cached entry heals itself the next time its period
// is actually analysed.
func (p *Periods) Insert(period ratio.Rat, v Verdict) {
	p.mu.Lock()
	p.verdicts[period] = v
	p.mu.Unlock()
}

// Len returns the number of recorded verdicts.
func (p *Periods) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.verdicts)
}

// Counters returns the lookups answered from the cache (hits) and the
// lookups that had to analyse (misses).
func (p *Periods) Counters() (hits, misses int64) {
	return p.hits.Load(), p.misses.Load()
}

// periodRecord is the persisted form of one verdict.
type periodRecord struct {
	Num   int64 `json:"num"`
	Den   int64 `json:"den"`
	Valid bool  `json:"valid"`
	Total int64 `json:"total"`
}

func (p *Periods) snapshot() []periodRecord {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]periodRecord, 0, len(p.verdicts))
	for rec, v := range p.verdicts {
		out = append(out, periodRecord{Num: rec.Num(), Den: rec.Den(), Valid: v.Valid, Total: v.Total})
	}
	// The snapshot feeds the persisted JSON; sort it (any total order will
	// do — lexicographic on the reduced components avoids cross-multiplying,
	// which could overflow) so the on-disk bytes do not depend on map
	// iteration order.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Den != out[j].Den {
			return out[i].Den < out[j].Den
		}
		return out[i].Num < out[j].Num
	})
	return out
}

// absorb merges persisted verdicts; a record with a non-positive period is
// invalid and aborts the merge (the caller discards the snapshot).
func (p *Periods) absorb(records []periodRecord) error {
	for _, r := range records {
		period, err := ratio.New(r.Num, r.Den)
		if err != nil {
			return err
		}
		if period.Sign() <= 0 {
			return errNonPositivePeriod
		}
		p.Insert(period, Verdict{Valid: r.Valid, Total: r.Total})
	}
	return nil
}
