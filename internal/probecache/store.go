package probecache

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/cachestore"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

// Version is the persisted format version. A payload carrying any other
// version is ignored on load; Flush always writes the current version.
// Version 2 added the content checksum (Sum): once verdicts can arrive
// over a network, a flipped byte that still parses must be detectable,
// because a silently altered Total would change sweep answers.
const Version = 2

var (
	errNonPositivePeriod = errors.New("probecache: persisted period is not positive")
	errBadSum            = errors.New("probecache: content checksum mismatch")
)

// Store is a registry of cache entries keyed by canonical graph
// fingerprints (GraphKey). A store without a backend lives purely in
// memory; with one, Entry warm-starts from the backend's payload for the
// fingerprint when a trustworthy one exists, and Flush persists every
// entry back, merging with whatever another replica published in the
// meantime. Persisted data is advisory — a payload that is unreadable,
// malformed, mis-versioned, mis-fingerprinted, checksum-broken or
// monotonically inconsistent is skipped without error, and the verdicts
// recomputed in its place overwrite it on the next Flush.
//
// Safe for concurrent use.
type Store struct {
	backend cachestore.Backend // nil: memory-only
	mu      sync.Mutex
	entries map[string]*Entry
	loaded  int // payloads absorbed from the backend
	skipped int // payloads present but untrusted
}

// NewStore returns a store persisting to a directory of JSON files;
// dir == "" disables the persistence tier.
func NewStore(dir string) *Store {
	if dir == "" {
		return &Store{entries: make(map[string]*Entry)}
	}
	return NewStoreBackend(cachestore.NewDir(dir))
}

// NewStoreBackend returns a store persisting through an arbitrary
// backend — a local directory, process memory, or a Resilient-wrapped
// remote store shared by a fleet. A nil backend is memory-only.
func NewStoreBackend(b cachestore.Backend) *Store {
	return &Store{backend: b, entries: make(map[string]*Entry)}
}

var shared = NewStore("")

// Shared returns the process-wide in-memory store. Sweeps default to it so
// that repeated probes of the same graph within one process — for example
// a SweepPeriods followed by a MinimalFeasiblePeriod binary search — share
// verdicts without any caller plumbing.
func Shared() *Store { return shared }

// Dir returns the backing directory when the store persists to a local
// directory backend, "" otherwise.
func (s *Store) Dir() string {
	if d, ok := s.backend.(*cachestore.Dir); ok {
		return d.Path()
	}
	return ""
}

// Describe names the persistence tier for stats lines: "dir:...",
// "mem:", "resilient(http://... -> mem:)", or "" for a memory-only
// store.
func (s *Store) Describe() string {
	if s.backend == nil {
		return ""
	}
	return s.backend.String()
}

// Entry returns the cache entry for a fingerprint, creating it (and, for
// backed stores, attempting a one-time load of its payload) on first use.
func (s *Store) Entry(fingerprint string) *Entry {
	return s.EntryContext(context.Background(), fingerprint)
}

// EntryContext is Entry with a caller Context bounding the one-time
// backend load. A load cut short by cancellation (or any backend
// failure) starts the entry cold — the cache is advisory, so the caller
// simply probes by simulation; the entry is NOT reloaded later.
func (s *Store) EntryContext(ctx context.Context, fingerprint string) *Entry {
	s.mu.Lock()
	e, ok := s.entries[fingerprint]
	if !ok {
		e = &Entry{fp: fingerprint, periods: NewPeriods()}
		s.entries[fingerprint] = e
	}
	s.mu.Unlock()
	if s.backend != nil {
		// Outside s.mu: a slow backend load (a remote tier riding its
		// retry budget) must not serialise unrelated entries. Concurrent
		// callers of the SAME entry block here until the load settles,
		// which is exactly the warm-start they asked for.
		e.loadOnce.Do(func() { s.load(ctx, e) })
	}
	return e
}

// diskFile is the persisted form of one entry.
type diskFile struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	// Sum is the content checksum: hex sha256 over the compact JSON
	// marshal of this struct with Sum itself empty. It guards against
	// byte corruption that still parses — the monotonicity checks below
	// cannot notice a plausibly-flipped Total.
	Sum      string            `json:"sum,omitempty"`
	Frontier *frontierSnapshot `json:"frontier,omitempty"`
	Periods  []periodRecord    `json:"periods,omitempty"`
}

// frontierSnapshot is the persisted form of a Frontier.
type frontierSnapshot struct {
	Buffers    []string  `json:"buffers"`
	Feasible   [][]int64 `json:"feasible,omitempty"`
	Infeasible [][]int64 `json:"infeasible,omitempty"`
}

// sumOf computes the content checksum of f (ignoring any Sum it carries).
func sumOf(f diskFile) (string, error) {
	f.Sum = ""
	data, err := json.Marshal(f)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// seal marshals f with its content checksum filled in.
func seal(f diskFile) ([]byte, error) {
	sum, err := sumOf(f)
	if err != nil {
		return nil, err
	}
	f.Sum = sum
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// decodeFile parses and validates a persisted payload: version,
// fingerprint and content checksum. Deeper validation (period positivity,
// frontier consistency) happens on absorb.
func decodeFile(data []byte, fingerprint string) (diskFile, error) {
	var f diskFile
	if err := json.Unmarshal(data, &f); err != nil {
		return diskFile{}, err
	}
	if f.Version != Version {
		return diskFile{}, fmt.Errorf("probecache: payload version %d, want %d", f.Version, Version)
	}
	if f.Fingerprint != fingerprint {
		return diskFile{}, fmt.Errorf("probecache: payload is for fingerprint %s, not %s", f.Fingerprint, fingerprint)
	}
	sum, err := sumOf(f)
	if err != nil {
		return diskFile{}, err
	}
	if f.Sum != sum {
		return diskFile{}, errBadSum
	}
	return f, nil
}

// load absorbs the entry's persisted payload if one exists and is
// trustworthy. Runs once per entry, outside the store mutex.
func (s *Store) load(ctx context.Context, e *Entry) {
	data, err := s.backend.Read(ctx, e.fp)
	if err != nil {
		// Miss, backend failure or caller cancellation: start cold. A
		// cache may cost probes, never block them.
		return
	}
	f, err := decodeFile(data, e.fp)
	if err != nil {
		s.note(&s.skipped)
		return
	}
	e.mu.Lock()
	aerr := e.periods.absorb(f.Periods)
	if aerr != nil {
		// Partially absorbed verdicts are safe individually (each is an
		// independent fact), but the payload as a whole is untrusted:
		// reset.
		e.periods = NewPeriods()
	} else {
		// The frontier snapshot needs the caller's buffer order to
		// validate, so it stays pending until Entry.Frontier is called.
		e.pending = f.Frontier
	}
	e.mu.Unlock()
	if aerr != nil {
		s.note(&s.skipped)
	} else {
		s.note(&s.loaded)
	}
}

func (s *Store) note(counter *int) {
	s.mu.Lock()
	*counter++
	s.mu.Unlock()
}

// Flush writes every entry with content back to the persistence tier and
// returns how many payloads it wrote. Memory-only stores flush nothing.
func (s *Store) Flush() (written int, err error) {
	return s.FlushContext(context.Background())
}

// FlushContext is Flush bounded by a caller Context. Each entry is
// merged with the payload currently persisted under its fingerprint —
// two replicas flushing through one shared store lose neither side's
// verdicts — and written back sealed with a fresh checksum.
func (s *Store) FlushContext(ctx context.Context) (written int, err error) {
	if s.backend == nil {
		return 0, nil
	}
	s.mu.Lock()
	entries := make([]*Entry, 0, len(s.entries))
	for _, e := range s.entries {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	// Deterministic write order: a flush must touch payloads in the same
	// order every run, or two flushes racing over the same tier could
	// interleave differently run to run.
	sort.Slice(entries, func(i, j int) bool { return entries[i].fp < entries[j].fp })
	for _, e := range entries {
		f := e.file()
		if f.Frontier == nil && len(f.Periods) == 0 {
			continue
		}
		if data, rerr := s.backend.Read(ctx, e.fp); rerr == nil {
			if theirs, derr := decodeFile(data, e.fp); derr == nil {
				f = mergeFiles(f, theirs)
			}
			// An untrusted persisted payload is simply overwritten.
		} else if errors.Is(rerr, budget.ErrCanceled) || errors.Is(rerr, budget.ErrBudgetExceeded) {
			return written, rerr
		}
		data, err := seal(f)
		if err != nil {
			return written, fmt.Errorf("probecache: encode %s: %w", e.fp, err)
		}
		if werr := s.backend.Write(ctx, e.fp, data); werr != nil {
			return written, fmt.Errorf("probecache: write %s: %w", e.fp, werr)
		}
		written++
	}
	return written, nil
}

// mergeFiles folds a replica's persisted payload (theirs, already
// version/fingerprint/checksum-validated) into the payload about to be
// written (ours). Persisted data stays advisory: theirs is absorbed
// wholesale or dropped wholesale, and on any conflict — an exact-period
// disagreement, a mismatched buffer order, a monotonicity contradiction —
// ours wins, because ours was computed in this process and theirs may be
// stale or poisoned.
func mergeFiles(ours, theirs diskFile) diskFile {
	if len(theirs.Periods) > 0 {
		p := NewPeriods()
		// Theirs first, ours second: Insert overwrites, so our verdict
		// wins any exact-period conflict.
		if p.absorb(theirs.Periods) == nil && p.absorb(ours.Periods) == nil {
			ours.Periods = p.snapshot()
		}
	}
	if theirs.Frontier != nil {
		if ours.Frontier == nil {
			fr := NewFrontier(theirs.Frontier.Buffers)
			if fr.absorb(*theirs.Frontier) == nil {
				snap := fr.snapshot()
				ours.Frontier = &snap
			}
		} else {
			fr := NewFrontier(ours.Frontier.Buffers)
			if fr.absorb(*ours.Frontier) == nil && fr.absorb(*theirs.Frontier) == nil {
				snap := fr.snapshot()
				ours.Frontier = &snap
			}
		}
	}
	return ours
}

// StoreStats aggregates a store's cache effectiveness for reporting.
type StoreStats struct {
	Entries int   // distinct fingerprints touched
	Loaded  int   // payloads warm-started from the backend
	Skipped int   // payloads present but untrusted (bad version, corrupt, ...)
	Hits    int64 // lookups answered from cache across all entries
	Misses  int64 // lookups that had to compute
	// Backend describes the persistence tier ("" for memory-only).
	Backend string
	// Resilience carries the fault-tolerance counters when the backend
	// is a cachestore.Resilient wrapper (demotions, breaker state, ...).
	Resilience *cachestore.Stats
}

// Stats returns the store's aggregate counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	st := StoreStats{Entries: len(s.entries), Loaded: s.loaded, Skipped: s.skipped}
	entries := make([]*Entry, 0, len(s.entries))
	for _, e := range s.entries {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].fp < entries[j].fp })
	for _, e := range entries {
		e.mu.Lock()
		if e.frontier != nil {
			h, m := e.frontier.Counters()
			st.Hits += h
			st.Misses += m
		}
		h, m := e.periods.Counters()
		st.Hits += h
		st.Misses += m
		e.mu.Unlock()
	}
	if s.backend != nil {
		st.Backend = s.backend.String()
		if r, ok := s.backend.(*cachestore.Resilient); ok {
			rs := r.Stats()
			st.Resilience = &rs
		}
	}
	return st
}

// Entry bundles the caches for one fingerprinted problem: a capacity
// frontier for minimization probes and a period-verdict cache for sweeps.
type Entry struct {
	fp       string
	loadOnce sync.Once
	mu       sync.Mutex
	pending  *frontierSnapshot // loaded from the backend, not yet validated
	frontier *Frontier
	periods  *Periods
}

// Fingerprint returns the entry's key.
func (e *Entry) Fingerprint() string { return e.fp }

// Frontier returns the entry's capacity frontier over the given buffer
// order, creating it on first use and absorbing any pending persisted
// snapshot that matches. All callers sharing an entry must agree on the
// buffer order; a mismatch is an error because mixing projections would
// corrupt the dominance test.
func (e *Entry) Frontier(buffers []string) (*Frontier, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.frontier != nil {
		if !e.frontier.SameKeys(buffers) {
			return nil, fmt.Errorf("probecache: entry %s frontier is over buffers %v, caller wants %v",
				e.fp, e.frontier.Keys(), buffers)
		}
		return e.frontier, nil
	}
	e.frontier = NewFrontier(buffers)
	if e.pending != nil {
		// Advisory persisted data: absorb when consistent, drop wholesale
		// otherwise — a partially contradictory snapshot is untrusted in
		// full, so the half absorbed before the contradiction goes too.
		if e.frontier.absorb(*e.pending) != nil {
			e.frontier = NewFrontier(buffers)
		}
		e.pending = nil
	}
	return e.frontier, nil
}

// Periods returns the entry's period-verdict cache.
func (e *Entry) Periods() *Periods {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.periods
}

// file snapshots the entry for persistence.
func (e *Entry) file() diskFile {
	e.mu.Lock()
	frontier := e.frontier
	pending := e.pending
	periods := e.periods
	e.mu.Unlock()
	f := diskFile{Version: Version, Fingerprint: e.fp}
	switch {
	case frontier != nil:
		s := frontier.snapshot()
		if len(s.Feasible)+len(s.Infeasible) > 0 {
			f.Frontier = &s
		}
	case pending != nil:
		// Never materialised this run; keep the loaded snapshot as-is.
		f.Frontier = pending
	}
	f.Periods = periods.snapshot()
	sort.Slice(f.Periods, func(i, j int) bool {
		a := ratio.MustNew(f.Periods[i].Num, f.Periods[i].Den)
		b := ratio.MustNew(f.Periods[j].Num, f.Periods[j].Den)
		return a.Less(b)
	})
	return f
}

// GraphKey returns the canonical fingerprint of a task graph plus any
// caller-supplied parts that co-determine probe verdicts (constraint,
// firing horizon, workload descriptors, policy, ...). Two calls agree
// exactly when the graphs have identical tasks, buffers, quanta,
// capacities and container sizes — independent of insertion order — and
// the parts match. Quanta sequences and CheckFuncs are functions and
// cannot be fingerprinted, so callers must fold a faithful textual
// description of them into parts; omitting a distinguishing part conflates
// distinct problems and poisons the shared cache.
func GraphKey(g *taskgraph.Graph, parts ...string) string {
	h := sha256.New()
	buf := make([]byte, 0, 64)
	field := func(s string) {
		buf = append(buf[:0], s...)
		buf = append(buf, 0)
		h.Write(buf)
	}
	num := func(n int64) {
		buf = strconv.AppendInt(buf[:0], n, 10)
		buf = append(buf, 0)
		h.Write(buf)
	}
	if g != nil {
		tasks := append([]*taskgraph.Task(nil), g.Tasks()...)
		sort.Slice(tasks, func(i, j int) bool { return tasks[i].Name < tasks[j].Name })
		for _, t := range tasks {
			field("task")
			field(t.Name)
			num(t.WCRT.Num())
			num(t.WCRT.Den())
		}
		buffers := append([]*taskgraph.Buffer(nil), g.Buffers()...)
		sort.Slice(buffers, func(i, j int) bool { return buffers[i].DefaultName() < buffers[j].DefaultName() })
		for _, b := range buffers {
			field("buffer")
			field(b.DefaultName())
			field(b.Producer)
			field(b.Consumer)
			for _, v := range b.Prod.Values() {
				num(v)
			}
			field("cons")
			for _, v := range b.Cons.Values() {
				num(v)
			}
			num(b.Capacity)
			num(b.ContainerBytes)
		}
	}
	for _, p := range parts {
		field("part")
		field(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}
