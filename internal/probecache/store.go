package probecache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

// Version is the on-disk format version. A file carrying any other version
// is ignored on load; Flush always writes the current version.
const Version = 1

var errNonPositivePeriod = errors.New("probecache: persisted period is not positive")

// Store is a registry of cache entries keyed by canonical graph
// fingerprints (GraphKey). A store with an empty directory lives purely in
// memory; NewStore with a directory adds a versioned on-disk tier: Entry
// warm-starts from `<dir>/<fingerprint>.json` when a trustworthy file
// exists, and Flush persists every entry back. On-disk data is advisory —
// a file that is unreadable, malformed, mis-versioned, mis-fingerprinted
// or monotonically inconsistent is skipped without error, and the verdicts
// recomputed in its place overwrite it on the next Flush.
//
// Safe for concurrent use.
type Store struct {
	dir     string
	mu      sync.Mutex
	entries map[string]*Entry
	loaded  int // files absorbed from disk
	skipped int // files present but untrusted
}

// NewStore returns a store; dir == "" disables the on-disk tier.
func NewStore(dir string) *Store {
	return &Store{dir: dir, entries: make(map[string]*Entry)}
}

var shared = NewStore("")

// Shared returns the process-wide in-memory store. Sweeps default to it so
// that repeated probes of the same graph within one process — for example
// a SweepPeriods followed by a MinimalFeasiblePeriod binary search — share
// verdicts without any caller plumbing.
func Shared() *Store { return shared }

// Dir returns the on-disk directory, or "" for a memory-only store.
func (s *Store) Dir() string { return s.dir }

// Entry returns the cache entry for a fingerprint, creating it (and, for
// disk-backed stores, attempting a one-time load of its file) on first
// use.
func (s *Store) Entry(fingerprint string) *Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[fingerprint]; ok {
		return e
	}
	e := &Entry{fp: fingerprint, periods: NewPeriods()}
	if s.dir != "" {
		s.load(e)
	}
	s.entries[fingerprint] = e
	return e
}

// diskFile is the persisted form of one entry.
type diskFile struct {
	Version     int               `json:"version"`
	Fingerprint string            `json:"fingerprint"`
	Frontier    *frontierSnapshot `json:"frontier,omitempty"`
	Periods     []periodRecord    `json:"periods,omitempty"`
}

// frontierSnapshot is the persisted form of a Frontier.
type frontierSnapshot struct {
	Buffers    []string  `json:"buffers"`
	Feasible   [][]int64 `json:"feasible,omitempty"`
	Infeasible [][]int64 `json:"infeasible,omitempty"`
}

func (s *Store) path(fingerprint string) string {
	return filepath.Join(s.dir, fingerprint+".json")
}

// load absorbs the entry's file if one exists and is trustworthy. Called
// with s.mu held, before the entry is published.
func (s *Store) load(e *Entry) {
	data, err := os.ReadFile(s.path(e.fp))
	if err != nil {
		return // no file (or unreadable): start cold
	}
	var f diskFile
	if err := json.Unmarshal(data, &f); err != nil {
		s.skipped++
		return
	}
	if f.Version != Version || f.Fingerprint != e.fp {
		s.skipped++
		return
	}
	if err := e.periods.absorb(f.Periods); err != nil {
		// Partially absorbed verdicts are safe individually (each is an
		// independent fact), but the file as a whole is untrusted: reset.
		e.periods = NewPeriods()
		s.skipped++
		return
	}
	// The frontier snapshot needs the caller's buffer order to validate,
	// so it stays pending until Entry.Frontier is first called.
	e.pending = f.Frontier
	s.loaded++
}

// Flush writes every entry with content back to the on-disk tier and
// returns how many files it wrote. Memory-only stores flush nothing.
// Writes are atomic (temp file + rename) so a crashed or concurrent flush
// never leaves a torn file for the corruption-tolerant loader to trip on.
func (s *Store) Flush() (written int, err error) {
	if s.dir == "" {
		return 0, nil
	}
	s.mu.Lock()
	entries := make([]*Entry, 0, len(s.entries))
	for _, e := range s.entries {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	// Deterministic write order: a flush must touch files in the same order
	// every run, or two flushes racing over the same directory could
	// interleave differently run to run.
	sort.Slice(entries, func(i, j int) bool { return entries[i].fp < entries[j].fp })
	if len(entries) == 0 {
		return 0, nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return 0, fmt.Errorf("probecache: create cache dir: %w", err)
	}
	for _, e := range entries {
		f := e.file()
		if f.Frontier == nil && len(f.Periods) == 0 {
			continue
		}
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			return written, fmt.Errorf("probecache: encode %s: %w", e.fp, err)
		}
		tmp, err := os.CreateTemp(s.dir, e.fp+".tmp*")
		if err != nil {
			return written, fmt.Errorf("probecache: write %s: %w", e.fp, err)
		}
		_, werr := tmp.Write(append(data, '\n'))
		cerr := tmp.Close()
		if werr == nil {
			werr = cerr
		}
		if werr == nil {
			werr = os.Rename(tmp.Name(), s.path(e.fp))
		}
		if werr != nil {
			_ = os.Remove(tmp.Name()) // best-effort cleanup; the write error wins
			return written, fmt.Errorf("probecache: write %s: %w", e.fp, werr)
		}
		written++
	}
	return written, nil
}

// StoreStats aggregates a store's cache effectiveness for reporting.
type StoreStats struct {
	Entries int   // distinct fingerprints touched
	Loaded  int   // files warm-started from disk
	Skipped int   // files present but untrusted (bad version, corrupt, ...)
	Hits    int64 // lookups answered from cache across all entries
	Misses  int64 // lookups that had to compute
}

// Stats returns the store's aggregate counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{Entries: len(s.entries), Loaded: s.loaded, Skipped: s.skipped}
	for _, e := range s.entries {
		e.mu.Lock()
		if e.frontier != nil {
			h, m := e.frontier.Counters()
			st.Hits += h
			st.Misses += m
		}
		h, m := e.periods.Counters()
		st.Hits += h
		st.Misses += m
		e.mu.Unlock()
	}
	return st
}

// Entry bundles the caches for one fingerprinted problem: a capacity
// frontier for minimization probes and a period-verdict cache for sweeps.
type Entry struct {
	fp       string
	mu       sync.Mutex
	pending  *frontierSnapshot // loaded from disk, not yet validated
	frontier *Frontier
	periods  *Periods
}

// Fingerprint returns the entry's key.
func (e *Entry) Fingerprint() string { return e.fp }

// Frontier returns the entry's capacity frontier over the given buffer
// order, creating it on first use and absorbing any pending on-disk
// snapshot that matches. All callers sharing an entry must agree on the
// buffer order; a mismatch is an error because mixing projections would
// corrupt the dominance test.
func (e *Entry) Frontier(buffers []string) (*Frontier, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.frontier != nil {
		if !e.frontier.SameKeys(buffers) {
			return nil, fmt.Errorf("probecache: entry %s frontier is over buffers %v, caller wants %v",
				e.fp, e.frontier.Keys(), buffers)
		}
		return e.frontier, nil
	}
	e.frontier = NewFrontier(buffers)
	if e.pending != nil {
		// Advisory on-disk data: absorb when consistent, drop wholesale
		// otherwise — a partially contradictory snapshot is untrusted in
		// full, so the half absorbed before the contradiction goes too.
		if e.frontier.absorb(*e.pending) != nil {
			e.frontier = NewFrontier(buffers)
		}
		e.pending = nil
	}
	return e.frontier, nil
}

// Periods returns the entry's period-verdict cache.
func (e *Entry) Periods() *Periods {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.periods
}

// file snapshots the entry for persistence.
func (e *Entry) file() diskFile {
	e.mu.Lock()
	frontier := e.frontier
	pending := e.pending
	periods := e.periods
	e.mu.Unlock()
	f := diskFile{Version: Version, Fingerprint: e.fp}
	switch {
	case frontier != nil:
		s := frontier.snapshot()
		if len(s.Feasible)+len(s.Infeasible) > 0 {
			f.Frontier = &s
		}
	case pending != nil:
		// Never materialised this run; keep the loaded snapshot as-is.
		f.Frontier = pending
	}
	f.Periods = periods.snapshot()
	sort.Slice(f.Periods, func(i, j int) bool {
		a := ratio.MustNew(f.Periods[i].Num, f.Periods[i].Den)
		b := ratio.MustNew(f.Periods[j].Num, f.Periods[j].Den)
		return a.Less(b)
	})
	return f
}

// GraphKey returns the canonical fingerprint of a task graph plus any
// caller-supplied parts that co-determine probe verdicts (constraint,
// firing horizon, workload descriptors, policy, ...). Two calls agree
// exactly when the graphs have identical tasks, buffers, quanta,
// capacities and container sizes — independent of insertion order — and
// the parts match. Quanta sequences and CheckFuncs are functions and
// cannot be fingerprinted, so callers must fold a faithful textual
// description of them into parts; omitting a distinguishing part conflates
// distinct problems and poisons the shared cache.
func GraphKey(g *taskgraph.Graph, parts ...string) string {
	h := sha256.New()
	buf := make([]byte, 0, 64)
	field := func(s string) {
		buf = append(buf[:0], s...)
		buf = append(buf, 0)
		h.Write(buf)
	}
	num := func(n int64) {
		buf = strconv.AppendInt(buf[:0], n, 10)
		buf = append(buf, 0)
		h.Write(buf)
	}
	if g != nil {
		tasks := append([]*taskgraph.Task(nil), g.Tasks()...)
		sort.Slice(tasks, func(i, j int) bool { return tasks[i].Name < tasks[j].Name })
		for _, t := range tasks {
			field("task")
			field(t.Name)
			num(t.WCRT.Num())
			num(t.WCRT.Den())
		}
		buffers := append([]*taskgraph.Buffer(nil), g.Buffers()...)
		sort.Slice(buffers, func(i, j int) bool { return buffers[i].DefaultName() < buffers[j].DefaultName() })
		for _, b := range buffers {
			field("buffer")
			field(b.DefaultName())
			field(b.Producer)
			field(b.Consumer)
			for _, v := range b.Prod.Values() {
				num(v)
			}
			field("cons")
			for _, v := range b.Cons.Values() {
				num(v)
			}
			num(b.Capacity)
			num(b.ContainerBytes)
		}
	}
	for _, p := range parts {
		field("part")
		field(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}
