package probecache

import (
	"strings"
	"testing"

	"vrdfcap/internal/ratio"
)

func TestFrontierDominance(t *testing.T) {
	c := NewFrontier([]string{"a", "b"})
	if _, hit := c.Lookup(map[string]int64{"a": 3, "b": 3}); hit {
		t.Fatal("empty cache answered a probe")
	}
	if err := c.Insert(map[string]int64{"a": 3, "b": 4}, true); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(map[string]int64{"a": 2, "b": 4}, false); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b     int64
		feasible bool
		hit      bool
	}{
		{3, 4, true, true},   // exactly the feasible entry
		{5, 9, true, true},   // dominates it
		{2, 4, false, true},  // exactly the infeasible entry
		{1, 2, false, true},  // dominated by it
		{2, 9, false, false}, // between the frontiers: must simulate
		{3, 3, false, false},
	}
	for _, tc := range cases {
		feasible, hit := c.Lookup(map[string]int64{"a": tc.a, "b": tc.b})
		if hit != tc.hit || (hit && feasible != tc.feasible) {
			t.Errorf("Lookup(a:%d, b:%d) = (%v, %v), want (%v, %v)",
				tc.a, tc.b, feasible, hit, tc.feasible, tc.hit)
		}
	}
	hits, misses := c.Counters()
	if hits != 4 || misses != 3 {
		t.Errorf("counters = (%d hits, %d misses), want (4, 3)", hits, misses)
	}
}

func TestFrontiersStayMinimal(t *testing.T) {
	c := NewFrontier([]string{"a", "b"})
	// A tighter feasible vector must replace the looser one it dominates.
	for _, v := range []map[string]int64{
		{"a": 5, "b": 5}, {"a": 3, "b": 5}, {"a": 3, "b": 4},
	} {
		if err := c.Insert(v, true); err != nil {
			t.Fatal(err)
		}
	}
	if f, _ := c.Size(); f != 1 {
		t.Errorf("feasible frontier has %d entries, want 1: %v", f, c.feasible)
	}
	// Incomparable vectors coexist on the frontier.
	if err := c.Insert(map[string]int64{"a": 2, "b": 9}, true); err != nil {
		t.Fatal(err)
	}
	if f, _ := c.Size(); f != 2 {
		t.Errorf("incomparable vector pruned: %v", c.feasible)
	}
	// Symmetrically for the infeasible frontier: larger dominates.
	for _, v := range []map[string]int64{
		{"a": 1, "b": 1}, {"a": 1, "b": 3}, {"a": 2, "b": 3},
	} {
		if err := c.Insert(v, false); err != nil {
			t.Fatal(err)
		}
	}
	if _, inf := c.Size(); inf != 1 {
		t.Errorf("infeasible frontier has %d entries, want 1: %v", inf, c.infeasible)
	}
}

func TestFrontierDetectsNonMonotoneCheck(t *testing.T) {
	c := NewFrontier([]string{"a"})
	if err := c.Insert(map[string]int64{"a": 4}, false); err != nil {
		t.Fatal(err)
	}
	err := c.Insert(map[string]int64{"a": 3}, true)
	if err == nil || !strings.Contains(err.Error(), "not monotone") {
		t.Errorf("feasible-below-infeasible accepted: %v", err)
	}
	c2 := NewFrontier([]string{"a"})
	if err := c2.Insert(map[string]int64{"a": 3}, true); err != nil {
		t.Fatal(err)
	}
	err = c2.Insert(map[string]int64{"a": 4}, false)
	if err == nil || !strings.Contains(err.Error(), "not monotone") {
		t.Errorf("infeasible-above-feasible accepted: %v", err)
	}
}

func TestFrontierSameKeys(t *testing.T) {
	c := NewFrontier([]string{"a", "b"})
	if !c.SameKeys([]string{"a", "b"}) {
		t.Error("identical order rejected")
	}
	for _, bad := range [][]string{{"b", "a"}, {"a"}, {"a", "b", "c"}, nil} {
		if c.SameKeys(bad) {
			t.Errorf("order %v accepted", bad)
		}
	}
}

func r(num, den int64) ratio.Rat { return ratio.MustNew(num, den) }

func TestPeriodsExactAndDominance(t *testing.T) {
	p := NewPeriods()
	if _, hit := p.Lookup(r(1, 1)); hit {
		t.Fatal("empty cache answered a probe")
	}
	p.Insert(r(2, 1), Verdict{Valid: true, Total: 7})
	p.Insert(r(1, 2), Verdict{Valid: false})

	if v, ok := p.Lookup(r(2, 1)); !ok || !v.Valid || v.Total != 7 {
		t.Errorf("exact lookup = (%+v, %v)", v, ok)
	}
	if _, ok := p.Lookup(r(3, 1)); ok {
		t.Error("exact lookup answered an unseen period")
	}

	cases := []struct {
		period     ratio.Rat
		valid, hit bool
	}{
		{r(2, 1), true, true},   // exact
		{r(3, 1), true, true},   // relaxed beyond a valid period
		{r(1, 2), false, true},  // exact infeasible
		{r(1, 4), false, true},  // tighter than an infeasible period
		{r(1, 1), false, false}, // between the frontiers: must analyse
	}
	for _, tc := range cases {
		valid, hit := p.LookupValid(tc.period)
		if hit != tc.hit || (hit && valid != tc.valid) {
			t.Errorf("LookupValid(%v) = (%v, %v), want (%v, %v)", tc.period, valid, hit, tc.valid, tc.hit)
		}
	}
	// Overwriting heals a wrong entry.
	p.Insert(r(2, 1), Verdict{Valid: true, Total: 9})
	if v, _ := p.Lookup(r(2, 1)); v.Total != 9 {
		t.Errorf("overwrite ignored: %+v", v)
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
}

// TestPeriodsProbeSingleCount pins the probe-accounting invariant: one Probe
// call updates exactly one counter, so after N probes hits + misses == N.
// The old Lookup-miss-then-LookupValid-dominance-hit sequence counted such a
// probe twice; Probe answers exact verdicts, dominance verdicts and misses
// under a single counter update.
func TestPeriodsProbeSingleCount(t *testing.T) {
	p := NewPeriods()
	p.Insert(r(2, 1), Verdict{Valid: true, Total: 7})
	p.Insert(r(1, 2), Verdict{Valid: false})

	cases := []struct {
		period     ratio.Rat
		valid      bool
		exact, hit bool
	}{
		{r(2, 1), true, true, true},    // exact feasible, Total carried
		{r(3, 1), true, false, true},   // dominance: relaxed beyond a valid period
		{r(1, 2), false, true, true},   // exact infeasible
		{r(1, 4), false, false, true},  // dominance: tighter than an infeasible period
		{r(1, 1), false, false, false}, // between the frontiers: miss
		{r(1, 1), false, false, false}, // a repeated miss still counts once each
	}
	for i, tc := range cases {
		v, exact, hit := p.Probe(tc.period)
		if hit != tc.hit || exact != tc.exact || (hit && v.Valid != tc.valid) {
			t.Errorf("case %d: Probe(%v) = (%+v, %v, %v), want valid=%v exact=%v hit=%v",
				i, tc.period, v, exact, hit, tc.valid, tc.exact, tc.hit)
		}
		if exact && tc.period.Equal(r(2, 1)) && v.Total != 7 {
			t.Errorf("case %d: exact probe dropped Total: %+v", i, v)
		}
	}
	hits, misses := p.Counters()
	if got, want := hits+misses, int64(len(cases)); got != want {
		t.Errorf("hits(%d) + misses(%d) = %d after %d probes, want exactly %d",
			hits, misses, got, len(cases), want)
	}
	if hits != 4 || misses != 2 {
		t.Errorf("hits, misses = %d, %d, want 4, 2", hits, misses)
	}
}
