// Package probecache caches feasibility-probe verdicts across searches,
// sweeps and CLI invocations.
//
// Every layer of this library that sizes buffers probes candidates against
// a monotone predicate: minimize.Search asks "is this capacity vector
// feasible?" (monotone in every coordinate by Definition 1 of Wiggers et
// al., DATE 2008 — more space never delays a start), and
// capacity.SweepPeriods asks "is this period schedulable?" (monotone in the
// period: relaxing the constraint only relaxes every per-task check).
// Monotone verdicts are reusable: any vector dominating a known-feasible
// one is feasible without simulating, and symmetrically for infeasible
// ones. This package holds those verdicts in three tiers:
//
//   - Frontier: an antichain pair (minimal feasible / maximal infeasible
//     capacity vectors) answering dominated probes — extracted from
//     minimize.Search so independent searches can share it.
//   - Periods: exact and dominance-based period verdicts for the analytic
//     sweep, shared between SweepPeriods and MinimalFeasiblePeriod.
//   - Store: a process-wide registry keyed by a canonical graph
//     fingerprint (GraphKey), optionally persisted as versioned JSON files
//     so repeated CLI invocations warm-start. Disk content is advisory: a
//     file that fails to parse, carries the wrong version or fingerprint,
//     or contradicts monotonicity is ignored, never trusted.
//
// A cache can change how many probes run, never which answer a search
// returns; the equivalence tests in internal/minimize and
// internal/capacity pin that contract.
package probecache

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Frontier remembers probed capacity vectors as two minimal antichains and
// answers dominated probes without simulating. Inserting a feasible vector
// drops the feasible entries it dominates, and symmetrically for
// infeasible ones, so lookups scan only non-redundant frontiers. A
// contradiction between the frontiers (a feasible vector at or below an
// infeasible one) can only come from a non-monotone check and is reported
// as an error, preserving the caller's non-monotone-check semantics.
//
// Safe for concurrent use; speculative parallel probes and concurrent
// searches may share one Frontier.
type Frontier struct {
	keys       []string // buffer order of the vectors
	mu         sync.Mutex
	feasible   [][]int64 // minimal known-feasible vectors
	infeasible [][]int64 // maximal known-infeasible vectors
	hits       atomic.Int64
	misses     atomic.Int64
}

// NewFrontier returns an empty frontier over the given buffer order.
func NewFrontier(buffers []string) *Frontier {
	return &Frontier{keys: append([]string(nil), buffers...)}
}

// Keys returns a copy of the buffer order the frontier projects vectors
// onto.
func (c *Frontier) Keys() []string { return append([]string(nil), c.keys...) }

// SameKeys reports whether the frontier's buffer order matches buffers
// exactly. Sharing a frontier between searches is only sound when they
// agree on the projection order.
func (c *Frontier) SameKeys(buffers []string) bool {
	if len(buffers) != len(c.keys) {
		return false
	}
	for i, k := range c.keys {
		if buffers[i] != k {
			return false
		}
	}
	return true
}

// vec projects a capacity assignment onto the frontier's buffer order.
func (c *Frontier) vec(caps map[string]int64) []int64 {
	v := make([]int64, len(c.keys))
	for i, k := range c.keys {
		v[i] = caps[k]
	}
	return v
}

// leq reports a ≤ b pointwise.
//
//vrdf:noalloc
func leq(a, b []int64) bool {
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

func (c *Frontier) fmtVec(v []int64) string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range c.keys {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s:%d", k, v[i])
	}
	sb.WriteByte('}')
	return sb.String()
}

// Lookup answers a probe by dominance: (feasible, true) when the
// assignment is at or above a known-feasible vector, (false, true) when it
// is at or below a known-infeasible one, and (_, false) when the cache
// cannot decide and the probe must simulate.
func (c *Frontier) Lookup(caps map[string]int64) (feasible, hit bool) {
	v := c.vec(caps)
	c.mu.Lock()
	defer c.mu.Unlock()
	feasible, hit = c.lookupLocked(v)
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return feasible, hit
}

// lookupLocked answers a probe vector against the two frontiers by
// dominance. It is the per-probe hot path of the shared cache.
//
//vrdf:noalloc
func (c *Frontier) lookupLocked(v []int64) (feasible, hit bool) {
	for _, f := range c.feasible {
		if leq(f, v) {
			return true, true
		}
	}
	for _, inf := range c.infeasible {
		if leq(v, inf) {
			return false, true
		}
	}
	return false, false
}

// Insert records a simulated probe's verdict, keeping the frontiers
// minimal. A verdict that contradicts the opposite frontier exposes a
// non-monotone check and is returned as an error.
func (c *Frontier) Insert(caps map[string]int64, feasible bool) error {
	v := c.vec(caps)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.insertLocked(v, feasible)
}

func (c *Frontier) insertLocked(v []int64, feasible bool) error {
	if feasible {
		for _, inf := range c.infeasible {
			if leq(v, inf) {
				return fmt.Errorf("probecache: check is not monotone: %s is feasible but the pointwise-larger %s was infeasible",
					c.fmtVec(v), c.fmtVec(inf))
			}
		}
		for _, f := range c.feasible {
			if leq(f, v) {
				return nil // dominated by an existing entry
			}
		}
		kept := c.feasible[:0]
		for _, f := range c.feasible {
			if !leq(v, f) {
				kept = append(kept, f)
			}
		}
		c.feasible = append(kept, v)
		return nil
	}
	for _, f := range c.feasible {
		if leq(f, v) {
			return fmt.Errorf("probecache: check is not monotone: %s is infeasible but the pointwise-smaller %s was feasible",
				c.fmtVec(v), c.fmtVec(f))
		}
	}
	for _, inf := range c.infeasible {
		if leq(v, inf) {
			return nil
		}
	}
	kept := c.infeasible[:0]
	for _, inf := range c.infeasible {
		if !leq(inf, v) {
			kept = append(kept, inf)
		}
	}
	c.infeasible = append(kept, v)
	return nil
}

// Size returns the number of vectors on the feasible and infeasible
// frontiers.
func (c *Frontier) Size() (feasible, infeasible int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.feasible), len(c.infeasible)
}

// Counters returns the number of lookups answered by dominance (hits) and
// the number that had to simulate (misses) since the frontier was created
// or loaded.
func (c *Frontier) Counters() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// SelfCheck verifies the frontier's structural invariants: the feasible
// and infeasible sets are antichains (no member dominates another, so
// every entry is load-bearing) and they never contradict (no feasible
// vector pointwise at or below an infeasible one — monotonicity). The
// chaos suite runs it after merging verdicts from faulty backends: no
// fault schedule may ever smuggle a non-monotone verdict into a live
// frontier.
func (c *Frontier) SelfCheck() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, f := range c.feasible {
		for _, inf := range c.infeasible {
			if leq(f, inf) {
				return fmt.Errorf("probecache: frontier contradiction: feasible %s at or below infeasible %s",
					c.fmtVec(f), c.fmtVec(inf))
			}
		}
	}
	for i, a := range c.feasible {
		for j, b := range c.feasible {
			if i != j && leq(a, b) {
				return fmt.Errorf("probecache: feasible frontier is not an antichain: %s dominated by %s",
					c.fmtVec(b), c.fmtVec(a))
			}
		}
	}
	for i, a := range c.infeasible {
		for j, b := range c.infeasible {
			if i != j && leq(a, b) {
				return fmt.Errorf("probecache: infeasible frontier is not an antichain: %s dominated by %s",
					c.fmtVec(a), c.fmtVec(b))
			}
		}
	}
	return nil
}

// snapshot copies the frontiers for persistence.
func (c *Frontier) snapshot() frontierSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := frontierSnapshot{Buffers: append([]string(nil), c.keys...)}
	for _, f := range c.feasible {
		s.Feasible = append(s.Feasible, append([]int64(nil), f...))
	}
	for _, inf := range c.infeasible {
		s.Infeasible = append(s.Infeasible, append([]int64(nil), inf...))
	}
	return s
}

// absorb merges a persisted snapshot into the frontier. It validates the
// buffer order, vector arity and mutual consistency of the snapshot; any
// violation aborts with an error and the caller must discard the snapshot
// (on-disk data is advisory, never trusted).
func (c *Frontier) absorb(s frontierSnapshot) error {
	if !c.SameKeys(s.Buffers) {
		return fmt.Errorf("probecache: snapshot buffer order %v does not match frontier %v", s.Buffers, c.keys)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, v := range append(s.Feasible, s.Infeasible...) {
		if len(v) != len(c.keys) {
			return fmt.Errorf("probecache: snapshot vector has %d entries, want %d", len(v), len(c.keys))
		}
		for _, x := range v {
			if x < 0 {
				return fmt.Errorf("probecache: snapshot vector holds negative capacity %d", x)
			}
		}
	}
	for _, v := range s.Feasible {
		if err := c.insertLocked(append([]int64(nil), v...), true); err != nil {
			return err
		}
	}
	for _, v := range s.Infeasible {
		if err := c.insertLocked(append([]int64(nil), v...), false); err != nil {
			return err
		}
	}
	return nil
}
