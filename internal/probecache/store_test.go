package probecache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

func pairGraph(t *testing.T) *taskgraph.Graph {
	t.Helper()
	g, err := taskgraph.Pair("wa", r(1, 1), "wb", r(1, 1),
		taskgraph.MustQuanta(3), taskgraph.MustQuanta(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphKeyDeterministicAndSensitive(t *testing.T) {
	g := pairGraph(t)
	key := GraphKey(g, "policy=equation4")
	if key != GraphKey(g, "policy=equation4") {
		t.Fatal("fingerprint is not deterministic")
	}
	if key == GraphKey(g, "policy=baseline") {
		t.Error("parts do not distinguish fingerprints")
	}
	if key == GraphKey(g.Clone()) {
		t.Error("parts absent vs present collide")
	}
	if GraphKey(g) != GraphKey(g.Clone()) {
		t.Error("clone changed the fingerprint")
	}
	// Any semantic edit must move the key.
	mutated := g.Clone()
	mutated.Tasks()[0].WCRT = r(2, 1)
	if GraphKey(g) == GraphKey(mutated) {
		t.Error("WCRT change kept the fingerprint")
	}
	sized := g.Clone()
	sized.Buffers()[0].Capacity = 7
	if GraphKey(g) == GraphKey(sized) {
		t.Error("capacity change kept the fingerprint")
	}
	// Insertion order must not matter: same tasks/buffer added in another
	// order fingerprints identically.
	other := taskgraph.New()
	if _, err := other.AddTask("wb", r(1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := other.AddTask("wa", r(1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := other.AddBuffer(taskgraph.Buffer{
		Producer: "wa", Consumer: "wb",
		Prod: taskgraph.MustQuanta(3), Cons: taskgraph.MustQuanta(2, 3),
	}); err != nil {
		t.Fatal(err)
	}
	if GraphKey(g) != GraphKey(other) {
		t.Error("task insertion order changed the fingerprint")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := pairGraph(t)
	key := GraphKey(g, "test")

	s := NewStore(dir)
	e := s.Entry(key)
	f, err := e.Frontier([]string{"wa->wb", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Insert(map[string]int64{"wa->wb": 4, "x": 2}, true); err != nil {
		t.Fatal(err)
	}
	if err := f.Insert(map[string]int64{"wa->wb": 2, "x": 1}, false); err != nil {
		t.Fatal(err)
	}
	e.Periods().Insert(r(3, 1), Verdict{Valid: true, Total: 7})
	e.Periods().Insert(r(1, 2), Verdict{Valid: false})
	if n, err := s.Flush(); err != nil || n != 1 {
		t.Fatalf("Flush = (%d, %v), want (1, nil)", n, err)
	}

	// A fresh store warm-starts from the file.
	warm := NewStore(dir)
	we := warm.Entry(key)
	wf, err := we.Frontier([]string{"wa->wb", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if feasible, hit := wf.Lookup(map[string]int64{"wa->wb": 9, "x": 9}); !hit || !feasible {
		t.Errorf("warm frontier missed a dominated probe: (%v, %v)", feasible, hit)
	}
	if feasible, hit := wf.Lookup(map[string]int64{"wa->wb": 1, "x": 1}); !hit || feasible {
		t.Errorf("warm frontier missed a dominated infeasible probe: (%v, %v)", feasible, hit)
	}
	if v, ok := we.Periods().Lookup(r(3, 1)); !ok || !v.Valid || v.Total != 7 {
		t.Errorf("warm periods = (%+v, %v)", v, ok)
	}
	if st := warm.Stats(); st.Loaded != 1 || st.Skipped != 0 {
		t.Errorf("stats = %+v, want one loaded file", st)
	}

	// Re-flushing a warm store keeps the file loadable and atomic writes
	// leave no temp litter behind.
	if _, err := warm.Flush(); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if err != nil || len(matches) != 0 {
		t.Errorf("temp files left behind: %v (%v)", matches, err)
	}
}

// corruptionCase writes a bad cache file and expects the loader to ignore
// it and start cold — never to fail and never to trust it.
func TestStoreIgnoresUntrustedFiles(t *testing.T) {
	g := pairGraph(t)
	key := GraphKey(g, "test")
	buffers := []string{"wa->wb"}

	write := func(t *testing.T, dir string, f diskFile) {
		t.Helper()
		data, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, key+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	expectCold := func(t *testing.T, dir string) {
		t.Helper()
		s := NewStore(dir)
		e := s.Entry(key)
		f, err := e.Frontier(buffers)
		if err != nil {
			t.Fatal(err)
		}
		if feas, inf := f.Size(); feas+inf != 0 {
			t.Errorf("untrusted file was absorbed: %d feasible, %d infeasible", feas, inf)
		}
		if n := e.Periods().Len(); n != 0 {
			t.Errorf("untrusted periods absorbed: %d", n)
		}
	}

	t.Run("garbage", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		expectCold(t, dir)
		if st := NewStoreLoaded(t, dir, key, buffers); st.Skipped != 1 {
			t.Errorf("skipped = %d, want 1", st.Skipped)
		}
	})
	t.Run("version-mismatch", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, diskFile{Version: Version + 1, Fingerprint: key,
			Periods: []periodRecord{{Num: 1, Den: 1, Valid: true}}})
		expectCold(t, dir)
	})
	t.Run("fingerprint-mismatch", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, diskFile{Version: Version, Fingerprint: "deadbeef",
			Periods: []periodRecord{{Num: 1, Den: 1, Valid: true}}})
		expectCold(t, dir)
	})
	t.Run("non-positive-period", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, diskFile{Version: Version, Fingerprint: key,
			Periods: []periodRecord{{Num: -1, Den: 1, Valid: true}}})
		expectCold(t, dir)
	})
	t.Run("contradictory-frontier", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, diskFile{Version: Version, Fingerprint: key,
			Frontier: &frontierSnapshot{
				Buffers:    buffers,
				Feasible:   [][]int64{{2}},
				Infeasible: [][]int64{{3}}, // feasible 2 ≤ infeasible 3: impossible
			}})
		expectCold(t, dir)
	})
	t.Run("wrong-buffer-order", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, diskFile{Version: Version, Fingerprint: key,
			Frontier: &frontierSnapshot{Buffers: []string{"other"}, Feasible: [][]int64{{2}}}})
		expectCold(t, dir)
	})
}

// NewStoreLoaded opens a store, touches the entry and returns the stats;
// helper for asserting skip counters.
func NewStoreLoaded(t *testing.T, dir, key string, buffers []string) StoreStats {
	t.Helper()
	s := NewStore(dir)
	e := s.Entry(key)
	if _, err := e.Frontier(buffers); err != nil {
		t.Fatal(err)
	}
	return s.Stats()
}

func TestEntryFrontierOrderMismatch(t *testing.T) {
	s := NewStore("")
	e := s.Entry("k")
	if _, err := e.Frontier([]string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Frontier([]string{"b", "a"}); err == nil {
		t.Error("conflicting buffer order accepted")
	}
	if _, err := e.Frontier([]string{"a", "b"}); err != nil {
		t.Errorf("matching order rejected: %v", err)
	}
}

func TestMemoryStoreFlushIsNoOp(t *testing.T) {
	s := NewStore("")
	e := s.Entry("k")
	e.Periods().Insert(ratio.One, Verdict{Valid: true})
	if n, err := s.Flush(); err != nil || n != 0 {
		t.Errorf("Flush on memory store = (%d, %v), want (0, nil)", n, err)
	}
}

func TestSharedStoreIsSingleton(t *testing.T) {
	if Shared() != Shared() {
		t.Error("Shared returned distinct stores")
	}
	if Shared().Dir() != "" {
		t.Error("shared store must be memory-only")
	}
}

func TestFlushSkipsEmptyEntries(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir)
	s.Entry("empty")
	if n, err := s.Flush(); err != nil || n != 0 {
		t.Errorf("Flush wrote %d files (%v), want 0", n, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if strings.HasSuffix(de.Name(), ".json") {
			t.Errorf("empty entry persisted: %s", de.Name())
		}
	}
}
