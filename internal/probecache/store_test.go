package probecache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

func pairGraph(t *testing.T) *taskgraph.Graph {
	t.Helper()
	g, err := taskgraph.Pair("wa", r(1, 1), "wb", r(1, 1),
		taskgraph.MustQuanta(3), taskgraph.MustQuanta(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphKeyDeterministicAndSensitive(t *testing.T) {
	g := pairGraph(t)
	key := GraphKey(g, "policy=equation4")
	if key != GraphKey(g, "policy=equation4") {
		t.Fatal("fingerprint is not deterministic")
	}
	if key == GraphKey(g, "policy=baseline") {
		t.Error("parts do not distinguish fingerprints")
	}
	if key == GraphKey(g.Clone()) {
		t.Error("parts absent vs present collide")
	}
	if GraphKey(g) != GraphKey(g.Clone()) {
		t.Error("clone changed the fingerprint")
	}
	// Any semantic edit must move the key.
	mutated := g.Clone()
	mutated.Tasks()[0].WCRT = r(2, 1)
	if GraphKey(g) == GraphKey(mutated) {
		t.Error("WCRT change kept the fingerprint")
	}
	sized := g.Clone()
	sized.Buffers()[0].Capacity = 7
	if GraphKey(g) == GraphKey(sized) {
		t.Error("capacity change kept the fingerprint")
	}
	// Insertion order must not matter: same tasks/buffer added in another
	// order fingerprints identically.
	other := taskgraph.New()
	if _, err := other.AddTask("wb", r(1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := other.AddTask("wa", r(1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := other.AddBuffer(taskgraph.Buffer{
		Producer: "wa", Consumer: "wb",
		Prod: taskgraph.MustQuanta(3), Cons: taskgraph.MustQuanta(2, 3),
	}); err != nil {
		t.Fatal(err)
	}
	if GraphKey(g) != GraphKey(other) {
		t.Error("task insertion order changed the fingerprint")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := pairGraph(t)
	key := GraphKey(g, "test")

	s := NewStore(dir)
	e := s.Entry(key)
	f, err := e.Frontier([]string{"wa->wb", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Insert(map[string]int64{"wa->wb": 4, "x": 2}, true); err != nil {
		t.Fatal(err)
	}
	if err := f.Insert(map[string]int64{"wa->wb": 2, "x": 1}, false); err != nil {
		t.Fatal(err)
	}
	e.Periods().Insert(r(3, 1), Verdict{Valid: true, Total: 7})
	e.Periods().Insert(r(1, 2), Verdict{Valid: false})
	if n, err := s.Flush(); err != nil || n != 1 {
		t.Fatalf("Flush = (%d, %v), want (1, nil)", n, err)
	}

	// A fresh store warm-starts from the file.
	warm := NewStore(dir)
	we := warm.Entry(key)
	wf, err := we.Frontier([]string{"wa->wb", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if feasible, hit := wf.Lookup(map[string]int64{"wa->wb": 9, "x": 9}); !hit || !feasible {
		t.Errorf("warm frontier missed a dominated probe: (%v, %v)", feasible, hit)
	}
	if feasible, hit := wf.Lookup(map[string]int64{"wa->wb": 1, "x": 1}); !hit || feasible {
		t.Errorf("warm frontier missed a dominated infeasible probe: (%v, %v)", feasible, hit)
	}
	if v, ok := we.Periods().Lookup(r(3, 1)); !ok || !v.Valid || v.Total != 7 {
		t.Errorf("warm periods = (%+v, %v)", v, ok)
	}
	if st := warm.Stats(); st.Loaded != 1 || st.Skipped != 0 {
		t.Errorf("stats = %+v, want one loaded file", st)
	}

	// Re-flushing a warm store keeps the file loadable and atomic writes
	// leave no temp litter behind.
	if _, err := warm.Flush(); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if err != nil || len(matches) != 0 {
		t.Errorf("temp files left behind: %v (%v)", matches, err)
	}
}

// corruptionCase writes a bad cache file and expects the loader to ignore
// it and start cold — never to fail and never to trust it.
func TestStoreIgnoresUntrustedFiles(t *testing.T) {
	g := pairGraph(t)
	key := GraphKey(g, "test")
	buffers := []string{"wa->wb"}

	// write seals the file like a real Flush would (the checksum is
	// computed over whatever Version/Fingerprint the case supplies), so
	// each case exercises the one validation layer it is about.
	write := func(t *testing.T, dir string, f diskFile) {
		t.Helper()
		data, err := seal(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, key+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	expectCold := func(t *testing.T, dir string) {
		t.Helper()
		s := NewStore(dir)
		e := s.Entry(key)
		f, err := e.Frontier(buffers)
		if err != nil {
			t.Fatal(err)
		}
		if feas, inf := f.Size(); feas+inf != 0 {
			t.Errorf("untrusted file was absorbed: %d feasible, %d infeasible", feas, inf)
		}
		if n := e.Periods().Len(); n != 0 {
			t.Errorf("untrusted periods absorbed: %d", n)
		}
	}

	t.Run("garbage", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		expectCold(t, dir)
		if st := NewStoreLoaded(t, dir, key, buffers); st.Skipped != 1 {
			t.Errorf("skipped = %d, want 1", st.Skipped)
		}
	})
	t.Run("version-mismatch", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, diskFile{Version: Version + 1, Fingerprint: key,
			Periods: []periodRecord{{Num: 1, Den: 1, Valid: true}}})
		expectCold(t, dir)
	})
	t.Run("fingerprint-mismatch", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, diskFile{Version: Version, Fingerprint: "deadbeef",
			Periods: []periodRecord{{Num: 1, Den: 1, Valid: true}}})
		expectCold(t, dir)
	})
	t.Run("non-positive-period", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, diskFile{Version: Version, Fingerprint: key,
			Periods: []periodRecord{{Num: -1, Den: 1, Valid: true}}})
		expectCold(t, dir)
	})
	t.Run("contradictory-frontier", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, diskFile{Version: Version, Fingerprint: key,
			Frontier: &frontierSnapshot{
				Buffers:    buffers,
				Feasible:   [][]int64{{2}},
				Infeasible: [][]int64{{3}}, // feasible 2 ≤ infeasible 3: impossible
			}})
		expectCold(t, dir)
	})
	t.Run("wrong-buffer-order", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, diskFile{Version: Version, Fingerprint: key,
			Frontier: &frontierSnapshot{Buffers: []string{"other"}, Feasible: [][]int64{{2}}}})
		expectCold(t, dir)
	})
	t.Run("missing-checksum", func(t *testing.T) {
		dir := t.TempDir()
		data, err := json.Marshal(diskFile{Version: Version, Fingerprint: key,
			Periods: []periodRecord{{Num: 1, Den: 1, Valid: true}}})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, key+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		expectCold(t, dir)
	})
	t.Run("checksum-mismatch", func(t *testing.T) {
		// A flipped digit in a Total parses fine and is monotonically
		// plausible — only the content checksum can catch it. This is the
		// corruption the chaos schedules inject.
		dir := t.TempDir()
		good := diskFile{Version: Version, Fingerprint: key,
			Periods: []periodRecord{{Num: 3, Den: 1, Valid: true, Total: 7}}}
		sum, err := sumOf(good)
		if err != nil {
			t.Fatal(err)
		}
		good.Sum = sum
		good.Periods[0].Total = 8 // corrupt AFTER sealing
		data, err := json.Marshal(good)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, key+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		expectCold(t, dir)
		if st := NewStoreLoaded(t, dir, key, buffers); st.Skipped != 1 {
			t.Errorf("skipped = %d, want 1", st.Skipped)
		}
	})
}

// TestStoreToleratesTruncationAtEveryByte flushes a real entry, then
// truncates the persisted file at every possible length: every prefix
// must load as either a trusted full file (only the full length) or a
// cold start — never an error, never partial trust.
func TestStoreToleratesTruncationAtEveryByte(t *testing.T) {
	g := pairGraph(t)
	key := GraphKey(g, "truncate")
	buffers := []string{"wa->wb"}

	dir := t.TempDir()
	s := NewStore(dir)
	e := s.Entry(key)
	f, err := e.Frontier(buffers)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Insert(map[string]int64{"wa->wb": 4}, true); err != nil {
		t.Fatal(err)
	}
	if err := f.Insert(map[string]int64{"wa->wb": 1}, false); err != nil {
		t.Fatal(err)
	}
	e.Periods().Insert(r(3, 1), Verdict{Valid: true, Total: 7})
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+".json")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for n := 0; n <= len(full); n++ {
		if err := os.WriteFile(path, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		warm := NewStore(dir)
		we := warm.Entry(key)
		wf, err := we.Frontier(buffers)
		if err != nil {
			t.Fatalf("truncated at %d/%d bytes: Frontier errored: %v", n, len(full), err)
		}
		st := warm.Stats()
		feas, inf := wf.Size()
		switch {
		case st.Loaded == 1:
			// Trusting a prefix is only sound when it is semantically the
			// whole file (e.g. only the trailing newline is gone): the
			// checksum re-verifies from the parsed content, so a trusted
			// load must reproduce EVERYTHING — all-or-nothing, by
			// construction.
			if feas != 1 || inf != 1 || we.Periods().Len() != 1 {
				t.Fatalf("truncated at %d/%d bytes half-trusted: frontier (%d, %d), periods %d",
					n, len(full), feas, inf, we.Periods().Len())
			}
			if v, ok := we.Periods().Lookup(r(3, 1)); !ok || !v.Valid || v.Total != 7 {
				t.Fatalf("truncated at %d/%d bytes loaded an altered verdict: (%+v, %v)", n, len(full), v, ok)
			}
		case st.Loaded == 0 && feas+inf == 0 && we.Periods().Len() == 0:
			// Cold start: the truncation was detected and ignored.
		default:
			t.Fatalf("truncated at %d/%d bytes was part-trusted: stats %+v, frontier (%d, %d), periods %d",
				n, len(full), st, feas, inf, we.Periods().Len())
		}
	}
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	if st := NewStoreLoaded(t, dir, key, buffers); st.Loaded != 1 {
		t.Fatalf("restored full file did not warm-start: %+v", st)
	}
}

// TestFlushMergesConcurrentReplicas drives two stores over one shared
// backend directory — the two-replica topology — and checks a flush
// folds in what the other replica persisted instead of overwriting it.
func TestFlushMergesConcurrentReplicas(t *testing.T) {
	g := pairGraph(t)
	key := GraphKey(g, "merge")
	buffers := []string{"wa->wb"}
	dir := t.TempDir()

	a, b := NewStore(dir), NewStore(dir)
	af, err := a.Entry(key).Frontier(buffers)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := b.Entry(key).Frontier(buffers)
	if err != nil {
		t.Fatal(err)
	}
	// Replica A learns a feasible point and a period verdict; replica B
	// learns an infeasible point and a different period verdict.
	if err := af.Insert(map[string]int64{"wa->wb": 5}, true); err != nil {
		t.Fatal(err)
	}
	a.Entry(key).Periods().Insert(r(3, 1), Verdict{Valid: true, Total: 5})
	if err := bf.Insert(map[string]int64{"wa->wb": 1}, false); err != nil {
		t.Fatal(err)
	}
	b.Entry(key).Periods().Insert(r(1, 2), Verdict{Valid: false})

	if _, err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Flush(); err != nil {
		t.Fatal(err)
	}

	warm := NewStore(dir)
	wf, err := warm.Entry(key).Frontier(buffers)
	if err != nil {
		t.Fatal(err)
	}
	if feasible, hit := wf.Lookup(map[string]int64{"wa->wb": 9}); !hit || !feasible {
		t.Errorf("replica A's feasible verdict lost in merge: (%v, %v)", feasible, hit)
	}
	if feasible, hit := wf.Lookup(map[string]int64{"wa->wb": 1}); !hit || feasible {
		t.Errorf("replica B's infeasible verdict lost in merge: (%v, %v)", feasible, hit)
	}
	p := warm.Entry(key).Periods()
	if v, ok := p.Lookup(r(3, 1)); !ok || !v.Valid || v.Total != 5 {
		t.Errorf("replica A's period verdict lost in merge: (%+v, %v)", v, ok)
	}
	if v, ok := p.Lookup(r(1, 2)); !ok || v.Valid {
		t.Errorf("replica B's period verdict lost in merge: (%+v, %v)", v, ok)
	}
	if err := wf.SelfCheck(); err != nil {
		t.Errorf("merged frontier fails self-check: %v", err)
	}
}

// NewStoreLoaded opens a store, touches the entry and returns the stats;
// helper for asserting skip counters.
func NewStoreLoaded(t *testing.T, dir, key string, buffers []string) StoreStats {
	t.Helper()
	s := NewStore(dir)
	e := s.Entry(key)
	if _, err := e.Frontier(buffers); err != nil {
		t.Fatal(err)
	}
	return s.Stats()
}

func TestEntryFrontierOrderMismatch(t *testing.T) {
	s := NewStore("")
	e := s.Entry("k")
	if _, err := e.Frontier([]string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Frontier([]string{"b", "a"}); err == nil {
		t.Error("conflicting buffer order accepted")
	}
	if _, err := e.Frontier([]string{"a", "b"}); err != nil {
		t.Errorf("matching order rejected: %v", err)
	}
}

func TestMemoryStoreFlushIsNoOp(t *testing.T) {
	s := NewStore("")
	e := s.Entry("k")
	e.Periods().Insert(ratio.One, Verdict{Valid: true})
	if n, err := s.Flush(); err != nil || n != 0 {
		t.Errorf("Flush on memory store = (%d, %v), want (0, nil)", n, err)
	}
}

func TestSharedStoreIsSingleton(t *testing.T) {
	if Shared() != Shared() {
		t.Error("Shared returned distinct stores")
	}
	if Shared().Dir() != "" {
		t.Error("shared store must be memory-only")
	}
}

func TestFlushSkipsEmptyEntries(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir)
	s.Entry("empty")
	if n, err := s.Flush(); err != nil || n != 0 {
		t.Errorf("Flush wrote %d files (%v), want 0", n, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if strings.HasSuffix(de.Name(), ".json") {
			t.Errorf("empty entry persisted: %s", de.Name())
		}
	}
}
