package bounds

import (
	"testing"
	"testing/quick"

	"vrdfcap/internal/ratio"
)

func r(n, d int64) ratio.Rat { return ratio.MustNew(n, d) }

func TestLineAt(t *testing.T) {
	l := Line{Offset: r(5, 1), Mu: r(1, 2)}
	cases := []struct {
		x    int64
		want ratio.Rat
	}{
		{1, r(5, 1)},
		{2, r(11, 2)},
		{3, r(6, 1)},
		{11, r(10, 1)},
	}
	for _, c := range cases {
		if got := l.At(c.x); !got.Equal(c.want) {
			t.Errorf("At(%d) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLineAtPanicsBelowOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At(0) did not panic")
		}
	}()
	Line{Offset: ratio.Zero, Mu: ratio.One}.At(0)
}

func TestShiftAndHorizontal(t *testing.T) {
	l := Line{Offset: ratio.Zero, Mu: r(1, 4)}
	s := l.Shift(r(3, 1))
	if !s.Offset.Equal(r(3, 1)) || !s.Mu.Equal(l.Mu) {
		t.Errorf("Shift = %v", s)
	}
	// A vertical distance of 3 at rate 1/4 per token is 12 tokens.
	if got := l.HorizontalTokens(r(3, 1)); !got.Equal(r(12, 1)) {
		t.Errorf("HorizontalTokens = %v, want 12", got)
	}
}

func TestCheckUpperBindingToken(t *testing.T) {
	// Upper bound t(x) = x-1 (offset 0, mu 1). A firing producing tokens
	// [4,6] at time 3 is fine (token 4's bound is 3); at time 3.5 it
	// violates via token 4 even though token 6's bound is 5.
	l := Line{Offset: ratio.Zero, Mu: ratio.One}
	ok := []Event{{From: 1, To: 3, At: ratio.Zero}, {From: 4, To: 6, At: r(3, 1)}}
	if v := CheckUpper(l, ok); v != nil {
		t.Errorf("conforming events flagged: %v", v)
	}
	bad := []Event{{From: 4, To: 6, At: r(7, 2)}}
	v := CheckUpper(l, bad)
	if v == nil {
		t.Fatal("violation missed")
	}
	if v.Token != 4 || !v.Upper {
		t.Errorf("violation = %+v, want token 4 upper", v)
	}
	if v.Error() == "" {
		t.Error("empty violation message")
	}
}

func TestCheckLowerBindingToken(t *testing.T) {
	// Lower bound t(x) = x-1. A firing consuming [4,6] must not happen
	// before token 6's bound (time 5).
	l := Line{Offset: ratio.Zero, Mu: ratio.One}
	ok := []Event{{From: 4, To: 6, At: r(5, 1)}}
	if v := CheckLower(l, ok); v != nil {
		t.Errorf("conforming events flagged: %v", v)
	}
	bad := []Event{{From: 4, To: 6, At: r(9, 2)}}
	v := CheckLower(l, bad)
	if v == nil {
		t.Fatal("violation missed")
	}
	if v.Token != 6 || v.Upper {
		t.Errorf("violation = %+v, want token 6 lower", v)
	}
}

func TestCheckMalformedEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("malformed event did not panic")
		}
	}()
	CheckUpper(Line{Mu: ratio.One}, []Event{{From: 3, To: 2}})
}

func TestDistancesFigure4(t *testing.T) {
	// The Figure 2 pair with m = {3}, n = {2,3} and period τ = 3 (so
	// μ = τ/γ̂(e_ab) = 1). Equation (1): ρ(va) + μ·(3−1); Equation (2):
	// ρ(vb) + μ·(3−1).
	tau := r(3, 1)
	mu := tau.DivInt(3)
	d, err := Distances(mu, r(1, 2), r(1, 4), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := r(5, 2); !d.ProducerGap.Equal(want) {
		t.Errorf("Eq(1) = %v, want %v", d.ProducerGap, want)
	}
	if want := r(9, 4); !d.ConsumerGap.Equal(want) {
		t.Errorf("Eq(2) = %v, want %v", d.ConsumerGap, want)
	}
	if want := r(19, 4); !d.SpaceGap.Equal(want) {
		t.Errorf("Eq(3) = %v, want %v", d.SpaceGap, want)
	}
	// Eq(4): 19/4 / 1 + 1 = 5.75 -> 5 tokens suffice.
	if got := d.SufficientTokens(); got != 5 {
		t.Errorf("Eq(4) tokens = %d, want 5", got)
	}
}

func TestDistancesMP3Edges(t *testing.T) {
	// The three buffers of the Section-5 MP3 application, in
	// milliseconds. Equation (4) must reproduce the paper's d1 and d2
	// exactly, and 883 for d3 (the paper reports 882 via the
	// constant-rate refinement; see DESIGN.md).
	cases := []struct {
		name             string
		mu               ratio.Rat
		rhoProd, rhoCons ratio.Rat
		prodMax, consMax int64
		want             int64
	}{
		{"d1 BR->MP3", r(1, 40), r(256, 5), r(24, 1), 2048, 960, 6015},
		{"d2 MP3->SRC", r(1, 48), r(24, 1), r(10, 1), 1152, 480, 3263},
		{"d3 SRC->DAC", r(10, 441), r(10, 1), r(10, 441), 441, 1, 883},
	}
	for _, c := range cases {
		d, err := Distances(c.mu, c.rhoProd, c.rhoCons, c.prodMax, c.consMax)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := d.SufficientTokens(); got != c.want {
			t.Errorf("%s: Eq(4) = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestDistancesRejectsBadInput(t *testing.T) {
	if _, err := Distances(ratio.Zero, ratio.One, ratio.One, 1, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Distances(ratio.One, ratio.Zero, ratio.One, 1, 1); err == nil {
		t.Error("zero producer response time accepted")
	}
	if _, err := Distances(ratio.One, ratio.One, ratio.Zero, 1, 1); err == nil {
		t.Error("zero consumer response time accepted")
	}
	if _, err := Distances(ratio.One, ratio.One, ratio.One, 0, 1); err == nil {
		t.Error("zero max production quantum accepted")
	}
	if _, err := Distances(ratio.One, ratio.One, ratio.One, 1, 0); err == nil {
		t.Error("zero max consumption quantum accepted")
	}
}

func TestLinesSeparation(t *testing.T) {
	d, err := Distances(r(1, 3), ratio.One, ratio.One, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	consume, produce := d.Lines(r(7, 1))
	if !consume.Offset.Equal(r(7, 1)) {
		t.Errorf("consume offset = %v, want 7", consume.Offset)
	}
	gap := produce.Offset.Sub(consume.Offset)
	if !gap.Equal(d.SpaceGap) {
		t.Errorf("line separation = %v, want Eq(3) = %v", gap, d.SpaceGap)
	}
	if !produce.Mu.Equal(consume.Mu) {
		t.Error("bound lines have different rates")
	}
}

func TestPropSufficientTokensMonotone(t *testing.T) {
	// Equation (4) must be monotone in both response times and both
	// maximum quanta: slower tasks or larger quanta never need a smaller
	// buffer.
	f := func(a, b, c, d uint8) bool {
		mu := r(1, 7)
		base, err := Distances(mu, r(int64(a)+1, 3), r(int64(b)+1, 3), int64(c)+1, int64(d)+1)
		if err != nil {
			return false
		}
		bumped, err := Distances(mu, r(int64(a)+2, 3), r(int64(b)+1, 3), int64(c)+2, int64(d)+1)
		if err != nil {
			return false
		}
		return bumped.SufficientTokens() >= base.SufficientTokens()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropLineMonotoneInIndex(t *testing.T) {
	f := func(off, muN uint16, x uint8) bool {
		l := Line{Offset: r(int64(off), 13), Mu: r(int64(muN)+1, 11)}
		xi := int64(x) + 1
		return l.At(xi).Cmp(l.At(xi+1)) < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
