// Package bounds implements the linear token-transfer bounds of Wiggers et
// al. (DATE 2008), §4.
//
// The paper's buffer-capacity argument never constructs an actual schedule.
// Instead it defines, per edge, a linear upper bound α̂p on cumulative token
// production times and a linear lower bound α̌c on cumulative token
// consumption times, both with rate μ seconds per token, and shows that for
// every sequence of transfer quanta a valid schedule exists whose transfer
// times respect the bounds (Figure 3). Equations (1)–(3) give the minimum
// vertical distance between the bounds of a producer–consumer pair
// (Figure 4); Equation (4) converts that distance into a sufficient number
// of initial tokens on the space edge, i.e. the buffer capacity.
package bounds

import (
	"fmt"

	"vrdfcap/internal/ratio"
)

// Line is a linear bound on cumulative token-transfer times:
//
//	α(x) = Offset + Mu · (x − 1)
//
// where x is the 1-based cumulative token index (the paper counts tokens
// starting from 1) and Mu is the time per token. Whether the line is an
// upper bound on production times or a lower bound on consumption times is
// decided by how it is used; see CheckUpper and CheckLower.
type Line struct {
	// Offset is the bound for the first token, α(1).
	Offset ratio.Rat
	// Mu is the rate of the bound in time per token; must be positive.
	Mu ratio.Rat
}

// At returns α(x) for the 1-based token index x.
func (l Line) At(x int64) ratio.Rat {
	if x < 1 {
		panic(fmt.Sprintf("bounds: token index %d < 1", x))
	}
	return l.Offset.Add(l.Mu.MulInt(x - 1))
}

// Shift returns the line displaced vertically (in time) by d.
func (l Line) Shift(d ratio.Rat) Line {
	return Line{Offset: l.Offset.Add(d), Mu: l.Mu}
}

// HorizontalTokens returns the number of token indices by which a line lags
// another line that sits dist later in time at equal rate: dist/Mu. This is
// the "horizontal difference between the bounds" of §4.2.
func (l Line) HorizontalTokens(dist ratio.Rat) ratio.Rat {
	return dist.Div(l.Mu)
}

// String formats the line as "t(x) = offset + mu*(x-1)".
func (l Line) String() string {
	return fmt.Sprintf("t(x) = %v + %v*(x-1)", l.Offset, l.Mu)
}

// Event is one observed token transfer: the cumulative token index range
// [From, To] transferred atomically at time At. A firing that transfers q
// tokens produces one Event with To = From + q − 1.
type Event struct {
	From, To int64
	At       ratio.Rat
}

// Violation describes a bound violation found by CheckUpper or CheckLower.
type Violation struct {
	Token int64     // cumulative token index that violates the bound
	At    ratio.Rat // observed transfer time
	Bound ratio.Rat // bound value α(token)
	Upper bool      // true if an upper bound was exceeded
}

func (v Violation) Error() string {
	rel := "before lower bound"
	if v.Upper {
		rel = "after upper bound"
	}
	return fmt.Sprintf("bounds: token %d transferred at %v, %s %v", v.Token, v.At, rel, v.Bound)
}

// CheckUpper verifies that every observed production event respects the
// upper bound: the transfer time of every token x in the event is at most
// α(x). Because α is increasing in x, the binding token of an atomic
// transfer [From, To] is From — exactly the paper's observation that "the
// upper bound on token productions needs to bound the production time of
// token x" where x is the first token of the firing (Figure 4).
func CheckUpper(l Line, events []Event) *Violation {
	for _, e := range events {
		if e.From < 1 || e.To < e.From {
			panic(fmt.Sprintf("bounds: malformed event [%d,%d]", e.From, e.To))
		}
		if b := l.At(e.From); e.At.Cmp(b) > 0 {
			return &Violation{Token: e.From, At: e.At, Bound: b, Upper: true}
		}
	}
	return nil
}

// CheckLower verifies that every observed consumption event respects the
// lower bound: the transfer time of every token x in the event is at least
// α(x). The binding token of an atomic transfer [From, To] is To — the
// paper's "the lower bound on token consumptions needs to bound the
// consumption time of token x + m̂ − 1".
func CheckLower(l Line, events []Event) *Violation {
	for _, e := range events {
		if e.From < 1 || e.To < e.From {
			panic(fmt.Sprintf("bounds: malformed event [%d,%d]", e.From, e.To))
		}
		if b := l.At(e.To); e.At.Cmp(b) < 0 {
			return &Violation{Token: e.To, At: e.At, Bound: b, Upper: false}
		}
	}
	return nil
}

// PairDistances holds the bound distances of Equations (1)–(3) for one
// producer–consumer pair communicating over a buffer, with μ the common rate
// of all four bounds (time per container).
type PairDistances struct {
	// Mu is the rate of the bounds: φ(consumer)/γ̂(data edge) time per
	// token (§4.3); for the sink-constrained pair of §4.2 this is
	// τ/γ̂(e_ab).
	Mu ratio.Rat
	// ProducerGap is Equation (1): α̂p(e_ab) − α̌c(e_ba) =
	// ρ(v_a) + μ·(γ̂(e_ba) − 1), the distance across the producer between
	// its space-consumption bound and its data-production bound.
	ProducerGap ratio.Rat
	// ConsumerGap is Equation (2): α̂p(e_ba) − α̌c(e_ab) =
	// ρ(v_b) + μ·(γ̂(e_ab) − 1), the distance across the consumer between
	// its data-consumption bound and its space-production bound.
	ConsumerGap ratio.Rat
	// SpaceGap is Equation (3): the sum of the two, the minimum distance
	// between the space edge's production and consumption bounds that
	// lets a conservatively bounded schedule exist for every quanta
	// sequence.
	SpaceGap ratio.Rat
}

// Distances evaluates Equations (1)–(3).
//
// mu is the bound rate (time per container); rhoProd and rhoCons are the
// response times ρ of the producing and consuming actors; prodMax is
// γ̂(e_ba) = π̂(e_ab), the producer's maximum transfer quantum on the buffer;
// consMax is γ̂(e_ab), the consumer's maximum transfer quantum.
func Distances(mu, rhoProd, rhoCons ratio.Rat, prodMax, consMax int64) (PairDistances, error) {
	if mu.Sign() <= 0 {
		return PairDistances{}, fmt.Errorf("bounds: rate μ must be positive, got %v", mu)
	}
	if rhoProd.Sign() <= 0 || rhoCons.Sign() <= 0 {
		return PairDistances{}, fmt.Errorf("bounds: response times must be positive, got %v and %v", rhoProd, rhoCons)
	}
	if prodMax < 1 || consMax < 1 {
		return PairDistances{}, fmt.Errorf("bounds: maximum quanta must be at least 1, got %d and %d", prodMax, consMax)
	}
	pg := rhoProd.Add(mu.MulInt(prodMax - 1))
	cg := rhoCons.Add(mu.MulInt(consMax - 1))
	return PairDistances{
		Mu:          mu,
		ProducerGap: pg,
		ConsumerGap: cg,
		SpaceGap:    pg.Add(cg),
	}, nil
}

// SufficientTokens evaluates Equation (4): the number of tokens consumed
// from the space edge before the first token is produced on it, according to
// the linear bounds, is SpaceGap/μ + 1; the largest integer not exceeding
// that value is a sufficient number of initial tokens.
func (d PairDistances) SufficientTokens() int64 {
	return d.SpaceGap.Div(d.Mu).Add(ratio.One).Floor()
}

// Lines materialises a concrete pair of space-edge bound lines separated by
// SpaceGap, anchoring the consumption bound's first token at time origin.
// Useful for rendering Figure-3/4 style diagrams and for trace checking.
func (d PairDistances) Lines(origin ratio.Rat) (consume, produce Line) {
	consume = Line{Offset: origin, Mu: d.Mu}
	produce = consume.Shift(d.SpaceGap)
	return consume, produce
}
