package sim

import (
	"reflect"
	"testing"

	"vrdfcap/internal/quanta"
)

// pairConfig builds a fresh Config for the Figure 1 pair at the given
// capacity, returning the space-edge name of its single buffer so tests can
// override the probe capacity through Reset.
func pairConfig(t *testing.T, capacity int64, cons quanta.Sequence, firings int64) (Config, string) {
	t.Helper()
	tg := pairGraph(t, capacity)
	cfg, m, err := TaskGraphConfig(tg, Workloads{"wa->wb": {Cons: cons}})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stop = Stop{Actor: "wb", Firings: firings}
	cfg.Validate = true
	pair, ok := m.Pair("wa->wb")
	if !ok {
		t.Fatal("no vrdf mapping for wa->wb")
	}
	return cfg, pair.Space
}

// TestMachineReuseMatchesFreshRun pins the compiled-machine contract: a
// Machine compiled once and Reset between Runs produces bit-identical
// Results to a fresh Run(cfg), across every Outcome the engine can reach.
func TestMachineReuseMatchesFreshRun(t *testing.T) {
	completed, _ := pairConfig(t, 3, quanta.Constant(3), 40)
	deadlocked, _ := pairConfig(t, 3, quanta.Constant(2), 40)
	periodicOK, _ := pairConfig(t, 4, quanta.Constant(2), 50)
	periodicOK.Actors = map[string]ActorConfig{
		"wb": {Mode: Periodic, Offset: r(10, 1), Period: r(2, 1)},
	}
	underrun, _ := pairConfig(t, 4, quanta.Constant(2), 50)
	underrun.Actors = map[string]ActorConfig{
		"wb": {Mode: Periodic, Offset: r(10, 1), Period: r(1, 2)},
	}
	cases := []struct {
		name    string
		cfg     Config
		outcome Outcome
	}{
		{"completed", completed, Completed},
		{"deadlocked", deadlocked, Deadlocked},
		{"periodic completed", periodicOK, Completed},
		{"underrun", underrun, Underrun},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fresh, err := Run(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if fresh.Outcome != c.outcome {
				t.Fatalf("fresh run outcome = %v, want %v", fresh.Outcome, c.outcome)
			}
			m, err := Compile(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for rep := 0; rep < 3; rep++ {
				if rep > 0 {
					if err := m.Reset(nil); err != nil {
						t.Fatal(err)
					}
				}
				got, err := m.Run()
				if err != nil {
					t.Fatalf("rep %d: %v", rep, err)
				}
				if !reflect.DeepEqual(fresh, got) {
					t.Fatalf("rep %d: reused machine diverged\nfresh:  %+v\nreused: %+v", rep, fresh, got)
				}
			}
			if _, err := m.Run(); err == nil {
				t.Error("Run without an intervening Reset accepted")
			}
		})
	}
}

// TestMachineResetOverridesMatchFreshGraphs drives one compiled machine
// through several capacity probes via Reset's initial-token overrides and
// checks each against a fresh run of a graph sized at that capacity —
// including returning to a capacity already probed.
func TestMachineResetOverridesMatchFreshGraphs(t *testing.T) {
	cons := func() quanta.Sequence { return quanta.Cycle(2, 3) }
	cfg, space := pairConfig(t, 7, cons(), 30)
	m, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refAt := func(capacity int64) *Result {
		c, _ := pairConfig(t, capacity, cons(), 30)
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Probe downward from the compiled capacity, then back up: 7, 4, 3, 7.
	probes := []struct {
		capacity int64
		override map[string]int64
		outcome  Outcome
	}{
		{7, nil, Completed},
		{4, map[string]int64{space: 4}, Deadlocked},
		{3, map[string]int64{space: 3}, Deadlocked},
		{7, nil, Completed},
	}
	for i, p := range probes {
		if i > 0 || p.override != nil {
			if err := m.Reset(p.override); err != nil {
				t.Fatal(err)
			}
		}
		got, err := m.Run()
		if err != nil {
			t.Fatalf("probe %d (capacity %d): %v", i, p.capacity, err)
		}
		if got.Outcome != p.outcome {
			t.Fatalf("probe %d: outcome %v, want %v", i, got.Outcome, p.outcome)
		}
		if want := refAt(p.capacity); !reflect.DeepEqual(want, got) {
			t.Errorf("probe %d (capacity %d): override run diverged from fresh graph\nfresh:    %+v\noverride: %+v",
				i, p.capacity, want, got)
		}
	}
}

func TestMachineResetRejectsBadOverrides(t *testing.T) {
	cfg, space := pairConfig(t, 3, quanta.Constant(3), 10)
	m, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Reset(map[string]int64{"no-such-edge": 1}); err == nil {
		t.Error("unknown edge override accepted")
	}
	if err := m.Reset(map[string]int64{space: -1}); err == nil {
		t.Error("negative initial tokens accepted")
	}
	if err := m.SetPeriodicOffsetTicks("wa", 3); err == nil {
		t.Error("SetPeriodicOffsetTicks on an ASAP actor accepted")
	}
	if err := m.SetPeriodicOffsetTicks("nope", 3); err == nil {
		t.Error("SetPeriodicOffsetTicks on an unknown actor accepted")
	}
	// The machine must still be usable after rejected Resets.
	if err := m.Reset(nil); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Completed {
		t.Errorf("outcome after recovering from bad overrides: %v", res.Outcome)
	}
}

// TestLiteResultDropsBulkMaps pins what LiteResult omits and what it keeps:
// scalar outcome data survives, the per-actor and per-edge bulk maps do not
// — except entries explicitly requested via RecordStarts.
func TestLiteResultDropsBulkMaps(t *testing.T) {
	full, _ := pairConfig(t, 3, quanta.Constant(3), 10)
	full.RecordStarts = []string{"wb"}
	lite := full
	lite.LiteResult = true

	fres, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	lres, err := Run(lite)
	if err != nil {
		t.Fatal(err)
	}
	if lres.Outcome != fres.Outcome || lres.Events != fres.Events || lres.EndTick != fres.EndTick {
		t.Errorf("lite run changed the simulation: lite %+v, full %+v", lres, fres)
	}
	if len(lres.Fired) != 0 || len(lres.Finished) != 0 || len(lres.BusyTicks) != 0 || len(lres.Edges) != 0 {
		t.Errorf("lite result carries bulk maps: %+v", lres)
	}
	if !reflect.DeepEqual(lres.Starts["wb"], fres.Starts["wb"]) {
		t.Errorf("recorded starts differ: lite %v, full %v", lres.Starts["wb"], fres.Starts["wb"])
	}
	if len(fres.Edges) == 0 {
		t.Error("full result missing edge stats")
	}
}

// TestReusedRunSteadyStateAllocs pins the zero-allocation contract of the
// event loop: on a warmed machine with a lite result, the allocations of a
// Reset+Run cycle are a small constant (the Result struct) regardless of
// how many events the run processes — no per-event heap allocation.
func TestReusedRunSteadyStateAllocs(t *testing.T) {
	measure := func(firings int64) float64 {
		cfg, _ := pairConfig(t, 7, quanta.Cycle(2, 3), firings)
		cfg.Validate = false
		cfg.LiteResult = true
		m, err := Compile(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Warm-up run so every internal slice has reached capacity.
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(20, func() {
			if err := m.Reset(nil); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := measure(50), measure(2000)
	if short > 4 {
		t.Errorf("steady-state Reset+Run allocates %.1f objects, want a small constant", short)
	}
	if long > short {
		t.Errorf("allocations grow with the event count: %.1f at 50 firings, %.1f at 2000", short, long)
	}
}
