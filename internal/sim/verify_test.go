package sim

import (
	"testing"

	"vrdfcap/internal/mp3"
	"vrdfcap/internal/quanta"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

// sizedMP3 returns the Figure-5 graph with the given capacities.
func sizedMP3(t *testing.T, d1, d2, d3 int64) *taskgraph.Graph {
	t.Helper()
	g, err := mp3.Graph()
	if err != nil {
		t.Fatal(err)
	}
	names := mp3.BufferNames()
	for i, d := range []int64{d1, d2, d3} {
		g.BufferByName(names[i]).Capacity = d
	}
	return g
}

func mp3Workload(tg *taskgraph.Graph, seq quanta.Sequence) Workloads {
	w := make(Workloads)
	names := mp3.BufferNames()
	w[names[0]] = Workload{Cons: seq}
	return w
}

func TestVerifyMP3PaperCapacities(t *testing.T) {
	// §5: "With our dataflow simulator we have verified that these
	// buffer capacities are indeed sufficient to satisfy the throughput
	// constraint." Check the Equation-4 sizing (6015, 3263, 883) under
	// adversarial and random frame-size streams.
	if testing.Short() {
		t.Skip("simulation horizon too long for -short")
	}
	g := sizedMP3(t, 6015, 3263, 883)
	c := mp3.Constraint()
	streams := map[string]quanta.Sequence{
		"min":      quanta.MinOf(mp3.FrameSizes()),
		"max":      quanta.MaxOf(mp3.FrameSizes()),
		"alt":      quanta.AlternateMinMax(mp3.FrameSizes()),
		"uniform":  quanta.Uniform(mp3.FrameSizes(), 7),
		"walk":     quanta.Walk(mp3.FrameSizes(), 11),
		"cbr320":   quanta.Constant(960),
		"vbrburst": quanta.Cycle(960, 960, 96, 96, 96, 960),
	}
	for name, seq := range streams {
		v, err := VerifyThroughput(g, c, VerifyOptions{
			Firings:   3000,
			Workloads: mp3Workload(g, seq),
			Validate:  true,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !v.OK {
			t.Errorf("stream %s: verification failed: %s", name, v.Reason)
		}
	}
}

func TestVerifyMP3PublishedCapacities(t *testing.T) {
	// The paper's published vector (6015, 3263, 882) — one less on the
	// constant-rate third buffer than pure Equation (4) — also passes
	// empirical verification, supporting the exact-tie reading.
	if testing.Short() {
		t.Skip("simulation horizon too long for -short")
	}
	g := sizedMP3(t, 6015, 3263, 882)
	c := mp3.Constraint()
	v, err := VerifyThroughput(g, c, VerifyOptions{
		Firings:   3000,
		Workloads: mp3Workload(g, quanta.Uniform(mp3.FrameSizes(), 3)),
		Validate:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		t.Errorf("published capacities failed verification: %s", v.Reason)
	}
}

func TestVerifyMP3InsufficientCapacities(t *testing.T) {
	// Minimal single-firing capacities deadlock-free but far below the
	// required throughput: verification must fail.
	if testing.Short() {
		t.Skip("simulation horizon too long for -short")
	}
	g := sizedMP3(t, 2048, 1152, 441)
	c := mp3.Constraint()
	v, err := VerifyThroughput(g, c, VerifyOptions{
		Firings:   2000,
		Workloads: mp3Workload(g, quanta.Constant(960)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Error("clearly insufficient capacities passed verification")
	}
}

func TestVerifyPairDeterministic(t *testing.T) {
	// Figure-1 pair sized by Equation (4) for τ = 3: capacity 7.
	g, err := taskgraph.Pair("wa", r(1, 1), "wb", r(1, 1),
		taskgraph.MustQuanta(3), taskgraph.MustQuanta(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	g.Buffers()[0].Capacity = 7
	c := taskgraph.Constraint{Task: "wb", Period: r(3, 1)}
	for _, adv := range Adversaries {
		v, err := VerifyThroughput(g, c, VerifyOptions{
			Firings:   500,
			Workloads: AdversarialWorkloads(g, adv),
			Validate:  true,
		})
		if err != nil {
			t.Fatalf("%v: %v", adv, err)
		}
		if !v.OK {
			t.Errorf("adversary %v: %s", adv, v.Reason)
		}
	}
	// Capacity 3 fails under the all-min adversary (deadlock).
	g.Buffers()[0].Capacity = 3
	v, err := VerifyThroughput(g, c, VerifyOptions{
		Firings:   500,
		Workloads: AdversarialWorkloads(g, AdversaryMin),
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Error("capacity 3 passed under all-min adversary")
	}
	if v.SelfTimed.Outcome != Deadlocked {
		t.Errorf("self-timed outcome %v, want deadlocked", v.SelfTimed.Outcome)
	}
}

func TestVerifySourceConstrained(t *testing.T) {
	// §4.4 mirror: the source is periodic; back-pressure from the
	// consumer must never stall it.
	g, err := taskgraph.Pair("cam", r(1, 1), "proc", r(1, 1),
		taskgraph.MustQuanta(2, 3), taskgraph.MustQuanta(3))
	if err != nil {
		t.Fatal(err)
	}
	g.Buffers()[0].Capacity = 7 // Equation (4) for τ = 3
	c := taskgraph.Constraint{Task: "cam", Period: r(3, 1)}
	v, err := VerifyThroughput(g, c, VerifyOptions{
		Firings:   500,
		Workloads: Workloads{"cam->proc": {Prod: quanta.Cycle(2, 3)}},
		Validate:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		t.Errorf("source-constrained verification failed: %s", v.Reason)
	}
	// A starved buffer (capacity 2 < a single production of 3) blocks
	// the source outright.
	g.Buffers()[0].Capacity = 2
	v, err = VerifyThroughput(g, c, VerifyOptions{
		Firings:   100,
		Workloads: Workloads{"cam->proc": {Prod: quanta.Constant(3)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Error("capacity below one production quantum passed")
	}
}

func TestUniformWorkloadsCoverVariableBuffers(t *testing.T) {
	g, err := mp3.Graph()
	if err != nil {
		t.Fatal(err)
	}
	w := UniformWorkloads(g, 1)
	names := mp3.BufferNames()
	if w[names[0]].Cons == nil {
		t.Error("variable consumption buffer got no sequence")
	}
	if w[names[0]].Prod != nil {
		t.Error("constant production side got a sequence")
	}
	if w[names[1]].Prod != nil || w[names[1]].Cons != nil {
		t.Error("fully constant buffer got sequences")
	}
}

func TestMaxLateness(t *testing.T) {
	// starts 0, 5, 12 with period 5: lateness 0, 0, 2.
	if got := MaxLateness([]int64{0, 5, 12}, 5); got != 2 {
		t.Errorf("MaxLateness = %d, want 2", got)
	}
	// Early starts give the first-start offset.
	if got := MaxLateness([]int64{3, 4, 5}, 5); got != 3 {
		t.Errorf("MaxLateness = %d, want 3", got)
	}
	if got := MaxLateness(nil, 5); got != 0 {
		t.Errorf("MaxLateness(nil) = %d, want 0", got)
	}
}

func TestAveragePeriodTicks(t *testing.T) {
	avg, err := AveragePeriodTicks([]int64{0, 4, 8, 13})
	if err != nil {
		t.Fatal(err)
	}
	if !avg.Equal(ratio.MustNew(13, 3)) {
		t.Errorf("avg = %v, want 13/3", avg)
	}
	if _, err := AveragePeriodTicks([]int64{1}); err == nil {
		t.Error("single start accepted")
	}
}

// TestMonotonicityInStartTimes property-tests Definition 1: making firings
// faster (earlier productions) never makes any start later.
func TestMonotonicityInStartTimes(t *testing.T) {
	g, err := taskgraph.BuildChain(
		[]taskgraph.Stage{{Name: "a", WCRT: r(2, 1)}, {Name: "b", WCRT: r(2, 1)}, {Name: "c", WCRT: r(2, 1)}},
		[]taskgraph.Link{
			{Prod: taskgraph.MustQuanta(3), Cons: taskgraph.MustQuanta(2, 3), Capacity: 9},
			{Prod: taskgraph.MustQuanta(1, 2), Cons: taskgraph.MustQuanta(2), Capacity: 8},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	w := Workloads{
		"a->b": {Cons: quanta.Cycle(2, 3, 3)},
		"b->c": {Prod: quanta.Cycle(1, 2, 2, 1)},
	}
	run := func(exec map[string]func(int64) ratio.Rat) *Result {
		cfg, _, err := TaskGraphConfig(g, w)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Stop = Stop{Actor: "c", Firings: 200}
		cfg.RecordStarts = []string{"a", "b", "c"}
		cfg.ExtraTimes = []ratio.Rat{r(1, 4)}
		cfg.Actors = map[string]ActorConfig{}
		for name, fn := range exec {
			cfg.Actors[name] = ActorConfig{Exec: fn}
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != Completed {
			t.Fatalf("outcome %v", res.Outcome)
		}
		return res
	}
	slow := run(nil) // every firing takes the full ρ
	fast := run(map[string]func(int64) ratio.Rat{
		// Some firings finish early: a seeded, deterministic speedup.
		"a": func(k int64) ratio.Rat {
			if k%3 == 1 {
				return r(1, 2)
			}
			return r(2, 1)
		},
		"b": func(k int64) ratio.Rat {
			if k%5 == 2 {
				return r(5, 4)
			}
			return r(2, 1)
		},
	})
	for _, actor := range []string{"a", "b", "c"} {
		s, f := slow.Starts[actor], fast.Starts[actor]
		n := len(f)
		if len(s) < n {
			n = len(s)
		}
		for k := 0; k < n; k++ {
			if f[k] > s[k] {
				t.Fatalf("monotonicity violated: %s firing %d starts at %d with faster firings vs %d", actor, k, f[k], s[k])
			}
		}
	}
}

// TestLinearityInStartTimes property-tests Definition 2: delaying starts by
// at most Δ delays every start by at most Δ.
func TestLinearityInStartTimes(t *testing.T) {
	g, err := taskgraph.BuildChain(
		[]taskgraph.Stage{{Name: "a", WCRT: r(2, 1)}, {Name: "b", WCRT: r(2, 1)}, {Name: "c", WCRT: r(2, 1)}},
		[]taskgraph.Link{
			{Prod: taskgraph.MustQuanta(3), Cons: taskgraph.MustQuanta(2, 3), Capacity: 9},
			{Prod: taskgraph.MustQuanta(2), Cons: taskgraph.MustQuanta(2), Capacity: 8},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	w := Workloads{"a->b": {Cons: quanta.Cycle(2, 3)}}
	run := func(shift map[string]func(int64) ratio.Rat) *Result {
		cfg, _, err := TaskGraphConfig(g, w)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Stop = Stop{Actor: "c", Firings: 150}
		cfg.RecordStarts = []string{"a", "b", "c"}
		cfg.ExtraTimes = []ratio.Rat{r(1, 2)}
		cfg.Actors = map[string]ActorConfig{}
		for name, fn := range shift {
			cfg.Actors[name] = ActorConfig{StartShift: fn}
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != Completed {
			t.Fatalf("outcome %v", res.Outcome)
		}
		return res
	}
	baselineRun := run(nil)
	// Delay exactly one firing: StartShift postpones beyond the firing's
	// enabling in the perturbed run, so shifting several firings would
	// compound induced and imposed delays beyond the single Δ that
	// Definition 2 quantifies over.
	delta := r(3, 2)
	delayed := run(map[string]func(int64) ratio.Rat{
		"b": func(k int64) ratio.Rat {
			if k == 3 {
				return delta
			}
			return ratio.Zero
		},
	})
	deltaTicks, err := baselineRun.Base.Ticks(delta)
	if err != nil {
		t.Fatal(err)
	}
	for _, actor := range []string{"a", "b", "c"} {
		s, d := baselineRun.Starts[actor], delayed.Starts[actor]
		n := len(d)
		if len(s) < n {
			n = len(s)
		}
		for k := 0; k < n; k++ {
			diff := d[k] - s[k]
			if diff < 0 {
				t.Fatalf("delayed run starts %s firing %d earlier (%d vs %d)", actor, k, d[k], s[k])
			}
			if diff > deltaTicks {
				t.Fatalf("linearity violated: %s firing %d delayed by %d ticks > Δ = %d", actor, k, diff, deltaTicks)
			}
		}
	}
}

func TestJitterTicks(t *testing.T) {
	// Gaps 4, 6, 5 -> jitter 2.
	j, err := JitterTicks([]int64{0, 4, 10, 15})
	if err != nil || j != 2 {
		t.Errorf("JitterTicks = %d, %v; want 2", j, err)
	}
	// Strictly periodic -> 0.
	j, err = JitterTicks([]int64{3, 6, 9, 12})
	if err != nil || j != 0 {
		t.Errorf("periodic jitter = %d, %v; want 0", j, err)
	}
	if _, err := JitterTicks([]int64{1}); err == nil {
		t.Error("single start accepted")
	}
}
