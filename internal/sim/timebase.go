package sim

import (
	"fmt"

	"vrdfcap/internal/ratio"
)

// TimeBase converts between exact rational time values and the integer tick
// counts the simulator runs on. All rational times handled by an engine must
// be exactly representable in its base, which NewTimeBase guarantees by
// taking the least common multiple of the denominators involved.
type TimeBase struct {
	// TicksPerUnit is the number of ticks in one time unit (the unit of
	// the rational values, e.g. seconds).
	TicksPerUnit int64
}

// NewTimeBase returns a base in which every given rational is an integer
// number of ticks.
func NewTimeBase(times ...ratio.Rat) (TimeBase, error) {
	lcm := int64(1)
	for _, t := range times {
		d := t.Den()
		g := ratio.GCD(lcm, d)
		prod := lcm / g
		if d != 0 && prod > (1<<62)/d {
			return TimeBase{}, fmt.Errorf("sim: time base overflow combining denominators (lcm so far %d, next %d)", lcm, d)
		}
		lcm = prod * d
	}
	return TimeBase{TicksPerUnit: lcm}, nil
}

// Ticks converts a rational time to ticks; it fails if the value is not an
// integer number of ticks in this base.
func (b TimeBase) Ticks(t ratio.Rat) (int64, error) {
	v, err := t.MulChecked(ratio.FromInt(b.TicksPerUnit))
	if err != nil {
		return 0, err
	}
	if !v.IsInt() {
		return 0, fmt.Errorf("sim: %v is not representable in a base of %d ticks per unit", t, b.TicksPerUnit)
	}
	return v.Num(), nil
}

// Rat converts ticks back to a rational time value.
func (b TimeBase) Rat(ticks int64) ratio.Rat {
	return ratio.MustNew(ticks, b.TicksPerUnit)
}
