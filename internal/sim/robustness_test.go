package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/quanta"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

func TestRunCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg, _ := pairConfig(t, 4, quanta.Constant(2), 1000)
	cfg.Context = ctx
	_, err := Run(cfg)
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("Run with cancelled context: err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want to also satisfy context.Canceled", err)
	}
}

// TestRunCanceledMidRun cancels the context from inside an Exec callback
// and pins the cooperative bound: the run must stop within one
// budget-check interval of the cancellation taking effect.
func TestRunCanceledMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg, _ := pairConfig(t, 4, quanta.Constant(2), 1<<40)
	cfg.Context = ctx
	fired := int64(0)
	cfg.Actors = map[string]ActorConfig{"wa": {Exec: func(k int64) ratio.Rat {
		if fired++; fired == 100 {
			cancel()
		}
		return r(1, 1)
	}}}
	m, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// Every firing of wa is at least one event; cancellation at firing
	// 100 must be honoured within one check interval.
	if m.events > 100*4+budgetCheckInterval {
		t.Errorf("run processed %d events after cancellation at firing 100 (interval %d)", m.events, budgetCheckInterval)
	}
}

func TestRunDeadlineExceeded(t *testing.T) {
	cfg, _ := pairConfig(t, 4, quanta.Constant(2), 1000)
	cfg.Deadline = time.Now().Add(-time.Second)
	_, err := Run(cfg)
	if !errors.Is(err, budget.ErrBudgetExceeded) {
		t.Fatalf("Run past its deadline: err = %v, want ErrBudgetExceeded", err)
	}
}

func TestRunWithinBudgetUnaffected(t *testing.T) {
	// A generous budget must not change the result at all.
	plainCfg, _ := pairConfig(t, 4, quanta.Constant(2), 500)
	plain, err := Run(plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := pairConfig(t, 4, quanta.Constant(2), 500)
	cfg.Context = context.Background()
	cfg.Deadline = time.Now().Add(time.Hour)
	budgeted, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Outcome != budgeted.Outcome || plain.EndTick != budgeted.EndTick || plain.Events != budgeted.Events {
		t.Errorf("budgeted run diverged: %+v vs %+v", plain, budgeted)
	}
}

func TestResetKeepsBudgetArmed(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg, _ := pairConfig(t, 4, quanta.Constant(2), 100)
	cfg.Context = ctx
	m, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("first run: %v", err)
	}
	cancel()
	if err := m.Reset(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("run after cancel: err = %v, want ErrCanceled", err)
	}
}

func TestOverrunRejectedByDefault(t *testing.T) {
	cfg, _ := pairConfig(t, 4, quanta.Constant(2), 10)
	cfg.Actors = map[string]ActorConfig{"wa": {Exec: func(k int64) ratio.Rat { return r(2, 1) }}}
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("Exec > ρ accepted without AllowOverrun")
	}
}

func TestOverrunAllowedFinishesLate(t *testing.T) {
	cfg, _ := pairConfig(t, 4, quanta.Constant(2), 10)
	cfg.Actors = map[string]ActorConfig{"wa": {Exec: func(k int64) ratio.Rat { return r(2, 1) }}}
	cfg.AllowOverrun = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Completed {
		t.Fatalf("outcome %v, want completed", res.Outcome)
	}
	// wa needs 2 ticks per firing instead of 1; wb consumes 2 of 3
	// produced, so the run is producer-paced and must end later than the
	// admissible-time run.
	plainCfg, _ := pairConfig(t, 4, quanta.Constant(2), 10)
	plain, err := Run(plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EndTick <= plain.EndTick {
		t.Errorf("overrun run ended at tick %d, not later than the nominal run's %d", res.EndTick, plain.EndTick)
	}
}

// TestOverrunPeriodicUnderrunsDiagnosably pins the structured diagnostic:
// a periodic actor whose stretched firing is still running at its next
// scheduled start underruns with the "previous firing still running" info
// rather than erroring out.
func TestOverrunPeriodicUnderrunsDiagnosably(t *testing.T) {
	cfg, _ := pairConfig(t, 7, quanta.Cycle(2, 3), 50)
	cfg.AllowOverrun = true
	cfg.Actors = map[string]ActorConfig{
		"wb": {
			Mode:   Periodic,
			Offset: r(10, 1),
			Period: r(3, 1),
			// Firing 3 stalls for two periods; firing 4's scheduled
			// start lands while it still runs.
			Exec: func(k int64) ratio.Rat {
				if k == 3 {
					return r(7, 1)
				}
				return r(1, 1)
			},
		},
	}
	cfg.ExtraTimes = []ratio.Rat{r(7, 1)}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Underrun {
		t.Fatalf("outcome %v, want underrun", res.Outcome)
	}
	u := res.Underrun
	if u == nil {
		t.Fatal("Underrun info missing")
	}
	if u.Actor != "wb" || u.Firing != 4 || u.Edge != "" {
		t.Errorf("underrun info = %+v, want wb firing 4 blocked on its own previous firing", u)
	}
}

// TestVerificationStructuredDiagnostics pins the satellite bugfix: a failing
// verification surfaces UnderrunInfo/DeadlockInfo on the Verification, not
// just a flattened Reason string.
func TestVerificationStructuredDiagnostics(t *testing.T) {
	t.Run("deadlock", func(t *testing.T) {
		// Capacity 4 deadlocks under the alternating 2,3 consumer, so
		// the self-timed phase fails with a structured deadlock.
		tg := pairGraph(t, 4)
		c := taskgraph.Constraint{Task: "wb", Period: r(3, 1)}
		v, err := VerifyThroughput(tg, c, VerifyOptions{
			Firings:   100,
			Workloads: Workloads{"wa->wb": {Cons: quanta.Cycle(2, 3)}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if v.OK {
			t.Fatal("undersized graph verified")
		}
		if v.Deadlock == nil || len(v.Deadlock.Blocked) == 0 {
			t.Fatalf("Verification.Deadlock = %+v, want blocked actors", v.Deadlock)
		}
		if v.Underrun != nil {
			t.Errorf("Verification.Underrun = %+v, want nil on a deadlock", v.Underrun)
		}
		if v.Reason == "" {
			t.Error("Reason is empty")
		}
	})
	t.Run("underrun", func(t *testing.T) {
		// Period 1/2 is below wb's response time ρ = 1, so every firing
		// is still running at the next scheduled start: the periodic
		// phase underruns at any offset.
		tg := pairGraph(t, 7)
		c := taskgraph.Constraint{Task: "wb", Period: r(1, 2)}
		v, err := VerifyThroughput(tg, c, VerifyOptions{
			Firings:   50,
			Workloads: Workloads{"wa->wb": {Cons: quanta.Cycle(2, 3)}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if v.OK {
			t.Fatal("infeasible period verified")
		}
		if v.Underrun == nil {
			t.Fatal("Verification.Underrun missing")
		}
		if v.Underrun.Actor != "wb" {
			t.Errorf("Underrun.Actor = %q, want wb", v.Underrun.Actor)
		}
		if v.Reason == "" {
			t.Error("Reason is empty")
		}
	})
	t.Run("success leaves diagnostics nil", func(t *testing.T) {
		tg := pairGraph(t, 7)
		c := taskgraph.Constraint{Task: "wb", Period: r(3, 1)}
		v, err := VerifyThroughput(tg, c, VerifyOptions{
			Firings:   100,
			Workloads: Workloads{"wa->wb": {Cons: quanta.Cycle(2, 3)}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !v.OK {
			t.Fatalf("sufficient sizing failed: %s", v.Reason)
		}
		if v.Underrun != nil || v.Deadlock != nil {
			t.Errorf("diagnostics on success: underrun %+v, deadlock %+v", v.Underrun, v.Deadlock)
		}
	})
}

func TestVerifyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tg := pairGraph(t, 7)
	c := taskgraph.Constraint{Task: "wb", Period: r(3, 1)}
	_, err := VerifyThroughput(tg, c, VerifyOptions{
		Firings:   100,
		Workloads: Workloads{"wa->wb": {Cons: quanta.Cycle(2, 3)}},
		Context:   ctx,
	})
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}
