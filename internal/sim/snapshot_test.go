package sim

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"vrdfcap/internal/quanta"
	"vrdfcap/internal/taskgraph"
)

// chainConfig builds a 3-task chain with constant unit quanta and ample
// capacities: buffer ta->tb is slack, so lowering it slightly never touches
// the replayed prefix and warm starts stay valid across probes.
func chainConfig(t *testing.T, firings int64) (Config, string) {
	t.Helper()
	g, err := taskgraph.BuildChain(
		[]taskgraph.Stage{{Name: "ta", WCRT: r(1, 1)}, {Name: "tb", WCRT: r(1, 1)}, {Name: "tc", WCRT: r(1, 1)}},
		[]taskgraph.Link{
			{Prod: taskgraph.MustQuanta(1), Cons: taskgraph.MustQuanta(1)},
			{Prod: taskgraph.MustQuanta(1), Cons: taskgraph.MustQuanta(1)},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range g.Buffers() {
		b.Capacity = 8
	}
	cfg, m, err := TaskGraphConfig(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stop = Stop{Actor: "tc", Firings: firings}
	cfg.LiteResult = false
	pair, ok := m.Pair("ta->tb")
	if !ok {
		t.Fatal("no vrdf mapping for ta->tb")
	}
	return cfg, pair.Space
}

// TestSnapshotRestoreRoundTrip pins the public Snapshot/Restore API: a
// pre-run snapshot restored after a run replays the run bit-identically,
// and the arena can be reused across rounds without divergence.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	cfg, _ := pairConfig(t, 7, quanta.Cycle(2, 3), 40)
	m, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var arena *Snapshot
	arena = m.Snapshot(arena)
	first, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if err := m.Restore(arena); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		got, err := m.Run()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !reflect.DeepEqual(first, got) {
			t.Fatalf("round %d: restored run diverged\nfirst: %+v\ngot:   %+v", round, first, got)
		}
	}
}

// TestRestoreRejections pins the Restore guards: nil snapshots, snapshots
// owned by another machine and snapshots predating a Reset are refused, and
// the machine stays usable after each rejection.
func TestRestoreRejections(t *testing.T) {
	cfg, _ := pairConfig(t, 7, quanta.Cycle(2, 3), 20)
	m, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	other, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	if err := m.Restore(other.Snapshot(nil)); err == nil {
		t.Error("snapshot of a different machine accepted")
	}
	stale := m.Snapshot(nil)
	if err := m.Reset(nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(stale); err == nil {
		t.Error("snapshot predating a Reset accepted")
	}
	if res, err := m.Run(); err != nil || res.Outcome != Completed {
		t.Errorf("machine unusable after rejected Restores: %v, %v", res, err)
	}
}

// TestResetWarmMatchesCold drives one checkpointing machine through a
// capacity probe sequence and checks every warm-started run bit-identical
// to a cold run of a fresh machine at that capacity — including the
// per-edge token statistics the warm restore shifts by the capacity delta.
// At least one probe must actually resume from a checkpoint, or the test
// would pass vacuously through cold fallbacks.
func TestResetWarmMatchesCold(t *testing.T) {
	const firings = 3000
	cfg, space := chainConfig(t, firings)
	cfg.Checkpoints = 4
	m, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Fresh cold references take the probed capacity through the same
	// Reset override the warm machine sees.
	coldAt := func(capacity int64) *Result {
		c, _ := chainConfig(t, firings)
		fm, err := Compile(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := fm.Reset(map[string]int64{space: capacity}); err != nil {
			t.Fatal(err)
		}
		res, err := fm.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var totalResumed int64
	for i, capacity := range []int64{8, 7, 6, 7, 8, 8} {
		resumed, err := m.ResetWarm(map[string]int64{space: capacity})
		if err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
		totalResumed += resumed
		got, err := m.Run()
		if err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
		if want := coldAt(capacity); !reflect.DeepEqual(want, got) {
			t.Fatalf("probe %d (capacity %d, resumed %d events): warm run diverged from cold\ncold: %+v\nwarm: %+v",
				i, capacity, resumed, want, got)
		}
	}
	if totalResumed == 0 {
		t.Error("no probe resumed from a checkpoint; the warm path was never exercised")
	}
}

// TestResetWarmKeyMismatchFallsBack pins the checkpoint validity key: a
// changed stop horizon invalidates the retained checkpoints, so ResetWarm
// falls back to a cold reset (resuming zero events) and still produces the
// right run.
func TestResetWarmKeyMismatchFallsBack(t *testing.T) {
	cfg, _ := chainConfig(t, 3000)
	cfg.Checkpoints = 4
	m, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.SetStopFirings(1500); err != nil {
		t.Fatal(err)
	}
	resumed, err := m.ResetWarm(nil)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 {
		t.Errorf("ResetWarm resumed %d events across a stop-horizon change", resumed)
	}
	got, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	short, _ := chainConfig(t, 1500)
	want, err := Run(short)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("fallback run diverged\nwant: %+v\ngot:  %+v", want, got)
	}
}

// TestSnapshotPoolRace exercises a shared snapshot pool from concurrent
// goroutines, each owning its machine: Snapshot rebinds the arena to the
// calling machine, so arenas can migrate between goroutines freely. Run
// under -race this pins that neither the pool nor the rebinding races.
func TestSnapshotPoolRace(t *testing.T) {
	var pool sync.Pool // of *Snapshot
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg, _ := pairConfig(t, 7, quanta.Cycle(2, 3), 30)
			cfg.Validate = false
			m, err := Compile(cfg)
			if err != nil {
				errs <- err
				return
			}
			first, err := m.Run()
			if err != nil {
				errs <- err
				return
			}
			for round := 0; round < 20; round++ {
				arena, _ := pool.Get().(*Snapshot)
				if err := m.Reset(nil); err != nil {
					errs <- err
					return
				}
				arena = m.Snapshot(arena)
				got, err := m.Run()
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(first, got) {
					errs <- fmt.Errorf("round %d: pooled-arena run diverged", round)
					return
				}
				if err := m.Restore(arena); err != nil {
					errs <- err
					return
				}
				got, err = m.Run()
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(first, got) {
					errs <- fmt.Errorf("round %d: restored run diverged", round)
					return
				}
				pool.Put(arena)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
