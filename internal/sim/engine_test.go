package sim

import (
	"testing"

	"vrdfcap/internal/quanta"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
	"vrdfcap/internal/vrdf"
)

func r(n, d int64) ratio.Rat { return ratio.MustNew(n, d) }

// pairGraph builds the Figure-1 task graph with the given capacity and
// response times of 1 time unit.
func pairGraph(t *testing.T, capacity int64) *taskgraph.Graph {
	t.Helper()
	g, err := taskgraph.Pair("wa", r(1, 1), "wb", r(1, 1),
		taskgraph.MustQuanta(3), taskgraph.MustQuanta(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	g.Buffers()[0].Capacity = capacity
	return g
}

func runPair(t *testing.T, capacity int64, cons quanta.Sequence, firings int64) *Result {
	t.Helper()
	tg := pairGraph(t, capacity)
	cfg, _, err := TaskGraphConfig(tg, Workloads{"wa->wb": {Cons: cons}})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stop = Stop{Actor: "wb", Firings: firings}
	cfg.Validate = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTimeBase(t *testing.T) {
	b, err := NewTimeBase(r(1, 44100), r(1, 100), r(3, 125))
	if err != nil {
		t.Fatal(err)
	}
	// LCM(44100, 100, 125) = 220500.
	if b.TicksPerUnit != 220500 {
		t.Fatalf("TicksPerUnit = %d, want 220500", b.TicksPerUnit)
	}
	ticks, err := b.Ticks(r(1, 100))
	if err != nil || ticks != 2205 {
		t.Errorf("Ticks(1/100) = %d, %v; want 2205", ticks, err)
	}
	if !b.Rat(2205).Equal(r(1, 100)) {
		t.Errorf("Rat(2205) = %v", b.Rat(2205))
	}
	if _, err := b.Ticks(r(1, 13)); err == nil {
		t.Error("non-representable time accepted")
	}
}

func TestMotivatingExampleDeadlocks(t *testing.T) {
	// §1: with capacity 3 the graph is deadlock-free when wb always
	// consumes 3, but deadlocks when wb always consumes 2; capacity 4
	// fixes the latter.
	res := runPair(t, 3, quanta.Constant(3), 100)
	if res.Outcome != Completed {
		t.Errorf("capacity 3, n=3: outcome %v, want completed", res.Outcome)
	}

	res = runPair(t, 3, quanta.Constant(2), 100)
	if res.Outcome != Deadlocked {
		t.Fatalf("capacity 3, n=2: outcome %v, want deadlocked", res.Outcome)
	}
	if res.Deadlock == nil || len(res.Deadlock.Blocked) == 0 {
		t.Fatal("deadlock info missing")
	}

	res = runPair(t, 4, quanta.Constant(2), 100)
	if res.Outcome != Completed {
		t.Errorf("capacity 4, n=2: outcome %v, want completed", res.Outcome)
	}

	// Mixing quanta is harder than either constant case: capacity 4
	// deadlocks under the alternating sequence, underscoring that no
	// single constant-rate analysis covers data-dependent behaviour.
	res = runPair(t, 4, quanta.Cycle(2, 3), 100)
	if res.Outcome != Deadlocked {
		t.Errorf("capacity 4, n cycle(2,3): outcome %v, want deadlocked", res.Outcome)
	}

	// Equation (4)'s capacity (7 for τ = 3, ρ = 1; see the capacity
	// package) is deadlock-free for every sequence pattern.
	for _, seq := range []quanta.Sequence{
		quanta.Constant(2), quanta.Constant(3), quanta.Cycle(2, 3), quanta.Cycle(3, 2, 2),
	} {
		res = runPair(t, 7, seq, 100)
		if res.Outcome != Completed {
			t.Errorf("capacity 7, seq %T: outcome %v, want completed", seq, res.Outcome)
		}
	}
}

func TestTokenConservation(t *testing.T) {
	res := runPair(t, 7, quanta.Cycle(2, 3, 3, 2), 200)
	if res.Outcome != Completed {
		t.Fatalf("outcome %v", res.Outcome)
	}
	// Everything wa produced either sits on the data edge or was
	// consumed; space tokens mirror data tokens against the capacity.
	data := res.Edges["data:wa->wb"]
	space := res.Edges["space:wa->wb"]
	if data.Produced-data.Consumed < 0 {
		t.Error("consumed more data than produced")
	}
	if data.Peak > 7 {
		t.Errorf("data occupancy %d exceeded capacity 7", data.Peak)
	}
	if space.Min < 0 || data.Min < 0 {
		t.Errorf("negative token count: data min %d, space min %d", data.Min, space.Min)
	}
	// wb finished exactly 200 firings; wa fired at least enough to feed
	// them.
	if res.Finished["wb"] != 200 {
		t.Errorf("wb finished %d, want 200", res.Finished["wb"])
	}
	if data.Consumed < 2*200 {
		t.Errorf("wb consumed %d tokens in 200 firings", data.Consumed)
	}
}

func TestSelfTimedStartTimesPair(t *testing.T) {
	// Deterministic micro-trace: capacity 7, m=3, n=3 constant, ρ=1.
	// wa starts at 0, 1, 2 (space 7 allows two outstanding... exactly:
	// space=7; firing0 claims 3 (4 left) at t=0, firing1 claims 3
	// (1 left) at t=1, firing2 blocked until wb releases.
	// wb: data arrives at t=1 (3 tokens) -> starts at 1, finishes 2.
	tg := pairGraph(t, 7)
	cfg, _, err := TaskGraphConfig(tg, Workloads{"wa->wb": {Cons: quanta.Constant(3)}})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stop = Stop{Actor: "wb", Firings: 5}
	cfg.RecordStarts = []string{"wa", "wb"}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Completed {
		t.Fatalf("outcome %v", res.Outcome)
	}
	tb := res.Base
	wantWB := []int64{1, 2, 3, 4, 5}
	for i, w := range wantWB {
		wTick, err := tb.Ticks(r(w, 1))
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Starts["wb"][i]; got != wTick {
			t.Errorf("wb start %d = tick %d, want %d", i, got, wTick)
		}
	}
	// wa's first two starts are back-to-back at 0 and 1.
	for i, w := range []int64{0, 1} {
		wTick, _ := tb.Ticks(r(w, 1))
		if got := res.Starts["wa"][i]; got != wTick {
			t.Errorf("wa start %d = tick %d, want %d", i, got, wTick)
		}
	}
}

func TestPeriodicModeCompletesAndUnderruns(t *testing.T) {
	// n=2 constant with capacity 4 sustains wb with period 1 after a
	// warm-up offset; with period 2/3 (faster than wa can feed: wa
	// delivers 3 tokens per time unit, wb would need 3 per unit... it
	// can; try period 1/2: wb needs 4 tokens per unit > 3 produced).
	tg := pairGraph(t, 4)
	mk := func(offset, period ratio.Rat) Config {
		cfg, _, err := TaskGraphConfig(tg, Workloads{"wa->wb": {Cons: quanta.Constant(2)}})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Stop = Stop{Actor: "wb", Firings: 50}
		cfg.Actors = map[string]ActorConfig{
			"wb": {Mode: Periodic, Offset: offset, Period: period},
		}
		return cfg
	}
	// Sustainable: period 2 (1 token per unit, well under wa's delivery
	// rate with capacity 4), offset 10 gives ample warm-up.
	res, err := Run(mk(r(10, 1), r(2, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Completed {
		t.Errorf("sustainable periodic run: %v (%v)", res.Outcome, res.Underrun)
	}
	// Unsustainable: period 1/2 needs 4 tokens per unit but wa can
	// produce at most 3 per unit.
	res, err = Run(mk(r(10, 1), r(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Underrun {
		t.Fatalf("unsustainable periodic run: %v, want underrun", res.Outcome)
	}
	if res.Underrun == nil || res.Underrun.Actor != "wb" {
		t.Errorf("underrun info = %+v", res.Underrun)
	}
	// Period shorter than ρ(wb): the previous firing cannot finish.
	res, err = Run(mk(r(10, 1), r(1, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Underrun {
		t.Fatalf("period < ρ: %v, want underrun", res.Outcome)
	}
}

func TestZeroQuantumFirings(t *testing.T) {
	// wb consumes {0, 3}: firings with quantum 0 proceed without data.
	g, err := taskgraph.Pair("wa", r(1, 1), "wb", r(1, 1),
		taskgraph.MustQuanta(3), taskgraph.MustQuanta(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	g.Buffers()[0].Capacity = 6
	cfg, _, err := TaskGraphConfig(g, Workloads{"wa->wb": {Cons: quanta.Cycle(0, 3)}})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stop = Stop{Actor: "wb", Firings: 100}
	cfg.Validate = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Completed {
		t.Fatalf("outcome %v", res.Outcome)
	}
	// 50 of the 100 firings consumed 3 tokens each.
	if got := res.Edges["data:wa->wb"].Consumed; got != 150 {
		t.Errorf("consumed %d, want 150", got)
	}
}

func TestTransferRecording(t *testing.T) {
	tg := pairGraph(t, 7)
	cfg, m, err := TaskGraphConfig(tg, Workloads{"wa->wb": {Cons: quanta.Cycle(2, 3)}})
	if err != nil {
		t.Fatal(err)
	}
	dataEdge := m.Pairs[0].Data
	cfg.Stop = Stop{Actor: "wb", Firings: 10}
	cfg.RecordTransfers = []string{dataEdge}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := res.Transfers[dataEdge]
	if len(recs) == 0 {
		t.Fatal("no transfers recorded")
	}
	// Consumptions follow the 2,3,2,3 cycle and are contiguous.
	var consSeen int64
	var prodSeen int64
	k := 0
	for _, rec := range recs {
		if rec.From > rec.To {
			t.Fatalf("malformed record %+v", rec)
		}
		if rec.Produce {
			if rec.From != prodSeen+1 {
				t.Errorf("production gap: %+v after %d", rec, prodSeen)
			}
			prodSeen = rec.To
			continue
		}
		if rec.From != consSeen+1 {
			t.Errorf("consumption gap: %+v after %d", rec, consSeen)
		}
		got := rec.To - rec.From + 1
		want := []int64{2, 3}[k%2]
		if got != want {
			t.Errorf("consumption %d moved %d tokens, want %d", k, got, want)
		}
		consSeen = rec.To
		k++
	}
	if k != 10 {
		t.Errorf("recorded %d consumptions, want 10", k)
	}
}

func TestConfigValidation(t *testing.T) {
	tg := pairGraph(t, 4)
	// Missing workload for a variable set.
	cfg, _, err := TaskGraphConfig(tg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stop = Stop{Actor: "wb", Firings: 1}
	if _, err := Run(cfg); err == nil {
		t.Error("variable edge without sequence accepted")
	}
	// Unsized buffer.
	if _, _, err := TaskGraphConfig(pairGraph(t, 0), nil); err == nil {
		t.Error("unsized buffer accepted")
	}
	// Bad stop.
	cfg2, _, _ := TaskGraphConfig(tg, Workloads{"wa->wb": {Cons: quanta.Constant(3)}})
	if _, err := Run(cfg2); err == nil {
		t.Error("missing stop condition accepted")
	}
	cfg2.Stop = Stop{Actor: "nope", Firings: 1}
	if _, err := Run(cfg2); err == nil {
		t.Error("unknown stop actor accepted")
	}
	// Unknown record names.
	cfg3, _, _ := TaskGraphConfig(tg, Workloads{"wa->wb": {Cons: quanta.Constant(3)}})
	cfg3.Stop = Stop{Actor: "wb", Firings: 1}
	cfg3.RecordStarts = []string{"nope"}
	if _, err := Run(cfg3); err == nil {
		t.Error("unknown RecordStarts actor accepted")
	}
	// Nil graph.
	if _, err := Run(Config{Stop: Stop{Actor: "x", Firings: 1}}); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestValidateCatchesOutOfSetQuanta(t *testing.T) {
	tg := pairGraph(t, 10)
	cfg, _, err := TaskGraphConfig(tg, Workloads{"wa->wb": {Cons: quanta.Constant(5)}})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stop = Stop{Actor: "wb", Firings: 1}
	cfg.Validate = true
	defer func() {
		if recover() == nil {
			t.Error("out-of-set quantum did not panic under Validate")
		}
	}()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMaxEventsLimit(t *testing.T) {
	tg := pairGraph(t, 100)
	cfg, _, err := TaskGraphConfig(tg, Workloads{"wa->wb": {Cons: quanta.Constant(2)}})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stop = Stop{Actor: "wb", Firings: 1 << 40}
	cfg.MaxEvents = 1000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != LimitExceeded {
		t.Errorf("outcome %v, want limit-exceeded", res.Outcome)
	}
}

func TestVariableExecTimes(t *testing.T) {
	// Execution times below ρ are allowed; above ρ is an error.
	tg := pairGraph(t, 7)
	cfg, _, err := TaskGraphConfig(tg, Workloads{"wa->wb": {Cons: quanta.Constant(3)}})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stop = Stop{Actor: "wb", Firings: 10}
	cfg.ExtraTimes = []ratio.Rat{r(1, 2)}
	cfg.Actors = map[string]ActorConfig{
		"wa": {Exec: func(k int64) ratio.Rat { return r(1, 2) }},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Completed {
		t.Errorf("outcome %v", res.Outcome)
	}

	cfg2, _, _ := TaskGraphConfig(tg, Workloads{"wa->wb": {Cons: quanta.Constant(3)}})
	cfg2.Stop = Stop{Actor: "wb", Firings: 10}
	cfg2.Actors = map[string]ActorConfig{
		"wa": {Exec: func(k int64) ratio.Rat { return r(2, 1) }},
	}
	if _, err := Run(cfg2); err == nil {
		t.Error("execution time above ρ accepted")
	}
}

func TestDirectVRDFCycle(t *testing.T) {
	// A hand-built two-actor cycle (not from a task graph): a ring with
	// 5 tokens circulating 1 per firing each way.
	g := vrdf.New()
	if _, err := g.AddActor("p", r(1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddActor("q", r(1, 1)); err != nil {
		t.Fatal(err)
	}
	one := taskgraph.MustQuanta(1)
	if _, err := g.AddEdge(vrdf.Edge{Name: "pq", Src: "p", Dst: "q", Prod: one, Cons: one}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(vrdf.Edge{Name: "qp", Src: "q", Dst: "p", Prod: one, Cons: one, Initial: 5}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Graph: g, Stop: Stop{Actor: "q", Firings: 50}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Completed {
		t.Fatalf("outcome %v", res.Outcome)
	}
	// Conservation: tokens on the two edges plus tokens held by
	// in-flight firings always total the 5 initial tokens.
	onEdges := (res.Edges["pq"].Produced - res.Edges["pq"].Consumed) +
		(5 + res.Edges["qp"].Produced - res.Edges["qp"].Consumed)
	inFlight := (res.Fired["p"] - res.Finished["p"]) + (res.Fired["q"] - res.Finished["q"])
	if total := onEdges + inFlight; total != 5 {
		t.Errorf("ring token total = %d (edges %d, in flight %d), want 5", total, onEdges, inFlight)
	}
}

func TestSourceOnlyActorRunsSerially(t *testing.T) {
	// An actor with no input edges fires back to back, one per ρ.
	g := vrdf.New()
	if _, err := g.AddActor("src", r(1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddActor("snk", r(1, 1)); err != nil {
		t.Fatal(err)
	}
	one := taskgraph.MustQuanta(1)
	if _, err := g.AddEdge(vrdf.Edge{Name: "e", Src: "src", Dst: "snk", Prod: one, Cons: one}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Graph:        g,
		Stop:         Stop{Actor: "snk", Firings: 10},
		RecordStarts: []string{"src"},
	})
	if err != nil {
		t.Fatal(err)
	}
	starts := res.Starts["src"]
	for i := 1; i < len(starts); i++ {
		if starts[i]-starts[i-1] != res.Base.TicksPerUnit {
			t.Fatalf("src starts %d apart, want %d", starts[i]-starts[i-1], res.Base.TicksPerUnit)
		}
	}
}

func TestInvariantCheckingPassesOnValidRuns(t *testing.T) {
	tg := pairGraph(t, 7)
	cfg, _, err := TaskGraphConfig(tg, Workloads{"wa->wb": {Cons: quanta.Cycle(2, 3)}})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stop = Stop{Actor: "wb", Firings: 200}
	cfg.CheckInvariants = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("invariant check tripped on a valid run: %v", err)
	}
	if res.Outcome != Completed {
		t.Fatalf("outcome %v", res.Outcome)
	}
}

func TestInvariantViolationAborts(t *testing.T) {
	tg := pairGraph(t, 7)
	cfg, m, err := TaskGraphConfig(tg, Workloads{"wa->wb": {Cons: quanta.Constant(3)}})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stop = Stop{Actor: "wb", Firings: 10}
	cfg.CheckInvariants = true
	// A deliberately impossible bound: the space edge alone starts with
	// 7 tokens.
	cfg.Invariants = append(cfg.Invariants, TokenInvariant{
		Name: "bogus", Edges: []string{m.Pairs[0].Space}, Max: 3,
	})
	if _, err := Run(cfg); err == nil {
		t.Fatal("violated invariant did not abort the run")
	}
	// Unknown edge in an invariant is a configuration error.
	cfg2, _, _ := TaskGraphConfig(tg, Workloads{"wa->wb": {Cons: quanta.Constant(3)}})
	cfg2.Stop = Stop{Actor: "wb", Firings: 1}
	cfg2.CheckInvariants = true
	cfg2.Invariants = []TokenInvariant{{Name: "x", Edges: []string{"nope"}, Max: 1}}
	if _, err := Run(cfg2); err == nil {
		t.Fatal("unknown invariant edge accepted")
	}
}

func TestDiamondTopology(t *testing.T) {
	// The engine is not limited to chains: a diamond where the merge
	// actor needs tokens on BOTH inputs. With ρ(s)=1, ρ(a)=2, ρ(b)=3,
	// the slower branch paces the merge: m starts at 4+3k.
	g := vrdf.New()
	for _, actor := range []struct {
		name string
		rho  ratio.Rat
	}{
		{"s", r(1, 1)}, {"a", r(2, 1)}, {"b", r(3, 1)}, {"m", r(1, 1)},
	} {
		if _, err := g.AddActor(actor.name, actor.rho); err != nil {
			t.Fatal(err)
		}
	}
	one := taskgraph.MustQuanta(1)
	for _, e := range [][2]string{{"s", "a"}, {"s", "b"}, {"a", "m"}, {"b", "m"}} {
		if _, err := g.AddEdge(vrdf.Edge{Name: e[0] + e[1], Src: e[0], Dst: e[1], Prod: one, Cons: one}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Run(Config{
		Graph:        g,
		Stop:         Stop{Actor: "m", Firings: 5},
		RecordStarts: []string{"m"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Completed {
		t.Fatalf("outcome %v", res.Outcome)
	}
	for k, start := range res.Starts["m"] {
		want := (4 + 3*int64(k)) * res.Base.TicksPerUnit
		if start != want {
			t.Errorf("m start %d = tick %d, want %d", k, start, want)
		}
	}
}

func TestBusyTicksUtilisation(t *testing.T) {
	// Constant-rate pair: wb fires 100 times back to back at ρ=1, so it
	// is busy for 100 units of a run ending at its last finish.
	res := runPair(t, 7, quanta.Constant(3), 100)
	if res.Outcome != Completed {
		t.Fatalf("outcome %v", res.Outcome)
	}
	unit := res.Base.TicksPerUnit
	if got := res.BusyTicks["wb"]; got != 100*unit {
		t.Errorf("wb busy %d ticks, want %d", got, 100*unit)
	}
	// wa fired at least 67 times (3 tokens per firing for 300 consumed).
	if got := res.BusyTicks["wa"]; got < 67*unit {
		t.Errorf("wa busy %d ticks, implausibly low", got)
	}
	if res.BusyTicks["wa"] > res.EndTick {
		t.Error("busy time exceeds run length for a serial actor")
	}
}
