package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/quanta"
)

// TestResetRevertsKnobOverrides pins the Reset/ResetWarm contract for the
// SetStopFirings and SetPeriodicOffsetTicks overrides: Reset restores the
// compiled configuration (a reused machine behaves like a freshly compiled
// one), while ResetWarm keeps the overrides because they are part of the
// checkpoint validity key.
func TestResetRevertsKnobOverrides(t *testing.T) {
	cfg, _ := pairConfig(t, 4, quanta.Constant(2), 50)
	cfg.Actors = map[string]ActorConfig{
		"wb": {Mode: Periodic, Offset: r(10, 1), Period: r(2, 1)},
	}
	baseline, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Outcome != Completed {
		t.Fatalf("baseline outcome = %v, want %v", baseline.Outcome, Completed)
	}

	m, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	offTicks, err := m.Base().Ticks(r(14, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetStopFirings(20); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPeriodicOffsetTicks("wb", offTicks); err != nil {
		t.Fatal(err)
	}
	if err := m.Reset(nil); err != nil {
		t.Fatal(err)
	}
	got, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseline, got) {
		t.Errorf("Reset kept knob overrides: a reused machine diverged from a fresh one\nfresh:  %+v\nreused: %+v", baseline, got)
	}

	// ResetWarm keeps both overrides; the run must match a fresh machine
	// compiled with them.
	ovCfg := cfg
	ovCfg.Actors = map[string]ActorConfig{
		"wb": {Mode: Periodic, Offset: r(14, 1), Period: r(2, 1)},
	}
	ovCfg.Stop.Firings = 20
	want, err := Run(ovCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetStopFirings(20); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPeriodicOffsetTicks("wb", offTicks); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ResetWarm(nil); err != nil {
		t.Fatal(err)
	}
	got, err = m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("ResetWarm dropped knob overrides\nwant: %+v\ngot:  %+v", want, got)
	}
}

// TestReusedMachineHonorsCanceledContext pins the budget bugfix: the event
// counter that paces Context checks is per-run state, so a reused machine
// must notice an already-canceled Context within the first
// budgetCheckInterval window of its next Run — not after inheriting a stale
// counter from the previous run.
func TestReusedMachineHonorsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg, _ := pairConfig(t, 7, quanta.Cycle(2, 3), 50)
	cfg.Context = ctx
	m, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := m.Reset(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); !errors.Is(err, budget.ErrCanceled) {
		t.Errorf("Run on a reused machine with a canceled Context returned %v, want budget.ErrCanceled", err)
	}
}

// TestResetClearsRecordings pins that no recording buffer — starts,
// transfers, occupancy — leaks across a Reset: the second run of a reused
// machine reports exactly the recordings of a fresh run.
func TestResetClearsRecordings(t *testing.T) {
	cfg, _ := pairConfig(t, 7, quanta.Cycle(2, 3), 30)
	cfg.RecordStarts = []string{"wa", "wb"}
	cfg.RecordTransfers = []string{"data:wa->wb", "space:wa->wb"}
	cfg.RecordOccupancy = []string{"data:wa->wb"}
	fresh, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.Reset(nil); err != nil {
		t.Fatal(err)
	}
	got, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Starts, got.Starts) {
		t.Errorf("starts leaked across Reset\nfresh: %v\ngot:   %v", fresh.Starts, got.Starts)
	}
	if !reflect.DeepEqual(fresh.Transfers, got.Transfers) {
		t.Errorf("transfers leaked across Reset\nfresh: %v\ngot:   %v", fresh.Transfers, got.Transfers)
	}
	if !reflect.DeepEqual(fresh.Occupancy, got.Occupancy) {
		t.Errorf("occupancy leaked across Reset\nfresh: %v\ngot:   %v", fresh.Occupancy, got.Occupancy)
	}
	if !reflect.DeepEqual(fresh, got) {
		t.Errorf("reused run diverged from fresh run\nfresh: %+v\ngot:   %+v", fresh, got)
	}
}
