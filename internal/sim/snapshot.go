package sim

import "fmt"

// Snapshot is a deep copy of a Machine's mutable run state — event
// calendar, actor states, edge token counts and the lengths of the
// recording buffers — in a reusable arena. Taking a snapshot into an arena
// that has reached its steady-state capacity performs no allocation, so
// checkpointing inside Run and snapshot pools shared across machines stay
// allocation-free after warm-up.
//
// A Snapshot is bound to the machine that filled it (Snapshot rebinds an
// arena on every call) and to that machine's reset epoch: recordings are
// stored as prefix lengths of the machine's live buffers, so a reset —
// which truncates those buffers — invalidates every earlier snapshot.
type Snapshot struct {
	owner  *Machine
	epoch  int64
	midRun bool // taken inside Run (an auto-checkpoint), not via the public API
	ran    bool
	tick   int64
	events int64
	seq    int64
	eq     eventHeap
	actors []actorSnap
	edges  []edgeSnap
}

type actorSnap struct {
	started   int64
	finished  int64
	busyTicks int64
	busyUntil int64
	readyAt   int64
	armedFor  int64
	startsLen int
}

type edgeSnap struct {
	tokens       int64
	peak         int64
	min          int64
	produced     int64
	consumed     int64
	minShortfall int64
	recsLen      int
	occLen       int
	// lastOcc is the value of the last retained occupancy sample:
	// same-tick samples are merged by mutating the last element, so
	// restoring by length alone would keep a post-snapshot mutation.
	lastOcc OccupancySample
}

// Events returns the absolute event count at the snapshot.
func (s *Snapshot) Events() int64 { return s.events }

// Tick returns the simulation tick at the snapshot.
func (s *Snapshot) Tick() int64 { return s.tick }

// Snapshot deep-copies the machine's current run state into the given
// arena (allocating a fresh one when into is nil) and returns it. It may
// be called on a reset machine (capturing the ready-to-run state) or after
// a run (capturing the final state); Restore brings the machine back to
// exactly that point.
func (m *Machine) Snapshot(into *Snapshot) *Snapshot {
	if into == nil {
		into = &Snapshot{}
	}
	m.snapshotInto(into, 0, false)
	return into
}

// Restore reinstates a snapshot previously taken from this machine. It
// fails for a snapshot owned by another machine, taken before the most
// recent reset (the recordings it references were truncated), or taken by
// the internal checkpointing of a Run (use ResetWarm for those). Restoring
// discards the retained checkpoints: they may describe a different run
// than the restored state.
func (m *Machine) Restore(s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("sim: Restore: nil snapshot")
	}
	if s.owner != m {
		return fmt.Errorf("sim: Restore: snapshot belongs to a different machine")
	}
	if s.epoch != m.epoch {
		return fmt.Errorf("sim: Restore: snapshot predates the machine's last reset")
	}
	if s.midRun {
		return fmt.Errorf("sim: Restore: snapshot is an internal run checkpoint; use ResetWarm")
	}
	m.restoreFrom(s)
	m.ran = s.ran
	m.resumed = false
	if s.events == 0 {
		// A pre-run state: its token counts are the initial tokens of
		// the run a subsequent Run will execute.
		for i, es := range m.edgeList {
			m.runTokens[i] = es.tokens
		}
	}
	m.dropCheckpoints(0)
	return nil
}

// snapshotInto fills s from the machine's current state. The caller must
// ensure the state is quiescent: no partially processed tick (inside Run
// this means after startDirty, with the dirty list empty).
func (m *Machine) snapshotInto(s *Snapshot, tick int64, midRun bool) {
	s.owner = m
	s.epoch = m.epoch
	s.midRun = midRun
	s.ran = m.ran
	s.tick = tick
	s.events = m.events
	s.seq = m.seq
	s.eq = append(s.eq[:0], m.eq...)
	if len(s.actors) != len(m.actors) {
		s.actors = make([]actorSnap, len(m.actors))
	}
	for i, a := range m.actors {
		s.actors[i] = actorSnap{
			started:   a.started,
			finished:  a.finished,
			busyTicks: a.busyTicks,
			busyUntil: a.busyUntil,
			readyAt:   a.readyAt,
			armedFor:  a.armedFor,
			startsLen: len(a.starts),
		}
	}
	if len(s.edges) != len(m.edgeList) {
		s.edges = make([]edgeSnap, len(m.edgeList))
	}
	for i, es := range m.edgeList {
		sn := edgeSnap{
			tokens:       es.tokens,
			peak:         es.peak,
			min:          es.min,
			produced:     es.produced,
			consumed:     es.consumed,
			minShortfall: es.minShortfall,
			recsLen:      len(es.recs),
			occLen:       len(es.occ),
		}
		if sn.occLen > 0 {
			sn.lastOcc = es.occ[sn.occLen-1]
		}
		s.edges[i] = sn
	}
}

// restoreFrom copies a snapshot's state back into the machine. Recording
// buffers are truncated to their snapshot lengths; their retained prefixes
// are identical to the snapshot's time (runs only append, and the one
// mutable element — the last occupancy sample — is restored explicitly).
//vrdf:noalloc
func (m *Machine) restoreFrom(s *Snapshot) {
	m.eq = append(m.eq[:0], s.eq...) //vrdf:allocok(the calendar keeps its capacity across Reset; a snapshot never holds more events than the run that produced it)
	m.seq = s.seq
	m.events = s.events
	for i, a := range m.actors {
		sn := &s.actors[i]
		a.started = sn.started
		a.finished = sn.finished
		a.busyTicks = sn.busyTicks
		a.busyUntil = sn.busyUntil
		a.readyAt = sn.readyAt
		a.armedFor = sn.armedFor
		a.starts = a.starts[:sn.startsLen]
	}
	for i, es := range m.edgeList {
		sn := &s.edges[i]
		es.tokens = sn.tokens
		es.peak = sn.peak
		es.min = sn.min
		es.produced = sn.produced
		es.consumed = sn.consumed
		es.minShortfall = sn.minShortfall
		es.recs = es.recs[:sn.recsLen]
		es.occ = es.occ[:sn.occLen]
		if sn.occLen > 0 {
			es.occ[sn.occLen-1] = sn.lastOcc
		}
	}
	m.dirty = m.dirty[:0]
	for i := range m.dirtyIn {
		m.dirtyIn[i] = false
	}
}

// initialCheckpointEvery is the event interval of the first checkpoint of
// a run; thinning doubles it every time the slots fill, so N slots cover a
// run of any length with logarithmically spaced checkpoints.
const initialCheckpointEvery = 1024

// beginCheckpoints records the configuration key of the starting cold run.
// ResetWarm only reuses checkpoints taken under the same stop horizon,
// periodic offsets and initial-token frame.
func (m *Machine) beginCheckpoints() {
	m.ckptEvery = initialCheckpointEvery
	m.ckptNext = m.ckptEvery
	m.ckptStop = m.cfg.Stop.Firings
	m.ckptOffs = m.ckptOffs[:0]
	for _, a := range m.actors {
		m.ckptOffs = append(m.ckptOffs, a.offsetT)
	}
	copy(m.ckptTokens, m.runTokens)
}

// ckptKeyMatches reports whether the machine's current stop horizon and
// periodic offsets equal those the retained checkpoints were taken under.
//
//vrdf:noalloc
func (m *Machine) ckptKeyMatches() bool {
	if m.cfg.Stop.Firings != m.ckptStop || len(m.ckptOffs) != len(m.actors) {
		return false
	}
	for i, a := range m.actors {
		if a.offsetT != m.ckptOffs[i] {
			return false
		}
	}
	return true
}

// takeCheckpoint snapshots the current (quiescent) run state into a slot.
// When the slots overflow, every other checkpoint is dropped — always
// keeping the newest — and the interval doubles: the retained checkpoints
// stay roughly evenly spaced over the whole run, so a warm start never
// resumes further from its target than one interval.
func (m *Machine) takeCheckpoint(tick int64) {
	s := m.grabSnapshot()
	m.snapshotInto(s, tick, true)
	m.ckpts = append(m.ckpts, s)
	if len(m.ckpts) > m.ckptSlots {
		kept := m.ckpts[:0]
		for i, c := range m.ckpts {
			if i%2 == 1 || i == len(m.ckpts)-1 {
				kept = append(kept, c)
			} else {
				m.ckptFree = append(m.ckptFree, c)
			}
		}
		m.ckpts = kept
		m.ckptEvery *= 2
	}
	m.ckptNext = m.events + m.ckptEvery
}

// grabSnapshot returns a checkpoint slot, reusing a retired one when the
// free list has any.
//
//vrdf:noalloc
func (m *Machine) grabSnapshot() *Snapshot {
	if n := len(m.ckptFree); n > 0 {
		s := m.ckptFree[n-1]
		m.ckptFree[n-1] = nil
		m.ckptFree = m.ckptFree[:n-1]
		return s
	}
	return &Snapshot{} //vrdf:allocok(cold path: runs only until the checkpoint slots fill once, then every grab reuses the free list)
}

// dropCheckpoints retires the checkpoints from index from onward into the
// free list.
func (m *Machine) dropCheckpoints(from int) {
	for i := from; i < len(m.ckpts); i++ {
		m.ckptFree = append(m.ckptFree, m.ckpts[i])
		m.ckpts[i] = nil
	}
	m.ckpts = m.ckpts[:from]
}

// ResetWarm prepares the next run like Reset, but resumes from a retained
// checkpoint of the previous run when the changed initial tokens provably
// cannot have affected the replayed prefix. It returns the number of
// events the resumed run skips re-executing (0 when it fell back to a cold
// reset). Unlike Reset, ResetWarm keeps the SetStopFirings and
// SetPeriodicOffsetTicks overrides — they are part of the checkpoint
// validity key, so callers set them first and warm-reset after.
//
// Validity rests on the quanta sequences, Exec models and scheduling being
// pure functions of the firing index (the package contract for
// bit-reproducible runs) plus a per-edge prefix-coincidence argument:
// lowering an edge's initial tokens by d keeps every consumption of the
// prefix possible iff the edge's running minimum at the checkpoint is ≥ d,
// and raising them by δ keeps every failed enabling check failing iff
// δ < the smallest shortfall any such check observed. Either way every
// start, finish and transfer of the prefix is unchanged, so the resumed
// run is bit-identical to a cold run with the new tokens — the
// differential fuzz target in this package pins that equivalence.
func (m *Machine) ResetWarm(initialTokens map[string]int64) (resumedEvents int64, err error) {
	for name := range initialTokens {
		if _, ok := m.edges[name]; !ok {
			return 0, fmt.Errorf("sim: Reset: unknown edge %q", name)
		}
	}
	if m.ckptSlots == 0 || len(m.ckpts) == 0 || !m.ckptKeyMatches() {
		return 0, m.resetTokens(initialTokens)
	}
	// Desired initial tokens of the next run, per edge index.
	des := m.desScratch
	for i, es := range m.edgeList {
		tok := es.initial
		if v, ok := initialTokens[es.name]; ok {
			if v < 0 {
				return 0, fmt.Errorf("sim: Reset: edge %q: negative initial tokens %d", es.name, v)
			}
			tok = v
		}
		des[i] = tok
	}
	// Newest checkpoint valid for every changed edge wins. Both validity
	// quantities shrink monotonically over a run (the running minimum
	// can only fall, shortfalls only tighten), so if a checkpoint is
	// invalid every newer one is too, and every older one than a valid
	// one is also valid.
	for j := len(m.ckpts) - 1; j >= 0; j-- {
		if !m.ckptValidFor(m.ckpts[j], des) {
			continue
		}
		return m.restoreWarm(j, des), nil
	}
	return 0, m.resetTokens(initialTokens)
}

// ckptValidFor reports whether resuming from s with the desired
// initial-token frame keeps the replayed prefix bit-identical.
func (m *Machine) ckptValidFor(s *Snapshot, des []int64) bool {
	for i, es := range m.edgeList {
		delta := des[i] - m.ckptTokens[i]
		if delta == 0 {
			continue
		}
		if es.recordOcc {
			// Recorded occupancy samples store absolute token counts;
			// the prefix's samples would be off by delta.
			return false
		}
		sn := &s.edges[i]
		if delta < 0 && sn.min < -delta {
			return false
		}
		if delta > 0 && sn.minShortfall <= delta {
			return false
		}
	}
	return true
}

// restoreWarm restores checkpoint j, shifts the changed edges' token
// statistics by their deltas (valid checkpoints replay the exact same
// transfer sequence, so every occupancy value on a changed edge differs by
// exactly the initial-token delta), adjusts the retained older checkpoints
// the same way, and arms Run to resume. Returns the events skipped.
//vrdf:noalloc
func (m *Machine) restoreWarm(j int, des []int64) int64 {
	s := m.ckpts[j]
	m.restoreFrom(s)
	m.dropCheckpoints(j + 1)
	for i, es := range m.edgeList {
		delta := des[i] - m.ckptTokens[i]
		if delta == 0 {
			continue
		}
		es.tokens += delta
		es.peak += delta
		es.min += delta
		if es.minShortfall != noShortfall {
			es.minShortfall -= delta
		}
		for _, c := range m.ckpts {
			sn := &c.edges[i]
			sn.tokens += delta
			sn.peak += delta
			sn.min += delta
			if sn.minShortfall != noShortfall {
				sn.minShortfall -= delta
			}
		}
	}
	copy(m.ckptTokens, des)
	copy(m.runTokens, des)
	m.ckptNext = s.events + m.ckptEvery
	m.ran = false
	m.resumed = true
	m.resumeTick = s.tick
	return s.events
}
