// Package sim is a discrete-event simulator for Variable-Rate Dataflow
// graphs and the task graphs they model.
//
// It plays the role of the "dataflow simulator" the paper uses in §5 to
// verify that the computed buffer capacities are sufficient to satisfy the
// throughput constraint. Actors follow the VRDF semantics of §3.2: a firing
// is enabled when every input edge holds sufficient tokens for that firing's
// consumption quanta, tokens are consumed atomically at the start, produced
// atomically at the finish (the actor's response time later), and firings of
// one actor never overlap.
//
// Each actor runs in one of two modes. ASAP (self-timed) actors start every
// firing as soon as it is enabled. Periodic actors attempt to start firing k
// exactly at offset + k·period and the simulation fails with an underrun if
// the firing is not enabled at that instant — this is how a throughput
// constraint is checked against concrete buffer capacities.
//
// Time is integer ticks derived from an exact rational TimeBase, so
// simulated schedules are bit-reproducible and free of rounding artefacts.
//
// The engine is built for tight feasibility-search loops: Compile builds all
// index-based state of a run once, Reset rewinds it in O(graph) without
// reallocating, and the event loop itself — a typed binary heap over a
// preallocated []event plus a dirty-actor worklist — performs no heap
// allocation per event. Run is the convenience wrapper for one-shot use.
package sim

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"time"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/quanta"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/vrdf"
)

// Mode selects how an actor's firings are scheduled.
type Mode int

const (
	// ASAP starts each firing as soon as it is enabled (self-timed).
	ASAP Mode = iota
	// Periodic starts firing k exactly at offset + k·period; an
	// un-enabled firing at its scheduled start is an underrun.
	Periodic
)

// ActorConfig configures one actor's scheduling and execution times.
type ActorConfig struct {
	// Mode is ASAP by default.
	Mode Mode
	// Offset is the start time of firing 0 in Periodic mode.
	Offset ratio.Rat
	// Period is the strict period in Periodic mode; must be positive.
	Period ratio.Rat
	// Exec, if non-nil, gives the execution time of firing k; values
	// must be positive and at most the actor's response time ρ (the
	// response time is the worst case) unless Config.AllowOverrun is
	// set. If nil, every firing takes exactly ρ. Every returned value
	// must be representable in the run's time base; list the
	// denominators via Config.ExtraTimes.
	Exec func(k int64) ratio.Rat
	// StartShift, if non-nil, delays the start of firing k by the given
	// non-negative amount beyond its enabling (ASAP mode only). Used by
	// the monotonicity and linearity property tests, which compare
	// shifted schedules.
	StartShift func(k int64) ratio.Rat
}

// EdgeQuanta supplies the per-firing transfer quanta of one edge.
type EdgeQuanta struct {
	// Prod yields the production quantum of the source actor's k-th
	// firing. If nil, the edge's production quanta set must be a
	// singleton and its value is used.
	Prod quanta.Sequence
	// Cons yields the consumption quantum of the destination actor's
	// k-th firing. If nil, the consumption quanta set must be constant.
	Cons quanta.Sequence
}

// Stop tells the engine when a run is complete.
type Stop struct {
	// Actor names the actor whose progress ends the run.
	Actor string
	// Firings is the number of completed firings of Actor after which
	// the run stops. Must be positive.
	Firings int64
}

// Config configures a simulation run.
type Config struct {
	// Graph is the VRDF graph to execute. Initial tokens are taken from
	// the graph's edges.
	Graph *vrdf.Graph
	// Actors holds per-actor overrides; actors without an entry run
	// ASAP with constant execution time ρ.
	Actors map[string]ActorConfig
	// Quanta holds per-edge quanta sequences, keyed by edge name. Edges
	// without an entry must have constant quanta sets on both sides.
	Quanta map[string]EdgeQuanta
	// Stop is the run's completion condition; required.
	Stop Stop
	// MaxEvents bounds the total number of processed events as a runaway
	// guard; 0 means the default of 50 million.
	MaxEvents int64
	// Context, if non-nil, cancels a Run cooperatively: the engine
	// checks it every budgetCheckInterval events and aborts with an
	// error satisfying errors.Is(err, budget.ErrCanceled).
	Context context.Context
	// Deadline, if non-zero, bounds each Run in wall-clock time; the
	// engine checks it alongside Context and aborts with an error
	// satisfying errors.Is(err, budget.ErrBudgetExceeded).
	Deadline time.Time
	// RecordStarts lists actors whose firing start times are collected.
	RecordStarts []string
	// RecordTransfers lists edges whose token transfers are collected
	// (for bound-conservativeness checks and Figure-3 style plots).
	RecordTransfers []string
	// RecordOccupancy lists edges whose token-count timeline is
	// collected: one sample per change, starting with the initial
	// tokens at tick 0.
	RecordOccupancy []string
	// ExtraTimes lists additional rational times that must be exactly
	// representable in the run's time base (e.g. a period used later to
	// post-process recorded start times).
	ExtraTimes []ratio.Rat
	// Invariants lists token-sum invariants checked after every event
	// when CheckInvariants is set: for each entry, the tokens on the
	// named edges must never exceed Max (buffer pairs: data + space
	// tokens never exceed the capacity) and no edge may go negative.
	Invariants []TokenInvariant
	// Validate wraps all sequences so that a value outside the edge's
	// declared quanta set aborts the run with a panic. Costs one set
	// lookup per transfer.
	Validate bool
	// AllowOverrun permits Exec values beyond the actor's worst-case
	// response time ρ — a fault-injection mode. The analyses of the
	// paper assume every firing finishes within ρ, so the engine
	// rejects larger values by default; with AllowOverrun a stalled
	// firing simply finishes late, and a periodic actor whose previous
	// firing is still running at its scheduled start underruns with a
	// structured diagnostic.
	AllowOverrun bool
	// CheckInvariants enables the per-event invariant checks; a
	// violation aborts the run with an error. Costs one pass over the
	// invariants per event.
	CheckInvariants bool
	// LiteResult skips the per-actor and per-edge summary maps of the
	// Result (Fired, Finished, BusyTicks, Edges). Feasibility probes
	// that only read Outcome pay for none of the bookkeeping they never
	// look at; explicitly requested recordings (Starts, Transfers,
	// Occupancy) are still collected.
	LiteResult bool
	// Checkpoints is the number of run snapshots the machine retains for
	// warm-starting (0 disables). With N > 0 slots, Run checkpoints its
	// state every checkpointEvery events into a reusable arena —
	// thinning logarithmically once the slots fill, so the retained
	// checkpoints always span the whole run — and ResetWarm can resume
	// the next run from the newest checkpoint the changed initial tokens
	// cannot have affected, instead of replaying from tick 0.
	// Checkpointing is silently disabled under Validate, CheckInvariants
	// or StartShift (a warm start skips re-executing the prefix, so
	// per-event prefix checks and enabling-time-dependent shifts could
	// diverge from a cold run).
	Checkpoints int
}

// TokenInvariant bounds the token sum of a set of edges.
type TokenInvariant struct {
	// Name identifies the invariant in error messages.
	Name string
	// Edges lists the edge names whose token counts are summed.
	Edges []string
	// Max is the bound the sum must never exceed.
	Max int64
}

// Outcome classifies how a run ended.
type Outcome int

const (
	// Completed: the stop condition was reached.
	Completed Outcome = iota
	// Deadlocked: no actor could make progress before the stop
	// condition was reached.
	Deadlocked
	// Underrun: a periodic actor was not enabled at a scheduled start.
	Underrun
	// LimitExceeded: MaxEvents was hit.
	LimitExceeded
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Completed:
		return "completed"
	case Deadlocked:
		return "deadlocked"
	case Underrun:
		return "underrun"
	case LimitExceeded:
		return "limit-exceeded"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// UnderrunInfo describes a failed periodic start.
type UnderrunInfo struct {
	Actor  string
	Firing int64
	// Tick is the scheduled start time.
	Tick int64
	// Edge is the input edge lacking tokens ("" when the failure is an
	// unfinished previous firing).
	Edge string
	// Have and Need are the token counts on Edge at the failure.
	Have, Need int64
}

func (u *UnderrunInfo) String() string {
	if u.Edge == "" {
		return fmt.Sprintf("actor %s firing %d: previous firing still running at scheduled start tick %d", u.Actor, u.Firing, u.Tick)
	}
	return fmt.Sprintf("actor %s firing %d at tick %d: edge %s has %d tokens, needs %d", u.Actor, u.Firing, u.Tick, u.Edge, u.Have, u.Need)
}

// DeadlockInfo describes a deadlock: which actors were blocked on what.
type DeadlockInfo struct {
	Tick    int64
	Blocked []BlockedActor
}

// BlockedActor names one blocked actor and the first input edge that lacked
// tokens for its next firing.
type BlockedActor struct {
	Actor      string
	Firing     int64
	Edge       string
	Have, Need int64
}

// TransferRec is one recorded atomic token transfer on an edge: cumulative
// token indices [From, To] (1-based) moved at Tick. Produce distinguishes
// production from consumption.
type TransferRec struct {
	From, To int64
	Tick     int64
	Produce  bool
}

// OccupancySample is one point of an edge's token-count timeline: the
// count holds from Tick until the next sample's tick.
type OccupancySample struct {
	Tick   int64
	Tokens int64
}

// EdgeStats summarises one edge over a run.
type EdgeStats struct {
	// Produced and Consumed are cumulative token counts.
	Produced, Consumed int64
	// Peak and Min are the extreme token counts observed (including the
	// initial tokens).
	Peak, Min int64
}

// Result is the outcome of a run.
type Result struct {
	Outcome  Outcome
	Base     TimeBase
	EndTick  int64
	Events   int64
	Fired    map[string]int64
	Finished map[string]int64
	// BusyTicks accumulates each actor's execution time in ticks;
	// BusyTicks[a]/EndTick is the actor's utilisation of its resource.
	BusyTicks map[string]int64
	// Starts holds tick start times per recorded actor.
	Starts map[string][]int64
	// Transfers holds recorded transfers per recorded edge in time
	// order.
	Transfers map[string][]TransferRec
	// Occupancy holds recorded token-count timelines per recorded edge.
	Occupancy map[string][]OccupancySample
	// Edges holds per-edge statistics for every edge.
	Edges map[string]EdgeStats
	// Underrun is set when Outcome == Underrun.
	Underrun *UnderrunInfo
	// Deadlock is set when Outcome == Deadlocked.
	Deadlock *DeadlockInfo
}

const defaultMaxEvents = 50_000_000

// budgetCheckInterval is how often (in processed events) the event loop
// re-checks the run's Context and Deadline. A power of two so the check is
// a mask, not a division; small enough that cancellation is honoured within
// a fraction of a millisecond of simulation work, large enough that the
// time.Now call never shows up in profiles.
const budgetCheckInterval = 4096

// Run executes the configured simulation: Compile plus one (*Machine).Run.
// Callers probing many variants of one graph should Compile once and Reset
// between runs instead.
func Run(cfg Config) (*Result, error) {
	m, err := Compile(cfg)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

type portRef struct {
	edge *edgeState
	seq  quanta.Sequence
}

type actorState struct {
	idx         int
	name        string
	mode        Mode
	rhoTicks    int64
	exec        func(k int64) ratio.Rat
	startShift  func(k int64) ratio.Rat
	offsetT     int64
	baseOffsetT int64 // compiled offset; Reset reverts SetPeriodicOffsetTicks to it
	periodT     int64
	started     int64
	finished    int64
	busyTicks   int64 // accumulated execution time
	busyUntil   int64 // earliest tick the next firing may start
	readyAt     int64 // ASAP with StartShift: tick the armed firing may start
	armedFor    int64 // ASAP with StartShift: firing index the timer is armed for, -1 none
	in          []portRef
	out         []portRef
	record      bool
	starts      []int64
}

type edgeState struct {
	name     string
	initial  int64 // default token count at tick 0
	consumer int   // index of the destination actor
	tokens   int64
	peak     int64
	min      int64
	produced int64
	consumed int64
	// minShortfall is the smallest token deficit any failed enabled()
	// check observed on this edge so far in the run (noShortfall when no
	// check failed). A warm start that adds δ tokens to this edge keeps
	// the replayed prefix bit-identical only when δ < minShortfall: every
	// enabling check that failed must still fail.
	minShortfall int64
	record       bool
	recordOcc    bool
	recs         []TransferRec
	occ          []OccupancySample
}

// noShortfall is the minShortfall sentinel: no enabling check has failed on
// the edge, so a token increase of any size keeps failed checks failed
// (there are none).
const noShortfall = int64(^uint64(0) >> 1)

// sample appends an occupancy sample, merging same-tick updates.
// sample records the edge's occupancy at the given tick, coalescing
// same-tick updates.
//
//vrdf:noalloc
func (es *edgeState) sample(tick int64) {
	if !es.recordOcc {
		return
	}
	if n := len(es.occ); n > 0 && es.occ[n-1].Tick == tick {
		es.occ[n-1].Tokens = es.tokens
		return
	}
	es.occ = append(es.occ, OccupancySample{Tick: tick, Tokens: es.tokens}) //vrdf:allocok(es.occ keeps its capacity across Reset, so steady-state reruns append into retained backing)
}

type eventKind int

const (
	evFinish eventKind = iota
	evPeriodicStart
	evShiftedStart
)

type event struct {
	tick  int64
	kind  eventKind
	actor int
	seq   int64 // tiebreaker for deterministic ordering
}

// eventLess is the total order of the event calendar: time, then kind
// (finishes before starts at equal time), then push order. Total because
// seq is unique, so the pop sequence is independent of heap layout.
//
//vrdf:noalloc
func eventLess(a, b event) bool {
	if a.tick != b.tick {
		return a.tick < b.tick
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.seq < b.seq
}

// eventHeap is a hand-inlined binary min-heap over a preallocated []event.
// Unlike container/heap it moves concrete values — no interface boxing, no
// per-push/per-pop allocation in the steady state.
type eventHeap []event

//vrdf:noalloc
func (h *eventHeap) push(ev event) {
	q := append(*h, ev) //vrdf:allocok(the calendar keeps its capacity across Reset, so steady-state pushes append into retained backing)
	i := len(q) - 1
	//vrdf:unbudgeted(heap sift-up, O-of-log-n in the calendar size)
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

//vrdf:noalloc
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	//vrdf:unbudgeted(heap sift-down, O-of-log-n in the calendar size)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && eventLess(q[r], q[l]) {
			least = r
		}
		if !eventLess(q[least], q[i]) {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	*h = q
	return top
}

// Machine is a compiled simulation: the graph validated, the time base
// resolved and every per-actor/per-edge structure built, ready to run.
// Compile once, then alternate Reset and Run to probe many initial-token
// variants of the same configuration without paying the build cost again —
// results are bit-identical to a fresh Run of the same configuration.
//
// A Machine is not safe for concurrent use; feasibility searches keep one
// per worker.
type Machine struct {
	cfg        Config
	base       TimeBase
	actors     []*actorState
	byName     map[string]*actorState
	edgeList   []*edgeState
	edges      map[string]*edgeState
	eq         eventHeap
	seq        int64
	events     int64
	maxEvents  int64
	stop       *actorState
	bud        *budget.Budget
	invariants []resolvedInvariant
	dirty      []int32 // ASAP actors to re-examine at the current tick
	dirtyIn    []bool
	ran        bool // a Run consumed the state; Reset required
	resumed    bool // next Run resumes from a restored checkpoint

	baseFirings int64   // compiled Stop.Firings; Reset reverts SetStopFirings to it
	runTokens   []int64 // per edgeList index: initial tokens of the pending/current run
	// epoch counts resets. A reset truncates the recording buffers, so a
	// Snapshot from an earlier epoch may reference recording prefixes
	// that no longer exist; Restore rejects it.
	epoch int64

	// Warm-start state (all inert when ckptSlots == 0).
	ckptSlots  int         // retained checkpoint slots; 0 disables
	ckpts      []*Snapshot // checkpoints of the last/current run, ascending by events
	ckptFree   []*Snapshot // retired snapshot arenas for reuse
	ckptEvery  int64       // current checkpoint interval in events
	ckptNext   int64       // event count at which the next checkpoint is taken
	ckptTokens []int64     // initial tokens of the run the checkpoints describe
	desScratch []int64     // ResetWarm scratch: desired tokens of the next run
	ckptStop   int64       // Stop.Firings the checkpoints were taken under
	ckptOffs   []int64     // per-actor offsetT the checkpoints were taken under
	resumeTick int64       // tick of the restored checkpoint
}

type resolvedInvariant struct {
	name  string
	edges []*edgeState
	max   int64
}

// checkInvariants validates the configured token invariants; called after
// every event when enabled.
func (m *Machine) checkInvariants(tick int64) error {
	for _, es := range m.edgeList {
		if es.tokens < 0 {
			return fmt.Errorf("sim: invariant violated at tick %d: edge %s has %d tokens", tick, es.name, es.tokens)
		}
	}
	for _, inv := range m.invariants {
		var sum int64
		for _, es := range inv.edges {
			sum += es.tokens
		}
		if sum > inv.max {
			return fmt.Errorf("sim: invariant %s violated at tick %d: token sum %d exceeds %d", inv.name, tick, sum, inv.max)
		}
	}
	return nil
}

// Compile validates the configuration, resolves the time base and builds
// all index-based simulation state once. The returned Machine is ready to
// Run; call Reset between runs to reuse it.
func Compile(cfg Config) (*Machine, error) {
	g := cfg.Graph
	if g == nil {
		return nil, fmt.Errorf("sim: nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if cfg.Stop.Actor == "" || cfg.Stop.Firings <= 0 {
		return nil, fmt.Errorf("sim: stop condition requires an actor and a positive firing count")
	}
	if g.Actor(cfg.Stop.Actor) == nil {
		return nil, fmt.Errorf("sim: stop actor %q not in graph", cfg.Stop.Actor)
	}

	// Collect every rational time the run will see to build the base.
	times := append([]ratio.Rat(nil), cfg.ExtraTimes...)
	for _, a := range g.Actors() {
		times = append(times, a.Rho)
		if ac, ok := cfg.Actors[a.Name]; ok {
			if ac.Mode == Periodic {
				times = append(times, ac.Offset, ac.Period)
			}
		}
	}
	base, err := NewTimeBase(times...)
	if err != nil {
		return nil, err
	}

	m := &Machine{
		cfg:       cfg,
		base:      base,
		byName:    make(map[string]*actorState),
		edges:     make(map[string]*edgeState),
		maxEvents: cfg.MaxEvents,
		bud:       budget.At(cfg.Context, cfg.Deadline),
	}
	if m.maxEvents <= 0 {
		m.maxEvents = defaultMaxEvents
	}

	recordStart := make(map[string]bool, len(cfg.RecordStarts))
	for _, n := range cfg.RecordStarts {
		if g.Actor(n) == nil {
			return nil, fmt.Errorf("sim: RecordStarts actor %q not in graph", n)
		}
		recordStart[n] = true
	}
	recordEdge := make(map[string]bool, len(cfg.RecordTransfers))
	for _, n := range cfg.RecordTransfers {
		if g.EdgeByName(n) == nil {
			return nil, fmt.Errorf("sim: RecordTransfers edge %q not in graph", n)
		}
		recordEdge[n] = true
	}
	recordOcc := make(map[string]bool, len(cfg.RecordOccupancy))
	for _, n := range cfg.RecordOccupancy {
		if g.EdgeByName(n) == nil {
			return nil, fmt.Errorf("sim: RecordOccupancy edge %q not in graph", n)
		}
		recordOcc[n] = true
	}

	for _, ge := range g.Edges() {
		es := &edgeState{
			name:      ge.Name,
			initial:   ge.Initial,
			record:    recordEdge[ge.Name],
			recordOcc: recordOcc[ge.Name],
		}
		m.edgeList = append(m.edgeList, es)
		m.edges[ge.Name] = es
	}

	for i, ga := range g.Actors() {
		rhoT, err := base.Ticks(ga.Rho)
		if err != nil {
			return nil, fmt.Errorf("sim: actor %s: %w", ga.Name, err)
		}
		as := &actorState{
			idx:      i,
			name:     ga.Name,
			rhoTicks: rhoT,
			record:   recordStart[ga.Name],
			armedFor: -1,
		}
		if ac, ok := cfg.Actors[ga.Name]; ok {
			as.mode = ac.Mode
			as.exec = ac.Exec
			as.startShift = ac.StartShift
			if ac.Mode == Periodic {
				if ac.Period.Sign() <= 0 {
					return nil, fmt.Errorf("sim: periodic actor %s needs a positive period, got %v", ga.Name, ac.Period)
				}
				if ac.Offset.Sign() < 0 {
					return nil, fmt.Errorf("sim: periodic actor %s needs a non-negative offset, got %v", ga.Name, ac.Offset)
				}
				if as.offsetT, err = base.Ticks(ac.Offset); err != nil {
					return nil, fmt.Errorf("sim: actor %s offset: %w", ga.Name, err)
				}
				if as.periodT, err = base.Ticks(ac.Period); err != nil {
					return nil, fmt.Errorf("sim: actor %s period: %w", ga.Name, err)
				}
				if as.startShift != nil {
					return nil, fmt.Errorf("sim: actor %s: StartShift is only valid in ASAP mode", ga.Name)
				}
			}
		}
		as.baseOffsetT = as.offsetT
		m.actors = append(m.actors, as)
		m.byName[ga.Name] = as
	}

	for _, ge := range g.Edges() {
		eq := cfg.Quanta[ge.Name]
		prod := eq.Prod
		if prod == nil {
			if !ge.Prod.IsConstant() {
				return nil, fmt.Errorf("sim: edge %s has variable production quanta %v but no sequence configured", ge.Name, ge.Prod)
			}
			prod = quanta.Constant(ge.Prod.Max())
		}
		cons := eq.Cons
		if cons == nil {
			if !ge.Cons.IsConstant() {
				return nil, fmt.Errorf("sim: edge %s has variable consumption quanta %v but no sequence configured", ge.Name, ge.Cons)
			}
			cons = quanta.Constant(ge.Cons.Max())
		}
		if cfg.Validate {
			prod = quanta.Checked(prod, ge.Prod)
			cons = quanta.Checked(cons, ge.Cons)
		}
		es := m.edges[ge.Name]
		src := m.byName[ge.Src]
		dst := m.byName[ge.Dst]
		es.consumer = dst.idx
		src.out = append(src.out, portRef{edge: es, seq: prod})
		dst.in = append(dst.in, portRef{edge: es, seq: cons})
	}

	if cfg.CheckInvariants {
		for _, inv := range cfg.Invariants {
			ri := resolvedInvariant{name: inv.Name, max: inv.Max}
			for _, name := range inv.Edges {
				es, ok := m.edges[name]
				if !ok {
					return nil, fmt.Errorf("sim: invariant %s references unknown edge %q", inv.Name, name)
				}
				ri.edges = append(ri.edges, es)
			}
			m.invariants = append(m.invariants, ri)
		}
	}

	m.stop = m.byName[cfg.Stop.Actor]
	m.baseFirings = cfg.Stop.Firings
	// The calendar holds at most one finish per actor, one pending
	// periodic attempt per periodic actor and one armed shifted start per
	// shifted actor; preallocate past that so the steady state never
	// grows the backing array.
	m.eq = make(eventHeap, 0, 3*len(m.actors)+8)
	m.dirty = make([]int32, 0, len(m.actors))
	m.dirtyIn = make([]bool, len(m.actors))
	m.runTokens = make([]int64, len(m.edgeList))
	if cfg.Checkpoints < 0 {
		return nil, fmt.Errorf("sim: negative checkpoint count %d", cfg.Checkpoints)
	}
	m.ckptSlots = cfg.Checkpoints
	if cfg.Validate || cfg.CheckInvariants {
		// A cold run evaluates per-event checks over the whole prefix a
		// warm start would skip; keep runs bit-identical by never warm
		// starting under them.
		m.ckptSlots = 0
	}
	for _, a := range m.actors {
		if a.startShift != nil {
			// Shifted starts arm timers at enabling time, which a token
			// change can move without changing any replayed token state.
			m.ckptSlots = 0
		}
	}
	if m.ckptSlots > 0 {
		m.ckptTokens = make([]int64, len(m.edgeList))
		m.desScratch = make([]int64, len(m.edgeList))
	}
	if err := m.Reset(nil); err != nil {
		return nil, err
	}
	return m, nil
}

// Base returns the machine's resolved time base.
func (m *Machine) Base() TimeBase { return m.base }

// setInvariantMax repoints the bound of a named token invariant, if it was
// compiled in (invariants are only resolved under CheckInvariants). The
// verifier uses this to keep buffer invariants in step with per-probe
// capacity overrides.
func (m *Machine) setInvariantMax(name string, max int64) {
	for i := range m.invariants {
		if m.invariants[i].name == name {
			m.invariants[i].max = max
		}
	}
}

// Reset rewinds the machine to tick 0 so it can Run again, restoring the
// exact state Compile left it in plus the given overrides: initialTokens
// optionally overrides the initial token count of the named edges for the
// next run (capacity probes override the space edges); edges without an
// entry revert to the graph's initial tokens; the SetStopFirings and
// SetPeriodicOffsetTicks overrides revert to the compiled configuration;
// the retained checkpoints of the previous run are discarded. No compiled
// structure is rebuilt and no per-edge state is reallocated.
//
// ResetWarm is the variant that keeps the knob overrides and the
// checkpoints, so the next run can resume mid-schedule.
func (m *Machine) Reset(initialTokens map[string]int64) error {
	m.cfg.Stop.Firings = m.baseFirings
	for _, a := range m.actors {
		a.offsetT = a.baseOffsetT
	}
	return m.resetTokens(initialTokens)
}

// resetTokens rewinds all per-run state (tokens, counters, recordings, the
// event calendar) without touching the SetStopFirings and
// SetPeriodicOffsetTicks overrides. It invalidates the retained
// checkpoints: they describe a run whose recordings are truncated here.
func (m *Machine) resetTokens(initialTokens map[string]int64) error {
	for name := range initialTokens {
		if _, ok := m.edges[name]; !ok {
			return fmt.Errorf("sim: Reset: unknown edge %q", name)
		}
	}
	for i, es := range m.edgeList {
		tok := es.initial
		if v, ok := initialTokens[es.name]; ok {
			if v < 0 {
				return fmt.Errorf("sim: Reset: edge %q: negative initial tokens %d", es.name, v)
			}
			tok = v
		}
		es.tokens = tok
		es.peak = tok
		es.min = tok
		es.produced = 0
		es.consumed = 0
		es.minShortfall = noShortfall
		es.recs = es.recs[:0]
		es.occ = es.occ[:0]
		es.sample(0)
		m.runTokens[i] = tok
	}
	for _, a := range m.actors {
		a.started = 0
		a.finished = 0
		a.busyTicks = 0
		a.busyUntil = 0
		a.readyAt = 0
		a.armedFor = -1
		a.starts = a.starts[:0]
	}
	m.eq = m.eq[:0]
	m.seq = 0
	m.events = 0
	m.dirty = m.dirty[:0]
	for i := range m.dirtyIn {
		m.dirtyIn[i] = false
	}
	m.ran = false
	m.resumed = false
	m.epoch++
	m.dropCheckpoints(0)
	return nil
}

// SetPeriodicOffsetTicks repoints the start offset of a compiled Periodic
// actor, in ticks of the machine's time base. It takes effect at the next
// Run; Reset reverts it to the compiled offset, ResetWarm keeps it. The
// throughput verifier uses this to try several offsets on one compiled
// machine.
func (m *Machine) SetPeriodicOffsetTicks(actor string, ticks int64) error {
	a := m.byName[actor]
	if a == nil {
		return fmt.Errorf("sim: SetPeriodicOffsetTicks: unknown actor %q", actor)
	}
	if a.mode != Periodic {
		return fmt.Errorf("sim: SetPeriodicOffsetTicks: actor %q is not periodic", actor)
	}
	if ticks < 0 {
		return fmt.Errorf("sim: SetPeriodicOffsetTicks: negative offset %d", ticks)
	}
	a.offsetT = ticks
	return nil
}

// SetStopFirings repoints the completion firing count of the machine's stop
// actor. It takes effect at the next Run; Reset reverts it to the compiled
// count, ResetWarm keeps it. The exact-witness replayer uses this to replay
// differently sized witnesses on one compiled machine.
func (m *Machine) SetStopFirings(firings int64) error {
	if firings <= 0 {
		return fmt.Errorf("sim: SetStopFirings: firings must be positive, got %d", firings)
	}
	m.cfg.Stop.Firings = firings
	return nil
}

//vrdf:noalloc
func (m *Machine) push(ev event) {
	ev.seq = m.seq
	m.seq++
	m.eq.push(ev)
}

// markDirty queues an ASAP actor for a start attempt at the current tick.
//
//vrdf:noalloc
func (m *Machine) markDirty(idx int) {
	if m.actors[idx].mode != ASAP || m.dirtyIn[idx] {
		return
	}
	m.dirtyIn[idx] = true
	m.dirty = append(m.dirty, int32(idx)) //vrdf:allocok(m.dirty is bounded by the actor count and keeps its capacity across Reset)
}

// enabled reports whether actor a's next firing has sufficient tokens on
// every input edge, returning the first lacking edge otherwise.
//
//vrdf:noalloc
func (a *actorState) enabled() (ok bool, lacking *portRef, need int64) {
	k := a.started
	for i := range a.in {
		p := &a.in[i]
		n := p.seq.At(k)
		if p.edge.tokens < n {
			return false, p, n
		}
	}
	return true, nil, 0
}

// start begins actor a's next firing at tick t: consumes input tokens and
// schedules the finish event.
func (m *Machine) start(a *actorState, t int64) error {
	k := a.started
	for i := range a.in {
		p := &a.in[i]
		n := p.seq.At(k)
		if n > 0 {
			p.edge.consumed += n
			if p.edge.record {
				p.edge.recs = append(p.edge.recs, TransferRec{
					From: p.edge.consumed - n + 1, To: p.edge.consumed, Tick: t, Produce: false,
				})
			}
			p.edge.tokens -= n
			if p.edge.tokens < p.edge.min {
				p.edge.min = p.edge.tokens
			}
			p.edge.sample(t)
		}
	}
	execT := a.rhoTicks
	if a.exec != nil {
		et, err := m.base.Ticks(a.exec(k))
		if err != nil {
			return fmt.Errorf("sim: actor %s firing %d execution time: %w", a.name, k, err)
		}
		if et <= 0 {
			return fmt.Errorf("sim: actor %s firing %d execution time %d ticks outside (0, ρ=%d]", a.name, k, et, a.rhoTicks)
		}
		if et > a.rhoTicks && !m.cfg.AllowOverrun {
			return fmt.Errorf("sim: actor %s firing %d execution time %d ticks outside (0, ρ=%d] (set Config.AllowOverrun to inject overrun stalls)", a.name, k, et, a.rhoTicks)
		}
		execT = et
	}
	a.started++
	a.busyUntil = t + execT
	a.busyTicks += execT
	if a.record {
		a.starts = append(a.starts, t)
	}
	m.push(event{tick: t + execT, kind: evFinish, actor: a.idx})
	return nil
}

// finish completes actor a's oldest running firing at tick t: produces
// output tokens and queues the actors this may enable — the consumers of
// the edges that received tokens, plus a itself, now free to start again.
//vrdf:noalloc
func (m *Machine) finish(a *actorState, t int64) {
	k := a.finished
	for i := range a.out {
		p := &a.out[i]
		n := p.seq.At(k)
		if n > 0 {
			p.edge.tokens += n
			p.edge.produced += n
			if p.edge.record {
				//vrdf:allocok(p.edge.recs keeps its capacity across Reset, so steady-state reruns append into retained backing)
				p.edge.recs = append(p.edge.recs, TransferRec{
					From: p.edge.produced - n + 1, To: p.edge.produced, Tick: t, Produce: true,
				})
			}
			if p.edge.tokens > p.edge.peak {
				p.edge.peak = p.edge.tokens
			}
			p.edge.sample(t)
			m.markDirty(p.edge.consumer)
		}
	}
	a.finished++
	m.markDirty(a.idx)
}

// startDirty starts every queued ASAP actor that is enabled at tick t, in
// actor-index order — the same order as the full fixpoint scan it replaces.
// One ordered pass suffices: production happens only at finish, so a start
// at t can disable but never enable a peer at t, and an actor can only have
// become startable through an event that marked it dirty (its own finish, a
// token arrival on an input edge, or an armed shifted start expiring).
func (m *Machine) startDirty(t int64) error {
	if len(m.dirty) == 0 {
		return nil
	}
	slices.Sort(m.dirty)
	for n := 0; n < len(m.dirty); n++ {
		idx := m.dirty[n]
		m.dirtyIn[idx] = false
		a := m.actors[idx]
		//vrdf:unbudgeted(each firing consumes tokens or advances busyUntil, so the start cascade is bounded; Run budgets the surrounding event loop)
		for a.busyUntil <= t {
			ok, p, need := a.enabled()
			if !ok {
				// Remember how far the failing edge was from enabling;
				// warm starts must not add enough tokens to flip a
				// replayed failure into a start.
				if sh := need - p.edge.tokens; sh < p.edge.minShortfall {
					p.edge.minShortfall = sh
				}
				break
			}
			if a.startShift != nil {
				if a.armedFor == a.started {
					// Timer armed for this firing; wait for it.
					if a.readyAt > t {
						break
					}
				} else {
					// First time this firing is enabled: apply the
					// shift once, measured from the enabling time.
					d := a.startShift(a.started)
					if d.Sign() < 0 {
						return fmt.Errorf("sim: actor %s: negative start shift %v", a.name, d)
					}
					dt, err := m.base.Ticks(d)
					if err != nil {
						return fmt.Errorf("sim: actor %s start shift: %w", a.name, err)
					}
					if dt > 0 {
						a.armedFor = a.started
						a.readyAt = t + dt
						m.push(event{tick: a.readyAt, kind: evShiftedStart, actor: a.idx})
						break
					}
				}
			}
			if err := m.start(a, t); err != nil {
				return err
			}
		}
	}
	m.dirty = m.dirty[:0]
	return nil
}

// Run executes the machine from its reset state to completion. After a run
// the machine must be Reset (or ResetWarm) before running again. A run
// resumed from a ResetWarm checkpoint continues mid-schedule and produces
// results bit-identical to a cold run of the same configuration, with
// Result.Events still counting from tick 0 (replayed prefix included).
func (m *Machine) Run() (*Result, error) {
	if m.ran {
		return nil, fmt.Errorf("sim: Machine.Run called again without Reset")
	}
	m.ran = true
	res := &Result{Base: m.base}

	now := int64(0)
	if m.resumed {
		// State, calendar and counters were restored by ResetWarm; the
		// seeding below already happened in the replayed prefix.
		m.resumed = false
		now = m.resumeTick
	} else {
		if m.ckptSlots > 0 {
			m.beginCheckpoints()
		}
		// Seed periodic actors' first start attempts, and give every ASAP
		// actor its initial start attempt at tick 0.
		for _, a := range m.actors {
			if a.mode == Periodic {
				m.push(event{tick: a.offsetT, kind: evPeriodicStart, actor: a.idx})
			} else {
				m.markDirty(a.idx)
			}
		}
		if err := m.startDirty(0); err != nil {
			return nil, err
		}
	}
	for len(m.eq) > 0 && m.stop.finished < m.cfg.Stop.Firings {
		if m.events >= m.maxEvents {
			res.Outcome = LimitExceeded
			m.fill(res, now)
			return res, nil
		}
		if m.bud != nil && m.events&(budgetCheckInterval-1) == 0 {
			if err := m.bud.Err(); err != nil {
				return nil, fmt.Errorf("sim: run aborted after %d events at tick %d: %w", m.events, now, err)
			}
		}
		ev := m.eq.pop()
		m.events++
		now = ev.tick
		a := m.actors[ev.actor]
		switch ev.kind {
		case evFinish:
			m.finish(a, now)
			if a == m.stop && a.finished >= m.cfg.Stop.Firings {
				// Stop immediately so no further firing starts at
				// this tick; counts reflect exactly the requested
				// horizon.
				continue
			}
		case evShiftedStart:
			// Handled by the dirty scan below, which sees
			// readyAt <= now.
			m.markDirty(ev.actor)
		case evPeriodicStart:
			k := a.started
			schedTick := a.offsetT + k*a.periodT
			if schedTick != now {
				// A stale attempt (actor already started this firing
				// through some earlier path); ignore.
				break
			}
			if a.busyUntil > now {
				res.Outcome = Underrun
				res.Underrun = &UnderrunInfo{Actor: a.name, Firing: k, Tick: now}
				m.fill(res, now)
				return res, nil
			}
			if ok, p, need := a.enabled(); !ok {
				res.Outcome = Underrun
				res.Underrun = &UnderrunInfo{
					Actor: a.name, Firing: k, Tick: now,
					Edge: p.edge.name, Have: p.edge.tokens, Need: need,
				}
				m.fill(res, now)
				return res, nil
			}
			if err := m.start(a, now); err != nil {
				return nil, err
			}
			if a.started < m.cfg.Stop.Firings || a != m.stop {
				m.push(event{tick: a.offsetT + a.started*a.periodT, kind: evPeriodicStart, actor: a.idx})
			}
		}
		if m.cfg.CheckInvariants {
			if err := m.checkInvariants(now); err != nil {
				return nil, err
			}
		}
		// Drain all events at the same tick so token releases at `now`
		// are visible before ASAP starts at `now`.
		if len(m.eq) > 0 && m.eq[0].tick == now {
			continue
		}
		if err := m.startDirty(now); err != nil {
			return nil, err
		}
		// Checkpoint at quiescent points only: every same-tick event is
		// drained and the dirty list is empty, so the snapshot is a state
		// a cold run passes through between ticks.
		if m.ckptSlots > 0 && m.events >= m.ckptNext {
			m.takeCheckpoint(now)
		}
	}

	if m.stop.finished >= m.cfg.Stop.Firings {
		res.Outcome = Completed
	} else {
		res.Outcome = Deadlocked
		dl := &DeadlockInfo{Tick: now}
		for _, a := range m.actors {
			if ok, p, need := a.enabled(); !ok {
				dl.Blocked = append(dl.Blocked, BlockedActor{
					Actor: a.name, Firing: a.started,
					Edge: p.edge.name, Have: p.edge.tokens, Need: need,
				})
			}
		}
		sort.Slice(dl.Blocked, func(i, j int) bool { return dl.Blocked[i].Actor < dl.Blocked[j].Actor })
		res.Deadlock = dl
	}
	m.fill(res, now)
	return res, nil
}

// fill copies machine state into the result. Recorded series are copied,
// never aliased, so a Result stays valid after the machine is Reset and
// reused. Under Config.LiteResult the unconditional summary maps are
// skipped.
func (m *Machine) fill(res *Result, now int64) {
	res.EndTick = now
	res.Events = m.events
	lite := m.cfg.LiteResult
	if !lite {
		res.Fired = make(map[string]int64, len(m.actors))
		res.Finished = make(map[string]int64, len(m.actors))
		res.BusyTicks = make(map[string]int64, len(m.actors))
		res.Starts = make(map[string][]int64)
		res.Transfers = make(map[string][]TransferRec)
		res.Occupancy = make(map[string][]OccupancySample)
		res.Edges = make(map[string]EdgeStats, len(m.edgeList))
	}
	for _, a := range m.actors {
		if !lite {
			res.Fired[a.name] = a.started
			res.Finished[a.name] = a.finished
			res.BusyTicks[a.name] = a.busyTicks
		}
		if a.record {
			if res.Starts == nil {
				res.Starts = make(map[string][]int64)
			}
			res.Starts[a.name] = append([]int64(nil), a.starts...)
		}
	}
	for _, es := range m.edgeList {
		if !lite {
			res.Edges[es.name] = EdgeStats{
				Produced: es.produced,
				Consumed: es.consumed,
				Peak:     es.peak,
				Min:      es.min,
			}
		}
		if es.record {
			if res.Transfers == nil {
				res.Transfers = make(map[string][]TransferRec)
			}
			res.Transfers[es.name] = append([]TransferRec(nil), es.recs...)
		}
		if es.recordOcc {
			if res.Occupancy == nil {
				res.Occupancy = make(map[string][]OccupancySample)
			}
			res.Occupancy[es.name] = append([]OccupancySample(nil), es.occ...)
		}
	}
}
