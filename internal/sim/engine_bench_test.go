package sim

import (
	"testing"

	"vrdfcap/internal/quanta"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

// benchPairConfig builds the Figure 1 pair at capacity 7 under the
// alternating 2,3 stream, stopping after the given consumer firings.
func benchPairConfig(b *testing.B, firings int64, lite bool) Config {
	b.Helper()
	g, err := taskgraph.Pair("wa", ratio.MustNew(1, 1), "wb", ratio.MustNew(1, 1),
		taskgraph.MustQuanta(3), taskgraph.MustQuanta(2, 3))
	if err != nil {
		b.Fatal(err)
	}
	g.Buffers()[0].Capacity = 7
	cfg, _, err := TaskGraphConfig(g, Workloads{"wa->wb": {Cons: quanta.Cycle(2, 3)}})
	if err != nil {
		b.Fatal(err)
	}
	cfg.Stop = Stop{Actor: "wb", Firings: firings}
	cfg.LiteResult = lite
	return cfg
}

// BenchmarkFreshRun measures the one-shot path: compile and simulate per
// operation, full Result.
func BenchmarkFreshRun(b *testing.B) {
	cfg := benchPairConfig(b, 500, false)
	var events int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Outcome != Completed {
			b.Fatalf("outcome %v", res.Outcome)
		}
		events += res.Events
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
	}
}

// BenchmarkReusedMachineRun measures the steady-state probe loop the
// capacity search runs: Reset and Run on one compiled machine with a lite
// result. The allocations per operation come from the Result struct alone;
// the event loop itself is allocation-free.
func BenchmarkReusedMachineRun(b *testing.B) {
	cfg := benchPairConfig(b, 500, true)
	m, err := Compile(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var events int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Reset(nil); err != nil {
			b.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Outcome != Completed {
			b.Fatalf("outcome %v", res.Outcome)
		}
		events += res.Events
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}
