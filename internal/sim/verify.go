package sim

import (
	"context"
	"fmt"
	"time"

	"vrdfcap/internal/quanta"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
	"vrdfcap/internal/vrdf"
)

// Workload supplies the per-firing transfer quanta of one buffer: Prod for
// the producing task's executions, Cons for the consuming task's. A nil
// sequence is allowed when the corresponding quanta set is constant.
type Workload struct {
	Prod quanta.Sequence
	Cons quanta.Sequence
}

// Workloads maps buffer names to their workloads.
type Workloads map[string]Workload

// UniformWorkloads draws every variable quanta set uniformly at random
// (deterministically from seed); constant sets use their single value.
func UniformWorkloads(tg *taskgraph.Graph, seed int64) Workloads {
	w := make(Workloads)
	for i, b := range tg.Buffers() {
		var wl Workload
		if !b.Prod.IsConstant() {
			wl.Prod = quanta.Uniform(b.Prod, seed+int64(i)*2)
		}
		if !b.Cons.IsConstant() {
			wl.Cons = quanta.Uniform(b.Cons, seed+int64(i)*2+1)
		}
		w[b.DefaultName()] = wl
	}
	return w
}

// Adversary names a deterministic workload pattern used for stress
// verification.
type Adversary int

const (
	// AdversaryMin transfers the minimum quantum in every firing (the
	// "n equals two in every execution" case of the motivating example).
	AdversaryMin Adversary = iota
	// AdversaryMax transfers the maximum quantum in every firing.
	AdversaryMax
	// AdversaryAlternate alternates minimum and maximum.
	AdversaryAlternate
)

// String names the adversary.
func (a Adversary) String() string {
	switch a {
	case AdversaryMin:
		return "min"
	case AdversaryMax:
		return "max"
	case AdversaryAlternate:
		return "alternate"
	default:
		return fmt.Sprintf("Adversary(%d)", int(a))
	}
}

// Adversaries lists all adversarial patterns.
var Adversaries = []Adversary{AdversaryMin, AdversaryMax, AdversaryAlternate}

// AdversarialWorkloads builds the named deterministic workload for every
// buffer with variable quanta.
func AdversarialWorkloads(tg *taskgraph.Graph, adv Adversary) Workloads {
	pick := func(set taskgraph.QuantaSet) quanta.Sequence {
		switch adv {
		case AdversaryMin:
			return quanta.MinOf(set)
		case AdversaryMax:
			return quanta.MaxOf(set)
		default:
			return quanta.AlternateMinMax(set)
		}
	}
	w := make(Workloads)
	for _, b := range tg.Buffers() {
		var wl Workload
		if !b.Prod.IsConstant() {
			wl.Prod = pick(b.Prod)
		}
		if !b.Cons.IsConstant() {
			wl.Cons = pick(b.Cons)
		}
		w[b.DefaultName()] = wl
	}
	return w
}

// TaskGraphConfig builds a simulation Config for a sized task graph: the
// VRDF construction of §3.3 with the buffer workloads wired to both edges of
// each pair (a task's production on the data edge and its space consumption
// are the same quantum, and symmetrically for the consumer).
//
// Every buffer must have a positive capacity; run the capacity analysis (or
// choose capacities) first.
func TaskGraphConfig(tg *taskgraph.Graph, w Workloads) (Config, *vrdf.Mapping, error) {
	for _, b := range tg.Buffers() {
		if b.Capacity <= 0 {
			return Config{}, nil, fmt.Errorf("sim: buffer %s has capacity %d; size the graph before simulating", b.DefaultName(), b.Capacity)
		}
	}
	g, m, err := vrdf.FromTaskGraph(tg)
	if err != nil {
		return Config{}, nil, err
	}
	cfg := Config{
		Graph:  g,
		Quanta: make(map[string]EdgeQuanta, len(g.Edges())),
	}
	for _, p := range m.Pairs {
		wl := w[p.Buffer]
		cfg.Quanta[p.Data] = EdgeQuanta{Prod: wl.Prod, Cons: wl.Cons}
		cfg.Quanta[p.Space] = EdgeQuanta{Prod: wl.Cons, Cons: wl.Prod}
		// Tokens on the data and space edges of one buffer can never
		// exceed its capacity (some containers may additionally be
		// held by in-flight firings). Registered for use with
		// Config.CheckInvariants.
		cfg.Invariants = append(cfg.Invariants, TokenInvariant{
			Name:  "buffer " + p.Buffer,
			Edges: []string{p.Data, p.Space},
			Max:   tg.BufferByName(p.Buffer).Capacity,
		})
	}
	return cfg, m, nil
}

// Verification is the outcome of VerifyThroughput.
type Verification struct {
	// OK reports whether the strictly periodic schedule ran to the
	// requested horizon without underrun.
	OK bool
	// Reason explains a failure in one line.
	Reason string
	// Underrun carries the structured diagnostic of the failing phase
	// when the failure was a missed periodic start: which actor, which
	// firing, at what tick, and which edge lacked how many tokens. Nil
	// on success and for non-underrun failures.
	Underrun *UnderrunInfo
	// Deadlock carries the structured diagnostic when a phase
	// deadlocked: the tick and every blocked actor with the edge it
	// starved on. Nil on success and for non-deadlock failures.
	Deadlock *DeadlockInfo
	// OffsetTicks and Offset give the start offset used for the
	// periodic phase: the smallest offset that dominates the observed
	// self-timed schedule.
	OffsetTicks int64
	Offset      ratio.Rat
	// SelfTimed and Periodic are the raw results of the two phases;
	// Periodic is the last periodic attempt and nil when the self-timed
	// phase already failed.
	SelfTimed *Result
	Periodic  *Result
	// Attempts counts the periodic-phase offsets tried.
	Attempts int
}

// VerifyOptions tunes VerifyThroughput.
type VerifyOptions struct {
	// Firings is the number of constrained-task firings to verify
	// (default 1000).
	Firings int64
	// Workloads supplies buffer quanta; buffers with variable quanta
	// and no workload entry are an error.
	Workloads Workloads
	// MaxEvents caps each phase (0 = engine default).
	MaxEvents int64
	// RecordTransfers is passed through to both phases.
	RecordTransfers []string
	// Offsets lists candidate periodic start offsets tried before the
	// automatically derived ones — e.g. the analytic offset from
	// capacity.Anchored. Each must be non-negative and representable in
	// the run's time base.
	Offsets []ratio.Rat
	// Exec optionally supplies per-task execution-time models (values in
	// (0, ρ]); tasks without an entry take exactly ρ per firing. List
	// the values' denominators in ExtraTimes.
	Exec map[string]func(k int64) ratio.Rat
	// ExtraTimes extends the run's time base (needed for Exec values and
	// custom offsets with new denominators).
	ExtraTimes []ratio.Rat
	// LiteResult skips the per-actor/per-edge summary maps of the phase
	// Results (see Config.LiteResult); feasibility probes that only read
	// Verification.OK don't pay for them.
	LiteResult bool
	// AllowOverrun passes through to Config.AllowOverrun: Exec values
	// beyond ρ are simulated as late finishes instead of rejected —
	// fault injection for measuring how much overrun a sizing absorbs.
	AllowOverrun bool
	// Validate enables per-transfer quanta-set checking.
	Validate bool
	// Context, if non-nil, cancels the verification cooperatively (see
	// Config.Context); the typed error satisfies budget.ErrCanceled.
	Context context.Context
	// Deadline, if non-zero, bounds the verification in wall-clock time
	// (see Config.Deadline); the typed error satisfies
	// budget.ErrBudgetExceeded.
	Deadline time.Time
	// Checkpoints enables warm-started probing on both phase machines:
	// each retains up to this many run checkpoints (Config.Checkpoints)
	// and Verify resumes a phase from the newest checkpoint the changed
	// capacities cannot have affected instead of replaying from tick 0.
	// Results are bit-identical either way; LastEffort reports how much
	// re-simulation each Verify actually skipped. 0 disables.
	Checkpoints int
}

// Verifier is a compiled throughput verification: both simulation phases —
// self-timed and strictly periodic — built once and reusable across
// capacity assignments. Capacity searches compile one Verifier per worker
// and call Verify with a fresh capacity vector per probe; each probe only
// resets token counts and counters instead of re-validating and rebuilding
// the graph.
//
// A Verifier is not safe for concurrent use.
type Verifier struct {
	c           taskgraph.Constraint
	firings     int64
	mapping     *vrdf.Mapping
	tg          *taskgraph.Graph
	selfTimed   *Machine
	periodic    *Machine
	periodTicks int64
	// fixedOffsets holds opts.Offsets converted to ticks, tried before
	// the offsets derived from the self-timed schedule.
	fixedOffsets []int64
	// Effort counters of the most recent Verify (see LastEffort).
	lastSim     int64
	lastResumed int64
	lastWarm    int
	lastCold    int
}

// LastEffort reports the simulation effort of the most recent Verify call:
// events actually executed across all phase runs, events skipped by
// resuming phases from checkpoints, and how many phase resets were warm
// (resumed) versus cold (replayed from tick 0). All zeros before the first
// Verify; without VerifyOptions.Checkpoints every reset is cold.
func (vf *Verifier) LastEffort() (simulated, resumedEvents int64, warm, cold int) {
	return vf.lastSim, vf.lastResumed, vf.lastWarm, vf.lastCold
}

// noteRun accumulates one phase run's effort into the Verify counters.
func (vf *Verifier) noteRun(totalEvents, resumed int64) {
	vf.lastSim += totalEvents - resumed
	vf.lastResumed += resumed
	if resumed > 0 {
		vf.lastWarm++
	} else {
		vf.lastCold++
	}
}

// CompileVerifier validates the constraint and builds both phases of the
// throughput check once. The graph must be fully sized; Verify(caps) can
// override buffer capacities per probe without recompiling.
func CompileVerifier(tg *taskgraph.Graph, c taskgraph.Constraint, opts VerifyOptions) (*Verifier, error) {
	if err := c.Validate(tg); err != nil {
		return nil, err
	}
	firings := opts.Firings
	if firings <= 0 {
		firings = 1000
	}
	cfg, mapping, err := TaskGraphConfig(tg, opts.Workloads)
	if err != nil {
		return nil, err
	}
	cfg.Stop = Stop{Actor: c.Task, Firings: firings}
	cfg.Validate = opts.Validate
	cfg.CheckInvariants = opts.Validate
	cfg.MaxEvents = opts.MaxEvents
	cfg.RecordStarts = []string{c.Task}
	cfg.RecordTransfers = opts.RecordTransfers
	cfg.LiteResult = opts.LiteResult
	cfg.AllowOverrun = opts.AllowOverrun
	cfg.Context = opts.Context
	cfg.Deadline = opts.Deadline
	cfg.Checkpoints = opts.Checkpoints
	cfg.ExtraTimes = append([]ratio.Rat{c.Period}, opts.Offsets...)
	cfg.ExtraTimes = append(cfg.ExtraTimes, opts.ExtraTimes...)
	if len(opts.Exec) > 0 {
		cfg.Actors = make(map[string]ActorConfig, len(opts.Exec))
		for task, fn := range opts.Exec {
			if tg.Task(task) == nil {
				return nil, fmt.Errorf("sim: Exec model for unknown task %q", task)
			}
			cfg.Actors[task] = ActorConfig{Exec: fn}
		}
	}

	selfTimed, err := Compile(cfg)
	if err != nil {
		return nil, err
	}

	pcfg := cfg
	pcfg.Actors = make(map[string]ActorConfig, len(cfg.Actors)+1)
	for k, ac := range cfg.Actors {
		pcfg.Actors[k] = ac
	}
	// The offset is repointed per attempt via SetPeriodicOffsetTicks;
	// compile with the placeholder 0.
	constrained := ActorConfig{Mode: Periodic, Offset: ratio.MustNew(0, 1), Period: c.Period}
	if prev, ok := cfg.Actors[c.Task]; ok {
		constrained.Exec = prev.Exec
	}
	pcfg.Actors[c.Task] = constrained
	periodic, err := Compile(pcfg)
	if err != nil {
		return nil, err
	}
	// Both configs list the same rational times (the placeholder offset
	// is integral), so the phases share one time base by construction.
	if selfTimed.Base() != periodic.Base() {
		return nil, fmt.Errorf("sim: internal error: phase time bases differ (%v vs %v)", selfTimed.Base(), periodic.Base())
	}

	periodTicks, err := selfTimed.Base().Ticks(c.Period)
	if err != nil {
		return nil, fmt.Errorf("sim: period not representable: %w", err)
	}
	vf := &Verifier{
		c:           c,
		firings:     firings,
		mapping:     mapping,
		tg:          tg,
		selfTimed:   selfTimed,
		periodic:    periodic,
		periodTicks: periodTicks,
	}
	for _, o := range opts.Offsets {
		t, err := selfTimed.Base().Ticks(o)
		if err != nil {
			return nil, fmt.Errorf("sim: candidate offset %v: %w (list its denominator in the graph's times)", o, err)
		}
		if t < 0 {
			return nil, fmt.Errorf("sim: candidate offset %v is negative", o)
		}
		vf.fixedOffsets = append(vf.fixedOffsets, t)
	}
	return vf, nil
}

// overrides translates a capacity assignment into the space-edge
// initial-token overrides of the next runs and repoints the buffer
// invariants' bounds. Buffers without an entry keep their compiled
// capacity.
func (vf *Verifier) overrides(caps map[string]int64) (map[string]int64, error) {
	if len(caps) == 0 {
		return nil, nil
	}
	ov := make(map[string]int64, len(caps))
	for name, c := range caps {
		b := vf.tg.BufferByName(name)
		if b == nil {
			return nil, fmt.Errorf("sim: Verify: unknown buffer %q", name)
		}
		if c <= 0 {
			return nil, fmt.Errorf("sim: Verify: buffer %s capacity %d must be positive", name, c)
		}
		pair, ok := vf.mapping.Pair(b.DefaultName())
		if !ok {
			return nil, fmt.Errorf("sim: Verify: buffer %q has no edge pair", name)
		}
		ov[pair.Space] = c
		vf.selfTimed.setInvariantMax("buffer "+pair.Buffer, c)
		vf.periodic.setInvariantMax("buffer "+pair.Buffer, c)
	}
	return ov, nil
}

// Verify runs both phases for one capacity assignment: buffers named in
// caps take that capacity (a space-edge initial-token override on the
// compiled machines), all others keep the capacity they were compiled
// with. Verify(nil) checks the graph as compiled. Results are bit-identical
// to VerifyThroughput on an equivalently sized graph.
func (vf *Verifier) Verify(caps map[string]int64) (*Verification, error) {
	ov, err := vf.overrides(caps)
	if err != nil {
		return nil, err
	}
	vf.lastSim, vf.lastResumed, vf.lastWarm, vf.lastCold = 0, 0, 0, 0
	// ResetWarm resumes the phase from a retained checkpoint when the
	// capacity change provably cannot affect the replayed prefix; with
	// checkpointing disabled it is a plain cold reset. Either way it
	// must not revert the per-attempt knob overrides, so the periodic
	// phase below sets its offset first and resets after.
	resumed, err := vf.selfTimed.ResetWarm(ov)
	if err != nil {
		return nil, err
	}
	selfTimed, err := vf.selfTimed.Run()
	if err != nil {
		return nil, err
	}
	vf.noteRun(selfTimed.Events, resumed)
	v := &Verification{SelfTimed: selfTimed}
	if selfTimed.Outcome != Completed {
		v.Reason = fmt.Sprintf("self-timed phase %s", selfTimed.Outcome)
		if selfTimed.Deadlock != nil {
			v.Reason += fmt.Sprintf(" at tick %d", selfTimed.Deadlock.Tick)
		}
		v.Underrun = selfTimed.Underrun
		v.Deadlock = selfTimed.Deadlock
		return v, nil
	}

	starts := selfTimed.Starts[vf.c.Task]
	base := MaxLateness(starts, vf.periodTicks)

	// The throughput guarantee is existential in the offset: a periodic
	// schedule with *some* offset must exist. Try caller-supplied
	// offsets (e.g. the analytic anchoring) first, then the smallest
	// offset that dominates the self-timed schedule, then grow the
	// slack; a sizing that underruns even with generous slack is
	// insufficient.
	offsetTicks := append([]int64(nil), vf.fixedOffsets...)
	for _, slack := range []int64{0, 1, 10, 100} {
		offsetTicks = append(offsetTicks, base+slack*vf.periodTicks)
	}
	//vrdf:unbudgeted(at most len fixedOffsets plus four attempts; each Run enforces the machine budget)
	for _, ot := range offsetTicks {
		v.Attempts++
		v.OffsetTicks = ot
		v.Offset = vf.selfTimed.Base().Rat(ot)

		//vrdf:reuseok(the override is deliberately committed to the resumed run by ResetWarm below; Verify re-points it on every attempt)
		if err := vf.periodic.SetPeriodicOffsetTicks(vf.c.Task, ot); err != nil {
			return nil, err
		}
		resumed, err := vf.periodic.ResetWarm(ov)
		if err != nil {
			return nil, err
		}
		periodic, err := vf.periodic.Run()
		if err != nil {
			return nil, err
		}
		vf.noteRun(periodic.Events, resumed)
		v.Periodic = periodic
		// The structured diagnostics track the last attempt, like Reason.
		v.Underrun = periodic.Underrun
		v.Deadlock = periodic.Deadlock
		switch periodic.Outcome {
		case Completed:
			v.OK = true
			v.Reason = ""
			return v, nil
		case Underrun:
			v.Reason = periodic.Underrun.String()
		default:
			v.Reason = fmt.Sprintf("periodic phase %s", periodic.Outcome)
		}
	}
	return v, nil
}

// VerifyThroughput checks by simulation that the (sized) task graph can
// satisfy the throughput constraint under the given workload — the
// experiment the paper runs with its dataflow simulator in §5. It is the
// one-shot form of CompileVerifier + Verify; callers probing many capacity
// assignments of one graph should compile once instead.
//
// Phase 1 runs self-timed and records the constrained task's start times
// s_k. Phase 2 forces the constrained task to the strictly periodic
// schedule O + k·τ with O = max_k (s_k − k·τ), the smallest offset that
// dominates the self-timed schedule, and reports an underrun if any firing
// is not enabled at its scheduled start. By monotonicity (Definition 1) a
// sufficient buffer sizing passes this check for every admissible workload.
func VerifyThroughput(tg *taskgraph.Graph, c taskgraph.Constraint, opts VerifyOptions) (*Verification, error) {
	vf, err := CompileVerifier(tg, c, opts)
	if err != nil {
		return nil, err
	}
	return vf.Verify(nil)
}

// MaxLateness returns max_k (starts[k] − k·periodTicks): the smallest offset
// O such that the periodic schedule O + k·period dominates the observed
// start times. Returns 0 for an empty slice.
func MaxLateness(starts []int64, periodTicks int64) int64 {
	var max int64
	for k, s := range starts {
		l := s - int64(k)*periodTicks
		if k == 0 || l > max {
			max = l
		}
	}
	return max
}

// AveragePeriodTicks returns the mean distance between consecutive starts,
// in ticks, as a rational. Needs at least two starts.
func AveragePeriodTicks(starts []int64) (ratio.Rat, error) {
	if len(starts) < 2 {
		return ratio.Rat{}, fmt.Errorf("sim: need at least two starts, got %d", len(starts))
	}
	span := starts[len(starts)-1] - starts[0]
	return ratio.MustNew(span, int64(len(starts)-1)), nil
}

// JitterTicks returns the peak-to-peak jitter of the inter-start distances
// in ticks: max gap minus min gap. Zero for strictly periodic starts.
// Needs at least two starts.
func JitterTicks(starts []int64) (int64, error) {
	if len(starts) < 2 {
		return 0, fmt.Errorf("sim: need at least two starts, got %d", len(starts))
	}
	minGap, maxGap := int64(1<<62), int64(0)
	for i := 1; i < len(starts); i++ {
		g := starts[i] - starts[i-1]
		if g < minGap {
			minGap = g
		}
		if g > maxGap {
			maxGap = g
		}
	}
	return maxGap - minGap, nil
}
