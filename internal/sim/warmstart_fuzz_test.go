package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"vrdfcap/internal/capacity"
	"vrdfcap/internal/graphgen"
	"vrdfcap/internal/ratio"
)

// FuzzWarmStartDifferential is the warm-start correctness oracle: across
// random chains, workloads, checkpoint configurations, capacity-probe
// sequences and fault injections, a machine that warm-starts between probes
// must produce bit-identical Results — outcome, end tick, event count,
// firing start times, per-edge statistics, underrun and deadlock
// diagnostics — to a machine that cold-resets before every run. This is the
// executable form of the ResetWarm validity argument (prefix coincidence
// under the per-edge running-minimum and minimum-shortfall guards).
func FuzzWarmStartDifferential(f *testing.F) {
	f.Add(int64(1), int64(1), false)
	f.Add(int64(2), int64(9), true)
	f.Add(int64(5), int64(3), false)
	f.Add(int64(10), int64(0), true)
	f.Add(int64(12), int64(6), false)
	f.Add(int64(25), int64(14), true)
	f.Fuzz(func(t *testing.T, seed, capSeed int64, faulty bool) {
		gcfg := graphgen.Defaults(seed)
		gcfg.ZeroConsumption = seed%5 == 0
		g, c, err := graphgen.Random(gcfg)
		if err != nil {
			t.Skip()
		}
		res, err := capacity.Compute(g, c, capacity.PolicyEquation4)
		if err != nil || !res.Valid {
			t.Skip()
		}
		sized, err := capacity.Sized(g, res)
		if err != nil {
			t.Skip()
		}
		cfg, mapping, err := TaskGraphConfig(sized, UniformWorkloads(sized, seed))
		if err != nil {
			t.Skip()
		}
		cfg.Stop = Stop{Actor: c.Task, Firings: 400}
		cfg.MaxEvents = 2_000_000
		for _, task := range sized.Tasks() {
			cfg.RecordStarts = append(cfg.RecordStarts, task.Name)
		}
		if capSeed%3 == 0 {
			// Periodic sink variant: lowered capacities can underrun, and
			// the underrun diagnostics must agree between warm and cold.
			offset := c.Period.MulInt(int64(len(sized.Tasks())) * 4)
			cfg.Actors = map[string]ActorConfig{
				c.Task: {Mode: Periodic, Offset: offset, Period: c.Period},
			}
		}
		if faulty {
			// Fault injection: per-firing execution-time jitter, half the
			// time with overruns beyond ρ (a stalled-firing fault mode).
			if cfg.Actors == nil {
				cfg.Actors = make(map[string]ActorConfig)
			}
			cfg.AllowOverrun = seed%2 == 1
			for _, task := range sized.Tasks() {
				rho := task.WCRT
				half := rho.DivInt(2)
				overrun := rho.MulInt(3).DivInt(2)
				exec := func(k int64) ratio.Rat {
					if cfg.AllowOverrun && k%7 == 3 {
						return overrun
					}
					if k%2 == 0 {
						return half
					}
					return rho
				}
				ac := cfg.Actors[task.Name]
				ac.Exec = exec
				cfg.Actors[task.Name] = ac
				cfg.ExtraTimes = append(cfg.ExtraTimes, half, overrun)
			}
		}
		if capSeed%5 == 0 && len(mapping.Pairs) > 0 {
			// Occupancy recording refuses warm starts on the recorded
			// edge; the fallback must still agree with cold runs.
			cfg.RecordOccupancy = []string{mapping.Pairs[0].Data}
		}

		warmCfg := cfg
		warmCfg.Checkpoints = int(1 + (capSeed%4+4)%4)
		warm, err := Compile(warmCfg)
		if err != nil {
			t.Skip()
		}
		cold, err := Compile(cfg)
		if err != nil {
			t.Fatal(err)
		}

		// A probe sequence over the buffers' space edges, starting at the
		// Equation-4 capacities and randomly nudging one buffer at a time —
		// the same access pattern a minimisation search produces.
		rnd := rand.New(rand.NewSource(capSeed ^ seed<<17))
		byName := make(map[string]int64)
		for _, b := range sized.Buffers() {
			byName[b.DefaultName()] = b.Capacity
		}
		caps := make(map[string]int64, len(mapping.Pairs))
		for _, p := range mapping.Pairs {
			caps[p.Space] = byName[p.Buffer]
		}
		for probe := 0; probe < 6; probe++ {
			if probe > 0 {
				p := mapping.Pairs[rnd.Intn(len(mapping.Pairs))]
				next := caps[p.Space] + int64(rnd.Intn(5)-2)
				if next < 1 {
					next = 1
				}
				caps[p.Space] = next
			}
			ov := make(map[string]int64, len(caps))
			for k, v := range caps {
				ov[k] = v
			}
			var resumed int64
			if probe == 0 {
				if _, err := warm.ResetWarm(ov); err != nil {
					t.Fatal(err)
				}
			} else if resumed, err = warm.ResetWarm(ov); err != nil {
				t.Fatal(err)
			}
			if err := cold.Reset(ov); err != nil {
				t.Fatal(err)
			}
			wres, werr := warm.Run()
			cres, cerr := cold.Run()
			if (werr == nil) != (cerr == nil) {
				t.Fatalf("probe %d: warm err %v, cold err %v", probe, werr, cerr)
			}
			if werr != nil {
				continue
			}
			if !reflect.DeepEqual(cres, wres) {
				t.Fatalf("probe %d (caps %v, resumed %d events): warm run diverged from cold\ncold: %+v\nwarm: %+v",
					probe, caps, resumed, cres, wres)
			}
		}
	})
}
