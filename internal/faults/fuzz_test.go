package faults

import (
	"testing"

	"vrdfcap/internal/capacity"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
)

// FuzzJitterAdmissible fuzzes the central robustness guarantee: at the
// Equation 4 capacities of the paper's Figure 1 pair, *every* admissible
// execution — jittered response times in (0, ρ] and consumption quanta in
// {2, 3} — must pass throughput verification. Any counterexample here is a
// soundness bug in the capacity computation or the simulator, not a test
// flake: all inputs are deterministic in the fuzzed arguments.
func FuzzJitterAdmissible(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint64(0))
	f.Add(uint8(50), uint8(8), uint64(1))
	f.Add(uint8(99), uint8(16), uint64(12345))
	f.Add(uint8(87), uint8(3), uint64(0xdeadbeef))

	g, err := taskgraph.Pair("wa", ratio.MustNew(1, 1), "wb", ratio.MustNew(1, 1),
		taskgraph.MustQuanta(3), taskgraph.MustQuanta(2, 3))
	if err != nil {
		f.Fatal(err)
	}
	c := taskgraph.Constraint{Task: "wb", Period: ratio.MustNew(3, 1)}
	res, err := capacity.Compute(g, c, capacity.PolicyEquation4)
	if err != nil {
		f.Fatal(err)
	}
	sized, err := capacity.Sized(g, res)
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, jitterPct, resolution uint8, seed uint64) {
		jitter := ratio.MustNew(int64(jitterPct%100), 100)
		spec := Spec{
			Jitter:     jitter,
			Resolution: int64(resolution%32) + 1,
			Seed:       seed,
		}
		inj, err := New(sized, spec)
		if err != nil {
			t.Fatalf("admissible spec %+v rejected: %v", spec, err)
		}
		if inj.Overruns() {
			t.Fatalf("jitter-only spec reports overruns")
		}
		opts := sim.VerifyOptions{
			Firings:   200,
			Workloads: sim.UniformWorkloads(sized, int64(seed)),
			Validate:  true,
		}
		inj.Apply(&opts)
		v, err := sim.VerifyThroughput(sized, c, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !v.OK {
			t.Fatalf("admissible jitter %v (res %d, seed %d) failed at Eq4 capacities: %s",
				jitter, spec.Resolution, seed, v.Reason)
		}
	})
}
