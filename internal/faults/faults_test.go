package faults

import (
	"context"
	"errors"
	"strings"
	"testing"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/capacity"
	"vrdfcap/internal/quanta"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
)

func r(n, d int64) ratio.Rat { return ratio.MustNew(n, d) }

// figure1 builds the paper's motivating pair (m = {3}, n = {2, 3},
// ρ = 1/1) sized at the Equation 4 capacity for period τ.
func figure1(t *testing.T, period ratio.Rat, policy capacity.Policy) (*taskgraph.Graph, taskgraph.Constraint) {
	t.Helper()
	g, err := taskgraph.Pair("wa", r(1, 1), "wb", r(1, 1),
		taskgraph.MustQuanta(3), taskgraph.MustQuanta(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	c := taskgraph.Constraint{Task: "wb", Period: period}
	res, err := capacity.Compute(g, c, policy)
	if err != nil {
		t.Fatal(err)
	}
	sized, err := capacity.Sized(g, res)
	if err != nil {
		t.Fatal(err)
	}
	return sized, c
}

func TestSpecValidation(t *testing.T) {
	g, _ := figure1(t, r(3, 1), capacity.PolicyEquation4)
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"jitter one", Spec{Jitter: r(1, 1)}, "outside [0, 1)"},
		{"jitter above one", Spec{Jitter: r(3, 2)}, "outside [0, 1)"},
		{"jitter negative", Spec{Jitter: r(-1, 2)}, "outside [0, 1)"},
		{"overrun below one", Spec{Overrun: r(1, 2)}, "below 1"},
		{"negative resolution", Spec{Jitter: r(1, 2), Resolution: -1}, "resolution"},
		{"negative cadence", Spec{Overrun: r(2, 1), OverrunEvery: -3}, "cadence"},
		{"unknown task", Spec{Jitter: r(1, 2), Tasks: []string{"nope"}}, "unknown task"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(g, tc.spec)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New(%+v) err = %v, want %q", tc.spec, err, tc.want)
			}
		})
	}
}

func TestInjectorDeterministic(t *testing.T) {
	g, _ := figure1(t, r(3, 1), capacity.PolicyEquation4)
	spec := Spec{Jitter: r(1, 2), Overrun: r(2, 1), OverrunEvery: 5, Seed: 42}
	a, err := New(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range []string{"wa", "wb"} {
		for k := int64(0); k < 200; k++ {
			if va, vb := a.exec[task](k), b.exec[task](k); !va.Equal(vb) {
				t.Fatalf("exec[%s](%d) differs between equal specs: %v vs %v", task, k, va, vb)
			}
		}
	}
	other, err := New(g, Spec{Jitter: r(1, 2), Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for k := int64(0); k < 200 && same; k++ {
		same = a.exec["wa"](k).Equal(other.exec["wa"](k))
	}
	if same {
		t.Error("seeds 42 and 43 produced identical jitter streams")
	}
}

// TestJitterWithinBounds pins admissibility: jitter-only exec values stay
// in (0, ρ] for every firing and task.
func TestJitterWithinBounds(t *testing.T) {
	g, _ := figure1(t, r(3, 1), capacity.PolicyEquation4)
	for _, jitter := range []ratio.Rat{r(1, 10), r(1, 2), r(9, 10), r(99, 100)} {
		inj, err := New(g, Spec{Jitter: jitter, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if inj.Overruns() {
			t.Fatalf("jitter-only injector reports overruns")
		}
		rho := r(1, 1)
		for k := int64(0); k < 500; k++ {
			et := inj.exec["wb"](k)
			if et.Sign() <= 0 || rho.Less(et) {
				t.Fatalf("jitter %v firing %d: exec %v outside (0, %v]", jitter, k, et, rho)
			}
		}
	}
}

func TestApplySetsOptions(t *testing.T) {
	g, _ := figure1(t, r(3, 1), capacity.PolicyEquation4)
	inj, err := New(g, Spec{Jitter: r(1, 4), Overrun: r(3, 2), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var opts sim.VerifyOptions
	inj.Apply(&opts)
	if !opts.AllowOverrun {
		t.Error("Apply did not enable AllowOverrun for an overrunning spec")
	}
	if len(opts.Exec) != 2 {
		t.Errorf("Apply set %d Exec models, want 2", len(opts.Exec))
	}
	if len(opts.ExtraTimes) == 0 {
		t.Error("Apply listed no extra times; injected values may be unrepresentable")
	}

	// A no-fault spec must leave the options untouched.
	noop, err := New(g, Spec{})
	if err != nil {
		t.Fatal(err)
	}
	var clean sim.VerifyOptions
	noop.Apply(&clean)
	if clean.AllowOverrun || clean.Exec != nil || clean.ExtraTimes != nil {
		t.Errorf("no-fault Apply mutated options: %+v", clean)
	}
}

// TestJitterAdmissibleAlwaysVerifies is the robustness guarantee as a
// table test: at Equation 4 capacities, any admissible jitter combined
// with any adversarial or random workload must pass verification. The fuzz
// target FuzzJitterAdmissible explores the same property with generated
// inputs.
func TestJitterAdmissibleAlwaysVerifies(t *testing.T) {
	g, c := figure1(t, r(3, 1), capacity.PolicyEquation4)
	workloads := map[string]sim.Workloads{
		"min":    sim.AdversarialWorkloads(g, sim.AdversaryMin),
		"max":    sim.AdversarialWorkloads(g, sim.AdversaryMax),
		"alt":    sim.AdversarialWorkloads(g, sim.AdversaryAlternate),
		"bursty": BurstyWorkloads(g, 8, 3),
		"random": sim.UniformWorkloads(g, 99),
	}
	for wname, w := range workloads {
		for _, jitter := range []ratio.Rat{{}, r(1, 4), r(1, 2), r(7, 8)} {
			inj, err := New(g, Spec{Jitter: jitter, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			opts := sim.VerifyOptions{Firings: 300, Workloads: w, Validate: true}
			inj.Apply(&opts)
			v, err := sim.VerifyThroughput(g, c, opts)
			if err != nil {
				t.Fatalf("workload %s jitter %v: %v", wname, jitter, err)
			}
			if !v.OK {
				t.Errorf("workload %s jitter %v: verification failed at Eq4 capacities: %s", wname, jitter, v.Reason)
			}
		}
	}
}

// TestOverrunOnConstrainedTaskFailsDiagnosably pins the other half of the
// robustness contract: an overrun that stretches the constrained task
// beyond its period cannot be absorbed by any sizing, and the failure is
// reported with a structured underrun, not an opaque error.
func TestOverrunOnConstrainedTaskFailsDiagnosably(t *testing.T) {
	g, c := figure1(t, r(3, 1), capacity.PolicyEquation4)
	inj, err := New(g, Spec{Overrun: r(4, 1), OverrunEvery: 1, Tasks: []string{"wb"}})
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.VerifyOptions{
		Firings:   100,
		Workloads: sim.AdversarialWorkloads(g, sim.AdversaryAlternate),
	}
	inj.Apply(&opts)
	v, err := sim.VerifyThroughput(g, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Fatal("4x overrun on the constrained task verified")
	}
	if v.Underrun == nil {
		t.Fatalf("no structured underrun; reason: %s", v.Reason)
	}
	if v.Underrun.Actor != "wb" {
		t.Errorf("Underrun.Actor = %q, want wb", v.Underrun.Actor)
	}
}

func TestSweepDegradationCurve(t *testing.T) {
	g, c := figure1(t, r(3, 1), capacity.PolicyEquation4)
	curve, err := Sweep(DegradationConfig{
		Graph:        g,
		Constraint:   c,
		Factors:      []ratio.Rat{r(1, 1), r(3, 2), r(2, 1), r(4, 1)},
		OverrunEvery: 1,
		Tasks:        []string{"wb"},
		Firings:      100,
		Workloads:    sim.Workloads{"wa->wb": {Cons: quanta.Cycle(2, 3)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(curve.Points))
	}
	if !curve.Points[0].OK {
		t.Errorf("nominal point failed: %s", curve.Points[0].Reason)
	}
	last := curve.Points[3]
	if last.OK {
		t.Error("4x overrun on the constrained task passed")
	}
	if last.Underrun == nil && last.Deadlock == nil {
		t.Error("failing point carries no structured diagnostic")
	}
	ff := curve.FirstFailure()
	if ff == nil {
		t.Fatal("FirstFailure = nil with a failing point present")
	}
	if got := curve.Slack(); got.Less(ratio.FromInt(0)) {
		t.Errorf("Slack = %v, want >= 0 (nominal point passed)", got)
	}
	// Serial and parallel sweeps agree point-for-point.
	serial, err := Sweep(DegradationConfig{
		Graph:        g,
		Constraint:   c,
		Factors:      []ratio.Rat{r(1, 1), r(3, 2), r(2, 1), r(4, 1)},
		OverrunEvery: 1,
		Tasks:        []string{"wb"},
		Firings:      100,
		Workloads:    sim.Workloads{"wa->wb": {Cons: quanta.Cycle(2, 3)}},
		Workers:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range curve.Points {
		if curve.Points[i].OK != serial.Points[i].OK {
			t.Errorf("point %d: parallel OK=%v, serial OK=%v", i, curve.Points[i].OK, serial.Points[i].OK)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	g, c := figure1(t, r(3, 1), capacity.PolicyEquation4)
	if _, err := Sweep(DegradationConfig{Constraint: c}); err == nil {
		t.Error("Sweep without a graph accepted")
	}
	if _, err := Sweep(DegradationConfig{Graph: g, Constraint: c}); err == nil {
		t.Error("Sweep without factors accepted")
	}
	if _, err := Sweep(DegradationConfig{Graph: g, Constraint: c, Factors: []ratio.Rat{r(1, 2)}}); err == nil {
		t.Error("Sweep with factor < 1 accepted")
	}
}

func TestSweepCanceled(t *testing.T) {
	g, c := figure1(t, r(3, 1), capacity.PolicyEquation4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Sweep(DegradationConfig{
		Graph:      g,
		Constraint: c,
		Factors:    FactorRange(r(1, 1), r(2, 1), 8),
		Firings:    100,
		Context:    ctx,
	})
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestFactorRange(t *testing.T) {
	fs := FactorRange(r(1, 1), r(2, 1), 5)
	if len(fs) != 5 {
		t.Fatalf("got %d factors, want 5", len(fs))
	}
	if !fs[0].Equal(r(1, 1)) || !fs[4].Equal(r(2, 1)) {
		t.Errorf("endpoints %v..%v, want 1..2", fs[0], fs[4])
	}
	for i := 1; i < len(fs); i++ {
		if !fs[i-1].Less(fs[i]) {
			t.Errorf("factors not increasing at %d: %v, %v", i, fs[i-1], fs[i])
		}
	}
	if one := FactorRange(r(1, 1), r(1, 1), 3); len(one) != 1 {
		t.Errorf("degenerate range has %d factors, want 1", len(one))
	}
}
