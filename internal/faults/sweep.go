package faults

import (
	"context"
	"fmt"
	"time"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/parallel"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
)

// DegradationConfig describes one fault-intensity sweep: verify a sized
// graph at every overrun factor in Factors and report where the throughput
// guarantee first breaks.
type DegradationConfig struct {
	// Graph is the fully sized task graph (every buffer capacity set).
	Graph *taskgraph.Graph
	// Constraint is the throughput constraint to verify at each point.
	Constraint taskgraph.Constraint
	// Factors lists the overrun factors to sweep, each ≥ 1; factor 1 is
	// the nominal (fault-free) point. Build a range with FactorRange.
	Factors []ratio.Rat
	// OverrunEvery is the stall cadence forwarded to Spec (default 7).
	OverrunEvery int64
	// Jitter adds admissible jitter below the overruns (see Spec.Jitter).
	Jitter ratio.Rat
	// Resolution quantises the jitter (see Spec.Resolution).
	Resolution int64
	// Seed selects the jitter stream and the default workloads.
	Seed uint64
	// Tasks restricts injection (see Spec.Tasks).
	Tasks []string
	// Firings is the verification horizon per point (see
	// sim.VerifyOptions.Firings).
	Firings int64
	// Workloads supplies buffer quanta; nil draws uniform workloads from
	// Seed.
	Workloads sim.Workloads
	// Workers bounds the sweep's parallelism (<= 0 means GOMAXPROCS).
	Workers int
	// Context, if non-nil, cancels the sweep cooperatively; Deadline, if
	// non-zero, bounds it in wall-clock time. Errors carry the typed
	// budget sentinels.
	Context  context.Context
	Deadline time.Time
}

// DegradationPoint is the verification outcome at one overrun factor.
type DegradationPoint struct {
	// Factor is the overrun factor of this point.
	Factor ratio.Rat
	// OK reports whether the sizing still met the throughput constraint.
	OK bool
	// Reason is the failure reason when !OK.
	Reason string
	// Underrun/Deadlock carry the structured diagnostics of a failing
	// point (see sim.Verification).
	Underrun *sim.UnderrunInfo
	Deadlock *sim.DeadlockInfo
}

// DegradationCurve is the outcome of a sweep, in the order of
// DegradationConfig.Factors.
type DegradationCurve struct {
	Points []DegradationPoint
}

// FirstFailure returns the first failing point in sweep order, or nil if
// every point passed.
func (c *DegradationCurve) FirstFailure() *DegradationPoint {
	for i := range c.Points {
		if !c.Points[i].OK {
			return &c.Points[i]
		}
	}
	return nil
}

// Slack returns the margin before degradation: the largest factor in the
// passing prefix of the curve, minus 1. A curve whose first point already
// fails has slack −1 (even the nominal point is broken); an all-passing
// curve reports the last factor's slack, a lower bound.
func (c *DegradationCurve) Slack() ratio.Rat {
	slack := ratio.FromInt(-1)
	for _, p := range c.Points {
		if !p.OK {
			break
		}
		slack = p.Factor.Sub(ratio.FromInt(1))
	}
	return slack
}

// FactorRange builds n evenly spaced overrun factors from lo to hi
// inclusive (n ≥ 2, lo < hi).
func FactorRange(lo, hi ratio.Rat, n int) []ratio.Rat {
	if n < 2 || !lo.Less(hi) {
		return []ratio.Rat{lo}
	}
	step := hi.Sub(lo).DivInt(int64(n - 1))
	out := make([]ratio.Rat, n)
	for i := range out {
		out[i] = lo.Add(step.MulInt(int64(i)))
	}
	out[n-1] = hi
	return out
}

// Sweep verifies the graph at every factor and assembles the degradation
// curve. Points are independent verifications evaluated in parallel;
// results are deterministic in (config, seed) regardless of Workers.
func Sweep(cfg DegradationConfig) (*DegradationCurve, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("faults: Sweep needs a graph")
	}
	if len(cfg.Factors) == 0 {
		return nil, fmt.Errorf("faults: Sweep needs at least one factor")
	}
	one := ratio.FromInt(1)
	for _, f := range cfg.Factors {
		if f.Less(one) {
			return nil, fmt.Errorf("faults: overrun factor %v below 1", f)
		}
	}
	workloads := cfg.Workloads
	if workloads == nil {
		workloads = sim.UniformWorkloads(cfg.Graph, int64(cfg.Seed))
	}
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	points, err := parallel.Map(ctx, cfg.Workers, len(cfg.Factors), func(i int) (DegradationPoint, error) {
		factor := cfg.Factors[i]
		spec := Spec{
			Jitter:       cfg.Jitter,
			Resolution:   cfg.Resolution,
			OverrunEvery: cfg.OverrunEvery,
			Seed:         cfg.Seed,
			Tasks:        cfg.Tasks,
		}
		// Factor 1 is the nominal point: no stall, exec stays ≤ ρ.
		if one.Less(factor) {
			spec.Overrun = factor
		}
		inj, err := New(cfg.Graph, spec)
		if err != nil {
			return DegradationPoint{}, err
		}
		opts := sim.VerifyOptions{
			Firings:    cfg.Firings,
			Workloads:  workloads,
			LiteResult: true,
			Context:    cfg.Context,
			Deadline:   cfg.Deadline,
		}
		inj.Apply(&opts)
		v, err := sim.VerifyThroughput(cfg.Graph, cfg.Constraint, opts)
		if err != nil {
			return DegradationPoint{}, fmt.Errorf("faults: factor %v: %w", factor, err)
		}
		return DegradationPoint{
			Factor:   factor,
			OK:       v.OK,
			Reason:   v.Reason,
			Underrun: v.Underrun,
			Deadlock: v.Deadlock,
		}, nil
	})
	if err != nil {
		return nil, budget.Classify(err)
	}
	return &DegradationCurve{Points: points}, nil
}
