// Package faults injects deterministic, seeded timing faults into
// throughput verifications.
//
// The capacities of Wiggers et al. (DATE 2008) come with a guarantee that
// is conditional on the task model: every execution finishes within the
// worst-case response time ρ and every transfer quantum stays inside the
// declared set. This package probes both sides of that condition. Jitter
// shortens execution times within (0, ρ] — an admissible variation that a
// correct sizing must absorb for free (monotonicity, Definition 1).
// Overruns stretch selected firings beyond ρ — an inadmissible fault the
// guarantee says nothing about, whose impact is worth measuring: how much
// overrun does a sizing absorb before the periodic schedule first misses a
// start? The degradation sweep in this package answers that question as a
// curve over the overrun factor.
//
// All injected faults are pure functions of (seed, task, firing index), so
// a failing run replays bit-identically from its seed.
package faults

import (
	"fmt"

	"vrdfcap/internal/quanta"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
)

// Spec describes the timing faults to inject.
type Spec struct {
	// Jitter is the maximum fractional shortening of execution times,
	// in [0, 1): firing k of a task with worst-case response time ρ
	// executes in ρ·(1 − Jitter·u_k) with u_k drawn deterministically
	// from {0, 1/Resolution, …, (Resolution−1)/Resolution}. The zero
	// value disables jitter (every firing takes exactly ρ). Jittered
	// times always stay in (0, ρ], so jitter alone is admissible.
	Jitter ratio.Rat
	// Resolution is the number of quantisation steps for jitter
	// (default 8). Finer resolutions refine the time base: jittered
	// execution times are multiples of ρ·Jitter/Resolution.
	Resolution int64
	// Overrun, when set, must be ≥ 1: stalled firings execute in
	// ρ·Overrun instead of ρ. Values above 1 are inadmissible faults
	// and require the engine's overrun mode (Apply sets AllowOverrun).
	// The zero value disables overrun stalls.
	Overrun ratio.Rat
	// OverrunEvery is the stall cadence: every OverrunEvery-th firing
	// of an injected task overruns (firing indices k with
	// k ≡ OverrunEvery−1 mod OverrunEvery, so firing 0 never stalls).
	// Defaults to 7 when Overrun is set.
	OverrunEvery int64
	// Seed selects the jitter stream. Runs with equal (Seed, Spec) are
	// identical.
	Seed uint64
	// Tasks restricts injection to the named tasks; empty means every
	// task in the graph.
	Tasks []string
}

// Injector holds compiled per-task execution-time models for one graph and
// one Spec. Build with New, then Apply to a sim.VerifyOptions.
type Injector struct {
	exec    map[string]func(k int64) ratio.Rat
	extra   []ratio.Rat
	overrun bool
}

// New validates the spec against the graph and compiles the injector.
func New(tg *taskgraph.Graph, spec Spec) (*Injector, error) {
	one := ratio.FromInt(1)
	if spec.Jitter.Sign() < 0 || !spec.Jitter.Less(one) {
		return nil, fmt.Errorf("faults: jitter %v outside [0, 1)", spec.Jitter)
	}
	res := spec.Resolution
	if res == 0 {
		res = 8
	}
	if res < 0 {
		return nil, fmt.Errorf("faults: resolution %d must be positive", res)
	}
	overrun := !spec.Overrun.IsZero()
	if overrun && spec.Overrun.Less(one) {
		return nil, fmt.Errorf("faults: overrun factor %v below 1", spec.Overrun)
	}
	every := spec.OverrunEvery
	if every == 0 {
		every = 7
	}
	if every < 0 {
		return nil, fmt.Errorf("faults: overrun cadence %d must be positive", every)
	}

	tasks := spec.Tasks
	if len(tasks) == 0 {
		tasks = tg.SortedTaskNames()
	}
	inj := &Injector{exec: make(map[string]func(k int64) ratio.Rat, len(tasks))}
	jitter := spec.Jitter.Sign() > 0
	for _, name := range tasks {
		task := tg.Task(name)
		if task == nil {
			return nil, fmt.Errorf("faults: unknown task %q", name)
		}
		rho := task.WCRT
		if !jitter && !overrun {
			// Nothing to inject; leave the task on its default ρ.
			continue
		}
		// g is the jitter granularity: every jittered time is
		// ρ − u·g for an integer u, so listing g (and ρ·Overrun)
		// in the run's extra times makes all injected values
		// representable in the tick base.
		var g, stall ratio.Rat
		if jitter {
			g = rho.Mul(spec.Jitter).DivInt(res)
			inj.extra = append(inj.extra, g)
		}
		if overrun {
			stall = rho.Mul(spec.Overrun)
			inj.extra = append(inj.extra, stall)
		}
		salt := splitmix64(spec.Seed ^ hashString(name))
		inj.exec[name] = func(k int64) ratio.Rat {
			if overrun && every > 0 && k%every == every-1 {
				return stall
			}
			if !jitter {
				return rho
			}
			u := int64(splitmix64(salt^splitmix64(uint64(k))) % uint64(res))
			return rho.Sub(g.MulInt(u))
		}
	}
	inj.overrun = overrun && len(inj.exec) > 0
	return inj, nil
}

// Overruns reports whether the injector stretches any firing beyond ρ.
func (inj *Injector) Overruns() bool { return inj.overrun }

// Apply wires the injector into a verification: per-task Exec models, the
// extra rational times they need, and — when the spec stalls firings beyond
// ρ — the engine's overrun mode.
func (inj *Injector) Apply(opts *sim.VerifyOptions) {
	if len(inj.exec) == 0 {
		return
	}
	if opts.Exec == nil {
		opts.Exec = make(map[string]func(k int64) ratio.Rat, len(inj.exec))
	}
	for name, fn := range inj.exec {
		opts.Exec[name] = fn
	}
	opts.ExtraTimes = append(opts.ExtraTimes, inj.extra...)
	if inj.overrun {
		opts.AllowOverrun = true
	}
}

// BurstyWorkloads builds the bursty adversarial workload for every buffer
// with variable quanta: lowLen firings at the set minimum followed by
// highLen at the maximum — the silence-then-peak shape that stresses
// sizing hardest. Buffers with constant quanta are left on their single
// value.
func BurstyWorkloads(tg *taskgraph.Graph, lowLen, highLen int64) sim.Workloads {
	w := make(sim.Workloads)
	for _, b := range tg.Buffers() {
		var wl sim.Workload
		if !b.Prod.IsConstant() {
			wl.Prod = quanta.Bursty(b.Prod, lowLen, highLen)
		}
		if !b.Cons.IsConstant() {
			wl.Cons = quanta.Bursty(b.Cons, lowLen, highLen)
		}
		w[b.DefaultName()] = wl
	}
	return w
}

// hashString folds a task name into the seed so distinct tasks draw
// independent jitter streams.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 is the finaliser of the splitmix64 generator: a bijective
// avalanche mix, so hashing (seed, k) pairs through it yields independent
// uniform draws without shared state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
