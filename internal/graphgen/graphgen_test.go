package graphgen

import (
	"testing"

	"vrdfcap/internal/capacity"
)

func TestRandomFeasibleChains(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		cfg := Defaults(seed)
		cfg.ZeroConsumption = seed%3 == 0
		g, c, err := Random(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := g.ValidateChain(); err != nil {
			t.Fatalf("seed %d: invalid chain: %v", seed, err)
		}
		if err := c.Validate(g); err != nil {
			t.Fatalf("seed %d: invalid constraint: %v", seed, err)
		}
		res, err := capacity.Compute(g, c, capacity.PolicyEquation4)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Valid {
			t.Errorf("seed %d: generated chain analysed infeasible: %v", seed, res.Diagnostics)
		}
		for _, b := range res.Buffers {
			if b.Capacity <= 0 {
				t.Errorf("seed %d: non-positive capacity for %s", seed, b.Buffer)
			}
		}
	}
}

func TestRandomSourceConstrained(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		cfg := Defaults(seed)
		cfg.SourceConstrained = true
		g, c, err := Random(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		src, err := g.Source()
		if err != nil {
			t.Fatal(err)
		}
		if c.Task != src.Name {
			t.Fatalf("seed %d: constraint on %s, want source %s", seed, c.Task, src.Name)
		}
		res, err := capacity.Compute(g, c, capacity.PolicyEquation4)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Valid {
			t.Errorf("seed %d: source-constrained chain analysed infeasible: %v", seed, res.Diagnostics)
		}
	}
}

func TestRandomInfeasibleDetected(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		cfg := Defaults(seed)
		cfg.Infeasible = true
		g, c, err := Random(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := capacity.Compute(g, c, capacity.PolicyEquation4)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Valid {
			t.Errorf("seed %d: deliberately infeasible chain passed the analysis", seed)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, ca, err := Random(Defaults(7))
	if err != nil {
		t.Fatal(err)
	}
	b, cb, err := Random(Defaults(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tasks()) != len(b.Tasks()) || ca.Task != cb.Task {
		t.Error("same seed generated different chains")
	}
	for i, ta := range a.Tasks() {
		tb := b.Tasks()[i]
		if ta.Name != tb.Name || !ta.WCRT.Equal(tb.WCRT) {
			t.Errorf("task %d differs: %v vs %v", i, ta, tb)
		}
	}
	for i, ba := range a.Buffers() {
		bb := b.Buffers()[i]
		if !ba.Prod.Equal(bb.Prod) || !ba.Cons.Equal(bb.Cons) {
			t.Errorf("buffer %d differs", i)
		}
	}
}

func TestRandomConfigValidation(t *testing.T) {
	bad := []Config{
		{MinTasks: 1, MaxTasks: 3, MaxQuantum: 4, MaxSetSize: 2},
		{MinTasks: 3, MaxTasks: 2, MaxQuantum: 4, MaxSetSize: 2},
		{MinTasks: 2, MaxTasks: 3, MaxQuantum: 0, MaxSetSize: 2},
		{MinTasks: 2, MaxTasks: 3, MaxQuantum: 4, MaxSetSize: 0},
	}
	for i, cfg := range bad {
		if _, _, err := Random(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}
