// Package graphgen generates random — but analysable — chain task graphs
// for fuzzing and ablation studies.
//
// Generated chains are feasible by construction: response times are drawn
// as a fraction of each task's minimal start distance φ, which is computed
// the same way the capacity analysis propagates it (§4.3 of the paper for
// sink-constrained chains, §4.4 for source-constrained ones). Setting
// Infeasible draws one task's response time beyond its φ instead, for
// negative testing.
package graphgen

import (
	"fmt"
	"math/rand"

	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

// Config controls generation. The zero value is invalid; use Defaults.
type Config struct {
	// Seed makes generation reproducible.
	Seed int64
	// MinTasks and MaxTasks bound the chain length (inclusive).
	MinTasks, MaxTasks int
	// MaxQuantum bounds individual transfer quanta (values are drawn
	// from [1, MaxQuantum]).
	MaxQuantum int64
	// MaxSetSize bounds the number of members per quanta set; sets of
	// size 1 (constant rates) occur naturally.
	MaxSetSize int
	// ZeroConsumption, when true, sometimes adds 0 to consumption
	// quanta sets (sink-constrained chains only, per §4.2).
	ZeroConsumption bool
	// SourceConstrained places the throughput constraint on the source
	// instead of the sink.
	SourceConstrained bool
	// Infeasible draws one task's response time beyond its minimal
	// start distance, so the analysis must flag the chain.
	Infeasible bool
}

// Defaults returns a reasonable fuzzing configuration for the given seed.
func Defaults(seed int64) Config {
	return Config{
		Seed:       seed,
		MinTasks:   2,
		MaxTasks:   5,
		MaxQuantum: 8,
		MaxSetSize: 3,
	}
}

// Random generates a chain and its throughput constraint.
func Random(cfg Config) (*taskgraph.Graph, taskgraph.Constraint, error) {
	if cfg.MinTasks < 2 || cfg.MaxTasks < cfg.MinTasks {
		return nil, taskgraph.Constraint{}, fmt.Errorf("graphgen: need 2 <= MinTasks <= MaxTasks, got %d..%d", cfg.MinTasks, cfg.MaxTasks)
	}
	if cfg.MaxQuantum < 1 || cfg.MaxSetSize < 1 {
		return nil, taskgraph.Constraint{}, fmt.Errorf("graphgen: MaxQuantum and MaxSetSize must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.MinTasks + rng.Intn(cfg.MaxTasks-cfg.MinTasks+1)

	set := func(allowZero bool) taskgraph.QuantaSet {
		size := 1 + rng.Intn(cfg.MaxSetSize)
		vals := make([]int64, 0, size+1)
		for len(vals) < size {
			vals = append(vals, 1+rng.Int63n(cfg.MaxQuantum))
		}
		if allowZero && rng.Intn(4) == 0 {
			vals = append(vals, 0)
		}
		return taskgraph.MustQuanta(vals...)
	}

	links := make([]taskgraph.Link, n-1)
	for i := range links {
		prodZero := cfg.SourceConstrained && rng.Intn(4) == 0
		consZero := cfg.ZeroConsumption && !cfg.SourceConstrained
		links[i] = taskgraph.Link{
			Prod: set(prodZero),
			Cons: set(consZero),
		}
	}

	// Propagate φ from the constrained end with τ = 1, exactly as the
	// analysis will, then draw response times as fractions of φ.
	tau := ratio.One
	phi := make([]ratio.Rat, n)
	if cfg.SourceConstrained {
		phi[0] = tau
		for i := 0; i < n-1; i++ {
			mu := phi[i].DivInt(links[i].Prod.Max())
			phi[i+1] = mu.MulInt(positiveMin(links[i].Cons))
		}
	} else {
		phi[n-1] = tau
		for i := n - 2; i >= 0; i-- {
			mu := phi[i+1].DivInt(links[i].Cons.Max())
			phi[i] = mu.MulInt(positiveMin(links[i].Prod))
		}
	}

	slowIdx := -1
	if cfg.Infeasible {
		slowIdx = rng.Intn(n)
	}
	stages := make([]taskgraph.Stage, n)
	for i := range stages {
		// ρ = φ · num/8 with num in [1, 8]: feasible (ρ ≤ φ); the
		// infeasible task gets ρ = φ · 9/8 instead.
		num := int64(1 + rng.Intn(8))
		if i == slowIdx {
			num = 9
		}
		stages[i] = taskgraph.Stage{
			Name: fmt.Sprintf("t%d", i),
			WCRT: phi[i].MulInt(num).DivInt(8),
		}
	}

	g, err := taskgraph.BuildChain(stages, links)
	if err != nil {
		return nil, taskgraph.Constraint{}, err
	}
	task := stages[n-1].Name
	if cfg.SourceConstrained {
		task = stages[0].Name
	}
	return g, taskgraph.Constraint{Task: task, Period: tau}, nil
}

// positiveMin returns the set's minimum, skipping a zero member: the φ
// propagation divides by it, and zero quanta do not constrain rates.
func positiveMin(q taskgraph.QuantaSet) int64 {
	m := q.Min()
	if m == 0 {
		for _, v := range q.Values() {
			if v > 0 {
				return v
			}
		}
	}
	return m
}
