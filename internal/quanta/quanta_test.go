package quanta

import (
	"testing"
	"testing/quick"

	"vrdfcap/internal/taskgraph"
)

func TestConstant(t *testing.T) {
	s := Constant(7)
	for _, k := range []int64{0, 1, 100, 1 << 40} {
		if got := s.At(k); got != 7 {
			t.Errorf("At(%d) = %d, want 7", k, got)
		}
	}
}

func TestCycle(t *testing.T) {
	s := Cycle(2, 3)
	want := []int64{2, 3, 2, 3, 2}
	for k, w := range want {
		if got := s.At(int64(k)); got != w {
			t.Errorf("At(%d) = %d, want %d", k, got, w)
		}
	}
}

func TestCyclePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Cycle() did not panic")
		}
	}()
	Cycle()
}

func TestCycleCopiesInput(t *testing.T) {
	vals := []int64{1, 2}
	s := Cycle(vals...)
	vals[0] = 99
	if got := s.At(0); got != 1 {
		t.Errorf("Cycle aliased caller slice: At(0) = %d", got)
	}
}

func TestSticky(t *testing.T) {
	s := Sticky(5, 6, 7)
	cases := map[int64]int64{0: 5, 1: 6, 2: 7, 3: 7, 1000: 7}
	for k, w := range cases {
		if got := s.At(k); got != w {
			t.Errorf("At(%d) = %d, want %d", k, got, w)
		}
	}
}

func TestMinMaxOf(t *testing.T) {
	set := taskgraph.MustQuanta(2, 3, 9)
	if got := MinOf(set).At(5); got != 2 {
		t.Errorf("MinOf = %d, want 2", got)
	}
	if got := MaxOf(set).At(5); got != 9 {
		t.Errorf("MaxOf = %d, want 9", got)
	}
	// Zero-containing sets: MinOf skips the zero.
	zset := taskgraph.MustQuanta(0, 4, 8)
	if got := MinOf(zset).At(0); got != 4 {
		t.Errorf("MinOf({0,4,8}) = %d, want 4", got)
	}
	alt := AlternateMinMax(set)
	if alt.At(0) != 2 || alt.At(1) != 9 || alt.At(2) != 2 {
		t.Errorf("AlternateMinMax = %d,%d,%d", alt.At(0), alt.At(1), alt.At(2))
	}
}

func TestUniformDeterministicAndInSet(t *testing.T) {
	set := taskgraph.MustQuanta(96, 120, 960)
	a := Uniform(set, 42)
	b := Uniform(set, 42)
	c := Uniform(set, 43)
	same, diff := true, false
	for k := int64(0); k < 1000; k++ {
		va := a.At(k)
		if !set.Contains(va) {
			t.Fatalf("At(%d) = %d outside set", k, va)
		}
		if va != b.At(k) {
			same = false
		}
		if va != c.At(k) {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different sequences")
	}
	if !diff {
		t.Error("different seeds produced identical sequences (suspicious)")
	}
	// Purity: out-of-order access equals in-order access.
	if a.At(500) != b.At(500) {
		t.Error("out-of-order access changed value")
	}
}

func TestUniformCoversSet(t *testing.T) {
	set := taskgraph.MustQuanta(1, 2, 3, 4)
	s := Uniform(set, 7)
	seen := map[int64]bool{}
	for k := int64(0); k < 400; k++ {
		seen[s.At(k)] = true
	}
	for _, v := range set.Values() {
		if !seen[v] {
			t.Errorf("value %d never drawn in 400 samples", v)
		}
	}
}

func TestWalkStaysInSetAndMovesSlowly(t *testing.T) {
	set := taskgraph.MustQuanta(10, 20, 30, 40, 50)
	s := Walk(set, 99)
	vals := set.Values()
	idx := func(v int64) int {
		for i, x := range vals {
			if x == v {
				return i
			}
		}
		return -1
	}
	prev := s.At(0)
	if idx(prev) < 0 {
		t.Fatalf("At(0) = %d outside set", prev)
	}
	for k := int64(1); k < 500; k++ {
		v := s.At(k)
		if idx(v) < 0 {
			t.Fatalf("At(%d) = %d outside set", k, v)
		}
		// Within an epoch, consecutive values move at most one position.
		if k%64 != 0 {
			d := idx(v) - idx(prev)
			if d < -1 || d > 1 {
				t.Errorf("At(%d): jumped %d positions", k, d)
			}
		}
		prev = v
	}
	// Determinism.
	if Walk(set, 99).At(123) != s.At(123) {
		t.Error("Walk not deterministic")
	}
}

func TestFromSlice(t *testing.T) {
	s := FromSlice([]int64{4, 5})
	if s.At(0) != 4 || s.At(1) != 5 {
		t.Error("FromSlice values wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("reading past trace end did not panic")
		}
	}()
	s.At(2)
}

func TestChecked(t *testing.T) {
	set := taskgraph.MustQuanta(2, 3)
	ok := Checked(Cycle(2, 3), set)
	if ok.At(0) != 2 || ok.At(1) != 3 {
		t.Error("Checked altered values")
	}
	bad := Checked(Constant(5), set)
	defer func() {
		if recover() == nil {
			t.Error("out-of-set value did not panic")
		}
	}()
	bad.At(0)
}

func TestValidate(t *testing.T) {
	set := taskgraph.MustQuanta(2, 3)
	if err := Validate(Cycle(3, 2), set, 100); err != nil {
		t.Errorf("valid sequence rejected: %v", err)
	}
	if err := Validate(Sticky(2, 3, 4), set, 100); err == nil {
		t.Error("invalid sequence accepted")
	}
	// Violation beyond the horizon is not seen.
	if err := Validate(Sticky(2, 3, 4), set, 2); err != nil {
		t.Errorf("horizon-limited validation flagged too much: %v", err)
	}
}

func TestPropSequencesPure(t *testing.T) {
	set := taskgraph.MustQuanta(1, 5, 9)
	seqs := []Sequence{
		Constant(5),
		Cycle(1, 5, 9),
		Sticky(9, 5),
		Uniform(set, 3),
		Walk(set, 3),
	}
	f := func(k16 uint16) bool {
		k := int64(k16)
		for _, s := range seqs {
			if s.At(k) != s.At(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFuncAdapter(t *testing.T) {
	s := Func(func(k int64) int64 { return k * 2 })
	if s.At(21) != 42 {
		t.Error("Func adapter broken")
	}
}

func TestBursty(t *testing.T) {
	set := taskgraph.MustQuanta(2, 5, 9)
	s := Bursty(set, 3, 2)
	want := []int64{2, 2, 2, 9, 9, 2, 2, 2, 9, 9}
	for k, w := range want {
		if got := s.At(int64(k)); got != w {
			t.Errorf("At(%d) = %d, want %d", k, got, w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive run length did not panic")
		}
	}()
	Bursty(set, 0, 1)
}
