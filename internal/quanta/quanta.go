// Package quanta provides deterministic per-firing transfer-quantum
// sequences for simulating variable-rate dataflow graphs.
//
// In the model of Wiggers et al. (DATE 2008) the number of tokens a task
// transfers may change every execution, driven by the data in the processed
// stream (e.g. the byte size of each variable-bit-rate MP3 frame). For
// analysis the values are only known to lie in a finite set; for simulation
// a concrete sequence must be chosen. A Sequence maps the 0-based firing
// index to the quantum of that firing as a pure function, which makes
// simulation runs replayable: two engines reading the same Sequence observe
// the same stream, regardless of interleaving.
package quanta

import (
	"fmt"

	"vrdfcap/internal/taskgraph"
)

// Sequence yields the transfer quantum of each firing. Implementations must
// be pure: At(k) always returns the same value for the same k.
type Sequence interface {
	// At returns the quantum of firing k (0-based). k must be >= 0.
	At(k int64) int64
}

// Func adapts a pure function to a Sequence.
type Func func(k int64) int64

// At implements Sequence.
func (f Func) At(k int64) int64 { return f(k) }

// Constant returns the sequence that is always v — a data-independent rate.
func Constant(v int64) Sequence { return constantSeq(v) }

type constantSeq int64

func (c constantSeq) At(int64) int64 { return int64(c) }

// Cycle returns the sequence vals[k mod len(vals)]. It panics if vals is
// empty. Cycle(2, 3) reproduces the alternating consumption of the paper's
// Figure 3.
func Cycle(vals ...int64) Sequence {
	if len(vals) == 0 {
		panic("quanta: Cycle of no values")
	}
	out := make([]int64, len(vals))
	copy(out, vals)
	return cycleSeq(out)
}

type cycleSeq []int64

func (c cycleSeq) At(k int64) int64 { return c[int(k%int64(len(c)))] }

// Sticky returns a sequence that yields vals[k] while k is in range and the
// last value forever after. It panics if vals is empty.
func Sticky(vals ...int64) Sequence {
	if len(vals) == 0 {
		panic("quanta: Sticky of no values")
	}
	out := make([]int64, len(vals))
	copy(out, vals)
	return stickySeq(out)
}

type stickySeq []int64

func (s stickySeq) At(k int64) int64 {
	if k >= int64(len(s)) {
		return s[len(s)-1]
	}
	return s[k]
}

// MinOf returns the constant sequence at the set's minimum — the adversarial
// "always consume as little as possible" stream of the motivating example.
// If the minimum is zero the smallest positive member is used instead, since
// a stream that never transfers anything makes no progress.
func MinOf(q taskgraph.QuantaSet) Sequence {
	m := q.Min()
	if m == 0 {
		for _, v := range q.Values() {
			if v > 0 {
				m = v
				break
			}
		}
	}
	return Constant(m)
}

// MaxOf returns the constant sequence at the set's maximum.
func MaxOf(q taskgraph.QuantaSet) Sequence { return Constant(q.Max()) }

// AlternateMinMax returns the sequence min, max, min, max, … over the set.
func AlternateMinMax(q taskgraph.QuantaSet) Sequence {
	return Cycle(q.Min(), q.Max())
}

// Bursty returns a sequence alternating runs: lowLen firings at the set's
// minimum followed by highLen at its maximum — the bursty bit-rate shape
// (silence then peak) that stresses buffer sizing hardest. Panics if either
// length is non-positive.
func Bursty(q taskgraph.QuantaSet, lowLen, highLen int64) Sequence {
	if lowLen <= 0 || highLen <= 0 {
		panic(fmt.Sprintf("quanta: Bursty needs positive run lengths, got %d and %d", lowLen, highLen))
	}
	lo, hi := q.Min(), q.Max()
	period := lowLen + highLen
	return Func(func(k int64) int64 {
		if k%period < lowLen {
			return lo
		}
		return hi
	})
}

// Uniform returns a pseudo-random sequence drawn uniformly from the set,
// deterministic in (seed, k): the value of firing k never depends on which
// other firings were sampled first.
func Uniform(q taskgraph.QuantaSet, seed int64) Sequence {
	vals := q.Values()
	return Func(func(k int64) int64 {
		h := splitmix64(uint64(seed) ^ splitmix64(uint64(k)))
		return vals[h%uint64(len(vals))]
	})
}

// Walk returns a pseudo-random walk over the sorted members of the set:
// each firing moves at most one position up or down from the previous
// firing's position. This mimics slowly varying bit rates. Deterministic in
// (seed, k).
func Walk(q taskgraph.QuantaSet, seed int64) Sequence {
	vals := q.Values()
	n := int64(len(vals))
	return Func(func(k int64) int64 {
		// Position after k steps: prefix sum of {-1, 0, +1} increments,
		// computed incrementally but memo-free by hashing each step.
		// To stay O(1) per call we derive the position from a hash of a
		// coarse epoch plus fine steps; for exactness and purity we walk
		// from the epoch boundary (at most 64 steps).
		const epoch = 64
		start := (k / epoch) * epoch
		pos := int64(splitmix64(uint64(seed)^uint64(start)) % uint64(n))
		for i := start; i <= k; i++ {
			step := int64(splitmix64(uint64(seed)+uint64(i)*0x6a09e667f3bcc909) % 3)
			pos += step - 1
			if pos < 0 {
				pos = 0
			}
			if pos >= n {
				pos = n - 1
			}
		}
		return vals[pos]
	})
}

// FromSlice returns a sequence reading successive values from vals and
// failing loudly (panicking) when read past the end; for trace-driven
// simulation where exhausting the trace is a harness bug.
func FromSlice(vals []int64) Sequence {
	out := make([]int64, len(vals))
	copy(out, vals)
	return Func(func(k int64) int64 {
		if k < 0 || k >= int64(len(out)) {
			panic(fmt.Sprintf("quanta: trace exhausted at firing %d (len %d)", k, len(out)))
		}
		return out[k]
	})
}

// Checked wraps seq so that every value is verified to be a member of the
// set; a value outside the set panics, flagging a misconfigured workload
// before it corrupts a simulation.
func Checked(seq Sequence, set taskgraph.QuantaSet) Sequence {
	return Func(func(k int64) int64 {
		v := seq.At(k)
		if !set.Contains(v) {
			panic(fmt.Sprintf("quanta: firing %d drew quantum %d outside the declared set %v", k, v, set))
		}
		return v
	})
}

// Validate eagerly checks the first n values of seq against the set and
// returns an error on the first violation. Useful at configuration
// boundaries where a panic is inappropriate.
func Validate(seq Sequence, set taskgraph.QuantaSet, n int64) error {
	for k := int64(0); k < n; k++ {
		if v := seq.At(k); !set.Contains(v) {
			return fmt.Errorf("quanta: firing %d has quantum %d outside set %v", k, v, set)
		}
	}
	return nil
}

// splitmix64 is the SplitMix64 mixing function; a tiny, well-distributed
// stateless hash suitable for reproducible workload generation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
