package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/probecache"
	"vrdfcap/internal/ratio"
)

// ProbePath is the URL path of the batch period-probe endpoint the
// coordinator drives, served by internal/serve on every vrdfserve worker.
const ProbePath = "/v1/probe"

// maxProbeResponse caps what the client reads back for one verdict batch —
// a runaway guard against a misbehaving worker, far above any real batch.
const maxProbeResponse = 8 << 20

// Prober answers one batch of period-feasibility probes for the fixed
// (graph, constrained task, policy) triple it was built for. The returned
// slice is index-aligned with the request: verdicts[i] answers periods[i].
//
// A Prober makes no resilience promise — the coordinator (Sweep) owns
// deadlines, retries, circuit breaking and reassignment; the prober simply
// answers or errors. Implementations must be safe for concurrent use and
// must honour the Context.
type Prober interface {
	Probe(ctx context.Context, periods []ratio.Rat) ([]probecache.Verdict, error)
	// String names the worker for stats lines, e.g. "http://host:8080".
	String() string
}

// LocalProber answers one period probe on the coordinator's own machine —
// the graceful-degradation tier Sweep falls back to when a shard exhausts
// its remote options or every worker is demoted. It must be the same pure
// function of the period the workers compute, so a sweep's result does not
// depend on where each probe ran.
type LocalProber func(ctx context.Context, period ratio.Rat) (probecache.Verdict, error)

// HTTPProber drives the /v1/probe batch endpoint of one remote vrdfserve
// worker: POST the graph document with the policy and a comma-joined
// period batch in the query, and decode the verdict batch. The worker
// computes (or answers from its own caches) every period in the batch;
// coalescing on the worker collapses identical in-flight batches fleet-wide.
type HTTPProber struct {
	base   string
	policy string
	doc    []byte
	client *http.Client
}

// NewHTTPProber returns a prober for the worker at baseURL (scheme + host,
// e.g. "http://worker1:8080"; any path or trailing slash is stripped). The
// document must carry the sweep's graph and throughput constraint; the
// policy names the capacity policy every probe applies.
func NewHTTPProber(baseURL, policy string, doc []byte) (*HTTPProber, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("dispatch: bad worker URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("dispatch: worker URL %q must be http or https", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("dispatch: worker URL %q has no host", baseURL)
	}
	return &HTTPProber{
		base:   u.Scheme + "://" + u.Host,
		policy: policy,
		doc:    doc,
		// No client-level timeout: per-shard deadlines come from the
		// Context (the coordinator applies Options.ShardTimeout there), so
		// one knob governs every worker.
		client: &http.Client{},
	}, nil
}

func (p *HTTPProber) String() string { return p.base }

// probeVerdict is the wire form of one verdict in a /v1/probe response.
type probeVerdict struct {
	Period string `json:"period"`
	Valid  bool   `json:"valid"`
	Total  int64  `json:"total"`
}

// probeResponse is the JSON shape of a /v1/probe exchange.
type probeResponse struct {
	Task     string         `json:"task"`
	Policy   string         `json:"policy"`
	Verdicts []probeVerdict `json:"verdicts"`
}

// Probe implements Prober. The response is validated against the request
// — the worker must echo exactly the requested periods, in order — so a
// confused or truncated answer is an error the coordinator retries or
// reassigns, never a silently wrong fold.
func (p *HTTPProber) Probe(ctx context.Context, periods []ratio.Rat) ([]probecache.Verdict, error) {
	canon := make([]string, len(periods))
	for i, tau := range periods {
		canon[i] = tau.String()
	}
	q := url.Values{}
	q.Set("policy", p.policy)
	q.Set("periods", strings.Join(canon, ","))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		p.base+ProbePath+"?"+q.Encode(), bytes.NewReader(p.doc))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		// The transport wraps context errors; classify so cancellation
		// keeps its typed identity through the prober.
		return nil, budget.Classify(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		msg := strings.TrimSpace(string(data))
		if msg == "" {
			msg = resp.Status
		}
		return nil, fmt.Errorf("dispatch: worker %s answered %d: %s", p.base, resp.StatusCode, msg)
	}
	var pr probeResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxProbeResponse)).Decode(&pr); err != nil {
		return nil, fmt.Errorf("dispatch: worker %s: bad probe response: %w", p.base, budget.Classify(err))
	}
	if len(pr.Verdicts) != len(periods) {
		return nil, fmt.Errorf("dispatch: worker %s answered %d verdicts for %d periods", p.base, len(pr.Verdicts), len(periods))
	}
	out := make([]probecache.Verdict, len(periods))
	for i, v := range pr.Verdicts {
		if v.Period != canon[i] {
			return nil, fmt.Errorf("dispatch: worker %s answered period %s where %s was asked", p.base, v.Period, canon[i])
		}
		out[i] = probecache.Verdict{Valid: v.Valid, Total: v.Total}
	}
	return out, nil
}
