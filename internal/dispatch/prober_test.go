package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/ratio"
)

// probeHandler answers the /v1/probe wire protocol with refVerdict,
// after the mutate hook has had a chance to corrupt the response.
func probeHandler(t *testing.T, mutate func(*probeResponse)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != ProbePath {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
			http.Error(w, "bad route", http.StatusNotFound)
			return
		}
		if body, _ := io.ReadAll(r.Body); len(body) == 0 {
			t.Error("probe request carried no graph document")
		}
		resp := probeResponse{Task: "b", Policy: r.URL.Query().Get("policy")}
		for _, part := range strings.Split(r.URL.Query().Get("periods"), ",") {
			tau, err := ratio.Parse(part)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			v := refVerdict(tau)
			resp.Verdicts = append(resp.Verdicts, probeVerdict{
				Period: tau.String(), Valid: v.Valid, Total: v.Total,
			})
		}
		if mutate != nil {
			mutate(&resp)
		}
		_ = json.NewEncoder(w).Encode(resp)
	})
}

func TestHTTPProberRoundTrip(t *testing.T) {
	ts := httptest.NewServer(probeHandler(t, nil))
	defer ts.Close()
	p, err := NewHTTPProber(ts.URL, "equation4", []byte("doc"))
	if err != nil {
		t.Fatalf("NewHTTPProber: %v", err)
	}
	periods := grid(8)
	got, err := p.Probe(context.Background(), periods)
	if err != nil {
		t.Fatalf("Probe: %v", err)
	}
	mustMatch(t, got, expectedFor(periods))
}

// TestHTTPProberRejectsConfusedAnswers pins the validation that keeps a
// misbehaving worker from silently corrupting a fold: wrong period echo,
// wrong verdict count and non-200 statuses are all errors.
func TestHTTPProberRejectsConfusedAnswers(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*probeResponse)
		want   string
	}{
		{"wrong period", func(r *probeResponse) { r.Verdicts[0].Period = "99/7" }, "where"},
		{"short batch", func(r *probeResponse) { r.Verdicts = r.Verdicts[:1] }, "verdicts"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(probeHandler(t, tc.mutate))
			defer ts.Close()
			p, err := NewHTTPProber(ts.URL, "equation4", []byte("doc"))
			if err != nil {
				t.Fatalf("NewHTTPProber: %v", err)
			}
			_, err = p.Probe(context.Background(), grid(4))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}

	t.Run("non-200", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
		}))
		defer ts.Close()
		p, err := NewHTTPProber(ts.URL, "equation4", []byte("doc"))
		if err != nil {
			t.Fatalf("NewHTTPProber: %v", err)
		}
		_, err = p.Probe(context.Background(), grid(4))
		if err == nil || !strings.Contains(err.Error(), "503") {
			t.Fatalf("err = %v, want the 503 surfaced", err)
		}
	})
}

// TestHTTPProberCancellation pins the typed budget identity through the
// transport: a cancelled context is ErrCanceled, not a generic net error.
func TestHTTPProberCancellation(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer ts.Close()
	p, err := NewHTTPProber(ts.URL, "equation4", []byte("doc"))
	if err != nil {
		t.Fatalf("NewHTTPProber: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	if _, err := p.Probe(ctx, grid(2)); !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestNewHTTPProberValidation(t *testing.T) {
	for _, bad := range []string{"", "not a url", "ftp://host", "http://"} {
		if _, err := NewHTTPProber(bad, "equation4", nil); err == nil {
			t.Errorf("NewHTTPProber(%q): want error", bad)
		}
	}
	p, err := NewHTTPProber("http://worker:8080/some/path/", "equation4", nil)
	if err != nil {
		t.Fatalf("NewHTTPProber: %v", err)
	}
	if p.String() != "http://worker:8080" {
		t.Fatalf("base = %q, want the path stripped", p.String())
	}
}
