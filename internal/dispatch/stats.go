package dispatch

import (
	"fmt"
	"sort"
	"sync"
)

// Stats accumulates coordinator effort counters across one or more sweeps:
// per-worker shard, period, retry, steal and failure counts, plus the
// coordinator-side fallback and skip totals. A long-lived coordinator (a
// vrdfserve fanning out its /v1/sweep requests) keeps one Stats for its
// lifetime and surfaces it on /statsz; a CLI keeps one per invocation for
// -stats.
//
// Safe for concurrent use.
type Stats struct {
	mu      sync.Mutex
	workers map[string]*workerCounters
	// coordinator-level counters
	sweeps       int64
	localShards  int64
	localPeriods int64
	skipped      int64
	reassigned   int64
}

// workerCounters is the mutable per-worker cell behind the snapshot.
type workerCounters struct {
	shards    int64
	periods   int64
	retries   int64
	steals    int64
	failures  int64
	demotions int64
}

// WorkerSnapshot is the immutable per-worker view of one Stats snapshot.
type WorkerSnapshot struct {
	// Worker is the prober's String() — for HTTP workers, the base URL.
	Worker string `json:"worker"`
	// Shards counts shard batches this worker answered successfully.
	Shards int64 `json:"shards"`
	// Periods counts the period probes inside those shards.
	Periods int64 `json:"periods"`
	// Retries counts backoff-delayed re-attempts against this worker.
	Retries int64 `json:"retries"`
	// Steals counts shards this worker stole from another queue.
	Steals int64 `json:"steals"`
	// Failures counts shards that exhausted their retries here.
	Failures int64 `json:"failures"`
	// Demotions counts sweeps that demoted this worker (circuit opened).
	Demotions int64 `json:"demotions"`
}

// Snapshot is the JSON-encodable view of a Stats.
type Snapshot struct {
	// Sweeps counts coordinated sweeps folded into this Stats.
	Sweeps int64 `json:"sweeps"`
	// Workers is sorted by worker name so encodings are deterministic.
	Workers []WorkerSnapshot `json:"workers,omitempty"`
	// LocalShards and LocalPeriods count work finished by the
	// coordinator itself after remote attempts were exhausted (graceful
	// degradation), including the everything-demoted case.
	LocalShards  int64 `json:"localShards"`
	LocalPeriods int64 `json:"localPeriods"`
	// SkippedPeriods counts probes answered by an exact verdict already
	// in the shared period frontier — work cancelled everywhere by an
	// earlier return.
	SkippedPeriods int64 `json:"skippedPeriods"`
	// ReassignedShards counts shards re-queued to another worker after
	// failing on their current one.
	ReassignedShards int64 `json:"reassignedShards"`
}

func (s *Stats) worker(name string) *workerCounters {
	if s.workers == nil {
		s.workers = make(map[string]*workerCounters)
	}
	w := s.workers[name]
	if w == nil {
		w = &workerCounters{}
		s.workers[name] = w
	}
	return w
}

func (s *Stats) addSweep() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.sweeps++
	s.mu.Unlock()
}

func (s *Stats) addShard(name string, periods int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	w := s.worker(name)
	w.shards++
	w.periods += int64(periods)
	s.mu.Unlock()
}

func (s *Stats) addRetry(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.worker(name).retries++
	s.mu.Unlock()
}

func (s *Stats) addSteal(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.worker(name).steals++
	s.mu.Unlock()
}

func (s *Stats) addFailure(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.worker(name).failures++
	s.mu.Unlock()
}

func (s *Stats) addDemotion(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.worker(name).demotions++
	s.mu.Unlock()
}

func (s *Stats) addLocal(shards, periods int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.localShards += shards
	s.localPeriods += periods
	s.mu.Unlock()
}

func (s *Stats) addSkipped(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.mu.Lock()
	s.skipped += n
	s.mu.Unlock()
}

func (s *Stats) addReassigned() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.reassigned++
	s.mu.Unlock()
}

// Snapshot returns a copy of the counters with workers sorted by name.
// Safe on a nil Stats (returns the zero Snapshot).
func (s *Stats) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Snapshot{
		Sweeps:           s.sweeps,
		LocalShards:      s.localShards,
		LocalPeriods:     s.localPeriods,
		SkippedPeriods:   s.skipped,
		ReassignedShards: s.reassigned,
	}
	for name, w := range s.workers {
		out.Workers = append(out.Workers, WorkerSnapshot{
			Worker: name, Shards: w.shards, Periods: w.periods,
			Retries: w.retries, Steals: w.steals,
			Failures: w.failures, Demotions: w.demotions,
		})
	}
	sort.Slice(out.Workers, func(i, j int) bool { return out.Workers[i].Worker < out.Workers[j].Worker })
	return out
}

// String renders the snapshot as the multi-line block CLI -stats prints.
func (sn Snapshot) String() string {
	out := fmt.Sprintf("distributed: %d sweep(s), %d period(s) skipped via shared verdicts, %d shard(s) reassigned, local fallback %d shard(s) / %d period(s)",
		sn.Sweeps, sn.SkippedPeriods, sn.ReassignedShards, sn.LocalShards, sn.LocalPeriods)
	for _, w := range sn.Workers {
		out += fmt.Sprintf("\n  worker %s: %d shard(s) (%d periods), %d retries, %d steals, %d failures, %d demotions",
			w.Worker, w.Shards, w.Periods, w.Retries, w.Steals, w.Failures, w.Demotions)
	}
	return out
}
