// Package dispatch shards one period sweep across remote vrdfserve
// workers and folds their verdicts back into a single result that is
// byte-identical to a single-machine run.
//
// The paper answers one period probe at a time; real deployments sweep
// whole period grids, and parametric-rate analyses explode one sweep into
// thousands of grid points. Every probe is a pure, deterministic function
// of (graph, task, policy, period), which makes the sweep embarrassingly
// parallel AND makes correctness easy to state: wherever a probe runs —
// worker 1, worker 2, or the coordinator's own fallback — it returns the
// same verdict, so the folded sweep must equal the single-machine sweep
// under EVERY fault schedule. The chaos suite pins exactly that.
//
// The coordinator's shape:
//
//   - The grid is partitioned into interleaved shards (shard s takes
//     periods s, s+S, s+2S, ...), so every shard spans the whole monotone
//     frontier: early returns insert exact verdicts spread across the grid
//     into the shared probecache frontier, and any shard that is retried,
//     stolen or finished locally skips the periods those returns already
//     decided.
//   - Each worker owns a queue of shards; a worker that drains its own
//     queue steals from the back of the longest remaining queue — which is
//     exactly the slowest (or dead) worker's.
//   - Robustness reuses the internal/cachestore vocabulary: per-shard
//     attempt deadlines, bounded retries with seeded jittered exponential
//     backoff, and a per-worker circuit breaker that demotes a worker
//     after a streak of failed shards. A failed shard is reassigned to the
//     least-loaded live worker; a shard that has failed on every worker —
//     or is left over when every worker is demoted — is finished by the
//     coordinator's local prober. Demotion lasts for the remainder of the
//     sweep (a sweep lives for seconds; cross-sweep health is the next
//     sweep's to rediscover).
//
// Caller cancellation and wall-clock budgets are typed budget errors and
// abort the whole sweep promptly; they are never counted against a
// worker's health.
package dispatch

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/probecache"
	"vrdfcap/internal/ratio"
)

// Options tunes a Sweep. The zero value selects production defaults;
// negative values disable where noted.
type Options struct {
	// ShardsPerWorker is how many shards the grid is cut into per worker
	// (0: 4). More shards mean finer-grained stealing and reassignment at
	// the cost of more round trips.
	ShardsPerWorker int
	// MaxBatch caps the periods of one shard — one /v1/probe request —
	// (0: 64, the serve default for -sweep-periods). Grids larger than
	// workers × ShardsPerWorker × MaxBatch get extra shards.
	MaxBatch int
	// ShardTimeout bounds each remote attempt in wall-clock time
	// (0: 10s; negative: unbounded). The sweep's Deadline and Context
	// still apply on top.
	ShardTimeout time.Duration
	// Retries is the number of additional attempts per shard on the same
	// worker (0: 2; negative: none). Exhausted retries count one failure
	// against the worker and reassign the shard.
	Retries int
	// Backoff is the base delay before the first retry (0: 25ms), doubling
	// up to MaxBackoff (0: 500ms), jittered by a deterministic factor in
	// [0.5, 1.5) drawn from Seed so a fleet of coordinators retrying the
	// same dead worker does not stampede in lockstep.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Seed selects the jitter stream; replicas should differ.
	Seed uint64
	// FailureThreshold is the streak of failed shards that demotes a
	// worker for the remainder of the sweep (0: 3; negative: never).
	FailureThreshold int
	// Context, if non-nil, cancels the sweep cooperatively; the typed
	// error satisfies budget.ErrCanceled.
	Context context.Context
	// Deadline, if non-zero, bounds the sweep in wall-clock time; the
	// typed error satisfies budget.ErrBudgetExceeded.
	Deadline time.Time
	// Cache, if non-nil, is the shared period-verdict frontier: every
	// folded verdict is inserted, and a shard skips periods the cache
	// already answers with an EXACT verdict (a dominance answer decides
	// validity but not the point's total capacity, so it cannot replace
	// the probe). This is how a verdict folded from one worker cancels
	// the same period everywhere — including shards later retried,
	// stolen, or finished locally.
	Cache *probecache.Periods
	// Stats, if non-nil, accumulates per-worker shard/retry/steal
	// counters across sweeps.
	Stats *Stats
	// Sleep is a test seam for the backoff delay (nil: a timer-backed
	// sleep that aborts on Context cancellation).
	Sleep func(ctx context.Context, d time.Duration) error
}

func (o Options) withDefaults() Options {
	if o.ShardsPerWorker <= 0 {
		o.ShardsPerWorker = 4
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	switch {
	case o.ShardTimeout == 0:
		o.ShardTimeout = 10 * time.Second
	case o.ShardTimeout < 0:
		o.ShardTimeout = 0
	}
	switch {
	case o.Retries == 0:
		o.Retries = 2
	case o.Retries < 0:
		o.Retries = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = 25 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 500 * time.Millisecond
	}
	switch {
	case o.FailureThreshold == 0:
		o.FailureThreshold = 3
	case o.FailureThreshold < 0:
		o.FailureThreshold = 0 // never demote
	}
	if o.Sleep == nil {
		o.Sleep = sleepCtx
	}
	return o
}

// sleepCtx waits for d or until the context is cancelled, whichever comes
// first — a retry loop must never outlive its caller.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		if ctx == nil {
			return nil
		}
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	if ctx == nil {
		<-t.C
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// shard is one interleaved slice of the grid: the period indices it
// covers and how many distinct workers have failed it so far.
type shard struct {
	idxs     []int
	attempts int
}

// coordinator is the shared state of one Sweep.
type coordinator struct {
	periods []ratio.Rat
	names   []string // prober String()s, index-aligned with queues

	mu         sync.Mutex
	queues     [][]*shard
	orphans    []*shard // failed everywhere remote; local's to finish
	demoted    []bool
	failstreak []int
	verdicts   []probecache.Verdict
	done       []bool
	err        error

	jitterSeq atomic.Uint64
}

// Sweep probes every period of the grid across the given workers and
// returns the verdicts index-aligned with the input. The result is the
// same []Verdict a purely local evaluation produces, regardless of which
// workers answered, failed, or died mid-sweep: any period a worker never
// answers is computed by the local prober. The only sweep-level errors are
// typed budget aborts (caller cancellation, exhausted deadline) and a
// local-prober failure; worker misbehaviour is absorbed, counted, and
// reported through Options.Stats.
func Sweep(workers []Prober, local LocalProber, periods []ratio.Rat, opt Options) ([]probecache.Verdict, error) {
	if len(periods) == 0 {
		return nil, errors.New("dispatch: empty period sweep")
	}
	if len(workers) == 0 {
		return nil, errors.New("dispatch: no workers (use the local sweep path instead)")
	}
	if local == nil {
		return nil, errors.New("dispatch: nil local prober")
	}
	opt = opt.withDefaults()
	opt.Stats.addSweep()
	bud := budget.At(opt.Context, opt.Deadline)
	c := &coordinator{
		periods:    periods,
		names:      make([]string, len(workers)),
		queues:     make([][]*shard, len(workers)),
		demoted:    make([]bool, len(workers)),
		failstreak: make([]int, len(workers)),
		verdicts:   make([]probecache.Verdict, len(periods)),
		done:       make([]bool, len(periods)),
	}
	for w, p := range workers {
		c.names[w] = p.String()
	}
	c.partition(len(workers), opt)
	var wg sync.WaitGroup
	for w := range workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c.runWorker(w, workers[w], bud, opt)
		}(w)
	}
	wg.Wait()
	c.mu.Lock()
	err := c.err
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := c.finishLocal(local, bud, opt); err != nil {
		return nil, err
	}
	return c.verdicts, nil
}

// partition cuts the grid into interleaved shards and deals them
// round-robin into the per-worker queues: shard s covers indices
// s, s+S, s+2S, ... so each shard samples the whole period range.
func (c *coordinator) partition(nworkers int, opt Options) {
	n := len(c.periods)
	s := nworkers * opt.ShardsPerWorker
	if min := (n + opt.MaxBatch - 1) / opt.MaxBatch; s < min {
		s = min
	}
	if s > n {
		s = n
	}
	for i := 0; i < s; i++ {
		sh := &shard{}
		for j := i; j < n; j += s {
			sh.idxs = append(sh.idxs, j)
		}
		c.queues[i%nworkers] = append(c.queues[i%nworkers], sh)
	}
}

// take pops the next shard for worker w: its own queue front first, then —
// work stealing — the back of the longest other queue, which belongs to
// the slowest (or demoted) worker. A nil return means no work is queued
// anywhere and the worker should exit; shards that fail in flight after
// that are finished locally.
func (c *coordinator) take(w int, opt Options) *shard {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil
	}
	if q := c.queues[w]; len(q) > 0 {
		sh := q[0]
		c.queues[w] = q[1:]
		return sh
	}
	victim := -1
	for v := range c.queues {
		if v == w || len(c.queues[v]) == 0 {
			continue
		}
		if victim == -1 || len(c.queues[v]) > len(c.queues[victim]) {
			victim = v
		}
	}
	if victim == -1 {
		return nil
	}
	q := c.queues[victim]
	sh := q[len(q)-1]
	c.queues[victim] = q[:len(q)-1]
	opt.Stats.addSteal(c.names[w])
	return sh
}

// pending filters a shard down to the periods still worth probing:
// indices already folded are dropped, and periods the shared frontier
// answers with an exact verdict are folded as skipped work. Only exact
// verdicts skip — a monotone-dominance answer decides validity but not
// the point's total capacity.
func (c *coordinator) pending(sh *shard, bud *budget.Budget, opt Options) (batch []ratio.Rat, idxs []int, err error) {
	var skipped int64
	for _, i := range sh.idxs {
		if err := bud.Err(); err != nil {
			return nil, nil, err
		}
		c.mu.Lock()
		d := c.done[i]
		c.mu.Unlock()
		if d {
			continue
		}
		if opt.Cache != nil {
			if v, exact, hit := opt.Cache.Probe(c.periods[i]); hit && exact {
				c.fold([]int{i}, []probecache.Verdict{v}, nil)
				skipped++
				continue
			}
		}
		batch = append(batch, c.periods[i])
		idxs = append(idxs, i)
	}
	opt.Stats.addSkipped(skipped)
	return batch, idxs, nil
}

// fold records verdicts for the given period indices and inserts them
// into the shared frontier (cache may be nil, and is skipped for verdicts
// that just came FROM the cache).
func (c *coordinator) fold(idxs []int, vs []probecache.Verdict, cache *probecache.Periods) {
	c.mu.Lock()
	for k, i := range idxs {
		if !c.done[i] {
			c.done[i] = true
			c.verdicts[i] = vs[k]
		}
	}
	c.mu.Unlock()
	if cache != nil {
		for k, i := range idxs {
			cache.Insert(c.periods[i], vs[k])
		}
	}
}

// abort records the first budget error; later workers observe it in take.
func (c *coordinator) abort(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
}

// runWorker drains shards for worker w until no work is queued, the sweep
// aborts, or the worker is demoted.
func (c *coordinator) runWorker(w int, p Prober, bud *budget.Budget, opt Options) {
	name := c.names[w]
	for {
		if err := bud.Err(); err != nil {
			c.abort(err)
			return
		}
		sh := c.take(w, opt)
		if sh == nil {
			return
		}
		batch, idxs, err := c.pending(sh, bud, opt)
		if err != nil {
			c.abort(err)
			return
		}
		if len(idxs) == 0 {
			continue
		}
		vs, failErr, abortErr := c.attempt(p, batch, bud, opt)
		switch {
		case abortErr != nil:
			c.abort(abortErr)
			return
		case failErr != nil:
			opt.Stats.addFailure(name)
			if c.failShard(w, sh, opt) {
				opt.Stats.addDemotion(name)
				return
			}
		default:
			c.fold(idxs, vs, opt.Cache)
			opt.Stats.addShard(name, len(idxs))
			c.mu.Lock()
			c.failstreak[w] = 0
			c.mu.Unlock()
		}
	}
}

// shardCtx derives the per-attempt context: the caller's context, capped
// by the sweep deadline and the per-shard attempt timeout.
func shardCtx(opt Options) (context.Context, context.CancelFunc) {
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	cancel := func() {}
	if !opt.Deadline.IsZero() {
		ctx, cancel = context.WithDeadline(ctx, opt.Deadline)
	}
	if opt.ShardTimeout > 0 {
		prev := cancel
		var c2 context.CancelFunc
		ctx, c2 = context.WithTimeout(ctx, opt.ShardTimeout)
		cancel = func() { c2(); prev() }
	}
	return ctx, cancel
}

// attempt runs one shard against one worker under the retry policy.
// failErr reports a worker failure (retries exhausted — the worker's
// fault); abortErr reports a caller-attributable abort (cancellation or
// the sweep budget), which is never the worker's fault.
func (c *coordinator) attempt(p Prober, batch []ratio.Rat, bud *budget.Budget, opt Options) (vs []probecache.Verdict, failErr, abortErr error) {
	var lastErr error
	for att := 0; att <= opt.Retries; att++ {
		ctx, cancel := shardCtx(opt)
		vs, err := p.Probe(ctx, batch)
		cancel()
		if err == nil {
			return vs, nil, nil
		}
		if cerr := bud.Err(); cerr != nil {
			// The CALLER's budget ended (the attempt timeout is a child;
			// check the sweep-level budget): abort immediately — a hung-up
			// caller must never be held for another backoff cycle.
			return nil, nil, cerr
		}
		lastErr = err
		if att < opt.Retries {
			opt.Stats.addRetry(p.String())
			if serr := opt.Sleep(opt.Context, c.backoffFor(att, opt)); serr != nil || bud.Err() != nil {
				return nil, nil, budget.Classify(bud.Err())
			}
		}
	}
	return nil, lastErr, nil
}

// backoffFor returns the jittered delay before retry number att (0-based):
// Backoff·2^att capped at MaxBackoff, scaled by a deterministic factor in
// [0.5, 1.5) drawn from the seeded stream (same idiom as
// cachestore.Resilient).
func (c *coordinator) backoffFor(att int, opt Options) time.Duration {
	d := opt.Backoff
	for i := 0; i < att && d < opt.MaxBackoff; i++ {
		d *= 2
	}
	if d > opt.MaxBackoff {
		d = opt.MaxBackoff
	}
	x := splitmix64(opt.Seed ^ c.jitterSeq.Add(1))
	return d/2 + time.Duration(x%uint64(d)) // d/2 + [0, d) = [0.5d, 1.5d)
}

// failShard records a failed shard for worker w: the worker's failure
// streak grows (demoting it at the threshold), and the shard is
// reassigned to the least-loaded live worker that has not already failed
// it — or handed to the local tier when none remains. Reports whether
// this failure demoted w.
func (c *coordinator) failShard(w int, sh *shard, opt Options) (demoted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failstreak[w]++
	if opt.FailureThreshold > 0 && c.failstreak[w] >= opt.FailureThreshold && !c.demoted[w] {
		c.demoted[w] = true
		demoted = true
	}
	sh.attempts++
	if sh.attempts >= len(c.queues) {
		c.orphans = append(c.orphans, sh)
		return demoted
	}
	best := -1
	for v := range c.queues {
		if v == w || c.demoted[v] {
			continue
		}
		if best == -1 || len(c.queues[v]) < len(c.queues[best]) {
			best = v
		}
	}
	if best == -1 {
		c.orphans = append(c.orphans, sh)
		return demoted
	}
	c.queues[best] = append(c.queues[best], sh)
	opt.Stats.addReassigned()
	return demoted
}

// finishLocal is the graceful-degradation tier: every period no worker
// answered — leftover queues of demoted workers, shards that failed
// everywhere, or the whole grid when every worker died — is computed by
// the coordinator's own prober, so the sweep's result never depends on
// worker health.
func (c *coordinator) finishLocal(local LocalProber, bud *budget.Budget, opt Options) error {
	c.mu.Lock()
	shards := append([]*shard(nil), c.orphans...)
	for w, q := range c.queues {
		shards = append(shards, q...)
		c.queues[w] = nil
	}
	c.orphans = nil
	c.mu.Unlock()
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	var localShards, localPeriods int64
	for _, sh := range shards {
		batch, idxs, err := c.pending(sh, bud, opt)
		if err != nil {
			return err
		}
		if len(idxs) == 0 {
			continue
		}
		localShards++
		for k, i := range idxs {
			if err := bud.Err(); err != nil {
				return err
			}
			v, err := local(ctx, batch[k])
			if err != nil {
				return err
			}
			c.fold([]int{i}, []probecache.Verdict{v}, opt.Cache)
			localPeriods++
		}
	}
	// Belt and braces: by construction every index lives in exactly one of
	// done/queues/orphans/in-flight, but a cheap scan keeps the invariant
	// independent of that bookkeeping.
	for i := range c.done {
		if err := bud.Err(); err != nil {
			return err
		}
		c.mu.Lock()
		d := c.done[i]
		c.mu.Unlock()
		if d {
			continue
		}
		v, err := local(ctx, c.periods[i])
		if err != nil {
			return err
		}
		c.fold([]int{i}, []probecache.Verdict{v}, opt.Cache)
		localPeriods++
	}
	opt.Stats.addLocal(localShards, localPeriods)
	return nil
}

// splitmix64 is the finaliser of the splitmix64 generator — the same
// bijective avalanche mix internal/faults and internal/cachestore use —
// so (seed, sequence) pairs hash to independent uniform jitter draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
