package dispatch

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/probecache"
	"vrdfcap/internal/ratio"
)

// refVerdict is the reference probe function every prober and the local
// fallback share: a pure, deterministic function of the period with
// monotone validity (valid iff τ ≥ 1/2), so a sweep's correct answer is
// independent of where each probe ran — the property the chaos suite
// pins.
func refVerdict(tau ratio.Rat) probecache.Verdict {
	valid := !tau.Less(ratio.MustNew(1, 2))
	total := tau.Num()*31 + tau.Den()*17
	if !valid {
		total = tau.Num() + tau.Den()
	}
	return probecache.Verdict{Valid: valid, Total: total}
}

// grid returns n distinct periods straddling the validity threshold.
func grid(n int) []ratio.Rat {
	out := make([]ratio.Rat, n)
	for i := range out {
		out[i] = ratio.MustNew(int64(i+1), int64(n))
	}
	return out
}

func expectedFor(periods []ratio.Rat) []probecache.Verdict {
	out := make([]probecache.Verdict, len(periods))
	for i, tau := range periods {
		out[i] = refVerdict(tau)
	}
	return out
}

func refLocal(_ context.Context, tau ratio.Rat) (probecache.Verdict, error) {
	return refVerdict(tau), nil
}

// faultSpec configures a faultyProber: deterministic faults drawn from the
// seed and the per-prober call counter, same idiom as
// cachestore/faultybackend.
type faultSpec struct {
	Seed uint64
	// ErrorOneIn makes roughly one in n calls fail (0: never).
	ErrorOneIn int
	// DieAfter kills the prober permanently after it has ANSWERED n
	// batches (0: never) — the mid-sweep crash case.
	DieAfter int
	// Partitioned fails every call — a worker that was never reachable.
	Partitioned bool
	// DelayOneIn delays roughly one in n calls by Delay (0: never) — the
	// slow-worker case that work stealing drains around.
	DelayOneIn int
	Delay      time.Duration
}

const (
	saltError = 0x9bdead
	saltDelay = 0x51024e
)

func (s faultSpec) gate(k uint64, salt uint64, oneIn int) bool {
	if oneIn <= 0 {
		return false
	}
	if oneIn == 1 {
		return true
	}
	return splitmix64(s.Seed^splitmix64(k)^salt)%uint64(oneIn) == 0
}

// faultyProber answers probes with refVerdict through a deterministic
// fault schedule.
type faultyProber struct {
	name     string
	spec     faultSpec
	calls    atomic.Uint64
	answered atomic.Int64
}

func (p *faultyProber) String() string { return p.name }

func (p *faultyProber) Probe(ctx context.Context, periods []ratio.Rat) ([]probecache.Verdict, error) {
	k := p.calls.Add(1)
	if p.spec.Partitioned {
		return nil, fmt.Errorf("%s: partitioned", p.name)
	}
	if p.spec.DieAfter > 0 && p.answered.Load() >= int64(p.spec.DieAfter) {
		return nil, fmt.Errorf("%s: dead", p.name)
	}
	if p.spec.gate(k, saltDelay, p.spec.DelayOneIn) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(p.spec.Delay):
		}
	}
	if p.spec.gate(k, saltError, p.spec.ErrorOneIn) {
		return nil, fmt.Errorf("%s: injected error", p.name)
	}
	out := make([]probecache.Verdict, len(periods))
	for i, tau := range periods {
		out[i] = refVerdict(tau)
	}
	p.answered.Add(1)
	return out, nil
}

// noSleep is the backoff seam for chaos tests: retries run back-to-back so
// hundreds of fault schedules finish in milliseconds.
func noSleep(context.Context, time.Duration) error { return nil }

func mustMatch(t *testing.T, got, want []probecache.Verdict) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d verdicts, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("verdict %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestSweepAllHealthy pins the fan-out happy path: every period answered
// remotely, none by the local fallback, and the folded verdicts equal the
// reference.
func TestSweepAllHealthy(t *testing.T) {
	periods := grid(40)
	workers := []Prober{
		&faultyProber{name: "w0"},
		&faultyProber{name: "w1"},
		&faultyProber{name: "w2"},
	}
	stats := &Stats{}
	got, err := Sweep(workers, refLocal, periods, Options{Stats: stats, Sleep: noSleep})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	mustMatch(t, got, expectedFor(periods))
	sn := stats.Snapshot()
	if sn.Sweeps != 1 {
		t.Fatalf("sweeps = %d, want 1", sn.Sweeps)
	}
	if sn.LocalPeriods != 0 || sn.LocalShards != 0 {
		t.Fatalf("healthy sweep fell back locally: %+v", sn)
	}
	var remote int64
	for _, w := range sn.Workers {
		remote += w.Periods
	}
	if remote != int64(len(periods)) {
		t.Fatalf("workers answered %d periods, want %d", remote, len(periods))
	}
}

// TestSweepChaosByteIdentity is the tentpole invariant: under EVERY seeded
// fault schedule — flaky errors, permanent mid-sweep death, partitioned
// workers, injected latency, and any mix — the folded sweep equals the
// reference verdict-for-verdict.
func TestSweepChaosByteIdentity(t *testing.T) {
	periods := grid(60)
	want := expectedFor(periods)
	for seed := uint64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			// The seed morphs the fleet: fault kinds and intensities are
			// drawn from it so the 40 schedules cover error-only, death,
			// partition, latency and combined cases.
			mk := func(i int) *faultyProber {
				h := splitmix64(seed ^ uint64(i)*0x9e37)
				spec := faultSpec{Seed: h}
				if h%3 == 0 {
					spec.ErrorOneIn = 1 + int(h>>8%4) // 1..4: from always-failing to flaky
				}
				if h%5 == 0 {
					spec.DieAfter = int(h >> 16 % 3) // dies after 0..2 answered batches
				}
				if h%7 == 0 {
					spec.Partitioned = true
				}
				if h%2 == 0 {
					spec.DelayOneIn = 3
					spec.Delay = time.Millisecond
				}
				return &faultyProber{name: fmt.Sprintf("w%d", i), spec: spec}
			}
			workers := []Prober{mk(0), mk(1), mk(2)}
			stats := &Stats{}
			cache := probecache.NewPeriods()
			got, err := Sweep(workers, refLocal, periods, Options{
				Stats: stats,
				Cache: cache,
				Seed:  seed,
				Sleep: noSleep,
			})
			if err != nil {
				t.Fatalf("Sweep: %v", err)
			}
			mustMatch(t, got, want)
			// Every verdict must have landed in the shared frontier with
			// its exact value, wherever it was computed.
			for i, tau := range periods {
				v, ok := cache.Lookup(tau)
				if !ok || v != want[i] {
					t.Fatalf("cache.Lookup(%s) = %+v, %v; want %+v", tau, v, ok, want[i])
				}
			}
		})
	}
}

// TestSweepAllDead pins graceful degradation: when every worker is
// unreachable, the local tier computes the whole grid and the result is
// still exact.
func TestSweepAllDead(t *testing.T) {
	periods := grid(30)
	workers := []Prober{
		&faultyProber{name: "w0", spec: faultSpec{Partitioned: true}},
		&faultyProber{name: "w1", spec: faultSpec{Partitioned: true}},
	}
	stats := &Stats{}
	got, err := Sweep(workers, refLocal, periods, Options{Stats: stats, Sleep: noSleep})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	mustMatch(t, got, expectedFor(periods))
	sn := stats.Snapshot()
	if sn.LocalPeriods != int64(len(periods)) {
		t.Fatalf("local fallback computed %d periods, want all %d\n%s", sn.LocalPeriods, len(periods), sn)
	}
	var demotions int64
	for _, w := range sn.Workers {
		demotions += w.Demotions
	}
	if demotions != int64(len(workers)) {
		t.Fatalf("demotions = %d, want every worker (%d) demoted", demotions, len(workers))
	}
}

// TestSweepWorkerLossPrefix is the worker-loss mid-shard property test:
// for EVERY prefix k of completed shards, a fleet that answers exactly k
// batches each and then dies yields the same verdict slice as the
// uninterrupted run — the coordinator finishes the rest locally.
func TestSweepWorkerLossPrefix(t *testing.T) {
	periods := grid(48)
	want := expectedFor(periods)
	// 3 workers x 4 shards each = 12 shards; k sweeps past the total so
	// the all-shards-complete edge is covered too.
	for k := 0; k <= 14; k++ {
		k := k
		t.Run(fmt.Sprintf("prefix=%d", k), func(t *testing.T) {
			t.Parallel()
			// DieAfter: 0 means "never" — the zero-length prefix is a fleet
			// that was dead before the first batch, i.e. partitioned.
			spec := faultSpec{DieAfter: k}
			if k == 0 {
				spec = faultSpec{Partitioned: true}
			}
			workers := []Prober{
				&faultyProber{name: "w0", spec: spec},
				&faultyProber{name: "w1", spec: spec},
				&faultyProber{name: "w2", spec: spec},
			}
			stats := &Stats{}
			got, err := Sweep(workers, refLocal, periods, Options{Stats: stats, Sleep: noSleep})
			if err != nil {
				t.Fatalf("Sweep: %v", err)
			}
			mustMatch(t, got, want)
			if k == 0 {
				if sn := stats.Snapshot(); sn.LocalPeriods != int64(len(periods)) {
					t.Fatalf("k=0 should finish entirely locally, got %+v", sn)
				}
			}
		})
	}
}

// TestSweepCacheSkip pins the shared-frontier fold: periods the cache
// already answers exactly are never probed again, and the skip is counted.
func TestSweepCacheSkip(t *testing.T) {
	periods := grid(40)
	want := expectedFor(periods)
	cache := probecache.NewPeriods()
	for i := 0; i < len(periods); i += 2 {
		cache.Insert(periods[i], want[i])
	}
	w := &faultyProber{name: "w0"}
	stats := &Stats{}
	got, err := Sweep([]Prober{w}, refLocal, periods, Options{Cache: cache, Stats: stats, Sleep: noSleep})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	mustMatch(t, got, want)
	sn := stats.Snapshot()
	if sn.SkippedPeriods != int64(len(periods)/2) {
		t.Fatalf("skipped %d periods, want %d", sn.SkippedPeriods, len(periods)/2)
	}
	var remote int64
	for _, ws := range sn.Workers {
		remote += ws.Periods
	}
	if remote != int64(len(periods)/2) {
		t.Fatalf("worker answered %d periods, want %d", remote, len(periods)/2)
	}
}

// TestSweepBudgetAbort pins the typed abort paths: a cancelled context and
// an exhausted deadline end the sweep with the budget error, not a fold.
func TestSweepBudgetAbort(t *testing.T) {
	periods := grid(10)
	w := &faultyProber{name: "w0"}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Sweep([]Prober{w}, refLocal, periods, Options{Context: ctx, Sleep: noSleep})
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("cancelled sweep: err = %v, want ErrCanceled", err)
	}

	_, err = Sweep([]Prober{w}, refLocal, periods, Options{Deadline: time.Now().Add(-time.Second), Sleep: noSleep})
	if !errors.Is(err, budget.ErrBudgetExceeded) {
		t.Fatalf("expired sweep: err = %v, want ErrBudgetExceeded", err)
	}
}

// TestSweepArgErrors pins the contract errors.
func TestSweepArgErrors(t *testing.T) {
	w := &faultyProber{name: "w0"}
	if _, err := Sweep([]Prober{w}, refLocal, nil, Options{}); err == nil {
		t.Fatal("empty grid: want error")
	}
	if _, err := Sweep(nil, refLocal, grid(4), Options{}); err == nil {
		t.Fatal("no workers: want error")
	}
	if _, err := Sweep([]Prober{w}, nil, grid(4), Options{}); err == nil {
		t.Fatal("nil local prober: want error")
	}
}

// TestSweepLocalProberError pins that a local-tier failure surfaces: the
// fallback is the correctness backstop, so its errors must not be eaten.
func TestSweepLocalProberError(t *testing.T) {
	boom := errors.New("boom")
	bad := func(context.Context, ratio.Rat) (probecache.Verdict, error) {
		return probecache.Verdict{}, boom
	}
	w := &faultyProber{name: "w0", spec: faultSpec{Partitioned: true}}
	if _, err := Sweep([]Prober{w}, bad, grid(4), Options{Sleep: noSleep}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the local prober's error", err)
	}
}

// TestBackoffJitterBounds pins the [0.5d, 1.5d) jitter window and the
// exponential cap, mirroring the cachestore.Resilient contract.
func TestBackoffJitterBounds(t *testing.T) {
	c := &coordinator{}
	opt := Options{Backoff: 100 * time.Millisecond, MaxBackoff: 400 * time.Millisecond, Seed: 7}.withDefaults()
	for att := 0; att < 6; att++ {
		base := 100 * time.Millisecond << uint(att)
		if base > opt.MaxBackoff {
			base = opt.MaxBackoff
		}
		for i := 0; i < 32; i++ {
			d := c.backoffFor(att, opt)
			if d < base/2 || d >= base+base/2 {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v)", att, d, base/2, base+base/2)
			}
		}
	}
}
