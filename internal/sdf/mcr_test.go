package sdf

import (
	"strings"
	"testing"

	"vrdfcap/internal/mp3"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
	"vrdfcap/internal/vrdf"
)

// credit builds a two-actor credit loop: u→v carries data (p, c, 0 initial),
// v→u returns credits (c', p', d initial) — the VRDF buffer shape.
func credit(t *testing.T, rhoU, rhoV ratio.Rat, p, c, d int64) *vrdf.Graph {
	t.Helper()
	g := vrdf.New()
	if _, err := g.AddActor("u", rhoU); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddActor("v", rhoV); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(vrdf.Edge{Name: "data", Src: "u", Dst: "v",
		Prod: taskgraph.MustQuanta(p), Cons: taskgraph.MustQuanta(c)}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(vrdf.Edge{Name: "space", Src: "v", Dst: "u",
		Prod: taskgraph.MustQuanta(c), Cons: taskgraph.MustQuanta(p), Initial: d}); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestToHSDFStructure(t *testing.T) {
	g := credit(t, r(1, 1), r(1, 1), 2, 3, 6)
	q, err := RepetitionVector(g)
	if err != nil {
		t.Fatal(err)
	}
	if q["u"] != 3 || q["v"] != 2 {
		t.Fatalf("q = %v", q)
	}
	h, err := ToHSDF(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Nodes) != 5 {
		t.Fatalf("nodes = %d, want 5", len(h.Nodes))
	}
	// Serialisation edges: one per firing (5); data dependences: one per
	// consumer firing per edge (2 for data, 3 for space).
	if len(h.Edges) != 5+2+3 {
		t.Fatalf("edges = %d, want 10", len(h.Edges))
	}
	for _, e := range h.Edges {
		if e.Tokens < 0 {
			t.Fatalf("negative iteration distance: %+v", e)
		}
	}
}

func TestMaxCycleRatioCreditLoop(t *testing.T) {
	// Unit rates, ρ(u) = ρ(v) = 1. With 2 credits the cross cycle
	// (delay 2, 1 token) binds: λ = 2. With 3+ credits the self loops
	// bind: λ = 1.
	cases := []struct {
		d    int64
		want ratio.Rat
	}{
		{1, r(2, 1)}, // 1 credit: strict ping-pong, λ = 2
		{2, r(2, 1)}, // 2 credits: cross cycle at distance 1 still binds... measured below
		{3, r(1, 1)},
		{8, r(1, 1)},
	}
	for _, c := range cases {
		g := credit(t, r(1, 1), r(1, 1), 1, 1, c.d)
		got, err := AnalyticPeriod(g, "v")
		if err != nil {
			t.Fatalf("d=%d: %v", c.d, err)
		}
		// Cross-validate against the simulator's steady state before
		// trusting the hand-computed expectation.
		meas := steadyPeriod(t, g, "v")
		if !got.Equal(meas) {
			t.Errorf("d=%d: analytic %v != simulated %v", c.d, got, meas)
		}
		if c.d != 2 && !got.Equal(c.want) {
			t.Errorf("d=%d: λ = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestMaxCycleRatioMultiRate(t *testing.T) {
	// Multirate credit loop: p=2, c=3, ρ(u)=1, ρ(v)=3. Validate the
	// analytic period against the simulator for several capacities.
	for _, d := range []int64{3, 4, 6, 7, 12} {
		g := credit(t, r(1, 1), r(3, 1), 2, 3, d)
		q, err := RepetitionVector(g)
		if err != nil {
			t.Fatal(err)
		}
		if dl := CheckDeadlockFree(g, q); dl != nil {
			// Small capacities may deadlock; AnalyticPeriod must
			// agree.
			if _, err := AnalyticPeriod(g, "v"); err == nil {
				t.Errorf("d=%d: deadlocked graph got an analytic period", d)
			}
			continue
		}
		analytic, err := AnalyticPeriod(g, "v")
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		meas := steadyPeriod(t, g, "v")
		if !analytic.Equal(meas) {
			t.Errorf("d=%d: analytic %v != simulated %v", d, analytic, meas)
		}
	}
}

func TestMaxCycleRatioFractionalDelays(t *testing.T) {
	// Rational response times exercise the exact candidate recovery.
	g := credit(t, r(1, 3), r(5, 7), 1, 1, 2)
	analytic, err := AnalyticPeriod(g, "v")
	if err != nil {
		t.Fatal(err)
	}
	meas := steadyPeriod(t, g, "v")
	if !analytic.Equal(meas) {
		t.Errorf("analytic %v != simulated %v", analytic, meas)
	}
}

// steadyPeriod measures the exact steady-state per-iteration period from
// the simulator: the distance between iteration-aligned starts at the end
// of a long run, divided by the repetition count.
func steadyPeriod(t *testing.T, g *vrdf.Graph, actor string) ratio.Rat {
	t.Helper()
	q, err := RepetitionVector(g)
	if err != nil {
		t.Fatal(err)
	}
	reps := q[actor]
	iters := int64(30)
	res, err := sim.Run(sim.Config{
		Graph:        g,
		Stop:         sim.Stop{Actor: actor, Firings: reps * iters},
		RecordStarts: []string{actor},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != sim.Completed {
		t.Fatalf("simulation %v", res.Outcome)
	}
	starts := res.Starts[actor]
	n := len(starts)
	lambdaTicks := starts[n-1] - starts[n-1-int(reps)]
	return ratio.MustNew(lambdaTicks, res.Base.TicksPerUnit).DivInt(reps)
}

func TestHSDFGuardRejectsMP3(t *testing.T) {
	// The constant-rate MP3 chain's iteration has 169,963 firings: the
	// classical expansion refuses, illustrating the scalability trap.
	tg, err := mp3.GraphWithFrameQuanta(taskgraph.MustQuanta(960))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range mp3.BufferNames() {
		tg.BufferByName(n).Capacity = 10000
	}
	g, _, err := vrdf.FromTaskGraph(tg)
	if err != nil {
		t.Fatal(err)
	}
	q, err := RepetitionVector(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ToHSDF(g, q); err == nil {
		t.Fatal("HSDF guard did not trigger")
	} else if !strings.Contains(err.Error(), "guard") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestMaxCycleRatioDetectsDeadlock(t *testing.T) {
	// Zero credits: the cross cycle carries no tokens.
	g := credit(t, r(1, 1), r(1, 1), 1, 1, 0)
	q := map[string]int64{"u": 1, "v": 1}
	h, err := ToHSDF(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MaxCycleRatio(h); err == nil {
		t.Fatal("zero-token cycle not detected")
	}
}

func TestAnalyticPeriodValidation(t *testing.T) {
	g := credit(t, r(1, 1), r(1, 1), 1, 1, 2)
	if _, err := AnalyticPeriod(g, "nope"); err == nil {
		t.Error("unknown actor accepted")
	}
}
