package sdf

import (
	"fmt"

	"vrdfcap/internal/ratio"
	"vrdfcap/internal/vrdf"
)

// MaxCycleRatio computes the exact maximum cycle ratio of an HSDF graph:
//
//	λ* = max over cycles C of  Σ_{e∈C} Delay(e) / Σ_{e∈C} Tokens(e)
//
// λ* is the asymptotic iteration period of the self-timed execution; actor
// a fires q(a) times per λ*, so its steady-state firing period is λ*/q(a).
//
// The algorithm is an exact rational binary search: λ is feasible (λ ≥ λ*)
// iff the graph with edge weights Delay(e) − λ·Tokens(e) has no positive
// cycle (checked with Bellman–Ford longest-path relaxation). The search
// interval is narrowed below the minimum gap between distinct candidate
// ratios, after which the unique candidate n/(D·m) inside the interval is
// recovered exactly by enumerating cycle token counts m.
func MaxCycleRatio(h *HSDF) (ratio.Rat, error) {
	if len(h.Nodes) == 0 {
		return ratio.Rat{}, fmt.Errorf("sdf: empty HSDF graph")
	}
	// Every cycle must hold at least one token, or the graph deadlocks
	// (zero-token positive-delay cycle → λ* unbounded). Verify by
	// checking feasibility of a huge λ; cheaper: run the positive-cycle
	// check with weights Delay − 0·Tokens on the zero-token subgraph.
	if hasZeroTokenCycle(h) {
		return ratio.Rat{}, fmt.Errorf("sdf: HSDF graph has a zero-token cycle (deadlock)")
	}

	// Common denominator of all delays and the maximum token count on a
	// simple cycle (bounded by the total tokens plus one per node for
	// safety).
	den := int64(1)
	var maxTokens int64
	hi := ratio.One
	for _, e := range h.Edges {
		den = ratio.LCM(den, e.Delay.Den())
		maxTokens += e.Tokens
		hi = hi.Add(e.Delay)
	}
	if maxTokens == 0 {
		return ratio.Rat{}, fmt.Errorf("sdf: no tokens anywhere; graph cannot cycle")
	}
	lo := ratio.Zero // infeasible: some positive-delay cycle exists

	if !feasible(h, hi) {
		return ratio.Rat{}, fmt.Errorf("sdf: internal error: upper bound %v infeasible", hi)
	}
	// Narrow (lo, hi] below the candidate gap 1/(D·M²).
	gap := ratio.MustNew(1, den).DivInt(maxTokens).DivInt(maxTokens)
	for hi.Sub(lo).Cmp(gap) > 0 {
		mid := lo.Add(hi).DivInt(2)
		if feasible(h, mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	// λ* is the unique candidate n/(D·m) with 1 <= m <= maxTokens in
	// (lo, hi]. Enumerate m and test the single integer n that lands in
	// the interval.
	for m := int64(1); m <= maxTokens; m++ {
		scale := ratio.FromInt(den).MulInt(m)
		n := hi.Mul(scale).Floor()
		cand, err := ratio.New(n, den*m)
		if err != nil {
			return ratio.Rat{}, err
		}
		if lo.Less(cand) && cand.LessEq(hi) && feasible(h, cand) {
			// Also require that anything strictly below is
			// infeasible — guaranteed by the interval width, but
			// cheap to assert via lo.
			return cand, nil
		}
	}
	return ratio.Rat{}, fmt.Errorf("sdf: no candidate ratio found in (%v, %v]; widen the guard", lo, hi)
}

// feasible reports whether the graph with weights Delay − λ·Tokens has no
// positive cycle.
func feasible(h *HSDF, lambda ratio.Rat) bool {
	n := len(h.Nodes)
	dist := make([]ratio.Rat, n) // all zero: longest-path potentials
	w := make([]ratio.Rat, len(h.Edges))
	for i, e := range h.Edges {
		w[i] = e.Delay.Sub(lambda.MulInt(e.Tokens))
	}
	for pass := 0; pass < n; pass++ {
		changed := false
		for i, e := range h.Edges {
			if cand := dist[e.Src].Add(w[i]); dist[e.Dst].Less(cand) {
				dist[e.Dst] = cand
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
	// Still relaxing after n passes: positive cycle.
	for i, e := range h.Edges {
		if dist[e.Dst].Less(dist[e.Src].Add(w[i])) {
			return false
		}
	}
	return true
}

// hasZeroTokenCycle detects a cycle in the zero-token subgraph.
func hasZeroTokenCycle(h *HSDF) bool {
	n := len(h.Nodes)
	adj := make([][]int, n)
	for _, e := range h.Edges {
		if e.Tokens == 0 {
			adj[e.Src] = append(adj[e.Src], e.Dst)
		}
	}
	state := make([]int8, n) // 0 unseen, 1 in stack, 2 done
	var dfs func(int) bool
	dfs = func(u int) bool {
		state[u] = 1
		for _, v := range adj[u] {
			switch state[v] {
			case 0:
				if dfs(v) {
					return true
				}
			case 1:
				return true
			}
		}
		state[u] = 2
		return false
	}
	for u := 0; u < n; u++ {
		if state[u] == 0 && dfs(u) {
			return true
		}
	}
	return false
}

// AnalyticPeriod returns the exact steady-state firing period of the named
// actor under self-timed execution: MaxCycleRatio / q(actor). This is the
// quantity MeasureThroughput estimates by simulation; the two must agree on
// graphs small enough for the HSDF expansion.
func AnalyticPeriod(g *vrdf.Graph, actor string) (ratio.Rat, error) {
	q, err := RepetitionVector(g)
	if err != nil {
		return ratio.Rat{}, err
	}
	reps, ok := q[actor]
	if !ok {
		return ratio.Rat{}, fmt.Errorf("sdf: actor %q not in graph", actor)
	}
	if dl := CheckDeadlockFree(g, q); dl != nil {
		return ratio.Rat{}, fmt.Errorf("sdf: graph deadlocks (blocked: %v)", dl.Blocked)
	}
	h, err := ToHSDF(g, q)
	if err != nil {
		return ratio.Rat{}, err
	}
	lambda, err := MaxCycleRatio(h)
	if err != nil {
		return ratio.Rat{}, err
	}
	return lambda.DivInt(reps), nil
}
