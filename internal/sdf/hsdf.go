package sdf

import (
	"fmt"

	"vrdfcap/internal/ratio"
	"vrdfcap/internal/vrdf"
)

// HSDF is a homogeneous SDF graph: every firing of the original SDF graph
// within one iteration becomes a node, and every edge carries unit rates.
// It is the classical intermediate representation on which exact throughput
// analysis (maximum cycle ratio) runs — and whose size blowup (the sum of
// the repetition vector) is the scalability weakness of the traditional
// flow that run-time analyses like the paper's avoid.
type HSDF struct {
	// Nodes holds one entry per (actor, firing-within-iteration),
	// ordered actor by actor.
	Nodes []HSDFNode
	// Edges holds the precedence constraints.
	Edges []HSDFEdge
}

// HSDFNode is one firing of an actor within the iteration.
type HSDFNode struct {
	Actor  string
	Firing int64 // 0-based within the iteration
}

// HSDFEdge is a precedence: node Dst starts at least Delay after node Src
// started, when Src is taken from Tokens iterations earlier.
type HSDFEdge struct {
	Src, Dst int // node indices
	// Delay is the timing weight: the source's response time.
	Delay ratio.Rat
	// Tokens is the iteration distance (initial tokens on the edge).
	Tokens int64
}

// MaxHSDFNodes guards against the repetition-vector blowup: ToHSDF refuses
// graphs whose iteration exceeds this many firings. (The MP3 chain's
// iteration has 169,963 firings — analysing it this way is exactly the
// scalability trap the traditional flow falls into.)
const MaxHSDFNodes = 20000

// ToHSDF expands a constant-rate graph into its homogeneous form using the
// repetition vector q. For each SDF edge (u→v, p, c, d) and each consumer
// firing j, the binding dependence is on the producer firing that emits the
// last token firing j consumes: k = ⌈((j+1)·c − d)/p⌉ − 1; k is mapped to
// the node k mod q(u) with iteration distance −⌊k/q(u)⌋. Per-actor
// serialisation cycles (firing j+1 after firing j, wrapping with one token)
// encode that firings of one actor never overlap.
func ToHSDF(g *vrdf.Graph, q map[string]int64) (*HSDF, error) {
	if err := IsSDF(g); err != nil {
		return nil, err
	}
	total := IterationLength(q)
	if total > MaxHSDFNodes {
		return nil, fmt.Errorf("sdf: iteration has %d firings, above the %d-node HSDF guard — the classical expansion does not scale to this graph", total, MaxHSDFNodes)
	}
	h := &HSDF{}
	index := make(map[string]int, len(g.Actors())) // actor -> first node index
	for _, a := range g.Actors() {
		reps := q[a.Name]
		if reps <= 0 {
			return nil, fmt.Errorf("sdf: actor %s has repetition count %d", a.Name, reps)
		}
		index[a.Name] = len(h.Nodes)
		for j := int64(0); j < reps; j++ {
			h.Nodes = append(h.Nodes, HSDFNode{Actor: a.Name, Firing: j})
		}
	}
	// Serialisation cycles.
	for _, a := range g.Actors() {
		reps := q[a.Name]
		base := index[a.Name]
		for j := int64(0); j < reps; j++ {
			next := (j + 1) % reps
			tokens := int64(0)
			if next == 0 {
				tokens = 1
			}
			h.Edges = append(h.Edges, HSDFEdge{
				Src: base + int(j), Dst: base + int(next),
				Delay:  a.Rho,
				Tokens: tokens,
			})
		}
	}
	// Data dependences.
	for _, e := range g.Edges() {
		p, c, d := e.Prod.Max(), e.Cons.Max(), e.Initial
		qu, qv := q[e.Src], q[e.Dst]
		srcBase, dstBase := index[e.Src], index[e.Dst]
		rhoSrc := g.Actor(e.Src).Rho
		for j := int64(0); j < qv; j++ {
			// The producer's global firing emitting the last token
			// consumed by the consumer's global firing j + n·q(v) is
			// k + n·q(u): the dependence pattern repeats per
			// iteration with a constant distance. A j whose first
			// iterations are served by initial tokens still depends
			// on earlier-iteration firings once n grows, which the
			// positive iteration distance encodes.
			need := (j+1)*c - d
			k := ceilDiv(need, p) - 1
			a := floorMod(k, qu)
			dist := -floorDiv(k, qu)
			h.Edges = append(h.Edges, HSDFEdge{
				Src: srcBase + int(a), Dst: dstBase + int(j),
				Delay:  rhoSrc,
				Tokens: dist,
			})
		}
	}
	// A live SDF graph never yields negative iteration distances for
	// dependences that can be satisfied; a negative distance means firing
	// j needs a token from a *future* iteration — a deadlock the caller
	// should have screened with CheckDeadlockFree.
	for _, e := range h.Edges {
		if e.Tokens < 0 {
			return nil, fmt.Errorf("sdf: dependence %s->%s requires tokens from a future iteration (deadlock); run CheckDeadlockFree first",
				h.Nodes[e.Src].Actor, h.Nodes[e.Dst].Actor)
		}
	}
	return h, nil
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func floorMod(a, b int64) int64 {
	m := a % b
	if m != 0 && (m < 0) != (b < 0) {
		m += b
	}
	return m
}
