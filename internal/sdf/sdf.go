// Package sdf implements classical Synchronous Dataflow analysis for
// constant-rate graphs: repetition vectors via the balance equations,
// consistency checking, an iteration-level deadlock check, and self-timed
// throughput measurement.
//
// This is the world the paper's related work lives in ([10] Sriram &
// Bhattacharyya, [11] Stuijk et al., [14] Wiggers et al. 2006): every actor
// transfers a fixed number of tokens per firing, so a finite repetition
// vector and a periodic schedule exist, and buffer capacities can be
// derived from them. The paper's contribution is exactly the case this
// package rejects — data-dependent rates, where no repetition vector
// exists because the balance equations change every firing.
//
// An SDF graph is represented as a vrdf.Graph whose quanta sets are all
// singletons; IsSDF checks the restriction.
package sdf

import (
	"fmt"
	"sort"

	"vrdfcap/internal/ratio"
	"vrdfcap/internal/vrdf"
)

// IsSDF reports whether every edge of g has constant production and
// consumption quanta, returning a descriptive error otherwise.
func IsSDF(g *vrdf.Graph) error {
	for _, e := range g.Edges() {
		if !e.Prod.IsConstant() {
			return fmt.Errorf("sdf: edge %s has variable production quanta %v; SDF requires constant rates (use the VRDF analysis instead)", e.Name, e.Prod)
		}
		if !e.Cons.IsConstant() {
			return fmt.Errorf("sdf: edge %s has variable consumption quanta %v; SDF requires constant rates (use the VRDF analysis instead)", e.Name, e.Cons)
		}
		if e.Prod.Max() == 0 || e.Cons.Max() == 0 {
			return fmt.Errorf("sdf: edge %s has a zero rate; SDF rates must be positive", e.Name)
		}
	}
	return nil
}

// RepetitionVector solves the balance equations q(src)·π(e) = q(dst)·γ(e)
// for every edge and returns the smallest positive integer solution per
// weakly connected component. It fails if the graph is inconsistent (the
// equations admit only the zero solution) or not constant-rate.
func RepetitionVector(g *vrdf.Graph) (map[string]int64, error) {
	if err := IsSDF(g); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	// Assign each actor a rational multiplier by graph traversal, then
	// scale the component to the smallest integer vector.
	frac := make(map[string]ratio.Rat, len(g.Actors()))
	adj := make(map[string][]*vrdf.Edge)
	for _, e := range g.Edges() {
		adj[e.Src] = append(adj[e.Src], e)
		adj[e.Dst] = append(adj[e.Dst], e)
	}
	for _, start := range g.Actors() {
		if _, seen := frac[start.Name]; seen {
			continue
		}
		frac[start.Name] = ratio.One
		stack := []string{start.Name}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range adj[n] {
				// q(src)·prod = q(dst)·cons.
				prod := ratio.FromInt(e.Prod.Max())
				cons := ratio.FromInt(e.Cons.Max())
				var other string
				var want ratio.Rat
				if e.Src == n {
					other = e.Dst
					want = frac[n].Mul(prod).Div(cons)
				} else {
					other = e.Src
					want = frac[n].Mul(cons).Div(prod)
				}
				if have, seen := frac[other]; seen {
					if !have.Equal(want) {
						return nil, fmt.Errorf("sdf: graph is inconsistent: actor %s requires rate %v via edge %s but %v via another path", other, want, e.Name, have)
					}
					continue
				}
				frac[other] = want
				stack = append(stack, other)
			}
		}
	}
	// Scale to integers: multiply by the LCM of denominators, divide by
	// the GCD of numerators (per connected component; for simplicity we
	// scale globally, which keeps each component minimal when the graph
	// is connected — the usual case after Validate).
	lcm := int64(1)
	for _, f := range frac {
		lcm = ratio.LCM(lcm, f.Den())
	}
	q := make(map[string]int64, len(frac))
	gcd := int64(0)
	for name, f := range frac {
		v := f.MulInt(lcm).Num()
		q[name] = v
		gcd = ratio.GCD(gcd, v)
	}
	if gcd > 1 {
		for name := range q {
			q[name] /= gcd
		}
	}
	return q, nil
}

// IterationTokens returns, per edge, the net token change after one
// complete iteration (every actor fires its repetition count). For a
// consistent graph this is zero on every edge — the defining property.
func IterationTokens(g *vrdf.Graph, q map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(g.Edges()))
	for _, e := range g.Edges() {
		out[e.Name] = q[e.Src]*e.Prod.Max() - q[e.Dst]*e.Cons.Max()
	}
	return out
}

// DeadlockInfo describes why an iteration cannot complete.
type DeadlockInfo struct {
	// Fired holds the firing counts reached before the deadlock.
	Fired map[string]int64
	// Blocked names the actors that still owe firings, with the first
	// edge lacking tokens.
	Blocked []string
}

// CheckDeadlockFree verifies that one complete iteration can execute from
// the initial token distribution — the classical SDF liveness check: if one
// iteration completes, the token distribution returns to the initial state
// and execution can repeat forever. Returns nil when deadlock-free.
//
// The check is untimed: it greedily fires any actor that is enabled and has
// not exhausted its repetition count. Greedy order is irrelevant because
// firings in SDF are persistent (an enabled firing stays enabled until
// taken).
func CheckDeadlockFree(g *vrdf.Graph, q map[string]int64) *DeadlockInfo {
	tokens := make(map[string]int64, len(g.Edges()))
	for _, e := range g.Edges() {
		tokens[e.Name] = e.Initial
	}
	fired := make(map[string]int64, len(g.Actors()))
	remaining := int64(0)
	for _, a := range g.Actors() {
		remaining += q[a.Name]
	}
	for remaining > 0 {
		progress := false
		for _, a := range g.Actors() {
			for fired[a.Name] < q[a.Name] {
				ok := true
				for _, e := range g.In(a.Name) {
					if tokens[e.Name] < e.Cons.Max() {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
				for _, e := range g.In(a.Name) {
					tokens[e.Name] -= e.Cons.Max()
				}
				for _, e := range g.Out(a.Name) {
					tokens[e.Name] += e.Prod.Max()
				}
				fired[a.Name]++
				remaining--
				progress = true
			}
		}
		if !progress {
			info := &DeadlockInfo{Fired: fired}
			for _, a := range g.Actors() {
				if fired[a.Name] < q[a.Name] {
					info.Blocked = append(info.Blocked, a.Name)
				}
			}
			sort.Strings(info.Blocked)
			return info
		}
	}
	return nil
}

// IterationLength returns the total number of firings in one iteration.
func IterationLength(q map[string]int64) int64 {
	var n int64
	for _, v := range q {
		n += v
	}
	return n
}
