package sdf

import (
	"strings"
	"testing"

	"vrdfcap/internal/capacity"
	"vrdfcap/internal/mp3"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
	"vrdfcap/internal/vrdf"
)

func r(n, d int64) ratio.Rat { return ratio.MustNew(n, d) }

// mp3ConstantVRDF returns the VRDF graph of the MP3 chain with n fixed to
// 960 and the paper's baseline capacities.
func mp3ConstantVRDF(t *testing.T) *vrdf.Graph {
	t.Helper()
	tg, err := mp3.GraphWithFrameQuanta(taskgraph.MustQuanta(960))
	if err != nil {
		t.Fatal(err)
	}
	caps := []int64{5888, 3072, 882}
	for i, n := range mp3.BufferNames() {
		tg.BufferByName(n).Capacity = caps[i]
	}
	g, _, err := vrdf.FromTaskGraph(tg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestIsSDF(t *testing.T) {
	g := mp3ConstantVRDF(t)
	if err := IsSDF(g); err != nil {
		t.Errorf("constant-rate graph rejected: %v", err)
	}
	// The variable-rate MP3 graph is NOT SDF — the restriction the
	// paper lifts.
	tg, err := mp3.Graph()
	if err != nil {
		t.Fatal(err)
	}
	vg, _, err := vrdf.FromTaskGraph(tg)
	if err != nil {
		t.Fatal(err)
	}
	err = IsSDF(vg)
	if err == nil {
		t.Fatal("variable-rate graph accepted as SDF")
	}
	if !strings.Contains(err.Error(), "VRDF") {
		t.Errorf("error does not point to the VRDF analysis: %v", err)
	}
}

func TestRepetitionVectorMP3(t *testing.T) {
	// Balance equations of the constant MP3 chain (n = 960):
	// 75·2048 = 160·960, 160·1152 = 384·480, 384·441 = 169344·1.
	g := mp3ConstantVRDF(t)
	q, err := RepetitionVector(g)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		mp3.TaskBR:  75,
		mp3.TaskMP3: 160,
		mp3.TaskSRC: 384,
		mp3.TaskDAC: 169344,
	}
	for a, w := range want {
		if q[a] != w {
			t.Errorf("q(%s) = %d, want %d", a, q[a], w)
		}
	}
	// One iteration is token-neutral on every edge.
	for edge, net := range IterationTokens(g, q) {
		if net != 0 {
			t.Errorf("edge %s gains %d tokens per iteration", edge, net)
		}
	}
	if got := IterationLength(q); got != 75+160+384+169344 {
		t.Errorf("iteration length = %d", got)
	}
}

func TestRepetitionVectorInconsistent(t *testing.T) {
	g := vrdf.New()
	for _, n := range []string{"a", "b"} {
		if _, err := g.AddActor(n, r(1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// a→b at rate 2:1 but b→a at rate 1:1 — inconsistent cycle.
	if _, err := g.AddEdge(vrdf.Edge{Name: "ab", Src: "a", Dst: "b",
		Prod: taskgraph.MustQuanta(2), Cons: taskgraph.MustQuanta(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(vrdf.Edge{Name: "ba", Src: "b", Dst: "a",
		Prod: taskgraph.MustQuanta(1), Cons: taskgraph.MustQuanta(1), Initial: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := RepetitionVector(g); err == nil {
		t.Fatal("inconsistent graph accepted")
	} else if !strings.Contains(err.Error(), "inconsistent") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestRepetitionVectorScaling(t *testing.T) {
	// 3:2 pair — q = (2, 3), the smallest integer solution.
	g := vrdf.New()
	for _, n := range []string{"p", "c"} {
		if _, err := g.AddActor(n, r(1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.AddEdge(vrdf.Edge{Name: "e", Src: "p", Dst: "c",
		Prod: taskgraph.MustQuanta(3), Cons: taskgraph.MustQuanta(2)}); err != nil {
		t.Fatal(err)
	}
	q, err := RepetitionVector(g)
	if err != nil {
		t.Fatal(err)
	}
	if q["p"] != 2 || q["c"] != 3 {
		t.Errorf("q = %v, want p:2 c:3", q)
	}
}

func TestCheckDeadlockFree(t *testing.T) {
	// The sized constant MP3 chain completes an iteration.
	g := mp3ConstantVRDF(t)
	q, err := RepetitionVector(g)
	if err != nil {
		t.Fatal(err)
	}
	if dl := CheckDeadlockFree(g, q); dl != nil {
		t.Errorf("sized chain reported deadlocked: blocked %v", dl.Blocked)
	}
	// Remove the capacity of the first buffer: deadlock.
	tg, err := mp3.GraphWithFrameQuanta(taskgraph.MustQuanta(960))
	if err != nil {
		t.Fatal(err)
	}
	names := mp3.BufferNames()
	tg.BufferByName(names[0]).Capacity = 959 // < one frame
	for _, n := range names[1:] {
		tg.BufferByName(n).Capacity = 100000
	}
	bad, _, err := vrdf.FromTaskGraph(tg)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := RepetitionVector(bad)
	if err != nil {
		t.Fatal(err)
	}
	dl := CheckDeadlockFree(bad, qb)
	if dl == nil {
		t.Fatal("undersized chain reported deadlock-free")
	}
	if len(dl.Blocked) == 0 {
		t.Error("no blocked actors reported")
	}
}

func TestMeasureThroughputMP3(t *testing.T) {
	// With the paper's baseline capacities and critical response times,
	// the self-timed DAC settles at one sample per 1/44100 s.
	g := mp3ConstantVRDF(t)
	per, err := MeasureThroughput(g, mp3.TaskDAC, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !per.Equal(r(1, 44100)) {
		t.Errorf("steady-state period = %v, want 1/44100", per)
	}
}

func TestMeasureThroughputValidation(t *testing.T) {
	g := mp3ConstantVRDF(t)
	if _, err := MeasureThroughput(g, mp3.TaskDAC, 1); err == nil {
		t.Error("single iteration accepted")
	}
	if _, err := MeasureThroughput(g, "nope", 3); err == nil {
		t.Error("unknown actor accepted")
	}
	// Variable-rate graph rejected.
	tg, err := mp3.Graph()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range mp3.BufferNames() {
		tg.BufferByName(n).Capacity = 10000
	}
	vg, _, err := vrdf.FromTaskGraph(tg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureThroughput(vg, mp3.TaskDAC, 3); err == nil {
		t.Error("variable-rate graph accepted")
	}
}

func TestBaselineFormulaCrossCheck(t *testing.T) {
	// The capacity package's PolicyBaseline numbers and this package's
	// structural view agree: with the baseline capacities the constant
	// chain is consistent, deadlock-free and hits the required rate.
	tg, err := mp3.GraphWithFrameQuanta(taskgraph.MustQuanta(960))
	if err != nil {
		t.Fatal(err)
	}
	res, err := capacity.Compute(tg, mp3.Constraint(), capacity.PolicyBaseline)
	if err != nil {
		t.Fatal(err)
	}
	sized, err := capacity.Sized(tg, res)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := vrdf.FromTaskGraph(sized)
	if err != nil {
		t.Fatal(err)
	}
	q, err := RepetitionVector(g)
	if err != nil {
		t.Fatal(err)
	}
	if dl := CheckDeadlockFree(g, q); dl != nil {
		t.Fatalf("baseline sizing deadlocks: %v", dl.Blocked)
	}
	per, err := MeasureThroughput(g, mp3.TaskDAC, 3)
	if err != nil {
		t.Fatal(err)
	}
	if per.Cmp(r(1, 44100)) > 0 {
		t.Errorf("baseline sizing cannot sustain 44.1 kHz: period %v", per)
	}
}
