package sdf

import (
	"fmt"

	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/vrdf"
)

// MeasureThroughput executes the constant-rate graph self-timed for the
// given number of complete iterations and returns the average period of the
// named actor (time units per firing) once the execution has passed its
// transient: the measurement discards the first iteration.
//
// For a strongly connected (or back-pressured) SDF graph the self-timed
// execution settles into a periodic phase, so the average converges to the
// actual steady-state period — the quantity traditional tools compute
// analytically via maximum cycle mean.
func MeasureThroughput(g *vrdf.Graph, actor string, iterations int64) (ratio.Rat, error) {
	if iterations < 2 {
		return ratio.Rat{}, fmt.Errorf("sdf: need at least 2 iterations to discard the transient, got %d", iterations)
	}
	q, err := RepetitionVector(g)
	if err != nil {
		return ratio.Rat{}, err
	}
	reps, ok := q[actor]
	if !ok || reps == 0 {
		return ratio.Rat{}, fmt.Errorf("sdf: actor %q not in graph or fires zero times per iteration", actor)
	}
	if dl := CheckDeadlockFree(g, q); dl != nil {
		return ratio.Rat{}, fmt.Errorf("sdf: graph deadlocks before completing an iteration (blocked: %v)", dl.Blocked)
	}
	res, err := sim.Run(sim.Config{
		Graph:        g,
		Stop:         sim.Stop{Actor: actor, Firings: reps * iterations},
		RecordStarts: []string{actor},
	})
	if err != nil {
		return ratio.Rat{}, err
	}
	if res.Outcome != sim.Completed {
		return ratio.Rat{}, fmt.Errorf("sdf: self-timed execution %v", res.Outcome)
	}
	starts := res.Starts[actor]
	skip := int(reps) // discard the first iteration's transient
	if skip >= len(starts)-1 {
		skip = 0
	}
	avgTicks, err := sim.AveragePeriodTicks(starts[skip:])
	if err != nil {
		return ratio.Rat{}, err
	}
	return avgTicks.DivInt(res.Base.TicksPerUnit), nil
}
