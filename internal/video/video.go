// Package video models a variable-bit-rate video playback chain — the
// second application domain the paper's introduction motivates ("smart
// phones and set-top boxes that can process audio and video streams").
//
// The chain mirrors the MP3 case study at video rates:
//
//	vBR --512/n--> vVLD --99/11--> vIDCT --11/99--> vDISP @ 25 Hz
//
// vBR reads 512-byte blocks from storage; vVLD is a variable-length
// decoder consuming n bytes per QCIF frame (n depends on the frame's bit
// rate; a QCIF frame at 32–512 kbit/s and 25 fps spans 160–2560 bytes) and
// emitting the frame's 99 macroblocks; vIDCT transforms 11 macroblocks per
// firing (9 firings per frame); the display consumes a full frame of 99
// blocks strictly periodically at 25 Hz.
//
// Like the MP3 decoder, the VLD's consumption changes every execution with
// the stream content — the data-dependent case the paper's analysis exists
// for.
package video

import (
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/taskgraph"
)

// Task names.
const (
	TaskBR   = "vBR"
	TaskVLD  = "vVLD"
	TaskIDCT = "vIDCT"
	TaskDISP = "vDISP"
)

// Transfer quanta.
const (
	// BlockBytes is the storage read granularity.
	BlockBytes = 512
	// FrameMacroblocks is the number of macroblocks in a QCIF frame.
	FrameMacroblocks = 99
	// IDCTBatch is the number of macroblocks transformed per firing.
	IDCTBatch = 11
	// FrameRate is the display rate in frames per second.
	FrameRate = 25
)

// FrameBytes lists the possible compressed-frame sizes: bit rates 32, 64,
// 128, 256 and 512 kbit/s at 25 fps.
func FrameBytes() taskgraph.QuantaSet {
	return taskgraph.MustQuanta(160, 320, 640, 1280, 2560)
}

// WCRTs returns response times that just allow the throughput constraint —
// the per-task minimal start distances φ, with the display comfortably
// inside its period.
func WCRTs() map[string]ratio.Rat {
	return map[string]ratio.Rat{
		TaskBR:   ratio.MustNew(1, 125), // 8 ms per block read
		TaskVLD:  ratio.MustNew(1, 25),  // one frame time
		TaskIDCT: ratio.MustNew(1, 225), // one batch time
		TaskDISP: ratio.MustNew(1, 100),
	}
}

// Constraint returns the display's strict 25 Hz requirement.
func Constraint() taskgraph.Constraint {
	return taskgraph.Constraint{Task: TaskDISP, Period: ratio.MustNew(1, FrameRate)}
}

// Graph builds the playback chain.
func Graph() (*taskgraph.Graph, error) {
	w := WCRTs()
	return taskgraph.BuildChain(
		[]taskgraph.Stage{
			{Name: TaskBR, WCRT: w[TaskBR]},
			{Name: TaskVLD, WCRT: w[TaskVLD]},
			{Name: TaskIDCT, WCRT: w[TaskIDCT]},
			{Name: TaskDISP, WCRT: w[TaskDISP]},
		},
		[]taskgraph.Link{
			{Prod: taskgraph.MustQuanta(BlockBytes), Cons: FrameBytes(), ContainerBytes: 1},
			{Prod: taskgraph.MustQuanta(FrameMacroblocks), Cons: taskgraph.MustQuanta(IDCTBatch), ContainerBytes: 384},
			{Prod: taskgraph.MustQuanta(IDCTBatch), Cons: taskgraph.MustQuanta(FrameMacroblocks), ContainerBytes: 384},
		},
	)
}

// BufferNames returns the chain's buffer names in order.
func BufferNames() [3]string {
	return [3]string{
		TaskBR + "->" + TaskVLD,
		TaskVLD + "->" + TaskIDCT,
		TaskIDCT + "->" + TaskDISP,
	}
}
