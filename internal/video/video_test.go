package video

import (
	"testing"

	"vrdfcap/internal/capacity"
	"vrdfcap/internal/quanta"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
)

func TestPhiPropagation(t *testing.T) {
	g, err := Graph()
	if err != nil {
		t.Fatal(err)
	}
	res, err := capacity.Compute(g, Constraint(), capacity.PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatalf("video chain infeasible: %v", res.Diagnostics)
	}
	want := map[string]ratio.Rat{
		TaskBR:   ratio.MustNew(1, 125), // 8 ms
		TaskVLD:  ratio.MustNew(1, 25),  // a frame time
		TaskIDCT: ratio.MustNew(1, 225), // a batch time
		TaskDISP: ratio.MustNew(1, 25),  // τ
	}
	for task, w := range want {
		if got := res.Phi[task]; !got.Equal(w) {
			t.Errorf("φ(%s) = %v, want %v", task, got, w)
		}
	}
}

func TestCapacitiesAndVerification(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation horizon too long for -short")
	}
	g, err := Graph()
	if err != nil {
		t.Fatal(err)
	}
	c := Constraint()
	res, err := capacity.Compute(g, c, capacity.PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	names := BufferNames()
	// Closed-form spot checks: d1 = (1/125+1/25)·64000 + 512+2560−1,
	// d2 = (1/25+1/225)·2475 + 99+11−1, d3 = ⌊(1/225+1/100)·2475⌋+109.
	want := []int64{6143, 219, 144}
	for i, n := range names {
		if got := res.BufferByName(n).Capacity; got != want[i] {
			t.Errorf("%s capacity = %d, want %d", n, got, want[i])
		}
	}
	sized, err := capacity.Sized(g, res)
	if err != nil {
		t.Fatal(err)
	}
	for name, seq := range map[string]quanta.Sequence{
		"uniform": quanta.Uniform(FrameBytes(), 25),
		"min":     quanta.MinOf(FrameBytes()),
		"max":     quanta.MaxOf(FrameBytes()),
		"bursty":  quanta.Bursty(FrameBytes(), 10, 3),
	} {
		v, err := sim.VerifyThroughput(sized, c, sim.VerifyOptions{
			Firings:   500, // 20 seconds of video
			Workloads: sim.Workloads{names[0]: {Cons: seq}},
			Validate:  true,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !v.OK {
			t.Errorf("%s stream: %s", name, v.Reason)
		}
	}
}

func TestMemoryFootprint(t *testing.T) {
	g, err := Graph()
	if err != nil {
		t.Fatal(err)
	}
	res, err := capacity.Compute(g, Constraint(), capacity.PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	// Bytes: d1·1 + d2·384 + d3·384.
	want := int64(6143 + 219*384 + 144*384)
	if got := res.TotalMemoryBytes(); got != want {
		t.Errorf("memory = %d, want %d", got, want)
	}
}

func TestFrameBytesSet(t *testing.T) {
	fb := FrameBytes()
	if fb.Min() != 160 || fb.Max() != 2560 || fb.Len() != 5 {
		t.Errorf("FrameBytes = %v", fb)
	}
}
