package taskgraph

import (
	"fmt"

	"vrdfcap/internal/ratio"
)

// Stage describes one task of a chain under construction.
type Stage struct {
	Name string
	WCRT ratio.Rat
}

// Link describes the buffer between consecutive chain stages: the producer's
// quanta ξ and the consumer's quanta λ. Capacity may be zero (to be
// computed).
type Link struct {
	Prod     QuantaSet
	Cons     QuantaSet
	Capacity int64
	// ContainerBytes optionally sizes one container for memory
	// reporting.
	ContainerBytes int64
}

// BuildChain constructs a chain task graph from stages and the links between
// them. len(links) must equal len(stages)-1; link i connects stage i to
// stage i+1.
func BuildChain(stages []Stage, links []Link) (*Graph, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("taskgraph: chain needs at least one stage")
	}
	if len(links) != len(stages)-1 {
		return nil, fmt.Errorf("taskgraph: %d stages need %d links, got %d",
			len(stages), len(stages)-1, len(links))
	}
	g := New()
	for _, s := range stages {
		if _, err := g.AddTask(s.Name, s.WCRT); err != nil {
			return nil, err
		}
	}
	for i, l := range links {
		_, err := g.AddBuffer(Buffer{
			Producer:       stages[i].Name,
			Consumer:       stages[i+1].Name,
			Prod:           l.Prod,
			Cons:           l.Cons,
			Capacity:       l.Capacity,
			ContainerBytes: l.ContainerBytes,
		})
		if err != nil {
			return nil, err
		}
	}
	if err := g.ValidateChain(); err != nil {
		return nil, err
	}
	return g, nil
}

// Pair constructs the two-task producer–consumer graph of the paper's
// Figure 1: producer wa with production quanta prod, consumer wb with
// consumption quanta cons, one buffer between them.
func Pair(prodName string, prodWCRT ratio.Rat, consName string, consWCRT ratio.Rat, prod, cons QuantaSet) (*Graph, error) {
	return BuildChain(
		[]Stage{{prodName, prodWCRT}, {consName, consWCRT}},
		[]Link{{Prod: prod, Cons: cons}},
	)
}
