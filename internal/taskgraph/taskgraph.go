// Package taskgraph implements the task model of Wiggers et al. (DATE 2008),
// §3.1: a weakly connected directed graph T = (W, B, ξ, λ, κ, ζ) whose
// vertices are tasks and whose arcs are circular FIFO buffers.
//
// A task only starts an execution when the previous execution has finished,
// its input buffer holds sufficient full containers and its output buffer
// holds sufficient empty containers for the whole execution (back-pressure;
// the C-HEAP execution condition). The number of containers transferred may
// differ per execution and is drawn from the finite sets ξ(b) (production)
// and λ(b) (consumption). κ(w) is the worst-case response time of task w
// under its run-time arbiter, and ζ(b) is the capacity of buffer b.
//
// The analysis of the paper — and therefore this library's capacity
// computation — is restricted to chains: every task has at most one input
// buffer and at most one output buffer, and the throughput constraint is
// placed on the task without output buffers (the sink) or the task without
// input buffers (the source).
package taskgraph

import (
	"fmt"
	"sort"

	"vrdfcap/internal/ratio"
)

// Task is a node of the task graph.
type Task struct {
	// Name identifies the task; unique within a graph.
	Name string
	// WCRT is the worst-case response time κ(w): the maximum difference
	// between the time sufficient containers are present to enable an
	// execution and the time that execution finishes. Must be positive.
	WCRT ratio.Rat
}

// Buffer is a circular FIFO buffer b_ab over which task Producer sends data
// to task Consumer.
type Buffer struct {
	// Name identifies the buffer; unique within a graph. Optional on
	// input: an empty name is replaced by "producer->consumer".
	Name string
	// Producer and Consumer name the communicating tasks.
	Producer string
	Consumer string
	// Prod is ξ(b): the set of possible production quanta per execution
	// of the producer (equals the number of empty containers the producer
	// requires before starting).
	Prod QuantaSet
	// Cons is λ(b): the set of possible consumption quanta per execution
	// of the consumer.
	Cons QuantaSet
	// Capacity is ζ(b), in containers. Zero means "not yet computed".
	Capacity int64
	// ContainerBytes is the fixed size of one container in bytes ("all
	// containers in a buffer have a fixed size", §3.1); optional (zero
	// means unspecified) and used only for memory reporting:
	// memory = ζ(b) · ContainerBytes.
	ContainerBytes int64
}

// DefaultName returns the buffer's name, or "producer->consumer" when unset.
func (b Buffer) DefaultName() string {
	if b.Name != "" {
		return b.Name
	}
	return b.Producer + "->" + b.Consumer
}

// Graph is a task graph. Build one with New and the Add methods, then call
// Validate (or ValidateChain) before analysis.
type Graph struct {
	tasks   []*Task
	byName  map[string]*Task
	buffers []*Buffer
	bufByN  map[string]*Buffer
}

// New returns an empty task graph.
func New() *Graph {
	return &Graph{
		byName: make(map[string]*Task),
		bufByN: make(map[string]*Buffer),
	}
}

// AddTask adds a task with the given name and worst-case response time.
func (g *Graph) AddTask(name string, wcrt ratio.Rat) (*Task, error) {
	if name == "" {
		return nil, fmt.Errorf("taskgraph: empty task name")
	}
	if _, dup := g.byName[name]; dup {
		return nil, fmt.Errorf("taskgraph: duplicate task %q", name)
	}
	if wcrt.Sign() <= 0 {
		return nil, fmt.Errorf("taskgraph: task %q: worst-case response time must be positive, got %v", name, wcrt)
	}
	t := &Task{Name: name, WCRT: wcrt}
	g.tasks = append(g.tasks, t)
	g.byName[name] = t
	return t, nil
}

// AddBuffer adds a buffer from producer to consumer with production quanta
// prod (ξ) and consumption quanta cons (λ). Both tasks must already exist.
func (g *Graph) AddBuffer(b Buffer) (*Buffer, error) {
	if _, ok := g.byName[b.Producer]; !ok {
		return nil, fmt.Errorf("taskgraph: buffer %q: unknown producer %q", b.DefaultName(), b.Producer)
	}
	if _, ok := g.byName[b.Consumer]; !ok {
		return nil, fmt.Errorf("taskgraph: buffer %q: unknown consumer %q", b.DefaultName(), b.Consumer)
	}
	if b.Producer == b.Consumer {
		return nil, fmt.Errorf("taskgraph: buffer %q: self loop on %q", b.DefaultName(), b.Producer)
	}
	if !b.Prod.IsValid() {
		return nil, fmt.Errorf("taskgraph: buffer %q: invalid production quanta", b.DefaultName())
	}
	if !b.Cons.IsValid() {
		return nil, fmt.Errorf("taskgraph: buffer %q: invalid consumption quanta", b.DefaultName())
	}
	if b.Capacity < 0 {
		return nil, fmt.Errorf("taskgraph: buffer %q: negative capacity %d", b.DefaultName(), b.Capacity)
	}
	if b.ContainerBytes < 0 {
		return nil, fmt.Errorf("taskgraph: buffer %q: negative container size %d", b.DefaultName(), b.ContainerBytes)
	}
	nb := b // copy
	nb.Name = b.DefaultName()
	if _, dup := g.bufByN[nb.Name]; dup {
		return nil, fmt.Errorf("taskgraph: duplicate buffer %q", nb.Name)
	}
	g.buffers = append(g.buffers, &nb)
	g.bufByN[nb.Name] = &nb
	return &nb, nil
}

// Task returns the task with the given name, or nil.
func (g *Graph) Task(name string) *Task { return g.byName[name] }

// BufferByName returns the buffer with the given name, or nil.
func (g *Graph) BufferByName(name string) *Buffer { return g.bufByN[name] }

// Tasks returns the tasks in insertion order. The slice is shared; callers
// must not modify it.
func (g *Graph) Tasks() []*Task { return g.tasks }

// Buffers returns the buffers in insertion order. The slice is shared;
// callers must not modify it.
func (g *Graph) Buffers() []*Buffer { return g.buffers }

// Inputs returns the buffers consumed by the named task.
func (g *Graph) Inputs(task string) []*Buffer {
	var out []*Buffer
	for _, b := range g.buffers {
		if b.Consumer == task {
			out = append(out, b)
		}
	}
	return out
}

// Outputs returns the buffers produced by the named task.
func (g *Graph) Outputs(task string) []*Buffer {
	var out []*Buffer
	for _, b := range g.buffers {
		if b.Producer == task {
			out = append(out, b)
		}
	}
	return out
}

// Validate checks the structural invariants common to all task graphs:
// non-emptiness, reference integrity (guaranteed by construction) and weak
// connectivity.
func (g *Graph) Validate() error {
	if len(g.tasks) == 0 {
		return fmt.Errorf("taskgraph: graph has no tasks")
	}
	if !g.weaklyConnected() {
		return fmt.Errorf("taskgraph: graph is not weakly connected")
	}
	return nil
}

// ValidateChain checks Validate plus the chain restriction of the paper:
// every task has at most one input buffer and at most one output buffer.
func (g *Graph) ValidateChain() error {
	if err := g.Validate(); err != nil {
		return err
	}
	for _, t := range g.tasks {
		if n := len(g.Inputs(t.Name)); n > 1 {
			return fmt.Errorf("taskgraph: task %q has %d input buffers; chains allow at most one", t.Name, n)
		}
		if n := len(g.Outputs(t.Name)); n > 1 {
			return fmt.Errorf("taskgraph: task %q has %d output buffers; chains allow at most one", t.Name, n)
		}
	}
	// A weakly connected graph whose degrees are <=1 in and <=1 out is a
	// chain exactly when it has len(tasks)-1 buffers (no cycle).
	if len(g.buffers) != len(g.tasks)-1 {
		return fmt.Errorf("taskgraph: %d tasks need %d buffers to form a chain, got %d",
			len(g.tasks), len(g.tasks)-1, len(g.buffers))
	}
	return nil
}

// Chain returns the tasks ordered from source to sink and the buffers in the
// same order (buffer i connects task i to task i+1). It fails if the graph
// is not a valid chain.
func (g *Graph) Chain() (tasks []*Task, buffers []*Buffer, err error) {
	if err := g.ValidateChain(); err != nil {
		return nil, nil, err
	}
	if len(g.tasks) == 1 {
		return []*Task{g.tasks[0]}, nil, nil
	}
	next := make(map[string]*Buffer, len(g.buffers))
	hasIn := make(map[string]bool, len(g.tasks))
	for _, b := range g.buffers {
		next[b.Producer] = b
		hasIn[b.Consumer] = true
	}
	var src *Task
	for _, t := range g.tasks {
		if !hasIn[t.Name] {
			src = t
			break
		}
	}
	if src == nil {
		return nil, nil, fmt.Errorf("taskgraph: no source task (cycle?)")
	}
	cur := src
	for {
		tasks = append(tasks, cur)
		b, ok := next[cur.Name]
		if !ok {
			break
		}
		buffers = append(buffers, b)
		cur = g.byName[b.Consumer]
	}
	if len(tasks) != len(g.tasks) {
		return nil, nil, fmt.Errorf("taskgraph: chain walk visited %d of %d tasks", len(tasks), len(g.tasks))
	}
	return tasks, buffers, nil
}

// Source returns the unique task without input buffers in a valid chain.
func (g *Graph) Source() (*Task, error) {
	tasks, _, err := g.Chain()
	if err != nil {
		return nil, err
	}
	return tasks[0], nil
}

// Sink returns the unique task without output buffers in a valid chain.
func (g *Graph) Sink() (*Task, error) {
	tasks, _, err := g.Chain()
	if err != nil {
		return nil, err
	}
	return tasks[len(tasks)-1], nil
}

// Clone returns a deep copy of the graph. Capacities are copied too, so a
// clone can be resized without disturbing the original.
func (g *Graph) Clone() *Graph {
	ng := New()
	for _, t := range g.tasks {
		if _, err := ng.AddTask(t.Name, t.WCRT); err != nil {
			panic("taskgraph: clone of valid graph failed: " + err.Error())
		}
	}
	for _, b := range g.buffers {
		if _, err := ng.AddBuffer(*b); err != nil {
			panic("taskgraph: clone of valid graph failed: " + err.Error())
		}
	}
	return ng
}

func (g *Graph) weaklyConnected() bool {
	if len(g.tasks) <= 1 {
		return true
	}
	adj := make(map[string][]string, len(g.tasks))
	for _, b := range g.buffers {
		adj[b.Producer] = append(adj[b.Producer], b.Consumer)
		adj[b.Consumer] = append(adj[b.Consumer], b.Producer)
	}
	seen := map[string]bool{g.tasks[0].Name: true}
	stack := []string{g.tasks[0].Name}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range adj[n] {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return len(seen) == len(g.tasks)
}

// Constraint is a throughput requirement: the named task must execute
// strictly periodically with the given period. In a chain the paper requires
// the constrained task to be the sink or the source.
type Constraint struct {
	// Task names the throughput-determining task (vτ in the paper).
	Task string
	// Period is the required strict period τ between consecutive starts.
	// Must be positive.
	Period ratio.Rat
}

// Validate checks the constraint against the chain graph: the task must
// exist, the period must be positive, and the task must be the chain's sink
// or source.
func (c Constraint) Validate(g *Graph) error {
	if c.Period.Sign() <= 0 {
		return fmt.Errorf("taskgraph: constraint period must be positive, got %v", c.Period)
	}
	if g.Task(c.Task) == nil {
		return fmt.Errorf("taskgraph: constraint on unknown task %q", c.Task)
	}
	tasks, _, err := g.Chain()
	if err != nil {
		return err
	}
	if c.Task != tasks[0].Name && c.Task != tasks[len(tasks)-1].Name {
		return fmt.Errorf("taskgraph: constrained task %q must be the chain's source %q or sink %q",
			c.Task, tasks[0].Name, tasks[len(tasks)-1].Name)
	}
	return nil
}

// SortedTaskNames returns all task names in lexical order; handy for
// deterministic reporting.
func (g *Graph) SortedTaskNames() []string {
	names := make([]string, 0, len(g.tasks))
	for _, t := range g.tasks {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}
