package taskgraph

import (
	"strings"
	"testing"
	"testing/quick"

	"vrdfcap/internal/ratio"
)

func r(n, d int64) ratio.Rat { return ratio.MustNew(n, d) }

// figure1 builds the motivating example of the paper: wa produces 3
// containers per execution, wb consumes 2 or 3.
func figure1(t *testing.T) *Graph {
	t.Helper()
	g, err := Pair("wa", r(1, 1), "wb", r(1, 1), MustQuanta(3), MustQuanta(2, 3))
	if err != nil {
		t.Fatalf("Pair: %v", err)
	}
	return g
}

func TestQuantaSetConstruction(t *testing.T) {
	q, err := NewQuantaSet(3, 2, 3, 2)
	if err != nil {
		t.Fatalf("NewQuantaSet: %v", err)
	}
	if q.Min() != 2 || q.Max() != 3 || q.Len() != 2 {
		t.Errorf("dedup/sort failed: %v", q)
	}
	if q.IsConstant() {
		t.Error("set {2,3} reported constant")
	}
	if got := q.String(); got != "{2,3}" {
		t.Errorf("String() = %q, want {2,3}", got)
	}
	c := MustQuanta(7)
	if !c.IsConstant() || c.String() != "7" {
		t.Errorf("Constant(7) misbehaves: %v", c)
	}
}

func TestQuantaSetRejectsInvalid(t *testing.T) {
	if _, err := NewQuantaSet(); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := NewQuantaSet(0); err == nil {
		t.Error("set {0} accepted")
	}
	if _, err := NewQuantaSet(-1, 2); err == nil {
		t.Error("negative quantum accepted")
	}
	// {0, n} is allowed: §4.2 explicitly permits firings that consume
	// nothing from an edge.
	q, err := NewQuantaSet(0, 960)
	if err != nil {
		t.Fatalf("{0,960} rejected: %v", err)
	}
	if !q.ContainsZero() {
		t.Error("ContainsZero() = false for {0,960}")
	}
}

func TestQuantaRange(t *testing.T) {
	q, err := Range(96, 99)
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	if q.Len() != 4 || q.Min() != 96 || q.Max() != 99 {
		t.Errorf("Range(96,99) = %v", q)
	}
	if _, err := Range(5, 4); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestQuantaContains(t *testing.T) {
	q := MustQuanta(2, 5, 9)
	for _, v := range []int64{2, 5, 9} {
		if !q.Contains(v) {
			t.Errorf("Contains(%d) = false", v)
		}
	}
	for _, v := range []int64{0, 1, 3, 10} {
		if q.Contains(v) {
			t.Errorf("Contains(%d) = true", v)
		}
	}
}

func TestQuantaEqual(t *testing.T) {
	if !MustQuanta(2, 3).Equal(MustQuanta(3, 2)) {
		t.Error("{2,3} != {3,2}")
	}
	if MustQuanta(2, 3).Equal(MustQuanta(2, 3, 4)) {
		t.Error("{2,3} == {2,3,4}")
	}
}

func TestPropQuantaMinMaxMembers(t *testing.T) {
	f := func(raw []int64) bool {
		vals := make([]int64, 0, len(raw))
		for _, v := range raw {
			if v < 0 {
				v = -v
			}
			vals = append(vals, v%1000+1)
		}
		if len(vals) == 0 {
			return true
		}
		q, err := NewQuantaSet(vals...)
		if err != nil {
			return false
		}
		return q.Contains(q.Min()) && q.Contains(q.Max()) && q.Min() <= q.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGraphConstruction(t *testing.T) {
	g := figure1(t)
	if g.Task("wa") == nil || g.Task("wb") == nil {
		t.Fatal("tasks missing")
	}
	if len(g.Buffers()) != 1 {
		t.Fatalf("want 1 buffer, got %d", len(g.Buffers()))
	}
	b := g.Buffers()[0]
	if b.DefaultName() != "wa->wb" {
		t.Errorf("buffer name = %q", b.DefaultName())
	}
	if got := g.BufferByName("wa->wb"); got != b {
		t.Error("BufferByName lookup failed")
	}
}

func TestGraphRejectsBadInput(t *testing.T) {
	g := New()
	if _, err := g.AddTask("", r(1, 1)); err == nil {
		t.Error("empty task name accepted")
	}
	if _, err := g.AddTask("a", ratio.Zero); err == nil {
		t.Error("zero WCRT accepted")
	}
	if _, err := g.AddTask("a", r(-1, 2)); err == nil {
		t.Error("negative WCRT accepted")
	}
	if _, err := g.AddTask("a", r(1, 1)); err != nil {
		t.Fatalf("AddTask: %v", err)
	}
	if _, err := g.AddTask("a", r(1, 1)); err == nil {
		t.Error("duplicate task accepted")
	}
	if _, err := g.AddBuffer(Buffer{Producer: "a", Consumer: "missing", Prod: MustQuanta(1), Cons: MustQuanta(1)}); err == nil {
		t.Error("buffer to unknown consumer accepted")
	}
	if _, err := g.AddBuffer(Buffer{Producer: "a", Consumer: "a", Prod: MustQuanta(1), Cons: MustQuanta(1)}); err == nil {
		t.Error("self loop accepted")
	}
	if _, err := g.AddTask("b", r(1, 1)); err != nil {
		t.Fatalf("AddTask: %v", err)
	}
	if _, err := g.AddBuffer(Buffer{Producer: "a", Consumer: "b", Cons: MustQuanta(1)}); err == nil {
		t.Error("invalid production quanta accepted")
	}
	if _, err := g.AddBuffer(Buffer{Producer: "a", Consumer: "b", Prod: MustQuanta(1), Cons: MustQuanta(1), Capacity: -1}); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestValidateChain(t *testing.T) {
	g := figure1(t)
	if err := g.ValidateChain(); err != nil {
		t.Errorf("valid chain rejected: %v", err)
	}

	// Fork: a feeds two consumers — not a chain.
	fork := New()
	for _, n := range []string{"a", "b", "c"} {
		if _, err := fork.AddTask(n, r(1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	for _, cons := range []string{"b", "c"} {
		if _, err := fork.AddBuffer(Buffer{Producer: "a", Consumer: cons, Prod: MustQuanta(1), Cons: MustQuanta(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fork.ValidateChain(); err == nil {
		t.Error("fork accepted as chain")
	} else if !strings.Contains(err.Error(), "output buffers") {
		t.Errorf("unexpected error: %v", err)
	}

	// Disconnected graph.
	disc := New()
	for _, n := range []string{"a", "b"} {
		if _, err := disc.AddTask(n, r(1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := disc.Validate(); err == nil {
		t.Error("disconnected graph accepted")
	}

	// Empty graph.
	if err := New().Validate(); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestChainOrdering(t *testing.T) {
	// Build a 4-stage chain in shuffled insertion order; Chain() must
	// still return source-to-sink order.
	g := New()
	for _, n := range []string{"c", "a", "d", "b"} {
		if _, err := g.AddTask(n, r(1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	edges := [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}}
	for _, e := range edges {
		if _, err := g.AddBuffer(Buffer{Producer: e[0], Consumer: e[1], Prod: MustQuanta(1), Cons: MustQuanta(1)}); err != nil {
			t.Fatal(err)
		}
	}
	tasks, buffers, err := g.Chain()
	if err != nil {
		t.Fatalf("Chain: %v", err)
	}
	wantOrder := []string{"a", "b", "c", "d"}
	for i, w := range wantOrder {
		if tasks[i].Name != w {
			t.Errorf("tasks[%d] = %q, want %q", i, tasks[i].Name, w)
		}
	}
	if len(buffers) != 3 {
		t.Fatalf("want 3 buffers, got %d", len(buffers))
	}
	for i, b := range buffers {
		if b.Producer != wantOrder[i] || b.Consumer != wantOrder[i+1] {
			t.Errorf("buffers[%d] connects %s->%s, want %s->%s",
				i, b.Producer, b.Consumer, wantOrder[i], wantOrder[i+1])
		}
	}
	src, err := g.Source()
	if err != nil || src.Name != "a" {
		t.Errorf("Source() = %v, %v; want a", src, err)
	}
	sink, err := g.Sink()
	if err != nil || sink.Name != "d" {
		t.Errorf("Sink() = %v, %v; want d", sink, err)
	}
}

func TestSingleTaskChain(t *testing.T) {
	g := New()
	if _, err := g.AddTask("only", r(1, 1)); err != nil {
		t.Fatal(err)
	}
	tasks, buffers, err := g.Chain()
	if err != nil {
		t.Fatalf("Chain: %v", err)
	}
	if len(tasks) != 1 || len(buffers) != 0 {
		t.Errorf("Chain() = %d tasks, %d buffers", len(tasks), len(buffers))
	}
}

func TestClone(t *testing.T) {
	g := figure1(t)
	c := g.Clone()
	c.Buffers()[0].Capacity = 99
	if g.Buffers()[0].Capacity == 99 {
		t.Error("clone shares buffer storage with original")
	}
	if len(c.Tasks()) != len(g.Tasks()) {
		t.Error("clone lost tasks")
	}
}

func TestConstraintValidate(t *testing.T) {
	g := figure1(t)
	ok := Constraint{Task: "wb", Period: r(1, 10)}
	if err := ok.Validate(g); err != nil {
		t.Errorf("valid sink constraint rejected: %v", err)
	}
	okSrc := Constraint{Task: "wa", Period: r(1, 10)}
	if err := okSrc.Validate(g); err != nil {
		t.Errorf("valid source constraint rejected: %v", err)
	}
	bad := []Constraint{
		{Task: "wb", Period: ratio.Zero},
		{Task: "nope", Period: r(1, 10)},
	}
	for _, c := range bad {
		if err := c.Validate(g); err == nil {
			t.Errorf("constraint %+v accepted", c)
		}
	}
	// Middle task of a 3-chain is not a legal constraint target.
	g3, err := BuildChain(
		[]Stage{{"a", r(1, 1)}, {"b", r(1, 1)}, {"c", r(1, 1)}},
		[]Link{
			{Prod: MustQuanta(1), Cons: MustQuanta(1)},
			{Prod: MustQuanta(1), Cons: MustQuanta(1)},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	mid := Constraint{Task: "b", Period: r(1, 10)}
	if err := mid.Validate(g3); err == nil {
		t.Error("constraint on middle task accepted")
	}
}

func TestBuildChainErrors(t *testing.T) {
	if _, err := BuildChain(nil, nil); err == nil {
		t.Error("empty chain accepted")
	}
	if _, err := BuildChain([]Stage{{"a", r(1, 1)}}, []Link{{Prod: MustQuanta(1), Cons: MustQuanta(1)}}); err == nil {
		t.Error("stage/link count mismatch accepted")
	}
}

func TestInputsOutputs(t *testing.T) {
	g := figure1(t)
	if n := len(g.Inputs("wb")); n != 1 {
		t.Errorf("Inputs(wb) = %d, want 1", n)
	}
	if n := len(g.Outputs("wa")); n != 1 {
		t.Errorf("Outputs(wa) = %d, want 1", n)
	}
	if n := len(g.Inputs("wa")); n != 0 {
		t.Errorf("Inputs(wa) = %d, want 0", n)
	}
	if n := len(g.Outputs("wb")); n != 0 {
		t.Errorf("Outputs(wb) = %d, want 0", n)
	}
}

func TestSortedTaskNames(t *testing.T) {
	g := figure1(t)
	names := g.SortedTaskNames()
	if len(names) != 2 || names[0] != "wa" || names[1] != "wb" {
		t.Errorf("SortedTaskNames = %v", names)
	}
}
