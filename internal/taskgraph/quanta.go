package taskgraph

import (
	"fmt"
	"sort"
	"strings"
)

// QuantaSet is a finite, non-empty set of non-negative integers describing
// the possible transfer quanta of a task on a buffer — the codomain Pf(N) of
// the paper's ξ and λ functions. Pf(N) excludes the empty set and the set
// consisting only of zero: a task that never transfers anything on a buffer
// would disconnect the graph.
//
// The zero value is invalid; construct QuantaSets with NewQuantaSet or
// Constant.
type QuantaSet struct {
	values []int64 // sorted ascending, deduplicated
}

// NewQuantaSet returns the quanta set holding the given values.
func NewQuantaSet(values ...int64) (QuantaSet, error) {
	if len(values) == 0 {
		return QuantaSet{}, fmt.Errorf("taskgraph: empty quanta set")
	}
	sorted := make([]int64, len(values))
	copy(sorted, values)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := sorted[:1]
	for _, v := range sorted[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	for _, v := range out {
		if v < 0 {
			return QuantaSet{}, fmt.Errorf("taskgraph: negative quantum %d", v)
		}
	}
	if len(out) == 1 && out[0] == 0 {
		return QuantaSet{}, fmt.Errorf("taskgraph: quanta set {0} is not allowed")
	}
	return QuantaSet{values: out}, nil
}

// MustQuanta is like NewQuantaSet but panics on error; for literals.
func MustQuanta(values ...int64) QuantaSet {
	q, err := NewQuantaSet(values...)
	if err != nil {
		panic(err)
	}
	return q
}

// Constant returns the singleton quanta set {v}.
func Constant(v int64) (QuantaSet, error) { return NewQuantaSet(v) }

// Range returns the quanta set {lo, lo+1, …, hi}.
func Range(lo, hi int64) (QuantaSet, error) {
	if lo > hi {
		return QuantaSet{}, fmt.Errorf("taskgraph: empty range [%d, %d]", lo, hi)
	}
	// Width in uint64: hi-lo overflows int64 for ranges wider than 2^63
	// (e.g. MinInt64..MaxInt64), which would slip past the guard and make
	// the loop below run effectively forever.
	if uint64(hi)-uint64(lo) > 1<<20 {
		return QuantaSet{}, fmt.Errorf("taskgraph: range [%d, %d] too large to enumerate", lo, hi)
	}
	vs := make([]int64, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		vs = append(vs, v)
	}
	return NewQuantaSet(vs...)
}

// IsValid reports whether q was constructed by one of the constructors.
func (q QuantaSet) IsValid() bool { return len(q.values) > 0 }

// Min returns the minimum quantum (π̌ or γ̌ in the paper).
func (q QuantaSet) Min() int64 {
	q.mustValid()
	return q.values[0]
}

// Max returns the maximum quantum (π̂ or γ̂ in the paper).
func (q QuantaSet) Max() int64 {
	q.mustValid()
	return q.values[len(q.values)-1]
}

// IsConstant reports whether the set is a singleton, i.e. the transfer
// quantum is data-independent.
func (q QuantaSet) IsConstant() bool { return len(q.values) == 1 }

// ContainsZero reports whether 0 is a possible quantum (a firing that skips
// the edge entirely, allowed by the paper in §4.2).
func (q QuantaSet) ContainsZero() bool { return q.IsValid() && q.values[0] == 0 }

// Contains reports whether v is a member of the set.
func (q QuantaSet) Contains(v int64) bool {
	i := sort.Search(len(q.values), func(i int) bool { return q.values[i] >= v })
	return i < len(q.values) && q.values[i] == v
}

// Values returns a copy of the members in ascending order.
func (q QuantaSet) Values() []int64 {
	out := make([]int64, len(q.values))
	copy(out, q.values)
	return out
}

// Len returns the number of members.
func (q QuantaSet) Len() int { return len(q.values) }

// Equal reports whether q and r hold the same members.
func (q QuantaSet) Equal(r QuantaSet) bool {
	if len(q.values) != len(r.values) {
		return false
	}
	for i, v := range q.values {
		if r.values[i] != v {
			return false
		}
	}
	return true
}

// String formats the set as "{a,b,c}" or "a" for singletons, matching the
// notation used in the paper's figures.
func (q QuantaSet) String() string {
	if !q.IsValid() {
		return "{}"
	}
	if q.IsConstant() {
		return fmt.Sprintf("%d", q.values[0])
	}
	parts := make([]string, len(q.values))
	for i, v := range q.values {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func (q QuantaSet) mustValid() {
	if !q.IsValid() {
		panic("taskgraph: use of invalid (zero-value) QuantaSet")
	}
}
