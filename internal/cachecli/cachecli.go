// Package cachecli wires the shared probe-verdict cache (internal/probecache)
// into the command-line tools: the -cache-dir/-no-cache flag pair, store
// resolution, and the end-of-run flush and stats line. Both cmd/vrdfcap and
// cmd/mp3bench use it so the flags behave identically.
package cachecli

import (
	"flag"
	"fmt"
	"io"

	"vrdfcap/internal/probecache"
)

// Flags holds the cache flag values of one CLI invocation.
type Flags struct {
	// Dir is the on-disk cache directory; "" keeps verdicts in memory.
	Dir string
	// Disable turns cross-probe verdict caching off entirely.
	Disable bool
}

// Register installs -cache-dir and -no-cache on the flag set.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Dir, "cache-dir", "",
		"directory for the on-disk feasibility cache (default: in-memory for this run only)")
	fs.BoolVar(&f.Disable, "no-cache", false,
		"disable cross-probe verdict caching (-no-cache wins over -cache-dir)")
}

// Store resolves the flags to a verdict store: nil when caching is
// disabled, a disk-backed store for -cache-dir, and the process-wide
// in-memory store otherwise.
func (f *Flags) Store() *probecache.Store {
	switch {
	case f.Disable:
		return nil
	case f.Dir != "":
		return probecache.NewStore(f.Dir)
	default:
		return probecache.Shared()
	}
}

// Frontier returns the store's capacity frontier for the fingerprinted
// problem, or nil (no caching) when the store is nil.
func Frontier(st *probecache.Store, fingerprint string, buffers []string) (*probecache.Frontier, error) {
	if st == nil {
		return nil, nil
	}
	return st.Entry(fingerprint).Frontier(buffers)
}

// Periods returns the store's period-verdict cache for the fingerprinted
// problem, or nil when the store is nil.
func Periods(st *probecache.Store, fingerprint string) *probecache.Periods {
	if st == nil {
		return nil
	}
	return st.Entry(fingerprint).Periods()
}

// Flush persists a disk-backed store and returns how many files it wrote;
// nil and memory-only stores flush nothing. The caller decides whether a
// flush failure is fatal (the cache is advisory, the computed answers are
// already printed).
func Flush(st *probecache.Store) (int, error) {
	if st == nil {
		return 0, nil
	}
	return st.Flush()
}

// WriteStats prints the one-line cache summary used under -stats.
func WriteStats(w io.Writer, st *probecache.Store, written int) {
	if st == nil {
		fmt.Fprintln(w, "cache: disabled")
		return
	}
	s := st.Stats()
	fmt.Fprintf(w, "cache: %d hits, %d misses across %d problem(s)", s.Hits, s.Misses, s.Entries)
	if st.Dir() != "" {
		fmt.Fprintf(w, "; disk: %d loaded, %d skipped, %d written (%s)", s.Loaded, s.Skipped, written, st.Dir())
	}
	fmt.Fprintln(w)
}
