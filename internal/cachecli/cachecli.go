// Package cachecli wires the shared probe-verdict cache (internal/probecache)
// into the command-line tools: the -cache-backend/-cache-dir/-no-cache
// flags, store resolution, and the end-of-run flush and stats line. Both
// cmd/vrdfcap and cmd/mp3bench use it so the flags behave identically.
package cachecli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vrdfcap/internal/cachestore"
	"vrdfcap/internal/probecache"
)

// Flags holds the cache flag values of one CLI invocation.
type Flags struct {
	// Backend is a cachestore spec: dir:PATH, mem:, or http[s]://HOST
	// (the /v1/cache protocol served by vrdfserve). "" defers to Dir.
	Backend string
	// Dir is the on-disk cache directory; "" keeps verdicts in memory.
	Dir string
	// Disable turns cross-probe verdict caching off entirely.
	Disable bool
}

// Register installs -cache-backend, -cache-dir and -no-cache on the flag
// set.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Backend, "cache-backend", "",
		"verdict-store backend spec: dir:PATH, mem:, or http[s]://HOST (a vrdfserve /v1/cache store); overrides -cache-dir")
	fs.StringVar(&f.Dir, "cache-dir", "",
		"directory for the on-disk feasibility cache (default: in-memory for this run only)")
	fs.BoolVar(&f.Disable, "no-cache", false,
		"disable cross-probe verdict caching (-no-cache wins over -cache-backend and -cache-dir)")
}

// Store resolves the flags to a verdict store: nil when caching is
// disabled, a backend-backed store for -cache-backend, a disk-backed
// store for -cache-dir, and the process-wide in-memory store otherwise.
//
// A -cache-backend spec naming a directory or remote store is wrapped in
// the cachestore.Resilient fault-tolerance layer with an in-memory
// fallback tier: per-op deadlines, bounded jittered retries, a half-open
// circuit breaker, and graceful demotion — a slow or dead store may cost
// cache hits, never stall or fail the analysis. The legacy -cache-dir
// path stays a bare directory store for byte-compatible behaviour.
func (f *Flags) Store() (*probecache.Store, error) {
	switch {
	case f.Disable:
		return nil, nil
	case f.Backend != "":
		b, err := cachestore.Parse(f.Backend)
		if err != nil {
			return nil, err
		}
		if _, ok := b.(*cachestore.Mem); ok {
			// A fresh private in-memory tier cannot misbehave; wrapping
			// it would only add counters that always read zero.
			return probecache.NewStoreBackend(b), nil
		}
		return probecache.NewStoreBackend(cachestore.NewResilient(b, cachestore.NewMem(), cachestore.Options{
			// Replicas pointed at one shared store must not retry in
			// lockstep; the pid decorrelates the jitter streams.
			Seed: uint64(os.Getpid()),
		})), nil
	case f.Dir != "":
		return probecache.NewStore(f.Dir), nil
	default:
		return probecache.Shared(), nil
	}
}

// Frontier returns the store's capacity frontier for the fingerprinted
// problem, or nil (no caching) when the store is nil.
func Frontier(st *probecache.Store, fingerprint string, buffers []string) (*probecache.Frontier, error) {
	if st == nil {
		return nil, nil
	}
	return st.Entry(fingerprint).Frontier(buffers)
}

// Periods returns the store's period-verdict cache for the fingerprinted
// problem, or nil when the store is nil.
func Periods(st *probecache.Store, fingerprint string) *probecache.Periods {
	if st == nil {
		return nil
	}
	return st.Entry(fingerprint).Periods()
}

// Flush persists a backed store and returns how many payloads it wrote;
// nil and memory-only stores flush nothing. The caller decides whether a
// flush failure is fatal (the cache is advisory, the computed answers are
// already printed).
func Flush(st *probecache.Store) (int, error) {
	if st == nil {
		return 0, nil
	}
	return st.Flush()
}

// WriteStats prints the one-line cache summary used under -stats.
func WriteStats(w io.Writer, st *probecache.Store, written int) {
	if st == nil {
		fmt.Fprintln(w, "cache: disabled")
		return
	}
	s := st.Stats()
	fmt.Fprintf(w, "cache: %d hits, %d misses across %d problem(s)", s.Hits, s.Misses, s.Entries)
	if s.Backend != "" {
		fmt.Fprintf(w, "; store: %d loaded, %d skipped, %d written (%s)", s.Loaded, s.Skipped, written, s.Backend)
	}
	if r := s.Resilience; r != nil {
		state := "closed"
		if r.BreakerOpen {
			state = "OPEN"
		}
		fmt.Fprintf(w, "; resilience: %d retries, %d demotions, breaker %s", r.Retries, r.Demotions, state)
	}
	fmt.Fprintln(w)
}
