package minimize

// Bounds carries conservative linear feasibility bounds for a search, in the
// spirit of the paper's α̂/α̌ bounding argument (§4): the analysis' sufficient
// capacities α̂ guarantee feasibility for any pointwise-larger assignment,
// and per-buffer necessary minima α̌ (capacities below which even the most
// favourable token production cannot satisfy a single firing) guarantee
// infeasibility below them. Both directions are sound for every probe by the
// monotonicity of VRDF execution (Definition 1), so a probe the bounds
// decide never needs to simulate.
//
// capacity.SearchBounds derives both maps from an analysis result; a
// zero-value Bounds decides nothing.
type Bounds struct {
	// Sufficient is a complete assignment known feasible (typically the
	// analysis' Equation-4 capacities). Any probe over exactly these
	// buffers that dominates it pointwise is feasible. Nil disables the
	// sufficient direction.
	Sufficient map[string]int64
	// Necessary maps a buffer to a capacity strictly below which no
	// assignment is feasible, regardless of the other buffers. A probe
	// with caps[b] < Necessary[b] for any b is infeasible. Nil disables
	// the necessary direction.
	Necessary map[string]int64
}

// Decide reports whether the bounds determine the probe's verdict without
// simulation. decided is false when neither direction applies; feasible is
// meaningful only when decided is true.
func (b *Bounds) Decide(caps map[string]int64) (feasible, decided bool) {
	if b == nil {
		return false, false
	}
	for name, min := range b.Necessary {
		if c, ok := caps[name]; ok && c < min {
			return false, true
		}
	}
	if len(b.Sufficient) > 0 && len(b.Sufficient) == len(caps) {
		dominates := true
		for name, suf := range b.Sufficient {
			c, ok := caps[name]
			if !ok || c < suf {
				dominates = false
				break
			}
		}
		if dominates {
			return true, true
		}
	}
	return false, false
}
