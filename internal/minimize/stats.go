package minimize

import "sync/atomic"

// ProbeStats accumulates simulation-effort counters across the probes of a
// check or search. All fields are atomic so concurrent workers can share one
// instance; pass it via Options.Stats. Counters are cumulative — zero the
// struct (or use a fresh one) to measure a single search.
type ProbeStats struct {
	// SimEvents counts events actually simulated, excluding events replayed
	// for free from a warm-start checkpoint.
	SimEvents atomic.Int64
	// ResumedEvents counts events skipped by resuming from a checkpoint
	// instead of replaying from t=0.
	ResumedEvents atomic.Int64
	// WarmResets counts machine resets that resumed from a checkpoint.
	WarmResets atomic.Int64
	// ColdResets counts machine resets that replayed from t=0.
	ColdResets atomic.Int64
}

// note records one run's effort: total events simulated after the resume
// point and the events the resume skipped. Nil-safe.
func (s *ProbeStats) note(simulated, resumed int64) {
	if s == nil {
		return
	}
	s.SimEvents.Add(simulated)
	s.ResumedEvents.Add(resumed)
	if resumed > 0 {
		s.WarmResets.Add(1)
	} else {
		s.ColdResets.Add(1)
	}
}
