// Package minimize finds empirically minimal buffer capacities by
// simulation.
//
// The analysis of Wiggers et al. (DATE 2008) computes capacities that are
// sufficient but not necessarily minimal. This package searches for the
// smallest capacities that keep a task graph deadlock-free — reproducing the
// motivating numbers of the paper's Figure 1 (capacity 3 when the consumer
// always takes 3, capacity 4 when it always takes 2) — or that preserve a
// throughput constraint, quantifying the tightness of Equation (4).
//
// Feasibility is monotone in every buffer capacity (more space never hurts,
// by the monotonicity of VRDF execution), so each buffer admits binary
// search; chains are minimised by coordinate-descent passes until a
// fixpoint. Because every feasibility probe is an independent pure
// simulation, the searches parallelise: per-workload simulations run
// concurrently inside a check, and the binary searches probe several
// speculative capacities per round (monotonicity makes the narrowing exact
// whichever probes come back first). The result of a search is identical
// for every worker count; only the probe count may differ.
package minimize

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/parallel"
	"vrdfcap/internal/probecache"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
)

// CheckFunc reports whether a capacity assignment (buffer name → capacity)
// is feasible. Implementations must be monotone: if caps is feasible, any
// pointwise-larger assignment must be too. When a search or check runs with
// more than one worker, the CheckFunc must additionally be safe for
// concurrent calls (the checks built by this package are).
type CheckFunc func(caps map[string]int64) (bool, error)

// Options tunes the parallelism and guards of checks and searches.
type Options struct {
	// Workers bounds concurrent simulations and speculative probes: 0
	// selects GOMAXPROCS, 1 forces the serial path. The outcome is
	// identical for every setting.
	Workers int
	// MaxEvents caps each simulation run as a runaway guard (0 = engine
	// default). Hitting the cap is reported as an error, never as
	// infeasibility.
	MaxEvents int64
	// NoCache disables the monotone feasibility cache in Search, forcing
	// every probe through the CheckFunc. The assignment found is
	// identical either way (the cache only answers probes whose verdict
	// monotonicity already determines); this exists for measurement and
	// for checks that are deliberately non-monotone. NoCache wins over
	// Cache.
	NoCache bool
	// Cache, if non-nil, is a shared probecache.Frontier consulted and
	// extended instead of the search-private cache. Sharing is sound only
	// between searches over the same buffers and the same CheckFunc
	// semantics — obtain one per problem fingerprint from a
	// probecache.Store — and its buffer order must equal the search's
	// buffer list. A warm frontier answers probes monotonicity already
	// decides, so a repeated search can finish without simulating at all;
	// the assignment found is identical either way.
	Cache *probecache.Frontier
	// Checkpoints is the number of run snapshots each probe machine
	// retains for warm-starting (sim.Config.Checkpoints). With it set,
	// consecutive probes that change one capacity resume simulation from
	// the latest checkpoint the change cannot affect instead of replaying
	// from t=0. 0 disables warm starts; the verdicts and the assignment
	// found are bit-identical either way.
	Checkpoints int
	// Bounds, if non-nil, decides probes by the conservative linear α̂/α̌
	// bounds before consulting the cache or simulating. Bound-decided
	// verdicts are recorded in the cache (keeping the monotone frontier
	// consistent) and counted in Result.BoundHits. Unsound bounds are
	// surfaced as cache-contradiction or monotonicity errors.
	Bounds *Bounds
	// Stats, if non-nil, accumulates simulation-effort counters
	// (events simulated, events skipped by warm starts, warm/cold reset
	// counts) across all probes of the check.
	Stats *ProbeStats
	// Context, if non-nil, cancels checks and searches cooperatively; the
	// typed error satisfies budget.ErrCanceled (and context.Canceled).
	Context context.Context
	// Deadline, if non-zero, bounds checks and searches in wall-clock
	// time; the typed error satisfies budget.ErrBudgetExceeded.
	Deadline time.Time
}

func optOf(opts []Options) Options {
	if len(opts) > 0 {
		return opts[0]
	}
	return Options{}
}

// ctx returns the option's context, never nil.
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// deadlineCtx returns a context enforcing both Context and Deadline, with
// the cancel the caller must run to release the deadline timer.
func (o Options) deadlineCtx() (context.Context, context.CancelFunc) {
	if o.Deadline.IsZero() {
		return o.ctx(), func() {}
	}
	return context.WithDeadline(o.ctx(), o.Deadline)
}

// feasibleOutcome maps a simulation outcome onto feasibility. Only two
// outcomes answer "does this capacity assignment keep the graph live":
// Completed (feasible) and Deadlocked (infeasible). Anything else — an
// Underrun from a misconfigured periodic actor, a LimitExceeded runaway
// guard — carries no evidence about capacities, and treating it as
// "infeasible" would silently poison the monotone search; it is an error.
func feasibleOutcome(res *sim.Result) (bool, error) {
	switch res.Outcome {
	case sim.Completed:
		return true, nil
	case sim.Deadlocked:
		return false, nil
	default:
		return false, fmt.Errorf("minimize: simulation ended with outcome %v, which says nothing about capacity feasibility (expected completed or deadlocked)", res.Outcome)
	}
}

// errInfeasible is the sentinel that lets the worker pool stop early on a
// definitively infeasible workload while preserving the serial loop's
// lowest-index-first semantics.
var errInfeasible = errors.New("minimize: workload infeasible")

// allFeasible evaluates one feasibility predicate per workload index on the
// pool and ANDs the answers. Like the serial loop it replaces, the verdict
// is decided by the lowest failing index: an infeasible workload there
// yields (false, nil) even if a higher index would have errored.
func allFeasible(ctx context.Context, workers, n int, eval func(i int) (bool, error)) (bool, error) {
	_, err := parallel.Map(ctx, workers, n, func(i int) (struct{}, error) {
		ok, err := eval(i)
		if err != nil {
			return struct{}{}, err
		}
		if !ok {
			return struct{}{}, errInfeasible
		}
		return struct{}{}, nil
	})
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, errInfeasible):
		return false, nil
	default:
		return false, budget.Classify(err)
	}
}

// DeadlockFreeCheck returns a CheckFunc that accepts an assignment when the
// self-timed execution of the sized graph completes `firings` firings of
// `task` under every given workload without deadlocking. The per-workload
// simulations run concurrently on up to Options.Workers goroutines.
//
// Each worker reuses a compiled machine per workload across probes: a probe
// only resets token counts (the capacity assignment becomes the space
// edges' initial tokens) instead of cloning the graph and rebuilding the
// engine. With Options.Checkpoints set, the reset is warm: the machine
// retains run snapshots and resumes from the latest checkpoint the capacity
// change cannot affect. The per-workload machine pools are LIFO, so a worker
// tends to get back the machine it used last — consecutive probes of a
// binary search then differ on one edge and its checkpoints stay valid.
func DeadlockFreeCheck(g *taskgraph.Graph, task string, firings int64, workloads []sim.Workloads, opts ...Options) CheckFunc {
	o := optOf(opts)
	tpl := &probeTemplate{base: g}
	pools := make([]pool[*sim.Machine], len(workloads))
	return func(caps map[string]int64) (bool, error) {
		ov, err := tpl.overrides(caps)
		if err != nil {
			return false, err
		}
		return allFeasible(o.ctx(), o.Workers, len(workloads), func(i int) (bool, error) {
			m, ok := pools[i].get()
			if !ok {
				cfg, _, err := sim.TaskGraphConfig(tpl.sized, workloads[i])
				if err != nil {
					return false, err
				}
				cfg.Stop = sim.Stop{Actor: task, Firings: firings}
				cfg.MaxEvents = o.MaxEvents
				cfg.LiteResult = true
				cfg.Checkpoints = o.Checkpoints
				cfg.Context = o.Context
				cfg.Deadline = o.Deadline
				if m, err = sim.Compile(cfg); err != nil {
					return false, err
				}
			}
			resumed, err := m.ResetWarm(ov)
			if err != nil {
				return false, err
			}
			res, err := m.Run()
			if err != nil {
				return false, err
			}
			o.Stats.note(res.Events-resumed, resumed)
			pools[i].put(m)
			return feasibleOutcome(res)
		})
	}
}

// ThroughputCheck returns a CheckFunc that accepts an assignment when
// sim.VerifyThroughput succeeds for every given workload. The per-workload
// verifications run concurrently on up to Options.Workers goroutines.
//
// Each worker reuses a compiled sim.Verifier per workload across probes,
// so a probe re-runs the two verification phases without re-validating or
// rebuilding the graph. With Options.Checkpoints set the phase machines
// warm-start between probes; the LIFO pools give each worker back the
// verifier it used last so its checkpoints match the previous probe.
func ThroughputCheck(g *taskgraph.Graph, c taskgraph.Constraint, firings int64, workloads []sim.Workloads, opts ...Options) CheckFunc {
	o := optOf(opts)
	tpl := &probeTemplate{base: g}
	pools := make([]pool[*sim.Verifier], len(workloads))
	return func(caps map[string]int64) (bool, error) {
		if _, err := tpl.overrides(caps); err != nil {
			return false, err
		}
		return allFeasible(o.ctx(), o.Workers, len(workloads), func(i int) (bool, error) {
			vf, ok := pools[i].get()
			if !ok {
				var err error
				vf, err = sim.CompileVerifier(tpl.sized, c, sim.VerifyOptions{
					Firings:     firings,
					Workloads:   workloads[i],
					MaxEvents:   o.MaxEvents,
					LiteResult:  true,
					Checkpoints: o.Checkpoints,
					Context:     o.Context,
					Deadline:    o.Deadline,
				})
				if err != nil {
					return false, err
				}
			}
			v, err := vf.Verify(caps)
			if err != nil {
				return false, err
			}
			if o.Stats != nil {
				simulated, resumed, warm, cold := vf.LastEffort()
				o.Stats.SimEvents.Add(simulated)
				o.Stats.ResumedEvents.Add(resumed)
				o.Stats.WarmResets.Add(int64(warm))
				o.Stats.ColdResets.Add(int64(cold))
			}
			pools[i].put(vf)
			return v.OK, nil
		})
	}
}

// Result reports the outcome of a search.
type Result struct {
	// Caps is the minimal feasible assignment found. It is identical for
	// every worker count and unaffected by the feasibility cache.
	Caps map[string]int64
	// Checks counts simulated feasibility evaluations — CheckFunc
	// invocations, each of which may run several simulations. With more
	// than one worker, speculative probing may raise the count above the
	// serial minimum; the assignment found is unaffected.
	Checks int
	// CacheHits counts probes answered by the monotone feasibility cache
	// without invoking the CheckFunc (zero under Options.NoCache).
	// Checks + CacheHits + BoundHits is the total probe count.
	CacheHits int
	// BoundHits counts probes decided by the conservative α̂/α̌ bounds
	// (Options.Bounds) without simulating (zero when Bounds is nil).
	BoundHits int
	// Passes counts coordinate-descent sweeps.
	Passes int
}

// Total returns the summed capacity of the assignment.
func (r *Result) Total() int64 {
	var t int64
	for _, v := range r.Caps {
		t += v
	}
	return t
}

// Search finds a pointwise-minimal feasible capacity assignment at or below
// upper. It first verifies that upper itself is feasible, then runs
// coordinate-descent passes: for each buffer in order, binary-search the
// smallest feasible capacity with the other buffers held at their current
// values. Because feasibility is monotone, the result of each inner search
// is exact; passes repeat until no capacity changes, yielding an assignment
// where no single buffer can shrink further.
//
// With Options.Workers > 1 each binary-search round probes several
// capacities speculatively and concurrently; monotonicity makes the
// narrowing exact, so the assignment found is bit-identical to the serial
// search. A check whose answers violate monotonicity is reported as an
// error when the probes expose it.
func Search(buffers []string, upper map[string]int64, check CheckFunc, opts ...Options) (*Result, error) {
	if len(buffers) == 0 {
		return nil, fmt.Errorf("minimize: no buffers to search")
	}
	o := optOf(opts)
	workers := parallel.Workers(o.Workers)
	// The deadline gets its own derived context so the search stops between
	// probes even when the CheckFunc ignores budgets.
	ctx, cancelBudget := o.deadlineCtx()
	defer cancelBudget()
	cur := make(map[string]int64, len(buffers))
	for _, b := range buffers {
		u, ok := upper[b]
		if !ok || u <= 0 {
			return nil, fmt.Errorf("minimize: buffer %q needs a positive upper bound", b)
		}
		cur[b] = u
	}
	var checks, cacheHits, boundHits atomic.Int64
	var cache *probecache.Frontier
	switch {
	case o.NoCache:
		// Forced off: every probe simulates.
	case o.Cache != nil:
		if !o.Cache.SameKeys(buffers) {
			return nil, fmt.Errorf("minimize: shared cache is over buffers %v, search is over %v", o.Cache.Keys(), buffers)
		}
		cache = o.Cache
	default:
		cache = probecache.NewFrontier(buffers)
	}
	// probe answers dominated assignments from the cache (monotonicity
	// decides them without simulating) and records every simulated
	// verdict; cross-pass confirmation probes of the Gauss–Seidel loop —
	// including any re-probe of the already verified upper bound — become
	// cache hits.
	probe := func(caps map[string]int64) (bool, error) {
		if err := ctx.Err(); err != nil {
			return false, budget.Classify(err)
		}
		// The α̂/α̌ bounds decide first, so a bound-decided probe costs no
		// simulation even on a cold cache. The verdict is recorded in the
		// cache so the monotone frontier stays consistent with it: a bound
		// contradicting an earlier simulated verdict (or vice versa) is a
		// frontier error, not a silent wrong answer.
		if o.Bounds != nil {
			if feasible, decided := o.Bounds.Decide(caps); decided {
				boundHits.Add(1)
				if cache != nil {
					if err := cache.Insert(caps, feasible); err != nil {
						return false, err
					}
				}
				return feasible, nil
			}
		}
		if cache != nil {
			if feasible, hit := cache.Lookup(caps); hit {
				cacheHits.Add(1)
				return feasible, nil
			}
		}
		checks.Add(1)
		ok, err := check(caps)
		if err != nil {
			return false, budget.Classify(err)
		}
		if cache != nil {
			if err := cache.Insert(caps, ok); err != nil {
				return false, err
			}
		}
		return ok, nil
	}
	res := &Result{Caps: cur}
	ok, err := probe(copyCaps(cur))
	if err != nil {
		res.Checks = int(checks.Load())
		res.CacheHits = int(cacheHits.Load())
		res.BoundHits = int(boundHits.Load())
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("minimize: upper bound %v is not feasible", cur)
	}
	for {
		res.Passes++
		before := copyCaps(cur)
		for _, b := range buffers {
			// Invariant: hi is feasible, everything below lo is not.
			lo, hi := int64(1), cur[b]
			for lo < hi {
				pts := probePoints(lo, hi, int64(workers))
				feas, err := parallel.Map(ctx, workers, len(pts), func(j int) (bool, error) {
					caps := copyCaps(cur)
					caps[b] = pts[j]
					return probe(caps)
				})
				if err != nil {
					res.Checks = int(checks.Load())
					res.CacheHits = int(cacheHits.Load())
					res.BoundHits = int(boundHits.Load())
					return nil, budget.Classify(err)
				}
				// Monotone narrowing: the largest infeasible probe
				// raises lo, the smallest feasible probe lowers hi.
				seenFeasible := false
				for j, ok := range feas {
					switch {
					case ok && !seenFeasible:
						seenFeasible = true
						hi = pts[j]
					case !ok && seenFeasible:
						res.Checks = int(checks.Load())
						res.CacheHits = int(cacheHits.Load())
						res.BoundHits = int(boundHits.Load())
						return nil, fmt.Errorf("minimize: check is not monotone on buffer %q: capacity %d feasible but %d infeasible", b, hi, pts[j])
					case !ok:
						lo = pts[j] + 1
					}
				}
			}
			cur[b] = hi
		}
		shrunk := false
		for k, v := range cur {
			if v < before[k] {
				shrunk = true
				break
			}
		}
		if !shrunk {
			break
		}
	}
	res.Checks = int(checks.Load())
	res.CacheHits = int(cacheHits.Load())
	res.BoundHits = int(boundHits.Load())
	res.Caps = cur
	return res, nil
}

// probePoints returns up to k distinct speculative probe capacities that
// split [lo, hi-1] evenly (hi is already known feasible). With k == 1 this
// is exactly the classic binary-search midpoint lo + (hi-lo)/2, so the
// serial path probes the same sequence it always did.
func probePoints(lo, hi, k int64) []int64 {
	span := hi - lo
	if k > span {
		k = span
	}
	out := make([]int64, 0, k)
	for j := int64(1); j <= k; j++ {
		// lo + floor(span·j/(k+1)), in 128 bits: span can be any int64.
		carry, prod := bits.Mul64(uint64(span), uint64(j))
		q, _ := bits.Div64(carry, prod, uint64(k+1))
		out = append(out, lo+int64(q))
	}
	return out
}

func copyCaps(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
