// Package minimize finds empirically minimal buffer capacities by
// simulation.
//
// The analysis of Wiggers et al. (DATE 2008) computes capacities that are
// sufficient but not necessarily minimal. This package searches for the
// smallest capacities that keep a task graph deadlock-free — reproducing the
// motivating numbers of the paper's Figure 1 (capacity 3 when the consumer
// always takes 3, capacity 4 when it always takes 2) — or that preserve a
// throughput constraint, quantifying the tightness of Equation (4).
//
// Feasibility is monotone in every buffer capacity (more space never hurts,
// by the monotonicity of VRDF execution), so each buffer admits binary
// search; chains are minimised by coordinate-descent passes until a
// fixpoint.
package minimize

import (
	"fmt"

	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
)

// CheckFunc reports whether a capacity assignment (buffer name → capacity)
// is feasible. Implementations must be monotone: if caps is feasible, any
// pointwise-larger assignment must be too.
type CheckFunc func(caps map[string]int64) (bool, error)

// DeadlockFreeCheck returns a CheckFunc that accepts an assignment when the
// self-timed execution of the sized graph completes `firings` firings of
// `task` under every given workload without deadlocking.
func DeadlockFreeCheck(g *taskgraph.Graph, task string, firings int64, workloads []sim.Workloads) CheckFunc {
	return func(caps map[string]int64) (bool, error) {
		sized, err := applyCaps(g, caps)
		if err != nil {
			return false, err
		}
		for _, w := range workloads {
			cfg, _, err := sim.TaskGraphConfig(sized, w)
			if err != nil {
				return false, err
			}
			cfg.Stop = sim.Stop{Actor: task, Firings: firings}
			res, err := sim.Run(cfg)
			if err != nil {
				return false, err
			}
			if res.Outcome != sim.Completed {
				return false, nil
			}
		}
		return true, nil
	}
}

// ThroughputCheck returns a CheckFunc that accepts an assignment when
// sim.VerifyThroughput succeeds for every given workload.
func ThroughputCheck(g *taskgraph.Graph, c taskgraph.Constraint, firings int64, workloads []sim.Workloads) CheckFunc {
	return func(caps map[string]int64) (bool, error) {
		sized, err := applyCaps(g, caps)
		if err != nil {
			return false, err
		}
		for _, w := range workloads {
			v, err := sim.VerifyThroughput(sized, c, sim.VerifyOptions{
				Firings:   firings,
				Workloads: w,
			})
			if err != nil {
				return false, err
			}
			if !v.OK {
				return false, nil
			}
		}
		return true, nil
	}
}

// Result reports the outcome of a search.
type Result struct {
	// Caps is the minimal feasible assignment found.
	Caps map[string]int64
	// Checks counts feasibility evaluations (each may run several
	// simulations).
	Checks int
	// Passes counts coordinate-descent sweeps.
	Passes int
}

// Total returns the summed capacity of the assignment.
func (r *Result) Total() int64 {
	var t int64
	for _, v := range r.Caps {
		t += v
	}
	return t
}

// Search finds a pointwise-minimal feasible capacity assignment at or below
// upper. It first verifies that upper itself is feasible, then runs
// coordinate-descent passes: for each buffer in order, binary-search the
// smallest feasible capacity with the other buffers held at their current
// values. Because feasibility is monotone, the result of each inner search
// is exact; passes repeat until no capacity changes, yielding an assignment
// where no single buffer can shrink further.
func Search(buffers []string, upper map[string]int64, check CheckFunc) (*Result, error) {
	if len(buffers) == 0 {
		return nil, fmt.Errorf("minimize: no buffers to search")
	}
	cur := make(map[string]int64, len(buffers))
	for _, b := range buffers {
		u, ok := upper[b]
		if !ok || u <= 0 {
			return nil, fmt.Errorf("minimize: buffer %q needs a positive upper bound", b)
		}
		cur[b] = u
	}
	res := &Result{Caps: cur}
	ok, err := check(copyCaps(cur))
	res.Checks++
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("minimize: upper bound %v is not feasible", cur)
	}
	for {
		res.Passes++
		before := copyCaps(cur)
		for _, b := range buffers {
			lo, hi := int64(1), cur[b] // hi is known feasible
			for lo < hi {
				mid := lo + (hi-lo)/2
				cur[b] = mid
				ok, err := check(copyCaps(cur))
				res.Checks++
				if err != nil {
					return nil, err
				}
				if ok {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			cur[b] = hi
		}
		shrunk := false
		for k, v := range cur {
			if v < before[k] {
				shrunk = true
				break
			}
		}
		if !shrunk {
			break
		}
	}
	res.Caps = cur
	return res, nil
}

func copyCaps(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func applyCaps(g *taskgraph.Graph, caps map[string]int64) (*taskgraph.Graph, error) {
	out := g.Clone()
	for name, c := range caps {
		b := out.BufferByName(name)
		if b == nil {
			return nil, fmt.Errorf("minimize: unknown buffer %q", name)
		}
		b.Capacity = c
	}
	return out, nil
}
