package minimize

import (
	"strings"
	"testing"
)

func TestFeasibilityCacheDominance(t *testing.T) {
	c := newFeasibilityCache([]string{"a", "b"})
	if _, hit := c.lookup(map[string]int64{"a": 3, "b": 3}); hit {
		t.Fatal("empty cache answered a probe")
	}
	if err := c.insert(map[string]int64{"a": 3, "b": 4}, true); err != nil {
		t.Fatal(err)
	}
	if err := c.insert(map[string]int64{"a": 2, "b": 4}, false); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b     int64
		feasible bool
		hit      bool
	}{
		{3, 4, true, true},   // exactly the feasible entry
		{5, 9, true, true},   // dominates it
		{2, 4, false, true},  // exactly the infeasible entry
		{1, 2, false, true},  // dominated by it
		{2, 9, false, false}, // between the frontiers: must simulate
		{3, 3, false, false},
	}
	for _, tc := range cases {
		feasible, hit := c.lookup(map[string]int64{"a": tc.a, "b": tc.b})
		if hit != tc.hit || (hit && feasible != tc.feasible) {
			t.Errorf("lookup(a:%d, b:%d) = (%v, %v), want (%v, %v)",
				tc.a, tc.b, feasible, hit, tc.feasible, tc.hit)
		}
	}
}

func TestFeasibilityCacheFrontiersStayMinimal(t *testing.T) {
	c := newFeasibilityCache([]string{"a", "b"})
	// A tighter feasible vector must replace the looser one it dominates.
	for _, v := range []map[string]int64{
		{"a": 5, "b": 5}, {"a": 3, "b": 5}, {"a": 3, "b": 4},
	} {
		if err := c.insert(v, true); err != nil {
			t.Fatal(err)
		}
	}
	if len(c.feasible) != 1 {
		t.Errorf("feasible frontier has %d entries, want 1: %v", len(c.feasible), c.feasible)
	}
	// Incomparable vectors coexist on the frontier.
	if err := c.insert(map[string]int64{"a": 2, "b": 9}, true); err != nil {
		t.Fatal(err)
	}
	if len(c.feasible) != 2 {
		t.Errorf("incomparable vector pruned: %v", c.feasible)
	}
	// Symmetrically for the infeasible frontier: larger dominates.
	for _, v := range []map[string]int64{
		{"a": 1, "b": 1}, {"a": 1, "b": 3}, {"a": 2, "b": 3},
	} {
		if err := c.insert(v, false); err != nil {
			t.Fatal(err)
		}
	}
	if len(c.infeasible) != 1 {
		t.Errorf("infeasible frontier has %d entries, want 1: %v", len(c.infeasible), c.infeasible)
	}
}

func TestFeasibilityCacheDetectsNonMonotoneCheck(t *testing.T) {
	c := newFeasibilityCache([]string{"a"})
	if err := c.insert(map[string]int64{"a": 4}, false); err != nil {
		t.Fatal(err)
	}
	err := c.insert(map[string]int64{"a": 3}, true)
	if err == nil || !strings.Contains(err.Error(), "not monotone") {
		t.Errorf("feasible-below-infeasible accepted: %v", err)
	}
	c2 := newFeasibilityCache([]string{"a"})
	if err := c2.insert(map[string]int64{"a": 3}, true); err != nil {
		t.Fatal(err)
	}
	err = c2.insert(map[string]int64{"a": 4}, false)
	if err == nil || !strings.Contains(err.Error(), "not monotone") {
		t.Errorf("infeasible-above-feasible accepted: %v", err)
	}
}
