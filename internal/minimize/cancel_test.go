package minimize

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/quanta"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
)

func noLeakedGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSearchCanceled(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := figure1Graph(t)
	o := Options{Context: ctx}
	check := DeadlockFreeCheck(g, "wb", 200, []sim.Workloads{
		{buf: {Cons: quanta.Cycle(2, 3)}},
	}, o)
	_, err := Search([]string{buf}, map[string]int64{buf: 20}, check, o)
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want to also satisfy context.Canceled", err)
	}
	noLeakedGoroutines(t, before)
}

func TestSearchCanceledMidSearch(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := figure1Graph(t)
	// Cancel from inside the CheckFunc after a few probes; the search
	// must stop with the typed error instead of completing.
	probes := 0
	inner := DeadlockFreeCheck(g, "wb", 200, []sim.Workloads{
		{buf: {Cons: quanta.Cycle(2, 3)}},
	}, Options{Context: ctx, Workers: 1})
	check := func(caps map[string]int64) (bool, error) {
		if probes++; probes == 2 {
			cancel()
		}
		return inner(caps)
	}
	_, err := Search([]string{buf}, map[string]int64{buf: 1 << 20}, check, Options{Context: ctx, Workers: 1})
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	noLeakedGoroutines(t, before)
}

func TestSearchDeadlineExceeded(t *testing.T) {
	before := runtime.NumGoroutine()
	g := figure1Graph(t)
	o := Options{Deadline: time.Now().Add(-time.Second)}
	check := DeadlockFreeCheck(g, "wb", 200, []sim.Workloads{
		{buf: {Cons: quanta.Cycle(2, 3)}},
	}, o)
	_, err := Search([]string{buf}, map[string]int64{buf: 20}, check, o)
	if !errors.Is(err, budget.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	noLeakedGoroutines(t, before)
}

// TestSearchBudgetedMatchesUnbudgeted pins that a generous budget changes
// nothing: same assignment, same probe counts.
func TestSearchBudgetedMatchesUnbudgeted(t *testing.T) {
	g := figure1Graph(t)
	run := func(o Options) *Result {
		t.Helper()
		c := taskgraph.Constraint{Task: "wb", Period: r(3, 1)}
		check := ThroughputCheck(g, c, 100, []sim.Workloads{
			{buf: {Cons: quanta.Cycle(2, 3)}},
		}, o)
		res, err := Search([]string{buf}, map[string]int64{buf: 20}, check, o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(Options{Workers: 1})
	budgeted := run(Options{Workers: 1, Context: context.Background(), Deadline: time.Now().Add(time.Hour)})
	if plain.Caps[buf] != budgeted.Caps[buf] || plain.Checks != budgeted.Checks {
		t.Errorf("budgeted search diverged: %+v vs %+v", plain, budgeted)
	}
}

// TestSearchPanicIsolated pins that a panicking CheckFunc surfaces as a
// *parallel.PanicError instead of killing the process, and that the pool
// comes home.
func TestSearchPanicIsolated(t *testing.T) {
	before := runtime.NumGoroutine()
	check := func(caps map[string]int64) (bool, error) {
		if caps[buf] < 10 {
			panic("probe exploded")
		}
		return true, nil
	}
	_, err := Search([]string{buf}, map[string]int64{buf: 20}, check, Options{NoCache: true})
	if err == nil {
		t.Fatal("Search swallowed a panicking check")
	}
	noLeakedGoroutines(t, before)
}
