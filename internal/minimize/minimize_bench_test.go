package minimize

import (
	"testing"

	"vrdfcap/internal/quanta"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
)

var benchCap int64

// benchmarkMinimize searches the Figure 1 pair under four workloads with
// long runs; each feasibility probe costs four simulations, so both the
// concurrent per-workload checks and the speculative probes pay off on
// multi-core runners.
func benchmarkMinimize(b *testing.B, workers int) {
	g, err := taskgraph.Pair("wa", r(1, 1), "wb", r(1, 1),
		taskgraph.MustQuanta(3), taskgraph.MustQuanta(2, 3))
	if err != nil {
		b.Fatal(err)
	}
	workloads := []sim.Workloads{
		{buf: {Cons: quanta.Constant(2)}},
		{buf: {Cons: quanta.Constant(3)}},
		{buf: {Cons: quanta.Cycle(2, 3)}},
		{buf: {Cons: quanta.Uniform(taskgraph.MustQuanta(2, 3), 5)}},
	}
	opt := Options{Workers: workers}
	check := DeadlockFreeCheck(g, "wb", 400, workloads, opt)
	var probes, cached int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Search([]string{buf}, map[string]int64{buf: 64}, check, opt)
		if err != nil {
			b.Fatal(err)
		}
		benchCap = res.Caps[buf]
		probes = res.Checks
		cached = res.CacheHits
	}
	b.ReportMetric(float64(probes), "probes_sim")
	b.ReportMetric(float64(cached), "probes_cached")
}

func BenchmarkMinimizeSerial(b *testing.B)   { benchmarkMinimize(b, 1) }
func BenchmarkMinimizeParallel(b *testing.B) { benchmarkMinimize(b, 0) }
