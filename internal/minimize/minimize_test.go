package minimize

import (
	"reflect"
	"strings"
	"testing"

	"vrdfcap/internal/graphgen"
	"vrdfcap/internal/quanta"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
)

func r(n, d int64) ratio.Rat { return ratio.MustNew(n, d) }

func figure1Graph(t *testing.T) *taskgraph.Graph {
	t.Helper()
	g, err := taskgraph.Pair("wa", r(1, 1), "wb", r(1, 1),
		taskgraph.MustQuanta(3), taskgraph.MustQuanta(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

const buf = "wa->wb"

func TestFigure1MinimalCapacities(t *testing.T) {
	// The paper's §1 numbers: the minimum buffer capacity for
	// deadlock-free execution is 3 when the consumption quantum is
	// always 3, but 4 when it is always 2 — "maximising the consumption
	// quantum does not lead to buffer capacities that are sufficient for
	// other consumption quanta."
	g := figure1Graph(t)
	cases := []struct {
		name string
		seq  quanta.Sequence
		want int64
	}{
		{"n=3 every execution", quanta.Constant(3), 3},
		{"n=2 every execution", quanta.Constant(2), 4},
		// Mixing is harder still: the alternating sequence needs 5.
		{"n alternating 2,3", quanta.Cycle(2, 3), 5},
	}
	for _, c := range cases {
		check := DeadlockFreeCheck(g, "wb", 200, []sim.Workloads{
			{buf: {Cons: c.seq}},
		})
		res, err := Search([]string{buf}, map[string]int64{buf: 20}, check)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := res.Caps[buf]; got != c.want {
			t.Errorf("%s: minimal capacity = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestThroughputMinimumAtMostEquation4(t *testing.T) {
	// Equation (4) gives 7 for this pair at τ = 3; the empirical
	// throughput-preserving minimum cannot exceed it.
	g := figure1Graph(t)
	c := taskgraph.Constraint{Task: "wb", Period: r(3, 1)}
	workloads := []sim.Workloads{
		{buf: {Cons: quanta.Constant(2)}},
		{buf: {Cons: quanta.Constant(3)}},
		{buf: {Cons: quanta.Cycle(2, 3)}},
		{buf: {Cons: quanta.Uniform(taskgraph.MustQuanta(2, 3), 5)}},
	}
	check := ThroughputCheck(g, c, 300, workloads)
	res, err := Search([]string{buf}, map[string]int64{buf: 7}, check)
	if err != nil {
		t.Fatal(err)
	}
	if res.Caps[buf] > 7 {
		t.Errorf("empirical minimum %d exceeds Equation (4)'s 7", res.Caps[buf])
	}
	if res.Caps[buf] < 5 {
		t.Errorf("empirical minimum %d below the deadlock-free floor 5", res.Caps[buf])
	}
}

func TestSearchChainCoordinateDescent(t *testing.T) {
	// Three-stage constant-rate chain: every buffer shrinks to its local
	// minimum independently.
	g, err := taskgraph.BuildChain(
		[]taskgraph.Stage{
			{Name: "a", WCRT: r(1, 1)}, {Name: "b", WCRT: r(1, 1)}, {Name: "c", WCRT: r(1, 1)},
		},
		[]taskgraph.Link{
			{Prod: taskgraph.MustQuanta(2), Cons: taskgraph.MustQuanta(2)},
			{Prod: taskgraph.MustQuanta(3), Cons: taskgraph.MustQuanta(3)},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a->b", "b->c"}
	check := DeadlockFreeCheck(g, "c", 100, []sim.Workloads{{}})
	res, err := Search(names, map[string]int64{"a->b": 50, "b->c": 50}, check)
	if err != nil {
		t.Fatal(err)
	}
	// Constant-rate pair with p == c: a single quantum of slack
	// suffices for progress (no overlap), so the minimum is p.
	if res.Caps["a->b"] != 2 {
		t.Errorf("a->b minimal capacity = %d, want 2", res.Caps["a->b"])
	}
	if res.Caps["b->c"] != 3 {
		t.Errorf("b->c minimal capacity = %d, want 3", res.Caps["b->c"])
	}
	if res.Total() != 5 {
		t.Errorf("Total = %d, want 5", res.Total())
	}
	if res.Passes < 1 || res.Checks < 2 {
		t.Errorf("suspicious search stats: %+v", res)
	}
}

func TestSearchRejectsInfeasibleUpper(t *testing.T) {
	g := figure1Graph(t)
	check := DeadlockFreeCheck(g, "wb", 100, []sim.Workloads{
		{buf: {Cons: quanta.Constant(2)}},
	})
	if _, err := Search([]string{buf}, map[string]int64{buf: 3}, check); err == nil {
		t.Error("infeasible upper bound accepted")
	}
}

func TestSearchInputValidation(t *testing.T) {
	if _, err := Search(nil, nil, nil); err == nil {
		t.Error("empty buffer list accepted")
	}
	if _, err := Search([]string{"x"}, map[string]int64{}, nil); err == nil {
		t.Error("missing upper bound accepted")
	}
	if _, err := Search([]string{"x"}, map[string]int64{"x": 0}, nil); err == nil {
		t.Error("zero upper bound accepted")
	}
}

// TestFeasibleOutcomeSet pins the accepted/rejected outcome mapping:
// Completed and Deadlocked are evidence about capacities; every other
// outcome — including ones this package has never heard of — is an error,
// never a silent "infeasible".
func TestFeasibleOutcomeSet(t *testing.T) {
	cases := []struct {
		outcome sim.Outcome
		ok      bool
		err     bool
	}{
		{sim.Completed, true, false},
		{sim.Deadlocked, false, false},
		{sim.Underrun, false, true},
		{sim.LimitExceeded, false, true},
		{sim.Outcome(99), false, true},
	}
	for _, c := range cases {
		ok, err := feasibleOutcome(&sim.Result{Outcome: c.outcome})
		if ok != c.ok || (err != nil) != c.err {
			t.Errorf("feasibleOutcome(%v) = (%v, %v), want ok=%v err=%v", c.outcome, ok, err, c.ok, c.err)
		}
	}
}

// TestMaxEventsIsErrorNotInfeasible is the regression test for the outcome
// conflation bug: a simulation cut short by the runaway guard used to be
// reported as "infeasible", which silently inflated the minimal capacities
// the search returned. It must surface as an error instead.
func TestMaxEventsIsErrorNotInfeasible(t *testing.T) {
	g := figure1Graph(t)
	check := DeadlockFreeCheck(g, "wb", 200, []sim.Workloads{
		{buf: {Cons: quanta.Constant(3)}},
	}, Options{MaxEvents: 5})
	ok, err := check(map[string]int64{buf: 20})
	if err == nil {
		t.Fatalf("truncated simulation reported (%v, nil); want an error", ok)
	}
	if !strings.Contains(err.Error(), "says nothing about capacity feasibility") {
		t.Errorf("unexpected error text: %v", err)
	}
	if _, serr := Search([]string{buf}, map[string]int64{buf: 20}, check); serr == nil {
		t.Error("Search swallowed the truncated-simulation error")
	}
}

// TestSearchSerialParallelEquivalence pins the tentpole contract for the
// minimiser: the speculative parallel search finds bit-identical capacities
// to the serial binary search — on the paper's Figure 1 pair and on seeded
// random chains.
func TestSearchSerialParallelEquivalence(t *testing.T) {
	run := func(t *testing.T, g *taskgraph.Graph, task string, buffers []string, upper map[string]int64, workloads []sim.Workloads) {
		t.Helper()
		serial, err := Search(buffers, upper,
			DeadlockFreeCheck(g, task, 60, workloads, Options{Workers: 1}), Options{Workers: 1})
		if err != nil {
			t.Fatalf("serial: %v", err)
		}
		for _, workers := range []int{2, 5, 8} {
			par, err := Search(buffers, upper,
				DeadlockFreeCheck(g, task, 60, workloads, Options{Workers: workers}), Options{Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if !reflect.DeepEqual(serial.Caps, par.Caps) {
				t.Fatalf("workers=%d: caps differ\nserial:   %v\nparallel: %v", workers, serial.Caps, par.Caps)
			}
			if par.Passes != serial.Passes {
				t.Errorf("workers=%d: passes %d, serial %d", workers, par.Passes, serial.Passes)
			}
		}
	}

	t.Run("figure1", func(t *testing.T) {
		g := figure1Graph(t)
		run(t, g, "wb", []string{buf}, map[string]int64{buf: 20}, []sim.Workloads{
			{buf: {Cons: quanta.Constant(2)}},
			{buf: {Cons: quanta.Cycle(2, 3)}},
		})
	})
	for seed := int64(0); seed < 4; seed++ {
		cfg := graphgen.Defaults(seed + 300)
		g, c, err := graphgen.Random(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bufs := g.Buffers()
		buffers := make([]string, 0, len(bufs))
		upper := make(map[string]int64, len(bufs))
		for _, b := range bufs {
			buffers = append(buffers, b.Name)
			upper[b.Name] = 40
		}
		t.Run("chain", func(t *testing.T) {
			run(t, g, c.Task, buffers, upper, []sim.Workloads{
				sim.UniformWorkloads(g, seed),
				sim.AdversarialWorkloads(g, sim.AdversaryMin),
				sim.AdversarialWorkloads(g, sim.AdversaryAlternate),
			})
		})
	}
}

// TestSearchCacheSubsumesConfirmationProbes pins the feasibility cache's
// effect on a three-buffer chain: the confirmation passes of the coordinate
// descent re-probe assignments whose verdicts monotonicity already
// determines (each probe at or below a known-infeasible vector, or at or
// above a known-feasible one), so the cached search must simulate strictly
// fewer probes while finding identical capacities. In serial the probe
// sequence is identical with and without the cache, so simulated plus
// cache-answered probes add up exactly to the uncached check count.
func TestSearchCacheSubsumesConfirmationProbes(t *testing.T) {
	g, err := taskgraph.BuildChain(
		[]taskgraph.Stage{
			{Name: "a", WCRT: r(1, 1)}, {Name: "b", WCRT: r(1, 1)},
			{Name: "c", WCRT: r(1, 1)}, {Name: "d", WCRT: r(1, 1)},
		},
		[]taskgraph.Link{
			{Prod: taskgraph.MustQuanta(2), Cons: taskgraph.MustQuanta(2)},
			{Prod: taskgraph.MustQuanta(3), Cons: taskgraph.MustQuanta(3)},
			{Prod: taskgraph.MustQuanta(4), Cons: taskgraph.MustQuanta(4)},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a->b", "b->c", "c->d"}
	upper := map[string]int64{"a->b": 50, "b->c": 50, "c->d": 50}
	serial := Options{Workers: 1}
	cached, err := Search(names, upper,
		DeadlockFreeCheck(g, "d", 100, []sim.Workloads{{}}, serial), serial)
	if err != nil {
		t.Fatal(err)
	}
	plainOpts := Options{Workers: 1, NoCache: true}
	plain, err := Search(names, upper,
		DeadlockFreeCheck(g, "d", 100, []sim.Workloads{{}}, plainOpts), plainOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cached.Caps, plain.Caps) {
		t.Fatalf("cache changed the result: cached %v, uncached %v", cached.Caps, plain.Caps)
	}
	if cached.Passes != plain.Passes {
		t.Errorf("cache changed the pass count: %d vs %d", cached.Passes, plain.Passes)
	}
	if plain.CacheHits != 0 {
		t.Errorf("NoCache search reported %d cache hits", plain.CacheHits)
	}
	if cached.CacheHits == 0 {
		t.Error("cached search answered no probe from the cache")
	}
	if cached.Checks >= plain.Checks {
		t.Errorf("cache did not reduce simulated probes: %d cached vs %d uncached", cached.Checks, plain.Checks)
	}
	if got, want := cached.Checks+cached.CacheHits, plain.Checks; got != want {
		t.Errorf("serial probe sequence changed: %d simulated + %d cached = %d, want %d",
			cached.Checks, cached.CacheHits, got, want)
	}
}

// TestSearchCacheParityOnRandomChains pins the acceptance contract that the
// feasibility cache never changes the capacities the search finds — on
// seeded random chains, serial and parallel.
func TestSearchCacheParityOnRandomChains(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		cfg := graphgen.Defaults(seed + 300)
		g, c, err := graphgen.Random(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bufs := g.Buffers()
		buffers := make([]string, 0, len(bufs))
		upper := make(map[string]int64, len(bufs))
		for _, b := range bufs {
			buffers = append(buffers, b.Name)
			upper[b.Name] = 40
		}
		workloads := []sim.Workloads{
			sim.UniformWorkloads(g, seed),
			sim.AdversarialWorkloads(g, sim.AdversaryMin),
		}
		for _, workers := range []int{1, 4} {
			opts := Options{Workers: workers}
			cached, err := Search(buffers, upper,
				DeadlockFreeCheck(g, c.Task, 60, workloads, opts), opts)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			opts.NoCache = true
			plain, err := Search(buffers, upper,
				DeadlockFreeCheck(g, c.Task, 60, workloads, opts), opts)
			if err != nil {
				t.Fatalf("seed %d workers %d (no cache): %v", seed, workers, err)
			}
			if !reflect.DeepEqual(cached.Caps, plain.Caps) {
				t.Fatalf("seed %d workers %d: cache changed the result\ncached:   %v\nuncached: %v",
					seed, workers, cached.Caps, plain.Caps)
			}
			if cached.Passes != plain.Passes {
				t.Errorf("seed %d workers %d: pass count %d vs %d", seed, workers, cached.Passes, plain.Passes)
			}
		}
	}
}

func TestDeadlockCheckUnknownBuffer(t *testing.T) {
	g := figure1Graph(t)
	check := DeadlockFreeCheck(g, "wb", 10, []sim.Workloads{
		{buf: {Cons: quanta.Constant(3)}},
	})
	if _, err := check(map[string]int64{"nope": 3}); err == nil {
		t.Error("unknown buffer accepted")
	}
}
